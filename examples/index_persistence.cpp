// Index persistence via zero-copy snapshots: build the graph and both
// indexes once, write one combined snapshot file, and serve queries from
// mmap-loaded copies — in this process and in a forked child at the same
// time. This is the intended production deployment: construction is
// O(ρ(m+T)) offline work, loading is open + mmap + validate + bind spans
// (milliseconds, no parsing), and queries are interactive.
//
// ## Quickstart: two processes, one mapped snapshot
//
// Snapshots are read-only and private-mapped, so any number of serving
// processes can open the same file simultaneously; the kernel backs them
// all with ONE copy of the index in page cache. With tsdtool:
//
//     tsdtool build graph.txt --out=graph.snap --index=both
//     tsdtool serve --index=graph.snap &      # process 1
//     tsdtool serve --index=graph.snap &      # process 2
//
// Each serve maps the snapshot in milliseconds and answers byte-identically
// to a process that rebuilt the index from the edge list. This example does
// the same in-process: save, fork(), and both parent and child load the one
// snapshot and answer the same query.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <string>

#include "common/snapshot.h"
#include "core/gct_index.h"
#include "core/tsd_index.h"
#include "graph/generators.h"
#include "graph/graph.h"

int main() {
  using namespace tsd;
  const std::string path = "/tmp/example.snap";

  const Graph graph = HolmeKim(10000, 5, 0.6, 11);
  std::cout << "graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges\n";

  // Build once, persist everything into one snapshot file. Each object
  // writes its own tagged section group ("graf.*", "tsdx.*", "gctx.*"), so
  // one file can carry the graph and any subset of indexes.
  {
    TsdIndex tsd = TsdIndex::Build(graph);
    GctIndex gct = GctIndex::Build(graph);
    SnapshotWriter writer(path);
    graph.AppendToSnapshot(writer);
    tsd.AppendToSnapshot(writer);
    gct.AppendToSnapshot(writer);
    writer.Finish();
    std::cout << "TSD index: " << tsd.SizeBytes() << " bytes ("
              << tsd.build_stats().total_seconds << "s build)\n"
              << "GCT index: " << gct.SizeBytes() << " bytes ("
              << gct.build_stats().total_seconds << "s build)\n";
  }
  // The builders are gone; from here on everything serves from the file.

  // Fork BEFORE loading: parent and child each open and map the snapshot
  // independently, exactly like two unrelated serving processes would.
  // (Flush first or the child re-prints the inherited stdout buffer.)
  std::cout.flush();
  const pid_t child = fork();
  const bool is_child = child == 0;
  const std::string who = is_child ? "child " : "parent";

  // Load = mmap + validate + bind spans. No per-element parsing: the
  // loaded objects reference the mapping (is_mapped() below) instead of
  // copying the arrays, and both processes share one page-cache copy.
  SnapshotReader reader;
  std::string error;
  if (!SnapshotReader::Open(path, &reader, &error)) {
    std::cerr << who << ": cannot open snapshot: " << error << "\n";
    return 1;
  }
  Graph mapped_graph;
  TsdIndex tsd;
  GctIndex gct;
  if (!Graph::LoadFromSnapshot(reader, &mapped_graph, &error) ||
      !TsdIndex::LoadFromSnapshot(reader, &tsd, &error) ||
      !GctIndex::LoadFromSnapshot(reader, &gct, &error)) {
    std::cerr << who << ": corrupt snapshot: " << error << "\n";
    return 1;
  }

  // Serve: both processes answer the same query from their mapped copies
  // and cross-check TSD against GCT. Results are bit-identical to indexes
  // built in memory, so the processes print identical rankings.
  const TopRResult top = gct.TopR(/*r=*/5, /*k=*/4);
  std::cout << who << ": top-5 at k=4 (graph mapped=" << std::boolalpha
            << mapped_graph.is_mapped() << ", indexes mapped="
            << (tsd.is_mapped() && gct.is_mapped()) << "):\n";
  for (const TopREntry& entry : top.entries) {
    std::cout << "  " << who << ": vertex " << entry.vertex << " score "
              << entry.score << "\n";
    if (tsd.Score(entry.vertex, 4) != entry.score) {
      std::cerr << who << ": index disagreement!\n";
      return 1;
    }
  }
  if (is_child) return 0;

  int status = 0;
  waitpid(child, &status, 0);
  std::remove(path.c_str());
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::cerr << "child failed\n";
    return 1;
  }
  std::cout << "parent and child served identical answers from one mapped "
               "snapshot.\n";
  return 0;
}
