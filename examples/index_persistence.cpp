// Index persistence: build the TSD and GCT indexes once, save them to disk,
// reload, and serve queries from the loaded copies. This is the intended
// production deployment — construction is O(ρ(m+T)) offline work, queries
// are interactive.
#include <cstdio>
#include <iostream>

#include "core/gct_index.h"
#include "core/tsd_index.h"
#include "graph/generators.h"

int main() {
  using namespace tsd;

  const Graph graph = HolmeKim(10000, 5, 0.6, 11);
  std::cout << "graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges\n";

  // Build and persist.
  TsdIndex tsd = TsdIndex::Build(graph);
  GctIndex gct = GctIndex::Build(graph);
  tsd.Save("/tmp/example.tsd");
  gct.Save("/tmp/example.gct");
  std::cout << "TSD index: " << tsd.SizeBytes() << " bytes ("
            << tsd.build_stats().total_seconds << "s build)\n"
            << "GCT index: " << gct.SizeBytes() << " bytes ("
            << gct.build_stats().total_seconds << "s build)\n";

  // Reload and query — no graph needed at query time for scores.
  TsdIndex tsd_loaded = TsdIndex::Load("/tmp/example.tsd");
  GctIndex gct_loaded = GctIndex::Load("/tmp/example.gct");

  const TopRResult top = gct_loaded.TopR(/*r=*/5, /*k=*/4);
  std::cout << "\ntop-5 at k=4 from the reloaded GCT index:\n";
  for (const TopREntry& entry : top.entries) {
    std::cout << "  vertex " << entry.vertex << " score " << entry.score
              << "\n";
    // Cross-check against the reloaded TSD index.
    if (tsd_loaded.Score(entry.vertex, 4) != entry.score) {
      std::cerr << "index disagreement!\n";
      return 1;
    }
  }
  std::cout << "TSD and GCT agree on all reloaded answers.\n";

  std::remove("/tmp/example.tsd");
  std::remove("/tmp/example.gct");
  return 0;
}
