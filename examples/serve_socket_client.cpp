// Serving over a socket: the epoll transport end to end in one process.
//
// A ShardedServeLoop serves a GCT index behind a SocketServer (the
// length-prefixed binary protocol from server/socket_proto.h), and a
// blocking SocketClient plays three roles against it:
//
//   1. a pipelined tenant — many queries in flight on one connection,
//      replies returned in submission order;
//   2. an operator — the `stats` request returns the server's rendered
//      transport / latency / per-tenant tables as text;
//   3. an administrator — the `shutdown` request is acknowledged, the
//      server drains every owed reply, and WaitUntilShutdown() returns.
//
// Out of process the same wire format is spoken by
//   tsdtool serve GRAPH --index=gct --listen=0 --port-file=port.txt
//   tsdtool client --connect=127.0.0.1:$(cat port.txt)
#include <iostream>
#include <string>
#include <vector>

#include "core/gct_index.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "server/sharded_serve.h"
#include "server/socket_proto.h"
#include "server/socket_serve.h"

int main() {
  using namespace tsd;

  // A small clustered social network behind a 2-shard serving loop.
  Graph graph = HolmeKim(/*n=*/2000, /*m_per_vertex=*/6, /*p_triangle=*/0.6,
                         /*seed=*/42);
  GctIndex gct = GctIndex::Build(graph);
  ShardedServeOptions serve_options;
  serve_options.num_shards = 2;
  ShardedServeLoop loop(gct, serve_options);

  // Port 0 asks the kernel for a free port; read it back after Start().
  SocketServer server(loop, {});
  server.Start();
  std::cout << "serving on 127.0.0.1:" << server.port() << "\n\n";

  // --- 1. a pipelined tenant -------------------------------------------
  // Send first, read later: the server coalesces what arrives together
  // into SearchBatch dispatches and replies in submission order.
  SocketClient client =
      SocketClient::Connect("127.0.0.1", server.port(), /*recv_timeout_ms=*/30000);
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> queries = {
      {3, 5}, {4, 5}, {5, 3}, {6, 1}};
  for (const auto& [k, r] : queries) {
    client.SendQuery(/*tenant=*/7, k, r);
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ServerFrame frame;
    if (!client.ReadServerFrame(&frame)) break;
    std::cout << "reply " << frame.id << " (k=" << queries[i].first
              << " r=" << queries[i].second << ", "
              << ServeStatusName(frame.status) << "):";
    for (const TranscriptEntry& entry : frame.entries) {
      std::cout << " v" << entry.vertex << "(" << entry.score << ")";
    }
    std::cout << "\n";
  }

  // --- 2. the stats endpoint -------------------------------------------
  client.SendStats();
  ServerFrame stats_frame;
  if (client.ReadServerFrame(&stats_frame)) {
    std::cout << "\n" << stats_frame.text;
  }

  // --- 3. remote shutdown ----------------------------------------------
  // The ack comes back as a normal reply, then the server drains and
  // closes every connection.
  client.SendShutdown();
  ServerFrame ack;
  if (client.ReadServerFrame(&ack)) {
    std::cout << "shutdown acknowledged (reply id " << ack.id << ")\n";
  }
  server.WaitUntilShutdown();
  server.Shutdown();
  loop.Shutdown();
  std::cout << "server drained and stopped\n";
  return 0;
}
