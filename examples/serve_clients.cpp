// Serving concurrent clients from one shared, immutable index.
//
// The contract after the query-session refactor: searchers are immutable
// after build; all query scratch lives in sessions. That gives two ways to
// serve concurrent traffic, both shown here:
//
//  1. Direct sharing — every client thread owns a QuerySession and calls
//     TopR(r, k, session) on ONE shared const searcher. No locks, no
//     copies of the index, results bit-identical to serial execution.
//  2. ServeLoop — clients submit requests through a wait-free MPSC queue
//     and get futures; a single server thread coalesces whatever is in
//     flight into amortized SearchBatch calls and enforces per-tenant
//     limits. Same answers, plus cross-tenant batching.
#include <iostream>
#include <thread>
#include <vector>

#include "core/gct_index.h"
#include "core/query_session.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "server/serve_loop.h"

int main() {
  using namespace tsd;

  Graph graph = HolmeKim(/*n=*/2000, /*m_per_vertex=*/6, /*p_triangle=*/0.6,
                         /*seed=*/42);
  const GctIndex index = GctIndex::Build(graph);  // built once, shared const
  std::cout << "graph: " << graph.num_vertices() << " vertices, index built\n";

  // --- 1. Direct sharing: four threads, one searcher, a session each.
  std::vector<std::vector<TopRResult>> answers(4);
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&index, &answers, c] {
      QuerySession session;  // owns all of this thread's query scratch
      for (std::uint32_t k = 3; k <= 5; ++k) {
        answers[c].push_back(index.TopR(/*r=*/3, k, session));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  std::cout << "\ndirect sharing: 4 threads x 3 queries, top vertex at k=3: "
            << answers[0][0].entries[0].vertex << " (score "
            << answers[0][0].entries[0].score
            << "), identical across clients: "
            << (answers[0][0].entries[0].vertex ==
                        answers[3][0].entries[0].vertex
                    ? "yes"
                    : "no")
            << "\n";

  // --- 2. ServeLoop: futures + request coalescing + per-tenant limits.
  ServeOptions options;
  options.max_r = 100;          // reject runaway context requests
  options.max_queue_depth = 8;  // per-tenant in-flight cap
  ServeLoop loop(index, options);
  loop.Start();

  std::vector<Future<ServeReply>> futures;
  for (std::uint64_t tenant = 0; tenant < 3; ++tenant) {
    for (std::uint32_t k = 3; k <= 5; ++k) {
      futures.push_back(loop.Submit(ServeRequest{tenant, k, /*r=*/3}));
    }
  }
  futures.push_back(loop.Submit(ServeRequest{9, /*k=*/3, /*r=*/5000}));

  std::cout << "\nserve loop replies:\n";
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServeReply reply = futures[i].Get();
    std::cout << "  request " << i + 1 << ": "
              << ServeStatusName(reply.status);
    if (reply.status == ServeStatus::kOk) {
      std::cout << ", top vertex " << reply.result.entries[0].vertex;
    }
    std::cout << "\n";
  }
  loop.Shutdown();

  const ServeStats stats = loop.stats();
  std::cout << "\nserved " << stats.served << " requests in "
            << stats.batches << " coalesced batches (r-limit rejections: "
            << stats.rejected_r_limit << ")\n";
  return 0;
}
