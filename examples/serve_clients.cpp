// Serving concurrent clients from one shared, immutable index.
//
// The contract after the query-session refactor: searchers are immutable
// after build; all query scratch lives in sessions. That gives two ways to
// serve concurrent traffic, both shown here:
//
//  1. Direct sharing — every client thread owns a QuerySession and calls
//     TopR(r, k, session) on ONE shared const searcher. No locks, no
//     copies of the index, results bit-identical to serial execution.
//  2. ServeLoop — clients submit requests through a wait-free MPSC queue
//     and get futures; a single server thread coalesces whatever is in
//     flight into amortized SearchBatch calls and enforces per-tenant
//     limits. Same answers, plus cross-tenant batching.
//  3. ShardedServeLoop — the same contract over S independent consumer
//     loops with tenants hashed across them (`tsdtool serve --shards=N`):
//     S batches dispatch concurrently, each tenant pinned to one shard so
//     its admission and ordering stay deterministic. Same answers again.
#include <iostream>
#include <thread>
#include <vector>

#include "core/gct_index.h"
#include "core/query_session.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "server/serve_loop.h"
#include "server/sharded_serve.h"

int main() {
  using namespace tsd;

  Graph graph = HolmeKim(/*n=*/2000, /*m_per_vertex=*/6, /*p_triangle=*/0.6,
                         /*seed=*/42);
  const GctIndex index = GctIndex::Build(graph);  // built once, shared const
  std::cout << "graph: " << graph.num_vertices() << " vertices, index built\n";

  // --- 1. Direct sharing: four threads, one searcher, a session each.
  std::vector<std::vector<TopRResult>> answers(4);
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&index, &answers, c] {
      QuerySession session;  // owns all of this thread's query scratch
      for (std::uint32_t k = 3; k <= 5; ++k) {
        answers[c].push_back(index.TopR(/*r=*/3, k, session));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  std::cout << "\ndirect sharing: 4 threads x 3 queries, top vertex at k=3: "
            << answers[0][0].entries[0].vertex << " (score "
            << answers[0][0].entries[0].score
            << "), identical across clients: "
            << (answers[0][0].entries[0].vertex ==
                        answers[3][0].entries[0].vertex
                    ? "yes"
                    : "no")
            << "\n";

  // --- 2. ServeLoop: futures + request coalescing + per-tenant limits.
  ServeOptions options;
  options.max_r = 100;          // reject runaway context requests
  options.max_queue_depth = 8;  // per-tenant in-flight cap
  ServeLoop loop(index, options);
  loop.Start();

  std::vector<Future<ServeReply>> futures;
  for (std::uint64_t tenant = 0; tenant < 3; ++tenant) {
    for (std::uint32_t k = 3; k <= 5; ++k) {
      futures.push_back(loop.Submit(ServeRequest{tenant, k, /*r=*/3}));
    }
  }
  futures.push_back(loop.Submit(ServeRequest{9, /*k=*/3, /*r=*/5000}));

  std::cout << "\nserve loop replies:\n";
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServeReply reply = futures[i].Get();
    std::cout << "  request " << i + 1 << ": "
              << ServeStatusName(reply.status);
    if (reply.status == ServeStatus::kOk) {
      std::cout << ", top vertex " << reply.result.entries[0].vertex;
    }
    std::cout << "\n";
  }
  loop.Shutdown();

  const ServeStats stats = loop.stats();
  std::cout << "\nserved " << stats.served << " requests in "
            << stats.batches << " coalesced batches (r-limit rejections: "
            << stats.rejected_r_limit << ")\n";

  // --- 3. ShardedServeLoop: two consumer loops, tenants hashed to shards.
  ShardedServeOptions sharded_options;
  sharded_options.num_shards = 2;
  sharded_options.shard.max_r = 100;
  ShardedServeLoop sharded(index, sharded_options);
  sharded.Start();

  std::vector<Future<ServeReply>> sharded_futures;
  std::cout << "\nsharded loop (2 shards), tenant pinning:\n";
  for (std::uint64_t tenant = 0; tenant < 6; ++tenant) {
    std::cout << "  tenant " << tenant << " -> shard "
              << sharded.ShardOf(tenant) << "\n";
    for (std::uint32_t k = 3; k <= 5; ++k) {
      sharded_futures.push_back(
          sharded.Submit(ServeRequest{tenant, k, /*r=*/3}));
    }
  }
  bool all_match = true;
  for (std::size_t i = 0; i < sharded_futures.size(); ++i) {
    ServeReply reply = sharded_futures[i].Get();
    // Same (k, r) as the single-consumer loop's tenant streams above:
    // replies are a pure function of the request, so shard count is
    // invisible in the answers.
    all_match = all_match && reply.status == ServeStatus::kOk &&
                reply.result.entries[0].vertex ==
                    answers[0][i % 3].entries[0].vertex;
  }
  sharded.Shutdown();

  const ServeStats sharded_stats = sharded.stats();
  std::cout << "served " << sharded_stats.served << " requests across "
            << sharded.num_shards() << " shards (";
  for (std::uint32_t s = 0; s < sharded.num_shards(); ++s) {
    std::cout << (s ? ", " : "") << "shard " << s << ": "
              << sharded.shard_stats(s).served;
  }
  std::cout << "), answers identical to the 1-consumer loop: "
            << (all_match ? "yes" : "no") << "\n";
  return 0;
}
