// Dynamic maintenance: keep structural diversity queries fresh while the
// social network changes, without rebuilding the index (the extension
// sketched in the paper's Section 5.3 remarks).
#include <iostream>

#include "core/dynamic_tsd_index.h"
#include "graph/generators.h"

int main() {
  using namespace tsd;

  // Start from the paper's Figure 1 graph.
  Graph graph = PaperFigure1Graph();
  DynamicTsdIndex index(graph);

  std::cout << "initial score(v) at k=4: " << index.Score(0, 4)
            << " (the three contexts of Figure 1)\n";

  // A new collaboration forms between the x- and y-cliques: x1 befriends
  // y2, y3, y4. Together with the existing bridges this starts fusing the
  // two contexts.
  index.InsertEdge(1, 6);
  index.InsertEdge(1, 7);
  index.InsertEdge(1, 8);
  std::cout << "after x1 joins the y-group: score(v) at k=4 = "
            << index.Score(0, 4) << " (" << index.rebuild_count()
            << " ego-network rebuilds so far)\n";

  // The octahedron loses a member's ties.
  index.RemoveEdge(9, 10);
  index.RemoveEdge(9, 11);
  std::cout << "after r1 drops two ties:   score(v) at k=4 = "
            << index.Score(0, 4) << " (" << index.rebuild_count()
            << " rebuilds)\n";

  // Queries stay available throughout; freeze a static snapshot when the
  // update stream quiesces.
  TsdIndex snapshot = index.Freeze();
  const TopRResult top = snapshot.TopR(1, 4);
  std::cout << "current top-1: vertex " << top.entries[0].vertex
            << " with score " << top.entries[0].score << "\n";
  return 0;
}
