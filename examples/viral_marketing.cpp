// Viral marketing scenario (the paper's §1 motivation): pick campaign
// targets by truss-based structural diversity — users exposed to a message
// from several independent social contexts are the likeliest to adopt —
// and verify with an independent-cascade simulation that the high-diversity
// targets really do activate more often than random or degree-based picks.
#include <iostream>

#include "core/baselines.h"
#include "core/gct_index.h"
#include "graph/generators.h"
#include "influence/contagion_experiments.h"
#include "influence/independent_cascade.h"
#include "influence/influence_max.h"

int main() {
  using namespace tsd;

  // A mid-sized synthetic social network with power-law degrees and high
  // clustering (the regime where truss structure is informative).
  const Graph graph = HolmeKim(/*n=*/20000, /*edges_per_vertex=*/6,
                               /*triad_probability=*/0.6, /*seed=*/2026);
  std::cout << "social network: " << graph.num_vertices() << " users, "
            << graph.num_edges() << " friendships\n";

  // The campaign's initial broadcasters: 50 influence-maximization seeds.
  RisOptions ris;
  ris.probability = 0.02;
  ris.num_samples = 20000;
  const std::vector<VertexId> broadcasters = SelectSeedsRis(graph, 50, ris);

  // Candidate audiences to track: top-100 by truss diversity vs random.
  GctIndex index = GctIndex::Build(graph);
  TopRResult diverse = index.TopR(/*r=*/100, /*k=*/4);
  std::vector<VertexId> diverse_targets;
  for (const TopREntry& e : diverse.entries) diverse_targets.push_back(e.vertex);
  const std::vector<VertexId> random_targets = RandomSelect(graph, 100, 7);
  const std::vector<VertexId> degree_targets = SelectSeedsByDegree(graph, 100);

  IndependentCascade cascade(graph, /*probability=*/0.02);
  const std::uint32_t runs = 2000;
  std::cout << "\nexpected number of the 100 tracked users reached by the "
               "campaign ("
            << runs << " Monte-Carlo runs):\n";
  std::cout << "  truss-diversity targets: "
            << ExpectedActivatedTargets(cascade, broadcasters, diverse_targets,
                                        runs, 1)
            << "\n  highest-degree targets:  "
            << ExpectedActivatedTargets(cascade, broadcasters, degree_targets,
                                        runs, 1)
            << "\n  random targets:          "
            << ExpectedActivatedTargets(cascade, broadcasters, random_targets,
                                        runs, 1)
            << "\n";

  std::cout << "\nmost diverse user: " << diverse.entries[0].vertex
            << " participates in " << diverse.entries[0].score
            << " distinct social contexts of sizes:";
  for (const SocialContext& context : diverse.entries[0].contexts) {
    std::cout << " " << context.size();
  }
  std::cout << "\n";
  return 0;
}
