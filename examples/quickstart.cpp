// Quickstart: build a graph, run a top-r truss-based structural diversity
// search, and inspect the winners' social contexts.
//
// This walks the paper's running example (Figure 1): the query vertex v has
// three social contexts at k = 4 — two 4-cliques and an octahedron — so it
// is the most "structurally diverse" vertex in the graph.
#include <iostream>

#include "core/gct_index.h"
#include "core/online_search.h"
#include "graph/generators.h"
#include "graph/graph.h"

int main() {
  using namespace tsd;

  // 1. Build a graph. Use GraphBuilder for your own edges, or a generator.
  //    Here: the paper's 17-vertex Figure 1 example.
  Graph graph = PaperFigure1Graph();
  std::cout << "graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges\n\n";

  // 2. One-off query? The online searcher needs no index.
  OnlineSearcher online(graph);
  TopRResult top = online.TopR(/*r=*/3, /*k=*/4);
  std::cout << "top-3 vertices by truss-based structural diversity (k=4):\n";
  for (const TopREntry& entry : top.entries) {
    std::cout << "  " << PaperFigure1VertexName(entry.vertex)
              << "  score=" << entry.score << "  contexts:";
    for (const SocialContext& context : entry.contexts) {
      std::cout << " {";
      for (std::size_t i = 0; i < context.size(); ++i) {
        std::cout << (i ? "," : "") << PaperFigure1VertexName(context[i]);
      }
      std::cout << "}";
    }
    std::cout << "\n";
  }

  // 3. Repeated queries with different k and r? Build the GCT index once;
  //    every score query is then two binary searches.
  GctIndex index = GctIndex::Build(graph);
  std::cout << "\nscore(v) by threshold k (from the GCT index):\n";
  for (std::uint32_t k = 2; k <= 5; ++k) {
    std::cout << "  k=" << k << " -> " << index.Score(/*v=*/0, k) << "\n";
  }
  return 0;
}
