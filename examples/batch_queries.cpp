// Batch queries: answer many (k, r) questions from ONE pass.
//
// A vertex's ego trussness decomposition determines its structural
// diversity score at every threshold k simultaneously, so a dashboard that
// wants "the most diverse vertices at k = 3, 4, and 5" should not run three
// scans. DiversitySearcher::SearchBatch amortizes one deterministic
// pipeline pass across the whole batch — results are bit-identical to
// calling TopR once per query, at any thread count.
#include <iostream>
#include <vector>

#include "core/gct_index.h"
#include "core/online_search.h"
#include "graph/generators.h"
#include "graph/graph.h"

int main() {
  using namespace tsd;

  // A small clustered social network.
  Graph graph = HolmeKim(/*n=*/2000, /*m_per_vertex=*/6, /*p_triangle=*/0.6,
                         /*seed=*/42);
  std::cout << "graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges\n\n";

  // The batch: top-5 at three thresholds plus a deep top-1 at k=6. Any
  // DiversitySearcher accepts it; the online searcher decomposes each ego
  // network once and scores it at every requested k.
  const std::vector<BatchQuery> queries = {
      {/*k=*/3, /*r=*/5}, {/*k=*/4, /*r=*/5}, {/*k=*/5, /*r=*/5},
      {/*k=*/6, /*r=*/1}};

  OnlineSearcher online(graph);
  const std::vector<TopRResult> online_results = online.SearchBatch(queries);
  std::cout << "online batch scanned "
            << online_results[0].stats.vertices_scored
            << " ego networks for " << queries.size() << " queries\n";
  for (std::size_t q = 0; q < queries.size(); ++q) {
    std::cout << "  k=" << queries[q].k << " r=" << queries[q].r << ":";
    for (const TopREntry& entry : online_results[q].entries) {
      std::cout << " v" << entry.vertex << "(" << entry.score << ")";
    }
    std::cout << "\n";
  }

  // Serving repeated batches? Build the GCT index once; its batch path
  // sweeps each vertex's compressed slice once for all thresholds.
  GctIndex gct = GctIndex::Build(graph);
  const std::vector<TopRResult> gct_results = gct.SearchBatch(queries);
  bool identical = true;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    identical = identical &&
                gct_results[q].entries.size() ==
                    online_results[q].entries.size();
    for (std::size_t i = 0; identical && i < gct_results[q].entries.size();
         ++i) {
      identical = gct_results[q].entries[i].vertex ==
                      online_results[q].entries[i].vertex &&
                  gct_results[q].entries[i].score ==
                      online_results[q].entries[i].score;
    }
  }
  std::cout << "\nGCT batch answers "
            << (identical ? "match the online batch exactly"
                          : "DIVERGED (bug!)")
            << "\n";
  return 0;
}
