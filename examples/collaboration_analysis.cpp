// Collaboration-network analysis (the paper's DBLP case study, Exp-10):
// find the researcher whose co-author neighborhood spans the most distinct
// research groups, and print the groups. Also contrasts with the
// component-based and core-based models, which fail to decompose the same
// ego-network.
#include <iostream>

#include "core/gct_index.h"
#include "core/scoring.h"
#include "graph/ego_network.h"
#include "graph/generators.h"

int main() {
  using namespace tsd;

  CollaborationOptions options;
  options.num_authors = 20000;
  options.num_groups = 1600;
  options.num_hubs = 12;
  options.groups_per_hub = 6;
  const CollaborationGraph collab = Collaboration(options, /*seed=*/42);
  const Graph& graph = collab.graph;
  std::cout << "collaboration network: " << graph.num_vertices()
            << " authors, " << graph.num_edges() << " co-author pairs, "
            << collab.groups.size() << " research groups\n";

  const std::uint32_t k = 5;
  GctIndex index = GctIndex::Build(graph);
  const TopRResult top = index.TopR(/*r=*/5, k);

  std::cout << "\nmost interdisciplinary authors (k=" << k << "):\n";
  for (const TopREntry& entry : top.entries) {
    std::cout << "  author-" << entry.vertex << ": " << entry.score
              << " research communities, sizes:";
    for (const SocialContext& context : entry.contexts) {
      std::cout << " " << context.size();
    }
    std::cout << "\n";
  }

  // The paper's point (Exp-10/11): on the same ego-network, the component
  // model sees one blob and the core model merges groups through bridging
  // co-authors; only the truss model separates the communities.
  const VertexId star = top.entries[0].vertex;
  EgoNetworkExtractor extractor(graph);
  EgoNetwork ego = extractor.Extract(star);
  const ScoreResult components = ScoreComponents(ego, k, false);
  const ScoreResult cores = ScoreKCores(ego, k - 1, false);
  std::cout << "\nego-network of author-" << star << " ("
            << ego.num_members() << " co-authors, " << ego.num_edges()
            << " pairs):\n"
            << "  component model (size>=" << k
            << "): " << components.score << " context(s)\n"
            << "  core model ((k-1)-cores):  " << cores.score
            << " context(s)\n"
            << "  truss model (k-trusses):   " << top.entries[0].score
            << " context(s)\n";
  return 0;
}
