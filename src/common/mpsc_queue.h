// Unbounded multi-producer / single-consumer queue (Vyukov's intrusive
// design) for the serving layer's submission path.
//
// Push is wait-free on the data path — one atomic exchange plus one release
// store — so N client threads never contend on a lock to hand work to the
// server. The consumer side is single-threaded by contract (the serve loop),
// which is what lets pop run without any atomic RMW at all.
//
// Blocking: the queue itself never blocks. ConsumerWait() parks the consumer
// until a producer signals; producers touch the wake mutex only when the
// consumer is actually parked (a seq_cst-published flag), so while the
// consumer is busy draining, Push stays lock-free end to end. The lost
// wake-up race is closed in two layers: seq_cst fences order "publish value,
// then read parked flag" (producer) against "set parked flag, then check
// empty" (consumer), so at least one side observes the other; and when the
// producer does notify, the empty critical section in NotifyOne() makes it
// wait for the consumer to be genuinely inside wait() before signalling.
//
// Per-producer FIFO order is preserved; orders from different producers
// interleave arbitrarily (which is fine: the serve loop's replies are a pure
// function of each request, not of arrival order).
//
// Thread-safety annotations: the single-consumer contract is a capability
// (`consumer_role_`), not a lock — TryPop/Empty/ConsumerWait carry
// TSD_REQUIRES on it and the consumer thread claims it once with
// AssertConsumer() at its entry point, so a producer-side call to a
// consumer-only method is a Clang build error, not a latent race. The
// Dekker-style parked-flag fast path in Push/NotifyOne is pure atomics and
// needs no annotations; the wake mutex guards no data (its empty critical
// section is a lost-wakeup fence), only the condition variable sleeps on it.
#pragma once

#include <atomic>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"

namespace tsd {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  /// Destruction requires external quiescence: no producer may be pushing
  /// and the consumer must be done (the destructor walks the consumer-side
  /// chain, hence the role claim).
  ~MpscQueue() {
    consumer_role_.Assert();  // single-threaded teardown acts as consumer
    Node* node = tail_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Claims the consumer role for the current scope: a statically-checked
  /// declaration that this code runs on the (single) consumer thread. Call
  /// it at the consumer thread's entry point — and inside wake predicates,
  /// which the analysis treats as separate functions.
  void AssertConsumer() const TSD_ASSERT_CAPABILITY(consumer_role_) {}

  /// Enqueues a value. Safe to call from any number of threads.
  void Push(T value) {
    Node* node = new Node(std::move(value));
    // Publish the node: swing head, then link the predecessor to it. Between
    // the two steps the chain is momentarily broken; TryPop treats that as
    // empty and the producer's NotifyOne() below re-arms the consumer.
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
    NotifyOne();
  }

  /// Dequeues into *out. Single consumer only. Returns false when the queue
  /// is empty (or a push is mid-flight; the producer's notify covers that).
  bool TryPop(T* out) TSD_REQUIRES(consumer_role_) {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    TSD_DCHECK(next->value.has_value());
    *out = std::move(*next->value);
    next->value.reset();
    tail_ = next;  // next becomes the new stub
    delete tail;
    return true;
  }

  /// Parks the consumer until `wake()` returns true. `wake` is evaluated
  /// under the wake mutex: once before sleeping (so a push that landed just
  /// before the call returns immediately) and after every notification.
  /// Typical use: ConsumerWait([&] { return !Empty() || shutting_down; }) —
  /// with an AssertConsumer() inside the lambda if it calls consumer-only
  /// methods (lambdas do not inherit the caller's capabilities).
  template <typename WakeFn>
  void ConsumerWait(WakeFn&& wake) TSD_REQUIRES(consumer_role_) {
    UniqueMutexLock lock(wake_mutex_);
    // Publish "parked" before the first predicate check so that a producer
    // whose push the check misses is guaranteed to see the flag and notify
    // (the seq_cst fences on both sides forbid both misses at once). While
    // the flag stays set, every Push notifies under the mutex, which covers
    // all later re-checks after spurious or real wakeups.
    consumer_parked_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    while (!wake()) wake_cv_.Wait(lock);
    consumer_parked_.store(false, std::memory_order_relaxed);
  }

  /// Wakes the consumer if it is parked in ConsumerWait. Used by Push and by
  /// external state changes the consumer's wake predicate observes (e.g. the
  /// serve loop's shutdown flag). When the consumer is not parked this is a
  /// fence plus one relaxed load — no mutex traffic.
  void NotifyOne() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!consumer_parked_.load(std::memory_order_relaxed)) return;
    { MutexLock lock(wake_mutex_); }  // lost-wakeup fence
    wake_cv_.NotifyOne();
  }

  /// True when no fully-published element is visible to the consumer.
  /// Consumer-side view; producers racing a push may not be reflected yet.
  bool Empty() const TSD_REQUIRES(consumer_role_) {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    std::optional<T> value;  // engaged on every node but the stub
  };

  std::atomic<Node*> head_;  // producers push here (wait-free)
  /// Consumer cursor of the stub-first chain; confinement to the consumer
  /// thread (not a lock) is what makes the unsynchronized accesses sound.
  Node* tail_ TSD_GUARDED_BY(consumer_role_);

  ThreadRole consumer_role_;  // phantom capability: the single consumer

  Mutex wake_mutex_;  // guards no data; the cv's sleep/notify rendezvous
  CondVar wake_cv_;
  std::atomic<bool> consumer_parked_{false};
};

}  // namespace tsd
