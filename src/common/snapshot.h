// Zero-copy index snapshots: the versioned on-disk container format and the
// owned-or-mapped flat array it deserializes into.
//
// ## Format (version 1)
//
// A snapshot is a single file holding named byte sections, laid out so that
// loading is open + mmap + validate + bind spans — no parsing, no pointer
// fixup, no per-element work. All scalar fields are explicit little-endian
// fixed-width integers; all payload sections are 64-byte aligned (cache
// line / any SIMD alignment a kernel could want):
//
//   [0, 64)                      header
//   [64, table_offset)           payload sections, 64-byte aligned,
//                                zero-padded in between
//   [table_offset, +32*count)    section table
//
//   header (fixed 64 bytes, trailing bytes zero):
//     u64  magic          "TSDSNAP1" (bytes 54 53 44 53 4E 41 50 31)
//     u32  format_version  kSnapshotFormatVersion
//     u32  endian_marker   0x01020304, written via native memcpy: a reader
//                          that decodes a different value was produced on a
//                          host with different endianness and must refuse
//                          (the bulk arrays below are memcpy'd native)
//     u64  file_size       total bytes; must equal the real file size
//     u64  table_offset    64-byte aligned
//     u32  section_count
//     u32  reserved        zero
//     u64  table_checksum  Checksum64 of the section-table bytes
//
//   section table entry (32 bytes):
//     u64  tag             section name, 8 ASCII bytes (SnapshotTag)
//     u64  offset          64-byte aligned, >= 64
//     u64  length          payload bytes
//     u64  checksum        Checksum64 of the payload bytes
//
// Sections are typed arrays of trivially copyable fixed-width elements; an
// object (graph CSR, TSD forest, GCT supernode slices) is a handful of
// sections sharing a tag prefix plus one small "meta" section of u64
// scalars. Because every per-vertex slice in those objects is already a
// flat offset-indexed range, binding the mapped bytes behind FlatArray
// spans reproduces the exact in-memory representation the builders create.
//
// ## Versioning policy
//
// kSnapshotFormatVersion names the CONTAINER layout above. Object section
// schemas (which tags an object writes and what their elements mean) are
// versioned per object through a "ver" slot in the object's meta section.
// Readers must reject, with a diagnostic, any container version or object
// version they do not know — a snapshot is a cache, so the loud fallback is
// always "rebuild from the edge list". Within one version, a saved
// snapshot's bytes are a pure function of the object contents (sections are
// written in a fixed order with zero padding), which is what the
// save→load→save byte-identity test asserts.
//
// ## Reader discipline
//
// SnapshotReader::Open never trusts an on-disk length: every offset/length
// is bounds-checked against the real file size before use, sections may not
// overlap the header, the table, or each other, and section payloads are
// checksummed by default. Every failure is reported by return value with a
// diagnostic — a corrupt snapshot is a clean load failure, never a crash,
// an over-read, or an attacker-sized allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mmap_file.h"
#include "common/serialize.h"

namespace tsd {

inline constexpr std::uint64_t kSnapshotMagic = 0x3150414E53445354ULL;
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;
inline constexpr std::uint32_t kSnapshotEndianMarker = 0x01020304;
inline constexpr std::size_t kSnapshotAlignment = 64;
/// A section table above this is rejected before anything is allocated.
inline constexpr std::uint32_t kSnapshotMaxSections = 4096;

/// Builds a section tag from up to 8 ASCII characters ("graf.off").
constexpr std::uint64_t SnapshotTag(const char* name) {
  std::uint64_t tag = 0;
  for (int i = 0; i < 8 && name[i] != '\0'; ++i) {
    tag |= static_cast<std::uint64_t>(static_cast<unsigned char>(name[i]))
           << (8 * i);
  }
  return tag;
}

/// Renders a tag back to its ASCII name (for diagnostics).
std::string SnapshotTagName(std::uint64_t tag);

/// 64-bit integrity checksum over a byte range: FNV-1a-style mixing over
/// four interleaved 8-byte-word lanes folded with the length at the end.
/// Stateless, stable across platforms that can open a snapshot (the format
/// is little-endian only), and fast enough to verify whole files on the
/// mmap load path — exactly enough to catch torn writes and bit rot. Not a
/// MAC.
std::uint64_t Checksum64(std::span<const std::byte> bytes);

/// A flat immutable array backed by EITHER an owned std::vector (built in
/// memory) OR a borrowed read-only region (bound into a mapped snapshot).
/// Accessors are span-shaped either way, so index/graph code is agnostic to
/// where the bytes live. Whoever binds a view is responsible for keeping
/// the backing mapping alive (the owning object holds the MappedFile).
template <typename T>
class FlatArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  FlatArray() = default;

  FlatArray(const FlatArray& other) { *this = other; }
  FlatArray& operator=(const FlatArray& other) {
    if (this == &other) return *this;
    if (other.owns()) {
      owned_ = other.owned_;
      view_ = owned_;
    } else {
      owned_.clear();
      view_ = other.view_;
    }
    return *this;
  }

  FlatArray(FlatArray&& other) noexcept { *this = std::move(other); }
  FlatArray& operator=(FlatArray&& other) noexcept {
    if (this == &other) return *this;
    const bool owned = other.owns();
    owned_ = std::move(other.owned_);
    view_ = owned ? std::span<const T>(owned_) : other.view_;
    other.owned_.clear();
    other.view_ = {};
    return *this;
  }

  /// Takes ownership of a built vector.
  FlatArray& operator=(std::vector<T> values) {
    owned_ = std::move(values);
    view_ = owned_;
    return *this;
  }

  /// Binds a borrowed read-only view (a mapped snapshot section). Any
  /// previously owned storage is released.
  void BindView(std::span<const T> view) {
    owned_.clear();
    owned_.shrink_to_fit();
    view_ = view;
  }

  /// True when the elements live in owned memory (false: borrowed view).
  bool owns() const { return view_.empty() || view_.data() == owned_.data(); }

  std::span<const T> span() const { return view_; }
  const T* data() const { return view_.data(); }
  const T* begin() const { return view_.data(); }
  const T* end() const { return view_.data() + view_.size(); }
  std::size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T& operator[](std::size_t i) const {
    TSD_DCHECK(i < view_.size());
    return view_[i];
  }
  const T& back() const {
    TSD_DCHECK(!view_.empty());
    return view_[view_.size() - 1];
  }

 private:
  std::vector<T> owned_;
  std::span<const T> view_;
};

/// Streams a snapshot to disk: header placeholder, 64-byte aligned payload
/// sections in AddArray order, section table, then the finalized header.
/// The writer runs on the trusted save path, so I/O failures and API misuse
/// (duplicate tags, Finish twice) throw tsd::CheckError.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(const std::string& path);
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Appends one typed array section. Tags must be unique within a file.
  template <typename T>
  void AddArray(std::uint64_t tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    AddBytes(tag, std::as_bytes(values));
  }

  /// Appends a small section of u64 scalars (object metadata).
  void AddScalars(std::uint64_t tag, std::span<const std::uint64_t> values) {
    AddArray<std::uint64_t>(tag, values);
  }

  void AddBytes(std::uint64_t tag, std::span<const std::byte> bytes);

  /// Writes the section table and header, then flushes. Must be called
  /// exactly once; the file is incomplete (and will fail to load) without.
  void Finish();

 private:
  struct Section {
    std::uint64_t tag;
    std::uint64_t offset;
    std::uint64_t length;
    std::uint64_t checksum;
  };

  void PadToAlignment();

  std::string path_;
  std::ofstream out_;
  std::vector<Section> sections_;
  std::uint64_t cursor_ = 0;
  bool finished_ = false;
};

/// Opens and fully validates a snapshot, then hands out zero-copy spans
/// into the mapping. Copyable: copies share the underlying mapping. An
/// object loaded from a reader must keep `mapping()` alive for as long as
/// it uses the spans.
class SnapshotReader {
 public:
  struct Options {
    /// Verify every section's checksum at open. Costs one pass over the
    /// file (still orders of magnitude cheaper than an index rebuild);
    /// disable only for benchmarking the pure page-table path.
    bool verify_checksums = true;
  };

  SnapshotReader() = default;

  /// Maps `path` and validates the container: magic, version, endianness,
  /// file size, table bounds and checksum, per-section alignment, bounds,
  /// overlap, duplicate tags, payload checksums. On failure returns false
  /// with a diagnostic in `*error` and leaves `*out` empty.
  [[nodiscard]] static bool Open(const std::string& path, SnapshotReader* out,
                                 std::string* error, const Options& options);
  [[nodiscard]] static bool Open(const std::string& path, SnapshotReader* out,
                                 std::string* error) {
    return Open(path, out, error, Options());
  }

  bool Has(std::uint64_t tag) const { return FindSection(tag) != nullptr; }

  /// Binds a typed zero-copy view of one section. Fails (false + `*error`)
  /// when the section is missing or its byte length is not a multiple of
  /// sizeof(T).
  template <typename T>
  [[nodiscard]] bool Read(std::uint64_t tag, std::span<const T>* out,
                          std::string* error) const {
    static_assert(std::is_trivially_copyable_v<T>);
    std::span<const std::byte> bytes;
    if (!ReadBytes(tag, &bytes, error)) return false;
    if (bytes.size() % sizeof(T) != 0) {
      if (error != nullptr) {
        *error = "section '" + SnapshotTagName(tag) + "': length " +
                 std::to_string(bytes.size()) +
                 " is not a multiple of element size " +
                 std::to_string(sizeof(T));
      }
      return false;
    }
    // The mapping is page-aligned and offsets are 64-byte aligned, so the
    // reinterpret below is aligned for any fixed-width element type.
    *out = {reinterpret_cast<const T*>(bytes.data()),
            bytes.size() / sizeof(T)};
    return true;
  }

  /// Reads a meta section of exactly `out.size()` u64 scalars.
  [[nodiscard]] bool ReadScalars(std::uint64_t tag,
                                 std::span<std::uint64_t> out,
                                 std::string* error) const;

  [[nodiscard]] bool ReadBytes(std::uint64_t tag,
                               std::span<const std::byte>* out,
                               std::string* error) const;

  /// The shared mapping backing every span this reader hands out.
  const std::shared_ptr<const MappedFile>& mapping() const { return file_; }

  std::size_t file_size() const { return file_ ? file_->size() : 0; }
  std::size_t num_sections() const { return sections_.size(); }

 private:
  struct Section {
    std::uint64_t tag;
    std::uint64_t offset;
    std::uint64_t length;
  };

  const Section* FindSection(std::uint64_t tag) const;

  std::shared_ptr<const MappedFile> file_;
  std::vector<Section> sections_;
};

}  // namespace tsd
