#include "common/check.h"

#include <sstream>

namespace tsd::internal {

// [[noreturn]] + cold are declared in check.h; the definition only throws,
// never returns, so the attributes are sound.
void CheckFailed(const char* condition, const char* file, int line,
                 const std::string& message) {
  std::ostringstream out;
  out << "TSD_CHECK failed: " << condition << " at " << file << ":" << line;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw CheckError(out.str());
}

}  // namespace tsd::internal
