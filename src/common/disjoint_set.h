// Union-find (disjoint set union) with union by size and path halving.
// Used for connected-component identification of social contexts, Kruskal's
// maximum spanning forest in TSD-index construction, and supernode merging in
// GCT-index construction.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace tsd {

class DisjointSet {
 public:
  DisjointSet() = default;
  explicit DisjointSet(std::size_t n) { Reset(n); }

  /// Reinitializes to n singleton sets.
  void Reset(std::size_t n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), 0U);
    size_.assign(n, 1U);
    num_sets_ = n;
  }

  std::size_t size() const { return parent_.size(); }

  /// Representative of x's set (with path halving).
  std::uint32_t Find(std::uint32_t x) {
    TSD_DCHECK(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b. Returns true if they were distinct.
  bool Union(std::uint32_t a, std::uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --num_sets_;
    return true;
  }

  bool Connected(std::uint32_t a, std::uint32_t b) {
    return Find(a) == Find(b);
  }

  /// Number of elements in x's set.
  std::uint32_t SetSize(std::uint32_t x) { return size_[Find(x)]; }

  /// Total number of disjoint sets (including singletons).
  std::size_t NumSets() const { return num_sets_; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t num_sets_ = 0;
};

}  // namespace tsd
