// Read-only memory-mapped file.
//
// MappedFile owns one PROT_READ/MAP_PRIVATE mapping of a whole file. The
// mapping is immutable, so one MappedFile may be shared read-only across
// threads (and, through the page cache, N processes mapping the same file
// share one physical copy of the data). Open reports failure by return
// value — a missing or unmappable file is a clean load failure, never a
// crash — which is what the snapshot loader (common/snapshot.h) builds on.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace tsd {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. On failure returns false and describes why in
  /// `*error` (when non-null); `*out` is reset either way. Empty files map
  /// successfully to an empty byte range.
  [[nodiscard]] static bool Open(const std::string& path, MappedFile* out,
                                 std::string* error);

  bool valid() const { return data_ != nullptr || size_ == 0; }
  std::size_t size() const { return size_; }

  /// The mapped bytes. Valid for the lifetime of this MappedFile.
  std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(data_), size_};
  }

 private:
  void Reset() noexcept;

  void* data_ = nullptr;  // nullptr iff no mapping (size_ == 0)
  std::size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace tsd
