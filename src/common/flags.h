// Minimal command-line flag parsing for the bench binaries and CLI tools.
// Supports --name=value and bare boolean --name; anything else is
// positional. (The "--name value" two-token form is intentionally not
// supported — it is ambiguous with boolean flags followed by positionals.)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tsd {

/// Parsed command line: registered typed lookups over "--key=value" pairs.
class Flags {
 public:
  /// Parses argv. Unrecognized positional arguments are collected in
  /// positional(). Throws CheckError on malformed flags.
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  std::int64_t GetInt(const std::string& name,
                      std::int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Benchmark scale selector: reads --scale, falling back to the
  /// TSD_BENCH_SCALE environment variable, then "small".
  /// Recognized values: "tiny", "small", "large".
  std::string BenchScale() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace tsd
