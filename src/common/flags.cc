#include "common/flags.h"

#include <cstdlib>
#include <utility>

#include "common/check.h"
#include "common/strings.h"

namespace tsd {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  TSD_CHECK_MSG(end != nullptr && *end == '\0',
                "flag --" << name << " is not an integer: " << it->second);
  return v;
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  TSD_CHECK_MSG(end != nullptr && *end == '\0',
                "flag --" << name << " is not a number: " << it->second);
  return v;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Flags::BenchScale() const {
  if (Has("scale")) return GetString("scale", "small");
  const char* env = std::getenv("TSD_BENCH_SCALE");
  if (env != nullptr && *env != '\0') return env;
  return "small";
}

}  // namespace tsd
