#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tsd {
namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

MappedFile::~MappedFile() { Reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

void MappedFile::Reset() noexcept {
  if (mapped_) munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

bool MappedFile::Open(const std::string& path, MappedFile* out,
                      std::string* error) {
  out->Reset();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    SetError(error, "cannot open '" + path + "': " + std::strerror(errno));
    return false;
  }
  struct stat st = {};
  if (fstat(fd, &st) != 0) {
    SetError(error, "cannot stat '" + path + "': " + std::strerror(errno));
    ::close(fd);
    return false;
  }
  if (!S_ISREG(st.st_mode)) {
    SetError(error, "'" + path + "' is not a regular file");
    ::close(fd);
    return false;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    // An empty file is a valid (empty) mapping; mmap(0) would fail.
    ::close(fd);
    return true;
  }
  void* data = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (data == MAP_FAILED) {
    SetError(error, "cannot mmap '" + path + "': " + std::strerror(errno));
    return false;
  }
  out->data_ = data;
  out->size_ = size;
  out->mapped_ = true;
  return true;
}

}  // namespace tsd
