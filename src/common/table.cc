#include "common/table.h"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "common/check.h"
#include "common/strings.h"

namespace tsd {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TSD_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  TSD_CHECK_MSG(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, expected "
                           << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToCell(double v) { return FormatDouble(v, 2); }

void TablePrinter::Print(std::ostream& out) const { out << ToString(); }

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      out << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
      out << " |";
    }
    out << '\n';
  };

  auto emit_separator = [&]() {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
    }
    out << '\n';
  };

  emit_row(headers_);
  emit_separator();
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void PrintBanner(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

}  // namespace tsd
