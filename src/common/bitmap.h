// Fixed-capacity dynamic bitset tuned for the bitmap-based ego-network truss
// decomposition of Section 6.2: adjacency-as-bits with AND-popcount support
// counting and fast set-bit iteration.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace tsd {

/// A resizable bitset over indices [0, size).
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t size) { Resize(size); }

  /// Resizes to `size` bits, clearing all bits.
  void Resize(std::size_t size) {
    size_ = size;
    words_.assign(WordCount(size), 0);
  }

  /// Number of addressable bits.
  std::size_t size() const { return size_; }

  /// Sets all bits to zero without changing the size.
  void ClearAll() { words_.assign(words_.size(), 0); }

  void Set(std::size_t i) {
    TSD_DCHECK(i < size_);
    words_[i >> 6] |= 1ULL << (i & 63);
  }

  void Clear(std::size_t i) {
    TSD_DCHECK(i < size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  bool Test(std::size_t i) const {
    TSD_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Number of set bits.
  std::size_t CountOnes() const {
    std::size_t total = 0;
    for (std::uint64_t word : words_) {
      total += static_cast<std::size_t>(std::popcount(word));
    }
    return total;
  }

  /// |this AND other| — the support primitive of the bitmap decomposition.
  /// Both bitmaps must have the same size.
  std::size_t AndPopcount(const Bitmap& other) const {
    TSD_DCHECK(size_ == other.size_);
    std::size_t total = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      total +=
          static_cast<std::size_t>(std::popcount(words_[w] & other.words_[w]));
    }
    return total;
  }

  /// Invokes `fn(i)` for every index i set in (this AND other), ascending.
  template <typename Fn>
  void ForEachCommonBit(const Bitmap& other, Fn&& fn) const {
    TSD_DCHECK(size_ == other.size_);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w] & other.words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<std::size_t>((w << 6) + bit));
        word &= word - 1;
      }
    }
  }

  /// Invokes `fn(i)` for every set index i, ascending.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<std::size_t>((w << 6) + bit));
        word &= word - 1;
      }
    }
  }

  /// Approximate heap footprint in bytes.
  std::size_t MemoryBytes() const { return words_.size() * sizeof(std::uint64_t); }

 private:
  static std::size_t WordCount(std::size_t bits) { return (bits + 63) / 64; }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace tsd
