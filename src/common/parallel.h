// Minimal chunked parallel-for used by the parallel index builders and the
// QueryPipeline.
//
// Per-vertex ego-truss work is embarrassingly parallel (every ego-network
// is independent), so callers split the vertex range into ordered chunks,
// process chunks from a shared atomic cursor (cheap dynamic load balancing
// — hub vertices cluster at low ids in preferential-attachment graphs), and
// merge per-chunk or per-worker results in deterministic order to keep the
// output bit-identical to the sequential run.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace tsd {

/// Algorithm tag for the pluggable truss-decomposition kernels implemented
/// by truss/truss_plan.h. It lives here — not in truss/ — so ParallelConfig
/// (and core's QueryOptions mirror) can carry the selection down through
/// the preprocessing layers without a common/ → truss/ dependency; common/
/// treats it as an opaque tag and never interprets it.
enum class TrussPlanAlgorithm : std::uint8_t {
  /// Statistics-driven choice (one cheap pass over the degree sequence;
  /// see TrussPlan::Auto in truss/truss_plan.h).
  kAuto = 0,
  /// Frontier-parallel bulk-synchronous peel — the reference plan.
  kBsp,
  /// Separated edge-removal rounds: supports of touched edges are
  /// recomputed against a frozen frontier, then committed.
  kBspJacobi,
  /// k-core prefilter first; edges whose Burkhardt core-number bound can
  /// never reach the requested trussness are pruned before any triangle
  /// counting.
  kCoreThenTruss,
};

/// Thread/chunk knobs for the parallel kernels that run outside the query
/// pipeline (triangle counting, global truss decomposition, index
/// construction). Mirrors core's QueryOptions{num_threads, num_chunks} so
/// searchers can forward their knobs to the preprocessing layers below
/// without a core/ dependency.
struct ParallelConfig {
  /// Worker threads. 1 selects the sequential code paths.
  std::uint32_t num_threads = 1;
  /// Chunks the work range is split into (0 = auto: one chunk when
  /// sequential, 8 per thread otherwise, matching the index builders and
  /// the query pipeline).
  std::uint32_t num_chunks = 0;
  /// Which truss-decomposition kernel the preprocessing stages should run
  /// (every plan is bit-identical on trussness; this is a performance knob).
  TrussPlanAlgorithm truss_plan = TrussPlanAlgorithm::kAuto;

  bool operator==(const ParallelConfig&) const = default;
};

/// Resolves a ParallelConfig's chunk count against a concrete work size
/// (auto default, clamped to `total`, never 0).
inline std::uint32_t EffectiveChunks(const ParallelConfig& config,
                                     std::uint64_t total) {
  std::uint32_t chunks = config.num_chunks;
  if (chunks == 0) {
    chunks = config.num_threads == 1 ? 1 : config.num_threads * 8;
  }
  if (total > 0 && chunks > total) {
    chunks = static_cast<std::uint32_t>(total);
  }
  return std::max(1U, chunks);
}

/// Invokes fn(worker_index, chunk_index, begin, end) for `num_chunks`
/// contiguous ranges covering [0, total), using `num_threads` workers.
/// worker_index identifies the executing worker in [0, num_threads), which
/// lets callers keep one reusable workspace per worker instead of one per
/// chunk. fn must be safe to call concurrently for distinct chunks.
/// Exceptions from workers are rethrown on the calling thread (first one
/// wins).
template <typename Fn>
void ParallelForChunksIndexed(std::uint64_t total, std::uint32_t num_chunks,
                              std::uint32_t num_threads, Fn&& fn) {
  TSD_CHECK(num_chunks >= 1);
  TSD_CHECK(num_threads >= 1);
  if (total == 0) return;
  num_chunks = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(num_chunks, total));
  const std::uint64_t chunk_size = (total + num_chunks - 1) / num_chunks;

  if (num_threads == 1) {
    for (std::uint32_t c = 0; c < num_chunks; ++c) {
      const std::uint64_t begin = c * chunk_size;
      const std::uint64_t end = std::min(total, begin + chunk_size);
      if (begin < end) fn(0U, c, begin, end);
    }
    return;
  }

  std::atomic<std::uint32_t> next_chunk{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&](std::uint32_t worker_index) {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::uint32_t c =
          next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      const std::uint64_t begin = c * chunk_size;
      const std::uint64_t end = std::min(total, begin + chunk_size);
      if (begin >= end) continue;
      try {
        fn(worker_index, c, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::uint32_t t = 0; t < num_threads; ++t) {
    threads.emplace_back(worker, t);
  }
  for (auto& thread : threads) thread.join();
  if (failed && first_error) std::rethrow_exception(first_error);
}

/// Chunk-only variant (no worker index); kept for callers whose state is
/// per-chunk rather than per-worker.
template <typename Fn>
void ParallelForChunks(std::uint64_t total, std::uint32_t num_chunks,
                       std::uint32_t num_threads, Fn&& fn) {
  ParallelForChunksIndexed(
      total, num_chunks, num_threads,
      [&fn](std::uint32_t /*worker*/, std::uint32_t chunk, std::uint64_t begin,
            std::uint64_t end) { fn(chunk, begin, end); });
}

}  // namespace tsd
