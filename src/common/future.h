// Minimal one-shot future/promise pair for the serving layer.
//
// std::future would also work, but the server needs exactly one behaviour —
// a producer thread fulfills a value once, a consumer thread blocks for it —
// and owning the ~60 lines keeps the substrate dependency-free, lets the
// reply path move the (potentially large) TopRResult instead of copying it,
// and gives abandonment a hard, debuggable failure mode (TSD_CHECK) instead
// of std::future_error.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/check.h"

namespace tsd {

template <typename T>
class Future;

namespace internal {

template <typename T>
struct FutureState {
  std::mutex mutex;
  std::condition_variable ready_cv;
  std::optional<T> value;
  bool abandoned = false;  // promise died without Set()
  /// One-shot completion hook (Future::OnReady): fired — outside the lock,
  /// on the fulfilling thread — when the value is set or the promise
  /// abandoned. Lets poll-free event loops (the epoll socket server) learn
  /// about readiness without blocking a thread per future.
  std::function<void()> on_ready;
};

}  // namespace internal

/// Producer side. Movable, not copyable; Set() may be called at most once.
/// Destroying an unfulfilled promise marks the state abandoned, which turns
/// a waiting Get() into a hard check failure instead of a silent hang.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) {}
  Promise(Promise&&) noexcept = default;
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;

  /// Move assignment abandons the currently-held state (if unfulfilled)
  /// before adopting the new one, so a Future already blocked in Get() on
  /// the old state fails the abandonment check instead of hanging silently.
  Promise& operator=(Promise&& other) noexcept {
    if (this != &other) {
      Abandon();
      state_ = std::move(other.state_);
    }
    return *this;
  }

  ~Promise() { Abandon(); }

  /// The (single) future observing this promise.
  Future<T> GetFuture() { return Future<T>(state_); }

  void Set(T value) {
    TSD_CHECK(state_ != nullptr);
    std::function<void()> on_ready;
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      TSD_CHECK_MSG(!state_->value.has_value(), "promise fulfilled twice");
      state_->value.emplace(std::move(value));
      on_ready = std::move(state_->on_ready);
      state_->on_ready = nullptr;
    }
    state_->ready_cv.notify_all();
    if (on_ready) on_ready();  // outside the lock: hooks may take locks
  }

 private:
  void Abandon() noexcept {
    if (state_ == nullptr) return;
    std::function<void()> on_ready;
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->value.has_value()) return;
      state_->abandoned = true;
      on_ready = std::move(state_->on_ready);
      state_->on_ready = nullptr;
    }
    state_->ready_cv.notify_all();
    if (on_ready) on_ready();  // abandonment must wake observers too
  }

  std::shared_ptr<internal::FutureState<T>> state_;
};

/// Consumer side: blocks until the paired promise fulfills.
template <typename T>
class Future {
 public:
  Future() = default;
  Future(Future&&) noexcept = default;
  Future& operator=(Future&&) noexcept = default;
  Future(const Future&) = delete;
  Future& operator=(const Future&) = delete;

  bool valid() const { return state_ != nullptr; }

  /// True once the value is available (non-blocking).
  bool Ready() const {
    TSD_CHECK(valid());
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->value.has_value();
  }

  /// Registers a one-shot completion hook, invoked exactly once when the
  /// promise is fulfilled OR abandoned. If the future is already ready (or
  /// abandoned), the hook runs inline on this thread before returning;
  /// otherwise it runs on the fulfilling thread, outside the state lock, so
  /// it must be cheap and must not wait on this future. At most one hook
  /// per future; registering again replaces an unfired hook. The hook does
  /// NOT consume the value — pair it with Ready()/Get().
  void OnReady(std::function<void()> hook) {
    TSD_CHECK(valid());
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (!state_->value.has_value() && !state_->abandoned) {
        state_->on_ready = std::move(hook);
        return;
      }
    }
    hook();  // already resolved: fire inline, outside the lock
  }

  /// Blocks until the value is set, then moves it out. One call only.
  T Get() {
    TSD_CHECK(valid());
    // Consume the reference first so the state (and its mutex) stays alive
    // until AFTER the lock below is released — destruction order matters:
    // `state` outlives the scoped lock, and only then may drop the last
    // reference.
    std::shared_ptr<internal::FutureState<T>> state = std::move(state_);
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(state->mutex);
      state->ready_cv.wait(lock, [&state] {
        return state->value.has_value() || state->abandoned;
      });
      TSD_CHECK_MSG(state->value.has_value(),
                    "promise abandoned without a value");
      out = std::move(state->value);
      state->value.reset();
    }
    return std::move(*out);
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::FutureState<T>> state_;
};

}  // namespace tsd
