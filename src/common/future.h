// Minimal one-shot future/promise pair for the serving layer.
//
// std::future would also work, but the server needs exactly one behaviour —
// a producer thread fulfills a value once, a consumer thread blocks for it —
// and owning the ~60 lines keeps the substrate dependency-free, lets the
// reply path move the (potentially large) TopRResult instead of copying it,
// and gives abandonment a hard, debuggable failure mode (TSD_CHECK) instead
// of std::future_error.
//
// Locking contract (checked by -Wthread-safety under Clang): all shared
// state lives in internal::FutureState behind its Mutex; value/abandoned/
// on_ready are TSD_GUARDED_BY it. The OnReady hook is a user callback and
// is ALWAYS invoked outside the lock — on the fulfilling thread after
// Set/Abandon drop it, or inline on the registering thread when the future
// is already resolved — so a hook may itself take locks (the socket
// server's eventfd poke) without inverting lock order against the state
// mutex. Holding the state lock across the hook would deadlock any hook
// that touches the future and is exactly the class of bug the annotations
// exist to keep out.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"

namespace tsd {

template <typename T>
class Future;

namespace internal {

/// The channel shared by a Promise/Future pair. All methods are
/// thread-safe entry points that take the state mutex themselves; the
/// one-shot hook is fired outside it (see the header comment).
template <typename T>
class FutureState {
 public:
  /// Fulfills the channel (at most once) and fires a registered hook.
  void Set(T value) TSD_EXCLUDES(mutex_) {
    std::function<void()> on_ready;
    {
      MutexLock lock(mutex_);
      TSD_CHECK_MSG(!value_.has_value(), "promise fulfilled twice");
      value_.emplace(std::move(value));
      on_ready = std::move(on_ready_);
      on_ready_ = nullptr;
    }
    ready_cv_.NotifyAll();
    if (on_ready) on_ready();  // outside the lock: hooks may take locks
  }

  /// Marks the promise dead without a value (no-op once fulfilled); wakes
  /// waiters into a hard check failure and fires a registered hook.
  void Abandon() noexcept TSD_EXCLUDES(mutex_) {
    std::function<void()> on_ready;
    {
      MutexLock lock(mutex_);
      if (value_.has_value()) return;
      abandoned_ = true;
      on_ready = std::move(on_ready_);
      on_ready_ = nullptr;
    }
    ready_cv_.NotifyAll();
    if (on_ready) on_ready();  // abandonment must wake observers too
  }

  /// True once the value is available (non-blocking, non-consuming).
  bool Ready() TSD_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return value_.has_value();
  }

  /// Registers (or replaces) the one-shot hook; fires it inline when the
  /// channel is already resolved.
  void SetOnReady(std::function<void()> hook) TSD_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (!value_.has_value() && !abandoned_) {
        on_ready_ = std::move(hook);
        return;
      }
    }
    hook();  // already resolved: fire inline, outside the lock
  }

  /// Blocks until fulfilled, then moves the value out (one call only).
  T Take() TSD_EXCLUDES(mutex_) {
    std::optional<T> out;
    {
      UniqueMutexLock lock(mutex_);
      while (!value_.has_value() && !abandoned_) ready_cv_.Wait(lock);
      TSD_CHECK_MSG(value_.has_value(), "promise abandoned without a value");
      out = std::move(value_);
      value_.reset();
    }
    return std::move(*out);
  }

 private:
  Mutex mutex_;
  CondVar ready_cv_;
  std::optional<T> value_ TSD_GUARDED_BY(mutex_);
  bool abandoned_ TSD_GUARDED_BY(mutex_) = false;  // promise died w/o Set()
  /// One-shot completion hook (Future::OnReady): fired — outside the lock,
  /// on the fulfilling thread — when the value is set or the promise
  /// abandoned. Lets poll-free event loops (the epoll socket server) learn
  /// about readiness without blocking a thread per future.
  std::function<void()> on_ready_ TSD_GUARDED_BY(mutex_);
};

}  // namespace internal

/// Producer side. Movable, not copyable; Set() may be called at most once.
/// Destroying an unfulfilled promise marks the state abandoned, which turns
/// a waiting Get() into a hard check failure instead of a silent hang.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) {}
  Promise(Promise&&) noexcept = default;
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;

  /// Move assignment abandons the currently-held state (if unfulfilled)
  /// before adopting the new one, so a Future already blocked in Get() on
  /// the old state fails the abandonment check instead of hanging silently.
  Promise& operator=(Promise&& other) noexcept {
    if (this != &other) {
      if (state_ != nullptr) state_->Abandon();
      state_ = std::move(other.state_);
    }
    return *this;
  }

  ~Promise() {
    if (state_ != nullptr) state_->Abandon();
  }

  /// The (single) future observing this promise.
  Future<T> GetFuture() { return Future<T>(state_); }

  void Set(T value) {
    TSD_CHECK(state_ != nullptr);
    state_->Set(std::move(value));
  }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

/// Consumer side: blocks until the paired promise fulfills.
template <typename T>
class Future {
 public:
  Future() = default;
  Future(Future&&) noexcept = default;
  Future& operator=(Future&&) noexcept = default;
  Future(const Future&) = delete;
  Future& operator=(const Future&) = delete;

  bool valid() const { return state_ != nullptr; }

  /// True once the value is available (non-blocking).
  bool Ready() const {
    TSD_CHECK(valid());
    return state_->Ready();
  }

  /// Registers a one-shot completion hook, invoked exactly once when the
  /// promise is fulfilled OR abandoned. If the future is already ready (or
  /// abandoned), the hook runs inline on this thread before returning;
  /// otherwise it runs on the fulfilling thread, outside the state lock, so
  /// it must be cheap and must not wait on this future. At most one hook
  /// per future; registering again replaces an unfired hook. The hook does
  /// NOT consume the value — pair it with Ready()/Get().
  void OnReady(std::function<void()> hook) {
    TSD_CHECK(valid());
    state_->SetOnReady(std::move(hook));
  }

  /// Blocks until the value is set, then moves it out. One call only.
  T Get() {
    TSD_CHECK(valid());
    // Consume the reference first: the local shared_ptr keeps the state
    // (and its mutex) alive through Take() even if the promise side drops
    // its reference while we block.
    std::shared_ptr<internal::FutureState<T>> state = std::move(state_);
    return state->Take();
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::FutureState<T>> state_;
};

}  // namespace tsd
