// Deterministic pseudo-random number generation.
//
// All randomized components of the library (graph generators, Monte-Carlo
// cascade simulation, reverse-reachable sampling) take an explicit 64-bit
// seed and are fully reproducible across runs and platforms. The generator is
// xoshiro256**, seeded through SplitMix64 as recommended by its authors.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "common/hash.h"

namespace tsd {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer. The
/// finalizer is common/hash.h's Mix64, so one advancing step is exactly
/// Hash64(old_state, 0).
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  return Mix64(state += 0x9e3779b97f4a7c15ULL);
}

/// xoshiro256** PRNG. Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { Reseed(seed); }

  void Reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t Uniform(std::uint64_t bound) {
    TSD_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection method: unbiased and fast.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t UniformInRange(std::uint64_t lo, std::uint64_t hi) {
    TSD_DCHECK(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace tsd
