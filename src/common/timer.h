// Wall-clock timing utilities used by the benchmark harness and the
// SearchStats reported by every searcher.
#pragma once

#include <chrono>

namespace tsd {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the elapsed lifetime of this object to `*accumulator` (in seconds).
class ScopedTimer {
 public:
  explicit ScopedTimer(double* accumulator) : accumulator_(accumulator) {}
  ~ScopedTimer() { *accumulator_ += timer_.Seconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* accumulator_;
  WallTimer timer_;
};

}  // namespace tsd
