// Epoch-based reclamation (EBR) for read-mostly shared structures.
//
// The problem: a writer replaces a node of a lock-free structure (atomic
// pointer swap) while readers traverse it without locks. The old node cannot
// be freed while any reader might still dereference it. EBR solves this with
// a global epoch counter and per-reader announcements:
//
//  * A reader *pins* the current epoch before touching the structure and
//    *unpins* when done. While pinned, it may follow any pointer it reads
//    from the live structure.
//  * The writer never frees retired memory directly: Retire() queues the
//    object on the limbo list of the current epoch. TryAdvance() bumps the
//    global epoch only when every pinned reader has announced the current
//    one, then frees the limbo list from two epochs ago — by then, provably
//    no reader can still hold a pointer into it (see the safety argument on
//    TryAdvance).
//
// Division of labour, matching the capability annotations below:
//  * Reader side (Pin/Unpin via EpochGuard) is lock-free and thread-safe:
//    any number of threads, no ordering requirements among them.
//  * Writer side (Retire/TryAdvance) is *single-writer by contract*: the
//    caller serializes all writer calls externally (a mutex around the
//    update path, or a single updater thread). The writer_role_ ThreadRole
//    makes that contract compile-time checkable: writer entry points are
//    TSD_REQUIRES(writer_role()), and the serialized caller claims the role
//    with AssertWriter() plus a comment citing what serializes it.
//
// Grace-period granularity is coarse on purpose: *any* pinned reader parks
// epoch advancement entirely (the classic EBR trade-off — readers pay two
// atomic stores, the writer's garbage waits for the slowest reader). Pins
// are expected to bracket one query or one batch, never to be held
// indefinitely.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tsd {

/// Counters for observability ("per-epoch counters ride the stats tables").
struct EpochStats {
  std::uint64_t epoch = 0;            // current global epoch
  std::uint64_t advances = 0;         // successful TryAdvance calls
  std::uint64_t stalled_advances = 0; // TryAdvance calls blocked by a pin
  std::uint64_t retired = 0;          // objects handed to Retire
  std::uint64_t freed = 0;            // retired objects actually deleted
  std::uint64_t reader_slots = 0;     // reader slots ever created
};

class EpochManager {
 public:
  /// A reader's registration. Acquired per pin (or cached by a long-lived
  /// reader), released when done; slots are pooled on a lock-free intrusive
  /// list and never deallocated before the manager dies, so acquisition in
  /// the steady state is a walk + one CAS, with no heap traffic.
  struct ReaderSlot {
    static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

    std::atomic<std::uint64_t> epoch{kIdle};  // announced epoch; kIdle = unpinned
    std::atomic<bool> in_use{false};
    ReaderSlot* next = nullptr;  // immutable after publication on the list
  };

  EpochManager() = default;

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Frees every slot and every still-limbo object. By the reader contract
  /// no reader may be pinned (or pinning) at destruction time.
  ~EpochManager() {
    ReaderSlot* slot = slots_.load(std::memory_order_acquire);
    while (slot != nullptr) {
      TSD_CHECK(!slot->in_use.load(std::memory_order_acquire));
      ReaderSlot* next = slot->next;
      delete slot;
      slot = next;
    }
    for (std::vector<Retired>& bucket : limbo_) {
      for (Retired& r : bucket) {
        r.deleter(r.object);
        ++freed_;
      }
      bucket.clear();
    }
  }

  // ------------------------------------------------------------ reader side

  /// Grabs a free reader slot (reusing a pooled one when possible).
  /// Lock-free; safe from any thread.
  ReaderSlot* AcquireSlot() {
    for (ReaderSlot* slot = slots_.load(std::memory_order_acquire);
         slot != nullptr; slot = slot->next) {
      bool expected = false;
      if (slot->in_use.compare_exchange_strong(expected, true,
                                               std::memory_order_acquire)) {
        return slot;
      }
    }
    // No free slot: link a fresh one (push-front; slots are never unlinked).
    auto* slot = new ReaderSlot();
    slot->in_use.store(true, std::memory_order_relaxed);
    slot->next = slots_.load(std::memory_order_relaxed);
    while (!slots_.compare_exchange_weak(slot->next, slot,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
    }
    slots_created_.fetch_add(1, std::memory_order_relaxed);
    return slot;
  }

  /// Returns a slot to the pool. The slot must be unpinned.
  void ReleaseSlot(ReaderSlot* slot) {
    TSD_DCHECK(slot->epoch.load(std::memory_order_relaxed) ==
               ReaderSlot::kIdle);
    slot->in_use.store(false, std::memory_order_release);
  }

  /// Announces the current epoch on `slot`. After Pin returns, every pointer
  /// the reader loads from the protected structure stays valid until Unpin.
  ///
  /// The announce/confirm loop closes the classic race against TryAdvance:
  /// the seq_cst announce *store* and the writer's seq_cst slot *load* form
  /// a Dekker pair with the global-epoch store/load in the other order — if
  /// the writer missed this announcement, the confirm load here must see the
  /// writer's new epoch and the loop re-announces; if the confirm load saw
  /// the old epoch, the writer must have seen the announcement and its
  /// advance failed. Either way, no epoch this reader announced-and-
  /// confirmed can have its grace period expire while the pin is held.
  void Pin(ReaderSlot* slot) {
    std::uint64_t seen = global_epoch_.load(std::memory_order_seq_cst);
    while (true) {
      slot->epoch.store(seen, std::memory_order_seq_cst);
      const std::uint64_t confirm =
          global_epoch_.load(std::memory_order_seq_cst);
      if (confirm == seen) return;
      seen = confirm;
    }
  }

  void Unpin(ReaderSlot* slot) {
    slot->epoch.store(ReaderSlot::kIdle, std::memory_order_release);
  }

  // ------------------------------------------------------------ writer side

  /// The serialized writer claims its capability here, with a comment at the
  /// call site citing what serializes it (a mutex, a single updater thread).
  void AssertWriter() const TSD_ASSERT_CAPABILITY(writer_role_) {}

  /// Queues `object` for deletion once its grace period passes. The caller
  /// must already have unlinked it from the live structure (made it
  /// unreachable for new readers).
  template <typename T>
  void Retire(const T* object) TSD_REQUIRES(writer_role_) {
    Retire(const_cast<void*>(static_cast<const void*>(object)),
           [](void* p) { delete static_cast<T*>(p); });
  }

  /// Type-erased flavor for callers that manage their own layout.
  void Retire(void* object, void (*deleter)(void*)) TSD_REQUIRES(writer_role_) {
    const std::uint64_t e = global_epoch_.load(std::memory_order_relaxed);
    limbo_[e % kBuckets].push_back(Retired{object, deleter});
    ++retired_;
  }

  /// Attempts to advance the global epoch, freeing the limbo bucket whose
  /// grace period has passed. Returns false (and frees nothing) while any
  /// reader is pinned to a stale epoch — or to the current one, which is the
  /// conservative classic-EBR rule: advancement waits for full quiescence.
  ///
  /// Safety: objects freed here were retired at epoch E-2 (bucket
  /// (E+1) % 3), i.e. unlinked from the live structure before the global
  /// epoch became E-1. A reader can only be dereferencing such an object if
  /// it pinned before the unlink — but every reader pinned *now* announced
  /// epoch E (checked below, via the Dekker pairing with Pin), and a reader
  /// that announced E did so after the E-1 -> E advance, which happened
  /// after the unlink. So no current reader can reach the freed objects, and
  /// future readers cannot either (they are unlinked).
  bool TryAdvance() TSD_REQUIRES(writer_role_) {
    const std::uint64_t e = global_epoch_.load(std::memory_order_relaxed);
    for (ReaderSlot* slot = slots_.load(std::memory_order_acquire);
         slot != nullptr; slot = slot->next) {
      const std::uint64_t announced =
          slot->epoch.load(std::memory_order_seq_cst);
      if (announced != ReaderSlot::kIdle && announced != e) {
        ++stalled_advances_;
        return false;
      }
      if (announced == e) {
        // Pinned to the current epoch: quiescence not reached yet.
        ++stalled_advances_;
        return false;
      }
    }
    global_epoch_.store(e + 1, std::memory_order_seq_cst);
    ++advances_;
    std::vector<Retired>& expired = limbo_[(e + 1) % kBuckets];
    for (Retired& r : expired) {
      r.deleter(r.object);
      ++freed_;
    }
    expired.clear();
    return true;
  }

  /// Retire backlog not yet freed (writer-side view).
  std::size_t limbo_size() const TSD_REQUIRES(writer_role_) {
    std::size_t total = 0;
    for (const std::vector<Retired>& bucket : limbo_) total += bucket.size();
    return total;
  }

  // ------------------------------------------------------------ introspection

  std::uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_relaxed);
  }

  /// Counter snapshot. The writer-owned counters are read without the
  /// writer capability, so a mid-update snapshot is approximate (torn by at
  /// most one in-flight update) — fine for stats tables.
  EpochStats stats() const TSD_NO_THREAD_SAFETY_ANALYSIS {
    EpochStats s;
    s.epoch = epoch();
    s.advances = advances_;
    s.stalled_advances = stalled_advances_;
    s.retired = retired_;
    s.freed = freed_;
    s.reader_slots = slots_created_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  // Three buckets: garbage retired at epoch E is freed at the E+2 -> E+3
  // advance, after two full grace periods — one more than strictly needed,
  // the standard conservative margin.
  static constexpr std::size_t kBuckets = 3;

  struct Retired {
    void* object;
    void (*deleter)(void*);
  };

  std::atomic<std::uint64_t> global_epoch_{0};
  std::atomic<ReaderSlot*> slots_{nullptr};  // push-only intrusive list
  std::atomic<std::uint64_t> slots_created_{0};

  /// Phantom capability of the (externally serialized) single writer.
  ThreadRole writer_role_;
  std::vector<Retired> limbo_[kBuckets] TSD_GUARDED_BY(writer_role_);
  std::uint64_t advances_ TSD_GUARDED_BY(writer_role_) = 0;
  std::uint64_t stalled_advances_ TSD_GUARDED_BY(writer_role_) = 0;
  std::uint64_t retired_ TSD_GUARDED_BY(writer_role_) = 0;
  std::uint64_t freed_ TSD_GUARDED_BY(writer_role_) = 0;
};

/// RAII pin: acquires a slot and pins the current epoch for the scope. One
/// guard per query (or per batch) is the intended granularity. The guard
/// protects loads made by *any* thread during its lifetime that the holder
/// synchronizes with (fork/join of pipeline workers): the pin blocks epoch
/// advancement, so nothing reachable at pin time is freed until the guard
/// dies.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager& manager)
      : manager_(manager), slot_(manager.AcquireSlot()) {
    manager_.Pin(slot_);
  }

  ~EpochGuard() {
    manager_.Unpin(slot_);
    manager_.ReleaseSlot(slot_);
  }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager& manager_;
  EpochManager::ReaderSlot* slot_;
};

}  // namespace tsd
