#include "common/snapshot.h"

#include <algorithm>
#include <cstring>
#include <fstream>

namespace tsd {
namespace {

constexpr std::size_t kHeaderSize = 64;
constexpr std::size_t kTableEntrySize = 32;

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// Encodes one section-table entry at `out` (32 bytes).
void EncodeTableEntry(std::uint64_t tag, std::uint64_t offset,
                      std::uint64_t length, std::uint64_t checksum,
                      std::byte* out) {
  EncodeU64Le(tag, out);
  EncodeU64Le(offset, out + 8);
  EncodeU64Le(length, out + 16);
  EncodeU64Le(checksum, out + 24);
}

}  // namespace

std::string SnapshotTagName(std::uint64_t tag) {
  std::string name;
  for (int i = 0; i < 8; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
    if (c == '\0') break;
    name.push_back((c >= 0x20 && c < 0x7F) ? c : '?');
  }
  return name.empty() ? "(empty)" : name;
}

std::uint64_t Checksum64(std::span<const std::byte> bytes) {
  // FNV-1a-style mixing over four independent 8-byte-word lanes, folded at
  // the end. The four lanes run without a loop-carried dependency between
  // them, so the multiplies pipeline and the pass stays far below the mmap
  // fast path's budget even on multi-GB snapshots. Byte-order-independent
  // on the only hosts that can open a snapshot (little-endian, enforced by
  // the header's endian marker). This is an integrity check against torn
  // writes and bit rot, not a MAC.
  constexpr std::uint64_t kBasis = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t lanes[4] = {kBasis, kBasis + 1, kBasis + 2, kBasis + 3};
  const std::size_t words = bytes.size() / 8;
  const std::size_t blocks = words / 4;
  const std::byte* p = bytes.data();
  for (std::size_t i = 0; i < blocks; ++i) {
    for (int lane = 0; lane < 4; ++lane) {
      std::uint64_t word;
      std::memcpy(&word, p, 8);
      p += 8;
      lanes[lane] = (lanes[lane] ^ word) * kPrime;
    }
  }
  // Remaining whole words, then tail bytes, through lane 0 sequentially.
  for (std::size_t w = blocks * 4; w < words; ++w) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    p += 8;
    lanes[0] = (lanes[0] ^ word) * kPrime;
  }
  for (std::size_t i = words * 8; i < bytes.size(); ++i) {
    lanes[0] = (lanes[0] ^ std::to_integer<std::uint8_t>(bytes[i])) * kPrime;
  }
  // Fold the lanes and the length (the lane split alone would let inputs of
  // different lengths collide trivially).
  std::uint64_t hash = kBasis ^ (bytes.size() * kPrime);
  for (const std::uint64_t lane : lanes) {
    hash = (hash ^ lane) * kPrime;
    hash ^= hash >> 32;
  }
  return hash;
}

// ---------------------------------------------------------------- writer

SnapshotWriter::SnapshotWriter(const std::string& path)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
  TSD_CHECK_MSG(out_.good(), "cannot open file for writing: " << path);
  TSD_CHECK_MSG(HostIsLittleEndian(),
                "snapshot writing requires a little-endian host");
  // Header placeholder; Finish() seeks back and fills it in.
  const char zeros[kHeaderSize] = {};
  out_.write(zeros, kHeaderSize);
  cursor_ = kHeaderSize;
}

SnapshotWriter::~SnapshotWriter() {
  // A snapshot without its header never validates, so forgetting Finish()
  // cannot produce a silently half-written file; still, flag the misuse in
  // debug builds.
  TSD_DCHECK(finished_);
}

void SnapshotWriter::PadToAlignment() {
  static const char zeros[kSnapshotAlignment] = {};
  const std::size_t misalign = cursor_ % kSnapshotAlignment;
  if (misalign != 0) {
    const std::size_t pad = kSnapshotAlignment - misalign;
    out_.write(zeros, static_cast<std::streamsize>(pad));
    cursor_ += pad;
  }
}

void SnapshotWriter::AddBytes(std::uint64_t tag,
                              std::span<const std::byte> bytes) {
  TSD_CHECK_MSG(!finished_, "AddBytes after Finish");
  for (const Section& section : sections_) {
    TSD_CHECK_MSG(section.tag != tag,
                  "duplicate snapshot section '" << SnapshotTagName(tag)
                                                 << "'");
  }
  PadToAlignment();
  Section section;
  section.tag = tag;
  section.offset = cursor_;
  section.length = bytes.size();
  section.checksum = Checksum64(bytes);
  sections_.push_back(section);
  if (!bytes.empty()) {
    out_.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    cursor_ += bytes.size();
  }
  TSD_CHECK_MSG(out_.good(), "write failed: " << path_);
}

void SnapshotWriter::Finish() {
  TSD_CHECK_MSG(!finished_, "Finish called twice");
  finished_ = true;
  PadToAlignment();
  const std::uint64_t table_offset = cursor_;

  std::vector<std::byte> table(sections_.size() * kTableEntrySize);
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Section& s = sections_[i];
    EncodeTableEntry(s.tag, s.offset, s.length, s.checksum,
                     table.data() + i * kTableEntrySize);
  }
  if (!table.empty()) {
    out_.write(reinterpret_cast<const char*>(table.data()),
               static_cast<std::streamsize>(table.size()));
    cursor_ += table.size();
  }

  std::byte header[kHeaderSize] = {};
  EncodeU64Le(kSnapshotMagic, header);
  EncodeU32Le(kSnapshotFormatVersion, header + 8);
  // Written via native memcpy on this (little-endian, checked in the
  // constructor) host; a reader on a host with different endianness
  // decodes a different value and refuses the file.
  std::memcpy(header + 12, &kSnapshotEndianMarker, 4);
  EncodeU64Le(cursor_, header + 16);  // file_size
  EncodeU64Le(table_offset, header + 24);
  EncodeU32Le(static_cast<std::uint32_t>(sections_.size()), header + 32);
  // header + 36: reserved, zero.
  EncodeU64Le(Checksum64(table), header + 40);

  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(header), kHeaderSize);
  out_.flush();
  TSD_CHECK_MSG(out_.good(), "write failed: " << path_);
}

// ---------------------------------------------------------------- reader

bool SnapshotReader::Open(const std::string& path, SnapshotReader* out,
                          std::string* error, const Options& options) {
  *out = SnapshotReader();
  if (!HostIsLittleEndian()) {
    SetError(error, "snapshot loading requires a little-endian host");
    return false;
  }
  auto file = std::make_shared<MappedFile>();
  if (!MappedFile::Open(path, file.get(), error)) return false;
  const std::span<const std::byte> bytes = file->bytes();

  if (bytes.size() < kHeaderSize) {
    SetError(error, "'" + path + "': truncated snapshot (" +
                        std::to_string(bytes.size()) +
                        " bytes, header needs 64)");
    return false;
  }
  const std::uint64_t magic = DecodeU64Le(bytes.data());
  if (magic != kSnapshotMagic) {
    SetError(error, "'" + path + "': not a TSD snapshot (bad magic)");
    return false;
  }
  const std::uint32_t version = DecodeU32Le(bytes.data() + 8);
  if (version != kSnapshotFormatVersion) {
    SetError(error, "'" + path + "': unsupported snapshot format version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(kSnapshotFormatVersion) + ")");
    return false;
  }
  std::uint32_t endian_marker = 0;
  std::memcpy(&endian_marker, bytes.data() + 12, 4);
  if (endian_marker != kSnapshotEndianMarker) {
    SetError(error, "'" + path +
                        "': snapshot was written on a host with different "
                        "endianness");
    return false;
  }
  const std::uint64_t file_size = DecodeU64Le(bytes.data() + 16);
  if (file_size != bytes.size()) {
    SetError(error, "'" + path + "': file size mismatch (header says " +
                        std::to_string(file_size) + ", file has " +
                        std::to_string(bytes.size()) +
                        " bytes) — truncated or trailing garbage");
    return false;
  }
  const std::uint64_t table_offset = DecodeU64Le(bytes.data() + 24);
  const std::uint32_t section_count = DecodeU32Le(bytes.data() + 32);
  const std::uint64_t table_checksum = DecodeU64Le(bytes.data() + 40);
  if (section_count > kSnapshotMaxSections) {
    SetError(error, "'" + path + "': implausible section count " +
                        std::to_string(section_count));
    return false;
  }
  const std::uint64_t table_bytes =
      std::uint64_t{section_count} * kTableEntrySize;
  if (table_offset % kSnapshotAlignment != 0 ||
      table_offset < kHeaderSize || table_offset > bytes.size() ||
      table_bytes > bytes.size() - table_offset) {
    SetError(error, "'" + path + "': section table out of bounds");
    return false;
  }
  const std::span<const std::byte> table =
      bytes.subspan(table_offset, table_bytes);
  if (Checksum64(table) != table_checksum) {
    SetError(error, "'" + path + "': section table checksum mismatch");
    return false;
  }

  std::vector<Section> sections;
  sections.reserve(section_count);
  ByteCursor cursor(table);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    Section section = {};
    std::uint64_t checksum = 0;
    // The table span was bounds-checked above, so these reads cannot fail;
    // the cursor keeps the parse bounds-checked by construction anyway.
    if (!cursor.ReadU64Le(&section.tag) ||
        !cursor.ReadU64Le(&section.offset) ||
        !cursor.ReadU64Le(&section.length) || !cursor.ReadU64Le(&checksum)) {
      SetError(error, "'" + path + "': section table truncated");
      return false;
    }
    const std::string name = SnapshotTagName(section.tag);
    if (section.offset % kSnapshotAlignment != 0 ||
        section.offset < kHeaderSize || section.offset > bytes.size() ||
        section.length > bytes.size() - section.offset) {
      SetError(error, "'" + path + "': section '" + name +
                          "' out of bounds (offset " +
                          std::to_string(section.offset) + ", length " +
                          std::to_string(section.length) + ", file " +
                          std::to_string(bytes.size()) + ")");
      return false;
    }
    if (section.offset + section.length > table_offset) {
      SetError(error, "'" + path + "': section '" + name +
                          "' overlaps the section table");
      return false;
    }
    for (const Section& other : sections) {
      if (section.tag == other.tag) {
        SetError(error,
                 "'" + path + "': duplicate section '" + name + "'");
        return false;
      }
      const bool disjoint =
          section.offset >= other.offset + other.length ||
          other.offset >= section.offset + section.length;
      if (!disjoint) {
        SetError(error, "'" + path + "': section '" + name +
                            "' overlaps section '" +
                            SnapshotTagName(other.tag) + "'");
        return false;
      }
    }
    if (options.verify_checksums &&
        Checksum64(bytes.subspan(section.offset, section.length)) !=
            checksum) {
      SetError(error,
               "'" + path + "': checksum mismatch in section '" + name + "'");
      return false;
    }
    sections.push_back(section);
  }

  out->file_ = std::move(file);
  out->sections_ = std::move(sections);
  return true;
}

const SnapshotReader::Section* SnapshotReader::FindSection(
    std::uint64_t tag) const {
  for (const Section& section : sections_) {
    if (section.tag == tag) return &section;
  }
  return nullptr;
}

bool SnapshotReader::ReadBytes(std::uint64_t tag,
                               std::span<const std::byte>* out,
                               std::string* error) const {
  const Section* section = FindSection(tag);
  if (section == nullptr) {
    SetError(error,
             "snapshot has no section '" + SnapshotTagName(tag) + "'");
    return false;
  }
  *out = file_->bytes().subspan(section->offset, section->length);
  return true;
}

bool SnapshotReader::ReadScalars(std::uint64_t tag,
                                 std::span<std::uint64_t> out,
                                 std::string* error) const {
  std::span<const std::uint64_t> values;
  if (!Read<std::uint64_t>(tag, &values, error)) return false;
  if (values.size() != out.size()) {
    SetError(error, "section '" + SnapshotTagName(tag) + "': expected " +
                        std::to_string(out.size()) + " scalars, found " +
                        std::to_string(values.size()));
    return false;
  }
  std::copy(values.begin(), values.end(), out.begin());
  return true;
}

}  // namespace tsd
