// Lightweight runtime invariant checking.
//
// TSD_CHECK fires in every build type and throws tsd::CheckError so that API
// misuse is observable (and unit-testable) instead of aborting the process.
// TSD_DCHECK compiles away in NDEBUG builds and is meant for hot-loop
// invariants that are too expensive to verify in release binaries.
//
// The failure path is annotated for the static analyzers: CheckFailed is
// [[noreturn]] (a fired check never resumes the caller, so Clang's
// -Wthread-safety does not demand that the failure branch release held
// locks, and clang-tidy's dataflow checks treat code after a failed check
// as unreachable) and cold (keeps the throw machinery out of the hot-path
// icache; the branch itself is additionally marked unlikely).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#if defined(__GNUC__) || defined(__clang__)
#define TSD_ATTRIBUTE_COLD __attribute__((cold))
#define TSD_PREDICT_FALSE(x) (__builtin_expect(!!(x), false))
#else
#define TSD_ATTRIBUTE_COLD
#define TSD_PREDICT_FALSE(x) (x)
#endif

namespace tsd {

/// Exception thrown when a TSD_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

[[noreturn]] TSD_ATTRIBUTE_COLD void CheckFailed(const char* condition,
                                                 const char* file, int line,
                                                 const std::string& message);

// Tiny ostringstream wrapper so TSD_CHECK_MSG can take `a << b` style
// message expressions.
class MessageStream {
 public:
  template <typename T>
  MessageStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tsd

#define TSD_CHECK(condition)                                          \
  do {                                                                \
    if (TSD_PREDICT_FALSE(!(condition))) {                            \
      ::tsd::internal::CheckFailed(#condition, __FILE__, __LINE__,    \
                                   std::string());                    \
    }                                                                 \
  } while (false)

#define TSD_CHECK_MSG(condition, message_expr)                        \
  do {                                                                \
    if (TSD_PREDICT_FALSE(!(condition))) {                            \
      ::tsd::internal::CheckFailed(                                   \
          #condition, __FILE__, __LINE__,                             \
          (::tsd::internal::MessageStream() << message_expr).str());  \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define TSD_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define TSD_DCHECK(condition) TSD_CHECK(condition)
#endif
