// Lightweight runtime invariant checking.
//
// TSD_CHECK fires in every build type and throws tsd::CheckError so that API
// misuse is observable (and unit-testable) instead of aborting the process.
// TSD_DCHECK compiles away in NDEBUG builds and is meant for hot-loop
// invariants that are too expensive to verify in release binaries.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tsd {

/// Exception thrown when a TSD_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

[[noreturn]] void CheckFailed(const char* condition, const char* file,
                              int line, const std::string& message);

// Tiny ostringstream wrapper so TSD_CHECK_MSG can take `a << b` style
// message expressions.
class MessageStream {
 public:
  template <typename T>
  MessageStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tsd

#define TSD_CHECK(condition)                                          \
  do {                                                                \
    if (!(condition)) {                                               \
      ::tsd::internal::CheckFailed(#condition, __FILE__, __LINE__,    \
                                   std::string());                    \
    }                                                                 \
  } while (false)

#define TSD_CHECK_MSG(condition, message_expr)                        \
  do {                                                                \
    if (!(condition)) {                                               \
      ::tsd::internal::CheckFailed(                                   \
          #condition, __FILE__, __LINE__,                             \
          (::tsd::internal::MessageStream() << message_expr).str());  \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define TSD_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define TSD_DCHECK(condition) TSD_CHECK(condition)
#endif
