// Small string formatting helpers shared by the benchmark harness, table
// printer, and CLI tools.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tsd {

/// "1.2KB", "34.9MB", "1.6GB" — byte counts the way the paper's tables do.
std::string HumanBytes(std::uint64_t bytes);

/// "7.0ms", "4.9s", "2h46m" — durations the way the paper's tables do.
std::string HumanSeconds(double seconds);

/// "1,624,481" — thousands separators for large counts.
std::string WithThousands(std::uint64_t value);

/// Fixed-precision double ("3.14" for (3.14159, 2)).
std::string FormatDouble(double value, int precision);

/// Splits on any amount of whitespace; no empty tokens.
std::vector<std::string> SplitWhitespace(const std::string& line);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace tsd
