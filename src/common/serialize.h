// Binary (de)serialization primitives for index persistence and the binary
// graph format. Little-endian, length-prefixed vectors, magic+version header
// validation. All readers throw tsd::CheckError on malformed input.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace tsd {

/// Streaming binary writer.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary) {
    TSD_CHECK_MSG(out_.good(), "cannot open file for writing: " << path);
  }

  template <typename T>
  void WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    WritePod<std::uint64_t>(values.size());
    if (!values.empty()) {
      out_.write(reinterpret_cast<const char*>(values.data()),
                 static_cast<std::streamsize>(values.size() * sizeof(T)));
    }
  }

  void WriteHeader(std::uint32_t magic, std::uint32_t version) {
    WritePod(magic);
    WritePod(version);
  }

  /// Flushes and verifies stream health.
  void Finish() {
    out_.flush();
    TSD_CHECK_MSG(out_.good(), "write failed");
  }

 private:
  std::ofstream out_;
};

/// Streaming binary reader.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : in_(path, std::ios::binary) {
    TSD_CHECK_MSG(in_.good(), "cannot open file for reading: " << path);
  }

  template <typename T>
  T ReadPod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    TSD_CHECK_MSG(in_.good(), "unexpected end of file");
    return value;
  }

  template <typename T>
  std::vector<T> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = ReadPod<std::uint64_t>();
    // Guard against absurd sizes from corrupt files before allocating.
    TSD_CHECK_MSG(count <= (1ULL << 40) / sizeof(T),
                  "corrupt file: vector of " << count << " elements");
    std::vector<T> values(count);
    if (count > 0) {
      in_.read(reinterpret_cast<char*>(values.data()),
               static_cast<std::streamsize>(count * sizeof(T)));
      TSD_CHECK_MSG(in_.good(), "unexpected end of file");
    }
    return values;
  }

  void ExpectHeader(std::uint32_t magic, std::uint32_t version) {
    const auto got_magic = ReadPod<std::uint32_t>();
    TSD_CHECK_MSG(got_magic == magic, "bad magic number");
    const auto got_version = ReadPod<std::uint32_t>();
    TSD_CHECK_MSG(got_version == version,
                  "unsupported version " << got_version);
  }

 private:
  std::ifstream in_;
};

}  // namespace tsd
