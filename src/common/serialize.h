// Binary (de)serialization primitives for index persistence and the binary
// graph format.
//
// Two tiers live here:
//
//  * Explicit little-endian scalar codecs (EncodeU32Le/DecodeU32Le/...) and
//    ByteCursor, a bounds-checked error-returning reader over an in-memory
//    byte range. ByteCursor follows the socket_proto discipline: an on-disk
//    (or on-wire) length is attacker-controlled input and is NEVER trusted —
//    every read checks the remaining range first and reports failure by
//    return value, so a corrupt input is a clean load failure, not a crash
//    or an over-read. The zero-copy snapshot layer (common/snapshot.h) is
//    built on this tier.
//
//  * The legacy streaming BinaryWriter/BinaryReader (length-prefixed
//    vectors, magic+version header). These throw tsd::CheckError on
//    malformed input and remain for the text-adjacent binary graph format
//    in graph/edge_list_io.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace tsd {

// --- explicit little-endian fixed-width scalar codecs ---
//
// Encoded byte-by-byte, so the encoding is little-endian on every host.
// (Bulk array sections in the snapshot layer are memcpy'd native and gated
// by a runtime endianness marker instead — see common/snapshot.h.)

inline void EncodeU32Le(std::uint32_t value, std::byte* out) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::byte>((value >> (8 * i)) & 0xFF);
  }
}

inline void EncodeU64Le(std::uint64_t value, std::byte* out) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::byte>((value >> (8 * i)) & 0xFF);
  }
}

inline std::uint32_t DecodeU32Le(const std::byte* in) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(in[i]))
             << (8 * i);
  }
  return value;
}

inline std::uint64_t DecodeU64Le(const std::byte* in) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(in[i]))
             << (8 * i);
  }
  return value;
}

/// True iff this host stores integers little-endian (the only layout the
/// zero-copy array sections can bind without a byte swap).
inline bool HostIsLittleEndian() {
  const std::uint32_t probe = 0x01020304;
  std::byte bytes[4];
  std::memcpy(bytes, &probe, 4);
  return std::to_integer<std::uint8_t>(bytes[0]) == 0x04;
}

/// Bounds-checked forward cursor over an in-memory byte range.
///
/// Every Read* returns false (leaving the output untouched and the cursor
/// where it was) instead of reading past the end — the caller decides how
/// to surface the failure. Nothing here allocates based on input bytes.
class ByteCursor {
 public:
  explicit ByteCursor(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - pos_; }
  std::size_t position() const { return pos_; }

  [[nodiscard]] bool ReadU32Le(std::uint32_t* out) {
    if (remaining() < 4) return false;
    *out = DecodeU32Le(bytes_.data() + pos_);
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool ReadU64Le(std::uint64_t* out) {
    if (remaining() < 8) return false;
    *out = DecodeU64Le(bytes_.data() + pos_);
    pos_ += 8;
    return true;
  }

  /// Yields a view of the next `count` bytes without copying.
  [[nodiscard]] bool ReadBytes(std::size_t count,
                               std::span<const std::byte>* out) {
    if (remaining() < count) return false;
    *out = bytes_.subspan(pos_, count);
    pos_ += count;
    return true;
  }

  [[nodiscard]] bool Skip(std::size_t count) {
    if (remaining() < count) return false;
    pos_ += count;
    return true;
  }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

/// Streaming binary writer.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary) {
    TSD_CHECK_MSG(out_.good(), "cannot open file for writing: " << path);
  }

  template <typename T>
  void WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    WritePod<std::uint64_t>(values.size());
    if (!values.empty()) {
      out_.write(reinterpret_cast<const char*>(values.data()),
                 static_cast<std::streamsize>(values.size() * sizeof(T)));
    }
  }

  void WriteHeader(std::uint32_t magic, std::uint32_t version) {
    WritePod(magic);
    WritePod(version);
  }

  /// Flushes and verifies stream health.
  void Finish() {
    out_.flush();
    TSD_CHECK_MSG(out_.good(), "write failed");
  }

 private:
  std::ofstream out_;
};

/// Streaming binary reader.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : in_(path, std::ios::binary) {
    TSD_CHECK_MSG(in_.good(), "cannot open file for reading: " << path);
  }

  template <typename T>
  T ReadPod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    TSD_CHECK_MSG(in_.good(), "unexpected end of file");
    return value;
  }

  template <typename T>
  std::vector<T> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = ReadPod<std::uint64_t>();
    // Guard against absurd sizes from corrupt files before allocating.
    TSD_CHECK_MSG(count <= (1ULL << 40) / sizeof(T),
                  "corrupt file: vector of " << count << " elements");
    std::vector<T> values(count);
    if (count > 0) {
      in_.read(reinterpret_cast<char*>(values.data()),
               static_cast<std::streamsize>(count * sizeof(T)));
      TSD_CHECK_MSG(in_.good(), "unexpected end of file");
    }
    return values;
  }

  void ExpectHeader(std::uint32_t magic, std::uint32_t version) {
    const auto got_magic = ReadPod<std::uint32_t>();
    TSD_CHECK_MSG(got_magic == magic, "bad magic number");
    const auto got_version = ReadPod<std::uint32_t>();
    TSD_CHECK_MSG(got_version == version,
                  "unsupported version " << got_version);
  }

 private:
  std::ifstream in_;
};

}  // namespace tsd
