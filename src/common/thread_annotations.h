// Clang thread-safety annotation macros (no-ops on other compilers).
//
// These are the standard capability annotations from the Clang
// -Wthread-safety analysis (the macro set used by Abseil and the Clang
// documentation), prefixed TSD_ to keep the global namespace clean. They
// turn the locking contracts that previously lived in comments — "stats_ is
// guarded by mutex_", "TryPop is consumer-thread-only" — into compile-time
// checked facts: a Clang build of this tree runs with -Wthread-safety and
// promotes every violation to an error, so a lock-discipline regression
// fails the build in seconds instead of surfacing as a flaky TSan report.
//
// Conventions used in this codebase (see ROADMAP.md "Static analysis
// gates"):
//  * Data guarded by a lock gets TSD_GUARDED_BY(mutex_) and the mutex is a
//    tsd::Mutex (common/mutex.h) — the annotated wrapper, never a bare
//    std::mutex (the analysis cannot see through an unannotated type).
//  * Functions that must run with a lock held get TSD_REQUIRES(mutex_).
//  * Thread-confined state ("touched only by the consumer thread") is
//    expressed with a tsd::ThreadRole capability: the confined members are
//    TSD_GUARDED_BY(role_), the confined methods are TSD_REQUIRES(role_),
//    and the owning thread claims the role once at its entry point with
//    role_.Assert(). The assert is a no-op at runtime — it is a statically
//    checked declaration of which code believes it is on that thread.
//  * Intentional rule-breakers (Dekker-style fast paths, lock-free
//    handoffs) get TSD_NO_THREAD_SAFETY_ANALYSIS plus a comment explaining
//    why the analysis cannot model them.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define TSD_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define TSD_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Declares a class to be a capability (lockable/role) type.
#define TSD_CAPABILITY(x) TSD_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define TSD_SCOPED_CAPABILITY TSD_THREAD_ANNOTATION__(scoped_lockable)

/// Data member requires the capability to be held for any access.
#define TSD_GUARDED_BY(x) TSD_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* requires the capability.
#define TSD_PT_GUARDED_BY(x) TSD_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection).
#define TSD_ACQUIRED_BEFORE(...) \
  TSD_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define TSD_ACQUIRED_AFTER(...) \
  TSD_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Caller must hold the capability (exclusively / shared).
#define TSD_REQUIRES(...) \
  TSD_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define TSD_REQUIRES_SHARED(...) \
  TSD_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (and does not release it).
#define TSD_ACQUIRE(...) \
  TSD_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define TSD_ACQUIRE_SHARED(...) \
  TSD_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability.
#define TSD_RELEASE(...) \
  TSD_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define TSD_RELEASE_SHARED(...) \
  TSD_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define TSD_TRY_ACQUIRE(b, ...) \
  TSD_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant entry points).
#define TSD_EXCLUDES(...) TSD_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime claim that the capability is held; informs the analysis without
/// acquiring anything (AssertHeld / thread-role claims).
#define TSD_ASSERT_CAPABILITY(x) TSD_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the named capability.
#define TSD_RETURN_CAPABILITY(x) TSD_THREAD_ANNOTATION__(lock_returned(x))

/// Opts a function out of the analysis. Use only with a comment explaining
/// the pattern the analysis cannot model.
#define TSD_NO_THREAD_SAFETY_ANALYSIS \
  TSD_THREAD_ANNOTATION__(no_thread_safety_analysis)
