// Monotone bucket queue ("bin sort" structure of CLRS [12], as used by the
// peeling algorithms in Wang–Cheng truss decomposition and k-core
// decomposition). Supports O(1) amortized pop-min and decrease-key under the
// peeling discipline: keys only decrease, and the sequence of popped keys is
// non-decreasing over time (keys below the current peeling level are clamped
// to it).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"

namespace tsd {

/// Bucket queue over element ids [0, n) with integer keys.
///
/// The structure keeps all elements sorted by key in a flat array with bucket
/// boundary pointers, exactly like the classic O(m) core-decomposition layout:
///   order_   : element ids sorted by current key (ascending)
///   pos_     : position of each element in order_
///   bucket_  : first position of each key value
///
/// Capacity is 32-bit: ids, positions, and bucket boundaries are all
/// std::uint32_t, so the queue holds at most 2^32 - 1 elements (enough for
/// any EdgeId-indexed peeling; Init check-fails beyond that instead of
/// silently truncating).
class BucketQueue {
 public:
  /// Largest element count Init accepts (positions must fit in 32 bits).
  static constexpr std::size_t kMaxElements =
      std::numeric_limits<std::uint32_t>::max();

  /// Fails with CheckError if `num_elements` exceeds the 32-bit capacity.
  /// Exposed so callers sizing up a peeling workload (and the regression
  /// test of this guard) can validate counts without building the queue.
  static void CheckCapacity(std::size_t num_elements) {
    TSD_CHECK_MSG(num_elements <= kMaxElements,
                  "BucketQueue holds at most 2^32 - 1 elements, got "
                      << num_elements);
  }

  BucketQueue() = default;

  /// Builds the queue from initial keys. Max key is computed internally.
  explicit BucketQueue(const std::vector<std::uint32_t>& keys) { Init(keys); }

  void Init(const std::vector<std::uint32_t>& keys) {
    const std::size_t n = keys.size();
    CheckCapacity(n);  // the 32-bit id loop below would never terminate
    key_ = keys;
    removed_.assign(n, false);
    max_key_ = 0;
    for (std::uint32_t k : keys) max_key_ = std::max(max_key_, k);

    // Counting sort.
    bucket_.assign(max_key_ + 2, 0);
    for (std::uint32_t k : keys) ++bucket_[k + 1];
    for (std::size_t b = 1; b < bucket_.size(); ++b) bucket_[b] += bucket_[b - 1];
    order_.resize(n);
    pos_.resize(n);
    cursor_.assign(bucket_.begin(), bucket_.end() - 1);
    for (std::uint32_t id = 0; id < n; ++id) {
      const std::uint32_t p = cursor_[keys[id]]++;
      order_[p] = id;
      pos_[id] = p;
    }
    head_ = 0;
    remaining_ = n;
  }

  bool Empty() const { return remaining_ == 0; }
  std::size_t Remaining() const { return remaining_; }

  std::uint32_t Key(std::uint32_t id) const { return key_[id]; }
  bool Removed(std::uint32_t id) const { return removed_[id]; }

  /// Pops an element with the minimum current key.
  std::uint32_t PopMin() {
    TSD_DCHECK(!Empty());
    while (removed_[order_[head_]]) ++head_;
    const std::uint32_t id = order_[head_];
    removed_[id] = true;
    ++head_;
    --remaining_;
    return id;
  }

  /// Decrements id's key by one, but never below `floor` (the current
  /// peeling level): elements already scheduled for removal at this level
  /// keep their key so bucket boundaries stay consistent.
  void DecreaseKeyClamped(std::uint32_t id, std::uint32_t floor) {
    TSD_DCHECK(!removed_[id]);
    const std::uint32_t k = key_[id];
    if (k <= floor) return;
    // Swap id with the first element of its bucket, then shrink the bucket.
    const std::uint32_t bucket_start = std::max(bucket_[k], head_);
    const std::uint32_t p = pos_[id];
    const std::uint32_t other = order_[bucket_start];
    if (other != id) {
      order_[p] = other;
      pos_[other] = p;
      order_[bucket_start] = id;
      pos_[id] = bucket_start;
    }
    bucket_[k] = bucket_start + 1;
    key_[id] = k - 1;
  }

 private:
  std::vector<std::uint32_t> key_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> pos_;
  std::vector<std::uint32_t> bucket_;
  std::vector<std::uint32_t> cursor_;  // Init scratch, reused across Init calls
  std::vector<bool> removed_;
  std::uint32_t max_key_ = 0;
  std::uint32_t head_ = 0;
  std::size_t remaining_ = 0;
};

}  // namespace tsd
