// Log-linear latency histogram for the serving layer's tail-latency
// observability (p50/p99/p999 in the socket server's stats endpoint and the
// load-generator benches).
//
// The design constraint is the same determinism contract the rest of the
// library keeps: a histogram's state is a pure function of the *multiset*
// of recorded values — recording order, thread count, and merge shape are
// invisible. Counts live in fixed log-linear buckets (HdrHistogram's
// layout: one octave per power of two, 2^kPrecisionBits linear sub-buckets
// per octave, ~3% relative error), so Merge is element-wise addition —
// commutative and associative — and any sharded recording scheme
// (per-connection, per-shard, per-client-thread) collapses to the same
// totals. Quantiles are answered from bucket lower bounds, which makes them
// deterministic too: ValueAtQuantile(q) equals the bucket lower bound of
// the exact order statistic a sorted vector of the recorded values would
// give (the histogram_test oracle asserts precisely that).
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace tsd {

/// Fixed-layout log-linear histogram over non-negative 64-bit values
/// (by convention: latencies in nanoseconds, but unit-agnostic).
class LatencyHistogram {
 public:
  /// Linear sub-buckets per octave = 2^kPrecisionBits; relative bucket
  /// width (and thus worst-case quantile error) is 2^-kPrecisionBits.
  static constexpr std::uint32_t kPrecisionBits = 5;
  static constexpr std::uint32_t kSubBuckets = 1u << kPrecisionBits;

  /// Bucket index of `value`. Values below kSubBuckets get exact unit
  /// buckets; above, the top kPrecisionBits+1 significant bits select the
  /// bucket. Monotone non-decreasing and contiguous in `value`.
  static std::size_t BucketIndex(std::uint64_t value) {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    const int exponent = 63 - std::countl_zero(value);  // >= kPrecisionBits
    const int shift = exponent - static_cast<int>(kPrecisionBits);
    // mantissa in [kSubBuckets, 2*kSubBuckets)
    const std::uint64_t mantissa = value >> shift;
    return static_cast<std::size_t>(shift) * kSubBuckets +
           static_cast<std::size_t>(mantissa);
  }

  /// Smallest value mapping to bucket `index` (the bucket's canonical
  /// representative; exact for values < kSubBuckets).
  static std::uint64_t BucketLowerBound(std::size_t index) {
    if (index < 2 * kSubBuckets) return static_cast<std::uint64_t>(index);
    const std::size_t shift = index / kSubBuckets - 1;
    const std::uint64_t mantissa = kSubBuckets + index % kSubBuckets;
    return mantissa << shift;
  }

  void Record(std::uint64_t value) { RecordMany(value, 1); }

  void RecordMany(std::uint64_t value, std::uint64_t occurrences) {
    if (occurrences == 0) return;
    const std::size_t index = BucketIndex(value);
    if (counts_.size() <= index) counts_.resize(index + 1, 0);
    counts_[index] += occurrences;
    count_ += occurrences;
    sum_ += value * occurrences;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  /// Element-wise accumulation. Commutative and associative: any merge tree
  /// over per-thread/per-shard histograms yields identical state.
  void Merge(const LatencyHistogram& other) {
    if (counts_.size() < other.counts_.size()) {
      counts_.resize(other.counts_.size(), 0);
    }
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ > 0) {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  /// The bucket lower bound of the order statistic at quantile q in [0, 1]:
  /// the value of element ceil(q * count) (1-based) of the sorted recorded
  /// values, rounded down to its bucket boundary. q = 0 gives the min's
  /// bucket, q = 1 the max's. 0 on an empty histogram.
  std::uint64_t ValueAtQuantile(double q) const {
    TSD_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile out of [0,1]: " << q);
    if (count_ == 0) return 0;
    // 1-based rank of the order statistic, clamped into [1, count].
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (rank == 0) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= rank) return BucketLowerBound(i);
    }
    return BucketLowerBound(counts_.empty() ? 0 : counts_.size() - 1);
  }

  /// Calls fn(bucket_lower_bound, count) for every non-empty bucket in
  /// ascending value order (for rendering distribution tables).
  template <typename Fn>
  void ForEachBucket(Fn&& fn) const {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] > 0) fn(BucketLowerBound(i), counts_[i]);
    }
  }

 private:
  std::vector<std::uint64_t> counts_;  // grown lazily to the highest bucket
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;  // unit * count; wraps only past 2^64 total
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

}  // namespace tsd
