// Stateless 64-bit mixing hashes for sharding and hash tables.
//
// Mix64 is the SplitMix64 finalizer: a bijective avalanche mixer whose
// output is a pure function of its input — no per-process salt, no
// std::hash implementation-defined behaviour — so anything keyed on it
// (tenant→shard assignment, on-disk layouts, test expectations) is stable
// across runs, platforms, and thread counts. Hash64 is the *splittable*
// form: each seed selects an independent hash function from the family
// (the same golden-ratio stream SplitMix64 uses for splitting), so two
// subsystems hashing the same keys (e.g. shard routing and a depth table)
// can decorrelate by seed instead of sharing collision patterns.
#pragma once

#include <cstdint>

namespace tsd {

/// SplitMix64 finalizer. Bijective; Mix64(x) == 0 only for x == 0's unique
/// preimage, and every output bit depends on every input bit.
inline std::uint64_t Mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Splittable keyed hash: seed s selects the hash function obtained by
/// advancing the SplitMix64 stream s+1 steps before mixing. Hash64(x, a)
/// and Hash64(x, b) are independent for a != b.
inline std::uint64_t Hash64(std::uint64_t x, std::uint64_t seed = 0) {
  return Mix64(x + (seed + 1) * 0x9e3779b97f4a7c15ULL);
}

}  // namespace tsd
