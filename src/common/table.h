// Column-aligned console tables; every bench binary prints its paper
// table/figure through this so the output format is uniform.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tsd {

/// Builds an aligned text table incrementally and renders it to a stream.
///
/// Usage:
///   TablePrinter t({"Network", "|V|", "|E|"});
///   t.AddRow({"Wiki-Vote", "7,115", "103,689"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: converts arithmetic cells to strings.
  template <typename... Cells>
  void Row(const Cells&... cells) {
    AddRow({ToCell(cells)...});
  }

  void Print(std::ostream& out) const;
  std::string ToString() const;

 private:
  static std::string ToCell(const std::string& s) { return s; }
  static std::string ToCell(const char* s) { return s; }
  static std::string ToCell(double v);
  static std::string ToCell(std::uint64_t v) { return std::to_string(v); }
  static std::string ToCell(std::int64_t v) { return std::to_string(v); }
  static std::string ToCell(std::uint32_t v) { return std::to_string(v); }
  static std::string ToCell(std::int32_t v) { return std::to_string(v); }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("==== title ====") to stdout.
void PrintBanner(const std::string& title);

}  // namespace tsd
