#include "common/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace tsd {

std::string HumanBytes(std::uint64_t bytes) {
  char buffer[32];
  const double b = static_cast<double>(bytes);
  if (bytes < 1024) {
    std::snprintf(buffer, sizeof(buffer), "%lluB",
                  static_cast<unsigned long long>(bytes));
  } else if (b < 1024.0 * 1024.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1fKB", b / 1024.0);
  } else if (b < 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1fMB", b / (1024.0 * 1024.0));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2fGB",
                  b / (1024.0 * 1024.0 * 1024.0));
  }
  return buffer;
}

std::string HumanSeconds(double seconds) {
  char buffer[32];
  if (seconds < 0) seconds = 0;
  if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1fms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2fs", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1fmin", seconds / 60.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2fh", seconds / 3600.0);
  }
  return buffer;
}

std::string WithThousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int since_comma = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_comma == 3) {
      out.push_back(',');
      since_comma = 0;
    }
    out.push_back(*it);
    ++since_comma;
  }
  return {out.rbegin(), out.rend()};
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::vector<std::string> SplitWhitespace(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace tsd
