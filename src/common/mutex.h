// Annotated synchronization primitives for the Clang thread-safety
// analysis.
//
// The analysis only understands types that carry capability attributes, and
// libstdc++'s std::mutex / std::lock_guard carry none — so every lock the
// concurrency substrate uses goes through these thin wrappers instead. They
// add no state and no behaviour (Mutex is exactly a std::mutex; the RAII
// guards are exactly lock_guard / unique_lock), only the attributes that
// let a Clang -Wthread-safety build prove "this guarded field is only ever
// touched under its lock".
//
// ThreadRole is the capability for *thread confinement* — state that is not
// protected by any lock because exactly one thread is allowed to touch it
// (a shard's QuerySession, the epoll server's connection table). The role
// object is a phantom capability: nothing ever locks it; the owning thread
// claims it with Assert() at its entry point, and from there the analysis
// checks that TSD_GUARDED_BY(role_) members are reached only from code that
// made (or inherited) the claim. A wrong claim is a bug the same way a
// wrong AssertHeld is — the annotations document and check the intended
// confinement, they do not create it. The handoff that makes the claim true
// (thread spawn, join, mutex, etc.) is cited in a comment at every Assert.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace tsd {

/// std::mutex with capability annotations. Prefer the RAII guards below;
/// Lock/Unlock exist for the guards and for odd lifetimes.
class TSD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TSD_ACQUIRE() { mu_.lock(); }
  void Unlock() TSD_RELEASE() { mu_.unlock(); }
  bool TryLock() TSD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Statically tells the analysis the lock is held here (no runtime
  /// effect). For code reached only from under the lock through paths the
  /// analysis cannot follow.
  void AssertHeld() const TSD_ASSERT_CAPABILITY(this) {}

  /// The wrapped mutex, for CondVar. Intentionally not public: waiting
  /// through CondVar keeps the capability bookkeeping in one place.
 private:
  friend class CondVar;
  friend class MutexLock;
  friend class UniqueMutexLock;
  std::mutex mu_;
};

/// Annotated std::lock_guard.
class TSD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TSD_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() TSD_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  std::lock_guard<std::mutex> lock_;
};

/// Annotated std::unique_lock, for waits. From the analysis's point of view
/// the capability is held for the full scope — CondVar::Wait's internal
/// unlock/relock window is invisible, the standard (Abseil-style)
/// approximation for condition-variable waits.
class TSD_SCOPED_CAPABILITY UniqueMutexLock {
 public:
  explicit UniqueMutexLock(Mutex& mu) TSD_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~UniqueMutexLock() TSD_RELEASE() {}

  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable over UniqueMutexLock. Waits take the annotated
/// scoped lock, so guarded state read in the wait loop's condition is
/// checked like any other access:
///
///   UniqueMutexLock lock(mutex_);
///   while (!ready_) cv_.Wait(lock);   // ready_ TSD_GUARDED_BY(mutex_)
///
/// Prefer the explicit while-loop form over predicate lambdas: a lambda
/// body is analyzed as a separate function that does not inherit the
/// caller's held capabilities, so guarded reads inside it would need their
/// own annotations.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(UniqueMutexLock& lock) { cv_.wait(lock.lock_); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Phantom capability for thread-confined state. Members annotated
/// TSD_GUARDED_BY(role_) may only be touched by code that holds the role,
/// and the role is only ever obtained by Assert() — a statically-checked
/// claim "I am the confined thread", placed at the owning thread's entry
/// point with a comment citing the handoff that makes it true.
class TSD_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  /// Claims the role for the current scope (no runtime effect).
  void Assert() const TSD_ASSERT_CAPABILITY(this) {}
};

}  // namespace tsd
