#include "server/socket_serve.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/strings.h"
#include "common/table.h"
#include "server/live_index.h"

namespace tsd {
namespace {

/// How long a finished connection lingers after its FIN waiting for the
/// client's EOF before being closed anyway. Closing earlier, with inbound
/// bytes still unread, would turn the close into an RST that can revoke
/// flushed-but-undelivered replies.
constexpr std::uint32_t kLingerTimeoutMs = 1000;

}  // namespace

namespace internal {

/// Owns the eventfd the event loop sleeps on. Shared (via shared_ptr) with
/// every OnReady hook handed to the serve loop, so a consumer thread firing
/// a hook after the server object died still writes to a descriptor that is
/// open and, crucially, not yet recycled for something else.
class EventFdWaker {
 public:
  EventFdWaker() : fd_(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {
    TSD_CHECK_MSG(fd_ >= 0, "eventfd(): " << std::strerror(errno));
  }
  ~EventFdWaker() { ::close(fd_); }
  EventFdWaker(const EventFdWaker&) = delete;
  EventFdWaker& operator=(const EventFdWaker&) = delete;

  int fd() const { return fd_; }

  void Wake() {
    const std::uint64_t one = 1;
    // A saturated counter (EAGAIN) still leaves the fd readable, which is
    // all a wakeup needs; no error here requires handling.
    [[maybe_unused]] const ssize_t n = ::write(fd_, &one, sizeof(one));
  }

  void Drain() {
    std::uint64_t value = 0;
    while (::read(fd_, &value, sizeof(value)) > 0) {
    }
  }

 private:
  int fd_;
};

/// One reply owed to a connection, in submission order: a future from the
/// serve loop (queries), an already-encoded frame (stats replies, shutdown
/// acks, protocol errors), or a deferred live update waiting for its turn
/// at the front of the queue.
struct PendingReply {
  std::uint64_t id = 0;
  bool immediate = false;
  std::string frame;          // immediate only
  Future<ServeReply> future;  // query only
  std::chrono::steady_clock::time_point submitted{};
  // Deferred update (applied when it reaches the queue front, i.e. after
  // every earlier request on this connection has been answered).
  bool update = false;
  bool insert = false;
  std::uint64_t u = 0;
  std::uint64_t v = 0;
};

struct SocketConnection {
  int fd = -1;
  std::string inbuf;                 // unparsed bytes (at most one partial frame
                                     // plus whatever arrived while paused)
  std::deque<PendingReply> pending;  // replies owed, ascending id
  std::string outbuf;                // encoded frames awaiting send
  std::size_t outbuf_off = 0;        // prefix of outbuf already sent
  std::uint64_t next_id = 0;
  std::uint32_t armed_events = EPOLLIN;
  bool paused = false;         // reads paused by backpressure
  bool blocked_on_update = false;  // a deferred update gates frame parsing
  bool read_shutdown = false;  // reads stopped for good (EOF/error/drain)
  bool want_close = false;     // close once pending is answered and flushed
  bool dead = false;           // close now, abandoning pending replies
  bool lingering = false;      // FIN sent; discarding input until client EOF
  std::chrono::steady_clock::time_point linger_deadline{};

  std::size_t outbound_bytes() const { return outbuf.size() - outbuf_off; }
  bool ShouldRead() const { return !read_shutdown && !paused && !dead; }
};

}  // namespace internal

SocketServer::SocketServer(ServeSubmitter& loop, SocketServerOptions options)
    : loop_(loop),
      options_(std::move(options)),
      waker_(std::make_shared<internal::EventFdWaker>()) {}

SocketServer::~SocketServer() { Shutdown(); }

void SocketServer::Start() {
  if (started_.exchange(true)) return;
  loop_.Start();

  // The event thread does not exist yet, so this thread temporarily IS the
  // event loop for the setup below; the std::thread construction at the end
  // is the happens-before handoff that moves the confinement over.
  event_loop_role_.Assert();

  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  TSD_CHECK_MSG(listen_fd_ >= 0, "socket(): " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  TSD_CHECK_MSG(
      ::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) == 1,
      "bad IPv4 bind address: " << options_.bind_address);
  TSD_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                "bind(" << options_.bind_address << ":" << options_.port
                        << "): " << std::strerror(errno));
  socklen_t addr_len = sizeof(addr);
  TSD_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len) == 0);
  bound_port_ = ntohs(addr.sin_port);
  TSD_CHECK_MSG(
      ::listen(listen_fd_, static_cast<int>(options_.listen_backlog)) == 0,
      "listen(): " << std::strerror(errno));

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  TSD_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1(): " << std::strerror(errno));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  TSD_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  ev.events = EPOLLIN;
  ev.data.fd = waker_->fd();
  TSD_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, waker_->fd(), &ev) == 0);

  event_thread_ = std::thread([this] { EventLoop(); });
}

std::uint16_t SocketServer::port() const {
  TSD_CHECK_MSG(started_.load(std::memory_order_acquire),
                "Start() the server before asking for its port");
  return bound_port_;
}

void SocketServer::Shutdown() {
  // lifecycle_mutex_ is deliberately held across the join below: it exists
  // only to serialize concurrent Shutdown() callers (second caller blocks
  // until the first finishes the teardown), and the event thread never
  // takes it, so the blocking join cannot invert against it.
  MutexLock lock(lifecycle_mutex_);
  if (!started_.load(std::memory_order_acquire)) return;
  shutdown_requested_.store(true, std::memory_order_release);
  waker_->Wake();
  if (event_thread_.joinable()) {
    event_thread_.join();
  } else {
    // Start() threw before spawning the loop; no event thread ever existed,
    // so its confinement (and the descriptors it guards) fall back to us.
    event_loop_role_.Assert();
    if (listen_fd_ >= 0) ::close(std::exchange(listen_fd_, -1));
    if (epoll_fd_ >= 0) ::close(std::exchange(epoll_fd_, -1));
  }
  {
    MutexLock exit_lock(exit_mutex_);
    loop_exited_ = true;
  }
  exit_cv_.NotifyAll();
}

void SocketServer::WaitUntilShutdown() {
  UniqueMutexLock lock(exit_mutex_);
  while (!loop_exited_) exit_cv_.Wait(lock);
}

void SocketServer::EventLoop() {
  // This function IS the event-loop thread (spawned exactly once by
  // Start(); the std::thread construction is the handoff), so it owns the
  // connection table, the drain state, and the descriptors for good.
  event_loop_role_.Assert();
  std::vector<epoll_event> events(64);
  while (true) {
    if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain();
    }

    // Settle: move ready replies into outbufs and outbufs onto the wire
    // until neither side can make progress. Flushing frees outbound budget,
    // which can unblock more harvesting (and un-pause reading), which can
    // fill it again — hence the fixpoint loop rather than one pass.
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto& [fd, conn] : connections_) {
        if (conn->dead) continue;
        if (HarvestConnection(*conn)) progress = true;
        if (FlushConnection(*conn)) progress = true;
      }
    }

    // Reap dead connections, and move finished ones (everything answered
    // and flushed) into a lingering close. Dropped pending futures are
    // safe: the serve loop still fulfils the promises, the values just
    // have no reader anymore.
    std::vector<int> reap;
    bool any_lingering = false;
    for (auto& [fd, conn] : connections_) {
      if (conn->dead) {
        reap.push_back(fd);
        continue;
      }
      if (conn->want_close && conn->pending.empty() &&
          conn->outbound_bytes() == 0) {
        if (!conn->lingering) {
          // Everything owed is on the wire, but a hard close now would RST
          // the connection — and an RST revokes flushed-but-undelivered
          // replies, breaking the drain guarantee. Send FIN and keep
          // discarding input until the client closes its end (with a
          // deadline for clients that never do).
          ::shutdown(conn->fd, SHUT_WR);
          conn->lingering = true;
          conn->linger_deadline =
              Clock::now() + std::chrono::milliseconds(kLingerTimeoutMs);
          UpdateInterest(*conn);
        } else if (Clock::now() >= conn->linger_deadline) {
          reap.push_back(fd);
          continue;
        }
        any_lingering = true;
      }
    }
    for (int fd : reap) CloseConnection(fd);

    if (draining_) {
      if (connections_.empty()) break;
      if (Clock::now() >= drain_deadline_) {
        // Whoever still has unflushed replies is not reading; cut them off.
        std::vector<int> remaining;
        remaining.reserve(connections_.size());
        for (auto& [fd, conn] : connections_) remaining.push_back(fd);
        for (int fd : remaining) CloseConnection(fd);
        break;
      }
    }

    // Draining and lingering poll so their deadlines are honored even with
    // no fd activity.
    const int timeout_ms = (draining_ || any_lingering) ? 20 : -1;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; bail out rather than spin
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t got = events[i].events;
      if (fd == waker_->fd()) {
        waker_->Drain();  // a future completed; the settle pass harvests it
        continue;
      }
      if (fd == listen_fd_) {
        AcceptConnections();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      Connection& c = *it->second;
      if (got & (EPOLLERR | EPOLLHUP)) {
        c.dead = true;
        continue;
      }
      if (got & EPOLLIN) ReadFromConnection(c);
      if (got & EPOLLOUT) FlushConnection(c);
    }
  }

  std::vector<int> remaining;
  remaining.reserve(connections_.size());
  for (auto& [fd, conn] : connections_) remaining.push_back(fd);
  for (int fd : remaining) CloseConnection(fd);
  if (listen_fd_ >= 0) ::close(std::exchange(listen_fd_, -1));
  if (epoll_fd_ >= 0) ::close(std::exchange(epoll_fd_, -1));
  {
    MutexLock lock(exit_mutex_);
    loop_exited_ = true;
  }
  exit_cv_.NotifyAll();
}

void SocketServer::BeginDrain() {
  draining_ = true;
  drain_deadline_ =
      Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
  if (listen_fd_ >= 0) {
    // Adopt whatever finished its handshake but was not accepted yet:
    // closing the listen socket RSTs its backlog, and a client whose
    // connect() succeeded must see a clean EOF, never a reset.
    AcceptConnections();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(std::exchange(listen_fd_, -1));
  }
  for (auto& [fd, conn] : connections_) {
    conn->read_shutdown = true;
    conn->paused = false;
    conn->inbuf.clear();  // a partial frame at drain time is abandoned
    conn->want_close = true;
    UpdateInterest(*conn);
  }
}

void SocketServer::AcceptConnections() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (backlog drained) or a transient accept failure
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(fd, std::move(conn));
    MutexLock lock(stats_mutex_);
    ++stats_.connections_accepted;
  }
}

void SocketServer::ReadFromConnection(Connection& c) {
  if (c.lingering) {
    // Past FIN: discard whatever still arrives so the eventual close finds
    // an empty receive queue (no RST). The client's own EOF or reset ends
    // the connection.
    while (true) {
      char chunk[4096];
      const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
      if (n > 0) continue;
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      c.dead = true;  // EOF or error: safe to close for real now
      return;
    }
  }
  while (c.ShouldRead()) {
    char chunk[65536];
    const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      {
        MutexLock lock(stats_mutex_);
        stats_.bytes_in += static_cast<std::uint64_t>(n);
      }
      c.inbuf.append(chunk, static_cast<std::size_t>(n));
      ParseFrames(c);
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return;  // drained
      continue;
    }
    if (n == 0) {
      // EOF: answer everything already submitted, then close. Bytes of a
      // torn frame are dropped — a mid-frame disconnect leaves no one to
      // hear about the error.
      c.read_shutdown = true;
      c.inbuf.clear();
      c.want_close = true;
      UpdateInterest(c);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    c.dead = true;  // ECONNRESET and friends
    return;
  }
}

void SocketServer::ParseFrames(Connection& c) {
  std::size_t consumed = 0;
  while (!c.read_shutdown && !c.dead) {
    if (c.blocked_on_update) {
      // A deferred update gates the stream: frames behind it stay unparsed
      // (and unsubmitted) until the update is applied, so every request on
      // this connection observes a well-defined before/after ordering.
      // HarvestConnection re-parses once the update clears. Note an EOF
      // while blocked still drops unparsed bytes (the existing torn-frame
      // rule); update-aware clients flush before half-closing.
      break;
    }
    if (OverInboundLimit(c)) {
      // Leftover bytes stay in inbuf and parse when the client drains
      // enough replies for MaybeResumeReading to fire.
      if (!c.paused) {
        c.paused = true;
        {
          MutexLock lock(stats_mutex_);
          ++stats_.backpressure_pauses;
        }
        UpdateInterest(c);
      }
      break;
    }
    if (c.inbuf.size() - consumed < 4) break;
    const std::uint32_t length = ReadWireU32(c.inbuf.data() + consumed);
    if (length == 0 || length > options_.max_frame_payload) {
      ProtocolError(c, "bad frame length " + std::to_string(length));
      break;
    }
    if (c.inbuf.size() - consumed < 4 + std::size_t{length}) break;
    DispatchFrame(c, c.inbuf.data() + consumed + 4, length);
    consumed += 4 + std::size_t{length};
  }
  c.inbuf.erase(0, consumed);
  if (c.read_shutdown) c.inbuf.clear();
}

void SocketServer::DispatchFrame(Connection& c, const char* payload,
                                 std::size_t size) {
  ClientFrame frame;
  if (!DecodeClientFrame(payload, size, &frame)) {
    ProtocolError(c, "undecodable frame");
    return;
  }
  const std::uint64_t id = ++c.next_id;
  {
    MutexLock lock(stats_mutex_);
    ++stats_.frames_in;
  }
  switch (frame.type) {
    case kQueryFrame: {
      {
        MutexLock lock(stats_mutex_);
        ++stats_.queries;
        auto it = tenants_.find(frame.tenant);
        if (it != tenants_.end()) {
          ++it->second;
        } else if (tenants_.size() < kMaxTrackedTenants) {
          tenants_.emplace(frame.tenant, 1);
        } else {
          ++stats_.untracked_tenant_queries;
        }
      }
      internal::PendingReply reply;
      reply.id = id;
      reply.submitted = Clock::now();
      ServeRequest request;
      request.tenant = frame.tenant;
      request.k = frame.k;
      request.r = frame.r;
      reply.future = loop_.Submit(request);
      reply.future.OnReady([waker = waker_] { waker->Wake(); });
      c.pending.push_back(std::move(reply));
      break;
    }
    case kStatsFrame: {
      {
        MutexLock lock(stats_mutex_);
        ++stats_.stats_requests;
      }
      internal::PendingReply reply;
      reply.id = id;
      reply.immediate = true;
      reply.frame = EncodeStatsReplyFrame(id, RenderStatsTables());
      c.pending.push_back(std::move(reply));
      break;
    }
    case kShutdownFrame: {
      internal::PendingReply reply;
      reply.id = id;
      reply.immediate = true;
      if (options_.enable_remote_shutdown) {
        reply.frame = EncodeReplyFrame(id, ServeStatus::kOk, {});
        shutdown_requested_.store(true, std::memory_order_release);
      } else {
        reply.frame = EncodeErrorFrame(id, "remote shutdown disabled");
      }
      c.pending.push_back(std::move(reply));
      break;
    }
    case kUpdateFrame: {
      {
        MutexLock lock(stats_mutex_);
        ++stats_.updates;
      }
      if (c.pending.empty()) {
        // Every earlier request on this connection is already answered:
        // apply in place and ack immediately.
        internal::PendingReply reply;
        reply.id = id;
        reply.immediate = true;
        reply.frame =
            EncodeUpdateAckFrame(id, ApplyUpdate(frame.insert, frame.u,
                                                 frame.v));
        c.pending.push_back(std::move(reply));
      } else {
        // Defer until the update reaches the queue front (all earlier
        // replies harvested) and gate parsing of later frames meanwhile.
        internal::PendingReply reply;
        reply.id = id;
        reply.update = true;
        reply.insert = frame.insert;
        reply.u = frame.u;
        reply.v = frame.v;
        c.pending.push_back(std::move(reply));
        c.blocked_on_update = true;
      }
      break;
    }
    default:
      break;  // unreachable: DecodeClientFrame rejects unknown types
  }
}

void SocketServer::ProtocolError(Connection& c, const std::string& message) {
  {
    MutexLock lock(stats_mutex_);
    ++stats_.protocol_errors;
  }
  internal::PendingReply reply;
  reply.immediate = true;  // id 0: not tied to a well-formed request
  reply.frame = EncodeErrorFrame(0, message);
  c.pending.push_back(std::move(reply));
  // Stop reading the poisoned stream, but emit every reply owed for the
  // frames before the bad one first — then close.
  c.read_shutdown = true;
  c.paused = false;
  c.want_close = true;
  UpdateInterest(c);
}

UpdateAckOutcome SocketServer::ApplyUpdate(bool insert, std::uint64_t u,
                                           std::uint64_t v) {
  if (options_.updater == nullptr) return UpdateAckOutcome::kUnsupported;
  // Applied on the event-loop thread; the applier's internal mutex is what
  // serializes it against other transports sharing the same index. Shard
  // consumers keep answering queries concurrently — safe via the dynamic
  // index's epoch protection.
  return options_.updater->ApplyUpdate(insert, u, v)
             ? UpdateAckOutcome::kApplied
             : UpdateAckOutcome::kNoop;
}

bool SocketServer::HarvestConnection(Connection& c) {
  bool appended = false;
  bool unblocked = false;
  while (!c.pending.empty() &&
         c.outbound_bytes() < options_.max_outbound_bytes) {
    internal::PendingReply& front = c.pending.front();
    std::string frame;
    if (front.immediate) {
      frame = std::move(front.frame);
    } else if (front.update) {
      // At the queue front every earlier reply has been harvested, so the
      // update's ordering barrier holds: apply, ack, and release the parse
      // gate so the frames queued behind it get submitted.
      frame = EncodeUpdateAckFrame(front.id,
                                   ApplyUpdate(front.insert, front.u, front.v));
      c.blocked_on_update = false;
      unblocked = true;
    } else {
      if (!front.future.Ready()) break;  // strict id order: wait for it
      const ServeReply reply = front.future.Get();
      const auto latency = std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now() - front.submitted);
      std::vector<TranscriptEntry> entries;
      if (reply.status == ServeStatus::kOk) {
        entries.reserve(reply.result.entries.size());
        for (const TopREntry& entry : reply.result.entries) {
          entries.push_back(TranscriptEntry{entry.vertex, entry.score});
        }
      }
      frame = EncodeReplyFrame(front.id, reply.status, entries);
      MutexLock lock(stats_mutex_);
      stats_.latency_ns.Record(static_cast<std::uint64_t>(latency.count()));
    }
    c.pending.pop_front();
    AppendOutbound(c, std::move(frame));
    appended = true;
  }
  if (unblocked && !c.blocked_on_update) {
    // Frames held behind the (now applied) update are sitting whole in
    // inbuf; epoll will not re-announce them, so parse now.
    ParseFrames(c);
  }
  return appended;
}

void SocketServer::AppendOutbound(Connection& c, std::string frame) {
  // Compact the already-sent prefix before growing the buffer.
  if (c.outbuf_off > 0 &&
      (c.outbuf_off == c.outbuf.size() || c.outbuf_off >= 65536)) {
    c.outbuf.erase(0, c.outbuf_off);
    c.outbuf_off = 0;
  }
  if (c.outbuf.empty()) {
    // Adopt the frame's buffer outright: in the common keep-up case the
    // previous flush drained everything, and appending here would copy
    // every reply's bytes a second time.
    c.outbuf = std::move(frame);
  } else {
    c.outbuf += frame;
  }
  {
    MutexLock lock(stats_mutex_);
    ++stats_.replies_sent;
    if (c.outbound_bytes() > stats_.outbound_high_water) {
      stats_.outbound_high_water = c.outbound_bytes();
    }
  }
  if (!c.paused && !c.read_shutdown && OverInboundLimit(c)) {
    c.paused = true;
    {
      MutexLock lock(stats_mutex_);
      ++stats_.backpressure_pauses;
    }
    UpdateInterest(c);
  }
}

bool SocketServer::FlushConnection(Connection& c) {
  if (c.dead) return false;
  bool progressed = false;
  while (c.outbound_bytes() > 0) {
    const ssize_t n = ::send(c.fd, c.outbuf.data() + c.outbuf_off,
                             c.outbound_bytes(), MSG_NOSIGNAL);
    if (n > 0) {
      c.outbuf_off += static_cast<std::size_t>(n);
      {
        MutexLock lock(stats_mutex_);
        stats_.bytes_out += static_cast<std::uint64_t>(n);
      }
      progressed = true;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    c.dead = true;  // EPIPE/ECONNRESET: the reader is gone
    return progressed;
  }
  if (c.outbound_bytes() == 0) {
    c.outbuf.clear();
    c.outbuf_off = 0;
  }
  UpdateInterest(c);  // (dis)arms EPOLLOUT to match the remaining bytes
  MaybeResumeReading(c);
  return progressed;
}

void SocketServer::MaybeResumeReading(Connection& c) {
  if (!c.paused || c.dead || c.read_shutdown) return;
  if (OverInboundLimit(c)) return;
  c.paused = false;
  UpdateInterest(c);
  // Frames that arrived before the pause may be sitting whole in inbuf;
  // epoll will not re-announce them, so parse now.
  ParseFrames(c);
}

void SocketServer::UpdateInterest(Connection& c) {
  std::uint32_t desired = 0;
  // A lingering connection reads (and discards) so the client's EOF is
  // noticed without waiting for the linger deadline.
  if (c.ShouldRead() || c.lingering) desired |= EPOLLIN;
  if (c.outbound_bytes() > 0) desired |= EPOLLOUT;
  if (desired == c.armed_events) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.fd = c.fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev) == 0) {
    c.armed_events = desired;
  }
}

void SocketServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  MutexLock lock(stats_mutex_);
  ++stats_.connections_closed;
}

bool SocketServer::OverInboundLimit(const Connection& c) const {
  return c.outbound_bytes() >= options_.max_outbound_bytes ||
         c.pending.size() >= options_.max_pending_replies;
}

SocketServerStats SocketServer::stats() const {
  MutexLock lock(stats_mutex_);
  SocketServerStats snapshot = stats_;
  snapshot.tenant_queries.assign(tenants_.begin(), tenants_.end());
  return snapshot;
}

std::string SocketServer::RenderStatsTables() const {
  const SocketServerStats s = stats();
  std::ostringstream out;

  out << "socket transport\n";
  TablePrinter transport({"conns", "frames-in", "queries", "updates",
                          "replies", "proto-err", "bytes-in", "bytes-out",
                          "bp-pauses", "out-hwm"});
  transport.Row(s.connections_accepted, s.frames_in, s.queries, s.updates,
                s.replies_sent, s.protocol_errors, HumanBytes(s.bytes_in),
                HumanBytes(s.bytes_out), s.backpressure_pauses,
                HumanBytes(s.outbound_high_water));
  transport.Print(out);

  out << "\nquery latency (submit->harvest, usec)\n";
  const LatencyHistogram& h = s.latency_ns;
  const auto usec = [](double ns) { return FormatDouble(ns / 1000.0, 1); };
  TablePrinter latency({"count", "mean", "p50", "p99", "p999", "max"});
  latency.Row(h.count(), usec(h.Mean()),
              usec(static_cast<double>(h.ValueAtQuantile(0.5))),
              usec(static_cast<double>(h.ValueAtQuantile(0.99))),
              usec(static_cast<double>(h.ValueAtQuantile(0.999))),
              usec(static_cast<double>(h.max())));
  latency.Print(out);

  out << "\nper-tenant queries\n";
  TablePrinter tenants({"tenant", "queries"});
  constexpr std::size_t kMaxRows = 32;
  std::uint64_t folded = s.untracked_tenant_queries;
  std::size_t rows = 0;
  for (const auto& [tenant, queries] : s.tenant_queries) {
    if (rows < kMaxRows) {
      tenants.Row(tenant, queries);
      ++rows;
    } else {
      folded += queries;
    }
  }
  if (folded > 0) tenants.Row("(other)", folded);
  tenants.Print(out);

  if (options_.extra_stats) out << "\n" << options_.extra_stats();
  return out.str();
}

}  // namespace tsd
