#include "server/live_index.h"

#include <cstdint>
#include <sstream>

#include "common/table.h"
#include "common/timer.h"

namespace tsd {

bool LiveUpdateApplier::ApplyUpdate(bool insert, std::uint64_t u,
                                    std::uint64_t v) {
  MutexLock lock(mutex_);
  // Holding mutex_ serializes every update entry point of index_, which is
  // exactly the serialized-updater contract the index requires.
  WallTimer timer;
  bool applied = false;
  if (u <= UINT32_MAX && v <= UINT32_MAX) {
    const auto uu = static_cast<VertexId>(u);
    const auto vv = static_cast<VertexId>(v);
    applied = insert ? index_.InsertEdge(uu, vv) : index_.RemoveEdge(uu, vv);
  }
  latency_usec_.Record(static_cast<std::uint64_t>(timer.Seconds() * 1e6));
  if (applied) {
    ++stats_.applied;
    if (insert) {
      ++stats_.inserts;
    } else {
      ++stats_.removes;
    }
  } else {
    ++stats_.noops;
  }
  return applied;
}

std::string LiveUpdateApplier::RenderStatsTables() const {
  LiveUpdateStats stats;
  LatencyHistogram latency;
  EpochStats epochs;
  std::uint64_t rebuilds = 0;
  {
    MutexLock lock(mutex_);
    stats = stats_;
    latency = latency_usec_;
    // Under the applier mutex no update is in flight, so the index's
    // updater-quiescent accessors are safe here.
    epochs = index_.epoch_stats();
    rebuilds = index_.rebuild_count();
  }

  std::ostringstream out;
  {
    TablePrinter t({"live updates", "applied", "noop", "inserts", "removes",
                    "rebuilds"});
    t.Row("totals", stats.applied, stats.noops, stats.inserts, stats.removes,
          rebuilds);
    out << t.ToString();
  }
  out << "\n";
  {
    TablePrinter t({"update latency (usec)", "count", "mean", "p50", "p99",
                    "max"});
    t.Row("apply", latency.count(), latency.Mean(),
          latency.ValueAtQuantile(0.50), latency.ValueAtQuantile(0.99),
          latency.max());
    out << t.ToString();
  }
  out << "\n";
  {
    TablePrinter t({"epoch reclamation", "epoch", "advances", "stalled",
                    "retired", "freed", "reader-slots"});
    t.Row("totals", epochs.epoch, epochs.advances, epochs.stalled_advances,
          epochs.retired, epochs.freed, epochs.reader_slots);
    out << t.ToString();
  }
  return out.str();
}

}  // namespace tsd
