// Shared request/reply/option/stat types of the serving layer, plus the
// ServeSubmitter interface the protocol front-ends are written against.
//
// Both serving loops — the single-consumer ServeLoop and the sharded
// multi-consumer ShardedServeLoop — speak exactly this vocabulary, which is
// what lets one stdin-proto driver (and one CI byte-identity harness) run
// over either: a reply is a pure function of its request, so which loop
// shape produced it is invisible in the bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/future.h"
#include "core/types.h"

namespace tsd {

/// One query from one tenant.
struct ServeRequest {
  std::uint64_t tenant = 0;
  std::uint32_t k = 2;
  std::uint32_t r = 10;
};

enum class ServeStatus : std::uint8_t {
  kOk = 0,
  kRejectedBadQuery,    // k < 2 or r < 1
  kRejectedRLimit,      // r exceeds ServeOptions::max_r
  kRejectedQueueDepth,  // tenant already has max_queue_depth in flight
  kRejectedShutdown,    // submitted after Shutdown()
  kInternalError,       // the batch's SearchBatch threw; server kept running
};

/// Human-readable status tag ("ok", "rejected:r-limit", ...) used by the
/// line protocol and logs.
const char* ServeStatusName(ServeStatus status);

struct ServeReply {
  ServeStatus status = ServeStatus::kOk;
  TopRResult result;  // populated only when status == kOk
};

struct ServeOptions {
  /// Per-request r cap (protects the context-materialization phase from a
  /// single tenant asking for the whole graph).
  std::uint32_t max_r = 1024;
  /// Per-tenant in-flight request cap.
  std::uint32_t max_queue_depth = 1024;
  /// Coalescing cap: at most this many requests form one SearchBatch.
  std::uint32_t max_batch = 64;
  /// Pipeline knobs for each serving session (the "server threads").
  QueryOptions query_options;
};

struct ServeStats {
  std::uint64_t accepted = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected_bad_query = 0;
  std::uint64_t rejected_r_limit = 0;
  std::uint64_t rejected_queue_depth = 0;
  std::uint64_t rejected_shutdown = 0;
  /// Requests whose batch threw (fulfilled with kInternalError).
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  /// batch_size_count[s] = number of dispatched batches that coalesced
  /// exactly s requests (index 0 unused).
  std::vector<std::uint64_t> batch_size_count;

  /// Element-wise accumulation (used to sum per-shard stats into totals).
  ServeStats& operator+=(const ServeStats& other);
};

/// The submission surface shared by ServeLoop and ShardedServeLoop. The
/// stdin protocol (and any future socket transport) drives this interface,
/// so transports are written once and run over any loop shape.
class ServeSubmitter {
 public:
  virtual ~ServeSubmitter();

  /// Spawns the consumer thread(s). Idempotent.
  virtual void Start() = 0;

  /// Submits a request; safe from any number of threads. The future is
  /// always fulfilled: with the result, or with a rejection status.
  virtual Future<ServeReply> Submit(const ServeRequest& request) = 0;
};

}  // namespace tsd
