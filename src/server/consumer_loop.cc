#include "server/consumer_loop.h"

#include <utility>

#include "common/check.h"
#include "common/mutex.h"

namespace tsd {

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kRejectedBadQuery:
      return "rejected:bad-query";
    case ServeStatus::kRejectedRLimit:
      return "rejected:r-limit";
    case ServeStatus::kRejectedQueueDepth:
      return "rejected:queue-depth";
    case ServeStatus::kRejectedShutdown:
      return "rejected:shutdown";
    case ServeStatus::kInternalError:
      return "error:internal";
  }
  return "unknown";
}

ServeStats& ServeStats::operator+=(const ServeStats& other) {
  accepted += other.accepted;
  served += other.served;
  rejected_bad_query += other.rejected_bad_query;
  rejected_r_limit += other.rejected_r_limit;
  rejected_queue_depth += other.rejected_queue_depth;
  rejected_shutdown += other.rejected_shutdown;
  failed += other.failed;
  batches += other.batches;
  if (batch_size_count.size() < other.batch_size_count.size()) {
    batch_size_count.resize(other.batch_size_count.size(), 0);
  }
  for (std::size_t s = 0; s < other.batch_size_count.size(); ++s) {
    batch_size_count[s] += other.batch_size_count[s];
  }
  return *this;
}

ServeSubmitter::~ServeSubmitter() = default;

namespace internal {

ConsumerLoop::ConsumerLoop(const DiversitySearcher& searcher,
                           const ServeOptions& options)
    : searcher_(searcher),
      options_(options),
      session_(options.query_options) {
  TSD_CHECK(options_.max_batch >= 1);
}

ConsumerLoop::~ConsumerLoop() { Shutdown(); }

void ConsumerLoop::Start() {
  if (started_.exchange(true)) return;
  consumer_ = std::thread([this] { RunLoop(); });
}

Future<ServeReply> ConsumerLoop::RejectNow(ServeStatus status) {
  Promise<ServeReply> promise;
  Future<ServeReply> future = promise.GetFuture();
  ServeReply reply;
  reply.status = status;
  promise.Set(std::move(reply));
  return future;
}

Future<ServeReply> ConsumerLoop::Submit(const ServeRequest& request,
                                        std::uint64_t tenant_hash) {
  // Admission control is synchronous and a pure function of (request,
  // tenant depth), so rejections are deterministic for a given submission
  // sequence regardless of how fast the consumer drains.
  if (request.k < 2 || request.r < 1) {
    MutexLock lock(mutex_);
    ++stats_.rejected_bad_query;
    return RejectNow(ServeStatus::kRejectedBadQuery);
  }
  if (request.r > options_.max_r) {
    MutexLock lock(mutex_);
    ++stats_.rejected_r_limit;
    return RejectNow(ServeStatus::kRejectedRLimit);
  }

  // The queued_ increment is ordered before the accepting_ load (both
  // seq_cst) so the consumer's exit condition (!accepting_ && queued_ == 0)
  // cannot miss a request that already passed the shutdown check.
  queued_.fetch_add(1);
  if (!accepting_.load()) {
    queued_.fetch_sub(1);
    // The consumer may have parked on (!accepting_ && queued_ == 0) while
    // our transient increment was visible; re-notify so the exit predicate
    // is re-evaluated, otherwise Shutdown()'s join() can hang forever.
    queue_.NotifyOne();
    MutexLock lock(mutex_);
    ++stats_.rejected_shutdown;
    return RejectNow(ServeStatus::kRejectedShutdown);
  }

  {
    MutexLock lock(mutex_);
    if (!depth_.TryIncrement(request.tenant, tenant_hash,
                             options_.max_queue_depth)) {
      queued_.fetch_sub(1);
      queue_.NotifyOne();  // same transient-increment race as above
      ++stats_.rejected_queue_depth;
      return RejectNow(ServeStatus::kRejectedQueueDepth);
    }
    ++stats_.accepted;
  }

  Pending pending;
  pending.request = request;
  pending.tenant_hash = tenant_hash;
  Future<ServeReply> future = pending.promise.GetFuture();
  queue_.Push(std::move(pending));
  return future;
}

void ConsumerLoop::ServeBatch(std::vector<Pending>& batch) {
  std::vector<BatchQuery> queries;
  queries.reserve(batch.size());
  for (const Pending& pending : batch) {
    queries.push_back(BatchQuery{pending.request.k, pending.request.r});
  }

  // One coalesced SearchBatch: the amortized engine decomposes each
  // candidate once for every in-flight tenant. Replies are bit-identical to
  // per-query TopR, so coalescing is invisible in the response bytes. A
  // throwing batch must not take down the consumer (an unwinding exception
  // would std::terminate the thread and abandon every outstanding future):
  // its requests are fulfilled with kInternalError and serving continues.
  std::vector<TopRResult> results;
  bool ok = true;
  try {
    results = searcher_.SearchBatch(queries, session_);
    TSD_CHECK(results.size() == batch.size());
  } catch (...) {
    // catch-everything: a non-std exception escaping here would unwind the
    // consumer thread and std::terminate the process.
    ok = false;
  }

  {
    MutexLock lock(mutex_);
    ++stats_.batches;
    if (stats_.batch_size_count.size() <= batch.size()) {
      stats_.batch_size_count.resize(batch.size() + 1, 0);
    }
    ++stats_.batch_size_count[batch.size()];
    (ok ? stats_.served : stats_.failed) += batch.size();
    for (const Pending& pending : batch) {
      // Erase drained tenants (Decrement drops the slot at depth 0): ids
      // are client-controlled u64s, so keeping one entry per tenant ever
      // seen would grow without bound.
      depth_.Decrement(pending.request.tenant, pending.tenant_hash);
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    ServeReply reply;
    if (ok) {
      reply.status = ServeStatus::kOk;
      reply.result = std::move(results[i]);
    } else {
      reply.status = ServeStatus::kInternalError;
    }
    batch[i].promise.Set(std::move(reply));
  }
}

void ConsumerLoop::RunLoop() {
  // This function IS the consumer thread (spawned exactly once by Start();
  // the std::thread construction is the happens-before handoff), so it may
  // claim the queue's consumer role and the loop's consumer-thread role for
  // everything it calls.
  queue_.AssertConsumer();
  consumer_thread_.Assert();
  std::vector<Pending> batch;
  while (true) {
    batch.clear();
    Pending pending;
    while (batch.size() < options_.max_batch && queue_.TryPop(&pending)) {
      queued_.fetch_sub(1);
      batch.push_back(std::move(pending));
    }
    if (!batch.empty()) {
      ServeBatch(batch);
      continue;  // more may have arrived while serving
    }
    if (!accepting_.load() && queued_.load() == 0) break;
    queue_.ConsumerWait([this] {
      queue_.AssertConsumer();  // same thread; lambdas are analyzed alone
      return !queue_.Empty() || (!accepting_.load() && queued_.load() == 0);
    });
  }
}

void ConsumerLoop::StopAccepting() {
  accepting_.store(false);
  queue_.NotifyOne();
}

void ConsumerLoop::Shutdown() {
  // Start first so requests accepted before Start() are still served — the
  // "drain everything accepted" contract holds even for a loop that never
  // ran.
  Start();
  StopAccepting();
  if (consumer_.joinable()) consumer_.join();
}

ServeStats ConsumerLoop::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace internal
}  // namespace tsd
