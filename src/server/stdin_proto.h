// Line-oriented request/response protocol over a serving loop, so scripts
// and CI can drive the server through pipes (`tsdtool serve --stdin-proto`).
//
// Requests, one per line:
//   q <tenant> <k> <r>     submit a top-r query for a tenant
//   flush                  print replies for all outstanding requests,
//                          in submission order
//   # ...                  comment (skipped); blank lines are skipped too
// EOF implies a final flush.
//
// Responses, written to `out` at flush time:
//   = <id> ok entries=<n>  followed by n lines "<rank> <vertex> <score>"
//   = <id> rejected:<why>  (r-limit, queue-depth, bad-query, shutdown)
// Ids are 1-based submission order.
//
// The driver runs over the ServeSubmitter interface, so the same transcript
// machinery serves the single-consumer ServeLoop and the sharded
// ShardedServeLoop. With shards, replies *complete* out of submission order
// (each shard drains its own queue at its own pace); a sequencing reorder
// buffer over the futures restores emission order: replies are harvested
// from whichever shard finishes first but always printed in ascending
// submission id. Since each reply is bit-identical to a serial TopR of the
// same request, the transcript is byte-stable across shard counts, server
// pipeline thread counts, and coalescing patterns (CI compares
// --shards=1/2/4 x --threads=1/8 byte for byte). Malformed lines yield a
// deterministic "! parse-error line <n>" response line and are otherwise
// skipped.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "server/serve_types.h"

namespace tsd {

struct StdinProtoStats {
  std::uint64_t requests = 0;
  std::uint64_t parse_errors = 0;
};

/// Classification of one request line of the text protocol.
enum class ProtoLineKind {
  kSkip,   // blank line or '#' comment
  kQuery,  // "q <tenant> <k> <r>" — *request is filled in
  kFlush,  // "flush"
  kError,  // anything else (emit "! parse-error line <n>")
};

/// Parses one line of the text protocol. Shared by the stdin driver and the
/// socket client's script driver (tools/tsdtool client), so both transports
/// accept and reject exactly the same request streams — a prerequisite for
/// the byte-identical-transcript contract CI enforces.
ProtoLineKind ParseProtoLine(const std::string& line, ServeRequest* request);

/// One (vertex, score) row of a reply, decoupled from TopREntry so decoded
/// wire replies and in-process ServeReplies render through one function.
struct TranscriptEntry {
  std::uint64_t vertex = 0;
  std::uint64_t score = 0;
};

/// Renders one reply in the canonical transcript format — the exact bytes
/// both transports must produce:
///   = <id> ok entries=<n>    then n lines "<rank> <vertex> <score>"
///   = <id> <status-name>     for rejections and internal errors
void AppendReplyTranscript(std::ostream& out, std::uint64_t id,
                           ServeStatus status,
                           const std::vector<TranscriptEntry>& entries);

/// ServeReply flavor of the renderer (used by the stdin driver).
void AppendReplyTranscript(std::ostream& out, std::uint64_t id,
                           const ServeReply& reply);

/// Reads requests from `in` until EOF, submitting to `loop` (which must be
/// Start()ed by the caller or by an earlier flush — RunStdinProto starts it
/// on first submit), and writes the response transcript to `out`. Returns
/// driver-side stats; serving stats come from loop.stats().
StdinProtoStats RunStdinProto(std::istream& in, std::ostream& out,
                              ServeSubmitter& loop);

}  // namespace tsd
