// Line-oriented request/response protocol over a ServeLoop, so scripts and
// CI can drive the server through pipes (`tsdtool serve --stdin-proto`).
//
// Requests, one per line:
//   q <tenant> <k> <r>     submit a top-r query for a tenant
//   flush                  print replies for all outstanding requests,
//                          in submission order
//   # ...                  comment (skipped); blank lines are skipped too
// EOF implies a final flush.
//
// Responses, written to `out` at flush time:
//   = <id> ok entries=<n>  followed by n lines "<rank> <vertex> <score>"
//   = <id> rejected:<why>  (r-limit, queue-depth, bad-query, shutdown)
// Ids are 1-based submission order. Replies are printed in submission
// order — not completion order — and each reply is bit-identical to a
// serial TopR of the same request, so the transcript is byte-stable across
// server thread counts and coalescing patterns (CI compares 1 vs 8 server
// threads byte for byte). Malformed lines yield a deterministic
// "! parse-error line <n>" response line and are otherwise skipped.
#pragma once

#include <iosfwd>

#include "server/serve_loop.h"

namespace tsd {

struct StdinProtoStats {
  std::uint64_t requests = 0;
  std::uint64_t parse_errors = 0;
};

/// Reads requests from `in` until EOF, submitting to `loop` (which must be
/// Start()ed by the caller or by an earlier flush — RunStdinProto starts it
/// on first submit), and writes the response transcript to `out`. Returns
/// driver-side stats; serving stats come from loop.stats().
StdinProtoStats RunStdinProto(std::istream& in, std::ostream& out,
                              ServeLoop& loop);

}  // namespace tsd
