// Line-oriented request/response protocol over a serving loop, so scripts
// and CI can drive the server through pipes (`tsdtool serve --stdin-proto`).
//
// Requests, one per line:
//   q <tenant> <k> <r>     submit a top-r query for a tenant
//   +<u> <v>               insert edge {u, v} into the live index
//   -<u> <v>               remove edge {u, v} from the live index
//   flush                  print replies for all outstanding requests,
//                          in submission order
//   # ...                  comment (skipped); blank lines are skipped too
// EOF implies a final flush.
//
// Responses, written to `out` at flush time:
//   = <id> ok entries=<n>  followed by n lines "<rank> <vertex> <score>"
//   = <id> rejected:<why>  (r-limit, queue-depth, bad-query, shutdown)
//   = <id> applied         update changed the graph
//   = <id> noop            update was a no-op (dup insert, absent remove,
//                          out-of-range or equal ids)
//   = <id> update-unsupported   server has no live (dynamic) index
// Ids are 1-based submission order; updates consume ids from the same
// counter as queries.
//
// The driver runs over the ServeSubmitter interface, so the same transcript
// machinery serves the single-consumer ServeLoop and the sharded
// ShardedServeLoop. With shards, replies *complete* out of submission order
// (each shard drains its own queue at its own pace); a sequencing reorder
// buffer over the futures restores emission order: replies are harvested
// from whichever shard finishes first but always printed in ascending
// submission id. Since each reply is bit-identical to a serial TopR of the
// same request, the transcript is byte-stable across shard counts, server
// pipeline thread counts, and coalescing patterns (CI compares
// --shards=1/2/4 x --threads=1/8 byte for byte). Malformed lines yield a
// deterministic "! parse-error line <n>" response line and are otherwise
// skipped.
//
// Update ordering: an update line is applied only after the replies of all
// previously submitted queries are ready (they were answered against the
// pre-update index), and queries on later lines are submitted only after
// the update returns (they see the post-update index). That update barrier
// is what keeps transcripts with interleaved update lines deterministic —
// and byte-stable across shard/thread counts — even though the underlying
// DynamicTsdIndex allows queries to run concurrently with updates.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "server/serve_types.h"

namespace tsd {

class LiveUpdateApplier;

struct StdinProtoStats {
  std::uint64_t requests = 0;
  std::uint64_t updates = 0;
  std::uint64_t parse_errors = 0;
};

/// Classification of one request line of the text protocol.
enum class ProtoLineKind {
  kSkip,    // blank line or '#' comment
  kQuery,   // "q <tenant> <k> <r>" — *request is filled in
  kUpdate,  // "+<u> <v>" / "-<u> <v>" — *update is filled in
  kFlush,   // "flush"
  kError,   // anything else (emit "! parse-error line <n>")
};

/// One parsed "+u v" / "-u v" update line. Ids are untrusted u64s; range
/// checking is the applier's job (out-of-range ids are noops, not errors).
struct ProtoUpdate {
  bool insert = true;
  std::uint64_t u = 0;
  std::uint64_t v = 0;
};

/// Parses one line of the text protocol. Shared by the stdin driver and the
/// socket client's script driver (tools/tsdtool client), so both transports
/// accept and reject exactly the same request streams — a prerequisite for
/// the byte-identical-transcript contract CI enforces. When `update` is
/// null, update lines classify as kError.
ProtoLineKind ParseProtoLine(const std::string& line, ServeRequest* request,
                             ProtoUpdate* update = nullptr);

/// One (vertex, score) row of a reply, decoupled from TopREntry so decoded
/// wire replies and in-process ServeReplies render through one function.
struct TranscriptEntry {
  std::uint64_t vertex = 0;
  std::uint64_t score = 0;
};

/// Renders one reply in the canonical transcript format — the exact bytes
/// both transports must produce:
///   = <id> ok entries=<n>    then n lines "<rank> <vertex> <score>"
///   = <id> <status-name>     for rejections and internal errors
void AppendReplyTranscript(std::ostream& out, std::uint64_t id,
                           ServeStatus status,
                           const std::vector<TranscriptEntry>& entries);

/// ServeReply flavor of the renderer (used by the stdin driver).
void AppendReplyTranscript(std::ostream& out, std::uint64_t id,
                           const ServeReply& reply);

/// Reads requests from `in` until EOF, submitting to `loop` (which must be
/// Start()ed by the caller or by an earlier flush — RunStdinProto starts it
/// on first submit), and writes the response transcript to `out`. Returns
/// driver-side stats; serving stats come from loop.stats().
///
/// `updater`, when non-null, handles "+u v" / "-u v" lines under the
/// update-ordering barrier documented above; when null, update lines are
/// acknowledged as "update-unsupported" (still consuming an id).
StdinProtoStats RunStdinProto(std::istream& in, std::ostream& out,
                              ServeSubmitter& loop,
                              LiveUpdateApplier* updater = nullptr);

}  // namespace tsd
