// Wire format of the socket transport, plus a small blocking client.
//
// Framing: every message is a 4-byte little-endian payload length followed
// by that many payload bytes; payload byte 0 is the frame type. Lengths of
// zero or beyond the server's max_frame_payload are protocol errors (the
// length prefix is attacker-controlled input — the server must never trust
// it to allocate).
//
//   client -> server
//     kQueryFrame    u8 type, u64 tenant, u32 k, u32 r      (17 bytes)
//     kStatsFrame    u8 type                                 (1 byte)
//     kShutdownFrame u8 type                                 (1 byte)
//     kUpdateFrame   u8 type, u8 insert, u64 u, u64 v        (18 bytes)
//   server -> client (strictly in per-connection submission order)
//     kReplyFrame      u8 type, u64 id, u8 status, u32 n, n x (u64 vertex,
//                      u64 score)
//     kStatsReplyFrame u8 type, u64 id, rendered stats table bytes
//     kErrorFrame      u8 type, u64 id (0 = not tied to a request), message
//     kUpdateAckFrame  u8 type, u64 id, u8 outcome (0 = noop, 1 = applied,
//                      2 = unsupported)
//
// Every request on a connection — query, stats, shutdown — consumes the
// next 1-based id, and the server emits replies strictly by ascending id
// (the same sequencing contract as the stdin protocol's reorder buffer),
// which is what makes a socket transcript byte-comparable to a stdin
// transcript for the same request stream. All integers little-endian on
// the wire regardless of host order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "server/serve_types.h"
#include "server/stdin_proto.h"  // TranscriptEntry + shared line parser

namespace tsd {

enum SocketFrameType : std::uint8_t {
  // client -> server
  kQueryFrame = 1,
  kStatsFrame = 2,
  kShutdownFrame = 3,
  kUpdateFrame = 4,
  // server -> client
  kReplyFrame = 1,
  kStatsReplyFrame = 2,
  kErrorFrame = 3,
  kUpdateAckFrame = 4,
};

/// Wire outcome of an update frame (kUpdateAckFrame payload byte 9).
enum class UpdateAckOutcome : std::uint8_t {
  kNoop = 0,
  kApplied = 1,
  kUnsupported = 2,  // server has no live (dynamic) index
};

/// Default inbound frame-payload cap; a length prefix above this is a
/// protocol error, never an allocation.
inline constexpr std::size_t kDefaultMaxFramePayload = 1u << 20;

// --- encoding helpers (append to a byte string) ---

void AppendU32(std::string& out, std::uint32_t value);
void AppendU64(std::string& out, std::uint64_t value);

/// Little-endian wire reads; `p` must have 4 (8) readable bytes.
std::uint32_t ReadWireU32(const char* p);
std::uint64_t ReadWireU64(const char* p);

/// Wraps `payload` in a length prefix.
std::string EncodeFrame(const std::string& payload);

std::string EncodeQueryFrame(std::uint64_t tenant, std::uint32_t k,
                             std::uint32_t r);
std::string EncodeStatsFrame();
std::string EncodeShutdownFrame();
std::string EncodeUpdateFrame(bool insert, std::uint64_t u, std::uint64_t v);

std::string EncodeReplyFrame(std::uint64_t id, ServeStatus status,
                             const std::vector<TranscriptEntry>& entries);
std::string EncodeStatsReplyFrame(std::uint64_t id, const std::string& text);
std::string EncodeErrorFrame(std::uint64_t id, const std::string& message);
std::string EncodeUpdateAckFrame(std::uint64_t id, UpdateAckOutcome outcome);

// --- decoding ---

/// A decoded client->server frame.
struct ClientFrame {
  std::uint8_t type = 0;
  std::uint64_t tenant = 0;
  std::uint32_t k = 0;
  std::uint32_t r = 0;
  // kUpdateFrame fields
  bool insert = false;
  std::uint64_t u = 0;
  std::uint64_t v = 0;
};

/// Strict decode of one client payload: exact length for its type, no
/// trailing bytes. False on anything malformed.
bool DecodeClientFrame(const char* payload, std::size_t size, ClientFrame* out);

/// A decoded server->client frame.
struct ServerFrame {
  std::uint8_t type = 0;
  std::uint64_t id = 0;
  ServeStatus status = ServeStatus::kOk;           // kReplyFrame
  std::vector<TranscriptEntry> entries;            // kReplyFrame
  std::string text;                                // stats table / error msg
  UpdateAckOutcome outcome = UpdateAckOutcome::kNoop;  // kUpdateAckFrame
};

/// Strict decode of one server payload. False on anything malformed.
bool DecodeServerFrame(const char* payload, std::size_t size, ServerFrame* out);

// --- blocking client (tools, tests, benches, examples) ---

/// Minimal blocking IPv4 client for the socket transport. One in-flight
/// pipeline: send any number of requests, then read replies — the server
/// returns them in submission order. Not thread-safe for concurrent sends;
/// one thread may send while another reads (the load-generator shape).
class SocketClient {
 public:
  SocketClient() = default;
  ~SocketClient();
  SocketClient(SocketClient&& other) noexcept;
  SocketClient& operator=(SocketClient&& other) noexcept;
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  /// Connects to host:port. `recv_timeout_ms` > 0 turns a silent server
  /// into a hard CheckError instead of a hang (tests always set it);
  /// `recv_buffer_bytes` > 0 shrinks SO_RCVBUF before connecting — the
  /// slow-reader backpressure tests use a tiny window on purpose. Throws
  /// CheckError when the connection fails.
  static SocketClient Connect(const std::string& host, std::uint16_t port,
                              std::uint32_t recv_timeout_ms = 0,
                              int recv_buffer_bytes = 0);

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends a query/stats/shutdown request; returns its 1-based id in this
  /// connection's sequence.
  std::uint64_t SendQuery(std::uint64_t tenant, std::uint32_t k,
                          std::uint32_t r);
  std::uint64_t SendStats();
  std::uint64_t SendShutdown();
  std::uint64_t SendUpdate(bool insert, std::uint64_t u, std::uint64_t v);

  /// Sends raw bytes verbatim (fuzz tests craft malformed frames with it).
  void SendBytes(const std::string& bytes);

  /// Half-closes the write side (signals EOF to the server's read loop
  /// while keeping the read side open for outstanding replies).
  void CloseSend();

  /// Reads one length-prefixed frame payload. False on clean EOF; throws
  /// CheckError on timeouts, truncated frames, or oversized lengths.
  bool ReadFrame(std::string* payload);

  /// Reads and decodes one server frame. False on clean EOF.
  bool ReadServerFrame(ServerFrame* frame);

  void Close();

 private:
  int fd_ = -1;
  std::uint64_t next_id_ = 0;
  std::string recv_buffer_;  // bytes read past the previous frame
};

/// Driver-side stats of RunSocketClientScript (mirrors StdinProtoStats).
struct SocketClientScriptStats {
  std::uint64_t requests = 0;
  std::uint64_t updates = 0;
  std::uint64_t parse_errors = 0;
  /// Server-sent kErrorFrames (0 for well-formed scripts).
  std::uint64_t server_errors = 0;
};

/// Drives the same text script the stdin protocol reads — `q <tenant> <k>
/// <r>` / `+u v` / `-u v` / `flush` / comments — through a connected
/// SocketClient, writing
/// the transcript to `out`. The request lines are parsed by the *same*
/// ParseProtoLine as the stdin driver and replies are rendered by the same
/// AppendReplyTranscript, so for any script the socket transcript is
/// byte-identical to the stdin transcript by construction — which the
/// differential tests then verify end to end across shard and thread
/// counts. Two extra verbs are socket-only: `stats` prints the server's
/// rendered stats tables, `shutdown` asks the server to drain and exit
/// (both flush first so transcript ordering stays deterministic).
SocketClientScriptStats RunSocketClientScript(std::istream& in,
                                              std::ostream& out,
                                              SocketClient& client);

}  // namespace tsd
