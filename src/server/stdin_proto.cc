#include "server/stdin_proto.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace tsd {
namespace {

/// Parses a non-negative integer; false on garbage or overflow past u64.
bool ParseU64(const std::string& token, std::uint64_t* out) {
  if (token.empty()) return false;
  std::uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - (c - '0')) / 10) return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

struct Outstanding {
  std::uint64_t id;
  Future<ServeReply> future;
};

void Flush(std::vector<Outstanding>& outstanding, std::ostream& out) {
  for (Outstanding& entry : outstanding) {
    ServeReply reply = entry.future.Get();
    if (reply.status == ServeStatus::kOk) {
      out << "= " << entry.id
          << " ok entries=" << reply.result.entries.size() << "\n";
      for (std::size_t i = 0; i < reply.result.entries.size(); ++i) {
        out << i + 1 << " " << reply.result.entries[i].vertex << " "
            << reply.result.entries[i].score << "\n";
      }
    } else {
      out << "= " << entry.id << " " << ServeStatusName(reply.status) << "\n";
    }
  }
  outstanding.clear();
}

}  // namespace

StdinProtoStats RunStdinProto(std::istream& in, std::ostream& out,
                              ServeLoop& loop) {
  StdinProtoStats stats;
  std::vector<Outstanding> outstanding;
  std::uint64_t next_id = 1;
  std::uint64_t line_number = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    const std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (tokens[0] == "flush" && tokens.size() == 1) {
      Flush(outstanding, out);
      continue;
    }
    std::uint64_t tenant = 0;
    std::uint64_t k = 0;
    std::uint64_t r = 0;
    if (tokens[0] == "q" && tokens.size() == 4 &&
        ParseU64(tokens[1], &tenant) && ParseU64(tokens[2], &k) &&
        ParseU64(tokens[3], &r) && k <= UINT32_MAX && r <= UINT32_MAX) {
      loop.Start();
      ServeRequest request;
      request.tenant = tenant;
      request.k = static_cast<std::uint32_t>(k);
      request.r = static_cast<std::uint32_t>(r);
      outstanding.push_back({next_id++, loop.Submit(request)});
      ++stats.requests;
    } else {
      out << "! parse-error line " << line_number << "\n";
      ++stats.parse_errors;
    }
  }
  Flush(outstanding, out);
  return stats;
}

}  // namespace tsd
