#include "server/stdin_proto.h"

#include <cstdint>
#include <deque>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "server/live_index.h"

namespace tsd {
namespace {

/// Parses a non-negative integer; false on garbage or overflow past u64.
bool ParseU64(const std::string& token, std::uint64_t* out) {
  if (token.empty()) return false;
  std::uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - (c - '0')) / 10) return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

/// Sequencing reorder buffer: futures complete in per-shard order, the
/// transcript must be in submission order. Entries are appended in
/// submission order; Harvest() opportunistically collects the replies of
/// the ready *prefix* after each submission (freeing their promise state
/// early without ever blocking the read loop — an O(1) amortized peek per
/// request), and FlushTo() blocks front to back, so emission is strictly by
/// ascending id no matter which shard finished first.
class ReplyReorderBuffer {
 public:
  void Add(std::uint64_t id, Future<ServeReply> future) {
    entries_.push_back(Entry{id, std::move(future), std::nullopt, {}});
    Harvest();
  }

  /// Enqueues an already-rendered transcript chunk (update acks) at its
  /// position in submission order; emitted verbatim by FlushTo.
  void AddText(std::string text) {
    entries_.push_back(Entry{0, Future<ServeReply>(), std::nullopt,
                             std::move(text)});
  }

  void Harvest() {
    for (std::size_t i = harvested_; i < entries_.size(); ++i) {
      Entry& entry = entries_[i];
      if (!entry.text.has_value() && !entry.reply.has_value()) {
        if (!entry.future.Ready()) break;  // prefix only: keep it O(1)-ish
        entry.reply = entry.future.Get();
      }
      harvested_ = i + 1;
    }
  }

  /// Blocks until every outstanding reply is ready, without emitting
  /// anything — the update barrier: an update applied after WaitAll is
  /// ordered after every previously submitted query.
  void WaitAll() {
    for (Entry& entry : entries_) {
      if (!entry.text.has_value() && !entry.reply.has_value()) {
        entry.reply = entry.future.Get();
      }
    }
    harvested_ = entries_.size();
  }

  void FlushTo(std::ostream& out) {
    for (Entry& entry : entries_) {
      if (entry.text.has_value()) {
        out << *entry.text;
        continue;
      }
      const ServeReply reply =
          entry.reply.has_value() ? std::move(*entry.reply)
                                  : entry.future.Get();  // blocks in id order
      AppendReplyTranscript(out, entry.id, reply);
    }
    entries_.clear();
    harvested_ = 0;
  }

 private:
  struct Entry {
    std::uint64_t id;
    Future<ServeReply> future;
    std::optional<ServeReply> reply;  // harvested, not yet emitted
    std::optional<std::string> text;  // pre-rendered (update ack) entry
  };

  std::deque<Entry> entries_;  // ascending id (appended in submission order)
  std::size_t harvested_ = 0;  // entries_[0..harvested_) have replies
};

}  // namespace

ProtoLineKind ParseProtoLine(const std::string& line, ServeRequest* request,
                             ProtoUpdate* update) {
  const std::vector<std::string> tokens = SplitWhitespace(line);
  if (tokens.empty() || tokens[0][0] == '#') return ProtoLineKind::kSkip;
  if (tokens[0] == "flush" && tokens.size() == 1) return ProtoLineKind::kFlush;
  if ((tokens[0][0] == '+' || tokens[0][0] == '-') && tokens.size() == 2 &&
      update != nullptr) {
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (ParseU64(tokens[0].substr(1), &u) && ParseU64(tokens[1], &v)) {
      update->insert = tokens[0][0] == '+';
      update->u = u;
      update->v = v;
      return ProtoLineKind::kUpdate;
    }
    return ProtoLineKind::kError;
  }
  std::uint64_t tenant = 0;
  std::uint64_t k = 0;
  std::uint64_t r = 0;
  if (tokens[0] == "q" && tokens.size() == 4 && ParseU64(tokens[1], &tenant) &&
      ParseU64(tokens[2], &k) && ParseU64(tokens[3], &r) && k <= UINT32_MAX &&
      r <= UINT32_MAX) {
    request->tenant = tenant;
    request->k = static_cast<std::uint32_t>(k);
    request->r = static_cast<std::uint32_t>(r);
    return ProtoLineKind::kQuery;
  }
  return ProtoLineKind::kError;
}

void AppendReplyTranscript(std::ostream& out, std::uint64_t id,
                           ServeStatus status,
                           const std::vector<TranscriptEntry>& entries) {
  if (status == ServeStatus::kOk) {
    out << "= " << id << " ok entries=" << entries.size() << "\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      out << i + 1 << " " << entries[i].vertex << " " << entries[i].score
          << "\n";
    }
  } else {
    out << "= " << id << " " << ServeStatusName(status) << "\n";
  }
}

void AppendReplyTranscript(std::ostream& out, std::uint64_t id,
                           const ServeReply& reply) {
  std::vector<TranscriptEntry> entries;
  if (reply.status == ServeStatus::kOk) {
    entries.reserve(reply.result.entries.size());
    for (const TopREntry& entry : reply.result.entries) {
      entries.push_back(TranscriptEntry{entry.vertex, entry.score});
    }
  }
  AppendReplyTranscript(out, id, reply.status, entries);
}

StdinProtoStats RunStdinProto(std::istream& in, std::ostream& out,
                              ServeSubmitter& loop,
                              LiveUpdateApplier* updater) {
  StdinProtoStats stats;
  ReplyReorderBuffer outstanding;
  std::uint64_t next_id = 1;
  std::uint64_t line_number = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    ServeRequest request;
    ProtoUpdate update;
    switch (ParseProtoLine(line, &request, &update)) {
      case ProtoLineKind::kSkip:
        break;
      case ProtoLineKind::kFlush:
        outstanding.FlushTo(out);
        break;
      case ProtoLineKind::kQuery:
        loop.Start();
        outstanding.Add(next_id++, loop.Submit(request));
        ++stats.requests;
        break;
      case ProtoLineKind::kUpdate: {
        // Update barrier (header comment): earlier queries finish against
        // the pre-update index; later queries are submitted only after the
        // update returns.
        outstanding.WaitAll();
        const std::uint64_t id = next_id++;
        const char* ack = "update-unsupported";
        if (updater != nullptr) {
          ack = updater->ApplyUpdate(update.insert, update.u, update.v)
                    ? "applied"
                    : "noop";
        }
        outstanding.AddText("= " + std::to_string(id) + " " + ack + "\n");
        ++stats.updates;
        break;
      }
      case ProtoLineKind::kError:
        out << "! parse-error line " << line_number << "\n";
        ++stats.parse_errors;
        break;
    }
  }
  outstanding.FlushTo(out);
  return stats;
}

}  // namespace tsd
