#include "server/stdin_proto.h"

#include <cstdint>
#include <deque>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace tsd {
namespace {

/// Parses a non-negative integer; false on garbage or overflow past u64.
bool ParseU64(const std::string& token, std::uint64_t* out) {
  if (token.empty()) return false;
  std::uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - (c - '0')) / 10) return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

/// Sequencing reorder buffer: futures complete in per-shard order, the
/// transcript must be in submission order. Entries are appended in
/// submission order; Harvest() opportunistically collects the replies of
/// the ready *prefix* after each submission (freeing their promise state
/// early without ever blocking the read loop — an O(1) amortized peek per
/// request), and FlushTo() blocks front to back, so emission is strictly by
/// ascending id no matter which shard finished first.
class ReplyReorderBuffer {
 public:
  void Add(std::uint64_t id, Future<ServeReply> future) {
    entries_.push_back(Entry{id, std::move(future), std::nullopt});
    Harvest();
  }

  void Harvest() {
    for (std::size_t i = harvested_; i < entries_.size(); ++i) {
      Entry& entry = entries_[i];
      if (!entry.reply.has_value()) {
        if (!entry.future.Ready()) break;  // prefix only: keep it O(1)-ish
        entry.reply = entry.future.Get();
      }
      harvested_ = i + 1;
    }
  }

  void FlushTo(std::ostream& out) {
    for (Entry& entry : entries_) {
      const ServeReply reply =
          entry.reply.has_value() ? std::move(*entry.reply)
                                  : entry.future.Get();  // blocks in id order
      if (reply.status == ServeStatus::kOk) {
        out << "= " << entry.id << " ok entries=" << reply.result.entries.size()
            << "\n";
        for (std::size_t i = 0; i < reply.result.entries.size(); ++i) {
          out << i + 1 << " " << reply.result.entries[i].vertex << " "
              << reply.result.entries[i].score << "\n";
        }
      } else {
        out << "= " << entry.id << " " << ServeStatusName(reply.status) << "\n";
      }
    }
    entries_.clear();
    harvested_ = 0;
  }

 private:
  struct Entry {
    std::uint64_t id;
    Future<ServeReply> future;
    std::optional<ServeReply> reply;  // harvested, not yet emitted
  };

  std::deque<Entry> entries_;  // ascending id (appended in submission order)
  std::size_t harvested_ = 0;  // entries_[0..harvested_) have replies
};

}  // namespace

StdinProtoStats RunStdinProto(std::istream& in, std::ostream& out,
                              ServeSubmitter& loop) {
  StdinProtoStats stats;
  ReplyReorderBuffer outstanding;
  std::uint64_t next_id = 1;
  std::uint64_t line_number = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    const std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (tokens[0] == "flush" && tokens.size() == 1) {
      outstanding.FlushTo(out);
      continue;
    }
    std::uint64_t tenant = 0;
    std::uint64_t k = 0;
    std::uint64_t r = 0;
    if (tokens[0] == "q" && tokens.size() == 4 &&
        ParseU64(tokens[1], &tenant) && ParseU64(tokens[2], &k) &&
        ParseU64(tokens[3], &r) && k <= UINT32_MAX && r <= UINT32_MAX) {
      loop.Start();
      ServeRequest request;
      request.tenant = tenant;
      request.k = static_cast<std::uint32_t>(k);
      request.r = static_cast<std::uint32_t>(r);
      outstanding.Add(next_id++, loop.Submit(request));
      ++stats.requests;
    } else {
      out << "! parse-error line " << line_number << "\n";
      ++stats.parse_errors;
    }
  }
  outstanding.FlushTo(out);
  return stats;
}

}  // namespace tsd
