// Sharded multi-consumer serving loop: inter-batch parallelism for
// workloads with many tiny queries.
//
// The single-consumer ServeLoop dispatches one coalesced batch at a time —
// intra-batch parallelism comes from the session's pipeline threads, but
// the dispatch itself is serial. ShardedServeLoop replicates the consumer
// machinery S ways: each shard is a complete internal::ConsumerLoop (its
// own wait-free MPSC queue, its own QuerySession, its own coalescing
// SearchBatch dispatch, its own admission state) over the one shared
// immutable searcher, and S consumer threads dispatch S batches
// concurrently.
//
// Routing is by tenant: Submit sends a request to shard
// (Hash64(tenant) >> 32) % num_shards. The hash is the stateless
// splittable mixer from common/hash.h, so the assignment is a pure
// function of (tenant, num_shards) — stable across runs, platforms, client
// thread counts, and submission interleavings. Pinning a tenant to exactly one shard buys
// three properties the PR 4 contracts need:
//
//  * per-tenant admission stays deterministic — the tenant's depth counter
//    lives in its shard alone, tracked shard-locally with the hash the
//    router already computed;
//  * per-tenant submission order is preserved — one tenant's requests flow
//    through one MPSC queue (per-producer FIFO) to one consumer, which
//    fulfills them in pop order;
//  * shard-local batching still amortizes — a tenant's mixed (k, r) stream
//    coalesces with its shard's other tenants into multi-k SearchBatch
//    calls exactly as in the 1-consumer case.
//
// Replies remain a pure function of each request, independent of shard
// count and batch shape (SearchBatch is bit-identical to per-query TopR),
// so the stdin-proto transcript is byte-identical across --shards=1/2/4 —
// CI asserts exactly that. Shutdown stops admission on every shard first,
// then drains and joins them one by one; the rejection paths re-notify
// parked consumers per shard, so the PR 4 rejection-path deadlock cannot
// regress in any shard.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "server/consumer_loop.h"
#include "server/serve_types.h"

namespace tsd {

struct ShardedServeOptions {
  /// Number of independent consumer loops (>= 1). One consumer thread per
  /// shard; tenants are hashed across them.
  std::uint32_t num_shards = 1;
  /// Per-shard serving options (admission caps, coalescing cap, pipeline
  /// knobs of each shard's session).
  ServeOptions shard;
};

class ShardedServeLoop : public ServeSubmitter {
 public:
  /// `searcher` must outlive the loop and stay immutable while serving. All
  /// shards serve the one shared searcher; only sessions are per-shard.
  explicit ShardedServeLoop(const DiversitySearcher& searcher,
                            const ShardedServeOptions& options = {});

  /// Shuts down (drains all shards) if still running.
  ~ShardedServeLoop();

  ShardedServeLoop(const ShardedServeLoop&) = delete;
  ShardedServeLoop& operator=(const ShardedServeLoop&) = delete;

  /// Spawns all shard consumer threads. Idempotent.
  void Start() override;

  /// Routes the request to ShardOf(request.tenant) and submits it there;
  /// safe from any number of threads. The future is always fulfilled.
  Future<ServeReply> Submit(const ServeRequest& request) override;

  /// Stops accepting on every shard, then drains and joins them all.
  /// Idempotent; implied by the destructor.
  void Shutdown();

  /// The shard `tenant` is pinned to: (Hash64(tenant) >> 32) % num_shards.
  /// Pure and deterministic; exposed so tests and operators can audit
  /// placement — Submit routes through the same ShardIndex helper, so the
  /// audited and actual assignments cannot drift.
  std::uint32_t ShardOf(std::uint64_t tenant) const {
    return ShardIndex(Hash64(tenant));
  }

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// Totals summed over all shards (accepted/rejected/failed/served/batches
  /// and the element-wise batch-size histogram). Consistent after
  /// Shutdown(); mid-flight snapshots are approximate.
  ServeStats stats() const;

  /// One shard's counters (shard < num_shards()).
  ServeStats shard_stats(std::uint32_t shard) const;

 private:
  /// Routing from a precomputed Hash64(tenant): the high half selects the
  /// shard so the low half stays uniform for the shard's depth-table
  /// buckets — routing on the same low bits would make every tenant of
  /// shard s satisfy hash ≡ s (mod S), leaving only every S-th table
  /// bucket reachable as a home slot at power-of-two shard counts.
  std::uint32_t ShardIndex(std::uint64_t hash) const {
    return static_cast<std::uint32_t>((hash >> 32) % shards_.size());
  }

  // unique_ptr because ConsumerLoop is immovable (it owns a thread, a
  // mutex, and an intrusive queue). shards_ itself is written only by the
  // constructor and needs no capability; each shard's mutable state is
  // guarded inside ConsumerLoop (its admission Mutex and consumer-thread
  // ThreadRole), which is where the -Wthread-safety build checks it.
  std::vector<std::unique_ptr<internal::ConsumerLoop>> shards_;
};

}  // namespace tsd
