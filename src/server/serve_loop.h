// Single-consumer concurrent serving layer over the shared-immutable
// searchers.
//
// The paper's query workload — many independent top-r queries against one
// prebuilt index — is exactly the multi-tenant server shape. ServeLoop
// turns a (const, immutable-after-build) DiversitySearcher into a service:
// N client threads submit ServeRequests through a wait-free MPSC queue and
// get futures back; one consumer thread drains the queue, **coalesces**
// whatever is in flight into a single SearchBatch call (amortizing ego
// decompositions / index sweeps across tenants exactly as the batch engine
// amortizes them across k's), and fulfills the futures.
//
// Because SearchBatch is bit-identical to per-query TopR, every reply is a
// pure function of its request: the response a client sees does not depend
// on which batch its request landed in, how many tenants were coalesced
// with it, or how many pipeline threads the serving session runs — which is
// what makes the stdin-proto transcript byte-comparable across server
// configurations in CI.
//
// Admission control happens at Submit time, synchronously and
// deterministically: a request with r above the per-request cap, or k < 2 /
// r < 1, or one that would push its tenant past the queue-depth limit, is
// rejected immediately (the future is fulfilled with the rejection) and
// never reaches the queue.
//
// ServeLoop is exactly one shard: the machinery (queue drain, coalesce,
// fulfill, admission, stats) lives in internal::ConsumerLoop, which
// server/sharded_serve.h replicates S ways with tenants hashed to shards
// for inter-batch parallelism.
//
// Thread-safety: this class adds no mutable state of its own — every
// capability (the admission mutex, the consumer-thread role guarding the
// QuerySession) lives in the embedded ConsumerLoop, where the Clang
// -Wthread-safety build checks it. Pure delegating wrappers like this one
// stay annotation-free by design: annotations belong next to the state
// they guard, not on every forwarding layer above it.
#pragma once

#include "server/consumer_loop.h"
#include "server/serve_types.h"

namespace tsd {

class ServeLoop : public ServeSubmitter {
 public:
  /// `searcher` must outlive the loop and stay immutable while serving (the
  /// DiversitySearcher contract). The loop does not start serving until
  /// Start(); requests submitted before then queue up — and coalesce into
  /// the first batches — deterministically.
  explicit ServeLoop(const DiversitySearcher& searcher,
                     const ServeOptions& options = {})
      : consumer_(searcher, options) {}

  ServeLoop(const ServeLoop&) = delete;
  ServeLoop& operator=(const ServeLoop&) = delete;

  /// Spawns the consumer thread. Idempotent.
  void Start() override { consumer_.Start(); }

  /// Submits a request; safe from any number of threads. The future is
  /// always fulfilled: with the result, or with a rejection status.
  Future<ServeReply> Submit(const ServeRequest& request) override {
    return consumer_.Submit(request);
  }

  /// Stops accepting, serves everything already accepted, joins the
  /// consumer thread. Idempotent; implied by the destructor.
  void Shutdown() { consumer_.Shutdown(); }

  /// Snapshot of the serving counters. Consistent totals are guaranteed
  /// after Shutdown(); mid-flight snapshots are approximate.
  ServeStats stats() const { return consumer_.stats(); }

 private:
  internal::ConsumerLoop consumer_;  // shuts down (drains) on destruction
};

}  // namespace tsd
