// Concurrent serving layer over the shared-immutable searchers.
//
// The paper's query workload — many independent top-r queries against one
// prebuilt index — is exactly the multi-tenant server shape. ServeLoop
// turns a (const, immutable-after-build) DiversitySearcher into a service:
// N client threads submit ServeRequests through a wait-free MPSC queue and
// get futures back; one server thread drains the queue, **coalesces**
// whatever is in flight into a single SearchBatch call (amortizing ego
// decompositions / index sweeps across tenants exactly as the batch engine
// amortizes them across k's), and fulfills the futures.
//
// Because SearchBatch is bit-identical to per-query TopR, every reply is a
// pure function of its request: the response a client sees does not depend
// on which batch its request landed in, how many tenants were coalesced
// with it, or how many pipeline threads the serving session runs — which is
// what makes the stdin-proto transcript byte-comparable across server
// configurations in CI.
//
// Admission control happens at Submit time, synchronously and
// deterministically: a request with r above the per-request cap, or k < 2 /
// r < 1, or one that would push its tenant past the queue-depth limit, is
// rejected immediately (the future is fulfilled with the rejection) and
// never reaches the queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/future.h"
#include "common/mpsc_queue.h"
#include "core/query_session.h"
#include "core/types.h"

namespace tsd {

/// One query from one tenant.
struct ServeRequest {
  std::uint64_t tenant = 0;
  std::uint32_t k = 2;
  std::uint32_t r = 10;
};

enum class ServeStatus : std::uint8_t {
  kOk = 0,
  kRejectedBadQuery,    // k < 2 or r < 1
  kRejectedRLimit,      // r exceeds ServeOptions::max_r
  kRejectedQueueDepth,  // tenant already has max_queue_depth in flight
  kRejectedShutdown,    // submitted after Shutdown()
  kInternalError,       // the batch's SearchBatch threw; server kept running
};

/// Human-readable status tag ("ok", "rejected:r-limit", ...) used by the
/// line protocol and logs.
const char* ServeStatusName(ServeStatus status);

struct ServeReply {
  ServeStatus status = ServeStatus::kOk;
  TopRResult result;  // populated only when status == kOk
};

struct ServeOptions {
  /// Per-request r cap (protects the context-materialization phase from a
  /// single tenant asking for the whole graph).
  std::uint32_t max_r = 1024;
  /// Per-tenant in-flight request cap.
  std::uint32_t max_queue_depth = 1024;
  /// Coalescing cap: at most this many requests form one SearchBatch.
  std::uint32_t max_batch = 64;
  /// Pipeline knobs for the serving session (the "server threads").
  QueryOptions query_options;
};

struct ServeStats {
  std::uint64_t accepted = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected_bad_query = 0;
  std::uint64_t rejected_r_limit = 0;
  std::uint64_t rejected_queue_depth = 0;
  std::uint64_t rejected_shutdown = 0;
  /// Requests whose batch threw (fulfilled with kInternalError).
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  /// batch_size_count[s] = number of dispatched batches that coalesced
  /// exactly s requests (index 0 unused).
  std::vector<std::uint64_t> batch_size_count;
};

class ServeLoop {
 public:
  /// `searcher` must outlive the loop and stay immutable while serving (the
  /// DiversitySearcher contract). The loop does not start serving until
  /// Start(); requests submitted before then queue up — and coalesce into
  /// the first batches — deterministically.
  explicit ServeLoop(const DiversitySearcher& searcher,
                     const ServeOptions& options = {});

  /// Shuts down (drains accepted requests) if still running.
  ~ServeLoop();

  ServeLoop(const ServeLoop&) = delete;
  ServeLoop& operator=(const ServeLoop&) = delete;

  /// Spawns the server thread. Idempotent.
  void Start();

  /// Submits a request; safe from any number of threads. The future is
  /// always fulfilled: with the result, or with a rejection status.
  Future<ServeReply> Submit(const ServeRequest& request);

  /// Stops accepting, serves everything already accepted, joins the server
  /// thread. Idempotent; implied by the destructor.
  void Shutdown();

  /// Snapshot of the serving counters. Consistent totals are guaranteed
  /// after Shutdown(); mid-flight snapshots are approximate.
  ServeStats stats() const;

 private:
  struct Pending {
    ServeRequest request;
    Promise<ServeReply> promise;
  };

  void RunLoop();
  void ServeBatch(std::vector<Pending>& batch);
  Future<ServeReply> RejectNow(ServeStatus status);

  const DiversitySearcher& searcher_;
  const ServeOptions options_;
  QuerySession session_;  // touched only by the server thread

  MpscQueue<Pending> queue_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> queued_{0};  // accepted, not yet served
  std::thread server_;

  mutable std::mutex mutex_;  // guards depth_ and stats_
  std::unordered_map<std::uint64_t, std::uint32_t> depth_;
  ServeStats stats_;
};

}  // namespace tsd
