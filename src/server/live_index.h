// Serialized update front-end over a DynamicTsdIndex, for serving layers
// that accept "+u v" / "-u v" update lines while queries are in flight.
//
// DynamicTsdIndex's contract (core/dynamic_tsd_index.h) is: queries are
// lock-free and safe concurrently with updates, but updates themselves must
// be serialized by the caller. LiveUpdateApplier is that caller: it owns a
// mutex that serializes every ApplyUpdate, making it safe to wire one
// applier into multiple transports (stdin driver thread, socket event-loop
// thread) at once. It also keeps the observability the stats tables expect:
// applied/noop counters split by direction, an update-latency histogram,
// and the index's epoch-reclamation counters.
//
// Determinism note: the applier does not order updates against queries —
// that is transport policy. Both shipped transports apply an update only
// after every previously submitted request's reply is ready and submit
// later requests only after the update returns, which is what makes
// transcripts with interleaved update lines byte-stable across shard and
// thread counts.
#pragma once

#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/dynamic_tsd_index.h"

namespace tsd {

/// Counters for the "live updates" stats table.
struct LiveUpdateStats {
  std::uint64_t applied = 0;  // updates that changed the graph
  std::uint64_t noops = 0;    // duplicate inserts, absent removes, bad ids
  std::uint64_t inserts = 0;  // applied inserts
  std::uint64_t removes = 0;  // applied removes
};

class LiveUpdateApplier {
 public:
  /// The index must outlive the applier. All updates to `index` must go
  /// through this applier (it is the serialized updater).
  explicit LiveUpdateApplier(DynamicTsdIndex& index) : index_(index) {}

  LiveUpdateApplier(const LiveUpdateApplier&) = delete;
  LiveUpdateApplier& operator=(const LiveUpdateApplier&) = delete;

  /// Applies one edge update. Returns true if the graph changed, false for
  /// a noop (existing/absent edge, u == v, or ids outside the vertex range
  /// — ids come from untrusted protocol lines, so nothing here crashes).
  /// Thread-safe; calls are serialized internally.
  bool ApplyUpdate(bool insert, std::uint64_t u, std::uint64_t v);

  LiveUpdateStats stats() const {
    MutexLock lock(mutex_);
    return stats_;
  }

  /// "live updates" + "update latency" + "epoch reclamation" tables for the
  /// transports' stats endpoints.
  std::string RenderStatsTables() const;

 private:
  DynamicTsdIndex& index_;
  mutable Mutex mutex_;
  LiveUpdateStats stats_ TSD_GUARDED_BY(mutex_);
  LatencyHistogram latency_usec_ TSD_GUARDED_BY(mutex_);
};

}  // namespace tsd
