// Flat open-addressed per-tenant depth table for the admission hot path.
//
// Every Submit consults (and usually mutates) its tenant's in-flight depth
// under the consumer's admission mutex. The std::unordered_map it replaces
// paid a node allocation per tenant, pointer-chasing per lookup, and a
// fresh key hash per operation. Here the caller passes the tenant's
// 64-bit hash in — the sharded loop has already computed it to route the
// request, so admission control reuses that one hash instead of hashing
// again — and the table is a single power-of-two slot array probed
// linearly, with backward-shift deletion so drained tenants leave no
// tombstones behind (tenant ids are client-controlled; the table must
// shrink its occupancy when tenants drain, or an id-sweeping client could
// grow it without bound).
//
// Slots memoize the caller's hash, so internal rehashing (growth,
// erase-shift) never recomputes it and the table works with any hash the
// caller fixes — it only has to be consistent per tenant. A slot with
// depth == 0 is empty: stored depths are always >= 1 because the consumer
// erases a tenant's slot when its last in-flight request completes.
//
// Not thread-safe. The table carries no capability of its own because the
// guarding lock lives in the owner: each shard embeds its table as
// `TenantDepthTable depth_ TSD_GUARDED_BY(mutex_)` (server/consumer_loop.h),
// which is how the Clang thread-safety build proves every Submit-path and
// drain-path touch happens under that shard's admission mutex — annotate
// the *member*, not the class, when a type is reused under different locks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace tsd {

class TenantDepthTable {
 public:
  TenantDepthTable() : slots_(kMinCapacity) {}

  /// Current in-flight depth of `tenant` (0 when absent). `hash` must be
  /// the caller's fixed hash of `tenant` (e.g. Hash64(tenant)).
  std::uint32_t Depth(std::uint64_t tenant, std::uint64_t hash) const {
    for (std::size_t i = Home(hash);; i = Next(i)) {
      const Slot& slot = slots_[i];
      if (slot.depth == 0) return 0;
      if (slot.tenant == tenant) return slot.depth;
    }
  }

  /// Increments `tenant`'s depth iff it is currently below `cap`; returns
  /// whether the increment happened (false = admission rejects).
  bool TryIncrement(std::uint64_t tenant, std::uint64_t hash,
                    std::uint32_t cap) {
    for (std::size_t i = Home(hash);; i = Next(i)) {
      Slot& slot = slots_[i];
      if (slot.depth == 0) {
        if (cap == 0) return false;
        slot.tenant = tenant;
        slot.hash = hash;
        slot.depth = 1;
        ++size_;
        if (size_ * 4 > slots_.size() * 3) Grow();
        return true;
      }
      if (slot.tenant == tenant) {
        if (slot.depth >= cap) return false;
        ++slot.depth;
        return true;
      }
    }
  }

  /// Decrements `tenant`'s depth; erases the slot when it reaches zero.
  /// The tenant must be present (every decrement pairs with an admit).
  void Decrement(std::uint64_t tenant, std::uint64_t hash) {
    for (std::size_t i = Home(hash);; i = Next(i)) {
      Slot& slot = slots_[i];
      TSD_DCHECK(slot.depth != 0);
      if (slot.depth == 0) return;  // unpaired decrement; ignore in release
      if (slot.tenant != tenant) continue;
      if (--slot.depth == 0) Erase(i);
      return;
    }
  }

  /// Number of tenants with at least one request in flight.
  std::size_t size() const { return size_; }

 private:
  struct Slot {
    std::uint64_t tenant = 0;
    std::uint64_t hash = 0;
    std::uint32_t depth = 0;  // 0 = empty slot
  };

  static constexpr std::size_t kMinCapacity = 16;  // power of two

  std::size_t Home(std::uint64_t hash) const {
    return hash & (slots_.size() - 1);
  }
  std::size_t Next(std::size_t i) const {
    return (i + 1) & (slots_.size() - 1);
  }

  /// Backward-shift deletion: walk the probe chain after the hole and pull
  /// each displaced entry back iff the hole lies cyclically within
  /// [its home, its current slot) — moving it earlier than home would break
  /// its own lookups. No tombstones ever exist.
  void Erase(std::size_t hole) {
    --size_;
    std::size_t i = hole;
    while (true) {
      i = Next(i);
      const Slot& candidate = slots_[i];
      if (candidate.depth == 0) break;
      const std::size_t home = Home(candidate.hash);
      const bool movable =
          (i >= home) ? (hole >= home && hole < i) : (hole >= home || hole < i);
      if (movable) {
        slots_[hole] = candidate;
        hole = i;
      }
    }
    slots_[hole] = Slot{};
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    for (const Slot& slot : old) {
      if (slot.depth == 0) continue;
      for (std::size_t i = Home(slot.hash);; i = Next(i)) {
        if (slots_[i].depth == 0) {
          slots_[i] = slot;
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;  // size is a power of two
  std::size_t size_ = 0;
};

}  // namespace tsd
