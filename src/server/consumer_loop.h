// The per-consumer serving machinery shared by ServeLoop (one consumer) and
// ShardedServeLoop (one consumer per shard).
//
// A ConsumerLoop is one complete shard: its own wait-free Vyukov MPSC
// submission queue, its own QuerySession (all query scratch, touched only
// by its consumer thread), its own coalescing SearchBatch dispatch, its own
// admission state (per-tenant depth table + counters), and its own drain /
// shutdown protocol. The single-consumer ServeLoop wraps exactly one of
// these; the sharded loop routes tenants across S of them by hash. Keeping
// every piece of mutable state shard-local is what makes S-way serving a
// pure replication of the 1-way case — no cross-shard locks, no shared
// sessions, and the PR 4 contracts (deterministic admission, replies that
// are a pure function of each request, rejection paths that re-notify a
// parked consumer so Shutdown cannot deadlock) hold per shard by
// construction.
// Thread-safety annotations: the admission state (depth table + counters)
// is TSD_GUARDED_BY(mutex_) and touched by submitters and the consumer
// alike; the QuerySession is TSD_GUARDED_BY(consumer_thread_) — a
// ThreadRole capability, not a lock — because only the consumer thread may
// run batches on it. RunLoop() claims both roles once at thread entry (the
// std::thread spawn in Start() is the handoff), so a future Submit-path
// touch of the session is a Clang build error.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/future.h"
#include "common/hash.h"
#include "common/mpsc_queue.h"
#include "common/mutex.h"
#include "core/query_session.h"
#include "server/serve_types.h"
#include "server/tenant_table.h"

namespace tsd {
namespace internal {

class ConsumerLoop {
 public:
  /// `searcher` must outlive the loop and stay immutable while serving (the
  /// DiversitySearcher contract). The loop does not start serving until
  /// Start(); requests submitted before then queue up — and coalesce into
  /// the first batches — deterministically.
  ConsumerLoop(const DiversitySearcher& searcher, const ServeOptions& options);

  /// Shuts down (drains accepted requests) if still running.
  ~ConsumerLoop();

  ConsumerLoop(const ConsumerLoop&) = delete;
  ConsumerLoop& operator=(const ConsumerLoop&) = delete;

  /// Spawns the consumer thread. Idempotent.
  void Start();

  /// Submits a request; safe from any number of threads. `tenant_hash` must
  /// be Hash64(request.tenant) — the sharded loop passes the hash it
  /// already computed for routing, so the admission path never re-hashes.
  /// The future is always fulfilled: with the result, or with a rejection.
  Future<ServeReply> Submit(const ServeRequest& request,
                            std::uint64_t tenant_hash);
  Future<ServeReply> Submit(const ServeRequest& request) {
    return Submit(request, Hash64(request.tenant));
  }

  /// Stops admission (later Submits reject with kRejectedShutdown) without
  /// waiting for the drain. The sharded loop flips every shard before
  /// joining any, so shutdown rejections do not depend on shard index.
  void StopAccepting();

  /// Stops accepting, serves everything already accepted, joins the
  /// consumer thread. Idempotent.
  void Shutdown();

  /// Snapshot of this consumer's counters. Consistent totals are guaranteed
  /// after Shutdown(); mid-flight snapshots are approximate.
  ServeStats stats() const;

 private:
  struct Pending {
    ServeRequest request;
    std::uint64_t tenant_hash = 0;
    Promise<ServeReply> promise;
  };

  void RunLoop();
  void ServeBatch(std::vector<Pending>& batch) TSD_REQUIRES(consumer_thread_);
  Future<ServeReply> RejectNow(ServeStatus status);

  const DiversitySearcher& searcher_;
  const ServeOptions options_;
  /// The consumer thread's identity as a checkable capability: everything
  /// guarded by it is confined to the thread RunLoop() runs on.
  ThreadRole consumer_thread_;
  QuerySession session_ TSD_GUARDED_BY(consumer_thread_);

  MpscQueue<Pending> queue_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> queued_{0};  // accepted, not yet served
  std::thread consumer_;

  mutable Mutex mutex_;
  TenantDepthTable depth_ TSD_GUARDED_BY(mutex_);
  ServeStats stats_ TSD_GUARDED_BY(mutex_);
};

}  // namespace internal
}  // namespace tsd
