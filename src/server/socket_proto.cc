#include "server/socket_proto.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

#include "common/check.h"
#include "common/strings.h"

namespace tsd {
namespace {

/// Client-side inbound cap: reply frames are bounded by the server's max_r
/// (16 bytes per entry) and stats text is a few KB, so anything near this
/// is a corrupted stream, not a big reply.
constexpr std::size_t kClientMaxFramePayload = 1u << 24;

}  // namespace

std::uint32_t ReadWireU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t ReadWireU64(const char* p) {
  return static_cast<std::uint64_t>(ReadWireU32(p)) |
         (static_cast<std::uint64_t>(ReadWireU32(p + 4)) << 32);
}

void AppendU32(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
  out.push_back(static_cast<char>((value >> 16) & 0xff));
  out.push_back(static_cast<char>((value >> 24) & 0xff));
}

void AppendU64(std::string& out, std::uint64_t value) {
  AppendU32(out, static_cast<std::uint32_t>(value));
  AppendU32(out, static_cast<std::uint32_t>(value >> 32));
}

std::string EncodeFrame(const std::string& payload) {
  std::string frame;
  frame.reserve(4 + payload.size());
  AppendU32(frame, static_cast<std::uint32_t>(payload.size()));
  frame += payload;
  return frame;
}

std::string EncodeQueryFrame(std::uint64_t tenant, std::uint32_t k,
                             std::uint32_t r) {
  std::string payload;
  payload.reserve(17);
  payload.push_back(static_cast<char>(kQueryFrame));
  AppendU64(payload, tenant);
  AppendU32(payload, k);
  AppendU32(payload, r);
  return EncodeFrame(payload);
}

std::string EncodeStatsFrame() {
  return EncodeFrame(std::string(1, static_cast<char>(kStatsFrame)));
}

std::string EncodeShutdownFrame() {
  return EncodeFrame(std::string(1, static_cast<char>(kShutdownFrame)));
}

std::string EncodeUpdateFrame(bool insert, std::uint64_t u, std::uint64_t v) {
  std::string payload;
  payload.reserve(18);
  payload.push_back(static_cast<char>(kUpdateFrame));
  payload.push_back(static_cast<char>(insert ? 1 : 0));
  AppendU64(payload, u);
  AppendU64(payload, v);
  return EncodeFrame(payload);
}

std::string EncodeReplyFrame(std::uint64_t id, ServeStatus status,
                             const std::vector<TranscriptEntry>& entries) {
  std::string payload;
  payload.reserve(14 + 16 * entries.size());
  payload.push_back(static_cast<char>(kReplyFrame));
  AppendU64(payload, id);
  payload.push_back(static_cast<char>(status));
  AppendU32(payload, static_cast<std::uint32_t>(entries.size()));
  for (const TranscriptEntry& entry : entries) {
    AppendU64(payload, entry.vertex);
    AppendU64(payload, entry.score);
  }
  return EncodeFrame(payload);
}

std::string EncodeStatsReplyFrame(std::uint64_t id, const std::string& text) {
  std::string payload;
  payload.reserve(9 + text.size());
  payload.push_back(static_cast<char>(kStatsReplyFrame));
  AppendU64(payload, id);
  payload += text;
  return EncodeFrame(payload);
}

std::string EncodeErrorFrame(std::uint64_t id, const std::string& message) {
  std::string payload;
  payload.reserve(9 + message.size());
  payload.push_back(static_cast<char>(kErrorFrame));
  AppendU64(payload, id);
  payload += message;
  return EncodeFrame(payload);
}

std::string EncodeUpdateAckFrame(std::uint64_t id, UpdateAckOutcome outcome) {
  std::string payload;
  payload.reserve(10);
  payload.push_back(static_cast<char>(kUpdateAckFrame));
  AppendU64(payload, id);
  payload.push_back(static_cast<char>(outcome));
  return EncodeFrame(payload);
}

bool DecodeClientFrame(const char* payload, std::size_t size,
                       ClientFrame* out) {
  if (size < 1) return false;
  out->type = static_cast<std::uint8_t>(payload[0]);
  switch (out->type) {
    case kQueryFrame:
      if (size != 17) return false;  // strict: no trailing bytes
      out->tenant = ReadWireU64(payload + 1);
      out->k = ReadWireU32(payload + 9);
      out->r = ReadWireU32(payload + 13);
      return true;
    case kStatsFrame:
    case kShutdownFrame:
      return size == 1;
    case kUpdateFrame: {
      if (size != 18) return false;  // strict: no trailing bytes
      const auto insert = static_cast<std::uint8_t>(payload[1]);
      if (insert > 1) return false;
      out->insert = insert == 1;
      out->u = ReadWireU64(payload + 2);
      out->v = ReadWireU64(payload + 10);
      return true;
    }
    default:
      return false;
  }
}

bool DecodeServerFrame(const char* payload, std::size_t size,
                       ServerFrame* out) {
  if (size < 1) return false;
  out->type = static_cast<std::uint8_t>(payload[0]);
  out->entries.clear();
  out->text.clear();
  switch (out->type) {
    case kReplyFrame: {
      if (size < 14) return false;
      out->id = ReadWireU64(payload + 1);
      const auto raw_status = static_cast<std::uint8_t>(payload[9]);
      if (raw_status > static_cast<std::uint8_t>(ServeStatus::kInternalError)) {
        return false;
      }
      out->status = static_cast<ServeStatus>(raw_status);
      const std::uint32_t count = ReadWireU32(payload + 10);
      if (size != 14 + std::size_t{count} * 16) return false;
      out->entries.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const char* base = payload + 14 + std::size_t{i} * 16;
        out->entries.push_back(
            TranscriptEntry{ReadWireU64(base), ReadWireU64(base + 8)});
      }
      return true;
    }
    case kStatsReplyFrame:
    case kErrorFrame:
      if (size < 9) return false;
      out->id = ReadWireU64(payload + 1);
      out->text.assign(payload + 9, size - 9);
      return true;
    case kUpdateAckFrame: {
      if (size != 10) return false;
      out->id = ReadWireU64(payload + 1);
      const auto raw = static_cast<std::uint8_t>(payload[9]);
      if (raw > static_cast<std::uint8_t>(UpdateAckOutcome::kUnsupported)) {
        return false;
      }
      out->outcome = static_cast<UpdateAckOutcome>(raw);
      return true;
    }
    default:
      return false;
  }
}

// --- SocketClient ---

SocketClient::~SocketClient() { Close(); }

SocketClient::SocketClient(SocketClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(std::exchange(other.next_id_, 0)),
      recv_buffer_(std::move(other.recv_buffer_)) {}

SocketClient& SocketClient::operator=(SocketClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = std::exchange(other.next_id_, 0);
    recv_buffer_ = std::move(other.recv_buffer_);
  }
  return *this;
}

void SocketClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

SocketClient SocketClient::Connect(const std::string& host, std::uint16_t port,
                                   std::uint32_t recv_timeout_ms,
                                   int recv_buffer_bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  TSD_CHECK_MSG(fd >= 0, "socket(): " << std::strerror(errno));
  SocketClient client;
  client.fd_ = fd;  // owned from here on; Close() on any failure below

  if (recv_buffer_bytes > 0) {
    // Must be set before connect() so the advertised window shrinks too —
    // the slow-reader tests rely on a genuinely tiny receive pipe.
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &recv_buffer_bytes,
                 sizeof(recv_buffer_bytes));
  }
  if (recv_timeout_ms > 0) {
    timeval tv;
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  TSD_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "bad IPv4 address: " << host);
  TSD_CHECK_MSG(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
          0,
      "connect(" << host << ":" << port << "): " << std::strerror(errno));
  return client;
}

void SocketClient::SendBytes(const std::string& bytes) {
  TSD_CHECK(connected());
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      TSD_CHECK_MSG(false, "send(): " << std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::uint64_t SocketClient::SendQuery(std::uint64_t tenant, std::uint32_t k,
                                      std::uint32_t r) {
  SendBytes(EncodeQueryFrame(tenant, k, r));
  return ++next_id_;
}

std::uint64_t SocketClient::SendStats() {
  SendBytes(EncodeStatsFrame());
  return ++next_id_;
}

std::uint64_t SocketClient::SendShutdown() {
  SendBytes(EncodeShutdownFrame());
  return ++next_id_;
}

std::uint64_t SocketClient::SendUpdate(bool insert, std::uint64_t u,
                                       std::uint64_t v) {
  SendBytes(EncodeUpdateFrame(insert, u, v));
  return ++next_id_;
}

void SocketClient::CloseSend() {
  TSD_CHECK(connected());
  ::shutdown(fd_, SHUT_WR);
}

bool SocketClient::ReadFrame(std::string* payload) {
  TSD_CHECK(connected());
  auto fill_to = [this](std::size_t needed, bool eof_ok) {
    while (recv_buffer_.size() < needed) {
      char chunk[65536];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        recv_buffer_.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        TSD_CHECK_MSG(eof_ok && recv_buffer_.empty(),
                      "connection closed mid-frame");
        return false;  // clean EOF at a frame boundary
      }
      if (errno == EINTR) continue;
      TSD_CHECK_MSG(errno != EAGAIN && errno != EWOULDBLOCK,
                    "recv timeout waiting for a frame");
      TSD_CHECK_MSG(false, "recv(): " << std::strerror(errno));
    }
    return true;
  };

  if (!fill_to(4, /*eof_ok=*/true)) return false;
  const std::uint32_t length = ReadWireU32(recv_buffer_.data());
  TSD_CHECK_MSG(length > 0 && length <= kClientMaxFramePayload,
                "bad frame length from server: " << length);
  fill_to(4 + std::size_t{length}, /*eof_ok=*/false);
  payload->assign(recv_buffer_, 4, length);
  recv_buffer_.erase(0, 4 + std::size_t{length});
  return true;
}

bool SocketClient::ReadServerFrame(ServerFrame* frame) {
  std::string payload;
  if (!ReadFrame(&payload)) return false;
  TSD_CHECK_MSG(DecodeServerFrame(payload.data(), payload.size(), frame),
                "undecodable server frame (" << payload.size() << " bytes)");
  return true;
}

// --- script driver ---

SocketClientScriptStats RunSocketClientScript(std::istream& in,
                                              std::ostream& out,
                                              SocketClient& client) {
  SocketClientScriptStats stats;
  std::uint64_t outstanding = 0;

  // Replies arrive strictly in submission-id order, so a flush is simply
  // "read exactly as many frames as are outstanding and render each" — the
  // reorder buffer the stdin driver needs is the server's job here.
  auto flush = [&] {
    while (outstanding > 0) {
      ServerFrame frame;
      if (!client.ReadServerFrame(&frame)) break;  // server closed early
      --outstanding;
      switch (frame.type) {
        case kReplyFrame:
          AppendReplyTranscript(out, frame.id, frame.status, frame.entries);
          break;
        case kStatsReplyFrame:
          out << frame.text;
          break;
        case kErrorFrame:
          out << "! server-error " << frame.text << "\n";
          ++stats.server_errors;
          break;
        case kUpdateAckFrame:
          // Exactly the stdin driver's ack line, so transcripts stay
          // byte-comparable across transports.
          out << "= " << frame.id << " "
              << (frame.outcome == UpdateAckOutcome::kApplied ? "applied"
                  : frame.outcome == UpdateAckOutcome::kNoop
                      ? "noop"
                      : "update-unsupported")
              << "\n";
          break;
        default:
          break;
      }
    }
  };

  std::uint64_t line_number = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    // Socket-only verbs first; everything else goes through the exact
    // parser the stdin driver uses.
    const std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.size() == 1 && tokens[0] == "stats") {
      client.SendStats();
      ++outstanding;
      continue;
    }
    if (tokens.size() == 1 && tokens[0] == "shutdown") {
      client.SendShutdown();
      ++outstanding;
      flush();  // the ack is the last frame before the server drains us
      continue;
    }
    ServeRequest request;
    ProtoUpdate update;
    switch (ParseProtoLine(line, &request, &update)) {
      case ProtoLineKind::kSkip:
        break;
      case ProtoLineKind::kFlush:
        flush();
        break;
      case ProtoLineKind::kQuery:
        client.SendQuery(request.tenant, request.k, request.r);
        ++outstanding;
        ++stats.requests;
        break;
      case ProtoLineKind::kUpdate:
        // The server orders the update after every earlier request on this
        // connection and before every later one (see socket_serve.h), so
        // the driver just pipelines it like any other frame.
        client.SendUpdate(update.insert, update.u, update.v);
        ++outstanding;
        ++stats.updates;
        break;
      case ProtoLineKind::kError:
        out << "! parse-error line " << line_number << "\n";
        ++stats.parse_errors;
        break;
    }
  }
  flush();
  return stats;
}

}  // namespace tsd
