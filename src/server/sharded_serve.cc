#include "server/sharded_serve.h"

#include "common/check.h"

namespace tsd {

ShardedServeLoop::ShardedServeLoop(const DiversitySearcher& searcher,
                                   const ShardedServeOptions& options) {
  TSD_CHECK_MSG(options.num_shards >= 1, "num_shards must be >= 1");
  shards_.reserve(options.num_shards);
  for (std::uint32_t s = 0; s < options.num_shards; ++s) {
    shards_.push_back(
        std::make_unique<internal::ConsumerLoop>(searcher, options.shard));
  }
}

ShardedServeLoop::~ShardedServeLoop() { Shutdown(); }

void ShardedServeLoop::Start() {
  for (auto& shard : shards_) shard->Start();
}

Future<ServeReply> ShardedServeLoop::Submit(const ServeRequest& request) {
  // One hash serves both routing and the shard's admission depth table,
  // from disjoint bits (see ShardIndex).
  const std::uint64_t hash = Hash64(request.tenant);
  return shards_[ShardIndex(hash)]->Submit(request, hash);
}

void ShardedServeLoop::Shutdown() {
  // Start every shard first so pre-Start submissions drain (the ConsumerLoop
  // contract), then stop admission everywhere BEFORE joining anything: a
  // shard-by-shard stop-and-join would keep later shards accepting while
  // earlier ones drain, making "rejected:shutdown" depend on shard index.
  for (auto& shard : shards_) shard->Start();
  for (auto& shard : shards_) shard->StopAccepting();
  for (auto& shard : shards_) shard->Shutdown();
}

ServeStats ShardedServeLoop::stats() const {
  ServeStats total;
  for (const auto& shard : shards_) total += shard->stats();
  return total;
}

ServeStats ShardedServeLoop::shard_stats(std::uint32_t shard) const {
  TSD_CHECK(shard < shards_.size());
  return shards_[shard]->stats();
}

}  // namespace tsd
