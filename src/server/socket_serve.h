// Epoll-based socket transport over the serving layer: the network
// front-end of the "millions of users" story.
//
// One event-loop thread multiplexes every connection with epoll:
// non-blocking accept/read/write, length-prefixed binary frames
// (server/socket_proto.h), and a per-connection sequencing reorder buffer
// over the futures returned by ServeSubmitter::Submit — the same harvest
// pattern as the stdin driver, but poll-free: each future carries an
// OnReady hook that writes to an eventfd the loop sleeps on, so reply
// latency is bounded by a wakeup, not a poll interval. The transport is
// loop-shape-agnostic: it drives the ServeSubmitter interface, so the same
// server runs over ServeLoop or ShardedServeLoop, and replies stay a pure
// function of their requests — a socket transcript is byte-identical to a
// stdin transcript for the same request stream (CI compares them).
//
// Isolation contracts:
//  * A slow reader stalls only itself. Each connection owns a bounded
//    outbound byte queue; when it fills (or too many replies are in
//    flight), the server pauses *reading that connection* — replies wait in
//    its reorder buffer and unread requests wait in the kernel, so TCP flow
//    control pushes back on the misbehaving client while every other
//    connection, and every shard consumer, proceeds untouched.
//  * Malformed input never kills the server. A bad length prefix or
//    undecodable frame yields one kErrorFrame (after any earlier replies,
//    order preserved) and a connection close; other connections keep
//    serving. The length prefix is never trusted for allocation.
//  * Shutdown drains. Shutdown() (or a remote kShutdownFrame) stops
//    accepting, stops reading, answers everything already submitted,
//    flushes, then closes — composing with ShardedServeLoop::Shutdown,
//    which drains whatever the transport admitted. A reader that never
//    drains its socket is force-closed after drain_timeout_ms.
//
// Observability is first-class: p50/p99/p999 submit-to-harvest latency
// histograms (common/histogram.h), per-tenant query counters, and
// transport counters, rendered through common/table.h and served to any
// client as a kStatsFrame reply (`tsdtool client --stats`).
//
// Thread-safety annotations: the per-connection state (connection table,
// drain state, the listen/epoll descriptors) is confined to the event-loop
// thread and TSD_GUARDED_BY(event_loop_role_) — a ThreadRole capability,
// not a lock; EventLoop() claims it at thread entry, and Start() claims it
// on the caller's thread for the setup that happens strictly before the
// spawn (the std::thread construction is the handoff). Only the counters
// crossed by consumer threads (stats_, tenants_) take a real lock
// (stats_mutex_). The eventfd poked from consumer-thread OnReady hooks is
// owned via shared_ptr precisely because those hooks outrun confinement.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "server/socket_proto.h"

namespace tsd {

class LiveUpdateApplier;

namespace internal {
class EventFdWaker;
struct SocketConnection;
}  // namespace internal

struct SocketServerOptions {
  /// IPv4 address to bind. Loopback by default: the load generators and CI
  /// run on one box; bind 0.0.0.0 explicitly to serve remote clients.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 asks the kernel for a free one (read it back via port()).
  std::uint16_t port = 0;
  std::uint32_t listen_backlog = 128;
  /// Inbound frame-payload cap; larger length prefixes are protocol errors.
  std::size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Per-connection outbound-queue bound: above this many buffered reply
  /// bytes the connection's reads pause until the client drains.
  std::size_t max_outbound_bytes = 1u << 20;
  /// Per-connection cap on replies awaiting harvest+flush; the second half
  /// of the backpressure bound (requests admitted but not yet delivered).
  std::size_t max_pending_replies = 4096;
  /// Grace period for flushing outstanding replies at shutdown before
  /// still-unflushed connections are force-closed.
  std::uint32_t drain_timeout_ms = 5000;
  /// Honor kShutdownFrame from clients (CI and the CLI use it; a real
  /// deployment would gate it on an admin socket instead).
  bool enable_remote_shutdown = true;
  /// Extra text appended to the stats-endpoint reply (tsdtool wires the
  /// per-shard ServeStats table through this).
  std::function<std::string()> extra_stats;
  /// Live-update sink for kUpdateFrame, or null to acknowledge updates as
  /// unsupported. Updates are applied on the event-loop thread under a
  /// per-connection ordering barrier: an update waits until every earlier
  /// request on its connection has been answered, and later frames on that
  /// connection are not even parsed until the update is applied — so a
  /// single-client transcript with interleaved updates is deterministic and
  /// byte-identical to the stdin transport's. (Requests from *other*
  /// connections are not ordered against the update; concurrent queries
  /// stay safe via the dynamic index's epoch protection, they just observe
  /// the update at an unspecified per-vertex boundary.) Must outlive the
  /// server.
  LiveUpdateApplier* updater = nullptr;
};

/// Snapshot of the transport's counters and latency distribution.
struct SocketServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t queries = 0;
  std::uint64_t updates = 0;
  std::uint64_t stats_requests = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  /// Times a connection's reads were paused by the outbound bound.
  std::uint64_t backpressure_pauses = 0;
  /// Largest outbound queue any connection ever held (must stay under
  /// max_outbound_bytes plus one frame — the backpressure tests assert it).
  std::uint64_t outbound_high_water = 0;
  /// Submit-to-harvest latency in nanoseconds per served query.
  LatencyHistogram latency_ns;
  /// Queries per tenant, ascending tenant id (first kMaxTrackedTenants
  /// distinct tenants; the rest aggregate into untracked_tenant_queries so
  /// client-controlled ids cannot grow server memory without bound).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> tenant_queries;
  std::uint64_t untracked_tenant_queries = 0;
};

class SocketServer {
 public:
  /// Tenants tracked individually in the per-tenant counters.
  static constexpr std::size_t kMaxTrackedTenants = 1024;

  /// `loop` must outlive the server. The server Start()s the loop itself
  /// and submits every decoded query to it; shut the *server* down first
  /// (it drains against a live loop), then the loop.
  SocketServer(ServeSubmitter& loop, SocketServerOptions options = {});

  /// Shuts down (drains) if still running.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and spawns the event-loop thread. Idempotent. Throws
  /// CheckError when the bind/listen fails (e.g. port in use).
  void Start();

  /// The bound TCP port (useful with options.port = 0). Start() first.
  std::uint16_t port() const;

  /// Graceful drain: stop accepting and reading, answer and flush
  /// everything already submitted (force-closing unflushable connections
  /// after drain_timeout_ms), join the event loop. Idempotent; safe from
  /// any thread; implied by the destructor.
  void Shutdown();

  /// Blocks until the event loop exits — either Shutdown() or a client's
  /// kShutdownFrame (`tsdtool serve --listen` parks here).
  void WaitUntilShutdown();

  /// Snapshot of the transport stats. Consistent after Shutdown();
  /// mid-flight snapshots are approximate.
  SocketServerStats stats() const;

  /// The stats endpoint's reply: counters, latency quantiles, per-tenant
  /// counts rendered via common/table.h, plus options.extra_stats().
  std::string RenderStatsTables() const;

 private:
  using Clock = std::chrono::steady_clock;
  using Connection = internal::SocketConnection;

  void EventLoop();
  void BeginDrain() TSD_REQUIRES(event_loop_role_);
  void AcceptConnections() TSD_REQUIRES(event_loop_role_);
  void ReadFromConnection(Connection& c) TSD_REQUIRES(event_loop_role_);
  void ParseFrames(Connection& c) TSD_REQUIRES(event_loop_role_);
  void DispatchFrame(Connection& c, const char* payload, std::size_t size)
      TSD_REQUIRES(event_loop_role_);
  UpdateAckOutcome ApplyUpdate(bool insert, std::uint64_t u, std::uint64_t v)
      TSD_REQUIRES(event_loop_role_);
  void ProtocolError(Connection& c, const std::string& message)
      TSD_REQUIRES(event_loop_role_);
  bool HarvestConnection(Connection& c) TSD_REQUIRES(event_loop_role_);
  bool FlushConnection(Connection& c) TSD_REQUIRES(event_loop_role_);
  void AppendOutbound(Connection& c, std::string frame)
      TSD_REQUIRES(event_loop_role_);
  void MaybeResumeReading(Connection& c) TSD_REQUIRES(event_loop_role_);
  void UpdateInterest(Connection& c) TSD_REQUIRES(event_loop_role_);
  void CloseConnection(int fd) TSD_REQUIRES(event_loop_role_);
  bool OverInboundLimit(const Connection& c) const;

  ServeSubmitter& loop_;
  const SocketServerOptions options_;

  /// The event-loop thread's identity as a checkable capability: the
  /// connection table, drain state, and the two descriptors below are
  /// confined to it (Start() holds it briefly before the spawn handoff).
  ThreadRole event_loop_role_;

  int listen_fd_ TSD_GUARDED_BY(event_loop_role_) = -1;
  int epoll_fd_ TSD_GUARDED_BY(event_loop_role_) = -1;
  /// Written once in Start() strictly before the started_ release-store;
  /// port() readers synchronize through that acquire-load, not a lock.
  std::uint16_t bound_port_ = 0;
  /// Owns the eventfd; shared with every registered OnReady hook so a hook
  /// firing after the server died still writes to a live descriptor.
  std::shared_ptr<internal::EventFdWaker> waker_;

  std::thread event_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> shutdown_requested_{false};
  Mutex lifecycle_mutex_;  // serializes Shutdown() joiners
  Mutex exit_mutex_;
  CondVar exit_cv_;
  bool loop_exited_ TSD_GUARDED_BY(exit_mutex_) = false;

  // Event-loop state (touched only by the event thread after Start()).
  std::unordered_map<int, std::unique_ptr<Connection>> connections_
      TSD_GUARDED_BY(event_loop_role_);
  bool draining_ TSD_GUARDED_BY(event_loop_role_) = false;
  Clock::time_point drain_deadline_ TSD_GUARDED_BY(event_loop_role_){};

  mutable Mutex stats_mutex_;
  SocketServerStats stats_ TSD_GUARDED_BY(stats_mutex_);
  std::map<std::uint64_t, std::uint64_t> tenants_  // ascending for render
      TSD_GUARDED_BY(stats_mutex_);
};

}  // namespace tsd
