// Mutable undirected simple graph with sorted-vector adjacency.
//
// Substrate for the dynamic TSD-index maintenance (the extension the
// paper's Section 5.3 remarks sketch): supports edge insertion/deletion in
// O(d) and conversion to/from the immutable CSR Graph.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace tsd {

class DynamicGraph {
 public:
  /// Empty graph with n isolated vertices.
  explicit DynamicGraph(VertexId n) : adjacency_(n) {}

  /// Mutable copy of an immutable graph.
  explicit DynamicGraph(const Graph& graph);

  VertexId num_vertices() const {
    return static_cast<VertexId>(adjacency_.size());
  }
  std::uint64_t num_edges() const { return num_edges_; }

  std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(adjacency_[v].size());
  }

  /// Neighbors of v, sorted ascending.
  std::span<const VertexId> neighbors(VertexId v) const {
    return adjacency_[v];
  }

  bool HasEdge(VertexId u, VertexId v) const;

  /// Inserts {u, v}; returns false if it already existed (or u == v).
  bool InsertEdge(VertexId u, VertexId v);

  /// Removes {u, v}; returns false if absent.
  bool RemoveEdge(VertexId u, VertexId v);

  /// Appends a new isolated vertex and returns its id.
  VertexId AddVertex();

  /// Common neighbors of u and v (sorted): the vertices whose ego-networks
  /// contain the edge {u, v}.
  std::vector<VertexId> CommonNeighbors(VertexId u, VertexId v) const;

  /// Snapshot as an immutable CSR graph.
  Graph ToGraph() const;

 private:
  std::vector<std::vector<VertexId>> adjacency_;  // sorted
  std::uint64_t num_edges_ = 0;
};

}  // namespace tsd
