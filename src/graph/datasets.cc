#include "graph/datasets.h"

#include <array>

#include "common/check.h"
#include "common/rng.h"
#include "graph/generators.h"

namespace tsd {
namespace {

struct Recipe {
  const char* name;
  // n at each scale.
  VertexId tiny_n;
  VertexId small_n;
  VertexId large_n;
  std::uint32_t edges_per_vertex;
  double triad_probability;
  // Planted overlapping-community overlay: expected communities per vertex
  // (0 disables). Real social networks owe their wide structural-diversity
  // score range ([1,14] Gowalla .. [1,171] LiveJournal in the paper) to
  // many overlapping cohesive groups; a pure preferential-attachment model
  // lacks them, so the stand-ins plant near-clique communities on top of
  // the Holme–Kim base.
  double community_rate;
  std::uint64_t seed;
};

// edges_per_vertex is chosen so m/n roughly matches the original network's
// density (Table 1 of the paper); triad_probability sets the clustering
// level that drives the edge-trussness distribution.
constexpr std::array<Recipe, 8> kRecipes = {{
    // name            tiny    small    large     m/v  triad  comm   seed
    {"wiki-vote",      800,    7115,    7115,     11,  0.60,  0.10,  101},
    {"email-enron",    900,    12000,   36692,    4,   0.65,  0.10,  102},
    {"epinions",       1000,   15000,   75879,    5,   0.55,  0.12,  103},
    {"gowalla",        1100,   25000,   196591,   3,   0.55,  0.12,  104},
    {"notredame",      1200,   30000,   325729,   3,   0.70,  0.08,  105},
    {"livejournal",    1300,   40000,   400000,   6,   0.50,  0.15,  106},
    {"socfb-konect",   1400,   50000,   500000,   2,   0.15,  0.01,  107},
    {"orkut",          1500,   20000,   120000,   18,  0.40,  0.20,  108},
}};

// Adds `rate * n` planted near-clique communities (sizes 5..14, intra-edge
// probability 0.6) on top of `base`. Membership is degree-biased (sampled
// from edge endpoints of the base graph): in real social networks the
// well-connected users are the ones who belong to many groups, which is
// what couples structural diversity with exposure to information cascades
// (the paper's Fig. 13 correlation).
Graph OverlayCommunities(const Graph& base, double rate, std::uint64_t seed) {
  if (rate <= 0) return base;
  Rng rng(seed);
  const VertexId n = base.num_vertices();
  GraphBuilder builder;
  builder.EnsureVertices(n);
  builder.ReserveEdges(base.num_edges() + static_cast<std::size_t>(
                                              rate * n * 25));
  for (const Edge& e : base.edges()) builder.AddEdge(e.u, e.v);

  const auto num_communities =
      static_cast<std::uint64_t>(rate * static_cast<double>(n));
  std::vector<VertexId> members;
  for (std::uint64_t c = 0; c < num_communities; ++c) {
    const std::uint32_t size =
        static_cast<std::uint32_t>(rng.UniformInRange(5, 14));
    members.clear();
    for (std::uint32_t i = 0; i < size; ++i) {
      // Half the members degree-biased (random edge endpoint), half
      // uniform, so communities mix hubs with peripheral vertices.
      if (rng.Bernoulli(0.5) && base.num_edges() > 0) {
        const Edge& e = base.edge(
            static_cast<EdgeId>(rng.Uniform(base.num_edges())));
        members.push_back(rng.Bernoulli(0.5) ? e.u : e.v);
      } else {
        members.push_back(static_cast<VertexId>(rng.Uniform(n)));
      }
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (members[i] != members[j] && rng.Bernoulli(0.6)) {
          builder.AddEdge(members[i], members[j]);
        }
      }
    }
  }
  return builder.Build();
}

}  // namespace

const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const Recipe& r : kRecipes) out.push_back(r.name);
    return out;
  }();
  return names;
}

const std::vector<std::string>& PlotDatasetNames() {
  static const std::vector<std::string> names = {"gowalla", "livejournal",
                                                 "orkut"};
  return names;
}

DatasetSpec GetDatasetSpec(const std::string& name, const std::string& scale) {
  for (const Recipe& r : kRecipes) {
    if (name != r.name) continue;
    DatasetSpec spec;
    spec.name = r.name;
    spec.edges_per_vertex = r.edges_per_vertex;
    spec.triad_probability = r.triad_probability;
    spec.community_rate = r.community_rate;
    spec.seed = r.seed;
    if (scale == "tiny") {
      spec.num_vertices = r.tiny_n;
    } else if (scale == "small") {
      spec.num_vertices = r.small_n;
    } else if (scale == "large") {
      spec.num_vertices = r.large_n;
    } else {
      TSD_CHECK_MSG(false, "unknown dataset scale: " << scale);
    }
    return spec;
  }
  TSD_CHECK_MSG(false, "unknown dataset: " << name);
  __builtin_unreachable();
}

Graph MakeDataset(const std::string& name, const std::string& scale) {
  const DatasetSpec spec = GetDatasetSpec(name, scale);
  const Graph base = HolmeKim(spec.num_vertices, spec.edges_per_vertex,
                              spec.triad_probability, spec.seed);
  return OverlayCommunities(base, spec.community_rate, spec.seed * 7919 + 1);
}

}  // namespace tsd
