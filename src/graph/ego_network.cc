#include "graph/ego_network.h"

#include <algorithm>

#include "common/check.h"
#include "common/timer.h"
#include "graph/triangle.h"

namespace tsd {

std::uint32_t EgoNetwork::ToLocal(VertexId global) const {
  const auto it = std::lower_bound(members.begin(), members.end(), global);
  if (it == members.end() || *it != global) return kInvalidVertex;
  return static_cast<std::uint32_t>(it - members.begin());
}

void EgoNetwork::BuildCsr() {
  const std::uint32_t n = num_members();
  const std::uint32_t m = num_edges();
  offsets.assign(n + 1, 0);
  for (const Edge& e : edges) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::uint32_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  adj.resize(2ULL * m);
  adj_edge_ids.resize(2ULL * m);
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const auto [u, v] = edges[e];
    adj[cursor[u]] = v;
    adj_edge_ids[cursor[u]++] = e;
    adj[cursor[v]] = u;
    adj_edge_ids[cursor[v]++] = e;
  }
  // Edges are sorted by (u, v) with u < v, so adjacency lists come out
  // sorted for the same reason as in GraphBuilder::Build.
}

EgoNetworkExtractor::EgoNetworkExtractor(const Graph& graph)
    : graph_(&graph), local_id_(graph.num_vertices(), 0) {}

void EgoNetworkExtractor::Rebind(const Graph& graph) {
  graph_ = &graph;
  // Invariant: local_id_ is all zeros between calls, so growing with zeros
  // keeps it valid; a smaller graph simply leaves the tail unused.
  if (local_id_.size() < graph.num_vertices()) {
    local_id_.resize(graph.num_vertices(), 0);
  }
}

EgoNetwork EgoNetworkExtractor::Extract(VertexId v) {
  EgoNetwork out;
  ExtractInto(v, &out);
  return out;
}

void EgoNetworkExtractor::ExtractInto(VertexId v, EgoNetwork* out) {
  TSD_DCHECK(v < graph_->num_vertices());
  out->center = v;
  out->members.assign(graph_->neighbors(v).begin(),
                      graph_->neighbors(v).end());
  out->edges.clear();
  out->offsets.clear();
  out->adj.clear();
  out->adj_edge_ids.clear();

  // Mark members with local id + 1 (0 = not a member).
  for (std::uint32_t i = 0; i < out->members.size(); ++i) {
    local_id_[out->members[i]] = i + 1;
  }
  // For each member u, scan u's adjacency for fellow members w > u; the
  // (u, w) pairs are exactly the ego edges (triangles through v).
  for (std::uint32_t i = 0; i < out->members.size(); ++i) {
    const VertexId u = out->members[i];
    for (VertexId w : graph_->neighbors(u)) {
      if (w <= u) continue;
      const std::uint32_t local_w = local_id_[w];
      if (local_w != 0) {
        out->edges.push_back(Edge{i, local_w - 1});
      }
    }
  }
  // Members are scanned in ascending global order and neighbors are sorted,
  // so edges come out sorted by (local u, local v) already.
  for (VertexId member : out->members) local_id_[member] = 0;
}

namespace {

/// Scratch cap for the pass-2 counting matrix (num_chunks × n × 8 bytes):
/// above it the chunk count is lowered, and below 2 usable chunks the fill
/// falls back to the sequential cursors — same budget discipline as the
/// parallel triangle kernels.
constexpr std::uint64_t kFillMatrixBudgetBytes = std::uint64_t{1} << 30;

}  // namespace

GlobalEgoNetworks::GlobalEgoNetworks(const Graph& graph,
                                     const ParallelConfig& config)
    : graph_(graph) {
  WallTimer timer;
  const VertexId n = graph.num_vertices();

  // One forward-adjacency structure (built on config's workers) drives both
  // the counting pass and the fill pass (building it dominates small-graph
  // listing cost).
  const internal::ForwardAdjacency fwd(graph, config);

  // Chunking for the parallel distribution fill: the counting and fill
  // passes below must agree on chunk boundaries, so the chunk count is
  // resolved once. Bounded so the counting matrix stays within budget.
  std::uint32_t num_chunks = 1;
  if (config.num_threads > 1 && n > 0) {
    num_chunks = EffectiveChunks(config, n);
    const std::uint64_t max_chunks =
        kFillMatrixBudgetBytes / (std::uint64_t{n} * sizeof(std::uint64_t));
    num_chunks = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(num_chunks, std::max<std::uint64_t>(
                                                std::uint64_t{1}, max_chunks)));
  }

  if (num_chunks < 2) {
    // Sequential path (1 thread, tiny graphs, or matrix over budget): pass 1
    // counts ego edges per center (= triangles per vertex; 64-bit — a dense
    // degree-93k hub overflows a 32-bit counter), pass 2 distributes each
    // triangle to its three ego-networks through three shared cursors.
    const std::vector<std::uint64_t> counts =
        internal::TrianglesPerVertexFromForward(fwd, n, config);
    offsets_.assign(n + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
      offsets_[v + 1] = offsets_[v] + counts[v];
    }
    ego_edges_.resize(offsets_[n]);
    std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
    internal::ForEachTriangleInRange(
        fwd, 0, n,
        [&](VertexId u, VertexId v, VertexId w, EdgeId, EdgeId, EdgeId) {
          ego_edges_[cursor[w]++] = Edge{std::min(u, v), std::max(u, v)};
          ego_edges_[cursor[v]++] = Edge{std::min(u, w), std::max(u, w)};
          ego_edges_[cursor[u]++] = Edge{std::min(v, w), std::max(v, w)};
        });
    listing_seconds_ = timer.Seconds();
    return;
  }

  // Parallel distribution fill. A center's slice must list its ego edges in
  // the exact order the sequential triangle enumeration produces them, so
  // shared cursors won't do. Instead, a per-chunk counting matrix
  // (num_chunks × n) records how many ego edges each chunk of the
  // enumeration contributes to each center; a column-wise prefix sum then
  // gives every (chunk, center) pair its own disjoint cursor range inside
  // the center's slice. Chunks are ordered sub-ranges of the enumeration,
  // so concatenating their contributions per center reproduces the
  // sequential listing order exactly — the fill is bit-identical to the
  // sequential pass at any thread count.
  std::vector<std::vector<std::uint64_t>> matrix(num_chunks);
  ParallelForChunks(n, num_chunks, config.num_threads,
                    [&](std::uint32_t c, std::uint64_t begin,
                        std::uint64_t end) {
                      std::vector<std::uint64_t>& counts = matrix[c];
                      counts.assign(n, 0);
                      internal::ForEachTriangleInRange(
                          fwd, static_cast<VertexId>(begin),
                          static_cast<VertexId>(end),
                          [&](VertexId u, VertexId v, VertexId w, EdgeId,
                              EdgeId, EdgeId) {
                            ++counts[u];
                            ++counts[v];
                            ++counts[w];
                          });
                    });

  // Column-wise running sum: offsets_ from the per-center totals, and each
  // matrix cell rewritten to its chunk's start cursor within the slice.
  // Chunks the parallel-for skipped as empty (ceil-divided boundaries can
  // leave trailing chunks without vertices) never ran their fn, so their
  // rows are unsized: they contribute nothing and are skipped here and
  // (for the same boundaries) in the fill pass below.
  offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    std::uint64_t cursor = offsets_[v];
    for (std::uint32_t c = 0; c < num_chunks; ++c) {
      if (matrix[c].empty()) continue;
      const std::uint64_t count = matrix[c][v];
      matrix[c][v] = cursor;
      cursor += count;
    }
    offsets_[v + 1] = cursor;
  }

  ego_edges_.resize(offsets_[n]);
  ParallelForChunks(
      n, num_chunks, config.num_threads,
      [&](std::uint32_t c, std::uint64_t begin, std::uint64_t end) {
        std::vector<std::uint64_t>& cursor = matrix[c];  // chunk-owned
        internal::ForEachTriangleInRange(
            fwd, static_cast<VertexId>(begin), static_cast<VertexId>(end),
            [&](VertexId u, VertexId v, VertexId w, EdgeId, EdgeId, EdgeId) {
              ego_edges_[cursor[w]++] = Edge{std::min(u, v), std::max(u, v)};
              ego_edges_[cursor[v]++] = Edge{std::min(u, w), std::max(u, w)};
              ego_edges_[cursor[u]++] = Edge{std::min(v, w), std::max(v, w)};
            });
      });
  listing_seconds_ = timer.Seconds();
}

EgoNetwork GlobalEgoNetworks::Materialize(VertexId v) const {
  EgoNetwork out;
  MaterializeInto(v, &out);
  return out;
}

void GlobalEgoNetworks::MaterializeInto(VertexId v, EgoNetwork* out) const {
  TSD_DCHECK(v < graph_.num_vertices());
  out->center = v;
  out->members.assign(graph_.neighbors(v).begin(),
                      graph_.neighbors(v).end());
  out->offsets.clear();
  out->adj.clear();
  out->adj_edge_ids.clear();

  // Global-to-local translation via a thread-local mark array (zeroed
  // between calls), instead of per-endpoint binary search — materialization
  // is on the index-construction hot path.
  static thread_local std::vector<std::uint32_t> local_plus_one;
  if (local_plus_one.size() < graph_.num_vertices()) {
    local_plus_one.assign(graph_.num_vertices(), 0);
  }
  for (std::uint32_t i = 0; i < out->members.size(); ++i) {
    local_plus_one[out->members[i]] = i + 1;
  }

  // Translate, pack each edge into one 64-bit key, sort numerically
  // (equivalent to lexicographic (u, v) order), unpack.
  const auto global_edges = EgoEdges(v);
  static thread_local std::vector<std::uint64_t> keys;
  keys.clear();
  keys.reserve(global_edges.size());
  for (const Edge& e : global_edges) {
    const std::uint32_t lu = local_plus_one[e.u];
    const std::uint32_t lv = local_plus_one[e.v];
    TSD_DCHECK(lu != 0 && lv != 0);
    const std::uint32_t a = std::min(lu, lv) - 1;
    const std::uint32_t b = std::max(lu, lv) - 1;
    keys.push_back((static_cast<std::uint64_t>(a) << 32) | b);
  }
  std::sort(keys.begin(), keys.end());
  out->edges.clear();
  out->edges.reserve(keys.size());
  for (std::uint64_t key : keys) {
    out->edges.push_back(Edge{static_cast<VertexId>(key >> 32),
                              static_cast<VertexId>(key & 0xFFFFFFFFu)});
  }
  for (VertexId member : out->members) local_plus_one[member] = 0;
}

}  // namespace tsd
