// Immutable undirected simple graph in CSR (compressed sparse row) form.
//
// This is the substrate every algorithm in the library runs on. Vertices are
// dense ids [0, n). Each undirected edge {u, v} (u < v) has a single EdgeId
// in [0, m) shared by both adjacency directions, so per-edge algorithm state
// (support, trussness, removal flags) lives in flat arrays indexed by EdgeId
// — no hashing on the peeling hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mmap_file.h"
#include "common/snapshot.h"

namespace tsd {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// An undirected edge as an ordered pair (u < v).
struct Edge {
  VertexId u;
  VertexId v;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Immutable CSR graph. Build via GraphBuilder or Graph::FromEdges.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph from an edge list. Self-loops are dropped and duplicate
  /// edges collapsed. `num_vertices` may exceed the largest endpoint + 1 to
  /// include isolated vertices; pass 0 to infer it from the edges.
  static Graph FromEdges(std::vector<std::pair<VertexId, VertexId>> edges,
                         VertexId num_vertices = 0);

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  std::uint32_t degree(VertexId v) const {
    TSD_DCHECK(v < num_vertices_);
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v, sorted ascending.
  std::span<const VertexId> neighbors(VertexId v) const {
    TSD_DCHECK(v < num_vertices_);
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  /// Edge ids parallel to neighbors(v): incident_edges(v)[i] is the id of
  /// edge {v, neighbors(v)[i]}.
  std::span<const EdgeId> incident_edges(VertexId v) const {
    TSD_DCHECK(v < num_vertices_);
    return {adj_edge_ids_.data() + offsets_[v],
            adj_edge_ids_.data() + offsets_[v + 1]};
  }

  /// Endpoints of edge e with u < v.
  const Edge& edge(EdgeId e) const {
    TSD_DCHECK(e < edges_.size());
    return edges_[e];
  }

  /// All edges, ordered by (u, v).
  std::span<const Edge> edges() const { return edges_.span(); }

  /// True iff {u, v} is an edge. O(log d(u)) via binary search.
  bool HasEdge(VertexId u, VertexId v) const {
    return FindEdge(u, v) != kInvalidEdge;
  }

  /// Id of edge {u, v}, or kInvalidEdge. Searches the smaller adjacency.
  EdgeId FindEdge(VertexId u, VertexId v) const;

  std::uint32_t max_degree() const { return max_degree_; }

  /// Raw CSR arrays, for algorithm kernels that operate on CSR views.
  std::span<const std::uint64_t> offsets() const { return offsets_.span(); }
  std::span<const VertexId> adjacency() const { return adj_.span(); }
  std::span<const EdgeId> adjacency_edge_ids() const {
    return adj_edge_ids_.span();
  }

  /// Total adjacency memory in bytes (for reporting "graph size").
  std::size_t MemoryBytes() const;

  /// Writes the CSR arrays into a snapshot under the "graf.*" tags.
  void AppendToSnapshot(SnapshotWriter& writer) const;

  /// Binds a graph to the "graf.*" sections of a mapped snapshot. Zero-copy:
  /// the loaded graph references the mapping (and keeps it alive) instead of
  /// copying the arrays. All structural invariants are validated; on failure
  /// returns false with a diagnostic in `*error`.
  [[nodiscard]] static bool LoadFromSnapshot(const SnapshotReader& reader,
                                             Graph* out, std::string* error);

  /// True when the CSR arrays are views into a mapped snapshot.
  bool is_mapped() const { return mapping_ != nullptr; }

 private:
  friend class GraphBuilder;

  VertexId num_vertices_ = 0;
  std::uint32_t max_degree_ = 0;
  FlatArray<std::uint64_t> offsets_;  // size n+1
  FlatArray<VertexId> adj_;           // size 2m, sorted per vertex
  FlatArray<EdgeId> adj_edge_ids_;    // size 2m, parallel to adj_
  FlatArray<Edge> edges_;             // size m, sorted by (u, v)
  // Keeps the snapshot mapping alive while the arrays view into it.
  std::shared_ptr<const MappedFile> mapping_;
};

/// Incremental edge accumulator producing an immutable Graph.
///
/// Thread-compatible (single writer). Duplicate edges and self-loops are
/// tolerated and removed at Build() time.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-sizes the edge buffer.
  void ReserveEdges(std::size_t count) { edges_.reserve(count); }

  /// Records the undirected edge {u, v}. Order of u, v is irrelevant.
  GraphBuilder& AddEdge(VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    edges_.emplace_back(u, v);
    if (v != kInvalidVertex) {
      num_vertices_ = std::max<std::uint64_t>(num_vertices_,
                                              std::uint64_t{v} + 1);
    }
    return *this;
  }

  /// Ensures the built graph has at least `n` vertices.
  GraphBuilder& EnsureVertices(VertexId n) {
    num_vertices_ = std::max<std::uint64_t>(num_vertices_, n);
    return *this;
  }

  std::size_t num_pending_edges() const { return edges_.size(); }

  /// Finalizes into a CSR graph. The builder is left empty.
  Graph Build();

 private:
  std::uint64_t num_vertices_ = 0;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace tsd
