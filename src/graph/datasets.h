// Named synthetic stand-ins for the paper's evaluation datasets.
//
// The paper (Table 1) evaluates on eight SNAP/KONECT networks (Wiki-Vote,
// Email-Enron, Epinions, Gowalla, NotreDame, LiveJournal, socfb-konect,
// Orkut) plus a DBLP collaboration network. Network access is unavailable
// here, so each dataset is replaced by a deterministic Holme–Kim power-law-
// cluster graph whose size and density are matched to the original (scaled
// down for the largest graphs so the benchmark suite stays laptop-sized).
// See DESIGN.md §3 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace tsd {

/// Generation recipe for one named dataset at one scale.
struct DatasetSpec {
  std::string name;        // e.g. "wiki-vote"
  VertexId num_vertices;   // n at the chosen scale
  std::uint32_t edges_per_vertex;  // Holme–Kim attachment parameter
  double triad_probability;        // Holme–Kim clustering parameter
  /// Planted overlapping communities per vertex (see datasets.cc).
  double community_rate;
  std::uint64_t seed;
};

/// All eight dataset names, in the paper's Table 1 order.
const std::vector<std::string>& DatasetNames();

/// The three datasets the paper uses for its per-k and contagion plots
/// (Gowalla, LiveJournal, Orkut).
const std::vector<std::string>& PlotDatasetNames();

/// Returns the generation recipe for `name` at `scale` in
/// {"tiny", "small", "large"}. Throws CheckError for unknown names/scales.
DatasetSpec GetDatasetSpec(const std::string& name, const std::string& scale);

/// Generates the named dataset (deterministic for a given name and scale).
Graph MakeDataset(const std::string& name, const std::string& scale);

}  // namespace tsd
