// Edge-list file formats.
//
// Text format is SNAP-compatible: one "u v" pair per line, '#' comment lines
// ignored, arbitrary whitespace. Binary format is a fast little-endian dump
// for large graphs (magic "TSDG").
#pragma once

#include <string>

#include "graph/graph.h"

namespace tsd {

/// Loads a SNAP-style text edge list. Throws CheckError on parse errors or
/// unreadable files. Vertex ids must be non-negative integers; they are used
/// verbatim, so sparse id spaces produce isolated vertices.
Graph LoadEdgeListText(const std::string& path);

/// Writes "u v" lines with a comment header.
void SaveEdgeListText(const Graph& graph, const std::string& path);

/// Binary dump of the edge list (much faster than text for multi-million
/// edge graphs).
void SaveGraphBinary(const Graph& graph, const std::string& path);
Graph LoadGraphBinary(const std::string& path);

}  // namespace tsd
