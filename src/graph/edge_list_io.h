// Edge-list file formats.
//
// Text format is SNAP-compatible: one "u v" pair per line, '#' comment lines
// ignored, arbitrary whitespace. Binary format is a fast little-endian dump
// for large graphs (magic "TSDG").
#pragma once

#include <string>

#include "graph/graph.h"

namespace tsd {

/// Loads a SNAP-style text edge list. Throws CheckError on parse errors or
/// unreadable files — including trailing garbage after the ids ("1 2x7"),
/// reported with the offending line number. Vertex ids must be non-negative
/// integers; they are used verbatim, so sparse id spaces produce isolated
/// vertices. An optional numeric third column (edge weight) is accepted and
/// ignored, so weighted edge lists stay loadable.
Graph LoadEdgeListText(const std::string& path);

/// Writes "u v" lines with a comment header.
void SaveEdgeListText(const Graph& graph, const std::string& path);

/// Binary dump of the edge list (much faster than text for multi-million
/// edge graphs).
void SaveGraphBinary(const Graph& graph, const std::string& path);
Graph LoadGraphBinary(const std::string& path);

}  // namespace tsd
