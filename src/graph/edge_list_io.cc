#include "graph/edge_list_io.h"

#include <cstdint>
#include <cstdlib>  // strtoull / strtod (was relied on transitively)
#include <fstream>

#include "common/check.h"
#include "common/serialize.h"

namespace tsd {
namespace {

constexpr std::uint32_t kGraphMagic = 0x47445354;  // "TSDG"
constexpr std::uint32_t kGraphVersion = 1;

const char* SkipSpace(const char* p) {
  while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
  return p;
}

}  // namespace

Graph LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  TSD_CHECK_MSG(in.good(), "cannot open edge list: " << path);

  GraphBuilder builder;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Skip comments and blank lines.
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#' ||
        line[first] == '%') {
      continue;
    }
    const char* p = line.c_str() + first;
    char* end = nullptr;
    const unsigned long long u = std::strtoull(p, &end, 10);
    TSD_CHECK_MSG(end != p, "parse error at " << path << ":" << line_number);
    p = end;
    const unsigned long long v = std::strtoull(p, &end, 10);
    TSD_CHECK_MSG(end != p, "parse error at " << path << ":" << line_number);
    TSD_CHECK_MSG(u < kInvalidVertex && v < kInvalidVertex,
                  "vertex id overflow at " << path << ":" << line_number);
    // Anything after the two ids must be an optional numeric weight column
    // (loadable but ignored — the graph model is unweighted) followed by
    // whitespace. A malformed tail like "1 2x7" used to be silently
    // accepted as the edge (1, 2); reject it with the offending line.
    p = SkipSpace(end);
    if (*p != '\0') {
      std::strtod(p, &end);
      TSD_CHECK_MSG(end != p && *SkipSpace(end) == '\0',
                    "trailing garbage after edge at " << path << ":"
                                                      << line_number << ": '"
                                                      << line << "'");
    }
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return builder.Build();
}

void SaveEdgeListText(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  TSD_CHECK_MSG(out.good(), "cannot open file for writing: " << path);
  out << "# Undirected graph: " << graph.num_vertices() << " vertices, "
      << graph.num_edges() << " edges\n";
  for (const Edge& e : graph.edges()) {
    out << e.u << '\t' << e.v << '\n';
  }
  out.flush();
  TSD_CHECK_MSG(out.good(), "write failed: " << path);
}

void SaveGraphBinary(const Graph& graph, const std::string& path) {
  BinaryWriter writer(path);
  writer.WriteHeader(kGraphMagic, kGraphVersion);
  writer.WritePod<std::uint64_t>(graph.num_vertices());
  const auto edge_span = graph.edges();
  std::vector<Edge> edges(edge_span.begin(), edge_span.end());
  writer.WriteVector(edges);
  writer.Finish();
}

Graph LoadGraphBinary(const std::string& path) {
  BinaryReader reader(path);
  reader.ExpectHeader(kGraphMagic, kGraphVersion);
  const auto n = reader.ReadPod<std::uint64_t>();
  TSD_CHECK_MSG(n <= kInvalidVertex, "corrupt graph file: vertex count");
  const auto edges = reader.ReadVector<Edge>();
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(edges.size());
  for (const Edge& e : edges) pairs.emplace_back(e.u, e.v);
  return Graph::FromEdges(std::move(pairs), static_cast<VertexId>(n));
}

}  // namespace tsd
