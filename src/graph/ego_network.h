// Ego-network extraction (Definition 1 of the paper).
//
// The ego-network G_N(v) is the subgraph induced by v's neighbors, with v
// itself excluded. Two extraction strategies are implemented:
//
//  * EgoNetworkExtractor — per-vertex extraction by marking N(v) and
//    scanning each member's adjacency (used by the online algorithms and
//    TSD-index construction; each triangle at v is touched independently per
//    center).
//  * GlobalEgoNetworks — the Section 6.2 optimization: one global triangle
//    listing pass distributes every triangle (u,v,w) to the three
//    ego-networks it belongs to, so each triangle is enumerated 3 times
//    instead of 6. Used by GCT-index construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/parallel.h"
#include "graph/graph.h"

namespace tsd {

/// A materialized ego-network with local vertex ids.
///
/// Local id i corresponds to global vertex members[i]; members is sorted
/// ascending. Edges use local ids (Edge.u < Edge.v). The local CSR arrays
/// (offsets/adj/adj_edge_ids) are filled by BuildCsr().
struct EgoNetwork {
  VertexId center = kInvalidVertex;
  std::vector<VertexId> members;  // global ids of N(center), sorted
  std::vector<Edge> edges;        // local-id pairs, sorted by (u, v)

  // Local CSR (valid after BuildCsr()).
  std::vector<std::uint32_t> offsets;
  std::vector<VertexId> adj;
  std::vector<EdgeId> adj_edge_ids;

  std::uint32_t num_members() const {
    return static_cast<std::uint32_t>(members.size());
  }
  std::uint32_t num_edges() const {
    return static_cast<std::uint32_t>(edges.size());
  }

  VertexId ToGlobal(std::uint32_t local) const { return members[local]; }

  /// Local id of a global vertex, or kInvalidVertex if absent. O(log).
  std::uint32_t ToLocal(VertexId global) const;

  /// Builds the local CSR arrays from `edges`. Idempotent.
  void BuildCsr();

  std::uint32_t LocalDegree(std::uint32_t local) const {
    return offsets[local + 1] - offsets[local];
  }
  std::span<const VertexId> LocalNeighbors(std::uint32_t local) const {
    return {adj.data() + offsets[local], adj.data() + offsets[local + 1]};
  }
};

/// Per-vertex ego-network extraction with reusable scratch buffers.
/// Not thread-safe; create one extractor per thread.
class EgoNetworkExtractor {
 public:
  explicit EgoNetworkExtractor(const Graph& graph);

  /// Retargets the extractor to another graph, reusing the scratch buffers
  /// (only grown, never shrunk). Lets a per-query reduced graph — e.g. the
  /// Algorithm 4 sparsified subgraph — run on a persistent workspace.
  void Rebind(const Graph& graph);

  /// Extracts G_N(v). Includes isolated members (neighbors of v with no
  /// edges inside the ego-network).
  EgoNetwork Extract(VertexId v);

  /// Extraction reusing the caller's EgoNetwork storage.
  void ExtractInto(VertexId v, EgoNetwork* out);

  const Graph& graph() const { return *graph_; }

 private:
  const Graph* graph_;
  std::vector<std::uint32_t> local_id_;  // scratch: global -> local + 1, 0 = absent
};

/// One-shot global ego-network extraction (Algorithm 7, lines 1–4).
///
/// A single triangle-listing pass fills, for every vertex w, the list of
/// ego edges of G_N(w) (as global-id pairs). Total storage is 3T edge slots.
class GlobalEgoNetworks {
 public:
  /// Lists all triangles and groups them by center. With
  /// `config.num_threads > 1` the forward-adjacency build, the counting
  /// pass, AND the distribution fill run on worker threads: a per-chunk
  /// counting matrix gives every (chunk, center) pair a disjoint cursor
  /// range inside the center's slice, so the parallel fill reproduces the
  /// sequential listing order bit for bit (chunks are ordered sub-ranges of
  /// the enumeration). Above a scratch budget the matrix shrinks and
  /// ultimately falls back to the sequential shared-cursor fill.
  explicit GlobalEgoNetworks(const Graph& graph,
                             const ParallelConfig& config = {});

  /// Ego edges of G_N(v) as global-id pairs (u < w, unordered list).
  std::span<const Edge> EgoEdges(VertexId v) const {
    return {ego_edges_.data() + offsets_[v],
            ego_edges_.data() + offsets_[v + 1]};
  }

  /// Materializes the full EgoNetwork (members = N(v), local-id edges).
  EgoNetwork Materialize(VertexId v) const;
  void MaterializeInto(VertexId v, EgoNetwork* out) const;

  /// Seconds spent in the global triangle listing pass.
  double listing_seconds() const { return listing_seconds_; }

  /// Total number of triangles in the graph.
  std::uint64_t num_triangles() const { return ego_edges_.size() / 3; }

  std::size_t MemoryBytes() const {
    return offsets_.size() * sizeof(std::uint64_t) +
           ego_edges_.size() * sizeof(Edge);
  }

 private:
  const Graph& graph_;
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<Edge> ego_edges_;         // flat, grouped by center vertex
  double listing_seconds_ = 0;
};

}  // namespace tsd
