#include "graph/graph.h"

#include <algorithm>
#include <string>
#include <vector>

namespace tsd {
namespace {

// Snapshot section tags for the graph CSR ("graf.*" group).
constexpr std::uint64_t kGraphMetaTag = SnapshotTag("graf.met");
constexpr std::uint64_t kGraphOffsetsTag = SnapshotTag("graf.off");
constexpr std::uint64_t kGraphAdjTag = SnapshotTag("graf.adj");
constexpr std::uint64_t kGraphAdjEdgeIdsTag = SnapshotTag("graf.eid");
constexpr std::uint64_t kGraphEdgesTag = SnapshotTag("graf.edg");

// Schema version for the "graf.*" section group (see the versioning policy
// in common/snapshot.h). Bump on any change to tags or element meaning.
constexpr std::uint64_t kGraphSchemaVersion = 1;

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = "graph snapshot: " + message;
  return false;
}

}  // namespace

Graph Graph::FromEdges(std::vector<std::pair<VertexId, VertexId>> edges,
                       VertexId num_vertices) {
  GraphBuilder builder;
  builder.ReserveEdges(edges.size());
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  builder.EnsureVertices(num_vertices);
  return builder.Build();
}

EdgeId Graph::FindEdge(VertexId u, VertexId v) const {
  if (u >= num_vertices_ || v >= num_vertices_ || u == v) {
    return kInvalidEdge;
  }
  // Search the smaller adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdge;
  return incident_edges(u)[static_cast<std::size_t>(it - nbrs.begin())];
}

std::size_t Graph::MemoryBytes() const {
  return offsets_.size() * sizeof(std::uint64_t) +
         adj_.size() * sizeof(VertexId) +
         adj_edge_ids_.size() * sizeof(EdgeId) + edges_.size() * sizeof(Edge);
}

void Graph::AppendToSnapshot(SnapshotWriter& writer) const {
  const std::uint64_t meta[] = {kGraphSchemaVersion, num_vertices_,
                                max_degree_};
  writer.AddScalars(kGraphMetaTag, meta);
  writer.AddArray(kGraphOffsetsTag, offsets_.span());
  writer.AddArray(kGraphAdjTag, adj_.span());
  writer.AddArray(kGraphAdjEdgeIdsTag, adj_edge_ids_.span());
  writer.AddArray(kGraphEdgesTag, edges_.span());
}

bool Graph::LoadFromSnapshot(const SnapshotReader& reader, Graph* out,
                             std::string* error) {
  *out = Graph();

  std::uint64_t meta[3] = {};
  if (!reader.ReadScalars(kGraphMetaTag, meta, error)) return false;
  if (meta[0] != kGraphSchemaVersion) {
    return Fail(error, "unsupported graph schema version " +
                           std::to_string(meta[0]) + " (this build reads " +
                           std::to_string(kGraphSchemaVersion) + ")");
  }
  if (meta[1] > kInvalidVertex) return Fail(error, "vertex count overflow");
  const auto n = static_cast<VertexId>(meta[1]);
  const auto max_degree = static_cast<std::uint32_t>(meta[2]);

  std::span<const std::uint64_t> offsets;
  std::span<const VertexId> adj;
  std::span<const EdgeId> adj_edge_ids;
  std::span<const Edge> edges;
  if (!reader.Read(kGraphOffsetsTag, &offsets, error) ||
      !reader.Read(kGraphAdjTag, &adj, error) ||
      !reader.Read(kGraphAdjEdgeIdsTag, &adj_edge_ids, error) ||
      !reader.Read(kGraphEdgesTag, &edges, error)) {
    return false;
  }

  // Structural validation: every invariant the accessors rely on. Linear in
  // the file size (like the checksum pass), still far below a rebuild.
  if (offsets.size() != std::size_t{n} + 1) {
    return Fail(error, "offsets size mismatch");
  }
  const std::size_t m = edges.size();
  if (m >= kInvalidEdge) return Fail(error, "edge count overflow");
  if (adj.size() != 2 * m || adj_edge_ids.size() != 2 * m) {
    return Fail(error, "adjacency size mismatch");
  }
  if (offsets[0] != 0 || offsets[n] != 2 * m) {
    return Fail(error, "offsets do not span the adjacency");
  }
  std::uint32_t seen_max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Fail(error, "offsets not monotone");
    }
    const std::uint64_t deg = offsets[v + 1] - offsets[v];
    if (deg > n) return Fail(error, "degree exceeds vertex count");
    seen_max_degree = std::max(seen_max_degree,
                               static_cast<std::uint32_t>(deg));
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (adj[i] >= n || adj[i] == v) {
        return Fail(error, "adjacency endpoint out of range");
      }
      if (i > offsets[v] && adj[i - 1] >= adj[i]) {
        return Fail(error, "adjacency not sorted");
      }
      if (adj_edge_ids[i] >= m) return Fail(error, "edge id out of range");
    }
  }
  if (seen_max_degree != max_degree) {
    return Fail(error, "max degree mismatch");
  }
  for (std::size_t e = 0; e < m; ++e) {
    if (edges[e].u >= edges[e].v || edges[e].v >= n) {
      return Fail(error, "edge endpoints out of order or range");
    }
    if (e > 0 && !(edges[e - 1] < edges[e])) {
      return Fail(error, "edges not sorted");
    }
  }

  out->num_vertices_ = n;
  out->max_degree_ = max_degree;
  out->offsets_.BindView(offsets);
  out->adj_.BindView(adj);
  out->adj_edge_ids_.BindView(adj_edge_ids);
  out->edges_.BindView(edges);
  out->mapping_ = reader.mapping();
  return true;
}

Graph GraphBuilder::Build() {
  // Drop self-loops, canonicalize, dedup.
  std::erase_if(edges_, [](const auto& e) { return e.first == e.second; });
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  TSD_CHECK_MSG(num_vertices_ <= kInvalidVertex,
                "vertex count overflows VertexId");
  TSD_CHECK_MSG(edges_.size() < kInvalidEdge, "edge count overflows EdgeId");

  Graph g;
  g.num_vertices_ = static_cast<VertexId>(num_vertices_);
  const VertexId n = g.num_vertices_;
  const std::size_t m = edges_.size();

  std::vector<Edge> edge_list;
  edge_list.reserve(m);
  for (const auto& [u, v] : edges_) edge_list.push_back(Edge{u, v});

  // Degree counting pass.
  std::vector<std::uint64_t> degree(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++degree[u];
    ++degree[v];
  }
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + degree[v];
    g.max_degree_ =
        std::max(g.max_degree_, static_cast<std::uint32_t>(degree[v]));
  }

  // Fill pass. Edges are sorted by (u, v) with u < v, so each adjacency list
  // comes out sorted without an extra pass: for vertex x, all smaller
  // neighbors u < x arrive first (from earlier (u, x) blocks, u ascending),
  // then all larger neighbors v > x (from x's own (x, v) block, v ascending).
  std::vector<VertexId> adj(2 * m);
  std::vector<EdgeId> adj_edge_ids(2 * m);
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const auto [u, v] = edges_[e];
    adj[cursor[u]] = v;
    adj_edge_ids[cursor[u]++] = e;
    adj[cursor[v]] = u;
    adj_edge_ids[cursor[v]++] = e;
  }

  g.offsets_ = std::move(offsets);
  g.adj_ = std::move(adj);
  g.adj_edge_ids_ = std::move(adj_edge_ids);
  g.edges_ = std::move(edge_list);

  edges_.clear();
  num_vertices_ = 0;
  return g;
}

}  // namespace tsd
