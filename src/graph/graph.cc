#include "graph/graph.h"

#include <algorithm>

namespace tsd {

Graph Graph::FromEdges(std::vector<std::pair<VertexId, VertexId>> edges,
                       VertexId num_vertices) {
  GraphBuilder builder;
  builder.ReserveEdges(edges.size());
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  builder.EnsureVertices(num_vertices);
  return builder.Build();
}

EdgeId Graph::FindEdge(VertexId u, VertexId v) const {
  if (u >= num_vertices_ || v >= num_vertices_ || u == v) {
    return kInvalidEdge;
  }
  // Search the smaller adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdge;
  return incident_edges(u)[static_cast<std::size_t>(it - nbrs.begin())];
}

std::size_t Graph::MemoryBytes() const {
  return offsets_.size() * sizeof(std::uint64_t) +
         adj_.size() * sizeof(VertexId) +
         adj_edge_ids_.size() * sizeof(EdgeId) + edges_.size() * sizeof(Edge);
}

Graph GraphBuilder::Build() {
  // Drop self-loops, canonicalize, dedup.
  std::erase_if(edges_, [](const auto& e) { return e.first == e.second; });
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  TSD_CHECK_MSG(num_vertices_ <= kInvalidVertex,
                "vertex count overflows VertexId");
  TSD_CHECK_MSG(edges_.size() < kInvalidEdge, "edge count overflows EdgeId");

  Graph g;
  g.num_vertices_ = static_cast<VertexId>(num_vertices_);
  const VertexId n = g.num_vertices_;
  const std::size_t m = edges_.size();

  g.edges_.reserve(m);
  for (const auto& [u, v] : edges_) g.edges_.push_back(Edge{u, v});

  // Degree counting pass.
  std::vector<std::uint64_t> degree(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++degree[u];
    ++degree[v];
  }
  g.offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + degree[v];
    g.max_degree_ =
        std::max(g.max_degree_, static_cast<std::uint32_t>(degree[v]));
  }

  // Fill pass. Edges are sorted by (u, v) with u < v, so each adjacency list
  // comes out sorted without an extra pass: for vertex x, all smaller
  // neighbors u < x arrive first (from earlier (u, x) blocks, u ascending),
  // then all larger neighbors v > x (from x's own (x, v) block, v ascending).
  g.adj_.resize(2 * m);
  g.adj_edge_ids_.resize(2 * m);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const auto [u, v] = edges_[e];
    g.adj_[cursor[u]] = v;
    g.adj_edge_ids_[cursor[u]++] = e;
    g.adj_[cursor[v]] = u;
    g.adj_edge_ids_[cursor[v]++] = e;
  }

  edges_.clear();
  num_vertices_ = 0;
  return g;
}

}  // namespace tsd
