#include "graph/triangle.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>

namespace tsd {
namespace internal {
namespace {

// One forward-adjacency slot staged for the per-slice sort. Ranks are a
// permutation of [0, n), so sorting by rank alone is a total order.
struct ForwardEntry {
  std::uint32_t rank;
  VertexId neighbor;
  EdgeId edge;
};

}  // namespace

ForwardAdjacency::ForwardAdjacency(const Graph& graph,
                                   const ParallelConfig& config) {
  const VertexId n = graph.num_vertices();
  const std::uint32_t num_threads = std::max(1U, config.num_threads);
  const std::uint32_t num_chunks = EffectiveChunks(config, n);

  // Degree order: rank by (degree, id). Counting sort on degree. O(n), and
  // the in-degree-class assignment is order-dependent, so this stays
  // sequential; the O(m)/O(m log) phases below are the parallel ones.
  rank.resize(n);
  {
    std::vector<std::uint32_t> count(graph.max_degree() + 2, 0);
    for (VertexId v = 0; v < n; ++v) ++count[graph.degree(v) + 1];
    for (std::size_t d = 1; d < count.size(); ++d) count[d] += count[d - 1];
    // Assign ranks in id order within each degree class => (degree, id).
    for (VertexId v = 0; v < n; ++v) rank[v] = count[graph.degree(v)]++;
  }

  // Per-vertex forward-degree counts: each vertex owns its offsets slot.
  offsets.assign(n + 1, 0);
  ParallelForChunksIndexed(
      n, num_chunks, num_threads,
      [&](std::uint32_t /*worker*/, std::uint32_t /*chunk*/,
          std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t v = begin; v < end; ++v) {
          std::uint64_t forward = 0;
          for (VertexId u : graph.neighbors(static_cast<VertexId>(v))) {
            if (rank[u] > rank[v]) ++forward;
          }
          offsets[v + 1] = forward;
        }
      });
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  // Fill and rank-sort each vertex's forward slice. Slices are disjoint, so
  // chunks write without coordination; one staging buffer per worker keeps
  // the loop allocation-free in the steady state.
  const std::uint64_t total = offsets[n];
  neighbors.resize(total);
  edge_ids.resize(total);
  neighbor_ranks.resize(total);
  std::vector<std::vector<ForwardEntry>> staging(num_threads);
  ParallelForChunksIndexed(
      n, num_chunks, num_threads,
      [&](std::uint32_t worker, std::uint32_t /*chunk*/, std::uint64_t begin,
          std::uint64_t end) {
        std::vector<ForwardEntry>& buffer = staging[worker];
        for (std::uint64_t v = begin; v < end; ++v) {
          const auto nbrs = graph.neighbors(static_cast<VertexId>(v));
          const auto eids = graph.incident_edges(static_cast<VertexId>(v));
          buffer.clear();
          for (std::size_t i = 0; i < nbrs.size(); ++i) {
            if (rank[nbrs[i]] > rank[v]) {
              buffer.push_back({rank[nbrs[i]], nbrs[i], eids[i]});
            }
          }
          std::sort(buffer.begin(), buffer.end(),
                    [](const ForwardEntry& a, const ForwardEntry& b) {
                      return a.rank < b.rank;
                    });
          const std::uint64_t slice = offsets[v];
          for (std::size_t i = 0; i < buffer.size(); ++i) {
            neighbors[slice + i] = buffer[i].neighbor;
            edge_ids[slice + i] = buffer[i].edge;
            neighbor_ranks[slice + i] = buffer[i].rank;
          }
        }
      });
}

}  // namespace internal

std::uint64_t CountTriangles(const Graph& graph) {
  std::uint64_t count = 0;
  ForEachTriangle(graph, [&](VertexId, VertexId, VertexId, EdgeId, EdgeId,
                             EdgeId) { ++count; });
  return count;
}

std::vector<std::uint32_t> ComputeSupport(const Graph& graph) {
  std::vector<std::uint32_t> support(graph.num_edges(), 0);
  ForEachTriangle(graph,
                  [&](VertexId, VertexId, VertexId, EdgeId e_uv, EdgeId e_uw,
                      EdgeId e_vw) {
                    ++support[e_uv];
                    ++support[e_uw];
                    ++support[e_vw];
                  });
  return support;
}

std::vector<std::uint64_t> TrianglesPerVertex(const Graph& graph) {
  std::vector<std::uint64_t> count(graph.num_vertices(), 0);
  ForEachTriangle(graph, [&](VertexId u, VertexId v, VertexId w, EdgeId,
                             EdgeId, EdgeId) {
    ++count[u];
    ++count[v];
    ++count[w];
  });
  return count;
}

namespace {

// Runs fn(worker, u_begin, u_end) over chunks of the triangle-listing vertex
// range — the shared skeleton of the three counting kernels.
template <typename Fn>
void ForChunksOfVertices(VertexId n, const ParallelConfig& config, Fn&& fn) {
  ParallelForChunksIndexed(
      n, EffectiveChunks(config, n), config.num_threads,
      [&](std::uint32_t worker, std::uint32_t /*chunk*/, std::uint64_t begin,
          std::uint64_t end) {
        fn(worker, static_cast<VertexId>(begin), static_cast<VertexId>(end));
      });
}

// Shared skeleton of the support and per-vertex counting kernels: walk the
// triangles of [0, n) and bump `slots` counters, where `emit(u, v, w, e_uv,
// e_uw, e_vw, sink)` maps each triangle to the slots it increments. Below
// the scratch budget every worker counts into a private array and the
// arrays are merged in deterministic worker order; above it (huge graphs ×
// many threads) one shared array of relaxed atomics bounds memory at O(m)
// — both orders of commuting integer adds land on the same totals, so the
// result is bit-identical either way.
template <typename CounterT, typename EmitFn>
std::vector<CounterT> AccumulateOverTriangles(
    const internal::ForwardAdjacency& fwd, VertexId n, std::uint64_t slots,
    const ParallelConfig& config, std::uint64_t scratch_budget_bytes,
    EmitFn&& emit) {
  std::vector<CounterT> result(slots, 0);
  if (config.num_threads <= 1) {
    internal::ForEachTriangleInRange(
        fwd, 0, n,
        [&](VertexId u, VertexId v, VertexId w, EdgeId e_uv, EdgeId e_uw,
            EdgeId e_vw) {
          emit(u, v, w, e_uv, e_uw, e_vw,
               [&](std::uint64_t slot) { ++result[slot]; });
        });
    return result;
  }

  const std::uint64_t per_worker_bytes =
      std::uint64_t{config.num_threads} * slots * sizeof(CounterT);
  if (per_worker_bytes <= scratch_budget_bytes) {
    // Private arrays, allocated lazily (workers that never run a chunk
    // stay empty) — no cross-core traffic on the hot O(ρ·m) loop.
    std::vector<std::vector<CounterT>> per_worker(config.num_threads);
    ParallelForChunksIndexed(
        n, EffectiveChunks(config, n), config.num_threads,
        [&](std::uint32_t worker, std::uint32_t /*chunk*/,
            std::uint64_t begin, std::uint64_t end) {
          std::vector<CounterT>& local = per_worker[worker];
          if (local.empty()) local.assign(slots, 0);
          internal::ForEachTriangleInRange(
              fwd, static_cast<VertexId>(begin), static_cast<VertexId>(end),
              [&](VertexId u, VertexId v, VertexId w, EdgeId e_uv,
                  EdgeId e_uw, EdgeId e_vw) {
                emit(u, v, w, e_uv, e_uw, e_vw,
                     [&](std::uint64_t slot) { ++local[slot]; });
              });
        });
    ParallelForChunksIndexed(
        slots, EffectiveChunks(config, slots), config.num_threads,
        [&](std::uint32_t /*worker*/, std::uint32_t /*chunk*/,
            std::uint64_t begin, std::uint64_t end) {
          for (const std::vector<CounterT>& local : per_worker) {
            if (local.empty()) continue;
            for (std::uint64_t s = begin; s < end; ++s) {
              result[s] += local[s];
            }
          }
        });
    return result;
  }

  // Shared-atomic fallback: O(slots) memory regardless of thread count.
  std::unique_ptr<std::atomic<CounterT>[]> shared(
      new std::atomic<CounterT>[slots]);
  ParallelForChunksIndexed(
      slots, EffectiveChunks(config, slots), config.num_threads,
      [&](std::uint32_t /*worker*/, std::uint32_t /*chunk*/,
          std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t s = begin; s < end; ++s) {
          shared[s].store(0, std::memory_order_relaxed);
        }
      });
  ParallelForChunksIndexed(
      n, EffectiveChunks(config, n), config.num_threads,
      [&](std::uint32_t /*worker*/, std::uint32_t /*chunk*/,
          std::uint64_t begin, std::uint64_t end) {
        internal::ForEachTriangleInRange(
            fwd, static_cast<VertexId>(begin), static_cast<VertexId>(end),
            [&](VertexId u, VertexId v, VertexId w, EdgeId e_uv, EdgeId e_uw,
                EdgeId e_vw) {
              emit(u, v, w, e_uv, e_uw, e_vw, [&](std::uint64_t slot) {
                shared[slot].fetch_add(1, std::memory_order_relaxed);
              });
            });
      });
  ParallelForChunksIndexed(
      slots, EffectiveChunks(config, slots), config.num_threads,
      [&](std::uint32_t /*worker*/, std::uint32_t /*chunk*/,
          std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t s = begin; s < end; ++s) {
          result[s] = shared[s].load(std::memory_order_relaxed);
        }
      });
  return result;
}

}  // namespace

std::uint64_t CountTriangles(const Graph& graph,
                             const ParallelConfig& config) {
  if (config.num_threads <= 1) return CountTriangles(graph);
  const internal::ForwardAdjacency fwd(graph, config);
  std::vector<std::uint64_t> per_worker(config.num_threads, 0);
  ForChunksOfVertices(graph.num_vertices(), config,
                      [&](std::uint32_t worker, VertexId begin, VertexId end) {
                        std::uint64_t local = 0;
                        internal::ForEachTriangleInRange(
                            fwd, begin, end,
                            [&](VertexId, VertexId, VertexId, EdgeId, EdgeId,
                                EdgeId) { ++local; });
                        per_worker[worker] += local;
                      });
  return std::accumulate(per_worker.begin(), per_worker.end(),
                         std::uint64_t{0});
}

std::vector<std::uint32_t> ComputeSupport(const Graph& graph,
                                          const ParallelConfig& config) {
  if (config.num_threads <= 1) return ComputeSupport(graph);
  const internal::ForwardAdjacency fwd(graph, config);
  return internal::SupportFromForward(fwd, graph.num_edges(), config);
}

std::vector<std::uint64_t> TrianglesPerVertex(const Graph& graph,
                                              const ParallelConfig& config) {
  if (config.num_threads <= 1) return TrianglesPerVertex(graph);
  const internal::ForwardAdjacency fwd(graph, config);
  return internal::TrianglesPerVertexFromForward(fwd, graph.num_vertices(),
                                                 config);
}

namespace internal {

std::vector<std::uint32_t> SupportFromForward(
    const ForwardAdjacency& fwd, EdgeId m, const ParallelConfig& config,
    std::uint64_t scratch_budget_bytes) {
  const VertexId n = static_cast<VertexId>(fwd.offsets.size() - 1);
  return AccumulateOverTriangles<std::uint32_t>(
      fwd, n, m, config, scratch_budget_bytes,
      [](VertexId, VertexId, VertexId, EdgeId e_uv, EdgeId e_uw, EdgeId e_vw,
         auto&& sink) {
        sink(e_uv);
        sink(e_uw);
        sink(e_vw);
      });
}

std::vector<std::uint64_t> TrianglesPerVertexFromForward(
    const ForwardAdjacency& fwd, VertexId n, const ParallelConfig& config,
    std::uint64_t scratch_budget_bytes) {
  return AccumulateOverTriangles<std::uint64_t>(
      fwd, n, n, config, scratch_budget_bytes,
      [](VertexId u, VertexId v, VertexId w, EdgeId, EdgeId, EdgeId,
         auto&& sink) {
        sink(u);
        sink(v);
        sink(w);
      });
}

}  // namespace internal

}  // namespace tsd
