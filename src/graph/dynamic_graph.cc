#include "graph/dynamic_graph.h"

#include <algorithm>

#include "common/check.h"

namespace tsd {

DynamicGraph::DynamicGraph(const Graph& graph)
    : adjacency_(graph.num_vertices()), num_edges_(graph.num_edges()) {
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    adjacency_[v].assign(graph.neighbors(v).begin(),
                         graph.neighbors(v).end());
  }
}

bool DynamicGraph::HasEdge(VertexId u, VertexId v) const {
  TSD_DCHECK(u < num_vertices() && v < num_vertices());
  if (u == v) return false;
  // Search the smaller adjacency.
  const auto& list = adjacency_[degree(u) <= degree(v) ? u : v];
  const VertexId target = degree(u) <= degree(v) ? v : u;
  return std::binary_search(list.begin(), list.end(), target);
}

bool DynamicGraph::InsertEdge(VertexId u, VertexId v) {
  TSD_CHECK(u < num_vertices() && v < num_vertices());
  if (u == v || HasEdge(u, v)) return false;
  auto& lu = adjacency_[u];
  lu.insert(std::lower_bound(lu.begin(), lu.end(), v), v);
  auto& lv = adjacency_[v];
  lv.insert(std::lower_bound(lv.begin(), lv.end(), u), u);
  ++num_edges_;
  return true;
}

bool DynamicGraph::RemoveEdge(VertexId u, VertexId v) {
  TSD_CHECK(u < num_vertices() && v < num_vertices());
  if (u == v || !HasEdge(u, v)) return false;
  auto& lu = adjacency_[u];
  lu.erase(std::lower_bound(lu.begin(), lu.end(), v));
  auto& lv = adjacency_[v];
  lv.erase(std::lower_bound(lv.begin(), lv.end(), u));
  --num_edges_;
  return true;
}

VertexId DynamicGraph::AddVertex() {
  adjacency_.emplace_back();
  return static_cast<VertexId>(adjacency_.size() - 1);
}

std::vector<VertexId> DynamicGraph::CommonNeighbors(VertexId u,
                                                    VertexId v) const {
  TSD_DCHECK(u < num_vertices() && v < num_vertices());
  std::vector<VertexId> common;
  const auto& lu = adjacency_[u];
  const auto& lv = adjacency_[v];
  std::set_intersection(lu.begin(), lu.end(), lv.begin(), lv.end(),
                        std::back_inserter(common));
  return common;
}

Graph DynamicGraph::ToGraph() const {
  GraphBuilder builder;
  builder.EnsureVertices(num_vertices());
  builder.ReserveEdges(num_edges_);
  for (VertexId v = 0; v < num_vertices(); ++v) {
    for (VertexId u : adjacency_[v]) {
      if (u > v) builder.AddEdge(v, u);
    }
  }
  return builder.Build();
}

}  // namespace tsd
