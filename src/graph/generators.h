// Synthetic graph generators.
//
// The paper evaluates on SNAP/KONECT social networks plus power-law graphs
// from the PythonWeb generator. Those datasets cannot be downloaded in this
// environment, so the benchmark suite runs on deterministic synthetic
// stand-ins produced here. The key structural properties the experiments
// depend on — power-law degree distributions, high triangle density, a
// heavy-tailed edge-trussness distribution, and truss-decomposable
// ego-networks — are reproduced by the Holme–Kim (power-law cluster) and
// planted-community generators below. See DESIGN.md §3.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tsd {

/// G(n, m) Erdős–Rényi: m distinct uniform random edges.
Graph ErdosRenyi(VertexId n, EdgeId m, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices chosen proportionally to degree.
/// Produces a power-law degree distribution (used by the paper's Exp-6
/// scalability test) but few triangles.
Graph BarabasiAlbert(VertexId n, std::uint32_t edges_per_vertex,
                     std::uint64_t seed);

/// Holme–Kim "power-law cluster" model: Barabási–Albert plus triad
/// formation. With probability `triad_probability` an attachment step links
/// to a random neighbor of the previously chosen target, closing a triangle.
/// This yields power-law degrees AND high clustering — the combination that
/// gives real social networks their heavy-tailed edge-trussness
/// distribution, making it the right stand-in for the SNAP datasets.
Graph HolmeKim(VertexId n, std::uint32_t edges_per_vertex,
               double triad_probability, std::uint64_t seed);

/// R-MAT recursive matrix generator (Chakrabarti et al.): 2^scale vertices,
/// edge_factor * 2^scale edge samples with quadrant probabilities a,b,c
/// (d = 1-a-b-c). Duplicates and self-loops are removed, so the final edge
/// count is slightly below the sample count.
Graph RMat(std::uint32_t scale, std::uint32_t edge_factor, double a, double b,
           double c, std::uint64_t seed);

/// Options for the planted-community / collaboration-network generator.
struct CollaborationOptions {
  /// Number of authors (vertices).
  VertexId num_authors = 10000;
  /// Number of research groups (planted near-cliques).
  std::uint32_t num_groups = 600;
  /// Group size is uniform in [min_group_size, max_group_size].
  std::uint32_t min_group_size = 4;
  std::uint32_t max_group_size = 12;
  /// Probability that an intra-group pair co-authors.
  double intra_group_probability = 0.9;
  /// Expected number of random cross-group "bridge" edges per author.
  double bridge_edges_per_author = 0.5;
  /// Number of "prolific" hub authors planted to join many groups (these
  /// become the high-structural-diversity vertices of the case study).
  std::uint32_t num_hubs = 20;
  /// Number of groups each hub joins.
  std::uint32_t groups_per_hub = 6;
  /// Weak ties planted between members of *different* groups of the same
  /// hub. These single co-author edges connect the hub's social contexts
  /// into one component (so the component model cannot decompose the
  /// ego-network — the paper's Exp-10 observation) without creating the
  /// triangles a k-truss would need to merge them.
  std::uint32_t inter_group_ties_per_hub = 4;
};

/// Result of the collaboration generator: the graph plus the planted truth
/// used by tests and the case-study benchmark.
struct CollaborationGraph {
  Graph graph;
  /// Planted hub authors, in order of planting.
  std::vector<VertexId> hubs;
  /// Group membership lists (vertex ids), one per group.
  std::vector<std::vector<VertexId>> groups;
};

/// DBLP-style collaboration network: overlapping near-clique research groups
/// joined by bridge authors, plus planted prolific hubs whose ego-networks
/// decompose into several dense k-truss contexts. Substitute for the
/// paper's DBLP case study (Exp-10..12).
CollaborationGraph Collaboration(const CollaborationOptions& options,
                                 std::uint64_t seed);

/// The exact 17-vertex running example of the paper's Figure 1. Vertex ids:
///   0 = v (the query vertex); 1..4 = x1..x4; 5..8 = y1..y4;
///   9..14 = r1..r6; 15 = s1, 16 = s2.
/// Properties (verified in tests): at k=4 the ego-network of v has social
/// contexts {x1..x4}, {y1..y4}, {r1..r6}, so score(v) = 3.
Graph PaperFigure1Graph();

/// Names for Figure 1's vertices, for example/demo output.
const char* PaperFigure1VertexName(VertexId v);

}  // namespace tsd
