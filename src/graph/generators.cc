#include "graph/generators.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace tsd {
namespace {

// Packs an undirected pair into a 64-bit key for dedup sets.
std::uint64_t PairKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Graph ErdosRenyi(VertexId n, EdgeId m, std::uint64_t seed) {
  TSD_CHECK(n >= 2);
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  TSD_CHECK_MSG(m <= max_edges, "G(n,m): m exceeds n(n-1)/2");

  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  GraphBuilder builder;
  builder.ReserveEdges(m);
  builder.EnsureVertices(n);
  while (seen.size() < m) {
    const auto u = static_cast<VertexId>(rng.Uniform(n));
    const auto v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v) continue;
    if (seen.insert(PairKey(u, v)).second) {
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

Graph BarabasiAlbert(VertexId n, std::uint32_t edges_per_vertex,
                     std::uint64_t seed) {
  TSD_CHECK(edges_per_vertex >= 1);
  TSD_CHECK(n > edges_per_vertex);

  Rng rng(seed);
  GraphBuilder builder;
  builder.EnsureVertices(n);
  builder.ReserveEdges(static_cast<std::size_t>(n) * edges_per_vertex);

  // `endpoints` holds every edge endpoint once; sampling uniformly from it
  // is preferential attachment (probability proportional to degree).
  std::vector<VertexId> endpoints;
  endpoints.reserve(2ULL * n * edges_per_vertex);

  // Seed component: a clique on the first edges_per_vertex + 1 vertices.
  const VertexId seed_size = edges_per_vertex + 1;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::unordered_set<VertexId> chosen;
  for (VertexId v = seed_size; v < n; ++v) {
    chosen.clear();
    while (chosen.size() < edges_per_vertex) {
      const VertexId target = endpoints[rng.Uniform(endpoints.size())];
      chosen.insert(target);
    }
    for (VertexId target : chosen) {
      builder.AddEdge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return builder.Build();
}

Graph HolmeKim(VertexId n, std::uint32_t edges_per_vertex,
               double triad_probability, std::uint64_t seed) {
  TSD_CHECK(edges_per_vertex >= 1);
  TSD_CHECK(n > edges_per_vertex);
  TSD_CHECK(triad_probability >= 0.0 && triad_probability <= 1.0);

  Rng rng(seed);
  GraphBuilder builder;
  builder.EnsureVertices(n);
  builder.ReserveEdges(static_cast<std::size_t>(n) * edges_per_vertex);

  std::vector<VertexId> endpoints;
  endpoints.reserve(2ULL * n * edges_per_vertex);
  // Adjacency kept incrementally for the triad-formation step.
  std::vector<std::vector<VertexId>> adjacency(n);

  auto add_edge = [&](VertexId a, VertexId b) {
    builder.AddEdge(a, b);
    endpoints.push_back(a);
    endpoints.push_back(b);
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  };

  const VertexId seed_size = edges_per_vertex + 1;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) add_edge(u, v);
  }

  std::unordered_set<VertexId> chosen;
  for (VertexId v = seed_size; v < n; ++v) {
    chosen.clear();
    VertexId last_target = kInvalidVertex;
    while (chosen.size() < edges_per_vertex) {
      VertexId target = kInvalidVertex;
      // Triad step: close a triangle through a neighbor of the previous
      // target (Holme–Kim "triad formation").
      if (last_target != kInvalidVertex && rng.Bernoulli(triad_probability)) {
        const auto& nbrs = adjacency[last_target];
        const VertexId candidate = nbrs[rng.Uniform(nbrs.size())];
        if (candidate != v && !chosen.contains(candidate)) {
          target = candidate;
        }
      }
      if (target == kInvalidVertex) {
        // Preferential attachment step.
        const VertexId candidate = endpoints[rng.Uniform(endpoints.size())];
        if (candidate == v || chosen.contains(candidate)) continue;
        target = candidate;
      }
      chosen.insert(target);
      add_edge(v, target);
      last_target = target;
    }
  }
  return builder.Build();
}

Graph RMat(std::uint32_t scale, std::uint32_t edge_factor, double a, double b,
           double c, std::uint64_t seed) {
  TSD_CHECK(scale >= 1 && scale <= 30);
  const double d = 1.0 - a - b - c;
  TSD_CHECK_MSG(a >= 0 && b >= 0 && c >= 0 && d >= 0,
                "R-MAT probabilities must be a partition of 1");

  Rng rng(seed);
  const VertexId n = VertexId{1} << scale;
  const std::uint64_t samples = static_cast<std::uint64_t>(edge_factor) * n;

  GraphBuilder builder;
  builder.EnsureVertices(n);
  builder.ReserveEdges(samples);
  for (std::uint64_t s = 0; s < samples; ++s) {
    VertexId u = 0;
    VertexId v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double roll = rng.UniformDouble();
      const bool right = roll >= a && roll < a + b;
      const bool down = roll >= a + b && roll < a + b + c;
      const bool diag = roll >= a + b + c;
      u = (u << 1) | static_cast<VertexId>(down || diag);
      v = (v << 1) | static_cast<VertexId>(right || diag);
    }
    if (u != v) builder.AddEdge(u, v);
  }
  return builder.Build();
}

CollaborationGraph Collaboration(const CollaborationOptions& options,
                                 std::uint64_t seed) {
  TSD_CHECK(options.num_authors >= 10);
  TSD_CHECK(options.min_group_size >= 2);
  TSD_CHECK(options.max_group_size >= options.min_group_size);
  TSD_CHECK(options.num_groups >= 1);

  Rng rng(seed);
  CollaborationGraph result;
  GraphBuilder builder;

  // Hubs occupy the first `num_hubs` vertex ids, regular authors the rest.
  const VertexId num_hubs = options.num_hubs;
  const VertexId n = options.num_authors;
  TSD_CHECK(num_hubs < n);
  builder.EnsureVertices(n);

  // Plant the research groups over the regular-author id range.
  result.groups.resize(options.num_groups);
  for (auto& group : result.groups) {
    const std::uint32_t size = static_cast<std::uint32_t>(
        rng.UniformInRange(options.min_group_size, options.max_group_size));
    std::unordered_set<VertexId> members;
    while (members.size() < size) {
      members.insert(static_cast<VertexId>(
          rng.UniformInRange(num_hubs, n - 1)));
    }
    group.assign(members.begin(), members.end());
    std::sort(group.begin(), group.end());
    // Near-clique inside the group.
    for (std::size_t i = 0; i < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        if (rng.Bernoulli(options.intra_group_probability)) {
          builder.AddEdge(group[i], group[j]);
        }
      }
    }
  }

  // Plant the hubs: each joins `groups_per_hub` distinct groups and
  // co-authors with every member (the "prolific author" of the case study).
  for (VertexId hub = 0; hub < num_hubs; ++hub) {
    result.hubs.push_back(hub);
    std::unordered_set<std::uint32_t> joined;
    while (joined.size() <
           std::min<std::uint32_t>(options.groups_per_hub,
                                   options.num_groups)) {
      joined.insert(
          static_cast<std::uint32_t>(rng.Uniform(options.num_groups)));
    }
    std::vector<std::uint32_t> hub_groups(joined.begin(), joined.end());
    for (std::uint32_t g : hub_groups) {
      for (VertexId member : result.groups[g]) {
        builder.AddEdge(hub, member);
      }
    }
    // Weak ties between the hub's groups: they connect the contexts into
    // one component but are too triangle-poor to join any k-truss.
    if (hub_groups.size() >= 2) {
      for (std::uint32_t t = 0; t < options.inter_group_ties_per_hub; ++t) {
        const std::uint32_t gi = static_cast<std::uint32_t>(
            rng.Uniform(hub_groups.size()));
        std::uint32_t gj = static_cast<std::uint32_t>(
            rng.Uniform(hub_groups.size()));
        if (gi == gj) gj = (gj + 1) % hub_groups.size();
        const auto& group_a = result.groups[hub_groups[gi]];
        const auto& group_b = result.groups[hub_groups[gj]];
        builder.AddEdge(group_a[rng.Uniform(group_a.size())],
                        group_b[rng.Uniform(group_b.size())]);
      }
    }
  }

  // Sparse random cross-group bridges.
  const auto num_bridges = static_cast<std::uint64_t>(
      options.bridge_edges_per_author * static_cast<double>(n));
  for (std::uint64_t i = 0; i < num_bridges; ++i) {
    const auto u = static_cast<VertexId>(rng.Uniform(n));
    const auto v = static_cast<VertexId>(rng.Uniform(n));
    if (u != v) builder.AddEdge(u, v);
  }

  result.graph = builder.Build();
  return result;
}

Graph PaperFigure1Graph() {
  // Vertex ids: 0=v, 1..4=x1..x4, 5..8=y1..y4, 9..14=r1..r6, 15=s1, 16=s2.
  GraphBuilder builder;
  builder.EnsureVertices(17);

  // v is adjacent to every x, y, r vertex (they form its ego-network).
  for (VertexId u = 1; u <= 14; ++u) builder.AddEdge(0, u);

  // H3: the x-clique {x1..x4}.
  for (VertexId u = 1; u <= 4; ++u) {
    for (VertexId w = u + 1; w <= 4; ++w) builder.AddEdge(u, w);
  }
  // H4: the y-clique {y1..y4}.
  for (VertexId u = 5; u <= 8; ++u) {
    for (VertexId w = u + 1; w <= 8; ++w) builder.AddEdge(u, w);
  }
  // The two weak bridges joining H3 and H4 into H1: (x2,y1), (x4,y1).
  builder.AddEdge(2, 5);
  builder.AddEdge(4, 5);

  // H2: the r-part {r1..r6} is an octahedron (K_{2,2,2}) — a maximal
  // connected 4-truss where every edge lies in exactly two triangles.
  // Antipodal (non-adjacent) pairs: (r1,r4), (r2,r5), (r3,r6).
  for (VertexId u = 9; u <= 14; ++u) {
    for (VertexId w = u + 1; w <= 14; ++w) {
      const bool antipodal = (u == 9 && w == 12) || (u == 10 && w == 13) ||
                             (u == 11 && w == 14);
      if (!antipodal) builder.AddEdge(u, w);
    }
  }

  // s1, s2 sit outside v's ego-network.
  builder.AddEdge(15, 1);
  builder.AddEdge(15, 3);
  builder.AddEdge(16, 6);
  builder.AddEdge(16, 7);

  return builder.Build();
}

const char* PaperFigure1VertexName(VertexId v) {
  static const char* kNames[] = {"v",  "x1", "x2", "x3", "x4", "y1",
                                 "y2", "y3", "y4", "r1", "r2", "r3",
                                 "r4", "r5", "r6", "s1", "s2"};
  TSD_CHECK(v < 17);
  return kNames[v];
}

}  // namespace tsd
