// Triangle listing and edge-support computation.
//
// Uses the standard "forward" algorithm over a degree ordering: every
// triangle is enumerated exactly once in O(ρ·m) total time, where ρ is the
// graph's arboricity (Chiba–Nishizeki). This is the workhorse behind support
// computation (Algorithm 1, line 1), the ego-network edge counts m_v used by
// the Lemma 2 upper bound, and the one-shot global ego-network extraction of
// Section 6.2.
//
// Both the sequential kernels and the multi-threaded variants (per-worker
// accumulation over the same ForwardAdjacency, merged deterministically)
// live here: triangle listing depends only on graph/ and common/, and
// graph/ego_network.cc consumes the forward machinery directly — keeping it
// in truss/ would point the layer DAG the wrong way.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "graph/graph.h"

namespace tsd {

/// Total number of triangles T in the graph.
std::uint64_t CountTriangles(const Graph& graph);

/// Support of every edge: sup(e) = number of triangles containing e.
std::vector<std::uint32_t> ComputeSupport(const Graph& graph);

/// Number of triangles through each vertex. This equals m_v, the edge count
/// of the ego-network G_N(v) (each ego edge (u,w) of v is the triangle
/// (v,u,w)). Counts are 64-bit: a vertex of degree d sits in up to
/// C(d, 2) triangles, which overflows 32 bits for d ≳ 93k in a dense
/// community.
std::vector<std::uint64_t> TrianglesPerVertex(const Graph& graph);

/// Parallel total triangle count. Equals CountTriangles(graph).
std::uint64_t CountTriangles(const Graph& graph, const ParallelConfig& config);

/// Parallel edge supports. Equals ComputeSupport(graph).
std::vector<std::uint32_t> ComputeSupport(const Graph& graph,
                                          const ParallelConfig& config);

/// Parallel per-vertex triangle counts (the ego-network edge counts m_v).
/// Equals TrianglesPerVertex(graph); 64-bit, see above.
std::vector<std::uint64_t> TrianglesPerVertex(const Graph& graph,
                                              const ParallelConfig& config);

/// Enumerates every triangle exactly once. The callback receives the three
/// corner vertices and the ids of the three edges:
///   fn(u, v, w, e_uv, e_uw, e_vw)
/// Corner order follows the internal degree ordering (no sorted guarantee on
/// vertex ids).
template <typename Fn>
void ForEachTriangle(const Graph& graph, Fn&& fn);

namespace internal {

/// Degree-ordered forward adjacency: for each vertex, the neighbors that
/// come later in the (degree, id) order, sorted by that order. Shared by the
/// triangle kernels above. With `config.num_threads > 1` the per-vertex
/// counting, slice fill, and slice sorting run on worker threads; ranks are
/// a permutation (unique sort keys), so the arrays are bit-identical to the
/// sequential build at any thread count.
struct ForwardAdjacency {
  explicit ForwardAdjacency(const Graph& graph)
      : ForwardAdjacency(graph, ParallelConfig{}) {}
  ForwardAdjacency(const Graph& graph, const ParallelConfig& config);

  std::vector<std::uint32_t> rank;       // position in degree order
  std::vector<std::uint64_t> offsets;    // size n+1
  std::vector<VertexId> neighbors;       // forward neighbors, sorted by rank
  std::vector<EdgeId> edge_ids;          // parallel to neighbors
  std::vector<std::uint32_t> neighbor_ranks;  // parallel, = rank[neighbor]
};

/// Enumerates every triangle whose lowest-ranked corner u lies in
/// [u_begin, u_end) — the unit of work the parallel kernels hand to each
/// chunk. ForEachTriangle is the [0, n) instantiation.
template <typename Fn>
void ForEachTriangleInRange(const ForwardAdjacency& fwd, VertexId u_begin,
                            VertexId u_end, Fn&& fn) {
  for (VertexId u = u_begin; u < u_end; ++u) {
    const auto begin_u = fwd.offsets[u];
    const auto end_u = fwd.offsets[u + 1];
    for (auto i = begin_u; i < end_u; ++i) {
      const VertexId v = fwd.neighbors[i];
      const EdgeId e_uv = fwd.edge_ids[i];
      // Merge-intersect the forward lists of u and v (both sorted by rank).
      auto pu = i + 1;  // forward neighbors of u after v
      auto pv = fwd.offsets[v];
      const auto end_v = fwd.offsets[v + 1];
      while (pu < end_u && pv < end_v) {
        const std::uint32_t ru = fwd.neighbor_ranks[pu];
        const std::uint32_t rv = fwd.neighbor_ranks[pv];
        if (ru < rv) {
          ++pu;
        } else if (ru > rv) {
          ++pv;
        } else {
          fn(u, v, fwd.neighbors[pu], e_uv, fwd.edge_ids[pu],
             fwd.edge_ids[pv]);
          ++pu;
          ++pv;
        }
      }
    }
  }
}

/// Cap on the total per-worker accumulator scratch (num_threads × array
/// bytes) the counting kernels may allocate. Above it they fall back to one
/// shared array of relaxed atomics: slower per increment on contended cache
/// lines, but O(m) instead of O(threads × m) memory — a billion-edge graph
/// at 8 threads would otherwise need tens of GB of scratch. Results are
/// identical either way.
inline constexpr std::uint64_t kCountingScratchBudgetBytes =
    std::uint64_t{1} << 30;

/// Edge supports over a prebuilt forward adjacency for `m` edges.
/// `scratch_budget_bytes` selects the accumulation strategy (tests pass 0
/// to force the shared-atomic path on small graphs).
std::vector<std::uint32_t> SupportFromForward(
    const ForwardAdjacency& fwd, EdgeId m, const ParallelConfig& config,
    std::uint64_t scratch_budget_bytes = kCountingScratchBudgetBytes);

/// Per-vertex triangle counts over a prebuilt forward adjacency for `n`
/// vertices — the shared kernel behind TrianglesPerVertex and the counting
/// pass of the global ego listing (which reuses its ForwardAdjacency for
/// the distribution pass).
std::vector<std::uint64_t> TrianglesPerVertexFromForward(
    const ForwardAdjacency& fwd, VertexId n, const ParallelConfig& config,
    std::uint64_t scratch_budget_bytes = kCountingScratchBudgetBytes);

}  // namespace internal

template <typename Fn>
void ForEachTriangle(const Graph& graph, Fn&& fn) {
  const internal::ForwardAdjacency fwd(graph);
  internal::ForEachTriangleInRange(fwd, 0, graph.num_vertices(),
                                   std::forward<Fn>(fn));
}

}  // namespace tsd
