#include "truss/triangle.h"

#include <algorithm>

namespace tsd {
namespace internal {
namespace {

// One forward-adjacency slot staged for the per-slice sort. Ranks are a
// permutation of [0, n), so sorting by rank alone is a total order.
struct ForwardEntry {
  std::uint32_t rank;
  VertexId neighbor;
  EdgeId edge;
};

}  // namespace

ForwardAdjacency::ForwardAdjacency(const Graph& graph,
                                   const ParallelConfig& config) {
  const VertexId n = graph.num_vertices();
  const std::uint32_t num_threads = std::max(1U, config.num_threads);
  const std::uint32_t num_chunks = EffectiveChunks(config, n);

  // Degree order: rank by (degree, id). Counting sort on degree. O(n), and
  // the in-degree-class assignment is order-dependent, so this stays
  // sequential; the O(m)/O(m log) phases below are the parallel ones.
  rank.resize(n);
  {
    std::vector<std::uint32_t> count(graph.max_degree() + 2, 0);
    for (VertexId v = 0; v < n; ++v) ++count[graph.degree(v) + 1];
    for (std::size_t d = 1; d < count.size(); ++d) count[d] += count[d - 1];
    // Assign ranks in id order within each degree class => (degree, id).
    for (VertexId v = 0; v < n; ++v) rank[v] = count[graph.degree(v)]++;
  }

  // Per-vertex forward-degree counts: each vertex owns its offsets slot.
  offsets.assign(n + 1, 0);
  ParallelForChunksIndexed(
      n, num_chunks, num_threads,
      [&](std::uint32_t /*worker*/, std::uint32_t /*chunk*/,
          std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t v = begin; v < end; ++v) {
          std::uint64_t forward = 0;
          for (VertexId u : graph.neighbors(static_cast<VertexId>(v))) {
            if (rank[u] > rank[v]) ++forward;
          }
          offsets[v + 1] = forward;
        }
      });
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  // Fill and rank-sort each vertex's forward slice. Slices are disjoint, so
  // chunks write without coordination; one staging buffer per worker keeps
  // the loop allocation-free in the steady state.
  const std::uint64_t total = offsets[n];
  neighbors.resize(total);
  edge_ids.resize(total);
  neighbor_ranks.resize(total);
  std::vector<std::vector<ForwardEntry>> staging(num_threads);
  ParallelForChunksIndexed(
      n, num_chunks, num_threads,
      [&](std::uint32_t worker, std::uint32_t /*chunk*/, std::uint64_t begin,
          std::uint64_t end) {
        std::vector<ForwardEntry>& buffer = staging[worker];
        for (std::uint64_t v = begin; v < end; ++v) {
          const auto nbrs = graph.neighbors(static_cast<VertexId>(v));
          const auto eids = graph.incident_edges(static_cast<VertexId>(v));
          buffer.clear();
          for (std::size_t i = 0; i < nbrs.size(); ++i) {
            if (rank[nbrs[i]] > rank[v]) {
              buffer.push_back({rank[nbrs[i]], nbrs[i], eids[i]});
            }
          }
          std::sort(buffer.begin(), buffer.end(),
                    [](const ForwardEntry& a, const ForwardEntry& b) {
                      return a.rank < b.rank;
                    });
          const std::uint64_t slice = offsets[v];
          for (std::size_t i = 0; i < buffer.size(); ++i) {
            neighbors[slice + i] = buffer[i].neighbor;
            edge_ids[slice + i] = buffer[i].edge;
            neighbor_ranks[slice + i] = buffer[i].rank;
          }
        }
      });
}

}  // namespace internal

std::uint64_t CountTriangles(const Graph& graph) {
  std::uint64_t count = 0;
  ForEachTriangle(graph, [&](VertexId, VertexId, VertexId, EdgeId, EdgeId,
                             EdgeId) { ++count; });
  return count;
}

std::vector<std::uint32_t> ComputeSupport(const Graph& graph) {
  std::vector<std::uint32_t> support(graph.num_edges(), 0);
  ForEachTriangle(graph,
                  [&](VertexId, VertexId, VertexId, EdgeId e_uv, EdgeId e_uw,
                      EdgeId e_vw) {
                    ++support[e_uv];
                    ++support[e_uw];
                    ++support[e_vw];
                  });
  return support;
}

std::vector<std::uint64_t> TrianglesPerVertex(const Graph& graph) {
  std::vector<std::uint64_t> count(graph.num_vertices(), 0);
  ForEachTriangle(graph, [&](VertexId u, VertexId v, VertexId w, EdgeId,
                             EdgeId, EdgeId) {
    ++count[u];
    ++count[v];
    ++count[w];
  });
  return count;
}

}  // namespace tsd
