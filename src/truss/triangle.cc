#include "truss/triangle.h"

#include <algorithm>
#include <numeric>

namespace tsd {
namespace internal {

ForwardAdjacency::ForwardAdjacency(const Graph& graph) {
  const VertexId n = graph.num_vertices();

  // Degree order: rank by (degree, id). Counting sort on degree.
  rank.resize(n);
  {
    std::vector<std::uint32_t> count(graph.max_degree() + 2, 0);
    for (VertexId v = 0; v < n; ++v) ++count[graph.degree(v) + 1];
    for (std::size_t d = 1; d < count.size(); ++d) count[d] += count[d - 1];
    // Assign ranks in id order within each degree class => (degree, id).
    for (VertexId v = 0; v < n; ++v) rank[v] = count[graph.degree(v)]++;
  }

  offsets.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    std::uint64_t forward = 0;
    for (VertexId u : graph.neighbors(v)) {
      if (rank[u] > rank[v]) ++forward;
    }
    offsets[v + 1] = offsets[v] + forward;
  }

  const std::uint64_t total = offsets[n];
  neighbors.resize(total);
  edge_ids.resize(total);
  neighbor_ranks.resize(total);
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = graph.neighbors(v);
    const auto eids = graph.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (rank[nbrs[i]] > rank[v]) {
        const auto pos = cursor[v]++;
        neighbors[pos] = nbrs[i];
        edge_ids[pos] = eids[i];
        neighbor_ranks[pos] = rank[nbrs[i]];
      }
    }
    // Sort this vertex's forward slice by rank.
    const auto begin = offsets[v];
    const auto end = offsets[v + 1];
    std::vector<std::size_t> order(end - begin);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return neighbor_ranks[begin + a] < neighbor_ranks[begin + b];
    });
    std::vector<VertexId> tmp_n(end - begin);
    std::vector<EdgeId> tmp_e(end - begin);
    std::vector<std::uint32_t> tmp_r(end - begin);
    for (std::size_t i = 0; i < order.size(); ++i) {
      tmp_n[i] = neighbors[begin + order[i]];
      tmp_e[i] = edge_ids[begin + order[i]];
      tmp_r[i] = neighbor_ranks[begin + order[i]];
    }
    std::copy(tmp_n.begin(), tmp_n.end(), neighbors.begin() + begin);
    std::copy(tmp_e.begin(), tmp_e.end(), edge_ids.begin() + begin);
    std::copy(tmp_r.begin(), tmp_r.end(), neighbor_ranks.begin() + begin);
  }
}

}  // namespace internal

std::uint64_t CountTriangles(const Graph& graph) {
  std::uint64_t count = 0;
  ForEachTriangle(graph, [&](VertexId, VertexId, VertexId, EdgeId, EdgeId,
                             EdgeId) { ++count; });
  return count;
}

std::vector<std::uint32_t> ComputeSupport(const Graph& graph) {
  std::vector<std::uint32_t> support(graph.num_edges(), 0);
  ForEachTriangle(graph,
                  [&](VertexId, VertexId, VertexId, EdgeId e_uv, EdgeId e_uw,
                      EdgeId e_vw) {
                    ++support[e_uv];
                    ++support[e_uw];
                    ++support[e_vw];
                  });
  return support;
}

std::vector<std::uint32_t> TrianglesPerVertex(const Graph& graph) {
  std::vector<std::uint32_t> count(graph.num_vertices(), 0);
  ForEachTriangle(graph, [&](VertexId u, VertexId v, VertexId w, EdgeId,
                             EdgeId, EdgeId) {
    ++count[u];
    ++count[v];
    ++count[w];
  });
  return count;
}

}  // namespace tsd
