// Pluggable truss-decomposition kernels behind one plan selector.
//
// Mirrors the KTrussPlan idiom of Katana-style graph engines: callers pick
// an algorithm (or let the auto-tuner pick) and every plan produces
// trussness bit-identical to the sequential Wang–Cheng peel — trussness is
// the unique fixed point of support peeling, so exact equality is the
// specification, and tests/truss_plan_test.cc enforces it differentially.
//
//  * Bsp           — the frontier-parallel peel of truss/parallel_truss.h,
//                    unchanged, as the reference plan.
//  * BspJacobi     — separated edge-removal rounds: the frontier is frozen,
//                    the true surviving support of every touched edge is
//                    recomputed in parallel, then committed. More work per
//                    touched edge than Bsp's decrement bookkeeping, but the
//                    recompute phase is embarrassingly parallel and free of
//                    the per-triangle tie-break, which pays on wide
//                    frontiers.
//  * CoreThenTruss — runs the k-core machinery first and applies the
//                    Burkhardt core-number bound (arXiv:1806.05523): the
//                    k-truss is contained in the (k-1)-core, so
//                    trussness(e) ≤ min(core(u), core(v)) + 1 and every
//                    edge whose bound falls below the requested minimum
//                    trussness is pruned before any triangle counting.
//  * Auto          — picks one of the above from cheap one-pass statistics
//                    (n, m, density, degeneracy estimate, degree skew).
//
// Orthogonally to the peel choice, the support-computation stage may run a
// bitmap triangle kernel (per-vertex adjacency bitmaps + AND-popcount,
// reusing common/bitmap.h) when the graph is dense enough — the same
// density rule the ego decomposer uses, shared here as constants.
//
// min_trussness contract: with min_trussness == 2 (the default) every plan
// computes the full exact decomposition. A caller that only consumes edges
// of trussness ≥ t (e.g. the bound searcher, which sparsifies to the
// (k+1)-truss) may pass min_trussness = t; then CoreThenTruss prunes edges
// whose core bound proves trussness < t and reports them with the trivial
// trussness 2. Reported values are exact for every edge whose true
// trussness is ≥ t, and provably below t (though possibly not exact)
// otherwise.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/parallel.h"
#include "graph/graph.h"

namespace tsd {

/// Cheap one-pass statistics over the degree sequence — the auto-tuner's
/// inputs, also printed by `tsdtool stats` so plan choices are explainable
/// from the CLI.
struct GraphStatistics {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  /// 2m / (n(n-1)) — fraction of possible edges present.
  double density = 0.0;
  /// 2m / n.
  double average_degree = 0.0;
  std::uint32_t max_degree = 0;
  /// max_degree / average_degree (1 for regular graphs, large for
  /// power-law graphs). 0 on empty graphs.
  double degree_skew = 0.0;
  /// Degree-sequence h-index: the largest h with at least h vertices of
  /// degree ≥ h. Upper-bounds the degeneracy (any subgraph of minimum
  /// degree d has more than d vertices of degree ≥ d in the full graph),
  /// and is computable in one histogram pass, unlike the degeneracy itself.
  std::uint32_t degeneracy_bound = 0;
};

/// One pass over the degree sequence; O(n + max_degree).
GraphStatistics ComputeGraphStatistics(const Graph& graph);

/// A truss-decomposition execution plan: which peel to run plus the
/// minimum trussness the caller will consume (see the contract above).
class TrussPlan {
 public:
  using Algorithm = TrussPlanAlgorithm;

  /// Default plan: auto-tuned, full exact decomposition.
  TrussPlan() = default;

  static TrussPlan Auto(std::uint32_t min_trussness = 2) {
    return TrussPlan(Algorithm::kAuto, min_trussness);
  }
  static TrussPlan Bsp() { return TrussPlan(Algorithm::kBsp, 2); }
  static TrussPlan BspJacobi() { return TrussPlan(Algorithm::kBspJacobi, 2); }
  static TrussPlan CoreThenTruss(std::uint32_t min_trussness = 2) {
    return TrussPlan(Algorithm::kCoreThenTruss, min_trussness);
  }
  /// Plan for a config-carried algorithm tag (how searchers turn their
  /// QueryOptions into a plan, threading through the trussness floor they
  /// actually consume).
  static TrussPlan FromAlgorithm(Algorithm algorithm,
                                 std::uint32_t min_trussness = 2) {
    return TrussPlan(algorithm, min_trussness);
  }

  Algorithm algorithm() const { return algorithm_; }
  std::uint32_t min_trussness() const { return min_trussness_; }

 private:
  TrussPlan(Algorithm algorithm, std::uint32_t min_trussness)
      : algorithm_(algorithm),
        min_trussness_(min_trussness < 2 ? 2 : min_trussness) {}

  Algorithm algorithm_ = Algorithm::kAuto;
  std::uint32_t min_trussness_ = 2;
};

/// How a plan actually executed — resolution of kAuto, the pruning report,
/// and the tuner inputs that drove the choice.
struct TrussPlanStats {
  /// What the caller asked for.
  TrussPlanAlgorithm requested = TrussPlanAlgorithm::kAuto;
  /// What ran (never kAuto).
  TrussPlanAlgorithm algorithm = TrussPlanAlgorithm::kBsp;
  /// Whether supports were computed with the bitmap triangle kernel.
  bool bitmap_kernel = false;
  std::uint32_t min_trussness = 2;
  /// Edges dropped by the CoreThenTruss prefilter before triangle counting
  /// (0 for the other plans, and always 0 when min_trussness == 2).
  std::uint64_t edges_pruned = 0;
  /// The auto-tuner inputs (filled for every plan; cheap).
  GraphStatistics graph_stats;
};

/// The auto-tuner: deterministic pure function of the statistics, the
/// consumption floor, and the thread budget. Never returns kAuto.
TrussPlanAlgorithm ChooseTrussPlanAlgorithm(const GraphStatistics& stats,
                                            std::uint32_t min_trussness,
                                            const ParallelConfig& config);

/// Edge trussness of `graph` under `plan`. Bit-identical to
/// PeelSupportToTrussness(graph, ComputeSupport(graph)) for every edge of
/// trussness ≥ plan.min_trussness(), at any thread count and for every
/// plan; with the default min_trussness == 2 that means bit-identical
/// everywhere. Fills `*stats` (optional) with the execution report.
std::vector<std::uint32_t> TrussnessWithPlan(const Graph& graph,
                                             const TrussPlan& plan,
                                             const ParallelConfig& config,
                                             TrussPlanStats* stats = nullptr);

/// CLI spellings: "auto", "bsp", "jacobi", "core-truss".
std::optional<TrussPlanAlgorithm> ParseTrussPlanAlgorithm(
    std::string_view name);
std::string TrussPlanAlgorithmName(TrussPlanAlgorithm algorithm);

namespace internal {

/// Scratch budget for the bitmap kernels: n adjacency bitmaps of n bits.
/// Shared with the ego decomposer's default (ego_truss.h).
inline constexpr std::size_t kBitmapBudgetBytes = std::size_t{64} << 20;

/// Density floors for the bitmap kernels, as m ≥ n² >> shift. The ego
/// decomposer's empirical split (m ≥ l²/1024) also credits the bitmap
/// *peeling* phase, which it runs; the global kernel only computes support
/// via AND-popcount — a per-edge cost of ~n/32 words against ~avg-degree
/// for merge intersection — so it demands a much denser graph before the
/// bitmaps win.
inline constexpr unsigned kEgoBitmapDensityShift = 10;     // m ≥ l²/1024
inline constexpr unsigned kGlobalBitmapDensityShift = 6;   // m ≥ n²/64

/// True when n adjacency bitmaps of n bits fit the budget and the graph is
/// dense enough (m ≥ n² >> density_shift) that AND-popcount support beats
/// merge intersection. One predicate shared by the ego decomposer's kAuto
/// rule and the global plan subsystem, with their respective density
/// floors above.
inline bool BitmapSupportEligible(std::uint64_t n, std::uint64_t m,
                                  std::size_t budget_bytes,
                                  unsigned density_shift) {
  if (n < 3 || m == 0) return false;
  const bool fits = n * n / 8 <= budget_bytes;
  const bool dense_enough = m >= (n * n) >> density_shift;
  return fits && dense_enough;
}

/// Edge supports via per-vertex adjacency bitmaps + AND-popcount. Equals
/// ComputeSupport(graph) bit-for-bit; only sensible when
/// BitmapSupportEligible holds.
std::vector<std::uint32_t> SupportViaBitmaps(const Graph& graph,
                                             const ParallelConfig& config);

}  // namespace internal
}  // namespace tsd
