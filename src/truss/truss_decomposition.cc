#include "truss/truss_decomposition.h"

#include <algorithm>

#include "truss/truss_plan.h"

namespace tsd {

TrussDecomposition::TrussDecomposition(const Graph& graph,
                                       const ParallelConfig& config,
                                       const TrussPlan& plan) {
  // Every plan routes to kernels that are bit-identical to the sequential
  // decomposition (trussness is unique); the plan only changes how the
  // fixed point is reached and how much work is pruned on the way.
  edge_trussness_ = TrussnessWithPlan(graph, plan, config, &plan_stats_);

  vertex_trussness_.assign(graph.num_vertices(), 0);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edge(e);
    vertex_trussness_[edge.u] =
        std::max(vertex_trussness_[edge.u], edge_trussness_[e]);
    vertex_trussness_[edge.v] =
        std::max(vertex_trussness_[edge.v], edge_trussness_[e]);
    max_trussness_ = std::max(max_trussness_, edge_trussness_[e]);
  }
}

std::vector<std::uint64_t> TrussDecomposition::TrussnessHistogram() const {
  std::vector<std::uint64_t> histogram(max_trussness_ + 1, 0);
  for (std::uint32_t t : edge_trussness_) ++histogram[t];
  return histogram;
}

}  // namespace tsd
