#include "truss/truss_decomposition.h"

#include <algorithm>

#include "truss/peeling.h"
#include "truss/triangle.h"

namespace tsd {

TrussDecomposition::TrussDecomposition(const Graph& graph) {
  std::vector<std::uint32_t> support = ComputeSupport(graph);

  // Adapt the graph's CSR arrays to the shared peeling kernel.
  CsrView<std::uint64_t> view;
  view.num_vertices = graph.num_vertices();
  view.edges = graph.edges();
  view.offsets = graph.offsets();
  view.adj = graph.adjacency();
  view.adj_edge_ids = graph.adjacency_edge_ids();
  edge_trussness_ = PeelSupportToTrussness(view, std::move(support));

  vertex_trussness_.assign(graph.num_vertices(), 0);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edge(e);
    vertex_trussness_[edge.u] =
        std::max(vertex_trussness_[edge.u], edge_trussness_[e]);
    vertex_trussness_[edge.v] =
        std::max(vertex_trussness_[edge.v], edge_trussness_[e]);
    max_trussness_ = std::max(max_trussness_, edge_trussness_[e]);
  }
}

std::vector<std::uint64_t> TrussDecomposition::TrussnessHistogram() const {
  std::vector<std::uint64_t> histogram(max_trussness_ + 1, 0);
  for (std::uint32_t t : edge_trussness_) ++histogram[t];
  return histogram;
}

}  // namespace tsd
