#include "truss/k_truss.h"

#include <algorithm>

#include "common/check.h"
#include "common/disjoint_set.h"

namespace tsd {
namespace {

/// Groups vertices by their DSU root, keeping only vertices where
/// `include[v]` is true. Output components sorted by smallest member.
///
/// Roots are mapped to output slots through a dense root→slot vector
/// instead of a hash map (this runs once per materialized context, hot in
/// the context phase). Scanning vertices in ascending id order makes every
/// component's member list come out sorted and assigns slots in order of
/// each component's smallest member, so no sorting is needed at all.
std::vector<std::vector<VertexId>> CollectComponents(
    DisjointSet& dsu, const std::vector<char>& include) {
  constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> slot_of_root(include.size(), kNoSlot);
  std::vector<std::vector<VertexId>> components;
  for (VertexId v = 0; v < include.size(); ++v) {
    if (!include[v]) continue;
    const std::uint32_t root = dsu.Find(v);
    if (slot_of_root[root] == kNoSlot) {
      slot_of_root[root] = static_cast<std::uint32_t>(components.size());
      components.emplace_back();
    }
    components[slot_of_root[root]].push_back(v);
  }
  return components;
}

}  // namespace

std::vector<std::vector<VertexId>> MaximalConnectedKTrusses(
    const Graph& graph, const std::vector<std::uint32_t>& edge_trussness,
    std::uint32_t k) {
  TSD_CHECK(edge_trussness.size() == graph.num_edges());
  DisjointSet dsu(graph.num_vertices());
  std::vector<char> touched(graph.num_vertices(), 0);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (edge_trussness[e] >= k) {
      const Edge& edge = graph.edge(e);
      dsu.Union(edge.u, edge.v);
      touched[edge.u] = 1;
      touched[edge.v] = 1;
    }
  }
  return CollectComponents(dsu, touched);
}

std::vector<EdgeId> KTrussEdges(
    const Graph& graph, const std::vector<std::uint32_t>& edge_trussness,
    std::uint32_t k) {
  TSD_CHECK(edge_trussness.size() == graph.num_edges());
  std::vector<EdgeId> kept;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (edge_trussness[e] >= k) kept.push_back(e);
  }
  return kept;
}

Graph KTrussSubgraph(const Graph& graph,
                     const std::vector<std::uint32_t>& edge_trussness,
                     std::uint32_t k) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (edge_trussness[e] >= k) {
      const Edge& edge = graph.edge(e);
      edges.emplace_back(edge.u, edge.v);
    }
  }
  return Graph::FromEdges(std::move(edges), graph.num_vertices());
}

std::vector<std::vector<VertexId>> MaximalConnectedKCores(
    const Graph& graph, const std::vector<std::uint32_t>& core_numbers,
    std::uint32_t k) {
  TSD_CHECK(core_numbers.size() == graph.num_vertices());
  DisjointSet dsu(graph.num_vertices());
  std::vector<char> qualified(graph.num_vertices(), 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    qualified[v] = core_numbers[v] >= k ? 1 : 0;
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edge(e);
    if (qualified[edge.u] && qualified[edge.v]) dsu.Union(edge.u, edge.v);
  }
  return CollectComponents(dsu, qualified);
}

std::vector<std::vector<VertexId>> ComponentsOfMinSize(
    const Graph& graph, std::uint32_t min_size) {
  DisjointSet dsu(graph.num_vertices());
  for (const Edge& edge : graph.edges()) dsu.Union(edge.u, edge.v);
  std::vector<char> include(graph.num_vertices(), 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    include[v] = dsu.SetSize(v) >= min_size ? 1 : 0;
  }
  return CollectComponents(dsu, include);
}

}  // namespace tsd
