// k-core decomposition (Batagelj–Zaveršnik bin-sort peeling).
//
// Substrate for the Core-Div baseline [20]: the core number of a vertex is
// the largest k such that it belongs to a subgraph of minimum degree k.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace tsd {

class CoreDecomposition {
 public:
  /// O(n + m) peeling on construction.
  explicit CoreDecomposition(const Graph& graph);

  std::uint32_t core(VertexId v) const { return core_[v]; }
  const std::vector<std::uint32_t>& core_numbers() const { return core_; }
  std::uint32_t max_core() const { return max_core_; }

 private:
  std::vector<std::uint32_t> core_;
  std::uint32_t max_core_ = 0;
};

/// Core numbers for an arbitrary CSR slice (used on local ego-networks).
/// `offsets`/`adj` describe the local graph over ids [0, num_vertices).
std::vector<std::uint32_t> CoreNumbersCsr(std::size_t num_vertices,
                                          std::span<const std::uint32_t> offsets,
                                          std::span<const VertexId> adj);

}  // namespace tsd
