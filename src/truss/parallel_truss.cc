#include "truss/parallel_truss.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>

#include "truss/peeling.h"

namespace tsd {
namespace {

// Edge lifecycle inside the frontier-parallel peel.
enum EdgeState : std::uint8_t {
  kAlive = 0,     // still in the graph
  kFrontier = 1,  // being removed in the current sub-round
  kRemoved = 2,   // trussness already assigned
};

// Frontiers below this many edges per worker are scattered inline: a
// sub-round spawns (and joins) its worker threads, and on a deep, narrow
// peel — many sub-rounds of a handful of edges — the thread churn would
// cost more than the decrements it distributes.
constexpr std::uint64_t kMinFrontierPerWorker = 512;

}  // namespace

std::vector<std::uint32_t> TrussnessFromSupport(
    const Graph& graph, std::vector<std::uint32_t> support,
    const ParallelConfig& config) {
  const EdgeId m = graph.num_edges();
  TSD_CHECK(support.size() == m);
  if (config.num_threads <= 1) {
    CsrView<std::uint64_t> view;
    view.num_vertices = graph.num_vertices();
    view.edges = graph.edges();
    view.offsets = graph.offsets();
    view.adj = graph.adjacency();
    view.adj_edge_ids = graph.adjacency_edge_ids();
    return PeelSupportToTrussness(view, std::move(support));
  }

  std::vector<std::uint32_t> trussness(m, 2);
  if (m == 0) return trussness;

  std::vector<std::uint8_t> state(m, kAlive);
  std::vector<EdgeId> alive(m);
  std::iota(alive.begin(), alive.end(), EdgeId{0});
  std::vector<EdgeId> frontier;
  std::vector<EdgeId> next_frontier;
  // Pending support decrements of the current sub-round. Atomic adds
  // commute, so the per-edge totals — the only thing read back — are
  // deterministic regardless of worker interleaving.
  std::unique_ptr<std::atomic<std::uint32_t>[]> delta(
      new std::atomic<std::uint32_t>[m]);
  for (EdgeId e = 0; e < m; ++e) delta[e].store(0, std::memory_order_relaxed);
  std::vector<std::vector<EdgeId>> touched(config.num_threads);

  std::uint32_t level = 0;  // current peeling level in support space (k-2)
  while (!alive.empty()) {
    // Compact the alive list, advance the level to the minimum surviving
    // support, and collect the level's initial frontier.
    std::size_t out = 0;
    std::uint32_t min_support = UINT32_MAX;
    for (const EdgeId e : alive) {
      if (state[e] != kAlive) continue;
      alive[out++] = e;
      min_support = std::min(min_support, support[e]);
    }
    alive.resize(out);
    if (out == 0) break;
    level = std::max(level, min_support);
    frontier.clear();
    for (const EdgeId e : alive) {
      if (support[e] <= level) frontier.push_back(e);
    }

    while (!frontier.empty()) {
      for (const EdgeId e : frontier) state[e] = kFrontier;

      // Scatter phase: every frontier edge takes its trussness and walks
      // its surviving triangles. state[] is read-only here (transitions
      // happen strictly between sub-rounds), trussness writes are disjoint,
      // and decrements go through the atomic delta array — so workers never
      // race. A triangle with several frontier edges is settled by the
      // smallest edge id among them, mirroring the single pop that peels it
      // in the sequential bucket-queue discipline.
      auto scatter = [&](std::uint32_t worker, std::uint64_t begin,
                         std::uint64_t end) {
        std::vector<EdgeId>& local_touched = touched[worker];
        for (std::uint64_t i = begin; i < end; ++i) {
          const EdgeId e = frontier[i];
          trussness[e] = level + 2;

          const auto [u0, v0] = graph.edge(e);
          // Scan the smaller adjacency; binary-search the larger.
          VertexId u = u0;
          VertexId v = v0;
          if (graph.degree(u) > graph.degree(v)) std::swap(u, v);
          const auto u_nbrs = graph.neighbors(u);
          const auto u_eids = graph.incident_edges(u);
          const auto v_nbrs = graph.neighbors(v);
          const auto v_eids = graph.incident_edges(v);
          for (std::size_t j = 0; j < u_nbrs.size(); ++j) {
            const VertexId w = u_nbrs[j];
            if (w == v) continue;
            const EdgeId e_uw = u_eids[j];
            if (state[e_uw] == kRemoved) continue;
            const auto it = std::lower_bound(v_nbrs.begin(), v_nbrs.end(), w);
            if (it == v_nbrs.end() || *it != w) continue;
            const EdgeId e_vw = v_eids[it - v_nbrs.begin()];
            if (state[e_vw] == kRemoved) continue;
            // Triangle (u, v, w) is alive and loses edge e. Let the
            // smallest frontier edge of the triangle apply the loss.
            if (state[e_uw] == kFrontier && e_uw < e) continue;
            if (state[e_vw] == kFrontier && e_vw < e) continue;
            if (state[e_uw] == kAlive) {
              delta[e_uw].fetch_add(1, std::memory_order_relaxed);
              local_touched.push_back(e_uw);
            }
            if (state[e_vw] == kAlive) {
              delta[e_vw].fetch_add(1, std::memory_order_relaxed);
              local_touched.push_back(e_vw);
            }
          }
        }
      };
      if (frontier.size() < kMinFrontierPerWorker * config.num_threads) {
        scatter(0, 0, frontier.size());
      } else {
        ParallelForChunksIndexed(
            frontier.size(), EffectiveChunks(config, frontier.size()),
            config.num_threads,
            [&](std::uint32_t worker, std::uint32_t /*chunk*/,
                std::uint64_t begin, std::uint64_t end) {
              scatter(worker, begin, end);
            });
      }

      // Apply phase (single-threaded): retire the frontier, fold the
      // decrements into the supports (clamped at the level, exactly like
      // DecreaseKeyClamped), and collect the edges that reached the level
      // as the next sub-round's frontier. Duplicate touched entries are
      // no-ops because the first application zeroes delta[e].
      for (const EdgeId e : frontier) state[e] = kRemoved;
      next_frontier.clear();
      for (std::vector<EdgeId>& local_touched : touched) {
        for (const EdgeId e : local_touched) {
          const std::uint32_t d = delta[e].load(std::memory_order_relaxed);
          if (d == 0) continue;
          delta[e].store(0, std::memory_order_relaxed);
          const std::uint32_t room = support[e] - level;  // support > level
          if (d >= room) {
            support[e] = level;
            next_frontier.push_back(e);
          } else {
            support[e] -= d;
          }
        }
        local_touched.clear();
      }
      frontier.swap(next_frontier);
    }
  }
  return trussness;
}

std::vector<std::uint32_t> TrussnessFromSupportJacobi(
    const Graph& graph, std::vector<std::uint32_t> support,
    const ParallelConfig& config) {
  const EdgeId m = graph.num_edges();
  TSD_CHECK(support.size() == m);
  std::vector<std::uint32_t> trussness(m, 2);
  if (m == 0) return trussness;

  const std::uint32_t num_workers = std::max(1U, config.num_threads);
  std::vector<std::uint8_t> state(m, kAlive);
  std::vector<std::uint8_t> queued(m, 0);  // dedup flag for recompute[]
  std::vector<EdgeId> alive(m);
  std::iota(alive.begin(), alive.end(), EdgeId{0});
  std::vector<EdgeId> frontier;
  std::vector<EdgeId> next_frontier;
  std::vector<EdgeId> recompute;
  std::vector<std::uint32_t> recomputed;  // by recompute[] position
  std::vector<std::vector<EdgeId>> touched(num_workers);

  std::uint32_t level = 0;  // current peeling level in support space (k-2)
  while (!alive.empty()) {
    // Identical level bookkeeping to the Bsp peel: compact the alive list,
    // advance the level to the minimum surviving support, seed the frontier.
    std::size_t out = 0;
    std::uint32_t min_support = UINT32_MAX;
    for (const EdgeId e : alive) {
      if (state[e] != kAlive) continue;
      alive[out++] = e;
      min_support = std::min(min_support, support[e]);
    }
    alive.resize(out);
    if (out == 0) break;
    level = std::max(level, min_support);
    frontier.clear();
    for (const EdgeId e : alive) {
      if (support[e] <= level) frontier.push_back(e);
    }

    while (!frontier.empty()) {
      for (const EdgeId e : frontier) state[e] = kFrontier;

      // Scatter: assign trussness and collect the alive third edges of the
      // surviving triangles each frontier edge destroys. Unlike the Bsp
      // scatter there is nothing to count and no tie-break — the recompute
      // pass below re-derives supports from scratch, so a triangle with
      // several frontier edges may enqueue its third edge several times
      // (the queued[] flag dedups at commit).
      auto scatter = [&](std::uint32_t worker, std::uint64_t begin,
                         std::uint64_t end) {
        std::vector<EdgeId>& local_touched = touched[worker];
        for (std::uint64_t i = begin; i < end; ++i) {
          const EdgeId e = frontier[i];
          trussness[e] = level + 2;

          const auto [u0, v0] = graph.edge(e);
          VertexId u = u0;
          VertexId v = v0;
          if (graph.degree(u) > graph.degree(v)) std::swap(u, v);
          const auto u_nbrs = graph.neighbors(u);
          const auto u_eids = graph.incident_edges(u);
          const auto v_nbrs = graph.neighbors(v);
          const auto v_eids = graph.incident_edges(v);
          for (std::size_t j = 0; j < u_nbrs.size(); ++j) {
            const VertexId w = u_nbrs[j];
            if (w == v) continue;
            const EdgeId e_uw = u_eids[j];
            if (state[e_uw] == kRemoved) continue;
            const auto it = std::lower_bound(v_nbrs.begin(), v_nbrs.end(), w);
            if (it == v_nbrs.end() || *it != w) continue;
            const EdgeId e_vw = v_eids[it - v_nbrs.begin()];
            if (state[e_vw] == kRemoved) continue;
            if (state[e_uw] == kAlive) local_touched.push_back(e_uw);
            if (state[e_vw] == kAlive) local_touched.push_back(e_vw);
          }
        }
      };
      if (frontier.size() < kMinFrontierPerWorker * num_workers) {
        scatter(0, 0, frontier.size());
      } else {
        ParallelForChunksIndexed(
            frontier.size(), EffectiveChunks(config, frontier.size()),
            config.num_threads,
            [&](std::uint32_t worker, std::uint32_t /*chunk*/,
                std::uint64_t begin, std::uint64_t end) {
              scatter(worker, begin, end);
            });
      }

      // Commit 1 (serial): retire the frozen frontier, dedup the touched
      // edges that are still alive into the recompute list.
      for (const EdgeId e : frontier) state[e] = kRemoved;
      recompute.clear();
      for (std::vector<EdgeId>& local_touched : touched) {
        for (const EdgeId e : local_touched) {
          if (queued[e] != 0) continue;
          queued[e] = 1;
          recompute.push_back(e);
        }
        local_touched.clear();
      }

      // Commit 2 (parallel): the exact support of each touched edge in the
      // surviving graph — count common neighbors whose two cross edges are
      // not removed. state[] is read-only here and the recomputed[] writes
      // are disjoint per index, so the phase is race- and tie-break-free.
      recomputed.resize(recompute.size());
      auto recount = [&](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t i = begin; i < end; ++i) {
          const EdgeId e = recompute[i];
          const auto [u0, v0] = graph.edge(e);
          VertexId u = u0;
          VertexId v = v0;
          if (graph.degree(u) > graph.degree(v)) std::swap(u, v);
          const auto u_nbrs = graph.neighbors(u);
          const auto u_eids = graph.incident_edges(u);
          const auto v_nbrs = graph.neighbors(v);
          const auto v_eids = graph.incident_edges(v);
          std::uint32_t count = 0;
          for (std::size_t j = 0; j < u_nbrs.size(); ++j) {
            const VertexId w = u_nbrs[j];
            if (w == v) continue;
            if (state[u_eids[j]] == kRemoved) continue;
            const auto it = std::lower_bound(v_nbrs.begin(), v_nbrs.end(), w);
            if (it == v_nbrs.end() || *it != w) continue;
            if (state[v_eids[it - v_nbrs.begin()]] == kRemoved) continue;
            ++count;
          }
          recomputed[i] = count;
        }
      };
      if (recompute.size() < kMinFrontierPerWorker * num_workers) {
        recount(0, recompute.size());
      } else {
        ParallelForChunksIndexed(
            recompute.size(), EffectiveChunks(config, recompute.size()),
            config.num_threads,
            [&](std::uint32_t /*worker*/, std::uint32_t /*chunk*/,
                std::uint64_t begin, std::uint64_t end) {
              recount(begin, end);
            });
      }

      // Commit 3 (serial): store the fresh supports with the same level
      // clamp as DecreaseKeyClamped, collect the next frontier, and reset
      // the dedup flags.
      next_frontier.clear();
      for (std::size_t i = 0; i < recompute.size(); ++i) {
        const EdgeId e = recompute[i];
        queued[e] = 0;
        if (recomputed[i] <= level) {
          support[e] = level;
          next_frontier.push_back(e);
        } else {
          support[e] = recomputed[i];
        }
      }
      frontier.swap(next_frontier);
    }
  }
  return trussness;
}

}  // namespace tsd
