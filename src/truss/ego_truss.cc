#include "truss/ego_truss.h"

#include <algorithm>

#include "common/check.h"
#include "truss/peeling.h"

namespace tsd {

EgoTrussDecomposer::EgoTrussDecomposer(EgoTrussMethod method,
                                       std::size_t bitmap_budget_bytes)
    : method_(method), bitmap_budget_bytes_(bitmap_budget_bytes) {}

std::vector<std::uint32_t> EgoTrussDecomposer::Compute(EgoNetwork& ego) {
  std::vector<std::uint32_t> trussness;
  ComputeInto(ego, &trussness);
  return trussness;
}

void EgoTrussDecomposer::ComputeInto(EgoNetwork& ego,
                                     std::vector<std::uint32_t>* trussness) {
  if (ego.offsets.empty()) ego.BuildCsr();
  const std::uint64_t l = ego.num_members();
  const bool bitmap_fits = l * l / 8 <= bitmap_budget_bytes_;
  switch (method_) {
    case EgoTrussMethod::kHash:
      return ComputeHashInto(ego, trussness);
    case EgoTrussMethod::kBitmap:
      return bitmap_fits ? ComputeBitmapInto(ego, trussness)
                         : ComputeHashInto(ego, trussness);
    case EgoTrussMethod::kAuto:
      // Same density rule as the global plan subsystem's bitmap kernel
      // (truss_plan.h): the bitmap kernel pays O(l²/64) for zeroing and
      // per-edge AND scans, so it only beats merge intersection on
      // sufficiently dense ego-networks.
      return internal::BitmapSupportEligible(l, ego.num_edges(),
                                             bitmap_budget_bytes_,
                                             internal::kEgoBitmapDensityShift)
                 ? ComputeBitmapInto(ego, trussness)
                 : ComputeHashInto(ego, trussness);
  }
  TSD_CHECK(false);
  __builtin_unreachable();
}

void EgoTrussDecomposer::ComputeHashInto(
    EgoNetwork& ego, std::vector<std::uint32_t>* trussness) {
  const std::uint32_t m = ego.num_edges();
  // Support via sorted-adjacency intersection per edge.
  support_.assign(m, 0);
  for (EdgeId e = 0; e < m; ++e) {
    const auto [u, w] = ego.edges[e];
    const auto nu = ego.LocalNeighbors(u);
    const auto nw = ego.LocalNeighbors(w);
    std::uint32_t count = 0;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < nu.size() && j < nw.size()) {
      if (nu[i] < nw[j]) {
        ++i;
      } else if (nu[i] > nw[j]) {
        ++j;
      } else {
        ++count;
        ++i;
        ++j;
      }
    }
    support_[e] = count;
  }

  CsrView<std::uint32_t> view;
  view.num_vertices = ego.num_members();
  view.offsets = ego.offsets;
  view.adj = ego.adj;
  view.adj_edge_ids = ego.adj_edge_ids;
  view.edges = ego.edges;
  PeelSupportToTrussnessInto(view, support_, queue_, trussness);
}

void EgoTrussDecomposer::ComputeBitmapInto(
    EgoNetwork& ego, std::vector<std::uint32_t>* trussness) {
  const std::uint32_t l = ego.num_members();
  const std::uint32_t m = ego.num_edges();
  trussness->assign(m, 2);
  if (m == 0) return;

  // Adjacency bitmaps (Algorithm 7, lines 7–11).
  if (bitmaps_.size() < l) bitmaps_.resize(l);
  for (std::uint32_t i = 0; i < l; ++i) bitmaps_[i].Resize(l);
  for (const Edge& e : ego.edges) {
    bitmaps_[e.u].Set(e.v);
    bitmaps_[e.v].Set(e.u);
  }

  // Support via AND-popcount (Algorithm 7, lines 12–13).
  support_.resize(m);
  for (EdgeId e = 0; e < m; ++e) {
    support_[e] = static_cast<std::uint32_t>(
        bitmaps_[ego.edges[e].u].AndPopcount(bitmaps_[ego.edges[e].v]));
  }

  // Bitmap-based peeling (Algorithm 7, line 14): on removal of (x, y) the
  // live common neighbors are exactly the set bits of Bits_x AND Bits_y.
  queue_.Init(support_);
  std::uint32_t level = 0;
  auto local_edge_id = [&](std::uint32_t a, std::uint32_t b) -> EdgeId {
    const auto begin = ego.adj.begin() + ego.offsets[a];
    const auto end = ego.adj.begin() + ego.offsets[a + 1];
    const auto it = std::lower_bound(begin, end, b);
    TSD_DCHECK(it != end && *it == b);
    return ego.adj_edge_ids[static_cast<std::size_t>(it - ego.adj.begin())];
  };
  while (!queue_.Empty()) {
    const EdgeId e = queue_.PopMin();
    level = std::max(level, queue_.Key(e));
    (*trussness)[e] = level + 2;
    const auto [x, y] = ego.edges[e];
    bitmaps_[x].ForEachCommonBit(bitmaps_[y], [&](std::size_t z) {
      queue_.DecreaseKeyClamped(
          local_edge_id(x, static_cast<std::uint32_t>(z)), level);
      queue_.DecreaseKeyClamped(
          local_edge_id(y, static_cast<std::uint32_t>(z)), level);
    });
    bitmaps_[x].Clear(y);
    bitmaps_[y].Clear(x);
  }
}

std::vector<std::uint32_t> ComputeEgoTrussness(EgoNetwork& ego,
                                               EgoTrussMethod method) {
  EgoTrussDecomposer decomposer(method);
  return decomposer.Compute(ego);
}

}  // namespace tsd
