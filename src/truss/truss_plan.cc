#include "truss/truss_plan.h"

#include <algorithm>
#include <utility>

#include "common/bitmap.h"
#include "common/check.h"
#include "truss/core_decomposition.h"
#include "truss/parallel_truss.h"

namespace tsd {

GraphStatistics ComputeGraphStatistics(const Graph& graph) {
  GraphStatistics stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();
  const std::uint64_t n = stats.num_vertices;
  const std::uint64_t m = stats.num_edges;
  if (n == 0) return stats;

  std::uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    max_degree = std::max(max_degree,
                          static_cast<std::uint32_t>(graph.degree(v)));
  }
  stats.max_degree = max_degree;
  stats.average_degree = 2.0 * static_cast<double>(m) / static_cast<double>(n);
  stats.density = n > 1 ? 2.0 * static_cast<double>(m) /
                              (static_cast<double>(n) *
                               static_cast<double>(n - 1))
                        : 0.0;
  stats.degree_skew = stats.average_degree > 0.0
                          ? static_cast<double>(max_degree) /
                                stats.average_degree
                          : 0.0;

  // Degree-sequence h-index via one histogram pass: walk the degrees from
  // the top, accumulating how many vertices have degree ≥ d; the first d
  // reached by the running count is the h-index. d == 0 always qualifies,
  // so the loop terminates with a value.
  std::vector<std::uint64_t> degree_count(std::size_t{max_degree} + 1, 0);
  for (VertexId v = 0; v < n; ++v) ++degree_count[graph.degree(v)];
  std::uint64_t at_least = 0;
  for (std::uint32_t d = max_degree;; --d) {
    at_least += degree_count[d];
    if (at_least >= d) {
      stats.degeneracy_bound = d;
      break;
    }
  }
  return stats;
}

TrussPlanAlgorithm ChooseTrussPlanAlgorithm(const GraphStatistics& stats,
                                            std::uint32_t min_trussness,
                                            const ParallelConfig& config) {
  // A consumption floor above 2 makes the O(n + m) core prefilter worth its
  // price whenever the degree distribution is skewed: skew puts mass below
  // the floor's core bound, and every pruned edge skips its O(ρ) support
  // intersection and all peeling work entirely.
  if (min_trussness > 2 && stats.degree_skew >= 3.0) {
    return TrussPlanAlgorithm::kCoreThenTruss;
  }
  // Wide, even frontiers — dense graphs with balanced degrees peel many
  // edges per level — favour the Jacobi schedule: its recompute phase is
  // tie-break-free and embarrassingly parallel. Narrow or skewed frontiers
  // favour Bsp's cheaper per-triangle decrements, and below 4 threads the
  // recompute overhead has nothing to amortize against.
  if (config.num_threads >= 4 && stats.average_degree >= 16.0 &&
      stats.degree_skew < 3.0) {
    return TrussPlanAlgorithm::kBspJacobi;
  }
  return TrussPlanAlgorithm::kBsp;
}

namespace internal {

std::vector<std::uint32_t> SupportViaBitmaps(const Graph& graph,
                                             const ParallelConfig& config) {
  const VertexId n = graph.num_vertices();
  const EdgeId m = graph.num_edges();
  std::vector<std::uint32_t> support(m, 0);
  if (m == 0) return support;

  // Adjacency bitmaps; each worker fills only its own vertices' rows, so
  // writes are disjoint and the result is independent of scheduling.
  std::vector<Bitmap> bits(n);
  ParallelForChunksIndexed(
      n, EffectiveChunks(config, n), config.num_threads,
      [&](std::uint32_t /*worker*/, std::uint32_t /*chunk*/,
          std::uint64_t begin, std::uint64_t end) {
        for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
          bits[v].Resize(n);
          for (const VertexId w : graph.neighbors(v)) bits[v].Set(w);
        }
      });

  // support(u, v) = |N(u) AND N(v)| — disjoint per-edge writes.
  ParallelForChunksIndexed(
      m, EffectiveChunks(config, m), config.num_threads,
      [&](std::uint32_t /*worker*/, std::uint32_t /*chunk*/,
          std::uint64_t begin, std::uint64_t end) {
        for (EdgeId e = static_cast<EdgeId>(begin); e < end; ++e) {
          const auto [u, v] = graph.edge(e);
          support[e] = static_cast<std::uint32_t>(bits[u].AndPopcount(bits[v]));
        }
      });
  return support;
}

}  // namespace internal

namespace {

std::vector<std::uint32_t> SupportForPlan(const Graph& graph,
                                          const ParallelConfig& config,
                                          bool bitmap_kernel) {
  return bitmap_kernel ? internal::SupportViaBitmaps(graph, config)
                       : ComputeSupport(graph, config);
}

std::vector<std::uint32_t> RunPeel(const Graph& graph,
                                   TrussPlanAlgorithm algorithm,
                                   const ParallelConfig& config,
                                   TrussPlanStats& stats) {
  stats.bitmap_kernel = internal::BitmapSupportEligible(
      graph.num_vertices(), graph.num_edges(), internal::kBitmapBudgetBytes,
      internal::kGlobalBitmapDensityShift);
  std::vector<std::uint32_t> support =
      SupportForPlan(graph, config, stats.bitmap_kernel);
  return algorithm == TrussPlanAlgorithm::kBspJacobi
             ? TrussnessFromSupportJacobi(graph, std::move(support), config)
             : TrussnessFromSupport(graph, std::move(support), config);
}

// CoreThenTruss: prune every edge whose Burkhardt bound
// min(core(u), core(v)) + 1 proves its trussness below the floor, then peel
// the surviving subgraph. The k-truss is contained in the (k-1)-core, so
// trussness_G(e) ≤ min(core(u), core(v)) + 1 and pruning is sound; and
// because the pruned edges have trussness below the floor, they are not in
// any k-truss the caller consumes, so trussness restricted to the subgraph
// equals trussness in G for every surviving edge of trussness ≥ floor.
std::vector<std::uint32_t> RunCoreThenTruss(const Graph& graph,
                                            const TrussPlan& plan,
                                            const ParallelConfig& config,
                                            TrussPlanStats& stats) {
  const EdgeId m = graph.num_edges();
  const std::uint32_t core_floor = plan.min_trussness() - 1;
  const CoreDecomposition cores(graph);

  std::vector<std::pair<VertexId, VertexId>> kept_edges;
  std::vector<EdgeId> kept_ids;
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& edge = graph.edge(e);
    if (std::min(cores.core(edge.u), cores.core(edge.v)) >= core_floor) {
      kept_edges.emplace_back(edge.u, edge.v);
      kept_ids.push_back(e);
    }
  }
  stats.edges_pruned = m - kept_edges.size();
  if (stats.edges_pruned == 0) {
    // Nothing to prune (always the case at min_trussness == 2: every edge
    // endpoint has core ≥ 1); skip the subgraph rebuild.
    return RunPeel(graph, TrussPlanAlgorithm::kBsp, config, stats);
  }

  const Graph sub = Graph::FromEdges(std::move(kept_edges),
                                     graph.num_vertices());
  TSD_CHECK(sub.num_edges() == kept_ids.size());
  const std::vector<std::uint32_t> sub_trussness =
      RunPeel(sub, TrussPlanAlgorithm::kBsp, config, stats);

  // GraphBuilder sorts edges by (u, v) and the kept list is an (already
  // sorted) subsequence of graph.edges(), so subgraph edge i is exactly
  // kept_ids[i]. Pruned edges take the trivial trussness 2.
  std::vector<std::uint32_t> trussness(m, 2);
  for (std::size_t i = 0; i < kept_ids.size(); ++i) {
    trussness[kept_ids[i]] = sub_trussness[i];
  }
  return trussness;
}

}  // namespace

std::vector<std::uint32_t> TrussnessWithPlan(const Graph& graph,
                                             const TrussPlan& plan,
                                             const ParallelConfig& config,
                                             TrussPlanStats* stats) {
  TrussPlanStats local_stats;
  TrussPlanStats& out = stats != nullptr ? *stats : local_stats;
  out = TrussPlanStats{};
  out.requested = plan.algorithm();
  out.min_trussness = plan.min_trussness();
  out.graph_stats = ComputeGraphStatistics(graph);
  out.algorithm =
      plan.algorithm() == TrussPlanAlgorithm::kAuto
          ? ChooseTrussPlanAlgorithm(out.graph_stats, plan.min_trussness(),
                                     config)
          : plan.algorithm();

  if (out.algorithm == TrussPlanAlgorithm::kCoreThenTruss) {
    return RunCoreThenTruss(graph, plan, config, out);
  }
  return RunPeel(graph, out.algorithm, config, out);
}

std::optional<TrussPlanAlgorithm> ParseTrussPlanAlgorithm(
    std::string_view name) {
  if (name == "auto") return TrussPlanAlgorithm::kAuto;
  if (name == "bsp") return TrussPlanAlgorithm::kBsp;
  if (name == "jacobi") return TrussPlanAlgorithm::kBspJacobi;
  if (name == "core-truss") return TrussPlanAlgorithm::kCoreThenTruss;
  return std::nullopt;
}

std::string TrussPlanAlgorithmName(TrussPlanAlgorithm algorithm) {
  switch (algorithm) {
    case TrussPlanAlgorithm::kAuto:
      return "auto";
    case TrussPlanAlgorithm::kBsp:
      return "bsp";
    case TrussPlanAlgorithm::kBspJacobi:
      return "jacobi";
    case TrussPlanAlgorithm::kCoreThenTruss:
      return "core-truss";
  }
  TSD_CHECK(false);
  __builtin_unreachable();
}

}  // namespace tsd
