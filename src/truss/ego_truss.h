// Truss decomposition of ego-networks.
//
// Two interchangeable kernels:
//  * kHash   — classic adjacency-intersection support computation followed
//              by bucket peeling (what TSD-index construction uses).
//  * kBitmap — the Section 6.2 optimization: per-vertex adjacency bitmaps;
//              support is AND-popcount; the peeling updates bitmaps as edges
//              are removed. Faster on dense ego-networks, falls back to
//              kHash automatically when the bitmap footprint (|N(v)|² bits)
//              would exceed a memory budget.
//
// Both return the per-edge trussness of the ego-network, parallel to
// EgoNetwork::edges, and are verified equivalent by property tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitmap.h"
#include "common/bucket_queue.h"
#include "graph/ego_network.h"
#include "truss/truss_plan.h"

namespace tsd {

enum class EgoTrussMethod {
  kHash,
  kBitmap,
  kAuto,  // bitmap when it fits the budget, hash otherwise
};

/// Stateful decomposer with reusable scratch buffers; create one per thread
/// and feed it ego-networks one at a time.
class EgoTrussDecomposer {
 public:
  /// `bitmap_budget_bytes` caps the transient bitmap matrix; above it,
  /// kAuto and kBitmap fall back to the hash kernel. The default budget and
  /// the kAuto density rule are shared with the global plan subsystem
  /// (truss_plan.h), so ego-level and global-level kernel selection stay in
  /// agreement.
  explicit EgoTrussDecomposer(
      EgoTrussMethod method = EgoTrussMethod::kAuto,
      std::size_t bitmap_budget_bytes = internal::kBitmapBudgetBytes);

  /// Computes the trussness of every ego edge. Builds the ego CSR if absent.
  std::vector<std::uint32_t> Compute(EgoNetwork& ego);

  /// Same, writing into the caller's buffer (resized to the edge count).
  /// Together with the internal support/queue scratch this makes repeated
  /// decompositions allocation-free in steady state — the QueryPipeline's
  /// per-vertex hot path.
  void ComputeInto(EgoNetwork& ego, std::vector<std::uint32_t>* trussness);

  EgoTrussMethod method() const { return method_; }

 private:
  void ComputeHashInto(EgoNetwork& ego, std::vector<std::uint32_t>* trussness);
  void ComputeBitmapInto(EgoNetwork& ego,
                         std::vector<std::uint32_t>* trussness);

  EgoTrussMethod method_;
  std::size_t bitmap_budget_bytes_;
  std::vector<Bitmap> bitmaps_;          // reused across calls
  std::vector<std::uint32_t> support_;   // reused across calls
  BucketQueue queue_;                    // reused across calls
};

/// One-shot convenience wrapper.
std::vector<std::uint32_t> ComputeEgoTrussness(
    EgoNetwork& ego, EgoTrussMethod method = EgoTrussMethod::kAuto);

}  // namespace tsd
