#include "truss/core_decomposition.h"

#include <algorithm>

#include "common/bucket_queue.h"

namespace tsd {
namespace {

template <typename OffsetT>
std::vector<std::uint32_t> PeelCores(std::size_t num_vertices,
                                     std::span<const OffsetT> offsets,
                                     std::span<const VertexId> adj) {
  std::vector<std::uint32_t> degrees(num_vertices);
  for (std::size_t v = 0; v < num_vertices; ++v) {
    degrees[v] = static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]);
  }
  std::vector<std::uint32_t> core(num_vertices, 0);
  if (num_vertices == 0) return core;

  BucketQueue queue(degrees);
  std::uint32_t level = 0;
  while (!queue.Empty()) {
    const VertexId v = static_cast<VertexId>(queue.PopMin());
    level = std::max(level, queue.Key(v));
    core[v] = level;
    for (auto i = offsets[v]; i < offsets[v + 1]; ++i) {
      const VertexId u = adj[i];
      if (!queue.Removed(u)) queue.DecreaseKeyClamped(u, level);
    }
  }
  return core;
}

}  // namespace

CoreDecomposition::CoreDecomposition(const Graph& graph) {
  core_ = PeelCores<std::uint64_t>(graph.num_vertices(), graph.offsets(),
                                   graph.adjacency());
  for (std::uint32_t c : core_) max_core_ = std::max(max_core_, c);
}

std::vector<std::uint32_t> CoreNumbersCsr(
    std::size_t num_vertices, std::span<const std::uint32_t> offsets,
    std::span<const VertexId> adj) {
  return PeelCores<std::uint32_t>(num_vertices, offsets, adj);
}

}  // namespace tsd
