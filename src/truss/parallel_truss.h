// Parallel global triangle counting and truss decomposition.
//
// The global preprocess (support computation + support peeling) was the last
// sequential stage of the library once queries and index builds went
// parallel. These kernels follow the standard parallel k-truss recipe
// (Burkhardt, "Bounds and algorithms for graph trusses"; the level-
// synchronous peelers shipped in Katana-style graph engines):
//
//  * Triangle kernels run over one shared ForwardAdjacency (itself built in
//    parallel) with per-worker accumulators merged in deterministic worker
//    order; above a scratch budget they switch to one shared array of
//    relaxed atomics (integer adds commute, so both strategies produce
//    results bit-identical to the sequential ForEachTriangle kernels).
//  * Trussness is solved frontier-by-frontier: every edge whose support has
//    reached the current peeling level is removed in one parallel sub-round,
//    and the supports of the surviving triangle partners are decremented
//    (clamped at the level) via atomic accumulators. Edge trussness is the
//    unique fixed point of Wang–Cheng peeling, so the result is
//    bit-identical to PeelSupportToTrussness at any thread count — which is
//    what tests/parallel_truss_test.cc asserts.
//
// With config.num_threads == 1 every entry point routes to the sequential
// kernel, so the single-thread path stays byte-for-byte the audited one.
#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "graph/graph.h"
#include "truss/triangle.h"

namespace tsd {

/// Parallel total triangle count. Equals CountTriangles(graph).
std::uint64_t CountTriangles(const Graph& graph, const ParallelConfig& config);

/// Parallel edge supports. Equals ComputeSupport(graph).
std::vector<std::uint32_t> ComputeSupport(const Graph& graph,
                                          const ParallelConfig& config);

/// Parallel per-vertex triangle counts (the ego-network edge counts m_v).
/// Equals TrianglesPerVertex(graph); 64-bit, see triangle.h.
std::vector<std::uint64_t> TrianglesPerVertex(const Graph& graph,
                                              const ParallelConfig& config);

/// Solves edge trussness from initial supports by frontier-parallel peeling.
/// `support` is consumed as scratch. The result is bit-identical to
/// PeelSupportToTrussness(view-of-graph, support) — trussness is unique —
/// for every graph and thread count.
std::vector<std::uint32_t> TrussnessFromSupport(const Graph& graph,
                                                std::vector<std::uint32_t> support,
                                                const ParallelConfig& config);

/// Jacobi-schedule variant of TrussnessFromSupport (TrussPlan::BspJacobi):
/// each sub-round freezes and retires the whole frontier, then recomputes
/// the true surviving support of every touched edge in parallel against the
/// frozen state — no per-triangle tie-break and no decrement bookkeeping —
/// and commits with the same level clamp as the bucket queue. The stored
/// support of every alive edge always equals its exact support in the
/// surviving graph, so the frontier sets evolve identically to the Bsp peel
/// and the result is bit-identical to PeelSupportToTrussness for every
/// graph and thread count. Unlike TrussnessFromSupport, a single thread
/// runs the same Jacobi rounds (not the sequential bucket queue), so the
/// schedule itself is exercised at every thread count.
std::vector<std::uint32_t> TrussnessFromSupportJacobi(
    const Graph& graph, std::vector<std::uint32_t> support,
    const ParallelConfig& config);

namespace internal {

/// Cap on the total per-worker accumulator scratch (num_threads × array
/// bytes) the counting kernels may allocate. Above it they fall back to one
/// shared array of relaxed atomics: slower per increment on contended cache
/// lines, but O(m) instead of O(threads × m) memory — a billion-edge graph
/// at 8 threads would otherwise need tens of GB of scratch. Results are
/// identical either way.
inline constexpr std::uint64_t kCountingScratchBudgetBytes =
    std::uint64_t{1} << 30;

/// Edge supports over a prebuilt forward adjacency for `m` edges.
/// `scratch_budget_bytes` selects the accumulation strategy (tests pass 0
/// to force the shared-atomic path on small graphs).
std::vector<std::uint32_t> SupportFromForward(
    const ForwardAdjacency& fwd, EdgeId m, const ParallelConfig& config,
    std::uint64_t scratch_budget_bytes = kCountingScratchBudgetBytes);

/// Per-vertex triangle counts over a prebuilt forward adjacency for `n`
/// vertices — the shared kernel behind TrianglesPerVertex and the counting
/// pass of the global ego listing (which reuses its ForwardAdjacency for
/// the distribution pass).
std::vector<std::uint64_t> TrianglesPerVertexFromForward(
    const ForwardAdjacency& fwd, VertexId n, const ParallelConfig& config,
    std::uint64_t scratch_budget_bytes = kCountingScratchBudgetBytes);

}  // namespace internal
}  // namespace tsd
