// Parallel truss decomposition (frontier-parallel support peeling).
//
// The global preprocess (support computation + support peeling) was the last
// sequential stage of the library once queries and index builds went
// parallel. The triangle-counting half lives in graph/triangle.h (it depends
// only on graph/ + common/); this header owns the peeling half, following
// the standard parallel k-truss recipe (Burkhardt, "Bounds and algorithms
// for graph trusses"; the level-synchronous peelers shipped in Katana-style
// graph engines):
//
//  * Trussness is solved frontier-by-frontier: every edge whose support has
//    reached the current peeling level is removed in one parallel sub-round,
//    and the supports of the surviving triangle partners are decremented
//    (clamped at the level) via atomic accumulators. Edge trussness is the
//    unique fixed point of Wang–Cheng peeling, so the result is
//    bit-identical to PeelSupportToTrussness at any thread count — which is
//    what tests/parallel_truss_test.cc asserts.
//
// With config.num_threads == 1 TrussnessFromSupport routes to the sequential
// bucket-queue peel, so the single-thread path stays byte-for-byte the
// audited one.
#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "graph/graph.h"
#include "graph/triangle.h"

namespace tsd {

/// Solves edge trussness from initial supports by frontier-parallel peeling.
/// `support` is consumed as scratch. The result is bit-identical to
/// PeelSupportToTrussness(view-of-graph, support) — trussness is unique —
/// for every graph and thread count.
std::vector<std::uint32_t> TrussnessFromSupport(const Graph& graph,
                                                std::vector<std::uint32_t> support,
                                                const ParallelConfig& config);

/// Jacobi-schedule variant of TrussnessFromSupport (TrussPlan::BspJacobi):
/// each sub-round freezes and retires the whole frontier, then recomputes
/// the true surviving support of every touched edge in parallel against the
/// frozen state — no per-triangle tie-break and no decrement bookkeeping —
/// and commits with the same level clamp as the bucket queue. The stored
/// support of every alive edge always equals its exact support in the
/// surviving graph, so the frontier sets evolve identically to the Bsp peel
/// and the result is bit-identical to PeelSupportToTrussness for every
/// graph and thread count. Unlike TrussnessFromSupport, a single thread
/// runs the same Jacobi rounds (not the sequential bucket queue), so the
/// schedule itself is exercised at every thread count.
std::vector<std::uint32_t> TrussnessFromSupportJacobi(
    const Graph& graph, std::vector<std::uint32_t> support,
    const ParallelConfig& config);

}  // namespace tsd
