// k-truss / k-core subgraph extraction and component identification.
//
// "Maximal connected k-truss" is the paper's social-context unit (Def. 2):
// a connected component of the k-truss. Components are edge-induced — a
// vertex belongs to a component only if it is incident to a k-truss edge.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tsd {

/// Connected components of the k-truss of `graph`, given precomputed edge
/// trussness. Each component is a sorted vertex list; components are sorted
/// by their smallest vertex for deterministic output.
std::vector<std::vector<VertexId>> MaximalConnectedKTrusses(
    const Graph& graph, const std::vector<std::uint32_t>& edge_trussness,
    std::uint32_t k);

/// Edge ids of the k-truss (trussness ≥ k).
std::vector<EdgeId> KTrussEdges(const Graph& graph,
                                const std::vector<std::uint32_t>& edge_trussness,
                                std::uint32_t k);

/// The k-truss as a standalone graph (same vertex id space; non-k-truss
/// edges dropped). Used for graph sparsification in Algorithm 4.
Graph KTrussSubgraph(const Graph& graph,
                     const std::vector<std::uint32_t>& edge_trussness,
                     std::uint32_t k);

/// Connected components of the subgraph induced by vertices with core
/// number ≥ k — the "maximal connected k-cores" of the Core-Div model [20].
std::vector<std::vector<VertexId>> MaximalConnectedKCores(
    const Graph& graph, const std::vector<std::uint32_t>& core_numbers,
    std::uint32_t k);

/// Connected components (of the whole graph) with at least `min_size`
/// vertices — the social contexts of the Comp-Div model [7], [21].
std::vector<std::vector<VertexId>> ComponentsOfMinSize(
    const Graph& graph, std::uint32_t min_size);

}  // namespace tsd
