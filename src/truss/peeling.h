// Shared support-peeling kernel (Algorithm 1 of the paper, after Wang–Cheng).
//
// Works over any CSR-shaped graph view (the global Graph or a local
// ego-network), so the global truss decomposition and the per-ego
// decomposition share one audited implementation.
//
// Given initial edge supports, repeatedly removes a minimum-support edge,
// assigns its trussness k = support + 2 (monotonically non-decreasing), and
// decrements the support of the two other edges of every triangle the removed
// edge participated in. Bucket-queue order gives O(1) amortized pops.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/bucket_queue.h"
#include "graph/graph.h"

namespace tsd {

/// CSR view over which peeling runs. Offsets may be 32- or 64-bit.
template <typename OffsetT>
struct CsrView {
  std::size_t num_vertices = 0;
  std::span<const OffsetT> offsets;     // size num_vertices + 1
  std::span<const VertexId> adj;        // neighbor ids, sorted per vertex
  std::span<const EdgeId> adj_edge_ids; // parallel to adj
  std::span<const Edge> edges;          // endpoints per edge id

  std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]);
  }
};

/// Peels edges by support and writes the trussness of every edge into
/// `*trussness` (resized to the edge count, reusing its capacity). `queue`
/// is caller-owned scratch so repeated decompositions stay allocation-free.
template <typename OffsetT>
void PeelSupportToTrussnessInto(const CsrView<OffsetT>& view,
                                const std::vector<std::uint32_t>& support,
                                BucketQueue& queue,
                                std::vector<std::uint32_t>* trussness) {
  const std::size_t m = view.edges.size();
  trussness->assign(m, 2);
  if (m == 0) return;

  queue.Init(support);
  std::uint32_t level = 0;  // current peeling level in support space (k-2)

  while (!queue.Empty()) {
    const EdgeId e = queue.PopMin();
    level = std::max(level, queue.Key(e));
    (*trussness)[e] = level + 2;

    const auto [u0, v0] = view.edges[e];
    // Scan the smaller adjacency; binary-search the larger for membership.
    VertexId u = u0;
    VertexId v = v0;
    if (view.degree(u) > view.degree(v)) std::swap(u, v);

    const auto u_begin = view.offsets[u];
    const auto u_end = view.offsets[u + 1];
    const auto v_begin = view.offsets[v];
    const auto v_end = view.offsets[v + 1];
    for (auto i = u_begin; i < u_end; ++i) {
      const VertexId w = view.adj[i];
      if (w == v) continue;
      const EdgeId e_uw = view.adj_edge_ids[i];
      if (queue.Removed(e_uw)) continue;
      // Find edge (v, w).
      const auto it = std::lower_bound(view.adj.begin() + v_begin,
                                       view.adj.begin() + v_end, w);
      if (it == view.adj.begin() + v_end || *it != w) continue;
      const EdgeId e_vw =
          view.adj_edge_ids[static_cast<std::size_t>(it - view.adj.begin())];
      if (queue.Removed(e_vw)) continue;
      // Triangle (u, v, w) loses edge e: the other two edges each lose one
      // unit of support (clamped at the current level).
      queue.DecreaseKeyClamped(e_uw, level);
      queue.DecreaseKeyClamped(e_vw, level);
    }
  }
}

/// One-shot wrapper returning the trussness vector.
template <typename OffsetT>
std::vector<std::uint32_t> PeelSupportToTrussness(
    const CsrView<OffsetT>& view, std::vector<std::uint32_t> support) {
  std::vector<std::uint32_t> trussness;
  BucketQueue queue;
  PeelSupportToTrussnessInto(view, support, queue, &trussness);
  return trussness;
}

}  // namespace tsd
