// Global truss decomposition (Algorithm 1 of the paper; Wang–Cheng).
//
// Computes the trussness τ_G(e) of every edge: the largest k such that e
// belongs to the k-truss of G. The k-truss of G for any k is then the set of
// edges with trussness ≥ k. Also derives vertex trussness (the max over
// incident edges), used by graph sparsification and GCT supernode
// initialization.
//
// Construction accepts a ParallelConfig: with num_threads > 1 both the
// support computation and the peel run on the frontier-parallel kernels of
// truss/parallel_truss.h; trussness is unique, so the result is
// bit-identical to the sequential decomposition at any thread count. The
// default (1 thread) is the sequential Wang–Cheng path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "graph/graph.h"

namespace tsd {

class TrussDecomposition {
 public:
  /// Runs support computation + peeling on construction. O(ρ·m) time.
  explicit TrussDecomposition(const Graph& graph)
      : TrussDecomposition(graph, ParallelConfig{}) {}

  /// Same decomposition on `config.num_threads` workers (bit-identical).
  TrussDecomposition(const Graph& graph, const ParallelConfig& config);

  /// Trussness of edge e (≥ 2 for every edge).
  std::uint32_t trussness(EdgeId e) const { return edge_trussness_[e]; }

  const std::vector<std::uint32_t>& edge_trussness() const {
    return edge_trussness_;
  }

  /// Vertex trussness: max trussness over incident edges (0 if isolated).
  std::uint32_t vertex_trussness(VertexId v) const {
    return vertex_trussness_[v];
  }

  /// Maximum edge trussness τ*_G (0 on an edgeless graph).
  std::uint32_t max_trussness() const { return max_trussness_; }

  /// histogram[k] = number of edges with trussness exactly k (Figure 3).
  std::vector<std::uint64_t> TrussnessHistogram() const;

 private:
  std::vector<std::uint32_t> edge_trussness_;
  std::vector<std::uint32_t> vertex_trussness_;
  std::uint32_t max_trussness_ = 0;
};

}  // namespace tsd
