// Global truss decomposition (Algorithm 1 of the paper; Wang–Cheng).
//
// Computes the trussness τ_G(e) of every edge: the largest k such that e
// belongs to the k-truss of G. The k-truss of G for any k is then the set of
// edges with trussness ≥ k. Also derives vertex trussness (the max over
// incident edges), used by graph sparsification and GCT supernode
// initialization.
//
// Construction accepts a ParallelConfig and routes through the TrussPlan
// subsystem (truss/truss_plan.h): config.truss_plan picks the kernel (Bsp,
// BspJacobi, CoreThenTruss, or the statistics-driven auto-tuner) and
// config.num_threads its parallelism. Trussness is unique, so every plan is
// bit-identical to the sequential decomposition at any thread count. A
// caller that only consumes trussness ≥ t may pass an explicit plan with
// min_trussness = t; the derived state (vertex trussness, histogram) then
// reflects the degraded sub-threshold values — see the min_trussness
// contract in truss_plan.h.
#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "graph/graph.h"
#include "truss/truss_plan.h"

namespace tsd {

class TrussDecomposition {
 public:
  /// Runs support computation + peeling on construction. O(ρ·m) time.
  explicit TrussDecomposition(const Graph& graph)
      : TrussDecomposition(graph, ParallelConfig{}) {}

  /// Same decomposition on `config.num_threads` workers (bit-identical),
  /// under the kernel selected by config.truss_plan with the full-exactness
  /// floor min_trussness = 2.
  TrussDecomposition(const Graph& graph, const ParallelConfig& config)
      : TrussDecomposition(graph, config,
                           TrussPlan::FromAlgorithm(config.truss_plan)) {}

  /// Explicit-plan constructor; the only way to run with a consumption
  /// floor above 2.
  TrussDecomposition(const Graph& graph, const ParallelConfig& config,
                     const TrussPlan& plan);

  /// Trussness of edge e (≥ 2 for every edge).
  std::uint32_t trussness(EdgeId e) const { return edge_trussness_[e]; }

  const std::vector<std::uint32_t>& edge_trussness() const {
    return edge_trussness_;
  }

  /// Vertex trussness: max trussness over incident edges (0 if isolated).
  std::uint32_t vertex_trussness(VertexId v) const {
    return vertex_trussness_[v];
  }

  /// Maximum edge trussness τ*_G (0 on an edgeless graph).
  std::uint32_t max_trussness() const { return max_trussness_; }

  /// histogram[k] = number of edges with trussness exactly k (Figure 3).
  std::vector<std::uint64_t> TrussnessHistogram() const;

  /// How the plan executed: resolved algorithm, bitmap-kernel use, edges
  /// pruned by the core prefilter, and the auto-tuner's input statistics.
  const TrussPlanStats& plan_stats() const { return plan_stats_; }

 private:
  std::vector<std::uint32_t> edge_trussness_;
  std::vector<std::uint32_t> vertex_trussness_;
  std::uint32_t max_trussness_ = 0;
  TrussPlanStats plan_stats_;
};

}  // namespace tsd
