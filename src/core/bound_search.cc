#include "core/bound_search.h"

#include <algorithm>
#include <numeric>

#include "common/timer.h"
#include "core/scoring.h"
#include "core/top_r_collector.h"
#include "truss/k_truss.h"
#include "truss/triangle.h"
#include "truss/truss_decomposition.h"

namespace tsd {

std::vector<std::uint32_t> BoundSearcher::UpperBounds(
    const Graph& graph, const std::vector<std::uint32_t>& ego_edge_counts,
    std::uint32_t k) {
  TSD_CHECK(k >= 2);
  std::vector<std::uint32_t> bounds(graph.num_vertices());
  const std::uint64_t min_context_edges =
      static_cast<std::uint64_t>(k) * (k - 1) / 2;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const std::uint32_t by_vertices = graph.degree(v) / k;
    const std::uint32_t by_edges = static_cast<std::uint32_t>(
        ego_edge_counts[v] / min_context_edges);
    bounds[v] = std::min(by_vertices, by_edges);
  }
  return bounds;
}

TopRResult BoundSearcher::TopR(std::uint32_t r, std::uint32_t k) {
  TSD_CHECK(r >= 1);
  TSD_CHECK(k >= 2);
  WallTimer total;
  TopRResult result;

  // --- Preprocessing: sparsification + bounds (lines 1–4 of Algorithm 4).
  Graph reduced;
  std::vector<std::uint32_t> bounds;
  {
    ScopedTimer t(&result.stats.preprocess_seconds);
    TrussDecomposition truss(graph_);
    // Property 1: only edges with τ_G(e) ≥ k+1 can contribute.
    reduced = KTrussSubgraph(graph_, truss.edge_trussness(), k + 1);
    const std::vector<std::uint32_t> ego_edges = TrianglesPerVertex(reduced);
    bounds = UpperBounds(reduced, ego_edges, k);
  }

  // Candidates in non-increasing bound order (ties by ascending id for
  // determinism). Bucket sort: bounds are small integers.
  std::vector<VertexId> order(reduced.num_vertices());
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return bounds[a] > bounds[b];
  });

  EgoNetworkExtractor extractor(reduced);
  EgoTrussDecomposer decomposer(method_);
  EgoNetwork ego;
  TopRCollector collector(r);
  {
    ScopedTimer t(&result.stats.score_seconds);
    for (VertexId v : order) {
      if (collector.CanPrune(bounds[v], v)) break;  // early termination
      extractor.ExtractInto(v, &ego);
      const std::vector<std::uint32_t> trussness = decomposer.Compute(ego);
      const ScoreResult score =
          ScoreFromEgoTrussness(ego, trussness, k, /*want_contexts=*/false);
      ++result.stats.vertices_scored;
      collector.Offer(v, score.score);
    }
  }

  // Materialize the winners' contexts on the reduced graph (identical to
  // the original graph's contexts by Property 1).
  {
    ScopedTimer t(&result.stats.context_seconds);
    for (const auto& [vertex, score] : collector.Ranked()) {
      TopREntry entry;
      entry.vertex = vertex;
      entry.score = score;
      extractor.ExtractInto(vertex, &ego);
      const std::vector<std::uint32_t> trussness = decomposer.Compute(ego);
      entry.contexts =
          ScoreFromEgoTrussness(ego, trussness, k, /*want_contexts=*/true)
              .contexts;
      result.entries.push_back(std::move(entry));
    }
  }

  result.stats.total_seconds = total.Seconds();
  return result;
}

}  // namespace tsd
