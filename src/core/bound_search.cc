#include "core/bound_search.h"

#include <algorithm>
#include <numeric>

#include "common/timer.h"
#include "core/batch_query.h"
#include "core/scoring.h"
#include "core/top_r_collector.h"
#include "truss/k_truss.h"
#include "truss/parallel_truss.h"
#include "truss/truss_decomposition.h"
#include "truss/truss_plan.h"

namespace tsd {
namespace {

/// Re-arms the session pipeline to the full graph on every exit path. The
/// pipeline is rebound to a stack-local sparsified graph for the scan; if
/// an exception unwinds past the query, the session's cache must not keep
/// workspaces pointing at the destroyed subgraph (the cache is shared
/// across searchers on the same (graph, method) key, so a later query
/// through another searcher would dereference it).
class PipelineRearm {
 public:
  PipelineRearm(QueryPipeline& pipeline, const Graph& graph)
      : pipeline_(pipeline), graph_(graph) {}
  ~PipelineRearm() { pipeline_.Rebind(graph_); }
  PipelineRearm(const PipelineRearm&) = delete;
  PipelineRearm& operator=(const PipelineRearm&) = delete;

 private:
  QueryPipeline& pipeline_;
  const Graph& graph_;
};

}  // namespace

std::uint32_t BoundSearcher::UpperBound(std::uint32_t degree,
                                        std::uint64_t m_v, std::uint32_t k) {
  const std::uint64_t min_context_edges =
      static_cast<std::uint64_t>(k) * (k - 1) / 2;
  const std::uint64_t by_vertices = degree / k;
  const std::uint64_t by_edges = m_v / min_context_edges;
  // The minimum is bounded by degree/k, so it always fits 32 bits; taking
  // it in 64 bits first is what keeps a >2^32 ego edge count from wrapping.
  return static_cast<std::uint32_t>(std::min(by_vertices, by_edges));
}

std::vector<std::uint32_t> BoundSearcher::UpperBounds(
    const Graph& graph, const std::vector<std::uint64_t>& ego_edge_counts,
    std::uint32_t k) {
  TSD_CHECK(k >= 2);
  std::vector<std::uint32_t> bounds(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    bounds[v] = UpperBound(graph.degree(v), ego_edge_counts[v], k);
  }
  return bounds;
}

TopRResult BoundSearcher::TopR(std::uint32_t r, std::uint32_t k,
                               QuerySession& session) const {
  TSD_CHECK(r >= 1);
  TSD_CHECK(k >= 2);
  WallTimer total;
  TopRResult result;

  // The session's pipeline is cached against the full graph and rebound to
  // the per-query sparsified subgraph below, so workspace scratch survives
  // across queries.
  QueryPipeline& pipeline = session.PipelineFor(graph_, method_);
  PipelineRearm rearm(pipeline, graph_);

  // --- Preprocessing: sparsification + bounds (lines 1–4 of Algorithm 4).
  Graph reduced;
  std::vector<std::uint32_t> bounds;
  {
    ScopedTimer t(&result.stats.preprocess_seconds);
    // The global decomposition and m_v counts run on the same thread knobs
    // as the scan phases (the preprocess was the last serial fraction), and
    // under the session's truss plan. Only edges with τ_G(e) ≥ k+1 are
    // consumed here, so the plan may prune below that floor (CoreThenTruss
    // drops core-bounded edges before any triangle counting).
    const ParallelConfig config = ToParallelConfig(session.options());
    const TrussDecomposition truss(
        graph_, config, TrussPlan::FromAlgorithm(config.truss_plan, k + 1));
    result.stats.edges_pruned = truss.plan_stats().edges_pruned;
    // Property 1: only edges with τ_G(e) ≥ k+1 can contribute.
    reduced = KTrussSubgraph(graph_, truss.edge_trussness(), k + 1);
    pipeline.Rebind(reduced);
    const std::vector<std::uint64_t> ego_edges =
        TrianglesPerVertex(reduced, config);
    pipeline.MapScores(reduced.num_vertices(), &bounds,
                       [&](QueryWorkspace&, VertexId v) {
                         return UpperBound(reduced.degree(v), ego_edges[v], k);
                       });
  }

  // Candidates in non-increasing bound order (ties by ascending id for
  // determinism).
  std::vector<VertexId> order(reduced.num_vertices());
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return bounds[a] > bounds[b];
  });

  TopRCollector collector(r);
  {
    ScopedTimer t(&result.stats.score_seconds);
    result.stats.vertices_scored = pipeline.ScoreOrdered(
        order, bounds, &collector, [k](QueryWorkspace& ws, VertexId v) {
          EgoNetwork& ego = ws.DecomposeEgo(v);
          return ScoreFromEgoTrussness(ego, ws.trussness(), k,
                                       /*want_contexts=*/false)
              .score;
        });
  }

  // Materialize the winners' contexts on the reduced graph (identical to
  // the original graph's contexts by Property 1).
  {
    ScopedTimer t(&result.stats.context_seconds);
    pipeline.MaterializeEntries(
        collector.Ranked(), &result.entries,
        [k](QueryWorkspace& ws, VertexId v) {
          EgoNetwork& ego = ws.DecomposeEgo(v);
          return ScoreFromEgoTrussness(ego, ws.trussness(), k,
                                       /*want_contexts=*/true)
              .contexts;
        });
  }

  // `rearm` rebinds the workspaces to the full graph on return (the
  // reduced graph dies here) — and on any exception unwind above.
  result.stats.threads_used = pipeline.num_threads();
  result.stats.total_seconds = total.Seconds();
  return result;
}

std::vector<TopRResult> BoundSearcher::SearchBatch(
    std::span<const BatchQuery> queries, QuerySession& session) const {
  WallTimer total;
  std::vector<TopRResult> results(queries.size());
  if (queries.empty()) return results;
  SearchStats stats;
  BatchQueryRunner runner(queries);
  QueryPipeline& pipeline = session.PipelineFor(graph_, method_);
  PipelineRearm rearm(pipeline, graph_);

  // The smallest requested k gives the loosest sparsification, which is
  // valid for every batched threshold at once (KTrussSubgraph preserves the
  // vertex-id space, so the candidate range matches the per-query scans).
  const std::uint32_t k_min = runner.thresholds().back();
  Graph reduced;
  std::vector<std::uint32_t> bounds;
  std::vector<VertexId> order;
  // When every query's r is small, one shared bound order prunes most of
  // the per-candidate ego decompositions: the Lemma 2 bound min(d/k,
  // m_v/C(k,2)) is non-increasing in k, so evaluating it at the smallest
  // requested k upper-bounds every query's score and the ordered scan can
  // stop once every collector prunes. With large r nearly every candidate
  // gets scored anyway, so the m_v counting pass and the O(n log n) sort
  // would not pay for themselves. Entries are bit-identical either way.
  const bool ordered = runner.total_r() * 64 <= graph_.num_vertices();
  {
    ScopedTimer t(&stats.preprocess_seconds);
    const ParallelConfig config = ToParallelConfig(session.options());
    const TrussDecomposition truss(
        graph_, config,
        TrussPlan::FromAlgorithm(config.truss_plan, k_min + 1));
    stats.edges_pruned = truss.plan_stats().edges_pruned;
    reduced = KTrussSubgraph(graph_, truss.edge_trussness(), k_min + 1);
    pipeline.Rebind(reduced);
    if (ordered) {
      const std::vector<std::uint64_t> ego_edges =
          TrianglesPerVertex(reduced, config);
      pipeline.MapScores(
          reduced.num_vertices(), &bounds, [&](QueryWorkspace&, VertexId v) {
            return UpperBound(reduced.degree(v), ego_edges[v], k_min);
          });
      order.resize(reduced.num_vertices());
      std::iota(order.begin(), order.end(), 0U);
      std::stable_sort(order.begin(), order.end(),
                       [&](VertexId a, VertexId b) {
                         return bounds[a] > bounds[b];
                       });
    }
  }

  // Exact multi-k scores from one ego decomposition per visited candidate:
  // either the shared bound-ordered scan (small batches) or the full
  // reduced range.
  {
    ScopedTimer t(&stats.score_seconds);
    stats.vertices_scored =
        ordered ? runner.ScanOrdered(
                      pipeline, order, bounds,
                      [&runner](QueryWorkspace& ws, VertexId v,
                                std::uint32_t* out) {
                        EgoNetwork& ego = ws.DecomposeEgo(v);
                        ws.multi_scorer().Compute(ego, ws.trussness(),
                                                  runner.thresholds(), out);
                      })
                : runner.RunEgoScan(pipeline, reduced.num_vertices());
  }

  {
    ScopedTimer t(&stats.context_seconds);
    runner.MaterializeGrouped(
        pipeline, &results,
        [](QueryWorkspace& ws, VertexId v) { ws.DecomposeEgo(v); },
        [](QueryWorkspace& ws, VertexId /*v*/, std::uint32_t k) {
          return ScoreFromEgoTrussness(ws.ego(), ws.trussness(), k,
                                       /*want_contexts=*/true)
              .contexts;
        });
  }

  stats.threads_used = pipeline.num_threads();
  stats.total_seconds = total.Seconds();
  FillBatchStats(&results, stats);
  return results;
}

}  // namespace tsd
