// Bound-pruned top-r search — Algorithm 4 of the paper ("bound").
//
// Two pruning techniques on top of the online search:
//  1. Graph sparsification (Property 1): an edge can appear in a k-truss of
//     some ego-network only if its *global* trussness is at least k+1, so
//     all edges with τ_G(e) ≤ k are deleted up front, along with the
//     vertices this isolates.
//  2. Upper bound score̅(v) = min(⌊d(v)/k⌋, ⌊2·m_v/(k(k-1))⌋) (Lemma 2):
//     candidates are visited in non-increasing bound order; once the answer
//     set is full and the next bound is below the r-th best score, the
//     search terminates early.
//
// The bound-computation, exact-verification, and context phases all run on
// the shared QueryPipeline; with num_threads > 1 the early termination
// happens at round granularity (rankings unchanged, see query_pipeline.h).
// The preprocessing phase (global truss decomposition + m_v counts) runs on
// the same thread knobs via truss/parallel_truss.h — bit-identical at any
// thread count, since trussness is unique.
#pragma once

#include <cstdint>

#include "core/query_session.h"
#include "core/types.h"
#include "graph/graph.h"
#include "truss/ego_truss.h"

namespace tsd {

/// Immutable after construction; the per-query sparsified subgraph and the
/// pipeline workspaces it rebinds live entirely in the session / call frame.
class BoundSearcher : public DiversitySearcher {
 public:
  explicit BoundSearcher(const Graph& graph,
                         EgoTrussMethod method = EgoTrussMethod::kHash)
      : graph_(graph), method_(method) {}

  using DiversitySearcher::SearchBatch;
  using DiversitySearcher::TopR;

  TopRResult TopR(std::uint32_t r, std::uint32_t k,
                  QuerySession& session) const override;

  /// Amortized batch path: one global truss decomposition and one
  /// sparsification at the smallest requested k serve every query (Property
  /// 1 holds per k on that subgraph since its edge set contains every edge
  /// with τ_G(e) ≥ k+1 for all batched k), then one ego decomposition per
  /// surviving vertex scores all thresholds. Exact scores for every
  /// candidate, so entries are bit-identical to per-query TopR.
  std::vector<TopRResult> SearchBatch(std::span<const BatchQuery> queries,
                                      QuerySession& session) const override;

  std::string name() const override { return "bound"; }

  /// The Lemma 2 upper bound of one vertex with degree `degree` and `m_v`
  /// ego edges. `m_v` is 64-bit (a dense hub's ego edge count overflows 32
  /// bits) and the division happens before any narrowing, so the bound
  /// never wraps.
  static std::uint32_t UpperBound(std::uint32_t degree, std::uint64_t m_v,
                                  std::uint32_t k);

  /// The Lemma 2 upper bounds for every vertex of `graph` (exposed for
  /// tests and the ablation benchmarks). `ego_edge_counts` is m_v per
  /// vertex, e.g. from TrianglesPerVertex.
  static std::vector<std::uint32_t> UpperBounds(
      const Graph& graph, const std::vector<std::uint64_t>& ego_edge_counts,
      std::uint32_t k);

 private:
  const Graph& graph_;
  const EgoTrussMethod method_;
};

}  // namespace tsd
