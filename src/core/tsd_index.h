// TSD-index — the paper's Section 5 contribution.
//
// For every vertex v, the index stores the *maximum spanning forest* of the
// trussness-weighted ego-network WG_v (edge weight = trussness of the edge
// inside G_N(v)). By the max-spanning-forest cut property, two members of
// G_N(v) lie in the same maximal connected k-truss iff the forest connects
// them through edges of weight ≥ k, so the forest preserves the full
// structural diversity information of every ego-network in O(Σ_v n_v) ⊆
// O(m) total space (Observations 2 and 3).
//
// Queries for any (k, r) run against the index alone:
//   score(v)      — count components of the weight-≥k forest prefix.
//   s̃core(v)     — ⌊(#forest edges of weight ≥ k) / (k-1)⌋, the TSD upper
//                   bound used for top-r pruning (Section 5.2).
//   TopR(r, k)    — bound-ordered scan with early termination.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/mmap_file.h"
#include "common/snapshot.h"
#include "core/query_scratch.h"
#include "core/query_session.h"
#include "core/scoring.h"
#include "core/types.h"
#include "graph/ego_network.h"
#include "truss/ego_truss.h"

namespace tsd {

/// Timing breakdown of index construction (feeds Tables 3 and 4).
struct IndexBuildStats {
  double extraction_seconds = 0;     // ego-network extraction
  double decomposition_seconds = 0;  // ego-network truss decomposition
  double assembly_seconds = 0;       // forest / supernode assembly
  double total_seconds = 0;
};

class TsdIndex : public DiversitySearcher {
 public:
  struct Options {
    /// Kernel for the per-ego truss decompositions during construction.
    /// The paper's TSD uses per-vertex extraction + hash decomposition;
    /// the GCT improvements live in GctIndex.
    EgoTrussMethod method = EgoTrussMethod::kHash;
    /// Worker threads for construction. Per-vertex forests are independent,
    /// so the build parallelizes embarrassingly; results are bit-identical
    /// to the sequential build. With >1 threads the per-phase timing
    /// breakdown in build_stats() is summed across workers (CPU time, not
    /// wall time).
    std::uint32_t num_threads = 1;
  };

  /// Builds the TSD-index of `graph` (Algorithm 5). O(ρ(m+T)) time.
  static TsdIndex Build(const Graph& graph, const Options& options);
  static TsdIndex Build(const Graph& graph) { return Build(graph, Options()); }

  /// Structural diversity score of v at threshold k, via Algorithm 6.
  /// The scratch overload is allocation-free in the steady state; the
  /// convenience overload allocates a throwaway scratch per call.
  std::uint32_t Score(VertexId v, std::uint32_t k,
                      IndexQueryScratch& scratch) const;
  std::uint32_t Score(VertexId v, std::uint32_t k) const {
    IndexQueryScratch scratch;
    return Score(v, k, scratch);
  }

  /// Score plus materialized social contexts.
  ScoreResult ScoreWithContexts(VertexId v, std::uint32_t k,
                                IndexQueryScratch& scratch) const;
  ScoreResult ScoreWithContexts(VertexId v, std::uint32_t k) const {
    IndexQueryScratch scratch;
    return ScoreWithContexts(v, k, scratch);
  }

  /// Scores v at every threshold of `thresholds` (strictly descending) in
  /// one sweep over the forest slice — the batch-query kernel.
  void ScoresForThresholds(VertexId v,
                           std::span<const std::uint32_t> thresholds,
                           IndexQueryScratch& scratch,
                           std::uint32_t* scores) const;

  /// The s̃core(v) upper bound (Section 5.2). Always ≥ Score(v, k).
  std::uint32_t ScoreUpperBound(VertexId v, std::uint32_t k) const;

  using DiversitySearcher::SearchBatch;
  using DiversitySearcher::TopR;

  /// Index-based top-r search with s̃core pruning. The index is immutable,
  /// so concurrent sessions may query one shared instance.
  TopRResult TopR(std::uint32_t r, std::uint32_t k,
                  QuerySession& session) const override;

  /// Amortized batch path: one forest-slice sweep per vertex scores every
  /// requested threshold (bit-identical to per-query TopR).
  std::vector<TopRResult> SearchBatch(std::span<const BatchQuery> queries,
                                      QuerySession& session) const override;

  std::string name() const override { return "TSD"; }

  /// Forest edges stored for v: parallel spans of (u, v, weight).
  std::uint32_t NumForestEdges(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Serialized/in-memory index size in bytes (Table 3).
  std::size_t SizeBytes() const;

  IndexBuildStats build_stats() const { return build_stats_; }

  /// Maximum forest edge weight anywhere (== max ego-network trussness).
  std::uint32_t max_weight() const { return max_weight_; }

  /// Saves a single-object snapshot (common/snapshot.h container) holding
  /// just this index. Load() throws tsd::CheckError on any malformed file —
  /// legacy semantics kept for callers that treat the path as trusted.
  void Save(const std::string& path) const;
  static TsdIndex Load(const std::string& path);

  /// Writes the forest arrays into an open snapshot ("tsdx.*" tags), for
  /// combined files that also carry the graph and/or other indexes.
  void AppendToSnapshot(SnapshotWriter& writer) const;

  /// Binds an index to the "tsdx.*" sections of a mapped snapshot —
  /// zero-copy, validated; false + `*error` on any inconsistency.
  [[nodiscard]] static bool LoadFromSnapshot(const SnapshotReader& reader,
                                             TsdIndex* out,
                                             std::string* error);

  /// True when the forest arrays are views into a mapped snapshot.
  bool is_mapped() const { return mapping_ != nullptr; }

 private:
  friend class DynamicTsdIndex;

  // Per-vertex forest edges, flattened; each vertex's slice is sorted by
  // weight descending. Endpoints are global vertex ids.
  FlatArray<std::uint64_t> offsets_;  // size n+1
  FlatArray<VertexId> edge_u_;
  FlatArray<VertexId> edge_v_;
  FlatArray<std::uint32_t> weight_;
  std::uint32_t max_weight_ = 0;
  IndexBuildStats build_stats_;
  // Keeps the snapshot mapping alive while the arrays view into it.
  std::shared_ptr<const MappedFile> mapping_;
};

}  // namespace tsd
