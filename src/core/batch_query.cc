#include "core/batch_query.h"

#include <functional>

namespace tsd {

void FillBatchStats(std::vector<TopRResult>* results,
                    const SearchStats& stats) {
  for (TopRResult& result : *results) result.stats = stats;
}

BatchQueryRunner::BatchQueryRunner(std::span<const BatchQuery> queries)
    : queries_(queries.begin(), queries.end()) {
  thresholds_.reserve(queries_.size());
  for (const BatchQuery& query : queries_) {
    TSD_CHECK_MSG(query.k >= 2, "batch query requires k >= 2");
    TSD_CHECK_MSG(query.r >= 1, "batch query requires r >= 1");
    thresholds_.push_back(query.k);
  }
  std::sort(thresholds_.begin(), thresholds_.end(),
            std::greater<std::uint32_t>());
  thresholds_.erase(std::unique(thresholds_.begin(), thresholds_.end()),
                    thresholds_.end());

  k_index_.reserve(queries_.size());
  collectors_.reserve(queries_.size());
  collector_ptrs_.reserve(queries_.size());
  for (const BatchQuery& query : queries_) {
    const auto it = std::lower_bound(thresholds_.begin(), thresholds_.end(),
                                     query.k, std::greater<std::uint32_t>());
    TSD_DCHECK(it != thresholds_.end() && *it == query.k);
    k_index_.push_back(static_cast<std::uint32_t>(it - thresholds_.begin()));
    collectors_.emplace_back(query.r);
  }
  for (TopRCollector& collector : collectors_) {
    collector_ptrs_.push_back(&collector);
  }
}

}  // namespace tsd
