// Bounded collector maintaining the current top-r (score, vertex) answers
// under the library-wide total order (score desc, id asc). Used by every
// searcher's candidate loop, including the Algorithm 4 early-termination
// check: once the collector is full, a candidate whose score *upper bound*
// is below WorstScore() can never enter, and if candidates arrive in
// non-increasing bound order the search can stop.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/check.h"
#include "core/types.h"

namespace tsd {

class TopRCollector {
 public:
  explicit TopRCollector(std::uint32_t r) : r_(r) { TSD_CHECK(r >= 1); }

  /// Offers a candidate; returns true if it entered the top-r.
  bool Offer(VertexId vertex, std::uint32_t score) {
    if (entries_.size() < r_) {
      entries_.insert({score, vertex});
      return true;
    }
    const auto worst = *entries_.begin();
    if (RanksBefore(score, vertex, worst.first, worst.second)) {
      entries_.erase(entries_.begin());
      entries_.insert({score, vertex});
      return true;
    }
    return false;
  }

  bool Full() const { return entries_.size() >= r_; }

  /// The r this collector was built for.
  std::uint32_t capacity() const { return r_; }

  /// Score of the current r-th ranked answer (only valid when Full()).
  std::uint32_t WorstScore() const {
    TSD_DCHECK(Full());
    return entries_.begin()->first;
  }

  /// Vertex id of the current r-th ranked answer (only valid when Full()).
  VertexId WorstId() const {
    TSD_DCHECK(Full());
    return entries_.begin()->second;
  }

  /// True when no candidate at or after (`bound`, `candidate`) in the
  /// (bound desc, id asc) visiting order can still displace the current
  /// worst answer: either its bound is strictly below the r-th best score,
  /// or it ties the r-th best score but every remaining candidate at this
  /// bound has a larger id than the current worst (an equal-score candidate
  /// only wins the tie with a smaller id).
  bool CanPrune(std::uint32_t bound, VertexId candidate) const {
    if (!Full()) return false;
    if (bound < WorstScore()) return true;
    return bound == WorstScore() && candidate > WorstId();
  }

  /// Ranked (best-first) snapshot.
  std::vector<std::pair<VertexId, std::uint32_t>> Ranked() const {
    std::vector<std::pair<VertexId, std::uint32_t>> out;
    out.reserve(entries_.size());
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      out.emplace_back(it->second, it->first);
    }
    return out;
  }

  /// Ranked (best-first) entries, emptying the collector: the move-out
  /// variant for merges and end-of-search extraction, where the collector's
  /// own copy is dead after the call.
  std::vector<std::pair<VertexId, std::uint32_t>> TakeRanked() {
    std::vector<std::pair<VertexId, std::uint32_t>> out = Ranked();
    entries_.clear();
    return out;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  // Ordered worst-first: ascending score, then descending id, so that
  // *begin() is the entry that leaves first.
  struct WorstFirst {
    bool operator()(const std::pair<std::uint32_t, VertexId>& a,
                    const std::pair<std::uint32_t, VertexId>& b) const {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;
    }
  };

  std::uint32_t r_;
  std::set<std::pair<std::uint32_t, VertexId>, WorstFirst> entries_;
};

}  // namespace tsd
