#include "core/tsd_index.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/disjoint_set.h"
#include "common/parallel.h"
#include "common/serialize.h"
#include "common/timer.h"
#include "core/batch_query.h"
#include "core/max_spanning_forest.h"
#include "core/query_pipeline.h"
#include "core/top_r_collector.h"

namespace tsd {
namespace {

// Snapshot section tags for the TSD forest ("tsdx.*" group).
constexpr std::uint64_t kTsdMetaTag = SnapshotTag("tsdx.met");
constexpr std::uint64_t kTsdOffsetsTag = SnapshotTag("tsdx.off");
constexpr std::uint64_t kTsdEdgeUTag = SnapshotTag("tsdx.edu");
constexpr std::uint64_t kTsdEdgeVTag = SnapshotTag("tsdx.edv");
constexpr std::uint64_t kTsdWeightTag = SnapshotTag("tsdx.wgt");

// Schema version for the "tsdx.*" section group (common/snapshot.h policy).
constexpr std::uint64_t kTsdSchemaVersion = 1;

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = "TSD snapshot: " + message;
  return false;
}

/// Per-chunk build output: forest edge arrays plus per-vertex counts, so
/// chunks concatenate in order into the final flat index.
struct TsdChunk {
  std::vector<VertexId> edge_u;
  std::vector<VertexId> edge_v;
  std::vector<std::uint32_t> weight;
  std::vector<std::uint32_t> per_vertex_count;
  std::uint32_t max_weight = 0;
  double extraction_seconds = 0;
  double decomposition_seconds = 0;
  double assembly_seconds = 0;
};

}  // namespace

TsdIndex TsdIndex::Build(const Graph& graph, const Options& options) {
  TSD_CHECK(options.num_threads >= 1);
  WallTimer total;
  TsdIndex index;
  const VertexId n = graph.num_vertices();
  std::vector<std::uint64_t> offsets(std::size_t{n} + 1, 0);
  std::vector<VertexId> edge_u;
  std::vector<VertexId> edge_v;
  std::vector<std::uint32_t> weight;

  const std::uint32_t num_chunks =
      EffectiveChunks(ParallelConfig{options.num_threads, 0}, n);
  std::vector<TsdChunk> chunks(num_chunks);

  ParallelForChunks(
      n, num_chunks, options.num_threads,
      [&](std::uint32_t c, std::uint64_t begin, std::uint64_t end) {
        TsdChunk& chunk = chunks[c];
        chunk.per_vertex_count.reserve(end - begin);
        EgoNetworkExtractor extractor(graph);
        EgoTrussDecomposer decomposer(options.method);
        EgoNetwork ego;
        DisjointSet dsu;
        for (std::uint64_t v = begin; v < end; ++v) {
          {
            ScopedTimer t(&chunk.extraction_seconds);
            extractor.ExtractInto(static_cast<VertexId>(v), &ego);
          }
          std::vector<std::uint32_t> trussness;
          {
            ScopedTimer t(&chunk.decomposition_seconds);
            trussness = decomposer.Compute(ego);
          }
          ScopedTimer t(&chunk.assembly_seconds);
          const std::size_t before = chunk.edge_u.size();
          internal::MaximumSpanningForest(
              ego, trussness, dsu,
              [&](VertexId gu, VertexId gv, std::uint32_t w) {
                chunk.edge_u.push_back(gu);
                chunk.edge_v.push_back(gv);
                chunk.weight.push_back(w);
                chunk.max_weight = std::max(chunk.max_weight, w);
              });
          chunk.per_vertex_count.push_back(
              static_cast<std::uint32_t>(chunk.edge_u.size() - before));
        }
      });

  // Merge chunks in order (chunk c covers a contiguous ascending vertex
  // range, so concatenation preserves the per-vertex layout).
  VertexId v = 0;
  for (TsdChunk& chunk : chunks) {
    for (std::uint32_t count : chunk.per_vertex_count) {
      offsets[v + 1] = offsets[v] + count;
      ++v;
    }
    edge_u.insert(edge_u.end(), chunk.edge_u.begin(), chunk.edge_u.end());
    edge_v.insert(edge_v.end(), chunk.edge_v.begin(), chunk.edge_v.end());
    weight.insert(weight.end(), chunk.weight.begin(), chunk.weight.end());
    index.max_weight_ = std::max(index.max_weight_, chunk.max_weight);
    index.build_stats_.extraction_seconds += chunk.extraction_seconds;
    index.build_stats_.decomposition_seconds += chunk.decomposition_seconds;
    index.build_stats_.assembly_seconds += chunk.assembly_seconds;
  }
  TSD_CHECK(v == n);
  index.offsets_ = std::move(offsets);
  index.edge_u_ = std::move(edge_u);
  index.edge_v_ = std::move(edge_v);
  index.weight_ = std::move(weight);
  index.build_stats_.total_seconds = total.Seconds();
  return index;
}

std::uint32_t TsdIndex::Score(VertexId v, std::uint32_t k,
                              IndexQueryScratch& scratch) const {
  TSD_CHECK(k >= 2);
  TSD_CHECK(v < num_vertices());
  const std::uint64_t begin = offsets_[v];
  const std::uint64_t end = offsets_[v + 1];

  // Count qualified edges and distinct endpoints; the forest property gives
  // score = |endpoints| - |edges|.
  scratch.ids.Begin(num_vertices());
  std::uint32_t edges = 0;
  for (std::uint64_t i = begin; i < end && weight_[i] >= k; ++i) {
    ++edges;
    scratch.ids.Insert(edge_u_[i]);
    scratch.ids.Insert(edge_v_[i]);
  }
  return scratch.ids.size() - edges;
}

ScoreResult TsdIndex::ScoreWithContexts(VertexId v, std::uint32_t k,
                                        IndexQueryScratch& scratch) const {
  TSD_CHECK(k >= 2);
  TSD_CHECK(v < num_vertices());
  const std::uint64_t begin = offsets_[v];
  const std::uint64_t end = offsets_[v + 1];

  // Map touched global endpoints to dense local ids.
  scratch.ids.Begin(num_vertices());
  std::uint64_t qualified_end = begin;
  for (std::uint64_t i = begin; i < end && weight_[i] >= k; ++i) {
    scratch.ids.Insert(edge_u_[i]);
    scratch.ids.Insert(edge_v_[i]);
    qualified_end = i + 1;
  }
  const std::vector<VertexId>& global = scratch.ids.keys();

  scratch.dsu.Reset(global.size());
  for (std::uint64_t i = begin; i < qualified_end; ++i) {
    scratch.dsu.Union(scratch.ids.Insert(edge_u_[i]),
                      scratch.ids.Insert(edge_v_[i]));
  }

  // Roots map to context slots through a dense root→slot vector in
  // first-occurrence order; members sorted per context and contexts ordered
  // by smallest member, exactly as before.
  constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);
  scratch.slots.assign(global.size(), kNoSlot);
  ScoreResult result;
  for (std::uint32_t i = 0; i < global.size(); ++i) {
    const std::uint32_t root = scratch.dsu.Find(i);
    if (scratch.slots[root] == kNoSlot) {
      scratch.slots[root] = static_cast<std::uint32_t>(result.contexts.size());
      result.contexts.emplace_back();
    }
    result.contexts[scratch.slots[root]].push_back(global[i]);
  }
  result.score = static_cast<std::uint32_t>(result.contexts.size());
  for (SocialContext& context : result.contexts) {
    std::sort(context.begin(), context.end());
  }
  std::sort(result.contexts.begin(), result.contexts.end(),
            [](const SocialContext& a, const SocialContext& b) {
              return a.front() < b.front();
            });
  return result;
}

void TsdIndex::ScoresForThresholds(VertexId v,
                                   std::span<const std::uint32_t> thresholds,
                                   IndexQueryScratch& scratch,
                                   std::uint32_t* scores) const {
  TSD_DCHECK(v < num_vertices());
  const std::uint64_t end = offsets_[v + 1];
  // Weights are sorted descending, so the qualified prefix only grows as
  // the threshold drops: one sweep serves every k.
  scratch.ids.Begin(num_vertices());
  std::uint64_t i = offsets_[v];
  std::uint32_t edges = 0;
  for (std::size_t t = 0; t < thresholds.size(); ++t) {
    const std::uint32_t k = thresholds[t];
    TSD_DCHECK(t == 0 || thresholds[t - 1] > k);
    while (i < end && weight_[i] >= k) {
      ++edges;
      scratch.ids.Insert(edge_u_[i]);
      scratch.ids.Insert(edge_v_[i]);
      ++i;
    }
    scores[t] = scratch.ids.size() - edges;
  }
}

std::uint32_t TsdIndex::ScoreUpperBound(VertexId v, std::uint32_t k) const {
  TSD_DCHECK(k >= 2);
  TSD_DCHECK(v < num_vertices());
  const std::uint64_t begin = offsets_[v];
  const std::uint64_t end = offsets_[v + 1];
  // Weights are sorted descending: binary search the first weight < k.
  // std::lower_bound with greater-equal predicate over the reversed notion:
  auto first = weight_.begin() + begin;
  auto last = weight_.begin() + end;
  const auto it = std::partition_point(
      first, last, [k](std::uint32_t w) { return w >= k; });
  const auto qualified = static_cast<std::uint32_t>(it - first);
  // A maximal connected k-truss contributes at least k-1 forest edges.
  return qualified / (k - 1);
}

TopRResult TsdIndex::TopR(std::uint32_t r, std::uint32_t k,
                          QuerySession& session) const {
  TSD_CHECK(r >= 1);
  TSD_CHECK(k >= 2);
  WallTimer total;
  TopRResult result;
  const VertexId n = num_vertices();

  // Index-only pipeline: the kernels below read the forest arrays and never
  // touch an ego-network, so workspaces carry no extractor.
  QueryPipeline& pipeline = session.IndexPipeline();

  std::vector<std::uint32_t> bounds;
  {
    ScopedTimer t(&result.stats.preprocess_seconds);
    pipeline.MapScores(n, &bounds, [&](QueryWorkspace&, VertexId v) {
      return ScoreUpperBound(v, k);
    });
  }

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return bounds[a] > bounds[b];
  });

  TopRCollector collector(r);
  {
    ScopedTimer t(&result.stats.score_seconds);
    result.stats.vertices_scored = pipeline.ScoreOrdered(
        order, bounds, &collector, [&](QueryWorkspace& ws, VertexId v) {
          return Score(v, k, ws.index_scratch());
        });
  }

  {
    ScopedTimer t(&result.stats.context_seconds);
    pipeline.MaterializeEntries(
        collector.Ranked(), &result.entries,
        [&](QueryWorkspace& ws, VertexId v) {
          return ScoreWithContexts(v, k, ws.index_scratch()).contexts;
        });
  }
  result.stats.threads_used = pipeline.num_threads();
  result.stats.total_seconds = total.Seconds();
  return result;
}

std::vector<TopRResult> TsdIndex::SearchBatch(
    std::span<const BatchQuery> queries, QuerySession& session) const {
  WallTimer total;
  std::vector<TopRResult> results(queries.size());
  if (queries.empty()) return results;
  SearchStats stats;
  BatchQueryRunner runner(queries);
  QueryPipeline& pipeline = session.IndexPipeline();

  // One forest-slice sweep per vertex answers every threshold. When every
  // query's r is small, most of those sweeps are wasted on vertices that
  // can never rank, and a single bound order serves the whole batch: the
  // s̃core bound qualified(k)/(k-1) is non-increasing in k, so the bound at
  // the smallest requested k dominates every query's score and the shared
  // ordered scan can stop as soon as every collector can prune. With large
  // r the scan visits nearly everything anyway and the O(n log n) ordering
  // would not pay for itself, so the batch falls back to the full range;
  // entries are bit-identical either way.
  const VertexId n = num_vertices();
  const bool ordered = runner.total_r() * 64 <= n;
  auto score_fn = [this, &runner](QueryWorkspace& ws, VertexId v,
                                  std::uint32_t* out) {
    ScoresForThresholds(v, runner.thresholds(), ws.index_scratch(), out);
  };
  std::vector<std::uint32_t> bounds;
  std::vector<VertexId> order;
  if (ordered) {
    ScopedTimer t(&stats.preprocess_seconds);
    const std::uint32_t k_min = runner.thresholds().back();
    pipeline.MapScores(n, &bounds, [&](QueryWorkspace&, VertexId v) {
      return ScoreUpperBound(v, k_min);
    });
    order.resize(n);
    std::iota(order.begin(), order.end(), 0U);
    std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
      return bounds[a] > bounds[b];
    });
  }
  {
    ScopedTimer t(&stats.score_seconds);
    stats.vertices_scored =
        ordered ? runner.ScanOrdered(pipeline, order, bounds, score_fn)
                : runner.Scan(pipeline, n, score_fn);
  }

  {
    ScopedTimer t(&stats.context_seconds);
    runner.MaterializeGrouped(
        pipeline, &results, [](QueryWorkspace&, VertexId) {},
        [this](QueryWorkspace& ws, VertexId v, std::uint32_t k) {
          return ScoreWithContexts(v, k, ws.index_scratch()).contexts;
        });
  }

  stats.threads_used = pipeline.num_threads();
  stats.total_seconds = total.Seconds();
  FillBatchStats(&results, stats);
  return results;
}

std::size_t TsdIndex::SizeBytes() const {
  return offsets_.size() * sizeof(std::uint64_t) +
         edge_u_.size() * sizeof(VertexId) +
         edge_v_.size() * sizeof(VertexId) +
         weight_.size() * sizeof(std::uint32_t);
}

void TsdIndex::Save(const std::string& path) const {
  SnapshotWriter writer(path);
  AppendToSnapshot(writer);
  writer.Finish();
}

TsdIndex TsdIndex::Load(const std::string& path) {
  SnapshotReader reader;
  std::string error;
  TSD_CHECK_MSG(SnapshotReader::Open(path, &reader, &error), error);
  TsdIndex index;
  TSD_CHECK_MSG(LoadFromSnapshot(reader, &index, &error), error);
  return index;
}

void TsdIndex::AppendToSnapshot(SnapshotWriter& writer) const {
  const std::uint64_t meta[] = {kTsdSchemaVersion, num_vertices(),
                                max_weight_};
  writer.AddScalars(kTsdMetaTag, meta);
  writer.AddArray(kTsdOffsetsTag, offsets_.span());
  writer.AddArray(kTsdEdgeUTag, edge_u_.span());
  writer.AddArray(kTsdEdgeVTag, edge_v_.span());
  writer.AddArray(kTsdWeightTag, weight_.span());
}

bool TsdIndex::LoadFromSnapshot(const SnapshotReader& reader, TsdIndex* out,
                                std::string* error) {
  *out = TsdIndex();

  std::uint64_t meta[3] = {};
  if (!reader.ReadScalars(kTsdMetaTag, meta, error)) return false;
  if (meta[0] != kTsdSchemaVersion) {
    return Fail(error, "unsupported TSD schema version " +
                           std::to_string(meta[0]) + " (this build reads " +
                           std::to_string(kTsdSchemaVersion) + ")");
  }
  if (meta[1] > kInvalidVertex) return Fail(error, "vertex count overflow");
  const auto n = static_cast<VertexId>(meta[1]);
  const auto max_weight = static_cast<std::uint32_t>(meta[2]);

  std::span<const std::uint64_t> offsets;
  std::span<const VertexId> edge_u;
  std::span<const VertexId> edge_v;
  std::span<const std::uint32_t> weight;
  if (!reader.Read(kTsdOffsetsTag, &offsets, error) ||
      !reader.Read(kTsdEdgeUTag, &edge_u, error) ||
      !reader.Read(kTsdEdgeVTag, &edge_v, error) ||
      !reader.Read(kTsdWeightTag, &weight, error)) {
    return false;
  }

  if (offsets.size() != std::size_t{n} + 1) {
    return Fail(error, "offsets size mismatch");
  }
  const std::size_t total = weight.size();
  if (edge_u.size() != total || edge_v.size() != total) {
    return Fail(error, "forest arrays size mismatch");
  }
  if (offsets[0] != 0 || offsets[n] != total) {
    return Fail(error, "offsets do not span the forest arrays");
  }
  std::uint32_t seen_max_weight = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Fail(error, "offsets not monotone");
    }
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (edge_u[i] >= n || edge_v[i] >= n) {
        return Fail(error, "forest endpoint out of range");
      }
      // Per-slice weight order is what Score's early exit and
      // ScoreUpperBound's partition_point rely on.
      if (i > offsets[v] && weight[i - 1] < weight[i]) {
        return Fail(error, "forest slice not sorted by weight descending");
      }
      seen_max_weight = std::max(seen_max_weight, weight[i]);
    }
  }
  if (seen_max_weight != max_weight) {
    return Fail(error, "max weight mismatch");
  }

  out->offsets_.BindView(offsets);
  out->edge_u_.BindView(edge_u);
  out->edge_v_.BindView(edge_v);
  out->weight_.BindView(weight);
  out->max_weight_ = max_weight;
  out->mapping_ = reader.mapping();
  return true;
}

}  // namespace tsd
