// GCT-index — the paper's Section 6 contribution.
//
// GCT compresses the TSD forest of every ego-network into supernodes and
// superedges: a supernode groups the member vertices that are connected via
// edges of one trussness level inside one social context; superedges record
// how contexts of different levels attach to each other. Construction uses
// the two Section 6.2 accelerations — one-shot global triangle listing for
// ego-network extraction and bitmap-based truss decomposition — and queries
// reduce to Lemma 3:
//
//     score(v) = N_k − M_k
//
// where N_k / M_k count supernodes with trussness ≥ k and superedges with
// weight ≥ k. Both slices are stored sorted descending, so a score query is
// two binary searches.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/mmap_file.h"
#include "common/snapshot.h"
#include "core/query_scratch.h"
#include "core/query_session.h"
#include "core/scoring.h"
#include "core/tsd_index.h"
#include "core/types.h"
#include "graph/ego_network.h"
#include "truss/ego_truss.h"

namespace tsd {

class GctIndex : public DiversitySearcher {
 public:
  struct Options {
    /// Ego truss decomposition kernel. The paper's GCT uses the bitmap
    /// kernel; kHash is kept for the Table 4 ablation.
    EgoTrussMethod method = EgoTrussMethod::kBitmap;
    /// Use the one-shot global triangle listing for ego-network extraction
    /// (Section 6.2). Disable for the Table 4 ablation.
    bool use_global_listing = true;
    /// Worker threads for construction (per-vertex work is independent;
    /// the result is bit-identical to the sequential build). With >1
    /// threads the per-phase timings in build_stats() are summed across
    /// workers (CPU time, not wall time).
    std::uint32_t num_threads = 1;
  };

  /// Builds the GCT-index of `graph` (Algorithms 7 + 8).
  static GctIndex Build(const Graph& graph, const Options& options);
  static GctIndex Build(const Graph& graph) { return Build(graph, Options()); }

  /// score(v) at threshold k via Lemma 3 (two binary searches).
  std::uint32_t Score(VertexId v, std::uint32_t k) const;

  /// score(v) at every threshold of `thresholds` (strictly descending) via
  /// one merged sweep of the supernode and superedge slices — the
  /// batch-query kernel.
  void ScoresForThresholds(VertexId v,
                           std::span<const std::uint32_t> thresholds,
                           std::uint32_t* scores) const;

  /// Score plus materialized social contexts (union of supernode member
  /// lists over the superedge forest). The scratch overload is
  /// allocation-free in the steady state apart from the returned contexts.
  ScoreResult ScoreWithContexts(VertexId v, std::uint32_t k,
                                IndexQueryScratch& scratch) const;
  ScoreResult ScoreWithContexts(VertexId v, std::uint32_t k) const {
    IndexQueryScratch scratch;
    return ScoreWithContexts(v, k, scratch);
  }

  using DiversitySearcher::SearchBatch;
  using DiversitySearcher::TopR;

  /// Index-based top-r search (exact scores are cheap, so no pruning bound
  /// is needed; the full scan is O(n log)). The index is immutable, so
  /// concurrent sessions may query one shared instance.
  TopRResult TopR(std::uint32_t r, std::uint32_t k,
                  QuerySession& session) const override;

  /// Amortized batch path: one slice sweep per vertex scores every
  /// requested threshold (bit-identical to per-query TopR).
  std::vector<TopRResult> SearchBatch(std::span<const BatchQuery> queries,
                                      QuerySession& session) const override;

  std::string name() const override { return "GCT"; }

  VertexId num_vertices() const {
    return static_cast<VertexId>(sn_offsets_.size() - 1);
  }

  std::uint32_t NumSupernodes(VertexId v) const {
    return static_cast<std::uint32_t>(sn_offsets_[v + 1] - sn_offsets_[v]);
  }
  std::uint32_t NumSuperedges(VertexId v) const {
    return static_cast<std::uint32_t>(se_offsets_[v + 1] - se_offsets_[v]);
  }

  /// Maximum supernode trussness anywhere (== max ego-network trussness).
  std::uint32_t max_trussness() const { return max_trussness_; }

  std::size_t SizeBytes() const;
  IndexBuildStats build_stats() const { return build_stats_; }

  /// Saves a single-object snapshot (common/snapshot.h container) holding
  /// just this index. Load() throws tsd::CheckError on any malformed file —
  /// legacy semantics kept for callers that treat the path as trusted.
  void Save(const std::string& path) const;
  static GctIndex Load(const std::string& path);

  /// Writes the supernode/superedge arrays into an open snapshot ("gctx.*"
  /// tags), for combined files that also carry the graph and/or the TSD.
  void AppendToSnapshot(SnapshotWriter& writer) const;

  /// Binds an index to the "gctx.*" sections of a mapped snapshot —
  /// zero-copy, validated; false + `*error` on any inconsistency.
  [[nodiscard]] static bool LoadFromSnapshot(const SnapshotReader& reader,
                                             GctIndex* out,
                                             std::string* error);

  /// True when the index arrays are views into a mapped snapshot.
  bool is_mapped() const { return mapping_ != nullptr; }

  /// Internal invariant check, exposed for tests: verifies per-vertex
  /// supernode/superedge ordering, forest acyclicity, and that superedge
  /// weights are ≤ both endpoint trussnesses and < at least one of them.
  void CheckInvariants() const;

 private:
  // Supernodes, flattened vertex-major; each vertex's slice is sorted by
  // trussness descending (ties: ascending smallest member). All offset
  // arrays are 32-bit — the totals are bounded by 2m, which the build
  // checks — which is what makes GCT the compact index of the pair.
  FlatArray<std::uint32_t> sn_offsets_;      // size n+1, into sn_tau_
  FlatArray<std::uint32_t> sn_tau_;          // trussness per supernode
  FlatArray<std::uint32_t> member_offsets_;  // size |sn_tau_|+1
  FlatArray<VertexId> members_;              // sorted global ids

  // Superedges, flattened vertex-major; each slice sorted by weight
  // descending. Endpoints are indices into the vertex's supernode slice.
  FlatArray<std::uint32_t> se_offsets_;  // size n+1
  FlatArray<std::uint32_t> se_a_;
  FlatArray<std::uint32_t> se_b_;
  FlatArray<std::uint32_t> se_w_;

  std::uint32_t max_trussness_ = 0;
  IndexBuildStats build_stats_;
  // Keeps the snapshot mapping alive while the arrays view into it.
  std::shared_ptr<const MappedFile> mapping_;
};

}  // namespace tsd
