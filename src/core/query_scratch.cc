#include "core/query_scratch.h"

#include <algorithm>

namespace tsd {

void MultiKEgoScorer::Compute(const EgoNetwork& ego,
                              const std::vector<std::uint32_t>& trussness,
                              std::span<const std::uint32_t> thresholds,
                              std::uint32_t* scores) {
  TSD_DCHECK(trussness.size() == ego.edges.size());
  const std::uint32_t l = ego.num_members();
  const std::uint32_t m = ego.num_edges();
  dsu_.Reset(l);
  touched_.assign(l, 0);

  // Edge ids in descending trussness order (counting sort, reused buffers).
  std::uint32_t max_w = 0;
  for (std::uint32_t w : trussness) max_w = std::max(max_w, w);
  bucket_.assign(max_w + 2, 0);
  for (std::uint32_t w : trussness) ++bucket_[w];
  {
    std::uint32_t cursor = 0;
    for (std::uint32_t w = max_w + 1; w-- > 0;) {
      const std::uint32_t count = bucket_[w];
      bucket_[w] = cursor;
      cursor += count;
    }
  }
  sorted_edges_.resize(m);
  for (EdgeId e = 0; e < m; ++e) {
    sorted_edges_[bucket_[trussness[e]]++] = e;
  }

  std::uint32_t touched_count = 0;
  std::uint32_t union_count = 0;
  std::uint32_t cursor = 0;
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const std::uint32_t k = thresholds[i];
    TSD_DCHECK(i == 0 || thresholds[i - 1] > k);
    while (cursor < m && trussness[sorted_edges_[cursor]] >= k) {
      const auto [u, v] = ego.edges[sorted_edges_[cursor]];
      if (dsu_.Union(u, v)) ++union_count;
      for (std::uint32_t endpoint : {u, v}) {
        if (!touched_[endpoint]) {
          touched_[endpoint] = 1;
          ++touched_count;
        }
      }
      ++cursor;
    }
    scores[i] = touched_count - union_count;
  }
}

}  // namespace tsd
