// Out-of-line pieces of the session API: the DiversitySearcher convenience
// overloads live here (types.h only forward-declares QuerySession, keeping
// the result types header free of pipeline machinery).
#include "core/query_session.h"

#include "core/types.h"

namespace tsd {

DiversitySearcher::DiversitySearcher() = default;
DiversitySearcher::~DiversitySearcher() = default;
DiversitySearcher::DiversitySearcher(DiversitySearcher&&) noexcept = default;
DiversitySearcher& DiversitySearcher::operator=(DiversitySearcher&&) noexcept =
    default;

QuerySession& DiversitySearcher::default_session() {
  if (default_session_ == nullptr) {
    default_session_ = std::make_unique<QuerySession>(query_options_);
  } else {
    default_session_->set_options(query_options_);
  }
  return *default_session_;
}

TopRResult DiversitySearcher::TopR(std::uint32_t r, std::uint32_t k) {
  return TopR(r, k, default_session());
}

std::vector<TopRResult> DiversitySearcher::SearchBatch(
    std::span<const BatchQuery> queries) {
  return SearchBatch(queries, default_session());
}

}  // namespace tsd
