#include "core/dynamic_tsd_index.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/check.h"
#include "common/disjoint_set.h"
#include "common/timer.h"
#include "core/batch_query.h"
#include "core/max_spanning_forest.h"
#include "core/query_pipeline.h"
#include "core/top_r_collector.h"

namespace tsd {

DynamicTsdIndex::DynamicTsdIndex(const Graph& initial, EgoTrussMethod method)
    : graph_(initial), method_(method), forest_(initial.num_vertices()) {
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    RebuildVertex(v);
  }
  rebuild_count_ = 0;  // construction does not count as maintenance
}

void DynamicTsdIndex::ExtractEgo(VertexId center, EgoNetwork* out) const {
  out->center = center;
  const auto nbrs = graph_.neighbors(center);
  out->members.assign(nbrs.begin(), nbrs.end());
  out->edges.clear();
  out->offsets.clear();
  out->adj.clear();
  out->adj_edge_ids.clear();
  // Members are few; a per-call sorted lookup is fine for maintenance work.
  for (std::uint32_t i = 0; i < out->members.size(); ++i) {
    const VertexId u = out->members[i];
    for (VertexId w : graph_.neighbors(u)) {
      if (w <= u) continue;
      const std::uint32_t j = out->ToLocal(w);
      if (j != kInvalidVertex) out->edges.push_back(Edge{i, j});
    }
  }
  std::sort(out->edges.begin(), out->edges.end());
}

void DynamicTsdIndex::RebuildVertex(VertexId v) {
  ++rebuild_count_;
  EgoNetwork ego;
  ExtractEgo(v, &ego);
  EgoTrussDecomposer decomposer(method_);
  const std::vector<std::uint32_t> trussness = decomposer.Compute(ego);

  auto& edges = forest_[v];
  edges.clear();
  DisjointSet dsu;
  internal::MaximumSpanningForest(
      ego, trussness, dsu, [&](VertexId gu, VertexId gv, std::uint32_t w) {
        edges.push_back(ForestEdge{gu, gv, w});
      });
}

bool DynamicTsdIndex::InsertEdge(VertexId u, VertexId v) {
  if (!graph_.InsertEdge(u, v)) return false;
  // Affected ego-networks: u, v, and every common neighbor (whose ego just
  // gained the edge (u, v)). Common neighbors are unchanged by the insert
  // itself, so computing them after the insert is equivalent.
  for (VertexId w : graph_.CommonNeighbors(u, v)) RebuildVertex(w);
  RebuildVertex(u);
  RebuildVertex(v);
  return true;
}

bool DynamicTsdIndex::RemoveEdge(VertexId u, VertexId v) {
  if (u >= graph_.num_vertices() || v >= graph_.num_vertices() ||
      !graph_.HasEdge(u, v)) {
    return false;
  }
  const std::vector<VertexId> affected = graph_.CommonNeighbors(u, v);
  graph_.RemoveEdge(u, v);
  for (VertexId w : affected) RebuildVertex(w);
  RebuildVertex(u);
  RebuildVertex(v);
  return true;
}

VertexId DynamicTsdIndex::AddVertex() {
  const VertexId v = graph_.AddVertex();
  forest_.emplace_back();
  return v;
}

std::uint32_t DynamicTsdIndex::Score(VertexId v, std::uint32_t k) const {
  TSD_CHECK(k >= 2);
  TSD_CHECK(v < forest_.size());
  std::unordered_map<VertexId, std::uint32_t> seen;
  std::uint32_t edges = 0;
  for (const ForestEdge& e : forest_[v]) {
    if (e.weight < k) break;  // sorted descending
    ++edges;
    seen.emplace(e.u, 0);
    seen.emplace(e.v, 0);
  }
  return static_cast<std::uint32_t>(seen.size()) - edges;
}

ScoreResult DynamicTsdIndex::ScoreWithContexts(VertexId v,
                                               std::uint32_t k) const {
  TSD_CHECK(k >= 2);
  TSD_CHECK(v < forest_.size());
  std::unordered_map<VertexId, std::uint32_t> local;
  std::vector<VertexId> global;
  std::size_t qualified = 0;
  for (const ForestEdge& e : forest_[v]) {
    if (e.weight < k) break;
    ++qualified;
    for (VertexId endpoint : {e.u, e.v}) {
      if (local.emplace(endpoint, global.size()).second) {
        global.push_back(endpoint);
      }
    }
  }
  DisjointSet dsu(global.size());
  for (std::size_t i = 0; i < qualified; ++i) {
    dsu.Union(local[forest_[v][i].u], local[forest_[v][i].v]);
  }
  std::unordered_map<std::uint32_t, SocialContext> by_root;
  for (std::uint32_t i = 0; i < global.size(); ++i) {
    by_root[dsu.Find(i)].push_back(global[i]);
  }
  ScoreResult result;
  result.score = static_cast<std::uint32_t>(by_root.size());
  for (auto& [root, members] : by_root) {
    std::sort(members.begin(), members.end());
    result.contexts.push_back(std::move(members));
  }
  std::sort(result.contexts.begin(), result.contexts.end(),
            [](const SocialContext& a, const SocialContext& b) {
              return a.front() < b.front();
            });
  return result;
}

std::uint32_t DynamicTsdIndex::ScoreUpperBound(VertexId v,
                                               std::uint32_t k) const {
  TSD_DCHECK(k >= 2);
  const auto& edges = forest_[v];
  const auto it = std::partition_point(
      edges.begin(), edges.end(),
      [k](const ForestEdge& e) { return e.weight >= k; });
  return static_cast<std::uint32_t>(it - edges.begin()) / (k - 1);
}

void DynamicTsdIndex::ScoresForThresholds(
    VertexId v, std::span<const std::uint32_t> thresholds,
    IndexQueryScratch& scratch, std::uint32_t* scores) const {
  TSD_DCHECK(v < forest_.size());
  const auto& edges = forest_[v];
  // Weights are sorted descending, so the qualified prefix only grows as
  // the threshold drops: one sweep serves every k (same discipline as
  // TsdIndex::ScoresForThresholds, over the maintained forest slice).
  scratch.ids.Begin(graph_.num_vertices());
  std::size_t i = 0;
  std::uint32_t qualified = 0;
  for (std::size_t t = 0; t < thresholds.size(); ++t) {
    const std::uint32_t k = thresholds[t];
    TSD_DCHECK(t == 0 || thresholds[t - 1] > k);
    while (i < edges.size() && edges[i].weight >= k) {
      ++qualified;
      scratch.ids.Insert(edges[i].u);
      scratch.ids.Insert(edges[i].v);
      ++i;
    }
    scores[t] = scratch.ids.size() - qualified;
  }
}

TopRResult DynamicTsdIndex::TopR(std::uint32_t r, std::uint32_t k,
                                 QuerySession& session) const {
  TSD_CHECK(r >= 1);
  TSD_CHECK(k >= 2);
  WallTimer total;
  TopRResult result;
  const VertexId n = graph_.num_vertices();

  // Index-only pipeline, like the frozen TsdIndex.
  QueryPipeline& pipeline = session.IndexPipeline();
  std::vector<std::uint32_t> bounds;
  pipeline.MapScores(n, &bounds, [&](QueryWorkspace&, VertexId v) {
    return ScoreUpperBound(v, k);
  });
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return bounds[a] > bounds[b];
  });

  TopRCollector collector(r);
  result.stats.vertices_scored = pipeline.ScoreOrdered(
      order, bounds, &collector,
      [&](QueryWorkspace&, VertexId v) { return Score(v, k); });
  pipeline.MaterializeEntries(
      collector.Ranked(), &result.entries, [&](QueryWorkspace&, VertexId v) {
        return ScoreWithContexts(v, k).contexts;
      });
  result.stats.threads_used = pipeline.num_threads();
  result.stats.total_seconds = total.Seconds();
  return result;
}

std::vector<TopRResult> DynamicTsdIndex::SearchBatch(
    std::span<const BatchQuery> queries, QuerySession& session) const {
  WallTimer total;
  std::vector<TopRResult> results(queries.size());
  if (queries.empty()) return results;
  SearchStats stats;
  BatchQueryRunner runner(queries);
  QueryPipeline& pipeline = session.IndexPipeline();

  // One forest-slice sweep per vertex answers every threshold (the TSD
  // multi-k discipline over the dynamic forest slices); with exact multi-k
  // scores this cheap, the bound ordering would not pay, so the batch path
  // scans the full range.
  {
    ScopedTimer t(&stats.score_seconds);
    stats.vertices_scored = runner.Scan(
        pipeline, graph_.num_vertices(),
        [this, &runner](QueryWorkspace& ws, VertexId v, std::uint32_t* out) {
          ScoresForThresholds(v, runner.thresholds(), ws.index_scratch(), out);
        });
  }

  {
    ScopedTimer t(&stats.context_seconds);
    runner.MaterializeGrouped(
        pipeline, &results, [](QueryWorkspace&, VertexId) {},
        [this](QueryWorkspace&, VertexId v, std::uint32_t k) {
          return ScoreWithContexts(v, k).contexts;
        });
  }

  stats.threads_used = pipeline.num_threads();
  stats.total_seconds = total.Seconds();
  FillBatchStats(&results, stats);
  return results;
}

TsdIndex DynamicTsdIndex::Freeze() const {
  TsdIndex index;
  const VertexId n = graph_.num_vertices();
  std::vector<std::uint64_t> offsets(std::size_t{n} + 1, 0);
  std::vector<VertexId> edge_u;
  std::vector<VertexId> edge_v;
  std::vector<std::uint32_t> weight;
  for (VertexId v = 0; v < n; ++v) {
    for (const ForestEdge& e : forest_[v]) {
      edge_u.push_back(e.u);
      edge_v.push_back(e.v);
      weight.push_back(e.weight);
      index.max_weight_ = std::max(index.max_weight_, e.weight);
    }
    offsets[v + 1] = edge_u.size();
  }
  index.offsets_ = std::move(offsets);
  index.edge_u_ = std::move(edge_u);
  index.edge_v_ = std::move(edge_v);
  index.weight_ = std::move(weight);
  return index;
}

}  // namespace tsd
