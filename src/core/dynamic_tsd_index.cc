#include "core/dynamic_tsd_index.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/timer.h"
#include "core/batch_query.h"
#include "core/max_spanning_forest.h"
#include "core/query_pipeline.h"
#include "core/top_r_collector.h"

namespace tsd {

DynamicTsdIndex::DynamicTsdIndex(const Graph& initial, EgoTrussMethod method)
    : graph_(initial), method_(method), maint_decomposer_(method) {
  // Construction is single-threaded: this thread is trivially the
  // serialized updater, and no reader can hold a pin yet.
  updater_role_.Assert();
  const VertexId n = graph_.num_vertices();
  auto* table = new SliceTable(std::max<std::size_t>(n, 1));
  view_.store(new ForestView{n, table}, std::memory_order_release);
  for (VertexId v = 0; v < n; ++v) {
    RebuildVertex(v);
  }
  rebuild_count_.store(0, std::memory_order_relaxed);  // construction does
                                                       // not count
}

DynamicTsdIndex::~DynamicTsdIndex() {
  // Owner contract: no readers or updaters in flight. The epoch manager's
  // destructor frees whatever is still in limbo; only the live view and its
  // slices are freed here.
  ForestView* view = view_.load(std::memory_order_relaxed);
  for (VertexId v = 0; v < view->num_vertices; ++v) {
    delete view->table->slots[v].load(std::memory_order_relaxed);
  }
  delete view->table;
  delete view;
}

void DynamicTsdIndex::ExtractEgo(VertexId center, EgoNetwork* out) const {
  out->center = center;
  const auto nbrs = graph_.neighbors(center);
  out->members.assign(nbrs.begin(), nbrs.end());
  out->edges.clear();
  out->offsets.clear();
  out->adj.clear();
  out->adj_edge_ids.clear();
  // Members are few; a per-call sorted lookup is fine for maintenance work.
  for (std::uint32_t i = 0; i < out->members.size(); ++i) {
    const VertexId u = out->members[i];
    for (VertexId w : graph_.neighbors(u)) {
      if (w <= u) continue;
      const std::uint32_t j = out->ToLocal(w);
      if (j != kInvalidVertex) out->edges.push_back(Edge{i, j});
    }
  }
  std::sort(out->edges.begin(), out->edges.end());
}

void DynamicTsdIndex::RebuildVertex(VertexId v) {
  rebuild_count_.fetch_add(1, std::memory_order_relaxed);
  ExtractEgo(v, &maint_ego_);
  maint_decomposer_.ComputeInto(maint_ego_, &maint_trussness_);

  auto* slice = new ForestSlice;
  slice->universe = graph_.num_vertices();
  internal::MaximumSpanningForest(
      maint_ego_, maint_trussness_, maint_dsu_,
      [&](VertexId gu, VertexId gv, std::uint32_t w) {
        slice->edges.push_back(ForestEdge{gu, gv, w});
      });

  // Publish the fresh slice; the displaced one stays readable until its
  // grace period passes. Serialized with all other writer-side calls by the
  // updater contract this function already requires.
  epochs_.AssertWriter();
  ForestView* view = view_.load(std::memory_order_relaxed);
  const ForestSlice* old = view->table->slots[v].load(std::memory_order_relaxed);
  view->table->slots[v].store(slice, std::memory_order_release);
  if (old != nullptr) epochs_.Retire(old);
}

bool DynamicTsdIndex::InsertEdge(VertexId u, VertexId v) {
  // Serialized-updater contract (class comment): the caller serializes all
  // update entry points, so this thread is the updater for this call.
  updater_role_.Assert();
  epochs_.AssertWriter();
  if (u == v || u >= graph_.num_vertices() || v >= graph_.num_vertices()) {
    return false;  // rejected, symmetric with RemoveEdge — never a crash
  }
  if (!graph_.InsertEdge(u, v)) return false;
  // Affected ego-networks: u, v, and every common neighbor (whose ego just
  // gained the edge (u, v)). Common neighbors are unchanged by the insert
  // itself, so computing them after the insert is equivalent.
  for (VertexId w : graph_.CommonNeighbors(u, v)) RebuildVertex(w);
  RebuildVertex(u);
  RebuildVertex(v);
  epochs_.TryAdvance();  // opportunistic; a pinned reader just defers frees
  return true;
}

bool DynamicTsdIndex::RemoveEdge(VertexId u, VertexId v) {
  // Serialized-updater contract (class comment).
  updater_role_.Assert();
  epochs_.AssertWriter();
  if (u >= graph_.num_vertices() || v >= graph_.num_vertices() ||
      !graph_.HasEdge(u, v)) {
    return false;
  }
  const std::vector<VertexId> affected = graph_.CommonNeighbors(u, v);
  graph_.RemoveEdge(u, v);
  for (VertexId w : affected) RebuildVertex(w);
  RebuildVertex(u);
  RebuildVertex(v);
  epochs_.TryAdvance();
  return true;
}

VertexId DynamicTsdIndex::AddVertex() {
  // Serialized-updater contract (class comment).
  updater_role_.Assert();
  epochs_.AssertWriter();
  const VertexId v = graph_.AddVertex();
  const VertexId n = graph_.num_vertices();
  ForestView* old_view = view_.load(std::memory_order_relaxed);

  auto* slice = new ForestSlice;  // isolated vertex: empty forest
  slice->universe = n;

  SliceTable* table = old_view->table;
  if (table->capacity < n) {
    // Grow by copying the slice pointers into a bigger table. Readers on
    // the old view keep using the old table (same slices), so only the
    // table shell and the view are retired — never the shared slices.
    auto* grown = new SliceTable(std::max<std::size_t>(n, table->capacity * 2));
    for (VertexId i = 0; i < old_view->num_vertices; ++i) {
      grown->slots[i].store(table->slots[i].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    table = grown;
  }
  table->slots[n - 1].store(slice, std::memory_order_relaxed);
  view_.store(new ForestView{n, table}, std::memory_order_release);
  if (table != old_view->table) epochs_.Retire(old_view->table);
  epochs_.Retire(old_view);
  epochs_.TryAdvance();
  return v;
}

std::uint32_t DynamicTsdIndex::ScoreIn(const ForestView& view, VertexId v,
                                       std::uint32_t k,
                                       IndexQueryScratch& scratch) const {
  TSD_CHECK(k >= 2);
  TSD_CHECK(v < view.num_vertices);
  const ForestSlice& slice = SliceOf(view, v);
  // The forest property gives score = |endpoints| - |edges| over the
  // weight-≥k prefix. Dense scratch sized by the slice's own universe (see
  // the ForestSlice comment — the view's count can be stale relative to a
  // freshly swapped slice).
  scratch.ids.Begin(slice.universe);
  std::uint32_t edges = 0;
  for (const ForestEdge& e : slice.edges) {
    if (e.weight < k) break;  // sorted descending
    ++edges;
    scratch.ids.Insert(e.u);
    scratch.ids.Insert(e.v);
  }
  return scratch.ids.size() - edges;
}

ScoreResult DynamicTsdIndex::ScoreWithContextsIn(
    const ForestView& view, VertexId v, std::uint32_t k,
    IndexQueryScratch& scratch) const {
  TSD_CHECK(k >= 2);
  TSD_CHECK(v < view.num_vertices);
  const ForestSlice& slice = SliceOf(view, v);

  // Map touched global endpoints to dense local ids (same kernel as
  // TsdIndex::ScoreWithContexts, over the maintained slice).
  scratch.ids.Begin(slice.universe);
  std::size_t qualified = 0;
  for (const ForestEdge& e : slice.edges) {
    if (e.weight < k) break;
    scratch.ids.Insert(e.u);
    scratch.ids.Insert(e.v);
    ++qualified;
  }
  const std::vector<VertexId>& global = scratch.ids.keys();

  scratch.dsu.Reset(global.size());
  for (std::size_t i = 0; i < qualified; ++i) {
    scratch.dsu.Union(scratch.ids.Insert(slice.edges[i].u),
                      scratch.ids.Insert(slice.edges[i].v));
  }

  constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);
  scratch.slots.assign(global.size(), kNoSlot);
  ScoreResult result;
  for (std::uint32_t i = 0; i < global.size(); ++i) {
    const std::uint32_t root = scratch.dsu.Find(i);
    if (scratch.slots[root] == kNoSlot) {
      scratch.slots[root] = static_cast<std::uint32_t>(result.contexts.size());
      result.contexts.emplace_back();
    }
    result.contexts[scratch.slots[root]].push_back(global[i]);
  }
  result.score = static_cast<std::uint32_t>(result.contexts.size());
  for (SocialContext& context : result.contexts) {
    std::sort(context.begin(), context.end());
  }
  std::sort(result.contexts.begin(), result.contexts.end(),
            [](const SocialContext& a, const SocialContext& b) {
              return a.front() < b.front();
            });
  return result;
}

std::uint32_t DynamicTsdIndex::ScoreUpperBoundIn(const ForestView& view,
                                                 VertexId v,
                                                 std::uint32_t k) const {
  TSD_DCHECK(k >= 2);
  TSD_DCHECK(v < view.num_vertices);
  const ForestSlice& slice = SliceOf(view, v);
  const auto it = std::partition_point(
      slice.edges.begin(), slice.edges.end(),
      [k](const ForestEdge& e) { return e.weight >= k; });
  return static_cast<std::uint32_t>(it - slice.edges.begin()) / (k - 1);
}

void DynamicTsdIndex::ScoresForThresholdsIn(
    const ForestView& view, VertexId v,
    std::span<const std::uint32_t> thresholds, IndexQueryScratch& scratch,
    std::uint32_t* scores) const {
  TSD_DCHECK(v < view.num_vertices);
  const ForestSlice& slice = SliceOf(view, v);
  // Weights are sorted descending, so the qualified prefix only grows as
  // the threshold drops: one sweep serves every k (same discipline as
  // TsdIndex::ScoresForThresholds, over the maintained forest slice).
  scratch.ids.Begin(slice.universe);
  std::size_t i = 0;
  std::uint32_t qualified = 0;
  for (std::size_t t = 0; t < thresholds.size(); ++t) {
    const std::uint32_t k = thresholds[t];
    TSD_DCHECK(t == 0 || thresholds[t - 1] > k);
    while (i < slice.edges.size() && slice.edges[i].weight >= k) {
      ++qualified;
      scratch.ids.Insert(slice.edges[i].u);
      scratch.ids.Insert(slice.edges[i].v);
      ++i;
    }
    scores[t] = scratch.ids.size() - qualified;
  }
}

std::uint32_t DynamicTsdIndex::Score(VertexId v, std::uint32_t k,
                                     IndexQueryScratch& scratch) const {
  EpochGuard guard(epochs_);
  return ScoreIn(CurrentView(), v, k, scratch);
}

ScoreResult DynamicTsdIndex::ScoreWithContexts(VertexId v, std::uint32_t k,
                                               IndexQueryScratch& scratch) const {
  EpochGuard guard(epochs_);
  return ScoreWithContextsIn(CurrentView(), v, k, scratch);
}

std::uint32_t DynamicTsdIndex::ScoreUpperBound(VertexId v,
                                               std::uint32_t k) const {
  EpochGuard guard(epochs_);
  return ScoreUpperBoundIn(CurrentView(), v, k);
}

void DynamicTsdIndex::ScoresForThresholds(
    VertexId v, std::span<const std::uint32_t> thresholds,
    IndexQueryScratch& scratch, std::uint32_t* scores) const {
  EpochGuard guard(epochs_);
  ScoresForThresholdsIn(CurrentView(), v, thresholds, scratch, scores);
}

TopRResult DynamicTsdIndex::TopR(std::uint32_t r, std::uint32_t k,
                                 QuerySession& session) const {
  TSD_CHECK(r >= 1);
  TSD_CHECK(k >= 2);
  WallTimer total;
  TopRResult result;

  // One pin brackets the whole query; the pipeline workers it forks run
  // inside it (fork/join is the happens-before bracket), so every kernel
  // call below reads through this one pinned view.
  EpochGuard guard(epochs_);
  const ForestView& view = CurrentView();
  const VertexId n = view.num_vertices;

  // Index-only pipeline, like the frozen TsdIndex.
  QueryPipeline& pipeline = session.IndexPipeline();
  std::vector<std::uint32_t> bounds;
  pipeline.MapScores(n, &bounds, [&](QueryWorkspace&, VertexId v) {
    return ScoreUpperBoundIn(view, v, k);
  });
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return bounds[a] > bounds[b];
  });

  TopRCollector collector(r);
  result.stats.vertices_scored =
      pipeline.ScoreOrdered(order, bounds, &collector,
                            [&](QueryWorkspace& ws, VertexId v) {
                              return ScoreIn(view, v, k, ws.index_scratch());
                            });
  pipeline.MaterializeEntries(
      collector.Ranked(), &result.entries, [&](QueryWorkspace& ws, VertexId v) {
        return ScoreWithContextsIn(view, v, k, ws.index_scratch()).contexts;
      });
  result.stats.threads_used = pipeline.num_threads();
  result.stats.total_seconds = total.Seconds();
  return result;
}

std::vector<TopRResult> DynamicTsdIndex::SearchBatch(
    std::span<const BatchQuery> queries, QuerySession& session) const {
  WallTimer total;
  std::vector<TopRResult> results(queries.size());
  if (queries.empty()) return results;
  SearchStats stats;
  BatchQueryRunner runner(queries);
  QueryPipeline& pipeline = session.IndexPipeline();

  // One pin brackets the whole batch (cf. TopR above).
  EpochGuard guard(epochs_);
  const ForestView& view = CurrentView();

  // One forest-slice sweep per vertex answers every threshold (the TSD
  // multi-k discipline over the dynamic forest slices); with exact multi-k
  // scores this cheap, the bound ordering would not pay, so the batch path
  // scans the full range.
  {
    ScopedTimer t(&stats.score_seconds);
    stats.vertices_scored = runner.Scan(
        pipeline, view.num_vertices,
        [this, &runner, &view](QueryWorkspace& ws, VertexId v,
                               std::uint32_t* out) {
          ScoresForThresholdsIn(view, v, runner.thresholds(),
                                ws.index_scratch(), out);
        });
  }

  {
    ScopedTimer t(&stats.context_seconds);
    runner.MaterializeGrouped(
        pipeline, &results, [](QueryWorkspace&, VertexId) {},
        [this, &view](QueryWorkspace& ws, VertexId v, std::uint32_t k) {
          return ScoreWithContextsIn(view, v, k, ws.index_scratch()).contexts;
        });
  }

  stats.threads_used = pipeline.num_threads();
  stats.total_seconds = total.Seconds();
  FillBatchStats(&results, stats);
  return results;
}

TsdIndex DynamicTsdIndex::Freeze() const {
  EpochGuard guard(epochs_);
  const ForestView& view = CurrentView();
  TsdIndex index;
  const VertexId n = view.num_vertices;
  std::vector<std::uint64_t> offsets(std::size_t{n} + 1, 0);
  std::vector<VertexId> edge_u;
  std::vector<VertexId> edge_v;
  std::vector<std::uint32_t> weight;
  for (VertexId v = 0; v < n; ++v) {
    for (const ForestEdge& e : SliceOf(view, v).edges) {
      edge_u.push_back(e.u);
      edge_v.push_back(e.v);
      weight.push_back(e.weight);
      index.max_weight_ = std::max(index.max_weight_, e.weight);
    }
    offsets[v + 1] = edge_u.size();
  }
  index.offsets_ = std::move(offsets);
  index.edge_u_ = std::move(edge_u);
  index.edge_v_ = std::move(edge_v);
  index.weight_ = std::move(weight);
  return index;
}

}  // namespace tsd
