// Prior-work structural diversity models, reimplemented as baselines:
//
//  * CompDivSearcher — component-based structural diversity [7], [21]:
//    a social context is a connected component of the ego-network with at
//    least k vertices.
//  * CoreDivSearcher — core-based structural diversity [20]: a social
//    context is a maximal connected k-core of the ego-network.
//  * RandomSelect — uniform random vertex pick (effectiveness control).
//
// Both searchers use the same top-r framework as the truss model with the
// model-appropriate degree upper bounds (⌊d(v)/k⌋ components of size ≥ k;
// ⌊d(v)/(k+1)⌋ k-cores, each having ≥ k+1 vertices).
#pragma once

#include <cstdint>

#include "core/query_session.h"
#include "core/types.h"
#include "graph/graph.h"

namespace tsd {

class CompDivSearcher : public DiversitySearcher {
 public:
  explicit CompDivSearcher(const Graph& graph) : graph_(graph) {}
  using DiversitySearcher::SearchBatch;
  using DiversitySearcher::TopR;
  TopRResult TopR(std::uint32_t r, std::uint32_t k,
                  QuerySession& session) const override;
  std::string name() const override { return "Comp-Div"; }

 private:
  const Graph& graph_;
};

class CoreDivSearcher : public DiversitySearcher {
 public:
  explicit CoreDivSearcher(const Graph& graph) : graph_(graph) {}
  using DiversitySearcher::SearchBatch;
  using DiversitySearcher::TopR;
  TopRResult TopR(std::uint32_t r, std::uint32_t k,
                  QuerySession& session) const override;
  std::string name() const override { return "Core-Div"; }

 private:
  const Graph& graph_;
};

/// r distinct uniformly random vertices (deterministic for a given seed).
std::vector<VertexId> RandomSelect(const Graph& graph, std::uint32_t r,
                                   std::uint64_t seed);

}  // namespace tsd
