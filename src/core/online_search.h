// The online (baseline) top-r search — Algorithm 3 of the paper.
//
// Computes score(v) for every vertex from scratch (ego-network extraction +
// truss decomposition per vertex, Algorithm 2) and keeps the r best. No
// pruning; this is the reference implementation every optimized method is
// tested against, and the "baseline" row of Table 2. Runs on the shared
// QueryPipeline, so it honours QueryOptions like every other searcher.
#pragma once

#include <cstdint>

#include "core/query_pipeline.h"
#include "core/scoring.h"
#include "core/types.h"
#include "graph/graph.h"
#include "truss/ego_truss.h"

namespace tsd {

class OnlineSearcher : public DiversitySearcher {
 public:
  /// `method` selects the ego truss decomposition kernel (the paper's
  /// baseline uses the hash kernel).
  explicit OnlineSearcher(const Graph& graph,
                          EgoTrussMethod method = EgoTrussMethod::kHash)
      : graph_(graph), method_(method) {}

  TopRResult TopR(std::uint32_t r, std::uint32_t k) override;

  /// Amortized batch path: one ego decomposition per vertex feeds every
  /// query's collector (bit-identical to per-query TopR).
  std::vector<TopRResult> SearchBatch(
      std::span<const BatchQuery> queries) override;

  std::string name() const override { return "baseline"; }

  /// Computes score(v) and contexts for a single vertex (Algorithm 2).
  ScoreResult ScoreVertex(VertexId v, std::uint32_t k, bool want_contexts);

 private:
  QueryPipeline& Pipeline();

  const Graph& graph_;
  EgoTrussMethod method_;
  PipelineCache pipeline_;
};

}  // namespace tsd
