// The online (baseline) top-r search — Algorithm 3 of the paper.
//
// Computes score(v) for every vertex from scratch (ego-network extraction +
// truss decomposition per vertex, Algorithm 2) and keeps the r best. No
// pruning; this is the reference implementation every optimized method is
// tested against, and the "baseline" row of Table 2. Runs on the shared
// QueryPipeline, so it honours QueryOptions like every other searcher.
#pragma once

#include <cstdint>

#include "core/query_session.h"
#include "core/scoring.h"
#include "core/types.h"
#include "graph/graph.h"
#include "truss/ego_truss.h"

namespace tsd {

/// Immutable after construction; all query scratch lives in the session.
class OnlineSearcher : public DiversitySearcher {
 public:
  /// `method` selects the ego truss decomposition kernel (the paper's
  /// baseline uses the hash kernel).
  explicit OnlineSearcher(const Graph& graph,
                          EgoTrussMethod method = EgoTrussMethod::kHash)
      : graph_(graph), method_(method) {}

  using DiversitySearcher::SearchBatch;
  using DiversitySearcher::TopR;

  TopRResult TopR(std::uint32_t r, std::uint32_t k,
                  QuerySession& session) const override;

  /// Amortized batch path: one ego decomposition per vertex feeds every
  /// query's collector (bit-identical to per-query TopR).
  std::vector<TopRResult> SearchBatch(std::span<const BatchQuery> queries,
                                      QuerySession& session) const override;

  std::string name() const override { return "baseline"; }

  /// Computes score(v) and contexts for a single vertex (Algorithm 2). The
  /// convenience overload runs on the default session.
  ScoreResult ScoreVertex(VertexId v, std::uint32_t k, bool want_contexts,
                          QuerySession& session) const;
  ScoreResult ScoreVertex(VertexId v, std::uint32_t k, bool want_contexts) {
    return ScoreVertex(v, k, want_contexts, default_session());
  }

 private:
  QueryPipeline& Pipeline(QuerySession& session) const {
    return session.PipelineFor(graph_, method_);
  }

  const Graph& graph_;
  const EgoTrussMethod method_;
};

}  // namespace tsd
