// Reusable scratch structures for allocation-free index queries and multi-k
// batch scoring.
//
// Index score kernels used to allocate an unordered_map per call (TSD edge
// endpoint dedup, GCT context grouping). Every structure here is built once
// per worker — inside QueryWorkspace — grows to its high-water mark, and is
// reused query to query, so repeated queries perform no steady-state heap
// allocation (capacity_bytes() is exposed for the tests that lock this
// down).
//
// MultiKEgoScorer is the batch-query kernel: one decomposed ego-network
// determines score(v) for *every* threshold k simultaneously (the trussness
// array is k-independent), so a single descending-trussness sweep yields
// the component counts for any requested set of thresholds — one ego
// decomposition per vertex instead of one per (vertex, k).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/disjoint_set.h"
#include "graph/ego_network.h"

namespace tsd {

/// Epoch-stamped dense map from vertex id to a small dense id in insertion
/// order. Begin() is O(1) after the first call for a given universe size;
/// the backing arrays are grown once and reused forever.
class DenseIdMap {
 public:
  /// Starts a new mapping over ids in [0, universe). Grows the stamp arrays
  /// if needed (only on the first call, or when the universe grows).
  void Begin(std::size_t universe) {
    if (epoch_of_.size() < universe) {
      epoch_of_.resize(universe, 0);
      id_of_.resize(universe);
    }
    if (++epoch_ == 0) {  // epoch wrap: invalidate all stale stamps
      std::fill(epoch_of_.begin(), epoch_of_.end(), 0U);
      epoch_ = 1;
    }
    keys_.clear();
  }

  /// Dense id of `key`, inserting it at the next slot if unseen.
  std::uint32_t Insert(std::uint32_t key) {
    TSD_DCHECK(key < epoch_of_.size());
    if (epoch_of_[key] != epoch_) {
      epoch_of_[key] = epoch_;
      id_of_[key] = static_cast<std::uint32_t>(keys_.size());
      keys_.push_back(key);
    }
    return id_of_[key];
  }

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(keys_.size());
  }

  /// Inserted keys, in insertion (= dense id) order.
  const std::vector<std::uint32_t>& keys() const { return keys_; }

  std::size_t capacity_bytes() const {
    return (epoch_of_.capacity() + id_of_.capacity() + keys_.capacity()) *
           sizeof(std::uint32_t);
  }

 private:
  std::vector<std::uint32_t> epoch_of_;
  std::vector<std::uint32_t> id_of_;
  std::vector<std::uint32_t> keys_;
  std::uint32_t epoch_ = 0;
};

/// Scratch for the TSD / GCT score and context kernels. One instance per
/// worker (owned by QueryWorkspace); all members grow to the query
/// high-water mark and are reused.
struct IndexQueryScratch {
  DenseIdMap ids;                    // endpoint dedup / global→local map
  DisjointSet dsu;                   // context connectivity
  std::vector<std::uint32_t> slots;  // root → context slot

  std::size_t capacity_bytes() const {
    return ids.capacity_bytes() + dsu.size() * 2 * sizeof(std::uint32_t) +
           slots.capacity() * sizeof(std::uint32_t);
  }
};

/// Computes score(v) at many thresholds from one decomposed ego-network.
///
/// A single pass over the ego edges in descending trussness order maintains
/// the union-find of the ≥k prefix: when the sweep threshold drops from k to
/// k', exactly the edges with trussness in [k', k) join, and
/// score = |touched vertices| − |successful unions| at every step (each
/// component is a tree under the union count). The result at each threshold
/// equals ScoreFromEgoTrussness(ego, trussness, k, false).score exactly —
/// the count is order-independent — which is what keeps batch queries
/// bit-identical to per-query search.
class MultiKEgoScorer {
 public:
  /// Fills scores[i] with score(ego) at thresholds[i]. `thresholds` must be
  /// sorted strictly descending, every value ≥ 2.
  void Compute(const EgoNetwork& ego,
               const std::vector<std::uint32_t>& trussness,
               std::span<const std::uint32_t> thresholds,
               std::uint32_t* scores);

  std::size_t capacity_bytes() const {
    return dsu_.size() * 2 * sizeof(std::uint32_t) +
           (bucket_.capacity() + sorted_edges_.capacity()) *
               sizeof(std::uint32_t) +
           touched_.capacity();
  }

 private:
  DisjointSet dsu_;
  std::vector<std::uint32_t> bucket_;
  std::vector<std::uint32_t> sorted_edges_;
  std::vector<char> touched_;
};

}  // namespace tsd
