// Per-client query-time state, split out of the searchers.
//
// The contract after this refactor: **searchers are immutable after build;
// all query scratch lives in sessions.** A DiversitySearcher holds only the
// built artifact (graph reference, index arrays, precomputed rankings) and
// its query entry points are const — any number of threads may query one
// shared searcher concurrently, each through its own QuerySession. The
// session owns everything a query mutates: the QueryPipeline's per-worker
// workspaces (extractor + decomposer + ego + trussness + IndexQueryScratch +
// MultiKEgoScorer), cached across queries so the steady state allocates
// nothing new, and the pipeline knobs (QueryOptions) the pipelines are built
// against. Per-call scratch that is born from the query itself —
// BatchQueryRunner, TopRCollectors, bound arrays — lives on the stack of the
// session's call frame.
//
// A QuerySession is NOT thread-safe: one session, one thread at a time.
// Concurrency comes from many sessions sharing one searcher, exactly the
// index-serving shape of the TCF-style systems (one immutable index artifact
// queried through per-session scratch).
#pragma once

#include <cstdint>
#include <memory>

#include "core/query_pipeline.h"
#include "core/types.h"
#include "graph/graph.h"
#include "truss/ego_truss.h"

namespace tsd {

class QuerySession {
 public:
  QuerySession() = default;
  explicit QuerySession(const QueryOptions& options) : options_(options) {}

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  const QueryOptions& options() const { return options_; }

  /// Changes the pipeline knobs. Cached pipelines are rebuilt lazily on the
  /// next query that needs them.
  void set_options(const QueryOptions& options) { options_ = options; }

  /// Pipeline whose workspaces can extract ego-networks of `graph`, cached
  /// per (graph, method, options) so repeated queries reuse all scratch.
  /// Used by the searchers that decompose ego-networks at query time
  /// (online, bound, hybrid's context phase, the baselines).
  QueryPipeline& PipelineFor(const Graph& graph, EgoTrussMethod method) {
    return full_.For(graph, method, options_);
  }

  /// Index-only pipeline (workspaces carry no extractor), cached per
  /// options. Used by the TSD / GCT / dynamic index scans, whose kernels
  /// only read prebuilt per-vertex slices.
  QueryPipeline& IndexPipeline() {
    if (index_ == nullptr || index_options_ != options_) {
      index_ = std::make_unique<QueryPipeline>(options_);
      index_options_ = options_;
    }
    return *index_;
  }

 private:
  QueryOptions options_;
  PipelineCache full_;                    // graph-backed pipelines
  std::unique_ptr<QueryPipeline> index_;  // index-only pipeline
  QueryOptions index_options_;
};

}  // namespace tsd
