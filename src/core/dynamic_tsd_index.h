// Incrementally maintained TSD-index over a dynamic graph.
//
// The paper's Section 5.3 remarks that the TSD-index "can support efficient
// updates in dynamic graphs"; this class realizes that extension. The key
// locality property: inserting or deleting edge {u, v} changes only the
// ego-networks of
//     A(u, v) = {u, v} ∪ (N(u) ∩ N(v))
// — u's and v's ego-networks gain/lose the member on the other end (plus
// its incident ego edges), and each common neighbor w gains/loses the ego
// edge (u, v). The maintainer rebuilds exactly those |A| per-vertex forests
// (each an O(ρ_v · m_v) local job) and leaves the rest of the index
// untouched. Property tests verify equality with a from-scratch rebuild
// after every update.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/query_scratch.h"
#include "core/query_session.h"
#include "core/scoring.h"
#include "core/tsd_index.h"
#include "core/types.h"
#include "graph/dynamic_graph.h"
#include "truss/ego_truss.h"

namespace tsd {

/// Queries are const and session-scoped like every searcher, so concurrent
/// sessions may query one shared instance *between* updates; the update
/// entry points (InsertEdge / RemoveEdge / AddVertex) mutate the forests
/// and require external exclusion against queries.
class DynamicTsdIndex : public DiversitySearcher {
 public:
  /// Builds the initial index from `initial` (equivalent to
  /// TsdIndex::Build on the same graph).
  explicit DynamicTsdIndex(const Graph& initial,
                           EgoTrussMethod method = EgoTrussMethod::kHash);

  /// Inserts {u, v} and repairs the affected ego-network forests.
  /// Returns false (and changes nothing) if the edge already existed.
  bool InsertEdge(VertexId u, VertexId v);

  /// Removes {u, v} and repairs the affected ego-network forests.
  bool RemoveEdge(VertexId u, VertexId v);

  /// Appends an isolated vertex.
  VertexId AddVertex();

  std::uint32_t Score(VertexId v, std::uint32_t k) const;
  ScoreResult ScoreWithContexts(VertexId v, std::uint32_t k) const;
  std::uint32_t ScoreUpperBound(VertexId v, std::uint32_t k) const;

  /// Scores v at every threshold of `thresholds` (strictly descending) in
  /// one sweep over the vertex's forest slice — the same multi-k kernel as
  /// the frozen TsdIndex, over the maintained per-vertex forests.
  void ScoresForThresholds(VertexId v,
                           std::span<const std::uint32_t> thresholds,
                           IndexQueryScratch& scratch,
                           std::uint32_t* scores) const;

  using DiversitySearcher::SearchBatch;
  using DiversitySearcher::TopR;

  TopRResult TopR(std::uint32_t r, std::uint32_t k,
                  QuerySession& session) const override;

  /// Amortized batch path (mirrors TsdIndex::SearchBatch): one forest-slice
  /// sweep per vertex scores every requested threshold, winners grouped by
  /// vertex for the context phase. Bit-identical to per-query TopR.
  std::vector<TopRResult> SearchBatch(std::span<const BatchQuery> queries,
                                      QuerySession& session) const override;

  std::string name() const override { return "TSD-dynamic"; }

  const DynamicGraph& graph() const { return graph_; }

  /// Number of per-vertex forest rebuilds performed so far (updates only;
  /// excludes initial construction). One rebuild per affected vertex.
  std::uint64_t rebuild_count() const { return rebuild_count_; }

  /// Snapshot as an immutable TsdIndex (bit-identical query results).
  TsdIndex Freeze() const;

 private:
  struct ForestEdge {
    VertexId u;
    VertexId v;
    std::uint32_t weight;
  };

  void RebuildVertex(VertexId v);
  void ExtractEgo(VertexId center, EgoNetwork* out) const;

  DynamicGraph graph_;
  EgoTrussMethod method_;
  // Per-vertex forest, sorted by weight descending.
  std::vector<std::vector<ForestEdge>> forest_;
  std::uint64_t rebuild_count_ = 0;
};

}  // namespace tsd
