// Incrementally maintained TSD-index over a dynamic graph.
//
// The paper's Section 5.3 remarks that the TSD-index "can support efficient
// updates in dynamic graphs"; this class realizes that extension. The key
// locality property: inserting or deleting edge {u, v} changes only the
// ego-networks of
//     A(u, v) = {u, v} ∪ (N(u) ∩ N(v))
// — u's and v's ego-networks gain/lose the member on the other end (plus
// its incident ego edges), and each common neighbor w gains/loses the ego
// edge (u, v). The maintainer rebuilds exactly those |A| per-vertex forests
// (each an O(ρ_v · m_v) local job) and leaves the rest of the index
// untouched. Property tests verify equality with a from-scratch rebuild
// after every update.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scoring.h"
#include "core/tsd_index.h"
#include "core/types.h"
#include "graph/dynamic_graph.h"
#include "truss/ego_truss.h"

namespace tsd {

class DynamicTsdIndex : public DiversitySearcher {
 public:
  /// Builds the initial index from `initial` (equivalent to
  /// TsdIndex::Build on the same graph).
  explicit DynamicTsdIndex(const Graph& initial,
                           EgoTrussMethod method = EgoTrussMethod::kHash);

  /// Inserts {u, v} and repairs the affected ego-network forests.
  /// Returns false (and changes nothing) if the edge already existed.
  bool InsertEdge(VertexId u, VertexId v);

  /// Removes {u, v} and repairs the affected ego-network forests.
  bool RemoveEdge(VertexId u, VertexId v);

  /// Appends an isolated vertex.
  VertexId AddVertex();

  std::uint32_t Score(VertexId v, std::uint32_t k) const;
  ScoreResult ScoreWithContexts(VertexId v, std::uint32_t k) const;
  std::uint32_t ScoreUpperBound(VertexId v, std::uint32_t k) const;

  TopRResult TopR(std::uint32_t r, std::uint32_t k) override;
  std::string name() const override { return "TSD-dynamic"; }

  const DynamicGraph& graph() const { return graph_; }

  /// Number of per-vertex forest rebuilds performed so far (updates only;
  /// excludes initial construction). One rebuild per affected vertex.
  std::uint64_t rebuild_count() const { return rebuild_count_; }

  /// Snapshot as an immutable TsdIndex (bit-identical query results).
  TsdIndex Freeze() const;

 private:
  struct ForestEdge {
    VertexId u;
    VertexId v;
    std::uint32_t weight;
  };

  void RebuildVertex(VertexId v);
  void ExtractEgo(VertexId center, EgoNetwork* out) const;

  DynamicGraph graph_;
  EgoTrussMethod method_;
  // Per-vertex forest, sorted by weight descending.
  std::vector<std::vector<ForestEdge>> forest_;
  std::uint64_t rebuild_count_ = 0;
};

}  // namespace tsd
