// Incrementally maintained TSD-index over a dynamic graph, with
// epoch-versioned forests so queries run concurrently with updates.
//
// The paper's Section 5.3 remarks that the TSD-index "can support efficient
// updates in dynamic graphs"; this class realizes that extension. The key
// locality property: inserting or deleting edge {u, v} changes only the
// ego-networks of
//     A(u, v) = {u, v} ∪ (N(u) ∩ N(v))
// — u's and v's ego-networks gain/lose the member on the other end (plus
// its incident ego edges), and each common neighbor w gains/loses the ego
// edge (u, v). The maintainer rebuilds exactly those |A| per-vertex forests
// (each an O(ρ_v · m_v) local job) and leaves the rest of the index
// untouched. Property tests verify equality with a from-scratch rebuild
// after every update.
//
// Concurrency contract (the epoch design; common/epoch.h):
//  * Queries are const, lock-free, and safe *concurrently with updates*.
//    Each per-vertex forest is an immutable ForestSlice published through an
//    atomic pointer; every public query entry point pins an epoch once (one
//    EpochGuard per query or batch), loads the current ForestView, and reads
//    only immutable data from there. Updates replace slices by atomic swap
//    and retire the old versions to the epoch manager, which frees them only
//    after every pinned reader has moved on — readers never block, never
//    lock, and never observe freed memory.
//  * Updates (InsertEdge / RemoveEdge / AddVertex) are serialized by the
//    caller — one updater thread, or a mutex around the update path (the
//    serving layer's LiveUpdateApplier does the latter). They no longer
//    exclude queries.
//  * A query that overlaps an update sees each affected vertex either
//    before or after its rebuild (per-slice atomicity, not whole-update
//    atomicity). Once an update returns and the updater quiesces, every
//    subsequent query is bit-identical to a from-scratch rebuild of the
//    current graph — the differential property the live-update harness
//    asserts after every epoch.
//  * graph(), rebuild_count(), Freeze() and epoch_stats() are
//    updater-quiescent accessors: call them from the updater, or while no
//    update is in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/disjoint_set.h"
#include "common/epoch.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/query_scratch.h"
#include "core/query_session.h"
#include "core/scoring.h"
#include "core/tsd_index.h"
#include "core/types.h"
#include "graph/dynamic_graph.h"
#include "truss/ego_truss.h"

namespace tsd {

class DynamicTsdIndex : public DiversitySearcher {
 public:
  /// Builds the initial index from `initial` (equivalent to
  /// TsdIndex::Build on the same graph).
  explicit DynamicTsdIndex(const Graph& initial,
                           EgoTrussMethod method = EgoTrussMethod::kHash);

  /// No readers or updaters may be in flight at destruction.
  ~DynamicTsdIndex() override;

  DynamicTsdIndex(const DynamicTsdIndex&) = delete;
  DynamicTsdIndex& operator=(const DynamicTsdIndex&) = delete;

  /// Inserts {u, v} and repairs the affected ego-network forests.
  /// Returns false (and changes nothing) if the edge already exists, if
  /// u == v, or if either endpoint is out of range — out-of-range ids are a
  /// rejected update, not a crash, symmetric with RemoveEdge (ids arrive
  /// from untrusted "+u v" protocol lines).
  bool InsertEdge(VertexId u, VertexId v);

  /// Removes {u, v} and repairs the affected ego-network forests. Returns
  /// false (and changes nothing) if the edge is absent or either endpoint
  /// is out of range.
  bool RemoveEdge(VertexId u, VertexId v);

  /// Appends an isolated vertex.
  VertexId AddVertex();

  /// Structural diversity score of v at threshold k. The scratch overload
  /// is allocation-free in the steady state (mirrors TsdIndex); the
  /// convenience overload allocates a throwaway scratch per call.
  std::uint32_t Score(VertexId v, std::uint32_t k,
                      IndexQueryScratch& scratch) const;
  std::uint32_t Score(VertexId v, std::uint32_t k) const {
    IndexQueryScratch scratch;
    return Score(v, k, scratch);
  }

  /// Score plus materialized social contexts.
  ScoreResult ScoreWithContexts(VertexId v, std::uint32_t k,
                                IndexQueryScratch& scratch) const;
  ScoreResult ScoreWithContexts(VertexId v, std::uint32_t k) const {
    IndexQueryScratch scratch;
    return ScoreWithContexts(v, k, scratch);
  }

  std::uint32_t ScoreUpperBound(VertexId v, std::uint32_t k) const;

  /// Scores v at every threshold of `thresholds` (strictly descending) in
  /// one sweep over the vertex's forest slice — the same multi-k kernel as
  /// the frozen TsdIndex, over the maintained per-vertex forests.
  void ScoresForThresholds(VertexId v,
                           std::span<const std::uint32_t> thresholds,
                           IndexQueryScratch& scratch,
                           std::uint32_t* scores) const;

  using DiversitySearcher::SearchBatch;
  using DiversitySearcher::TopR;

  TopRResult TopR(std::uint32_t r, std::uint32_t k,
                  QuerySession& session) const override;

  /// Amortized batch path (mirrors TsdIndex::SearchBatch): one forest-slice
  /// sweep per vertex scores every requested threshold, winners grouped by
  /// vertex for the context phase. Bit-identical to per-query TopR.
  std::vector<TopRResult> SearchBatch(std::span<const BatchQuery> queries,
                                      QuerySession& session) const override;

  std::string name() const override { return "TSD-dynamic"; }

  /// Updater-quiescent accessor (see the header comment).
  const DynamicGraph& graph() const TSD_NO_THREAD_SAFETY_ANALYSIS {
    // Read without the updater capability by design: callers promise
    // quiescence, which the capability system cannot express.
    return graph_;
  }

  /// Number of per-vertex forest rebuilds performed so far (updates only;
  /// excludes initial construction). One rebuild per affected vertex.
  std::uint64_t rebuild_count() const {
    return rebuild_count_.load(std::memory_order_relaxed);
  }

  /// Epoch-reclamation counters for the stats tables.
  EpochStats epoch_stats() const { return epochs_.stats(); }

  /// Snapshot as an immutable TsdIndex (bit-identical query results).
  TsdIndex Freeze() const;

 private:
  struct ForestEdge {
    VertexId u;
    VertexId v;
    std::uint32_t weight;
  };

  /// One vertex's maximum-spanning-forest, immutable once published.
  /// `universe` is the vertex-count at build time: endpoint ids are all
  /// < universe, and query kernels size their dense scratch maps from it —
  /// NOT from the view's vertex count, because a reader holding an older
  /// view can legitimately observe a newer slice whose endpoints exceed the
  /// old view's range (slices and the view are published independently).
  struct ForestSlice {
    VertexId universe = 0;
    std::vector<ForestEdge> edges;  // sorted by weight descending
  };

  /// Atomic pointer array from vertex id to its current slice. Grown (as a
  /// whole) only by AddVertex; individual slots are swapped by updates.
  struct SliceTable {
    explicit SliceTable(std::size_t cap)
        : capacity(cap),
          slots(std::make_unique<std::atomic<const ForestSlice*>[]>(cap)) {}
    std::size_t capacity;
    std::unique_ptr<std::atomic<const ForestSlice*>[]> slots;
  };

  /// The queryable state, published through one atomic pointer: a vertex
  /// count and the table holding that many live slices.
  struct ForestView {
    VertexId num_vertices = 0;
    SliceTable* table = nullptr;
  };

  /// The current view. Callers must hold an epoch pin for as long as they
  /// use the result (or be the serialized updater).
  const ForestView& CurrentView() const {
    return *view_.load(std::memory_order_acquire);
  }

  static const ForestSlice& SliceOf(const ForestView& view, VertexId v) {
    return *view.table->slots[v].load(std::memory_order_acquire);
  }

  // Unpinned query kernels: the public entry points pin once and delegate
  // here (pipeline workers run inside the caller's pin — the fork/join is
  // the happens-before bracket).
  std::uint32_t ScoreIn(const ForestView& view, VertexId v, std::uint32_t k,
                        IndexQueryScratch& scratch) const;
  ScoreResult ScoreWithContextsIn(const ForestView& view, VertexId v,
                                  std::uint32_t k,
                                  IndexQueryScratch& scratch) const;
  std::uint32_t ScoreUpperBoundIn(const ForestView& view, VertexId v,
                                  std::uint32_t k) const;
  void ScoresForThresholdsIn(const ForestView& view, VertexId v,
                             std::span<const std::uint32_t> thresholds,
                             IndexQueryScratch& scratch,
                             std::uint32_t* scores) const;

  // Update internals (serialized-updater side).
  void RebuildVertex(VertexId v) TSD_REQUIRES(updater_role_);
  void ExtractEgo(VertexId center, EgoNetwork* out) const
      TSD_REQUIRES(updater_role_);

  /// The serialized-updater capability (see the header contract): public
  /// update entry points claim it on behalf of their externally serialized
  /// caller, mirroring EpochManager::AssertWriter.
  ThreadRole updater_role_;

  DynamicGraph graph_ TSD_GUARDED_BY(updater_role_);
  const EgoTrussMethod method_;

  /// Reclamation authority over retired slices/tables/views. Mutable: the
  /// const query paths pin and unpin reader epochs.
  mutable EpochManager epochs_;
  std::atomic<ForestView*> view_{nullptr};
  std::atomic<std::uint64_t> rebuild_count_{0};

  // Maintenance scratch, reused across every RebuildVertex call so the
  // update path performs no per-vertex ego/decomposer construction.
  EgoNetwork maint_ego_ TSD_GUARDED_BY(updater_role_);
  EgoTrussDecomposer maint_decomposer_ TSD_GUARDED_BY(updater_role_);
  std::vector<std::uint32_t> maint_trussness_ TSD_GUARDED_BY(updater_role_);
  DisjointSet maint_dsu_ TSD_GUARDED_BY(updater_role_);
};

}  // namespace tsd
