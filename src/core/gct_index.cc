#include "core/gct_index.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <unordered_map>

#include "common/check.h"
#include "common/disjoint_set.h"
#include "common/parallel.h"
#include "common/serialize.h"
#include "common/timer.h"
#include "core/batch_query.h"
#include "core/query_pipeline.h"
#include "core/top_r_collector.h"

namespace tsd {
namespace {

// Snapshot section tags for the GCT supernode/superedge arrays ("gctx.*"
// group).
constexpr std::uint64_t kGctMetaTag = SnapshotTag("gctx.met");
constexpr std::uint64_t kGctSnOffsetsTag = SnapshotTag("gctx.sno");
constexpr std::uint64_t kGctSnTauTag = SnapshotTag("gctx.tau");
constexpr std::uint64_t kGctMemberOffsetsTag = SnapshotTag("gctx.mof");
constexpr std::uint64_t kGctMembersTag = SnapshotTag("gctx.mem");
constexpr std::uint64_t kGctSeOffsetsTag = SnapshotTag("gctx.seo");
constexpr std::uint64_t kGctSeATag = SnapshotTag("gctx.sea");
constexpr std::uint64_t kGctSeBTag = SnapshotTag("gctx.seb");
constexpr std::uint64_t kGctSeWTag = SnapshotTag("gctx.sew");

// Schema version for the "gctx.*" section group (common/snapshot.h policy).
constexpr std::uint64_t kGctSchemaVersion = 1;

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = "GCT snapshot: " + message;
  return false;
}

/// Scratch for one ego-network's Algorithm 8 run, reused across vertices.
struct SupernodeBuilder {
  DisjointSet merge;  // supernode membership over local vertices
  DisjointSet conn;   // forest connectivity over local vertices
  std::vector<std::uint32_t> vertex_tau;  // valid at merge roots
  std::vector<std::uint32_t> sorted_edges;
  std::vector<std::uint32_t> bucket;

  struct RawSuperedge {
    std::uint32_t u;  // local vertex
    std::uint32_t w;  // local vertex
    std::uint32_t weight;
  };
  std::vector<RawSuperedge> raw_superedges;
};

}  // namespace

namespace {

/// Per-chunk build output for the parallel GCT build; chunks cover
/// contiguous ascending vertex ranges and concatenate in order.
struct GctChunk {
  std::vector<std::uint32_t> sn_tau;
  std::vector<std::uint32_t> sn_member_count;  // parallel to sn_tau
  std::vector<VertexId> members;
  std::vector<std::uint32_t> se_a;
  std::vector<std::uint32_t> se_b;
  std::vector<std::uint32_t> se_w;
  std::vector<std::uint32_t> per_vertex_sn_count;
  std::vector<std::uint32_t> per_vertex_se_count;
  std::uint32_t max_trussness = 0;
  double extraction_seconds = 0;
  double decomposition_seconds = 0;
  double assembly_seconds = 0;
};

/// Algorithm 8 on one decomposed ego-network; appends the resulting
/// supernodes/superedges to `chunk`.
void AssembleSupernodes(const EgoNetwork& ego,
                        const std::vector<std::uint32_t>& trussness,
                        SupernodeBuilder& scratch, GctChunk& chunk) {
  const std::uint32_t l = ego.num_members();
  const std::uint32_t m = ego.num_edges();

  scratch.merge.Reset(l);
  scratch.conn.Reset(l);
  scratch.vertex_tau.assign(l, 0);
  for (EdgeId e = 0; e < m; ++e) {
    const auto [a, b] = ego.edges[e];
    scratch.vertex_tau[a] = std::max(scratch.vertex_tau[a], trussness[e]);
    scratch.vertex_tau[b] = std::max(scratch.vertex_tau[b], trussness[e]);
  }

  // Edge ids in descending trussness order (counting sort).
  std::uint32_t max_w = 0;
  for (std::uint32_t w : trussness) max_w = std::max(max_w, w);
  scratch.bucket.assign(max_w + 2, 0);
  for (std::uint32_t w : trussness) ++scratch.bucket[w];
  {
    std::uint32_t cursor = 0;
    for (std::uint32_t w = max_w + 1; w-- > 0;) {
      const std::uint32_t count = scratch.bucket[w];
      scratch.bucket[w] = cursor;
      cursor += count;
    }
  }
  scratch.sorted_edges.resize(m);
  for (EdgeId e = 0; e < m; ++e) {
    scratch.sorted_edges[scratch.bucket[trussness[e]]++] = e;
  }

  // Process edges from the highest trussness down (Algorithm 8 lines 5-15).
  scratch.raw_superedges.clear();
  for (std::uint32_t i = 0; i < m; ++i) {
    const EdgeId e = scratch.sorted_edges[i];
    const auto [u, w] = ego.edges[e];
    const std::uint32_t t_e = trussness[e];
    if (scratch.conn.Connected(u, w)) continue;
    const std::uint32_t mu = scratch.merge.Find(u);
    const std::uint32_t mw = scratch.merge.Find(w);
    if (scratch.vertex_tau[mu] == t_e && scratch.vertex_tau[mw] == t_e) {
      // Same trussness level on both sides: merge the supernodes.
      scratch.merge.Union(mu, mw);
      scratch.vertex_tau[scratch.merge.Find(mu)] = t_e;
    } else {
      scratch.raw_superedges.push_back({u, w, t_e});
    }
    scratch.conn.Union(u, w);
  }

  // Collect final supernodes: group non-isolated locals by merge root.
  std::unordered_map<std::uint32_t, std::uint32_t> root_to_sn;
  std::vector<std::uint32_t> sn_tau;
  std::vector<std::vector<VertexId>> sn_members;
  for (std::uint32_t u = 0; u < l; ++u) {
    if (scratch.vertex_tau[u] < 2 &&
        scratch.vertex_tau[scratch.merge.Find(u)] < 2) {
      continue;  // isolated member: belongs to no social context
    }
    const std::uint32_t root = scratch.merge.Find(u);
    auto [it, inserted] =
        root_to_sn.emplace(root, static_cast<std::uint32_t>(sn_tau.size()));
    if (inserted) {
      sn_tau.push_back(scratch.vertex_tau[root]);
      sn_members.emplace_back();
    }
    sn_members[it->second].push_back(ego.ToGlobal(u));
  }

  // Order supernodes by (trussness desc, smallest member asc).
  const std::uint32_t num_sn = static_cast<std::uint32_t>(sn_tau.size());
  std::vector<std::uint32_t> order(num_sn);
  std::iota(order.begin(), order.end(), 0U);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (sn_tau[a] != sn_tau[b]) return sn_tau[a] > sn_tau[b];
              return sn_members[a].front() < sn_members[b].front();
            });
  std::vector<std::uint32_t> position(num_sn);
  for (std::uint32_t i = 0; i < num_sn; ++i) position[order[i]] = i;

  for (std::uint32_t i = 0; i < num_sn; ++i) {
    const std::uint32_t sn = order[i];
    chunk.sn_tau.push_back(sn_tau[sn]);
    chunk.max_trussness = std::max(chunk.max_trussness, sn_tau[sn]);
    auto& members = sn_members[sn];
    std::sort(members.begin(), members.end());
    chunk.members.insert(chunk.members.end(), members.begin(), members.end());
    chunk.sn_member_count.push_back(
        static_cast<std::uint32_t>(members.size()));
  }
  chunk.per_vertex_sn_count.push_back(num_sn);

  // Resolve superedges to final supernode slice positions and order them
  // by weight descending (ties: by (a, b) for determinism).
  struct FinalSuperedge {
    std::uint32_t a, b, w;
  };
  std::vector<FinalSuperedge> finals;
  finals.reserve(scratch.raw_superedges.size());
  for (const auto& raw : scratch.raw_superedges) {
    std::uint32_t a = position[root_to_sn.at(scratch.merge.Find(raw.u))];
    std::uint32_t b = position[root_to_sn.at(scratch.merge.Find(raw.w))];
    if (a > b) std::swap(a, b);
    finals.push_back({a, b, raw.weight});
  }
  std::sort(finals.begin(), finals.end(),
            [](const FinalSuperedge& x, const FinalSuperedge& y) {
              if (x.w != y.w) return x.w > y.w;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  for (const auto& fe : finals) {
    chunk.se_a.push_back(fe.a);
    chunk.se_b.push_back(fe.b);
    chunk.se_w.push_back(fe.w);
  }
  chunk.per_vertex_se_count.push_back(
      static_cast<std::uint32_t>(finals.size()));
}

}  // namespace

GctIndex GctIndex::Build(const Graph& graph, const Options& options) {
  TSD_CHECK(options.num_threads >= 1);
  WallTimer total;
  GctIndex index;
  const VertexId n = graph.num_vertices();
  std::vector<std::uint32_t> sn_offsets(std::size_t{n} + 1, 0);
  std::vector<std::uint32_t> se_offsets(std::size_t{n} + 1, 0);
  std::vector<std::uint32_t> member_offsets(1, 0);
  std::vector<std::uint32_t> sn_tau;
  std::vector<VertexId> members;
  std::vector<std::uint32_t> se_a;
  std::vector<std::uint32_t> se_b;
  std::vector<std::uint32_t> se_w;

  // Ego-network source: one-shot global listing (Section 6.2) or the
  // per-vertex extractor (ablation). The listing is shared read-only
  // across workers.
  std::unique_ptr<GlobalEgoNetworks> global;
  if (options.use_global_listing) {
    WallTimer listing;
    // The listing's triangle passes run on the build workers too (it used
    // to be the build's sequential prologue).
    global = std::make_unique<GlobalEgoNetworks>(
        graph, ParallelConfig{options.num_threads, 0});
    index.build_stats_.extraction_seconds += listing.Seconds();
  }

  const std::uint32_t num_chunks =
      EffectiveChunks(ParallelConfig{options.num_threads, 0}, n);
  std::vector<GctChunk> chunks(num_chunks);

  ParallelForChunks(
      n, num_chunks, options.num_threads,
      [&](std::uint32_t c, std::uint64_t begin, std::uint64_t end) {
        GctChunk& chunk = chunks[c];
        EgoNetworkExtractor extractor(graph);
        EgoTrussDecomposer decomposer(options.method);
        EgoNetwork ego;
        SupernodeBuilder scratch;
        for (std::uint64_t v = begin; v < end; ++v) {
          {
            ScopedTimer t(&chunk.extraction_seconds);
            if (global != nullptr) {
              global->MaterializeInto(static_cast<VertexId>(v), &ego);
            } else {
              extractor.ExtractInto(static_cast<VertexId>(v), &ego);
            }
          }
          std::vector<std::uint32_t> trussness;
          {
            ScopedTimer t(&chunk.decomposition_seconds);
            trussness = decomposer.Compute(ego);
          }
          ScopedTimer t(&chunk.assembly_seconds);
          AssembleSupernodes(ego, trussness, scratch, chunk);
        }
      });

  // Merge chunks in vertex order.
  VertexId v = 0;
  std::size_t sn_cursor = 0;
  for (GctChunk& chunk : chunks) {
    std::size_t local_sn = 0;
    std::size_t local_se = 0;
    for (std::size_t i = 0; i < chunk.per_vertex_sn_count.size(); ++i) {
      local_sn += chunk.per_vertex_sn_count[i];
      local_se += chunk.per_vertex_se_count[i];
      sn_offsets[v + 1] = static_cast<std::uint32_t>(sn_cursor + local_sn);
      se_offsets[v + 1] = static_cast<std::uint32_t>(se_w.size() + local_se);
      ++v;
    }
    sn_cursor += local_sn;
    sn_tau.insert(sn_tau.end(), chunk.sn_tau.begin(), chunk.sn_tau.end());
    for (std::uint32_t count : chunk.sn_member_count) {
      TSD_CHECK_MSG(member_offsets.back() + std::uint64_t{count} < UINT32_MAX,
                    "GCT member array overflows 32-bit offsets");
      member_offsets.push_back(member_offsets.back() + count);
    }
    members.insert(members.end(), chunk.members.begin(), chunk.members.end());
    se_a.insert(se_a.end(), chunk.se_a.begin(), chunk.se_a.end());
    se_b.insert(se_b.end(), chunk.se_b.begin(), chunk.se_b.end());
    se_w.insert(se_w.end(), chunk.se_w.begin(), chunk.se_w.end());
    index.max_trussness_ = std::max(index.max_trussness_, chunk.max_trussness);
    index.build_stats_.extraction_seconds += chunk.extraction_seconds;
    index.build_stats_.decomposition_seconds += chunk.decomposition_seconds;
    index.build_stats_.assembly_seconds += chunk.assembly_seconds;
  }
  TSD_CHECK(v == n);
  index.sn_offsets_ = std::move(sn_offsets);
  index.sn_tau_ = std::move(sn_tau);
  index.member_offsets_ = std::move(member_offsets);
  index.members_ = std::move(members);
  index.se_offsets_ = std::move(se_offsets);
  index.se_a_ = std::move(se_a);
  index.se_b_ = std::move(se_b);
  index.se_w_ = std::move(se_w);
  index.build_stats_.total_seconds = total.Seconds();
  return index;
}

std::uint32_t GctIndex::Score(VertexId v, std::uint32_t k) const {
  TSD_DCHECK(k >= 2);
  TSD_DCHECK(v < num_vertices());
  // N_k: supernodes with trussness >= k (slice sorted descending).
  const auto sn_first = sn_tau_.begin() + sn_offsets_[v];
  const auto sn_last = sn_tau_.begin() + sn_offsets_[v + 1];
  const auto n_k = std::partition_point(
      sn_first, sn_last, [k](std::uint32_t tau) { return tau >= k; });
  // M_k: superedges with weight >= k.
  const auto se_first = se_w_.begin() + se_offsets_[v];
  const auto se_last = se_w_.begin() + se_offsets_[v + 1];
  const auto m_k = std::partition_point(
      se_first, se_last, [k](std::uint32_t w) { return w >= k; });
  // Lemma 3.
  return static_cast<std::uint32_t>((n_k - sn_first) - (m_k - se_first));
}

void GctIndex::ScoresForThresholds(VertexId v,
                                   std::span<const std::uint32_t> thresholds,
                                   std::uint32_t* scores) const {
  TSD_DCHECK(v < num_vertices());
  // Both slices are sorted by weight descending, so the ≥k prefixes only
  // grow as the threshold drops: one merged sweep serves every k.
  const auto sn_begin = sn_offsets_[v];
  const auto sn_end = sn_offsets_[v + 1];
  const auto se_begin = se_offsets_[v];
  const auto se_end = se_offsets_[v + 1];
  std::uint32_t n_k = 0;
  std::uint32_t m_k = 0;
  for (std::size_t t = 0; t < thresholds.size(); ++t) {
    const std::uint32_t k = thresholds[t];
    TSD_DCHECK(t == 0 || thresholds[t - 1] > k);
    while (sn_begin + n_k < sn_end && sn_tau_[sn_begin + n_k] >= k) ++n_k;
    while (se_begin + m_k < se_end && se_w_[se_begin + m_k] >= k) ++m_k;
    scores[t] = n_k - m_k;  // Lemma 3
  }
}

ScoreResult GctIndex::ScoreWithContexts(VertexId v, std::uint32_t k,
                                        IndexQueryScratch& scratch) const {
  TSD_CHECK(k >= 2);
  TSD_CHECK(v < num_vertices());
  const auto sn_begin = sn_offsets_[v];
  const auto sn_end = sn_offsets_[v + 1];
  std::uint32_t n_k = 0;
  while (sn_begin + n_k < sn_end && sn_tau_[sn_begin + n_k] >= k) ++n_k;

  scratch.dsu.Reset(n_k);
  const auto se_begin = se_offsets_[v];
  const auto se_end = se_offsets_[v + 1];
  for (auto i = se_begin; i < se_end && se_w_[i] >= k; ++i) {
    TSD_DCHECK(se_a_[i] < n_k && se_b_[i] < n_k);
    scratch.dsu.Union(se_a_[i], se_b_[i]);
  }

  // Supernode roots map to context slots through a dense root→slot vector
  // in first-occurrence order; contexts then sort by smallest member, the
  // same output order as the historical hash-map grouping.
  constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);
  scratch.slots.assign(n_k, kNoSlot);
  ScoreResult result;
  for (std::uint32_t i = 0; i < n_k; ++i) {
    const std::uint32_t root = scratch.dsu.Find(i);
    if (scratch.slots[root] == kNoSlot) {
      scratch.slots[root] = static_cast<std::uint32_t>(result.contexts.size());
      result.contexts.emplace_back();
    }
    SocialContext& context = result.contexts[scratch.slots[root]];
    const auto mem_begin = member_offsets_[sn_begin + i];
    const auto mem_end = member_offsets_[sn_begin + i + 1];
    context.insert(context.end(), members_.begin() + mem_begin,
                   members_.begin() + mem_end);
  }
  result.score = static_cast<std::uint32_t>(result.contexts.size());
  for (SocialContext& context : result.contexts) {
    std::sort(context.begin(), context.end());
  }
  std::sort(result.contexts.begin(), result.contexts.end(),
            [](const SocialContext& a, const SocialContext& b) {
              return a.front() < b.front();
            });
  TSD_DCHECK(result.score == Score(v, k));
  return result;
}

TopRResult GctIndex::TopR(std::uint32_t r, std::uint32_t k,
                          QuerySession& session) const {
  TSD_CHECK(r >= 1);
  TSD_CHECK(k >= 2);
  WallTimer total;
  TopRResult result;
  const VertexId n = num_vertices();

  // Index-only pipeline: score queries are two binary searches per vertex.
  QueryPipeline& pipeline = session.IndexPipeline();
  TopRCollector collector(r);
  {
    ScopedTimer t(&result.stats.score_seconds);
    result.stats.vertices_scored = pipeline.ScoreRange(
        n, &collector,
        [&](QueryWorkspace&, VertexId v) { return Score(v, k); });
  }
  {
    ScopedTimer t(&result.stats.context_seconds);
    pipeline.MaterializeEntries(
        collector.Ranked(), &result.entries,
        [&](QueryWorkspace& ws, VertexId v) {
          return ScoreWithContexts(v, k, ws.index_scratch()).contexts;
        });
  }
  result.stats.threads_used = pipeline.num_threads();
  result.stats.total_seconds = total.Seconds();
  return result;
}

std::vector<TopRResult> GctIndex::SearchBatch(
    std::span<const BatchQuery> queries, QuerySession& session) const {
  WallTimer total;
  std::vector<TopRResult> results(queries.size());
  if (queries.empty()) return results;
  SearchStats stats;
  BatchQueryRunner runner(queries);
  QueryPipeline& pipeline = session.IndexPipeline();

  {
    ScopedTimer t(&stats.score_seconds);
    stats.vertices_scored = runner.Scan(
        pipeline, num_vertices(),
        [this, &runner](QueryWorkspace&, VertexId v, std::uint32_t* out) {
          ScoresForThresholds(v, runner.thresholds(), out);
        });
  }

  {
    ScopedTimer t(&stats.context_seconds);
    runner.MaterializeGrouped(
        pipeline, &results, [](QueryWorkspace&, VertexId) {},
        [this](QueryWorkspace& ws, VertexId v, std::uint32_t k) {
          return ScoreWithContexts(v, k, ws.index_scratch()).contexts;
        });
  }

  stats.threads_used = pipeline.num_threads();
  stats.total_seconds = total.Seconds();
  FillBatchStats(&results, stats);
  return results;
}

std::size_t GctIndex::SizeBytes() const {
  return (sn_offsets_.size() + sn_tau_.size() + member_offsets_.size() +
          se_offsets_.size() + se_a_.size() + se_b_.size() + se_w_.size()) *
             sizeof(std::uint32_t) +
         members_.size() * sizeof(VertexId);
}

void GctIndex::Save(const std::string& path) const {
  SnapshotWriter writer(path);
  AppendToSnapshot(writer);
  writer.Finish();
}

GctIndex GctIndex::Load(const std::string& path) {
  SnapshotReader reader;
  std::string error;
  TSD_CHECK_MSG(SnapshotReader::Open(path, &reader, &error), error);
  GctIndex index;
  TSD_CHECK_MSG(LoadFromSnapshot(reader, &index, &error), error);
  return index;
}

void GctIndex::AppendToSnapshot(SnapshotWriter& writer) const {
  const std::uint64_t meta[] = {kGctSchemaVersion, num_vertices(),
                                max_trussness_};
  writer.AddScalars(kGctMetaTag, meta);
  writer.AddArray(kGctSnOffsetsTag, sn_offsets_.span());
  writer.AddArray(kGctSnTauTag, sn_tau_.span());
  writer.AddArray(kGctMemberOffsetsTag, member_offsets_.span());
  writer.AddArray(kGctMembersTag, members_.span());
  writer.AddArray(kGctSeOffsetsTag, se_offsets_.span());
  writer.AddArray(kGctSeATag, se_a_.span());
  writer.AddArray(kGctSeBTag, se_b_.span());
  writer.AddArray(kGctSeWTag, se_w_.span());
}

bool GctIndex::LoadFromSnapshot(const SnapshotReader& reader, GctIndex* out,
                                std::string* error) {
  *out = GctIndex();

  std::uint64_t meta[3] = {};
  if (!reader.ReadScalars(kGctMetaTag, meta, error)) return false;
  if (meta[0] != kGctSchemaVersion) {
    return Fail(error, "unsupported GCT schema version " +
                           std::to_string(meta[0]) + " (this build reads " +
                           std::to_string(kGctSchemaVersion) + ")");
  }
  if (meta[1] > kInvalidVertex) return Fail(error, "vertex count overflow");
  const auto n = static_cast<VertexId>(meta[1]);
  const auto max_trussness = static_cast<std::uint32_t>(meta[2]);

  std::span<const std::uint32_t> sn_offsets;
  std::span<const std::uint32_t> sn_tau;
  std::span<const std::uint32_t> member_offsets;
  std::span<const VertexId> members;
  std::span<const std::uint32_t> se_offsets;
  std::span<const std::uint32_t> se_a;
  std::span<const std::uint32_t> se_b;
  std::span<const std::uint32_t> se_w;
  if (!reader.Read(kGctSnOffsetsTag, &sn_offsets, error) ||
      !reader.Read(kGctSnTauTag, &sn_tau, error) ||
      !reader.Read(kGctMemberOffsetsTag, &member_offsets, error) ||
      !reader.Read(kGctMembersTag, &members, error) ||
      !reader.Read(kGctSeOffsetsTag, &se_offsets, error) ||
      !reader.Read(kGctSeATag, &se_a, error) ||
      !reader.Read(kGctSeBTag, &se_b, error) ||
      !reader.Read(kGctSeWTag, &se_w, error)) {
    return false;
  }

  // Cheap structural pre-checks: sizes, monotone offsets, and bounds, so
  // that CheckInvariants below (which trusts offset arithmetic) cannot be
  // driven out of range or into an attacker-sized allocation.
  if (sn_offsets.size() != std::size_t{n} + 1 ||
      se_offsets.size() != std::size_t{n} + 1) {
    return Fail(error, "offsets size mismatch");
  }
  if (member_offsets.size() != sn_tau.size() + 1) {
    return Fail(error, "member offsets size mismatch");
  }
  if (se_a.size() != se_w.size() || se_b.size() != se_w.size()) {
    return Fail(error, "superedge arrays size mismatch");
  }
  if (sn_offsets[0] != 0 || sn_offsets[n] != sn_tau.size() ||
      se_offsets[0] != 0 || se_offsets[n] != se_w.size() ||
      member_offsets[0] != 0 || member_offsets.back() != members.size()) {
    return Fail(error, "offsets do not span their arrays");
  }
  for (VertexId v = 0; v < n; ++v) {
    if (sn_offsets[v] > sn_offsets[v + 1] ||
        se_offsets[v] > se_offsets[v + 1]) {
      return Fail(error, "offsets not monotone");
    }
  }
  for (std::size_t i = 0; i + 1 < member_offsets.size(); ++i) {
    if (member_offsets[i] > member_offsets[i + 1]) {
      return Fail(error, "member offsets not monotone");
    }
  }
  std::uint32_t seen_max_trussness = 0;
  for (const std::uint32_t tau : sn_tau) {
    seen_max_trussness = std::max(seen_max_trussness, tau);
  }
  if (seen_max_trussness != max_trussness) {
    return Fail(error, "max trussness mismatch");
  }
  for (const VertexId member : members) {
    if (member >= n) return Fail(error, "member vertex out of range");
  }

  GctIndex index;
  index.sn_offsets_.BindView(sn_offsets);
  index.sn_tau_.BindView(sn_tau);
  index.member_offsets_.BindView(member_offsets);
  index.members_.BindView(members);
  index.se_offsets_.BindView(se_offsets);
  index.se_a_.BindView(se_a);
  index.se_b_.BindView(se_b);
  index.se_w_.BindView(se_w);
  index.max_trussness_ = max_trussness;
  index.mapping_ = reader.mapping();

  // The deep semantic invariants (slice ordering, superedge weights, forest
  // acyclicity) are shared with the build-time checker; translate its CHECK
  // failures into this API's error-return discipline.
  try {
    index.CheckInvariants();
  } catch (const CheckError& e) {
    return Fail(error, e.what());
  }
  *out = std::move(index);
  return true;
}

void GctIndex::CheckInvariants() const {
  const VertexId n = num_vertices();
  TSD_CHECK(se_offsets_.size() == sn_offsets_.size());
  TSD_CHECK(sn_offsets_.back() == sn_tau_.size());
  TSD_CHECK(member_offsets_.size() == sn_tau_.size() + 1);
  TSD_CHECK(member_offsets_.back() == members_.size());
  TSD_CHECK(se_offsets_.back() == se_w_.size());
  TSD_CHECK(se_a_.size() == se_w_.size() && se_b_.size() == se_w_.size());

  // One union-find arena reused across vertices; a fresh DisjointSet per
  // vertex would make this pass allocation-bound on large graphs.
  DisjointSet forest;
  for (VertexId v = 0; v < n; ++v) {
    const auto sn_begin = sn_offsets_[v];
    const auto sn_end = sn_offsets_[v + 1];
    const std::uint32_t num_sn =
        static_cast<std::uint32_t>(sn_end - sn_begin);
    for (auto i = sn_begin; i + 1 < sn_end; ++i) {
      TSD_CHECK_MSG(sn_tau_[i] >= sn_tau_[i + 1],
                    "supernode trussness not descending at vertex " << v);
    }
    for (auto i = sn_begin; i < sn_end; ++i) {
      TSD_CHECK_MSG(sn_tau_[i] >= 2, "supernode trussness below 2");
      TSD_CHECK(member_offsets_[i + 1] > member_offsets_[i]);
    }
    forest.Reset(num_sn);
    const auto se_begin = se_offsets_[v];
    const auto se_end = se_offsets_[v + 1];
    for (auto i = se_begin; i < se_end; ++i) {
      TSD_CHECK(se_a_[i] < num_sn && se_b_[i] < num_sn);
      if (i + 1 < se_end) TSD_CHECK(se_w_[i] >= se_w_[i + 1]);
      const std::uint32_t tau_a = sn_tau_[sn_begin + se_a_[i]];
      const std::uint32_t tau_b = sn_tau_[sn_begin + se_b_[i]];
      TSD_CHECK_MSG(se_w_[i] <= tau_a && se_w_[i] <= tau_b,
                    "superedge heavier than its endpoints");
      TSD_CHECK_MSG(se_w_[i] < tau_a || se_w_[i] < tau_b,
                    "superedge endpoints should have merged");
      TSD_CHECK_MSG(forest.Union(se_a_[i], se_b_[i]),
                    "superedge cycle at vertex " << v);
    }
  }
}

}  // namespace tsd
