// score(v) computation (Algorithm 2): the number of maximal connected
// k-trusses in the ego-network G_N(v), with optional materialization of the
// social contexts themselves.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "graph/ego_network.h"

namespace tsd {

/// Result of scoring one ego-network.
struct ScoreResult {
  std::uint32_t score = 0;
  /// Filled only when requested; contexts hold global vertex ids, each
  /// sorted, list sorted by smallest member.
  std::vector<SocialContext> contexts;
};

/// Counts (and optionally materializes) the connected components of the
/// k-truss of `ego`, given the per-edge trussness of the ego-network
/// (parallel to ego.edges). Lines 3–5 of Algorithm 2.
ScoreResult ScoreFromEgoTrussness(const EgoNetwork& ego,
                                  const std::vector<std::uint32_t>& trussness,
                                  std::uint32_t k, bool want_contexts);

/// Counts components with >= min_size vertices in `ego` (Comp-Div model).
ScoreResult ScoreComponents(const EgoNetwork& ego, std::uint32_t min_size,
                            bool want_contexts);

/// Counts maximal connected k-cores in `ego` (Core-Div model). Requires the
/// ego CSR (BuildCsr).
ScoreResult ScoreKCores(EgoNetwork& ego, std::uint32_t k, bool want_contexts);

}  // namespace tsd
