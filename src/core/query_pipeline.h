// The shared per-vertex query engine behind every DiversitySearcher.
//
// The full paper (arXiv:2007.05437) stresses that per-vertex ego-truss work
// is embarrassingly parallel; before this engine only the index *builders*
// exploited that. QueryPipeline owns one reusable workspace per worker
// thread (ego-network extractor + truss decomposer + scratch EgoNetwork +
// trussness buffer) and runs candidate vertices through a caller-supplied
// scoring kernel via the chunked parallel-for in common/parallel.h. The
// steady-state hot path performs no heap allocation: every buffer a kernel
// needs lives in the workspace and is reused vertex to vertex.
//
// Determinism: the top-r answer set under the library-wide total order
// (score desc, id asc) is unique, so per-worker collectors merged in worker
// order yield rankings bit-identical to the sequential scan at any thread
// count. Bound-ordered scans prune conservatively — a parallel round only
// skips candidates the sequential scan would also have skipped — so
// rankings match there too; only the number of exactly-scored candidates
// (SearchStats::vertices_scored) can grow, because parallel rounds prune at
// batch rather than per-vertex granularity.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "core/query_scratch.h"
#include "core/top_r_collector.h"
#include "core/types.h"
#include "graph/ego_network.h"
#include "truss/ego_truss.h"

namespace tsd {

/// Per-worker scratch: everything a scoring kernel needs, reused across
/// vertices and across queries. Not thread-safe; the pipeline hands each
/// worker its own instance.
class QueryWorkspace {
 public:
  /// `graph` may be null for index-only pipelines (TSD/GCT scans, which
  /// never touch an ego-network).
  QueryWorkspace(const Graph* graph, EgoTrussMethod method);

  /// Retargets the extractor to another graph, reusing scratch.
  void Rebind(const Graph& graph);

  /// Extracts G_N(v) into the reusable scratch ego and returns it.
  EgoNetwork& ExtractEgo(VertexId v);

  /// ExtractEgo + truss decomposition; trussness() is parallel to the
  /// returned ego's edges.
  EgoNetwork& DecomposeEgo(VertexId v);

  const std::vector<std::uint32_t>& trussness() const { return trussness_; }
  EgoNetwork& ego() { return ego_; }
  EgoTrussDecomposer& decomposer() { return decomposer_; }

  /// Reusable scratch for index score/context kernels (TSD endpoint dedup,
  /// GCT context grouping) — no steady-state allocation across queries.
  IndexQueryScratch& index_scratch() { return index_scratch_; }

  /// Reusable multi-threshold scorer for batch queries.
  MultiKEgoScorer& multi_scorer() { return multi_scorer_; }

  /// Generic per-worker u32 buffer (per-threshold score staging in batch
  /// kernels).
  std::vector<std::uint32_t>& u32_scratch() { return u32_scratch_; }

  /// Bytes currently reserved by the reusable scratch structures; exposed
  /// so tests can assert the steady state allocates nothing new.
  std::size_t scratch_capacity_bytes() const {
    return index_scratch_.capacity_bytes() + multi_scorer_.capacity_bytes() +
           trussness_.capacity() * sizeof(std::uint32_t) +
           u32_scratch_.capacity() * sizeof(std::uint32_t);
  }

 private:
  std::optional<EgoNetworkExtractor> extractor_;
  EgoTrussDecomposer decomposer_;
  EgoNetwork ego_;
  std::vector<std::uint32_t> trussness_;
  IndexQueryScratch index_scratch_;
  MultiKEgoScorer multi_scorer_;
  std::vector<std::uint32_t> u32_scratch_;
};

/// Reusable parallel engine for per-vertex scoring and context
/// materialization. Construct once per (graph, method, options) and share
/// across queries; all entry points are deterministic at any thread count.
///
/// Kernels receive (QueryWorkspace&, VertexId) and must not touch state
/// outside their workspace; the pipeline never runs one workspace on two
/// threads at once.
class QueryPipeline {
 public:
  /// Full pipeline whose workspaces can extract ego-networks of `graph`.
  QueryPipeline(const Graph& graph, EgoTrussMethod method,
                const QueryOptions& options);

  /// Index-only pipeline: kernels read a prebuilt index and never need an
  /// extractor (TSD / GCT query scans).
  explicit QueryPipeline(const QueryOptions& options);

  /// Retargets every workspace to another graph (same or smaller id space
  /// reuses all scratch). Used by the bound search for its per-query
  /// sparsified subgraph.
  void Rebind(const Graph& graph);

  std::uint32_t num_threads() const { return options_.num_threads; }

  /// Direct access to one worker's scratch, for single-vertex entry points
  /// (tsdtool score, HybridSearcher's per-winner recomputation) that want
  /// workspace reuse without a full scan. Caller must not be inside a
  /// pipeline run.
  QueryWorkspace& workspace(std::uint32_t worker) {
    TSD_DCHECK(worker < workspaces_.size());
    return *workspaces_[worker];
  }

  /// Scores every vertex in [0, num_candidates) with
  /// `fn(workspace, v) -> std::uint32_t` and offers all results into
  /// `collector`. Returns the number of vertices scored (== num_candidates).
  template <typename ScoreFn>
  std::uint64_t ScoreRange(VertexId num_candidates, TopRCollector* collector,
                           ScoreFn&& fn);

  /// Bound-ordered scan with early termination (Algorithm 4 discipline):
  /// visits `order` front to back — callers pass candidates sorted by
  /// non-increasing `bounds[v]` — and stops once no remaining candidate can
  /// displace the current r-th answer. Sequential runs prune per vertex;
  /// parallel runs prune between rounds of one chunk per worker. Returns
  /// the number of candidates exactly scored.
  template <typename ScoreFn>
  std::uint64_t ScoreOrdered(std::span<const VertexId> order,
                             std::span<const std::uint32_t> bounds,
                             TopRCollector* collector, ScoreFn&& fn);

  /// Batch analogue of ScoreOrdered: visits `order` front to back —
  /// candidates sorted by non-increasing `bounds[v]`, where bounds[v] must
  /// upper-bound v's score for EVERY collector's query — and stops once
  /// every collector can prune the remaining range. Because the shared
  /// bound dominates each query's own bound, a skipped candidate could not
  /// have displaced any query's r-th answer, so each collector ends
  /// bit-identical to a full ScoreRangeMulti pass. Returns the number of
  /// candidates exactly scored.
  template <typename MultiScoreFn>
  std::uint64_t ScoreOrderedMulti(std::span<const VertexId> order,
                                  std::span<const std::uint32_t> bounds,
                                  std::span<TopRCollector* const> collectors,
                                  MultiScoreFn&& fn);

  /// Batch variant of ScoreRange: one pass over [0, num_candidates) scoring
  /// every vertex for all queries at once. `fn(workspace, v, scores)` fills
  /// scores[q] for each q in [0, collectors.size()); each score is offered
  /// into collectors[q]. Because the top-r set under the total order is
  /// unique, each collector ends bit-identical to a dedicated ScoreRange
  /// pass offering the same per-vertex scores, at any thread count.
  template <typename MultiScoreFn>
  std::uint64_t ScoreRangeMulti(VertexId num_candidates,
                                std::span<TopRCollector* const> collectors,
                                MultiScoreFn&& fn);

  /// Parallel per-vertex map `fn(workspace, v) -> std::uint32_t` into
  /// `(*out)[v]` for v in [0, num_candidates) — the bound-computation pass.
  template <typename MapFn>
  void MapScores(VertexId num_candidates, std::vector<std::uint32_t>* out,
                 MapFn&& fn);

  /// Parallel loop `fn(workspace, i)` over i in [0, num_items) with one
  /// workspace per worker. Deterministic as long as distinct items write
  /// disjoint output slots (the grouped context-materialization pattern of
  /// the batch searchers).
  template <typename ItemFn>
  void ForEach(std::uint64_t num_items, ItemFn&& fn);

  /// Materializes the winners' TopREntry list (the context phase shared by
  /// all searchers): for each (vertex, score) of `ranked`, in rank order,
  /// fills entry i with contexts from
  /// `fn(workspace, vertex) -> std::vector<SocialContext>`.
  template <typename ContextFn>
  void MaterializeEntries(
      const std::vector<std::pair<VertexId, std::uint32_t>>& ranked,
      std::vector<TopREntry>* entries, ContextFn&& fn);

 private:
  std::uint32_t ResolveChunks(std::uint64_t total) const;
  void MergeInto(std::vector<TopRCollector>& locals,
                 TopRCollector* collector) const;

  QueryOptions options_;
  // unique_ptr keeps workspace addresses stable and sidesteps copying the
  // non-copyable scratch when the vector is built.
  std::vector<std::unique_ptr<QueryWorkspace>> workspaces_;
};

/// Lazily builds (and caches) a pipeline so a searcher can keep one set of
/// workspaces alive across queries and rebuild only when the requested
/// options change.
class PipelineCache {
 public:
  QueryPipeline& For(const Graph& graph, EgoTrussMethod method,
                     const QueryOptions& options);

 private:
  std::unique_ptr<QueryPipeline> pipeline_;
  QueryOptions cached_options_;
  const Graph* cached_graph_ = nullptr;
  EgoTrussMethod cached_method_ = EgoTrussMethod::kAuto;
};

/// Reads the canonical --threads / --chunks pipeline knobs (shared by
/// tsdtool and every query benchmark; values clamped to sane ranges).
QueryOptions QueryOptionsFromFlags(const Flags& flags);

/// The preprocessing-layer view of the same knobs: graph/truss kernels
/// (global truss decomposition, triangle counting, the global ego listing)
/// take a common/ ParallelConfig so they stay below core/ in the layering.
inline ParallelConfig ToParallelConfig(const QueryOptions& options) {
  return ParallelConfig{options.num_threads, options.num_chunks,
                        options.truss_plan};
}

// ---------------------------------------------------------------------------
// Template implementations.

template <typename ScoreFn>
std::uint64_t QueryPipeline::ScoreRange(VertexId num_candidates,
                                        TopRCollector* collector,
                                        ScoreFn&& fn) {
  if (options_.num_threads == 1) {
    QueryWorkspace& ws = *workspaces_[0];
    for (VertexId v = 0; v < num_candidates; ++v) {
      collector->Offer(v, fn(ws, v));
    }
    return num_candidates;
  }

  std::vector<TopRCollector> locals(options_.num_threads,
                                    TopRCollector(collector->capacity()));
  ParallelForChunksIndexed(
      num_candidates, ResolveChunks(num_candidates), options_.num_threads,
      [&](std::uint32_t worker, std::uint32_t /*chunk*/, std::uint64_t begin,
          std::uint64_t end) {
        QueryWorkspace& ws = *workspaces_[worker];
        TopRCollector& local = locals[worker];
        for (std::uint64_t v = begin; v < end; ++v) {
          local.Offer(static_cast<VertexId>(v),
                      fn(ws, static_cast<VertexId>(v)));
        }
      });
  MergeInto(locals, collector);
  return num_candidates;
}

template <typename ScoreFn>
std::uint64_t QueryPipeline::ScoreOrdered(std::span<const VertexId> order,
                                          std::span<const std::uint32_t> bounds,
                                          TopRCollector* collector,
                                          ScoreFn&& fn) {
  std::uint64_t scored = 0;
  if (options_.num_threads == 1) {
    QueryWorkspace& ws = *workspaces_[0];
    for (VertexId v : order) {
      if (collector->CanPrune(bounds[v], v)) break;  // early termination
      collector->Offer(v, fn(ws, v));
      ++scored;
    }
    return scored;
  }

  // Rounds of work split across the workers; the termination check runs
  // between rounds against the merged collector. Candidates are
  // bound-sorted, so checking the first candidate of a round covers the
  // whole round. Round sizes ramp geometrically under the QueryOptions
  // ramp knobs: the first rounds stay small so a search that terminates
  // after a handful of candidates (r small, bounds tight — Example 3
  // scores exactly one vertex) does not pay for a full chunk per worker,
  // while long scans quickly reach full chunk-sized rounds.
  const std::uint32_t num_threads = options_.num_threads;
  const std::uint64_t total = order.size();
  const std::uint64_t chunk_size =
      (total + ResolveChunks(total) - 1) / ResolveChunks(total);
  const std::uint64_t max_round_size =
      std::max<std::uint64_t>(chunk_size * num_threads, num_threads);
  const std::uint64_t growth =
      std::max<std::uint64_t>(1, options_.ramp_growth);
  std::uint64_t round_size = std::min<std::uint64_t>(
      max_round_size,
      std::max<std::uint64_t>(
          std::uint64_t{num_threads} *
              std::max<std::uint32_t>(1, options_.ramp_base_per_thread),
          collector->capacity()));
  std::vector<TopRCollector> locals;
  std::uint64_t round_begin = 0;
  while (round_begin < total) {
    const VertexId first = order[round_begin];
    if (collector->CanPrune(bounds[first], first)) break;
    const std::uint64_t round_end = std::min(total, round_begin + round_size);
    locals.assign(num_threads, TopRCollector(collector->capacity()));
    ParallelForChunksIndexed(
        round_end - round_begin, num_threads, num_threads,
        [&](std::uint32_t worker, std::uint32_t /*chunk*/,
            std::uint64_t begin, std::uint64_t end) {
          QueryWorkspace& ws = *workspaces_[worker];
          TopRCollector& local = locals[worker];
          for (std::uint64_t i = begin; i < end; ++i) {
            const VertexId v = order[round_begin + i];
            local.Offer(v, fn(ws, v));
          }
        });
    MergeInto(locals, collector);
    scored += round_end - round_begin;
    round_begin = round_end;
    round_size = std::min(max_round_size, round_size * growth);
  }
  return scored;
}

template <typename MultiScoreFn>
std::uint64_t QueryPipeline::ScoreOrderedMulti(
    std::span<const VertexId> order, std::span<const std::uint32_t> bounds,
    std::span<TopRCollector* const> collectors, MultiScoreFn&& fn) {
  const std::size_t num_queries = collectors.size();
  if (num_queries == 0) return 0;
  const auto all_can_prune = [&](VertexId v) {
    for (TopRCollector* collector : collectors) {
      if (!collector->CanPrune(bounds[v], v)) return false;
    }
    return true;
  };

  std::uint64_t scored = 0;
  if (options_.num_threads == 1) {
    QueryWorkspace& ws = *workspaces_[0];
    std::vector<std::uint32_t> scores(num_queries);
    for (VertexId v : order) {
      if (all_can_prune(v)) break;  // early termination for the whole batch
      fn(ws, v, scores.data());
      for (std::size_t q = 0; q < num_queries; ++q) {
        collectors[q]->Offer(v, scores[q]);
      }
      ++scored;
    }
    return scored;
  }

  // Same round discipline as ScoreOrdered, with the per-(worker, query)
  // local collectors of ScoreRangeMulti; the between-round termination
  // check asks every collector before continuing.
  const std::uint32_t num_threads = options_.num_threads;
  const std::uint64_t total = order.size();
  const std::uint64_t chunk_size =
      (total + ResolveChunks(total) - 1) / ResolveChunks(total);
  const std::uint64_t max_round_size =
      std::max<std::uint64_t>(chunk_size * num_threads, num_threads);
  const std::uint64_t growth =
      std::max<std::uint64_t>(1, options_.ramp_growth);
  std::uint64_t max_capacity = 0;
  for (TopRCollector* collector : collectors) {
    max_capacity = std::max<std::uint64_t>(max_capacity, collector->capacity());
  }
  std::uint64_t round_size = std::min<std::uint64_t>(
      max_round_size,
      std::max<std::uint64_t>(
          std::uint64_t{num_threads} *
              std::max<std::uint32_t>(1, options_.ramp_base_per_thread),
          max_capacity));

  std::vector<std::vector<TopRCollector>> locals(num_threads);
  std::vector<std::vector<std::uint32_t>> scores(num_threads);
  for (std::uint32_t t = 0; t < num_threads; ++t) scores[t].resize(num_queries);
  std::uint64_t round_begin = 0;
  while (round_begin < total) {
    const VertexId first = order[round_begin];
    if (all_can_prune(first)) break;
    const std::uint64_t round_end = std::min(total, round_begin + round_size);
    for (std::uint32_t t = 0; t < num_threads; ++t) {
      locals[t].clear();
      for (std::size_t q = 0; q < num_queries; ++q) {
        locals[t].emplace_back(collectors[q]->capacity());
      }
    }
    ParallelForChunksIndexed(
        round_end - round_begin, num_threads, num_threads,
        [&](std::uint32_t worker, std::uint32_t /*chunk*/,
            std::uint64_t begin, std::uint64_t end) {
          QueryWorkspace& ws = *workspaces_[worker];
          for (std::uint64_t i = begin; i < end; ++i) {
            const VertexId v = order[round_begin + i];
            fn(ws, v, scores[worker].data());
            for (std::size_t q = 0; q < num_queries; ++q) {
              locals[worker][q].Offer(v, scores[worker][q]);
            }
          }
        });
    for (std::size_t q = 0; q < num_queries; ++q) {
      for (std::uint32_t t = 0; t < num_threads; ++t) {
        for (const auto& [vertex, score] : locals[t][q].TakeRanked()) {
          collectors[q]->Offer(vertex, score);
        }
      }
    }
    scored += round_end - round_begin;
    round_begin = round_end;
    round_size = std::min(max_round_size, round_size * growth);
  }
  return scored;
}

template <typename MultiScoreFn>
std::uint64_t QueryPipeline::ScoreRangeMulti(
    VertexId num_candidates, std::span<TopRCollector* const> collectors,
    MultiScoreFn&& fn) {
  const std::size_t num_queries = collectors.size();
  if (num_queries == 0) return 0;
  if (options_.num_threads == 1) {
    QueryWorkspace& ws = *workspaces_[0];
    std::vector<std::uint32_t> scores(num_queries);
    for (VertexId v = 0; v < num_candidates; ++v) {
      fn(ws, v, scores.data());
      for (std::size_t q = 0; q < num_queries; ++q) {
        collectors[q]->Offer(v, scores[q]);
      }
    }
    return num_candidates;
  }

  // One local collector per (worker, query); scores staged per worker.
  std::vector<std::vector<TopRCollector>> locals(options_.num_threads);
  std::vector<std::vector<std::uint32_t>> scores(options_.num_threads);
  for (std::uint32_t t = 0; t < options_.num_threads; ++t) {
    locals[t].reserve(num_queries);
    for (std::size_t q = 0; q < num_queries; ++q) {
      locals[t].emplace_back(collectors[q]->capacity());
    }
    scores[t].resize(num_queries);
  }
  ParallelForChunksIndexed(
      num_candidates, ResolveChunks(num_candidates), options_.num_threads,
      [&](std::uint32_t worker, std::uint32_t /*chunk*/, std::uint64_t begin,
          std::uint64_t end) {
        QueryWorkspace& ws = *workspaces_[worker];
        for (std::uint64_t v = begin; v < end; ++v) {
          fn(ws, static_cast<VertexId>(v), scores[worker].data());
          for (std::size_t q = 0; q < num_queries; ++q) {
            locals[worker][q].Offer(static_cast<VertexId>(v),
                                    scores[worker][q]);
          }
        }
      });
  for (std::size_t q = 0; q < num_queries; ++q) {
    for (std::uint32_t t = 0; t < options_.num_threads; ++t) {
      for (const auto& [vertex, score] : locals[t][q].TakeRanked()) {
        collectors[q]->Offer(vertex, score);
      }
    }
  }
  return num_candidates;
}

template <typename MapFn>
void QueryPipeline::MapScores(VertexId num_candidates,
                              std::vector<std::uint32_t>* out, MapFn&& fn) {
  out->resize(num_candidates);
  if (options_.num_threads == 1) {
    QueryWorkspace& ws = *workspaces_[0];
    for (VertexId v = 0; v < num_candidates; ++v) (*out)[v] = fn(ws, v);
    return;
  }
  ParallelForChunksIndexed(
      num_candidates, ResolveChunks(num_candidates), options_.num_threads,
      [&](std::uint32_t worker, std::uint32_t /*chunk*/, std::uint64_t begin,
          std::uint64_t end) {
        QueryWorkspace& ws = *workspaces_[worker];
        for (std::uint64_t v = begin; v < end; ++v) {
          (*out)[v] = fn(ws, static_cast<VertexId>(v));
        }
      });
}

template <typename ItemFn>
void QueryPipeline::ForEach(std::uint64_t num_items, ItemFn&& fn) {
  if (options_.num_threads == 1 || num_items < 2) {
    QueryWorkspace& ws = *workspaces_[0];
    for (std::uint64_t i = 0; i < num_items; ++i) fn(ws, i);
    return;
  }
  ParallelForChunksIndexed(
      num_items, ResolveChunks(num_items), options_.num_threads,
      [&](std::uint32_t worker, std::uint32_t /*chunk*/, std::uint64_t begin,
          std::uint64_t end) {
        QueryWorkspace& ws = *workspaces_[worker];
        for (std::uint64_t i = begin; i < end; ++i) fn(ws, i);
      });
}

template <typename ContextFn>
void QueryPipeline::MaterializeEntries(
    const std::vector<std::pair<VertexId, std::uint32_t>>& ranked,
    std::vector<TopREntry>* entries, ContextFn&& fn) {
  entries->resize(ranked.size());
  // Each winner fills its own rank slot, so output order is deterministic
  // regardless of which worker materializes which entry.
  auto fill = [&](QueryWorkspace& ws, std::size_t i) {
    TopREntry& entry = (*entries)[i];
    entry.vertex = ranked[i].first;
    entry.score = ranked[i].second;
    entry.contexts = fn(ws, ranked[i].first);
  };
  if (options_.num_threads == 1 || ranked.size() < 2) {
    QueryWorkspace& ws = *workspaces_[0];
    for (std::size_t i = 0; i < ranked.size(); ++i) fill(ws, i);
    return;
  }
  ParallelForChunksIndexed(
      ranked.size(), ResolveChunks(ranked.size()), options_.num_threads,
      [&](std::uint32_t worker, std::uint32_t /*chunk*/, std::uint64_t begin,
          std::uint64_t end) {
        QueryWorkspace& ws = *workspaces_[worker];
        for (std::uint64_t i = begin; i < end; ++i) fill(ws, i);
      });
}

}  // namespace tsd
