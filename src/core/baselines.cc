#include "core/baselines.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/rng.h"
#include "common/timer.h"
#include "core/scoring.h"
#include "core/top_r_collector.h"
#include "graph/ego_network.h"

namespace tsd {
namespace {

/// Shared bound-ordered top-r loop for the two ego-decomposition baselines.
/// `score_fn(ego, want_contexts)` evaluates the model on one ego-network.
template <typename ScoreFn>
TopRResult DegreeBoundedTopR(const Graph& graph, std::uint32_t r,
                             std::uint32_t divisor, ScoreFn&& score_fn) {
  WallTimer total;
  TopRResult result;
  const VertexId n = graph.num_vertices();

  // Degree bound: each context needs at least `divisor` members.
  std::vector<std::uint32_t> bounds(n);
  for (VertexId v = 0; v < n; ++v) bounds[v] = graph.degree(v) / divisor;

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return bounds[a] > bounds[b];
  });

  EgoNetworkExtractor extractor(graph);
  EgoNetwork ego;
  TopRCollector collector(r);
  {
    ScopedTimer t(&result.stats.score_seconds);
    for (VertexId v : order) {
      if (collector.CanPrune(bounds[v], v)) break;
      extractor.ExtractInto(v, &ego);
      const ScoreResult s = score_fn(ego, /*want_contexts=*/false);
      ++result.stats.vertices_scored;
      collector.Offer(v, s.score);
    }
  }
  {
    ScopedTimer t(&result.stats.context_seconds);
    for (const auto& [vertex, score] : collector.Ranked()) {
      TopREntry entry;
      entry.vertex = vertex;
      entry.score = score;
      extractor.ExtractInto(vertex, &ego);
      entry.contexts = score_fn(ego, /*want_contexts=*/true).contexts;
      result.entries.push_back(std::move(entry));
    }
  }
  result.stats.total_seconds = total.Seconds();
  return result;
}

}  // namespace

TopRResult CompDivSearcher::TopR(std::uint32_t r, std::uint32_t k) {
  TSD_CHECK(r >= 1);
  TSD_CHECK(k >= 1);
  return DegreeBoundedTopR(
      graph_, r, std::max(1U, k),
      [k](EgoNetwork& ego, bool want_contexts) {
        return ScoreComponents(ego, k, want_contexts);
      });
}

TopRResult CoreDivSearcher::TopR(std::uint32_t r, std::uint32_t k) {
  TSD_CHECK(r >= 1);
  TSD_CHECK(k >= 1);
  // A k-core has at least k+1 vertices.
  return DegreeBoundedTopR(
      graph_, r, k + 1,
      [k](EgoNetwork& ego, bool want_contexts) {
        return ScoreKCores(ego, k, want_contexts);
      });
}

std::vector<VertexId> RandomSelect(const Graph& graph, std::uint32_t r,
                                   std::uint64_t seed) {
  TSD_CHECK(r <= graph.num_vertices());
  Rng rng(seed);
  std::unordered_set<VertexId> chosen;
  std::vector<VertexId> out;
  out.reserve(r);
  while (out.size() < r) {
    const auto v = static_cast<VertexId>(rng.Uniform(graph.num_vertices()));
    if (chosen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace tsd
