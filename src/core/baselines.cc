#include "core/baselines.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/rng.h"
#include "common/timer.h"
#include "core/query_pipeline.h"
#include "core/scoring.h"
#include "core/top_r_collector.h"
#include "graph/ego_network.h"

namespace tsd {
namespace {

/// Shared bound-ordered top-r loop for the two ego-decomposition baselines,
/// run on the common QueryPipeline. `score_fn(ego, want_contexts)` evaluates
/// the model on one extracted ego-network.
template <typename ScoreFn>
TopRResult DegreeBoundedTopR(QueryPipeline& pipeline, const Graph& graph,
                             std::uint32_t r, std::uint32_t divisor,
                             ScoreFn&& score_fn) {
  WallTimer total;
  TopRResult result;
  const VertexId n = graph.num_vertices();

  // Degree bound: each context needs at least `divisor` members.
  std::vector<std::uint32_t> bounds;
  pipeline.MapScores(n, &bounds, [&](QueryWorkspace&, VertexId v) {
    return graph.degree(v) / divisor;
  });

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return bounds[a] > bounds[b];
  });

  TopRCollector collector(r);
  {
    ScopedTimer t(&result.stats.score_seconds);
    result.stats.vertices_scored = pipeline.ScoreOrdered(
        order, bounds, &collector, [&](QueryWorkspace& ws, VertexId v) {
          return score_fn(ws.ExtractEgo(v), /*want_contexts=*/false).score;
        });
  }
  {
    ScopedTimer t(&result.stats.context_seconds);
    pipeline.MaterializeEntries(
        collector.Ranked(), &result.entries,
        [&](QueryWorkspace& ws, VertexId v) {
          return score_fn(ws.ExtractEgo(v), /*want_contexts=*/true).contexts;
        });
  }
  result.stats.threads_used = pipeline.num_threads();
  result.stats.total_seconds = total.Seconds();
  return result;
}

}  // namespace

TopRResult CompDivSearcher::TopR(std::uint32_t r, std::uint32_t k,
                                 QuerySession& session) const {
  TSD_CHECK(r >= 1);
  TSD_CHECK(k >= 1);
  // Neither baseline needs a truss decomposer; the workspaces only serve
  // ego extraction scratch.
  QueryPipeline& pipeline =
      session.PipelineFor(graph_, EgoTrussMethod::kHash);
  return DegreeBoundedTopR(
      pipeline, graph_, r, std::max(1U, k),
      [k](EgoNetwork& ego, bool want_contexts) {
        return ScoreComponents(ego, k, want_contexts);
      });
}

TopRResult CoreDivSearcher::TopR(std::uint32_t r, std::uint32_t k,
                                 QuerySession& session) const {
  TSD_CHECK(r >= 1);
  TSD_CHECK(k >= 1);
  QueryPipeline& pipeline =
      session.PipelineFor(graph_, EgoTrussMethod::kHash);
  // A k-core has at least k+1 vertices.
  return DegreeBoundedTopR(
      pipeline, graph_, r, k + 1,
      [k](EgoNetwork& ego, bool want_contexts) {
        return ScoreKCores(ego, k, want_contexts);
      });
}

std::vector<VertexId> RandomSelect(const Graph& graph, std::uint32_t r,
                                   std::uint64_t seed) {
  TSD_CHECK(r <= graph.num_vertices());
  Rng rng(seed);
  std::unordered_set<VertexId> chosen;
  std::vector<VertexId> out;
  out.reserve(r);
  while (out.size() < r) {
    const auto v = static_cast<VertexId>(rng.Uniform(graph.num_vertices()));
    if (chosen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace tsd
