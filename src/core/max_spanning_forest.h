// Maximum-spanning-forest kernel shared by TsdIndex construction and the
// dynamic TSD maintenance path.
//
// Kruskal over the trussness-weighted ego-network, with a counting sort on
// the (small integer) weights, so one ego-network costs O(m_v + max_w).
// Emits forest edges in non-increasing weight order with global endpoints.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/disjoint_set.h"
#include "graph/ego_network.h"

namespace tsd::internal {

template <typename EmitFn>
void MaximumSpanningForest(const EgoNetwork& ego,
                           const std::vector<std::uint32_t>& trussness,
                           DisjointSet& dsu, EmitFn&& emit) {
  const std::uint32_t m = ego.num_edges();
  dsu.Reset(ego.num_members());
  if (m == 0) return;

  std::uint32_t max_w = 0;
  for (std::uint32_t w : trussness) max_w = std::max(max_w, w);

  // Bucket edge ids by weight, descending.
  std::vector<std::uint32_t> bucket_start(max_w + 2, 0);
  for (std::uint32_t w : trussness) ++bucket_start[w];
  std::vector<std::uint32_t> sorted(m);
  {
    std::uint32_t cursor = 0;
    for (std::uint32_t w = max_w + 1; w-- > 0;) {
      const std::uint32_t count = bucket_start[w];
      bucket_start[w] = cursor;
      cursor += count;
    }
    std::vector<std::uint32_t> fill(bucket_start);
    for (EdgeId e = 0; e < m; ++e) {
      sorted[fill[trussness[e]]++] = e;
    }
  }

  for (std::uint32_t i = 0; i < m; ++i) {
    const EdgeId e = sorted[i];
    const auto [u, v] = ego.edges[e];
    if (dsu.Union(u, v)) {
      emit(ego.ToGlobal(u), ego.ToGlobal(v), trussness[e]);
    }
  }
}

}  // namespace tsd::internal
