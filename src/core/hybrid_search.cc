#include "core/hybrid_search.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/timer.h"
#include "core/batch_query.h"
#include "core/query_pipeline.h"
#include "core/scoring.h"

namespace tsd {

HybridSearcher::HybridSearcher(const Graph& graph, const GctIndex& index,
                               std::uint32_t num_threads)
    : graph_(graph) {
  TSD_CHECK(num_threads >= 1);
  const std::uint32_t max_k = std::max(2U, index.max_trussness());
  const std::uint32_t num_k = max_k - 1;
  rankings_.resize(num_k);

  // thresholds[i] = max_k - i (descending), feeding rankings_[max_k - i - 2].
  std::vector<std::uint32_t> thresholds(num_k);
  for (std::uint32_t i = 0; i < num_k; ++i) thresholds[i] = max_k - i;

  // One multi-k slice sweep per vertex; chunks cover contiguous ascending
  // vertex ranges and concatenate in order. The final per-k sort is under
  // the library total order (score desc, id asc), which is total on the
  // unique vertices, so the rankings are bit-identical at any thread count.
  using Ranking = std::vector<std::pair<VertexId, std::uint32_t>>;
  const std::uint32_t num_chunks = EffectiveChunks(
      ParallelConfig{num_threads, 0}, graph.num_vertices());
  std::vector<std::vector<Ranking>> chunks(num_chunks);
  ParallelForChunks(
      graph.num_vertices(), num_chunks, num_threads,
      [&](std::uint32_t c, std::uint64_t begin, std::uint64_t end) {
        std::vector<Ranking>& local = chunks[c];
        local.resize(num_k);
        std::vector<std::uint32_t> scores(num_k);
        for (std::uint64_t v = begin; v < end; ++v) {
          index.ScoresForThresholds(static_cast<VertexId>(v), thresholds,
                                    scores.data());
          for (std::uint32_t i = 0; i < num_k; ++i) {
            if (scores[i] > 0) {
              local[i].emplace_back(static_cast<VertexId>(v), scores[i]);
            }
          }
        }
      });
  for (std::vector<Ranking>& local : chunks) {
    if (local.empty()) continue;
    for (std::uint32_t i = 0; i < num_k; ++i) {
      Ranking& ranking = rankings_[thresholds[i] - 2];
      ranking.insert(ranking.end(), local[i].begin(), local[i].end());
    }
  }
  for (Ranking& ranking : rankings_) {
    std::sort(ranking.begin(), ranking.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
  }
}

std::vector<std::pair<VertexId, std::uint32_t>> HybridSearcher::Answers(
    std::uint32_t r, std::uint32_t k) const {
  // Answer vertices are read straight from the precomputed ranking; if the
  // positive-score ranking is shorter than r, pad with zero-score vertices
  // in id order (matching the library-wide total order).
  std::vector<std::pair<VertexId, std::uint32_t>> answers;
  if (k - 2 < rankings_.size()) {
    const auto& ranking = rankings_[k - 2];
    for (std::uint32_t i = 0; i < ranking.size() && i < r; ++i) {
      answers.push_back(ranking[i]);
    }
  }
  if (answers.size() < r) {
    // Zero-score fill: smallest ids not already present.
    std::vector<char> present(graph_.num_vertices(), 0);
    for (const auto& [v, s] : answers) present[v] = 1;
    for (VertexId v = 0; v < graph_.num_vertices() && answers.size() < r;
         ++v) {
      if (!present[v]) answers.emplace_back(v, 0);
    }
  }
  return answers;
}

TopRResult HybridSearcher::TopR(std::uint32_t r, std::uint32_t k,
                                QuerySession& session) const {
  TSD_CHECK(r >= 1);
  TSD_CHECK(k >= 2);
  WallTimer total;
  TopRResult result;

  const std::vector<std::pair<VertexId, std::uint32_t>> answers =
      Answers(r, k);

  // The dominant cost: online social-context computation (Algorithm 2) for
  // each answer vertex — the paper's motivation for GCT. Winners are
  // independent, so this phase parallelizes across them.
  QueryPipeline& pipeline =
      session.PipelineFor(graph_, EgoTrussMethod::kHash);
  {
    ScopedTimer t(&result.stats.context_seconds);
    pipeline.MaterializeEntries(
        answers, &result.entries, [k](QueryWorkspace& ws, VertexId v) {
          EgoNetwork& ego = ws.DecomposeEgo(v);
          return ScoreFromEgoTrussness(ego, ws.trussness(), k,
                                       /*want_contexts=*/true)
              .contexts;
        });
    result.stats.vertices_scored = answers.size();
  }
  result.stats.threads_used = pipeline.num_threads();
  result.stats.total_seconds = total.Seconds();
  return result;
}

std::vector<TopRResult> HybridSearcher::SearchBatch(
    std::span<const BatchQuery> queries, QuerySession& session) const {
  WallTimer total;
  std::vector<TopRResult> results(queries.size());
  if (queries.empty()) return results;
  SearchStats stats;
  BatchQueryRunner runner(queries);
  QueryPipeline& pipeline =
      session.PipelineFor(graph_, EgoTrussMethod::kHash);

  // No scan at all: feed each query's precomputed answers to its collector
  // (they are already the unique top-r under the total order), then let the
  // grouped context phase decompose each distinct winner once.
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (const auto& [v, score] : Answers(queries[q].r, queries[q].k)) {
      runner.collector(q).Offer(v, score);
      ++stats.vertices_scored;
    }
  }

  {
    ScopedTimer t(&stats.context_seconds);
    runner.MaterializeGrouped(
        pipeline, &results,
        [](QueryWorkspace& ws, VertexId v) { ws.DecomposeEgo(v); },
        [](QueryWorkspace& ws, VertexId /*v*/, std::uint32_t k) {
          return ScoreFromEgoTrussness(ws.ego(), ws.trussness(), k,
                                       /*want_contexts=*/true)
              .contexts;
        });
  }

  stats.threads_used = pipeline.num_threads();
  stats.total_seconds = total.Seconds();
  FillBatchStats(&results, stats);
  return results;
}

std::size_t HybridSearcher::SizeBytes() const {
  std::size_t bytes = 0;
  for (const auto& ranking : rankings_) {
    bytes += ranking.size() * sizeof(ranking[0]);
  }
  return bytes;
}

}  // namespace tsd
