#include "core/hybrid_search.h"

#include <algorithm>

#include "common/timer.h"
#include "core/query_pipeline.h"
#include "core/scoring.h"

namespace tsd {

HybridSearcher::HybridSearcher(const Graph& graph, const GctIndex& index)
    : graph_(graph) {
  const std::uint32_t max_k = std::max(2U, index.max_trussness());
  rankings_.resize(max_k - 1);
  for (std::uint32_t k = 2; k <= max_k; ++k) {
    auto& ranking = rankings_[k - 2];
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      const std::uint32_t score = index.Score(v, k);
      if (score > 0) ranking.emplace_back(v, score);
    }
    std::sort(ranking.begin(), ranking.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
  }
}

TopRResult HybridSearcher::TopR(std::uint32_t r, std::uint32_t k) {
  TSD_CHECK(r >= 1);
  TSD_CHECK(k >= 2);
  WallTimer total;
  TopRResult result;

  // Answer vertices are read straight from the precomputed ranking; if the
  // positive-score ranking is shorter than r, pad with zero-score vertices
  // in id order (matching the library-wide total order).
  std::vector<std::pair<VertexId, std::uint32_t>> answers;
  if (k - 2 < rankings_.size()) {
    const auto& ranking = rankings_[k - 2];
    for (std::uint32_t i = 0; i < ranking.size() && i < r; ++i) {
      answers.push_back(ranking[i]);
    }
  }
  if (answers.size() < r) {
    // Zero-score fill: smallest ids not already present.
    std::vector<char> present(graph_.num_vertices(), 0);
    for (const auto& [v, s] : answers) present[v] = 1;
    for (VertexId v = 0; v < graph_.num_vertices() && answers.size() < r;
         ++v) {
      if (!present[v]) answers.emplace_back(v, 0);
    }
  }

  // The dominant cost: online social-context computation (Algorithm 2) for
  // each answer vertex — the paper's motivation for GCT. Winners are
  // independent, so this phase parallelizes across them.
  QueryPipeline& pipeline =
      pipeline_.For(graph_, EgoTrussMethod::kHash, query_options());
  {
    ScopedTimer t(&result.stats.context_seconds);
    pipeline.MaterializeEntries(
        answers, &result.entries, [k](QueryWorkspace& ws, VertexId v) {
          EgoNetwork& ego = ws.DecomposeEgo(v);
          return ScoreFromEgoTrussness(ego, ws.trussness(), k,
                                       /*want_contexts=*/true)
              .contexts;
        });
    result.stats.vertices_scored = answers.size();
  }
  result.stats.threads_used = pipeline.num_threads();
  result.stats.total_seconds = total.Seconds();
  return result;
}

std::size_t HybridSearcher::SizeBytes() const {
  std::size_t bytes = 0;
  for (const auto& ranking : rankings_) {
    bytes += ranking.size() * sizeof(ranking[0]);
  }
  return bytes;
}

}  // namespace tsd
