#include "core/scoring.h"

#include <algorithm>

#include "common/check.h"
#include "common/disjoint_set.h"
#include "truss/core_decomposition.h"

namespace tsd {
namespace {

/// Groups the local vertices with include[i] into components of `dsu` and
/// converts to sorted global-id contexts.
///
/// Roots map to output slots through a dense root→slot vector rather than a
/// hash map (this is the per-winner hot loop of the context phase). Local
/// ids ascend and ToGlobal is monotone in the local id, so member lists
/// come out sorted and contexts appear in order of smallest member with no
/// sorting.
std::vector<SocialContext> MaterializeContexts(
    const EgoNetwork& ego, DisjointSet& dsu,
    const std::vector<char>& include) {
  constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> slot_of_root(ego.num_members(), kNoSlot);
  std::vector<SocialContext> contexts;
  for (std::uint32_t i = 0; i < ego.num_members(); ++i) {
    if (!include[i]) continue;
    const std::uint32_t root = dsu.Find(i);
    if (slot_of_root[root] == kNoSlot) {
      slot_of_root[root] = static_cast<std::uint32_t>(contexts.size());
      contexts.emplace_back();
    }
    contexts[slot_of_root[root]].push_back(ego.ToGlobal(i));
  }
  return contexts;
}

}  // namespace

ScoreResult ScoreFromEgoTrussness(const EgoNetwork& ego,
                                  const std::vector<std::uint32_t>& trussness,
                                  std::uint32_t k, bool want_contexts) {
  TSD_CHECK(k >= 2);
  TSD_CHECK(trussness.size() == ego.edges.size());

  const std::uint32_t l = ego.num_members();
  DisjointSet dsu(l);
  std::vector<char> touched(l, 0);
  std::uint32_t touched_count = 0;
  std::uint32_t union_count = 0;
  for (EdgeId e = 0; e < ego.num_edges(); ++e) {
    if (trussness[e] < k) continue;
    const auto [u, v] = ego.edges[e];
    if (dsu.Union(u, v)) ++union_count;
    for (std::uint32_t endpoint : {u, v}) {
      if (!touched[endpoint]) {
        touched[endpoint] = 1;
        ++touched_count;
      }
    }
  }

  ScoreResult result;
  // Each component is a tree under the union count: #components =
  // #touched vertices - #successful unions.
  result.score = touched_count - union_count;
  if (want_contexts && result.score > 0) {
    result.contexts = MaterializeContexts(ego, dsu, touched);
    TSD_DCHECK(result.contexts.size() == result.score);
  }
  return result;
}

ScoreResult ScoreComponents(const EgoNetwork& ego, std::uint32_t min_size,
                            bool want_contexts) {
  const std::uint32_t l = ego.num_members();
  DisjointSet dsu(l);
  for (const Edge& e : ego.edges) dsu.Union(e.u, e.v);

  std::vector<char> include(l, 0);
  std::uint32_t score = 0;
  // Count each qualifying root once.
  std::vector<char> root_counted(l, 0);
  for (std::uint32_t i = 0; i < l; ++i) {
    if (dsu.SetSize(i) >= min_size) {
      include[i] = 1;
      const std::uint32_t root = dsu.Find(i);
      if (!root_counted[root]) {
        root_counted[root] = 1;
        ++score;
      }
    }
  }

  ScoreResult result;
  result.score = score;
  if (want_contexts && score > 0) {
    result.contexts = MaterializeContexts(ego, dsu, include);
    TSD_DCHECK(result.contexts.size() == score);
  }
  return result;
}

ScoreResult ScoreKCores(EgoNetwork& ego, std::uint32_t k,
                        bool want_contexts) {
  if (ego.offsets.empty()) ego.BuildCsr();
  const std::uint32_t l = ego.num_members();
  const std::vector<std::uint32_t> core =
      CoreNumbersCsr(l, ego.offsets, ego.adj);

  DisjointSet dsu(l);
  std::vector<char> include(l, 0);
  for (std::uint32_t i = 0; i < l; ++i) include[i] = core[i] >= k ? 1 : 0;
  for (const Edge& e : ego.edges) {
    if (include[e.u] && include[e.v]) dsu.Union(e.u, e.v);
  }

  std::vector<char> root_counted(l, 0);
  std::uint32_t score = 0;
  for (std::uint32_t i = 0; i < l; ++i) {
    if (!include[i]) continue;
    const std::uint32_t root = dsu.Find(i);
    if (!root_counted[root]) {
      root_counted[root] = 1;
      ++score;
    }
  }

  ScoreResult result;
  result.score = score;
  if (want_contexts && score > 0) {
    result.contexts = MaterializeContexts(ego, dsu, include);
    TSD_DCHECK(result.contexts.size() == score);
  }
  return result;
}

}  // namespace tsd
