#include "core/online_search.h"

#include "common/timer.h"
#include "core/batch_query.h"
#include "core/scoring.h"
#include "core/top_r_collector.h"

namespace tsd {

ScoreResult OnlineSearcher::ScoreVertex(VertexId v, std::uint32_t k,
                                        bool want_contexts,
                                        QuerySession& session) const {
  // Single-vertex path on workspace 0 of the session's cached pipeline, so
  // repeated calls (tsdtool score) reuse all scratch.
  QueryWorkspace& ws = Pipeline(session).workspace(0);
  EgoNetwork& ego = ws.DecomposeEgo(v);
  return ScoreFromEgoTrussness(ego, ws.trussness(), k, want_contexts);
}

TopRResult OnlineSearcher::TopR(std::uint32_t r, std::uint32_t k,
                                QuerySession& session) const {
  TSD_CHECK(r >= 1);
  TSD_CHECK(k >= 2);
  WallTimer total;
  TopRResult result;
  QueryPipeline& pipeline = Pipeline(session);

  TopRCollector collector(r);
  {
    ScopedTimer t(&result.stats.score_seconds);
    result.stats.vertices_scored = pipeline.ScoreRange(
        graph_.num_vertices(), &collector,
        [k](QueryWorkspace& ws, VertexId v) {
          EgoNetwork& ego = ws.DecomposeEgo(v);
          return ScoreFromEgoTrussness(ego, ws.trussness(), k,
                                       /*want_contexts=*/false)
              .score;
        });
  }

  // Materialize the winners' social contexts (line 8 of Algorithm 3).
  {
    ScopedTimer t(&result.stats.context_seconds);
    pipeline.MaterializeEntries(
        collector.Ranked(), &result.entries,
        [k](QueryWorkspace& ws, VertexId v) {
          EgoNetwork& ego = ws.DecomposeEgo(v);
          return ScoreFromEgoTrussness(ego, ws.trussness(), k,
                                       /*want_contexts=*/true)
              .contexts;
        });
  }

  result.stats.threads_used = pipeline.num_threads();
  result.stats.total_seconds = total.Seconds();
  return result;
}

std::vector<TopRResult> OnlineSearcher::SearchBatch(
    std::span<const BatchQuery> queries, QuerySession& session) const {
  WallTimer total;
  std::vector<TopRResult> results(queries.size());
  if (queries.empty()) return results;
  SearchStats stats;
  BatchQueryRunner runner(queries);
  QueryPipeline& pipeline = Pipeline(session);

  // One ego decomposition per vertex scores it at every requested k.
  {
    ScopedTimer t(&stats.score_seconds);
    stats.vertices_scored =
        runner.RunEgoScan(pipeline, graph_.num_vertices());
  }

  // Winners grouped by vertex: a vertex ranking in several queries is
  // decomposed once and its contexts derived per k.
  {
    ScopedTimer t(&stats.context_seconds);
    runner.MaterializeGrouped(
        pipeline, &results,
        [](QueryWorkspace& ws, VertexId v) { ws.DecomposeEgo(v); },
        [](QueryWorkspace& ws, VertexId /*v*/, std::uint32_t k) {
          return ScoreFromEgoTrussness(ws.ego(), ws.trussness(), k,
                                       /*want_contexts=*/true)
              .contexts;
        });
  }

  stats.threads_used = pipeline.num_threads();
  stats.total_seconds = total.Seconds();
  FillBatchStats(&results, stats);
  return results;
}

}  // namespace tsd
