#include "core/online_search.h"

#include "common/timer.h"
#include "core/scoring.h"
#include "core/top_r_collector.h"

namespace tsd {

ScoreResult OnlineSearcher::ScoreVertex(VertexId v, std::uint32_t k,
                                        bool want_contexts) const {
  EgoNetworkExtractor extractor(graph_);
  EgoTrussDecomposer decomposer(method_);
  EgoNetwork ego = extractor.Extract(v);
  const std::vector<std::uint32_t> trussness = decomposer.Compute(ego);
  return ScoreFromEgoTrussness(ego, trussness, k, want_contexts);
}

TopRResult OnlineSearcher::TopR(std::uint32_t r, std::uint32_t k) {
  TSD_CHECK(r >= 1);
  TSD_CHECK(k >= 2);
  WallTimer total;
  TopRResult result;

  EgoNetworkExtractor extractor(graph_);
  EgoTrussDecomposer decomposer(method_);
  EgoNetwork ego;
  TopRCollector collector(r);
  {
    ScopedTimer t(&result.stats.score_seconds);
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      extractor.ExtractInto(v, &ego);
      const std::vector<std::uint32_t> trussness = decomposer.Compute(ego);
      const ScoreResult score =
          ScoreFromEgoTrussness(ego, trussness, k, /*want_contexts=*/false);
      ++result.stats.vertices_scored;
      collector.Offer(v, score.score);
    }
  }

  // Materialize the winners' social contexts (line 8 of Algorithm 3).
  {
    ScopedTimer t(&result.stats.context_seconds);
    for (const auto& [vertex, score] : collector.Ranked()) {
      TopREntry entry;
      entry.vertex = vertex;
      entry.score = score;
      extractor.ExtractInto(vertex, &ego);
      const std::vector<std::uint32_t> trussness = decomposer.Compute(ego);
      entry.contexts =
          ScoreFromEgoTrussness(ego, trussness, k, /*want_contexts=*/true)
              .contexts;
      result.entries.push_back(std::move(entry));
    }
  }

  result.stats.total_seconds = total.Seconds();
  return result;
}

}  // namespace tsd
