#include "core/query_pipeline.h"

namespace tsd {

QueryWorkspace::QueryWorkspace(const Graph* graph, EgoTrussMethod method)
    : decomposer_(method) {
  if (graph != nullptr) extractor_.emplace(*graph);
}

void QueryWorkspace::Rebind(const Graph& graph) {
  TSD_CHECK_MSG(extractor_.has_value(),
                "index-only workspace cannot be rebound to a graph");
  extractor_->Rebind(graph);
}

EgoNetwork& QueryWorkspace::ExtractEgo(VertexId v) {
  TSD_DCHECK(extractor_.has_value());
  extractor_->ExtractInto(v, &ego_);
  return ego_;
}

EgoNetwork& QueryWorkspace::DecomposeEgo(VertexId v) {
  ExtractEgo(v);
  decomposer_.ComputeInto(ego_, &trussness_);
  return ego_;
}

QueryPipeline::QueryPipeline(const Graph& graph, EgoTrussMethod method,
                             const QueryOptions& options)
    : options_(options) {
  TSD_CHECK(options_.num_threads >= 1);
  workspaces_.reserve(options_.num_threads);
  for (std::uint32_t t = 0; t < options_.num_threads; ++t) {
    workspaces_.push_back(std::make_unique<QueryWorkspace>(&graph, method));
  }
}

QueryPipeline::QueryPipeline(const QueryOptions& options) : options_(options) {
  TSD_CHECK(options_.num_threads >= 1);
  workspaces_.reserve(options_.num_threads);
  for (std::uint32_t t = 0; t < options_.num_threads; ++t) {
    workspaces_.push_back(
        std::make_unique<QueryWorkspace>(nullptr, EgoTrussMethod::kAuto));
  }
}

void QueryPipeline::Rebind(const Graph& graph) {
  for (auto& workspace : workspaces_) workspace->Rebind(graph);
}

std::uint32_t QueryPipeline::ResolveChunks(std::uint64_t total) const {
  // One shared auto-chunk rule (common/parallel.h) keeps pipeline chunking
  // in lock-step with the index builders and the preprocessing kernels.
  return EffectiveChunks(ToParallelConfig(options_), total);
}

void QueryPipeline::MergeInto(std::vector<TopRCollector>& locals,
                              TopRCollector* collector) const {
  // Worker order; the top-r set under the total order is unique, so any
  // merge order yields the same collector state. The locals die after the
  // merge, so take their entries instead of copying.
  for (TopRCollector& local : locals) {
    for (const auto& [vertex, score] : local.TakeRanked()) {
      collector->Offer(vertex, score);
    }
  }
}

QueryPipeline& PipelineCache::For(const Graph& graph, EgoTrussMethod method,
                                  const QueryOptions& options) {
  if (pipeline_ == nullptr || cached_options_ != options ||
      cached_graph_ != &graph || cached_method_ != method) {
    pipeline_ = std::make_unique<QueryPipeline>(graph, method, options);
    cached_options_ = options;
    cached_graph_ = &graph;
    cached_method_ = method;
  }
  return *pipeline_;
}

QueryOptions QueryOptionsFromFlags(const Flags& flags) {
  QueryOptions options;
  options.num_threads = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, flags.GetInt("threads", 1)));
  options.num_chunks = static_cast<std::uint32_t>(
      std::max<std::int64_t>(0, flags.GetInt("chunks", 0)));
  const std::string plan = flags.GetString("plan", "auto");
  const std::optional<TrussPlanAlgorithm> parsed = ParseTrussPlanAlgorithm(plan);
  TSD_CHECK_MSG(parsed.has_value(),
                "--plan must be one of auto, bsp, jacobi, core-truss");
  options.truss_plan = *parsed;
  options.ramp_base_per_thread = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, flags.GetInt("ramp-base", 4)));
  options.ramp_growth = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, flags.GetInt("ramp-growth", 2)));
  return options;
}

}  // namespace tsd
