// Shared result types for all structural diversity searchers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace tsd {

/// A social context: the sorted vertex set of one maximal connected k-truss
/// (or k-core / component, for the baseline models) in an ego-network.
using SocialContext = std::vector<VertexId>;

/// One ranked answer of a top-r search.
struct TopREntry {
  VertexId vertex = kInvalidVertex;
  std::uint32_t score = 0;
  /// Social contexts SC(vertex), sorted by smallest member.
  std::vector<SocialContext> contexts;
};

/// Execution knobs for the shared per-vertex query pipeline. Every searcher
/// honours these via DiversitySearcher::set_query_options; rankings are
/// bit-identical at any thread count.
struct QueryOptions {
  /// Worker threads for per-vertex scoring and context materialization.
  std::uint32_t num_threads = 1;
  /// Chunks the candidate range is split into (0 = auto: one chunk when
  /// sequential, 8 per thread otherwise, matching the index builders).
  std::uint32_t num_chunks = 0;

  bool operator==(const QueryOptions&) const = default;
};

/// Instrumentation reported by every searcher; feeds Tables 2–4 and Fig. 9.
struct SearchStats {
  /// Number of vertices whose exact structural diversity was computed
  /// (the paper's "search space").
  std::uint64_t vertices_scored = 0;
  /// End-to-end query wall time in seconds.
  double total_seconds = 0;
  /// Time spent in preprocessing (sparsification / bound computation).
  double preprocess_seconds = 0;
  /// Time spent computing exact scores.
  double score_seconds = 0;
  /// Time spent materializing the winners' social contexts.
  double context_seconds = 0;
  /// Worker threads the query pipeline ran with (Fig. 8/15 speedup reports).
  std::uint32_t threads_used = 1;
};

/// Result of a top-r structural diversity search: entries sorted by
/// (score descending, vertex id ascending) — the library-wide total order
/// that makes every search method return bit-identical rankings.
struct TopRResult {
  std::vector<TopREntry> entries;
  SearchStats stats;
};

/// One query of a batch: top-r at trussness threshold k. A vertex's ego
/// trussness decomposition determines its score for every k simultaneously,
/// so a batch of queries can amortize one decomposition pass.
struct BatchQuery {
  std::uint32_t k = 2;
  std::uint32_t r = 10;
};

/// Abstract interface implemented by every search method
/// (online / bound / TSD / GCT / Hybrid and the Comp-/Core-Div baselines).
class DiversitySearcher {
 public:
  virtual ~DiversitySearcher() = default;

  /// Finds the r vertices with the highest structural diversity at
  /// trussness threshold k (k ≥ 2) and returns them with their social
  /// contexts. Deterministic: ties broken by ascending vertex id.
  virtual TopRResult TopR(std::uint32_t r, std::uint32_t k) = 0;

  /// Answers many (k, r) queries in one call. Entries are bit-identical to
  /// calling TopR(q.r, q.k) per query, in query order, at any thread count.
  /// The base implementation is the per-query loop; the amortized searchers
  /// override it to run one ego-decomposition (or index) pass that feeds
  /// every query, so per-batch stats (vertices_scored, timings) are shared
  /// across the batch there rather than per query.
  virtual std::vector<TopRResult> SearchBatch(
      std::span<const BatchQuery> queries) {
    std::vector<TopRResult> results;
    results.reserve(queries.size());
    for (const BatchQuery& query : queries) {
      results.push_back(TopR(query.r, query.k));
    }
    return results;
  }

  /// Method name for logs and benchmark tables.
  virtual std::string name() const = 0;

  /// Sets the pipeline knobs for subsequent TopR calls. The ranking is
  /// bit-identical at any thread count; only wall time (and, for the
  /// bound-pruned methods, the number of exactly-scored candidates —
  /// parallel rounds prune at batch granularity) may differ.
  void set_query_options(const QueryOptions& options) {
    query_options_ = options;
  }
  const QueryOptions& query_options() const { return query_options_; }

 protected:
  QueryOptions query_options_;
};

/// Comparator for the library-wide ranking order: true if (score_a, a)
/// ranks strictly better than (score_b, b).
inline bool RanksBefore(std::uint32_t score_a, VertexId a,
                        std::uint32_t score_b, VertexId b) {
  if (score_a != score_b) return score_a > score_b;
  return a < b;
}

}  // namespace tsd
