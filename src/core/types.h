// Shared result types for all structural diversity searchers.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/parallel.h"  // TrussPlanAlgorithm
#include "graph/graph.h"

namespace tsd {

class QuerySession;  // core/query_session.h: per-client query scratch

/// A social context: the sorted vertex set of one maximal connected k-truss
/// (or k-core / component, for the baseline models) in an ego-network.
using SocialContext = std::vector<VertexId>;

/// One ranked answer of a top-r search.
struct TopREntry {
  VertexId vertex = kInvalidVertex;
  std::uint32_t score = 0;
  /// Social contexts SC(vertex), sorted by smallest member.
  std::vector<SocialContext> contexts;
};

/// Execution knobs for the shared per-vertex query pipeline. Every searcher
/// honours these via DiversitySearcher::set_query_options; rankings are
/// bit-identical at any thread count.
struct QueryOptions {
  /// Worker threads for per-vertex scoring and context materialization.
  std::uint32_t num_threads = 1;
  /// Chunks the candidate range is split into (0 = auto: one chunk when
  /// sequential, 8 per thread otherwise, matching the index builders).
  std::uint32_t num_chunks = 0;
  /// Truss-decomposition kernel for the preprocessing stages that run a
  /// global decomposition (bound sparsification, stats). Every plan yields
  /// bit-identical trussness — this is a performance knob (tsdtool --plan).
  TrussPlanAlgorithm truss_plan = TrussPlanAlgorithm::kAuto;
  /// ScoreOrdered round ramp-up: the first parallel round scores
  /// max(num_threads * ramp_base_per_thread, r) candidates and each
  /// following round is ramp_growth times larger (capped at one chunking
  /// unit of the candidate range). Small early rounds stop cheaply when the
  /// bound order prunes early; the geometric growth bounds the number of
  /// round barriers when it does not. Defaults from the
  /// bench_ablation_parallel --ramp sweep. Rankings are bit-identical for
  /// any setting; only wall time and vertices_scored move.
  std::uint32_t ramp_base_per_thread = 4;
  std::uint32_t ramp_growth = 2;

  bool operator==(const QueryOptions&) const = default;
};

/// Instrumentation reported by every searcher; feeds Tables 2–4 and Fig. 9.
struct SearchStats {
  /// Number of vertices whose exact structural diversity was computed
  /// (the paper's "search space").
  std::uint64_t vertices_scored = 0;
  /// End-to-end query wall time in seconds.
  double total_seconds = 0;
  /// Time spent in preprocessing (sparsification / bound computation).
  double preprocess_seconds = 0;
  /// Time spent computing exact scores.
  double score_seconds = 0;
  /// Time spent materializing the winners' social contexts.
  double context_seconds = 0;
  /// Worker threads the query pipeline ran with (Fig. 8/15 speedup reports).
  std::uint32_t threads_used = 1;
  /// Edges dropped by the preprocess plan's core-number prefilter before
  /// any triangle counting (TrussPlan::CoreThenTruss; 0 for the other
  /// plans and for searchers that run no global decomposition).
  std::uint64_t edges_pruned = 0;
};

/// Result of a top-r structural diversity search: entries sorted by
/// (score descending, vertex id ascending) — the library-wide total order
/// that makes every search method return bit-identical rankings.
struct TopRResult {
  std::vector<TopREntry> entries;
  SearchStats stats;
};

/// One query of a batch: top-r at trussness threshold k. A vertex's ego
/// trussness decomposition determines its score for every k simultaneously,
/// so a batch of queries can amortize one decomposition pass.
struct BatchQuery {
  std::uint32_t k = 2;
  std::uint32_t r = 10;
};

/// Abstract interface implemented by every search method
/// (online / bound / TSD / GCT / Hybrid and the Comp-/Core-Div baselines).
///
/// Searchers are **immutable after build**: the session-taking query entry
/// points are const and touch no searcher state, so one shared searcher
/// instance may answer concurrent queries from any number of threads, each
/// thread bringing its own QuerySession (which owns all mutable query
/// scratch — see core/query_session.h). Results are a pure function of
/// (searcher, query): bit-identical across sessions, thread counts, and
/// batching.
class DiversitySearcher {
 public:
  DiversitySearcher();
  virtual ~DiversitySearcher();
  // Searchers move (TsdIndex::Build/Load return by value); the moved-from
  // default session just re-creates lazily.
  DiversitySearcher(DiversitySearcher&&) noexcept;
  DiversitySearcher& operator=(DiversitySearcher&&) noexcept;

  /// Finds the r vertices with the highest structural diversity at
  /// trussness threshold k (k ≥ 2) and returns them with their social
  /// contexts, using `session`'s scratch. Deterministic: ties broken by
  /// ascending vertex id. Thread-safe against concurrent queries on other
  /// sessions.
  virtual TopRResult TopR(std::uint32_t r, std::uint32_t k,
                          QuerySession& session) const = 0;

  /// Answers many (k, r) queries in one call. Entries are bit-identical to
  /// calling TopR(q.r, q.k) per query, in query order, at any thread count.
  /// The base implementation is the per-query loop; the amortized searchers
  /// override it to run one ego-decomposition (or index) pass that feeds
  /// every query, so per-batch stats (vertices_scored, timings) are shared
  /// across the batch there rather than per query.
  virtual std::vector<TopRResult> SearchBatch(
      std::span<const BatchQuery> queries, QuerySession& session) const {
    std::vector<TopRResult> results;
    results.reserve(queries.size());
    for (const BatchQuery& query : queries) {
      results.push_back(TopR(query.r, query.k, session));
    }
    return results;
  }

  /// Convenience overloads running on a lazily-created default session that
  /// tracks query_options(). Source-compatible with the pre-session API; NOT
  /// thread-safe (the default session is shared per searcher instance) —
  /// concurrent callers must use the session overloads above.
  TopRResult TopR(std::uint32_t r, std::uint32_t k);
  std::vector<TopRResult> SearchBatch(std::span<const BatchQuery> queries);

  /// Method name for logs and benchmark tables.
  virtual std::string name() const = 0;

  /// Sets the pipeline knobs the *default session* runs with. Sessions own
  /// their knobs (QuerySession::set_options); this only affects the
  /// convenience overloads. The ranking is bit-identical at any thread
  /// count; only wall time (and, for the bound-pruned methods, the number
  /// of exactly-scored candidates — parallel rounds prune at batch
  /// granularity) may differ.
  void set_query_options(const QueryOptions& options) {
    query_options_ = options;
  }
  const QueryOptions& query_options() const { return query_options_; }

 protected:
  /// The default session backing the convenience overloads, created on
  /// first use and re-synced to query_options() on every call.
  QuerySession& default_session();

 private:
  QueryOptions query_options_;
  std::unique_ptr<QuerySession> default_session_;
};

/// Comparator for the library-wide ranking order: true if (score_a, a)
/// ranks strictly better than (score_b, b).
inline bool RanksBefore(std::uint32_t score_a, VertexId a,
                        std::uint32_t score_b, VertexId b) {
  if (score_a != score_b) return score_a > score_b;
  return a < b;
}

}  // namespace tsd
