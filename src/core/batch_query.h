// Batch query engine: answers many (k, r) queries from one pipeline pass.
//
// The paper's workload is parameterized by k, yet a vertex's ego trussness
// decomposition determines its score for *every* k simultaneously (the
// parameter-free view of Huang et al. 2019 makes the all-k answer the
// primary object). BatchQueryRunner exploits that: it owns one TopRCollector
// per query, deduplicates the requested thresholds into one descending list,
// and drives a single deterministic QueryPipeline scan in which each worker
// extracts and decomposes every candidate's ego network ONCE and derives the
// per-k component counts from the trussness array for all requested k — one
// ego decomposition per candidate vertex instead of one per (vertex, k).
//
// Determinism: every query's collector receives exactly the (vertex, score)
// offers its dedicated per-query scan would have produced, and the top-r set
// under the library-wide total order is unique, so SearchBatch entries are
// bit-identical to per-query TopR at any thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/query_pipeline.h"
#include "core/top_r_collector.h"
#include "core/types.h"

namespace tsd {

/// Copies the per-batch aggregate stats into every query's result: a batch
/// runs one shared scan, so vertices_scored and the timings describe the
/// whole batch, not a single query.
void FillBatchStats(std::vector<TopRResult>* results, const SearchStats& stats);

class BatchQueryRunner {
 public:
  /// Validates the queries (k ≥ 2, r ≥ 1) and builds one collector per
  /// query plus the deduplicated descending threshold list.
  explicit BatchQueryRunner(std::span<const BatchQuery> queries);

  std::size_t num_queries() const { return queries_.size(); }
  const BatchQuery& query(std::size_t q) const { return queries_[q]; }

  /// Distinct requested thresholds, sorted strictly descending.
  std::span<const std::uint32_t> thresholds() const { return thresholds_; }

  /// Index into thresholds() of query q's k.
  std::uint32_t threshold_index(std::size_t q) const { return k_index_[q]; }

  TopRCollector& collector(std::size_t q) { return collectors_[q]; }

  /// One deterministic pass over [0, num_candidates): `fn(ws, v, scores)`
  /// fills scores[t] for each t in [0, thresholds().size()); the runner
  /// fans the per-threshold scores out to every query's collector. Returns
  /// the number of vertices scanned.
  template <typename ThresholdScoreFn>
  std::uint64_t Scan(QueryPipeline& pipeline, VertexId num_candidates,
                     ThresholdScoreFn&& fn) {
    return pipeline.ScoreRangeMulti(
        num_candidates, collector_ptrs_,
        [this, &fn](QueryWorkspace& ws, VertexId v, std::uint32_t* scores) {
          std::vector<std::uint32_t>& per_k = ws.u32_scratch();
          per_k.resize(thresholds_.size());
          fn(ws, v, per_k.data());
          for (std::size_t q = 0; q < queries_.size(); ++q) {
            scores[q] = per_k[k_index_[q]];
          }
        });
  }

  /// Bound-ordered variant of Scan (the Algorithm 4 discipline for the
  /// whole batch): `bounds[v]` must upper-bound v's score at EVERY
  /// requested threshold — the bound evaluated at the smallest requested k
  /// suffices, because both known bound formulas (Lemma 2's min(d/k,
  /// m_v/C(k,2)) and the TSD forest bound qualified(k)/(k-1)) are
  /// non-increasing in k, even though scores themselves are not monotone
  /// (contexts can split as k grows) — and `order` must visit candidates
  /// by non-increasing bound. The scan stops as soon as every
  /// query's collector can prune the remaining range. Entries are
  /// bit-identical to Scan (pruning is conservative per collector); only
  /// the number of scored candidates changes.
  template <typename ThresholdScoreFn>
  std::uint64_t ScanOrdered(QueryPipeline& pipeline,
                            std::span<const VertexId> order,
                            std::span<const std::uint32_t> bounds,
                            ThresholdScoreFn&& fn) {
    return pipeline.ScoreOrderedMulti(
        order, bounds, collector_ptrs_,
        [this, &fn](QueryWorkspace& ws, VertexId v, std::uint32_t* scores) {
          std::vector<std::uint32_t>& per_k = ws.u32_scratch();
          per_k.resize(thresholds_.size());
          fn(ws, v, per_k.data());
          for (std::size_t q = 0; q < queries_.size(); ++q) {
            scores[q] = per_k[k_index_[q]];
          }
        });
  }

  /// Sum of every query's r — the gate callers use to decide whether the
  /// bound-ordered scan's O(n log n) ordering cost can pay for itself.
  std::uint64_t total_r() const {
    std::uint64_t total = 0;
    for (const BatchQuery& query : queries_) total += query.r;
    return total;
  }

  /// The amortized ego scan: decompose each candidate's ego network once
  /// and score it at every requested threshold in one sweep. Requires a
  /// full (extractor-carrying) pipeline.
  std::uint64_t RunEgoScan(QueryPipeline& pipeline, VertexId num_candidates) {
    return Scan(pipeline, num_candidates,
                [this](QueryWorkspace& ws, VertexId v, std::uint32_t* out) {
                  EgoNetwork& ego = ws.DecomposeEgo(v);
                  ws.multi_scorer().Compute(ego, ws.trussness(), thresholds_,
                                            out);
                });
  }

  /// Materializes every query's winners into `(*results)[q].entries`,
  /// grouping tasks by winner vertex so each distinct winner is prepared
  /// (e.g. ego-decomposed) once even when it ranks in several queries.
  /// `prep(ws, vertex)` runs once per distinct vertex; `fn(ws, vertex, k)`
  /// returns the contexts for one (vertex, threshold) pair. Each task fills
  /// its own (query, rank) slot, so output order is deterministic. Consumes
  /// the collectors.
  template <typename PrepFn, typename ContextFn>
  void MaterializeGrouped(QueryPipeline& pipeline,
                          std::vector<TopRResult>* results, PrepFn&& prep,
                          ContextFn&& fn) {
    struct Task {
      VertexId vertex;
      std::uint32_t score;
      std::uint32_t query;
      std::uint32_t rank;
    };
    std::vector<Task> tasks;
    for (std::size_t q = 0; q < queries_.size(); ++q) {
      const auto ranked = collectors_[q].TakeRanked();
      (*results)[q].entries.resize(ranked.size());
      for (std::uint32_t i = 0; i < ranked.size(); ++i) {
        tasks.push_back({ranked[i].first, ranked[i].second,
                         static_cast<std::uint32_t>(q), i});
      }
    }
    std::sort(tasks.begin(), tasks.end(), [](const Task& a, const Task& b) {
      if (a.vertex != b.vertex) return a.vertex < b.vertex;
      if (a.query != b.query) return a.query < b.query;
      return a.rank < b.rank;
    });
    std::vector<std::pair<std::size_t, std::size_t>> groups;
    for (std::size_t i = 0; i < tasks.size();) {
      std::size_t j = i + 1;
      while (j < tasks.size() && tasks[j].vertex == tasks[i].vertex) ++j;
      groups.emplace_back(i, j);
      i = j;
    }
    pipeline.ForEach(groups.size(), [&](QueryWorkspace& ws, std::uint64_t g) {
      const auto [begin, end] = groups[g];
      prep(ws, tasks[begin].vertex);
      for (std::size_t i = begin; i < end; ++i) {
        const Task& task = tasks[i];
        TopREntry& entry = (*results)[task.query].entries[task.rank];
        entry.vertex = task.vertex;
        entry.score = task.score;
        entry.contexts = fn(ws, task.vertex, queries_[task.query].k);
      }
    });
  }

 private:
  std::vector<BatchQuery> queries_;
  std::vector<std::uint32_t> thresholds_;  // distinct ks, descending
  std::vector<std::uint32_t> k_index_;     // per query, into thresholds_
  std::vector<TopRCollector> collectors_;  // one per query
  std::vector<TopRCollector*> collector_ptrs_;
};

}  // namespace tsd
