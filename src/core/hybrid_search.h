// Hybrid search — the Exp-4 competitor.
//
// Hybrid precomputes the complete structural-diversity ranking for every
// possible k (so any top-r query can read its answer vertices directly) but
// stores no ego-network structure: the winners' social contexts are
// recomputed online with Algorithm 2. Competitive with GCT at r = 1; loses
// for larger r because the per-winner online context computation dominates.
//
// Construction runs as ONE pass over the vertices: each vertex's GCT slice
// is swept once for all k (GctIndex::ScoresForThresholds), instead of the
// historical one-full-scan-per-k loop, and the pass parallelizes over
// contiguous vertex chunks with deterministic (bit-identical) rankings.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gct_index.h"
#include "core/query_session.h"
#include "core/types.h"
#include "graph/graph.h"

namespace tsd {

/// Immutable after construction (the all-k rankings are precomputed in the
/// constructor); all query scratch lives in the session.
class HybridSearcher : public DiversitySearcher {
 public:
  /// Precomputes rankings for all k in [2, max ego trussness] from a
  /// (temporary or shared) GCT index, in one multi-k pass over the vertices
  /// using `num_threads` workers (rankings are bit-identical at any count).
  HybridSearcher(const Graph& graph, const GctIndex& index,
                 std::uint32_t num_threads = 1);

  using DiversitySearcher::SearchBatch;
  using DiversitySearcher::TopR;

  TopRResult TopR(std::uint32_t r, std::uint32_t k,
                  QuerySession& session) const override;

  /// Amortized batch path: answers come straight from the precomputed
  /// rankings; winners appearing in several queries are ego-decomposed once
  /// for the context phase (bit-identical to per-query TopR).
  std::vector<TopRResult> SearchBatch(std::span<const BatchQuery> queries,
                                      QuerySession& session) const override;

  std::string name() const override { return "Hybrid"; }

  /// Bytes used by the precomputed rankings.
  std::size_t SizeBytes() const;

 private:
  /// The (vertex, score) answers of one query, zero-score padded in id
  /// order to min(r, |V|) entries (the library-wide total order).
  std::vector<std::pair<VertexId, std::uint32_t>> Answers(
      std::uint32_t r, std::uint32_t k) const;

  const Graph& graph_;
  // rankings_[k - 2]: all vertices with positive score at threshold k,
  // sorted by (score desc, id asc), with their scores.
  std::vector<std::vector<std::pair<VertexId, std::uint32_t>>> rankings_;
};

}  // namespace tsd
