// Hybrid search — the Exp-4 competitor.
//
// Hybrid precomputes the complete structural-diversity ranking for every
// possible k (so any top-r query can read its answer vertices directly) but
// stores no ego-network structure: the winners' social contexts are
// recomputed online with Algorithm 2. Competitive with GCT at r = 1; loses
// for larger r because the per-winner online context computation dominates.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gct_index.h"
#include "core/query_pipeline.h"
#include "core/types.h"
#include "graph/graph.h"

namespace tsd {

class HybridSearcher : public DiversitySearcher {
 public:
  /// Precomputes rankings for all k in [2, max ego trussness]. The scores
  /// are obtained from a (temporary or shared) GCT index.
  HybridSearcher(const Graph& graph, const GctIndex& index);

  TopRResult TopR(std::uint32_t r, std::uint32_t k) override;
  std::string name() const override { return "Hybrid"; }

  /// Bytes used by the precomputed rankings.
  std::size_t SizeBytes() const;

 private:
  const Graph& graph_;
  PipelineCache pipeline_;
  // rankings_[k - 2]: all vertices with positive score at threshold k,
  // sorted by (score desc, id asc), with their scores.
  std::vector<std::vector<std::pair<VertexId, std::uint32_t>>> rankings_;
};

}  // namespace tsd
