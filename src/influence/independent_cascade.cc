#include "influence/independent_cascade.h"

#include "common/check.h"

namespace tsd {

IndependentCascade::IndependentCascade(const Graph& graph, double probability)
    : graph_(graph), probability_(probability) {
  TSD_CHECK(probability >= 0.0 && probability <= 1.0);
}

CascadeResult IndependentCascade::Run(std::span<const VertexId> seeds,
                                      Rng& rng) const {
  CascadeResult result;
  result.round.assign(graph_.num_vertices(), -1);

  // Frontier-by-frontier BFS where each edge crossing flips its own coin.
  std::vector<VertexId> frontier;
  frontier.reserve(seeds.size());
  for (VertexId s : seeds) {
    TSD_DCHECK(s < graph_.num_vertices());
    if (result.round[s] == -1) {
      result.round[s] = 0;
      frontier.push_back(s);
      ++result.num_activated;
    }
  }

  std::vector<VertexId> next;
  std::int32_t round = 1;
  while (!frontier.empty()) {
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId v : graph_.neighbors(u)) {
        if (result.round[v] != -1) continue;
        if (rng.Bernoulli(probability_)) {
          result.round[v] = round;
          next.push_back(v);
          ++result.num_activated;
        }
      }
    }
    frontier.swap(next);
    ++round;
  }
  return result;
}

double IndependentCascade::EstimateSpread(std::span<const VertexId> seeds,
                                          std::uint32_t runs,
                                          std::uint64_t seed) const {
  TSD_CHECK(runs > 0);
  Rng rng(seed);
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < runs; ++i) {
    total += Run(seeds, rng).num_activated;
  }
  return static_cast<double>(total) / runs;
}

std::vector<double> IndependentCascade::EstimateActivationProbability(
    std::span<const VertexId> seeds, std::uint32_t runs, std::uint64_t seed,
    std::vector<double>* mean_round) const {
  TSD_CHECK(runs > 0);
  Rng rng(seed);
  std::vector<std::uint64_t> activations(graph_.num_vertices(), 0);
  std::vector<std::uint64_t> round_sum(graph_.num_vertices(), 0);
  for (std::uint32_t i = 0; i < runs; ++i) {
    const CascadeResult run = Run(seeds, rng);
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      if (run.round[v] >= 0) {
        ++activations[v];
        round_sum[v] += static_cast<std::uint64_t>(run.round[v]);
      }
    }
  }
  std::vector<double> probability(graph_.num_vertices());
  if (mean_round != nullptr) {
    mean_round->assign(graph_.num_vertices(), 0.0);
  }
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    probability[v] = static_cast<double>(activations[v]) / runs;
    if (mean_round != nullptr && activations[v] > 0) {
      (*mean_round)[v] =
          static_cast<double>(round_sum[v]) / activations[v];
    }
  }
  return probability;
}

}  // namespace tsd
