// Independent-cascade (IC) social contagion simulation.
//
// The paper's effectiveness study (Exp-7..9, Exp-12) simulates influence
// propagation under the IC model [5], [18]: each newly activated vertex u
// gets one chance to activate each currently inactive neighbor v, succeeding
// independently with probability p(u,v). Undirected edges are treated as two
// directed edges with the same probability (paper default p = 0.01).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace tsd {

/// Result of one cascade run.
struct CascadeResult {
  /// Activation round per vertex: 0 for seeds, -1 for never activated.
  std::vector<std::int32_t> round;
  std::uint32_t num_activated = 0;  // includes the seeds
};

/// Monte-Carlo IC simulator over a fixed graph.
class IndependentCascade {
 public:
  /// `probability` is the uniform edge activation probability.
  IndependentCascade(const Graph& graph, double probability);

  /// Runs one cascade from `seeds` using `rng`.
  CascadeResult Run(std::span<const VertexId> seeds, Rng& rng) const;

  /// Mean number of activated vertices over `runs` Monte-Carlo runs.
  double EstimateSpread(std::span<const VertexId> seeds, std::uint32_t runs,
                        std::uint64_t seed) const;

  /// Per-vertex activation probability over `runs` runs; also returns (in
  /// `mean_round`, if non-null) the mean activation round conditioned on
  /// activation (0 if never activated).
  std::vector<double> EstimateActivationProbability(
      std::span<const VertexId> seeds, std::uint32_t runs, std::uint64_t seed,
      std::vector<double>* mean_round = nullptr) const;

  const Graph& graph() const { return graph_; }
  double probability() const { return probability_; }

 private:
  const Graph& graph_;
  double probability_;
};

}  // namespace tsd
