// Harness for the paper's effectiveness experiments (Section 7.2):
//  Exp-7 / Fig 13 — activation rate by structural-diversity score group,
//  Exp-8 / Fig 14 — expected number of activated vertices among the top-r
//                   picks of competing diversity models,
//  Exp-9 / Fig 15 — activation latency (rounds) curves,
//  Exp-12 / Table 5 — activation probability of an ego-network's center.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "influence/independent_cascade.h"

namespace tsd {

/// One score-interval group of Fig 13.
struct ScoreGroup {
  std::uint32_t score_low = 0;
  std::uint32_t score_high = 0;
  std::uint64_t num_vertices = 0;
  double activation_rate = 0;  // mean activation probability in the group
};

/// Partitions the vertices with positive `scores` into `num_groups` roughly
/// equal-population groups by score (low to high) and returns each group's
/// mean activation probability under IC from `seeds` (Exp-7).
std::vector<ScoreGroup> ActivationRateByScoreGroup(
    const IndependentCascade& cascade, std::span<const std::uint32_t> scores,
    std::uint32_t num_groups, std::span<const VertexId> seeds,
    std::uint32_t runs, std::uint64_t seed);

/// Expected number of `targets` activated by cascades from `seeds` (Exp-8).
double ExpectedActivatedTargets(const IndependentCascade& cascade,
                                std::span<const VertexId> seeds,
                                std::span<const VertexId> targets,
                                std::uint32_t runs, std::uint64_t seed);

/// Latency curve (Exp-9): element x-1 is the mean activation round of the
/// x-th activated target (averaged over runs where at least x targets
/// activate; 0 entries mean "never observed").
std::vector<double> ActivationLatencyCurve(const IndependentCascade& cascade,
                                           std::span<const VertexId> seeds,
                                           std::span<const VertexId> targets,
                                           std::uint32_t runs,
                                           std::uint64_t seed);

/// Exp-12: builds H* = the subgraph induced by N(center) ∪ {center},
/// activates `num_seeds` random members of N(center), and returns the
/// probability that `center` itself activates under IC with `probability`.
double CenterActivationProbability(const Graph& graph, VertexId center,
                                   std::uint32_t num_seeds, double probability,
                                   std::uint32_t runs, std::uint64_t seed);

}  // namespace tsd
