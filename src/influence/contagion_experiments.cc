#include "influence/contagion_experiments.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace tsd {

std::vector<ScoreGroup> ActivationRateByScoreGroup(
    const IndependentCascade& cascade, std::span<const std::uint32_t> scores,
    std::uint32_t num_groups, std::span<const VertexId> seeds,
    std::uint32_t runs, std::uint64_t seed) {
  TSD_CHECK(num_groups >= 1);
  TSD_CHECK(scores.size() == cascade.graph().num_vertices());

  // Vertices with a positive score, ordered by (score, id).
  std::vector<VertexId> candidates;
  for (VertexId v = 0; v < scores.size(); ++v) {
    if (scores[v] > 0) candidates.push_back(v);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](VertexId a, VertexId b) {
              if (scores[a] != scores[b]) return scores[a] < scores[b];
              return a < b;
            });

  const std::vector<double> probability =
      cascade.EstimateActivationProbability(seeds, runs, seed);

  std::vector<ScoreGroup> groups;
  if (candidates.empty()) return groups;
  // Score-interval boundaries (as in the paper's Fig. 13 groups): aim for
  // equal populations but never split one score value across two groups —
  // otherwise the within-score ordering (vertex id) would leak into the
  // group statistics. Each group's population target is computed from what
  // remains, so one dominant score value cannot swallow all later groups.
  std::size_t begin = 0;
  for (std::uint32_t g = 0; g < num_groups && begin < candidates.size();
       ++g) {
    const std::size_t target = std::max<std::size_t>(
        1, (candidates.size() - begin) / (num_groups - g));
    std::size_t end = (g + 1 == num_groups)
                          ? candidates.size()
                          : std::min(candidates.size(), begin + target);
    // Extend to the end of the current score value.
    while (end < candidates.size() &&
           scores[candidates[end]] == scores[candidates[end - 1]]) {
      ++end;
    }
    ScoreGroup group;
    group.score_low = scores[candidates[begin]];
    group.score_high = scores[candidates[end - 1]];
    group.num_vertices = end - begin;
    double sum = 0;
    for (std::size_t i = begin; i < end; ++i) {
      sum += probability[candidates[i]];
    }
    group.activation_rate = sum / static_cast<double>(end - begin);
    groups.push_back(group);
    begin = end;
  }
  return groups;
}

double ExpectedActivatedTargets(const IndependentCascade& cascade,
                                std::span<const VertexId> seeds,
                                std::span<const VertexId> targets,
                                std::uint32_t runs, std::uint64_t seed) {
  const std::vector<double> probability =
      cascade.EstimateActivationProbability(seeds, runs, seed);
  double expected = 0;
  for (VertexId t : targets) expected += probability[t];
  return expected;
}

std::vector<double> ActivationLatencyCurve(const IndependentCascade& cascade,
                                           std::span<const VertexId> seeds,
                                           std::span<const VertexId> targets,
                                           std::uint32_t runs,
                                           std::uint64_t seed) {
  TSD_CHECK(runs > 0);
  Rng rng(seed);
  std::vector<double> round_sum(targets.size(), 0);
  std::vector<std::uint32_t> observations(targets.size(), 0);
  std::vector<std::int32_t> activation_rounds;
  for (std::uint32_t run = 0; run < runs; ++run) {
    const CascadeResult result = cascade.Run(seeds, rng);
    activation_rounds.clear();
    for (VertexId t : targets) {
      if (result.round[t] >= 0) activation_rounds.push_back(result.round[t]);
    }
    std::sort(activation_rounds.begin(), activation_rounds.end());
    for (std::size_t x = 0; x < activation_rounds.size(); ++x) {
      round_sum[x] += activation_rounds[x];
      ++observations[x];
    }
  }
  std::vector<double> curve(targets.size(), 0);
  for (std::size_t x = 0; x < targets.size(); ++x) {
    if (observations[x] > 0) curve[x] = round_sum[x] / observations[x];
  }
  // Trim trailing never-observed ranks.
  while (!curve.empty() && observations[curve.size() - 1] == 0) {
    curve.pop_back();
  }
  return curve;
}

double CenterActivationProbability(const Graph& graph, VertexId center,
                                   std::uint32_t num_seeds, double probability,
                                   std::uint32_t runs, std::uint64_t seed) {
  TSD_CHECK(center < graph.num_vertices());
  const auto nbrs = graph.neighbors(center);
  TSD_CHECK_MSG(nbrs.size() >= num_seeds,
                "center has fewer neighbors than requested seeds");

  // Build H* = induced subgraph on N(center) ∪ {center} with local ids;
  // local id of a member = its position, center last.
  std::vector<VertexId> members(nbrs.begin(), nbrs.end());
  members.push_back(center);
  std::sort(members.begin(), members.end());
  auto to_local = [&](VertexId g) {
    return static_cast<VertexId>(
        std::lower_bound(members.begin(), members.end(), g) -
        members.begin());
  };
  GraphBuilder builder;
  builder.EnsureVertices(static_cast<VertexId>(members.size()));
  for (VertexId u : members) {
    for (VertexId w : graph.neighbors(u)) {
      if (w > u && std::binary_search(members.begin(), members.end(), w)) {
        builder.AddEdge(to_local(u), to_local(w));
      }
    }
  }
  const Graph h_star = builder.Build();
  const VertexId local_center = to_local(center);

  IndependentCascade cascade(h_star, probability);
  Rng rng(seed);
  std::uint32_t activated = 0;
  std::vector<VertexId> local_neighbors;
  for (VertexId u : nbrs) local_neighbors.push_back(to_local(u));

  std::vector<VertexId> seeds(num_seeds);
  for (std::uint32_t run = 0; run < runs; ++run) {
    // Fresh random seed set per run (paper: 10 random influential seeds).
    for (std::uint32_t i = 0; i < num_seeds; ++i) {
      seeds[i] = local_neighbors[rng.Uniform(local_neighbors.size())];
    }
    const CascadeResult result = cascade.Run(seeds, rng);
    activated += result.round[local_center] >= 0 ? 1 : 0;
  }
  return static_cast<double>(activated) / runs;
}

}  // namespace tsd
