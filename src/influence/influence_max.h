// Influence maximization via reverse-reachable (RIS) sampling.
//
// The paper seeds its contagion experiments with 50 vertices chosen by the
// IMM algorithm [37]. IMM's core estimator is implemented here: sample many
// random reverse-reachable (RR) sets under the IC model, then greedily pick
// the seeds that cover the most sets (a (1-1/e)-approximate max-cover).
// IMM's adaptive martingale stopping rule is replaced by an explicit sample
// count, which is all the experiments need (see DESIGN.md §3).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tsd {

struct RisOptions {
  /// Number of reverse-reachable sets to sample.
  std::uint32_t num_samples = 50000;
  /// IC edge probability.
  double probability = 0.01;
  std::uint64_t seed = 1;
};

/// Selects `k` seeds maximizing estimated IC spread.
std::vector<VertexId> SelectSeedsRis(const Graph& graph, std::uint32_t k,
                                     const RisOptions& options);

/// Degree heuristic (top-k by degree) — cheap fallback / comparison.
std::vector<VertexId> SelectSeedsByDegree(const Graph& graph, std::uint32_t k);

}  // namespace tsd
