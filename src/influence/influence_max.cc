#include "influence/influence_max.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/check.h"
#include "common/rng.h"

namespace tsd {

std::vector<VertexId> SelectSeedsRis(const Graph& graph, std::uint32_t k,
                                     const RisOptions& options) {
  TSD_CHECK(k >= 1);
  TSD_CHECK(k <= graph.num_vertices());
  Rng rng(options.seed);
  const VertexId n = graph.num_vertices();

  // Sample RR sets: BFS from a uniform root where each edge is live with
  // probability p. (The graph is undirected, so forward and reverse
  // reachability coincide.)
  std::vector<std::vector<VertexId>> rr_sets;
  rr_sets.reserve(options.num_samples);
  std::vector<std::vector<std::uint32_t>> sets_covering(n);
  std::vector<std::int32_t> visited(n, -1);
  std::vector<VertexId> queue;
  for (std::uint32_t s = 0; s < options.num_samples; ++s) {
    const auto root = static_cast<VertexId>(rng.Uniform(n));
    queue.clear();
    queue.push_back(root);
    visited[root] = static_cast<std::int32_t>(s);
    std::vector<VertexId> rr = {root};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId u = queue[head];
      for (VertexId v : graph.neighbors(u)) {
        if (visited[v] == static_cast<std::int32_t>(s)) continue;
        if (rng.Bernoulli(options.probability)) {
          visited[v] = static_cast<std::int32_t>(s);
          queue.push_back(v);
          rr.push_back(v);
        }
      }
    }
    for (VertexId v : rr) sets_covering[v].push_back(s);
    rr_sets.push_back(std::move(rr));
  }

  // Greedy max-cover with lazy "covered" bookkeeping.
  std::vector<char> set_covered(options.num_samples, 0);
  std::vector<std::uint32_t> gain(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    gain[v] = static_cast<std::uint32_t>(sets_covering[v].size());
  }

  std::vector<VertexId> seeds;
  std::vector<char> chosen(n, 0);
  seeds.reserve(k);
  for (std::uint32_t round = 0; round < k; ++round) {
    // Recompute exact gains (n is laptop-scale; simple beats lazy-heap).
    VertexId best = kInvalidVertex;
    std::uint32_t best_gain = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (chosen[v]) continue;
      std::uint32_t g = 0;
      for (std::uint32_t s : sets_covering[v]) g += !set_covered[s];
      // Ties broken by id for determinism; a zero-gain best still picks the
      // smallest-id unchosen vertex so we always return exactly k seeds.
      if (best == kInvalidVertex || g > best_gain) {
        best = v;
        best_gain = g;
      }
    }
    chosen[best] = 1;
    seeds.push_back(best);
    for (std::uint32_t s : sets_covering[best]) set_covered[s] = 1;
  }
  std::sort(seeds.begin(), seeds.end());
  return seeds;
}

std::vector<VertexId> SelectSeedsByDegree(const Graph& graph,
                                          std::uint32_t k) {
  TSD_CHECK(k <= graph.num_vertices());
  std::vector<VertexId> vertices(graph.num_vertices());
  std::iota(vertices.begin(), vertices.end(), 0U);
  std::partial_sort(vertices.begin(), vertices.begin() + k, vertices.end(),
                    [&](VertexId a, VertexId b) {
                      if (graph.degree(a) != graph.degree(b)) {
                        return graph.degree(a) > graph.degree(b);
                      }
                      return a < b;
                    });
  vertices.resize(k);
  std::sort(vertices.begin(), vertices.end());
  return vertices;
}

}  // namespace tsd
