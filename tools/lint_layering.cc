// lint_layering — compile-free enforcement of the repository's include DAG.
//
// ROADMAP.md declares a strict layering for src/:
//
//   common <- graph <- truss <- core <- server
//                                    <- influence
//
// (an arrow means "may be included by"; server and influence are sibling
// leaves that may not include each other). Until this PR the DAG lived in
// prose and was enforced by review; this tool parses the `#include` lines
// of every file under src/ (plus tools/, bench/, examples/, tests/) and
// fails on:
//
//   [layer]      a project include that points *down* the DAG — e.g. a
//                common/ header including truss/, or server/ including
//                influence/;
//   [missing]    a quoted project include that resolves to no file (catches
//                renames that leave stale includes behind);
//   [self-first] a src .cc file whose first quoted include is not its own
//                header (the convention that keeps headers self-contained:
//                compiling foo.cc proves foo.h includes what it uses);
//   [duplicate]  the same include twice in one file.
//
// Deliberate exceptions live in a machine-readable allowlist (one
// "<file> <include>" pair per line, '#' comments); pass --allowlist to use
// one. The tool is a tier-1 ctest (`ctest -R lint_layering`) so a layering
// regression fails locally in seconds, not in CI review. Complementary
// coverage: the headers_selfcontained ctest compiles every header in
// isolation, which is the "headers include what they use" half this
// token-level scan cannot prove.
//
// Usage: lint_layering --root <repo_root> [--allowlist <file>] [--quiet]
//        lint_layering --src-root <dir containing a src/ tree> ...
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;  // repo-relative path
  int line = 0;
  std::string rule;     // layer | missing | self-first | duplicate
  std::string message;  // human-readable detail
};

struct Options {
  fs::path root;
  fs::path allowlist;
  bool quiet = false;
};

/// The DAG: layer -> layers it may include (always includes itself).
/// Kept in one table so the linter, the ROADMAP text, and the fixture
/// tests all describe the same graph.
const std::map<std::string, std::set<std::string>>& AllowedIncludes() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"common", {"common"}},
      {"graph", {"common", "graph"}},
      {"truss", {"common", "graph", "truss"}},
      {"core", {"common", "graph", "truss", "core"}},
      {"server", {"common", "graph", "truss", "core", "server"}},
      {"influence", {"common", "graph", "truss", "core", "influence"}},
  };
  return kAllowed;
}

/// "common/check.h" -> "common"; "" when the include has no directory
/// component (never true for this repo's project includes).
std::string LayerOf(const std::string& project_path) {
  const std::size_t slash = project_path.find('/');
  if (slash == std::string::npos) return "";
  return project_path.substr(0, slash);
}

/// Extracts the target of a quoted include directive; empty when the line
/// is not one. Tolerates leading whitespace and `#  include` spacing;
/// ignores angle-bracket includes (system headers are not project layers).
std::string QuotedIncludeTarget(const std::string& line) {
  std::size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '#') return "";
  i = line.find_first_not_of(" \t", i + 1);
  if (i == std::string::npos || line.compare(i, 7, "include") != 0) return "";
  i = line.find_first_not_of(" \t", i + 7);
  if (i == std::string::npos || line[i] != '"') return "";
  const std::size_t close = line.find('"', i + 1);
  if (close == std::string::npos) return "";
  return line.substr(i + 1, close - i - 1);
}

/// Loads "<file> <include>" exception pairs; '#' starts a comment.
std::set<std::pair<std::string, std::string>> LoadAllowlist(
    const fs::path& path, bool* ok) {
  std::set<std::pair<std::string, std::string>> allow;
  *ok = true;
  if (path.empty()) return allow;
  std::ifstream in(path);
  if (!in) {
    *ok = false;
    return allow;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string file, include;
    if (!(tokens >> file >> include)) continue;  // blank / comment-only
    allow.emplace(file, include);
  }
  return allow;
}

class Linter {
 public:
  Linter(const Options& options,
         std::set<std::pair<std::string, std::string>> allow)
      : options_(options), allow_(std::move(allow)) {}

  void LintTree() {
    const fs::path src = options_.root / "src";
    for (const char* aux : {"src", "tools", "bench", "examples", "tests"}) {
      const fs::path dir = options_.root / aux;
      if (!fs::exists(dir)) continue;
      std::vector<fs::path> files;
      for (auto it = fs::recursive_directory_iterator(dir);
           it != fs::recursive_directory_iterator(); ++it) {
        // Fixture trees under tests/ are deliberately-broken inputs for
        // this tool's own self-test; linting them as part of the real tree
        // would report their planted violations.
        if (it->is_directory() &&
            it->path().filename() == "lint_fixtures") {
          it.disable_recursion_pending();
          continue;
        }
        const auto& entry = *it;
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp") {
          files.push_back(entry.path());
        }
      }
      std::sort(files.begin(), files.end());  // deterministic report order
      for (const fs::path& file : files) LintFile(file, src);
    }
  }

  const std::vector<Violation>& violations() const { return violations_; }

 private:
  void Report(const std::string& file, int line, const std::string& rule,
              const std::string& message) {
    violations_.push_back(Violation{file, line, rule, message});
  }

  void LintFile(const fs::path& path, const fs::path& src) {
    const std::string rel =
        fs::relative(path, options_.root).generic_string();
    const bool in_src = rel.rfind("src/", 0) == 0;
    // src/<layer>/<file>: the layer whose DAG row applies. Files outside
    // src/ (tools, bench, examples, tests) are consumers of the whole
    // library: any layer is fair game, but includes must still resolve.
    std::string layer;
    if (in_src) {
      const std::string below_src = rel.substr(4);
      layer = LayerOf(below_src);
    }

    std::ifstream in(path);
    if (!in) {
      Report(rel, 0, "io", "cannot open file");
      return;
    }

    // Self-first: src/<layer>/foo.cc must include "<layer>/foo.h" first
    // when that header exists — compiling foo.cc is then the proof that
    // foo.h is self-contained.
    std::string expected_self;
    if (in_src && path.extension() == ".cc") {
      fs::path self_header = path;
      self_header.replace_extension(".h");
      if (fs::exists(self_header)) {
        expected_self = fs::relative(self_header, src).generic_string();
      }
    }

    std::set<std::string> seen;
    bool first_quoted = true;
    std::string line;
    int line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      const std::string target = QuotedIncludeTarget(line);
      if (target.empty()) continue;

      if (!seen.insert(target).second && !Allowed(rel, target)) {
        Report(rel, line_number, "duplicate",
               "\"" + target + "\" included more than once");
      }

      if (first_quoted) {
        first_quoted = false;
        if (!expected_self.empty() && target != expected_self &&
            !Allowed(rel, target)) {
          Report(rel, line_number, "self-first",
                 "first include is \"" + target + "\", expected own header \"" +
                     expected_self + "\"");
        }
      }

      // Resolution: project includes are rooted at src/; files outside
      // src/ may also include siblings from their own directory (e.g.
      // bench/bench_common.h, tests/serve_test_util.h).
      const bool under_src = fs::exists(src / target);
      const bool sibling =
          !in_src && fs::exists(path.parent_path() / target);
      if (!under_src && !sibling) {
        if (!Allowed(rel, target)) {
          Report(rel, line_number, "missing",
                 "\"" + target + "\" resolves to no file under src/" +
                     (in_src ? "" : " or next to the includer"));
        }
        continue;
      }

      if (in_src && under_src) {
        const std::string target_layer = LayerOf(target);
        const auto row = AllowedIncludes().find(layer);
        if (row != AllowedIncludes().end() && !target_layer.empty() &&
            row->second.count(target_layer) == 0 && !Allowed(rel, target)) {
          Report(rel, line_number, "layer",
                 "src/" + layer + "/ may not include \"" + target +
                     "\" (layer " + target_layer +
                     " is below it in the DAG common <- graph <- truss <- "
                     "core <- server|influence)");
        }
      }
    }
  }

  bool Allowed(const std::string& file, const std::string& include) const {
    return allow_.count({file, include}) > 0;
  }

  Options options_;
  std::set<std::pair<std::string, std::string>> allow_;
  std::vector<Violation> violations_;
};

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "lint_layering: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root" || arg == "--src-root") {
      options.root = value(arg.c_str());
    } else if (arg == "--allowlist") {
      options.allowlist = value(arg.c_str());
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      std::cerr << "lint_layering: unknown argument " << arg << "\n"
                << "usage: lint_layering --root <repo_root> "
                   "[--allowlist <file>] [--quiet]\n";
      return 2;
    }
  }
  if (options.root.empty()) {
    std::cerr << "lint_layering: --root is required\n";
    return 2;
  }
  if (!fs::exists(options.root / "src")) {
    std::cerr << "lint_layering: no src/ under " << options.root << "\n";
    return 2;
  }

  bool allowlist_ok = true;
  auto allow = LoadAllowlist(options.allowlist, &allowlist_ok);
  if (!allowlist_ok) {
    std::cerr << "lint_layering: cannot read allowlist " << options.allowlist
              << "\n";
    return 2;
  }

  Linter linter(options, std::move(allow));
  linter.LintTree();

  for (const Violation& v : linter.violations()) {
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  if (!linter.violations().empty()) {
    std::cerr << linter.violations().size() << " layering violation(s)\n";
    return 1;
  }
  if (!options.quiet) {
    std::cout << "lint_layering: OK (" << "DAG common <- graph <- truss <- "
              << "core <- server|influence holds)\n";
  }
  return 0;
}
