// tsdtool — command-line interface to the library.
//
//   tsdtool stats  <edge-list>                     graph + trussness stats
//   tsdtool topr   <edge-list> [--k=3] [--r=10] [--method=gct|tsd|online|
//                                       bound|comp|core]
//   tsdtool score  <edge-list> --v=<id> [--k=3]    one vertex + contexts
//   tsdtool build  <edge-list> --out=<index> [--index=gct|tsd]
//   tsdtool query  --index-file=<index> [--k=3] [--r=10] [--index=gct|tsd]
//   tsdtool gen    --out=<file> [--model=hk|ba|er|rmat] [--n=10000] ...
//
// Edge lists are SNAP-style text ("u v" per line, '#' comments).
#include <algorithm>
#include <iostream>
#include <memory>

#include "common/check.h"
#include "common/flags.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/baselines.h"
#include "core/bound_search.h"
#include "core/gct_index.h"
#include "core/online_search.h"
#include "core/tsd_index.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "truss/triangle.h"
#include "truss/truss_decomposition.h"

namespace {

using namespace tsd;

int Usage() {
  std::cerr <<
      "usage: tsdtool <command> [args]\n"
      "  stats <edge-list>                         graph + trussness stats\n"
      "  topr  <edge-list> [--k=3] [--r=10] [--method=gct] [--threads=1]\n"
      "                                            top-r diversity search\n"
      "  score <edge-list> --v=<id> [--k=3]        score + contexts of one "
      "vertex\n"
      "  build <edge-list> --out=<file> [--index=gct]\n"
      "                                            build + save an index\n"
      "  query --index-file=<file> [--index=gct] [--k=3] [--r=10] "
      "[--threads=1]\n"
      "                                            query a saved index\n"
      "  gen   --out=<file> [--model=hk] [--n=10000] [--m-per=5] [--p=0.5] "
      "[--seed=1]\n"
      "                                            generate a synthetic "
      "graph\n"
      "methods: gct tsd online bound comp core\n"
      "--threads=N runs the query pipeline on N workers (identical output; "
      "--chunks=M\ntunes load balancing). Results go to stdout, diagnostics "
      "to stderr.\n";
  return 2;
}

void PrintTopR(const TopRResult& result, bool contexts) {
  TablePrinter table({"rank", "vertex", "score"});
  for (std::size_t i = 0; i < result.entries.size(); ++i) {
    table.Row(std::uint64_t{i + 1}, std::uint64_t{result.entries[i].vertex},
              std::uint64_t{result.entries[i].score});
  }
  table.Print(std::cout);
  if (contexts) {
    for (const auto& entry : result.entries) {
      std::cout << "vertex " << entry.vertex << " contexts:";
      for (const auto& context : entry.contexts) {
        std::cout << " {";
        for (std::size_t i = 0; i < context.size(); ++i) {
          std::cout << (i ? "," : "") << context[i];
        }
        std::cout << "}";
      }
      std::cout << "\n";
    }
  }
  // Diagnostics go to stderr so the ranked output on stdout is byte-stable
  // across runs and thread counts.
  std::cerr << "search space: " << result.stats.vertices_scored
            << " vertices, threads: " << result.stats.threads_used
            << ", time: " << HumanSeconds(result.stats.total_seconds) << "\n";
}

int RunStats(const Graph& g) {
  TrussDecomposition td(g);
  TablePrinter table({"|V|", "|E|", "d_max", "T", "tau*_G"});
  table.Row(WithThousands(g.num_vertices()), WithThousands(g.num_edges()),
            std::uint64_t{g.max_degree()}, WithThousands(CountTriangles(g)),
            std::uint64_t{td.max_trussness()});
  table.Print(std::cout);

  std::cout << "\nedge trussness histogram:\n";
  TablePrinter hist({"trussness", "edges"});
  const auto histogram = td.TrussnessHistogram();
  for (std::uint32_t t = 2; t < histogram.size(); ++t) {
    if (histogram[t] > 0) hist.Row(std::uint64_t{t}, histogram[t]);
  }
  hist.Print(std::cout);
  return 0;
}

int RunTopR(const Graph& g, const Flags& flags) {
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 3));
  const auto r = static_cast<std::uint32_t>(flags.GetInt("r", 10));
  const std::string method = flags.GetString("method", "gct");

  std::unique_ptr<DiversitySearcher> searcher;
  std::unique_ptr<TsdIndex> tsd;
  std::unique_ptr<GctIndex> gct;
  if (method == "online") {
    searcher = std::make_unique<OnlineSearcher>(g);
  } else if (method == "bound") {
    searcher = std::make_unique<BoundSearcher>(g);
  } else if (method == "tsd") {
    tsd = std::make_unique<TsdIndex>(TsdIndex::Build(g));
  } else if (method == "gct") {
    gct = std::make_unique<GctIndex>(GctIndex::Build(g));
  } else if (method == "comp") {
    searcher = std::make_unique<CompDivSearcher>(g);
  } else if (method == "core") {
    searcher = std::make_unique<CoreDivSearcher>(g);
  } else {
    return Usage();
  }
  DiversitySearcher* active = searcher ? searcher.get()
                              : tsd    ? static_cast<DiversitySearcher*>(tsd.get())
                                       : static_cast<DiversitySearcher*>(gct.get());
  active->set_query_options(QueryOptionsFromFlags(flags));
  std::cout << "method: " << active->name() << " k=" << k << " r=" << r
            << "\n";
  PrintTopR(active->TopR(std::min<std::uint32_t>(r, g.num_vertices()), k),
            flags.GetBool("contexts", false));
  return 0;
}

int RunScore(const Graph& g, const Flags& flags) {
  TSD_CHECK_MSG(flags.Has("v"), "score requires --v=<vertex>");
  const auto v = static_cast<VertexId>(flags.GetInt("v", 0));
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 3));
  TSD_CHECK_MSG(v < g.num_vertices(), "vertex out of range");
  OnlineSearcher online(g);
  const ScoreResult result = online.ScoreVertex(v, k, /*want_contexts=*/true);
  std::cout << "score(" << v << ") at k=" << k << ": " << result.score
            << "\n";
  for (const auto& context : result.contexts) {
    std::cout << "  context (" << context.size() << " members):";
    for (VertexId member : context) std::cout << " " << member;
    std::cout << "\n";
  }
  return 0;
}

int RunBuild(const Graph& g, const Flags& flags) {
  TSD_CHECK_MSG(flags.Has("out"), "build requires --out=<file>");
  const std::string out = flags.GetString("out", "");
  const std::string kind = flags.GetString("index", "gct");
  if (kind == "tsd") {
    TsdIndex index = TsdIndex::Build(g);
    index.Save(out);
    std::cout << "TSD index: " << HumanBytes(index.SizeBytes()) << " in "
              << HumanSeconds(index.build_stats().total_seconds) << " -> "
              << out << "\n";
  } else if (kind == "gct") {
    GctIndex index = GctIndex::Build(g);
    index.Save(out);
    std::cout << "GCT index: " << HumanBytes(index.SizeBytes()) << " in "
              << HumanSeconds(index.build_stats().total_seconds) << " -> "
              << out << "\n";
  } else {
    return Usage();
  }
  return 0;
}

int RunQuery(const Flags& flags) {
  TSD_CHECK_MSG(flags.Has("index-file"), "query requires --index-file=<file>");
  const std::string path = flags.GetString("index-file", "");
  const std::string kind = flags.GetString("index", "gct");
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 3));
  const auto r = static_cast<std::uint32_t>(flags.GetInt("r", 10));
  if (kind == "tsd") {
    TsdIndex index = TsdIndex::Load(path);
    index.set_query_options(QueryOptionsFromFlags(flags));
    PrintTopR(index.TopR(std::min<std::uint32_t>(r, index.num_vertices()), k),
              flags.GetBool("contexts", false));
  } else {
    GctIndex index = GctIndex::Load(path);
    index.set_query_options(QueryOptionsFromFlags(flags));
    PrintTopR(index.TopR(std::min<std::uint32_t>(r, index.num_vertices()), k),
              flags.GetBool("contexts", false));
  }
  return 0;
}

int RunGen(const Flags& flags) {
  TSD_CHECK_MSG(flags.Has("out"), "gen requires --out=<file>");
  const std::string model = flags.GetString("model", "hk");
  const auto n = static_cast<VertexId>(flags.GetInt("n", 10000));
  const auto m_per = static_cast<std::uint32_t>(flags.GetInt("m-per", 5));
  const double p = flags.GetDouble("p", 0.5);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  Graph g;
  if (model == "hk") {
    g = HolmeKim(n, m_per, p, seed);
  } else if (model == "ba") {
    g = BarabasiAlbert(n, m_per, seed);
  } else if (model == "er") {
    g = ErdosRenyi(n, n * m_per, seed);
  } else if (model == "rmat") {
    std::uint32_t scale = 0;
    while ((VertexId{1} << scale) < n) ++scale;
    g = RMat(scale, m_per, 0.45, 0.2, 0.2, seed);
  } else {
    return Usage();
  }
  SaveEdgeListText(g, flags.GetString("out", ""));
  std::cout << "wrote " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges to " << flags.GetString("out", "") << "\n";
  return 0;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string command = flags.positional()[0];

  try {
    if (command == "query") return RunQuery(flags);
    if (command == "gen") return RunGen(flags);
    if (flags.positional().size() < 2) return Usage();
    const Graph g = LoadEdgeListText(flags.positional()[1]);
    if (command == "stats") return RunStats(g);
    if (command == "topr") return RunTopR(g, flags);
    if (command == "score") return RunScore(g, flags);
    if (command == "build") return RunBuild(g, flags);
  } catch (const CheckError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
