// tsdtool — command-line interface to the library.
//
//   tsdtool stats  <edge-list>                     graph + trussness stats
//   tsdtool topr   <edge-list> [--k=3] [--r=10] [--method=gct|tsd|dynamic|
//                                       online|bound|comp|core]
//   tsdtool batch  <edge-list> --k=4,6,8 [--r=10] [--method=gct]
//   tsdtool score  <edge-list> --v=<id> [--k=3]    one vertex + contexts
//   tsdtool build  <edge-list> --out=<snap> [--index=gct|tsd|both]
//   tsdtool query  --index-file=<snap> [--k=3] [--r=10] [--index=gct|tsd]
//   tsdtool gen    --out=<file> [--model=hk|ba|er|rmat] [--n=10000] ...
//   tsdtool serve  <edge-list> --stdin-proto [--method=gct]  query server
//   tsdtool serve  <edge-list> --listen=PORT [--method=gct]  socket server
//   tsdtool client --connect=HOST:PORT [--stats] [--shutdown] socket client
//
// Edge lists are SNAP-style text ("u v" per line, '#' comments). The graph
// commands alternatively take --index=<snapshot> to mmap a file written by
// `build` instead of re-reading and re-indexing the edge list.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/snapshot.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/baselines.h"
#include "core/bound_search.h"
#include "core/dynamic_tsd_index.h"
#include "core/gct_index.h"
#include "core/online_search.h"
#include "core/tsd_index.h"
#include "core/query_pipeline.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "server/live_index.h"
#include "server/sharded_serve.h"
#include "server/socket_proto.h"
#include "server/socket_serve.h"
#include "server/stdin_proto.h"
#include "truss/parallel_truss.h"
#include "truss/truss_decomposition.h"
#include "truss/truss_plan.h"

namespace {

using namespace tsd;

int Usage() {
  std::cerr <<
      "usage: tsdtool <command> [args]\n"
      "  stats <edge-list> [--threads=1] [--plan=auto]\n"
      "                                            graph + trussness stats,\n"
      "                                            plus the plan tuner's\n"
      "                                            input statistics\n"
      "  topr  <edge-list> [--k=3] [--r=10] [--method=gct] [--threads=1]\n"
      "                                            top-r diversity search\n"
      "  batch <edge-list> --k=4,6,8 [--r=10] [--method=gct] [--threads=1]\n"
      "                                            many (k, r) queries in one\n"
      "                                            amortized pass (one ego\n"
      "                                            decomposition per vertex;\n"
      "                                            --r broadcasts or lists\n"
      "                                            per-query values)\n"
      "  score <edge-list> --v=<id> [--k=3]        score + contexts of one "
      "vertex\n"
      "  build <edge-list> --out=<file> [--index=gct|tsd|both] [--threads=1]\n"
      "                                            build graph + index and\n"
      "                                            save one mmap-ready\n"
      "                                            snapshot file\n"
      "  query --index-file=<file> [--index=gct] [--k=3] [--r=10] "
      "[--threads=1]\n"
      "                                            query a saved index\n"
      "  gen   --out=<file> [--model=hk] [--n=10000] [--m-per=5] [--p=0.5] "
      "[--seed=1]\n"
      "                                            generate a synthetic "
      "graph\n"
      "  serve <edge-list> --stdin-proto [--method=gct] [--threads=1]\n"
      "        [--shards=1] [--max-r=1024] [--max-depth=1024] "
      "[--max-batch=64]\n"
      "                                            concurrent query server\n"
      "                                            driven by a line protocol\n"
      "                                            on stdin ('q <tenant> <k>\n"
      "                                            <r>', '+u v' / '-u v'\n"
      "                                            updates with\n"
      "                                            --method=dynamic,\n"
      "                                            'flush'); replies\n"
      "                                            in submission order on\n"
      "                                            stdout, byte-stable at\n"
      "                                            any --threads/--shards.\n"
      "                                            --shards=N runs N\n"
      "                                            consumer loops with\n"
      "                                            tenants hashed across\n"
      "                                            them (deterministic\n"
      "                                            tenant->shard pinning)\n"
      "  serve <edge-list> --listen=PORT [--port-file=<file>] [--bind=ADDR]\n"
      "        [--drain-ms=5000] [--max-outbound=1048576] [...serve flags]\n"
      "                                            the same server over an\n"
      "                                            epoll socket transport\n"
      "                                            (length-prefixed binary\n"
      "                                            frames); PORT 0 picks a\n"
      "                                            free port, printed to\n"
      "                                            stderr and --port-file.\n"
      "                                            Runs until a client sends\n"
      "                                            shutdown (tsdtool client\n"
      "                                            --shutdown)\n"
      "  client --connect=HOST:PORT [--timeout-ms=30000] [--stats|--shutdown]\n"
      "                                            drives the socket server\n"
      "                                            with the same script the\n"
      "                                            stdin protocol reads ('q\n"
      "                                            <tenant> <k> <r>'/'flush',\n"
      "                                            plus 'stats'/'shutdown');\n"
      "                                            transcripts on stdout are\n"
      "                                            byte-identical to\n"
      "                                            --stdin-proto for the\n"
      "                                            same script\n"
      "methods: gct tsd online bound comp core\n"
      "stats/topr/batch/score/serve also take --index=<snapshot>: the graph\n"
      "(and any tsd/gct index the file carries) is mmap-bound zero-copy\n"
      "instead of rebuilt — N processes serving one snapshot share one\n"
      "physical copy through the page cache. The edge-list argument becomes\n"
      "optional; when both are given and the snapshot cannot be loaded (bad\n"
      "version, corruption), a warning goes to stderr and the command falls\n"
      "back to rebuilding from the edge list. Output is byte-identical\n"
      "either way.\n"
      "--threads=N runs the query pipeline on N workers — including the\n"
      "preprocessing stages: the global truss decomposition behind stats and\n"
      "the bound method, triangle counting, and index construction (build).\n"
      "Output is identical at any thread count; --chunks=M tunes load\n"
      "balancing. Results go to stdout, diagnostics to stderr.\n"
      "--plan={auto,bsp,jacobi,core-truss} picks the truss-decomposition\n"
      "kernel those preprocessing stages run (e.g. `tsdtool stats g.txt\n"
      "--plan=core-truss`, `tsdtool topr g.txt --method=bound --plan=jacobi`).\n"
      "Every plan produces bit-identical trussness — auto picks from the\n"
      "tuner statistics that `stats` prints; core-truss prunes core-bounded\n"
      "edges before triangle counting when a query needs only trussness>=k.\n";
  return 2;
}

void PrintTopR(const TopRResult& result, bool contexts,
               bool with_stats = true) {
  TablePrinter table({"rank", "vertex", "score"});
  for (std::size_t i = 0; i < result.entries.size(); ++i) {
    table.Row(std::uint64_t{i + 1}, std::uint64_t{result.entries[i].vertex},
              std::uint64_t{result.entries[i].score});
  }
  table.Print(std::cout);
  if (contexts) {
    for (const auto& entry : result.entries) {
      std::cout << "vertex " << entry.vertex << " contexts:";
      for (const auto& context : entry.contexts) {
        std::cout << " {";
        for (std::size_t i = 0; i < context.size(); ++i) {
          std::cout << (i ? "," : "") << context[i];
        }
        std::cout << "}";
      }
      std::cout << "\n";
    }
  }
  // Diagnostics go to stderr so the ranked output on stdout is byte-stable
  // across runs and thread counts.
  if (with_stats) {
    std::cerr << "search space: " << result.stats.vertices_scored
              << " vertices, threads: " << result.stats.threads_used
              << ", time: " << HumanSeconds(result.stats.total_seconds)
              << "\n";
  }
}

/// The graph a command runs on, plus any indexes that came bound zero-copy
/// from a --index=<snapshot> mapping (null when the snapshot lacks that
/// group or the graph was rebuilt from the edge list).
struct GraphSource {
  Graph graph;
  std::unique_ptr<TsdIndex> tsd;
  std::unique_ptr<GctIndex> gct;
};

/// Resolves the graph for a graph-backed command: the --index=<snapshot>
/// mmap fast path when given (binding whatever indexes the file carries),
/// falling back LOUDLY to the positional edge list when the snapshot cannot
/// be used — a snapshot is a cache, never the source of truth.
GraphSource LoadGraphSource(const Flags& flags) {
  GraphSource source;
  const std::string snap = flags.GetString("index", "");
  const bool have_edge_list = flags.positional().size() >= 2;
  if (!snap.empty()) {
    std::string error;
    SnapshotReader reader;
    WallTimer timer;
    if (SnapshotReader::Open(snap, &reader, &error) &&
        Graph::LoadFromSnapshot(reader, &source.graph, &error)) {
      // Bind whichever index groups the snapshot carries; absence is fine
      // (the file was built with the other --index kind).
      auto tsd = std::make_unique<TsdIndex>();
      if (TsdIndex::LoadFromSnapshot(reader, tsd.get(), nullptr)) {
        source.tsd = std::move(tsd);
      }
      auto gct = std::make_unique<GctIndex>();
      if (GctIndex::LoadFromSnapshot(reader, gct.get(), nullptr)) {
        source.gct = std::move(gct);
      }
      std::cerr << "snapshot: mapped " << HumanBytes(reader.file_size())
                << " from " << snap << " (graph"
                << (source.tsd ? " + tsd" : "")
                << (source.gct ? " + gct" : "") << ") in "
                << HumanSeconds(timer.Seconds()) << "\n";
      return source;
    }
    TSD_CHECK_MSG(have_edge_list,
                  "cannot load snapshot '"
                      << snap << "' (" << error
                      << ") and no edge list was given to rebuild from");
    std::cerr << "warning: cannot load snapshot '" << snap << "': " << error
              << "\nwarning: falling back to rebuild from '"
              << flags.positional()[1] << "'\n";
  }
  TSD_CHECK_MSG(have_edge_list, "this command needs an <edge-list> argument "
                                "or --index=<snapshot>");
  source.graph = LoadEdgeListText(flags.positional()[1]);
  return source;
}

/// A searcher plus the index that may back it, built from --method.
/// `active` is null when the method name is unknown.
struct SearcherHolder {
  std::unique_ptr<DiversitySearcher> searcher;
  std::unique_ptr<TsdIndex> tsd;
  std::unique_ptr<GctIndex> gct;
  /// Live-updatable index (--method=dynamic); the serve command wires its
  /// LiveUpdateApplier into the transports' "+u v" / "-u v" lines.
  std::unique_ptr<DynamicTsdIndex> dynamic;
  DiversitySearcher* active = nullptr;
};

/// Builds the --method searcher, preferring an index already bound from a
/// mapped snapshot (moved out of `source`) over rebuilding it.
SearcherHolder MakeSearcher(GraphSource& source, const std::string& method) {
  const Graph& g = source.graph;
  SearcherHolder holder;
  if (method == "online") {
    holder.searcher = std::make_unique<OnlineSearcher>(g);
  } else if (method == "bound") {
    holder.searcher = std::make_unique<BoundSearcher>(g);
  } else if (method == "tsd") {
    holder.tsd = source.tsd ? std::move(source.tsd)
                            : std::make_unique<TsdIndex>(TsdIndex::Build(g));
  } else if (method == "gct") {
    holder.gct = source.gct ? std::move(source.gct)
                            : std::make_unique<GctIndex>(GctIndex::Build(g));
  } else if (method == "comp") {
    holder.searcher = std::make_unique<CompDivSearcher>(g);
  } else if (method == "core") {
    holder.searcher = std::make_unique<CoreDivSearcher>(g);
  } else if (method == "dynamic") {
    holder.dynamic = std::make_unique<DynamicTsdIndex>(g);
  }
  holder.active = holder.searcher ? holder.searcher.get()
                  : holder.tsd
                      ? static_cast<DiversitySearcher*>(holder.tsd.get())
                  : holder.gct
                      ? static_cast<DiversitySearcher*>(holder.gct.get())
                  : holder.dynamic
                      ? static_cast<DiversitySearcher*>(holder.dynamic.get())
                      : nullptr;
  return holder;
}

/// Parses a comma-separated list of non-negative integers ("4,6,8").
std::vector<std::uint32_t> ParseUintList(const std::string& text) {
  std::vector<std::uint32_t> values;
  std::uint64_t current = 0;
  bool have_digit = false;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ',') {
      TSD_CHECK_MSG(have_digit, "bad list value: '" << text << "'");
      values.push_back(static_cast<std::uint32_t>(current));
      current = 0;
      have_digit = false;
    } else {
      TSD_CHECK_MSG(text[i] >= '0' && text[i] <= '9',
                    "bad list value: '" << text << "'");
      current = current * 10 + (text[i] - '0');
      TSD_CHECK_MSG(current <= UINT32_MAX,
                    "list value out of range: '" << text << "'");
      have_digit = true;
    }
  }
  return values;
}

int RunStats(const Graph& g, const Flags& flags) {
  const ParallelConfig config = ToParallelConfig(QueryOptionsFromFlags(flags));
  WallTimer decompose_timer;
  TrussDecomposition td(g, config);
  const double decompose_seconds = decompose_timer.Seconds();
  TablePrinter table({"|V|", "|E|", "d_max", "T", "tau*_G"});
  table.Row(WithThousands(g.num_vertices()), WithThousands(g.num_edges()),
            std::uint64_t{g.max_degree()},
            WithThousands(CountTriangles(g, config)),
            std::uint64_t{td.max_trussness()});
  table.Print(std::cout);

  // The auto-tuner's inputs (truss_plan.h). Pure graph properties, so this
  // block — like everything on stdout here — is byte-identical under every
  // --plan; the plan resolution itself is a diagnostic and goes to stderr.
  const GraphStatistics& gs = td.plan_stats().graph_stats;
  std::cout << "\nplan tuner statistics:\n";
  TablePrinter tuner({"density", "avg_deg", "degen<=", "skew"});
  tuner.Row(FormatDouble(gs.density, 6), FormatDouble(gs.average_degree, 2),
            std::uint64_t{gs.degeneracy_bound},
            FormatDouble(gs.degree_skew, 2));
  tuner.Print(std::cout);

  std::cout << "\nedge trussness histogram:\n";
  TablePrinter hist({"trussness", "edges"});
  const auto histogram = td.TrussnessHistogram();
  for (std::uint32_t t = 2; t < histogram.size(); ++t) {
    if (histogram[t] > 0) hist.Row(std::uint64_t{t}, histogram[t]);
  }
  hist.Print(std::cout);

  const TrussPlanStats& ps = td.plan_stats();
  std::cerr << "plan: " << TrussPlanAlgorithmName(ps.requested)
            << " -> " << TrussPlanAlgorithmName(ps.algorithm)
            << (ps.bitmap_kernel ? " (bitmap support kernel)" : "")
            << ", edges pruned: " << ps.edges_pruned
            << ", decomposition time: " << HumanSeconds(decompose_seconds)
            << "\n";
  return 0;
}

int RunTopR(GraphSource& source, const Flags& flags) {
  const Graph& g = source.graph;
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 3));
  const auto r = static_cast<std::uint32_t>(flags.GetInt("r", 10));
  const std::string method = flags.GetString("method", "gct");

  SearcherHolder holder = MakeSearcher(source, method);
  if (holder.active == nullptr) return Usage();
  holder.active->set_query_options(QueryOptionsFromFlags(flags));
  std::cout << "method: " << holder.active->name() << " k=" << k
            << " r=" << r << "\n";
  PrintTopR(
      holder.active->TopR(std::min<std::uint32_t>(r, g.num_vertices()), k),
      flags.GetBool("contexts", false));
  return 0;
}

int RunBatch(GraphSource& source, const Flags& flags) {
  const Graph& g = source.graph;
  TSD_CHECK_MSG(flags.Has("k"), "batch requires --k=<k1,k2,...>");
  const std::vector<std::uint32_t> ks =
      ParseUintList(flags.GetString("k", ""));
  const std::vector<std::uint32_t> rs =
      ParseUintList(flags.GetString("r", "10"));
  TSD_CHECK_MSG(rs.size() == 1 || rs.size() == ks.size(),
                "--r must be one value or one per --k entry");

  std::vector<BatchQuery> queries;
  queries.reserve(ks.size());
  for (std::size_t i = 0; i < ks.size(); ++i) {
    BatchQuery query;
    query.k = ks[i];
    query.r = std::min<std::uint32_t>(rs.size() == 1 ? rs[0] : rs[i],
                                      g.num_vertices());
    queries.push_back(query);
  }

  SearcherHolder holder = MakeSearcher(source, flags.GetString("method", "gct"));
  if (holder.active == nullptr) return Usage();
  holder.active->set_query_options(QueryOptionsFromFlags(flags));
  std::cout << "method: " << holder.active->name() << " batch of "
            << queries.size() << " queries\n";

  const std::vector<TopRResult> results = holder.active->SearchBatch(queries);
  const bool contexts = flags.GetBool("contexts", false);
  for (std::size_t q = 0; q < results.size(); ++q) {
    std::cout << "\nquery " << q + 1 << ": k=" << queries[q].k
              << " r=" << queries[q].r << "\n";
    PrintTopR(results[q], contexts, /*with_stats=*/false);
  }
  if (!results.empty()) {
    // Amortized searchers stamp every query with the shared per-batch
    // stats; the default per-query loop reports distinct stats, which sum
    // to the batch totals. Print one accurate line either way.
    bool shared = true;
    std::uint64_t scanned = results[0].stats.vertices_scored;
    double seconds = results[0].stats.total_seconds;
    for (std::size_t q = 1; q < results.size(); ++q) {
      shared = shared &&
               results[q].stats.vertices_scored ==
                   results[0].stats.vertices_scored &&
               results[q].stats.total_seconds ==
                   results[0].stats.total_seconds;
      scanned += results[q].stats.vertices_scored;
      seconds += results[q].stats.total_seconds;
    }
    if (shared) {
      scanned = results[0].stats.vertices_scored;
      seconds = results[0].stats.total_seconds;
    }
    std::cerr << "batch search space: " << scanned
              << " vertices, threads: " << results[0].stats.threads_used
              << ", time: " << HumanSeconds(seconds) << "\n";
  }
  return 0;
}

int RunScore(const Graph& g, const Flags& flags) {
  TSD_CHECK_MSG(flags.Has("v"), "score requires --v=<vertex>");
  const auto v = static_cast<VertexId>(flags.GetInt("v", 0));
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 3));
  TSD_CHECK_MSG(v < g.num_vertices(), "vertex out of range");
  OnlineSearcher online(g);
  const ScoreResult result = online.ScoreVertex(v, k, /*want_contexts=*/true);
  std::cout << "score(" << v << ") at k=" << k << ": " << result.score
            << "\n";
  for (const auto& context : result.contexts) {
    std::cout << "  context (" << context.size() << " members):";
    for (VertexId member : context) std::cout << " " << member;
    std::cout << "\n";
  }
  return 0;
}

int RunBuild(const Graph& g, const Flags& flags) {
  TSD_CHECK_MSG(flags.Has("out"), "build requires --out=<file>");
  const std::string out = flags.GetString("out", "");
  const std::string kind = flags.GetString("index", "gct");
  const bool want_tsd = kind == "tsd" || kind == "both";
  const bool want_gct = kind == "gct" || kind == "both";
  if (!want_tsd && !want_gct) return Usage();
  const std::uint32_t num_threads = QueryOptionsFromFlags(flags).num_threads;

  // One snapshot holds the graph CSR plus the requested index group(s), so
  // stats/topr/serve --index=<out> can run without ever seeing the edge
  // list again.
  SnapshotWriter writer(out);
  g.AppendToSnapshot(writer);
  if (want_tsd) {
    TsdIndex::Options options;
    options.num_threads = num_threads;
    TsdIndex index = TsdIndex::Build(g, options);
    index.AppendToSnapshot(writer);
    std::cout << "TSD index: " << HumanBytes(index.SizeBytes()) << " in "
              << HumanSeconds(index.build_stats().total_seconds) << "\n";
  }
  if (want_gct) {
    GctIndex::Options options;
    options.num_threads = num_threads;
    GctIndex index = GctIndex::Build(g, options);
    index.AppendToSnapshot(writer);
    std::cout << "GCT index: " << HumanBytes(index.SizeBytes()) << " in "
              << HumanSeconds(index.build_stats().total_seconds) << "\n";
  }
  writer.Finish();
  std::cout << "snapshot: graph (" << HumanBytes(g.MemoryBytes()) << ") + "
            << kind << " -> " << out << "\n";
  return 0;
}

int RunQuery(const Flags& flags) {
  TSD_CHECK_MSG(flags.Has("index-file"), "query requires --index-file=<file>");
  const std::string path = flags.GetString("index-file", "");
  const std::string kind = flags.GetString("index", "gct");
  const auto k = static_cast<std::uint32_t>(flags.GetInt("k", 3));
  const auto r = static_cast<std::uint32_t>(flags.GetInt("r", 10));
  if (kind == "tsd") {
    TsdIndex index = TsdIndex::Load(path);
    index.set_query_options(QueryOptionsFromFlags(flags));
    PrintTopR(index.TopR(std::min<std::uint32_t>(r, index.num_vertices()), k),
              flags.GetBool("contexts", false));
  } else {
    GctIndex index = GctIndex::Load(path);
    index.set_query_options(QueryOptionsFromFlags(flags));
    PrintTopR(index.TopR(std::min<std::uint32_t>(r, index.num_vertices()), k),
              flags.GetBool("contexts", false));
  }
  return 0;
}

/// Per-shard ServeStats as a table — the extra_stats section of the socket
/// server's stats endpoint, and part of the stderr diagnostics.
std::string RenderShardTable(const ShardedServeLoop& loop) {
  std::ostringstream out;
  out << "serve shards\n";
  TablePrinter table({"shard", "accepted", "served", "failed", "rej-r",
                      "rej-depth", "rej-bad", "batches"});
  for (std::uint32_t s = 0; s < loop.num_shards(); ++s) {
    const ServeStats shard = loop.shard_stats(s);
    table.Row(std::uint64_t{s}, shard.accepted, shard.served, shard.failed,
              shard.rejected_r_limit, shard.rejected_queue_depth,
              shard.rejected_bad_query, shard.batches);
  }
  table.Print(out);
  return out.str();
}

/// Serving diagnostics to stderr so the stdout transcript stays byte-stable
/// across thread counts, shard counts, and batch shapes.
void PrintServeDiagnostics(const ShardedServeLoop& loop,
                           const std::string& method, std::uint64_t requests,
                           std::uint64_t parse_errors) {
  const ServeStats stats = loop.stats();
  std::cerr << "serve: method=" << method << " shards=" << loop.num_shards()
            << " requests=" << requests << " parse-errors=" << parse_errors
            << " accepted=" << stats.accepted << " served=" << stats.served
            << " failed=" << stats.failed
            << " rejected(r-limit=" << stats.rejected_r_limit
            << " depth=" << stats.rejected_queue_depth
            << " bad=" << stats.rejected_bad_query
            << ") batches=" << stats.batches << "\n";
  for (std::uint32_t s = 0; s < loop.num_shards(); ++s) {
    const ServeStats shard = loop.shard_stats(s);
    std::cerr << "shard " << s << ": accepted=" << shard.accepted
              << " batches=" << shard.batches << " sizes:";
    for (std::size_t b = 1; b < shard.batch_size_count.size(); ++b) {
      if (shard.batch_size_count[b] > 0) {
        std::cerr << " " << b << "x" << shard.batch_size_count[b];
      }
    }
    std::cerr << "\n";
  }
}

int RunServe(GraphSource& source, const Flags& flags) {
  const bool stdin_proto = flags.GetBool("stdin-proto", false);
  const bool listen = flags.Has("listen");
  if (!stdin_proto && !listen) {
    std::cerr << "serve requires --stdin-proto (line protocol on stdin) or "
                 "--listen=PORT (socket transport)\n";
    return Usage();
  }
  SearcherHolder holder = MakeSearcher(source, flags.GetString("method", "gct"));
  if (holder.active == nullptr) return Usage();

  ShardedServeOptions options;
  options.num_shards = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, flags.GetInt("shards", 1)));
  options.shard.query_options = QueryOptionsFromFlags(flags);
  options.shard.max_r = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, flags.GetInt("max-r", 1024)));
  options.shard.max_queue_depth = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, flags.GetInt("max-depth", 1024)));
  options.shard.max_batch = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, flags.GetInt("max-batch", 64)));

  ShardedServeLoop loop(*holder.active, options);

  // Live-update sink for "+u v" / "-u v" lines (and kUpdateFrame), present
  // only when the index is dynamic; other methods ack update-unsupported.
  std::unique_ptr<LiveUpdateApplier> updater;
  if (holder.dynamic != nullptr) {
    updater = std::make_unique<LiveUpdateApplier>(*holder.dynamic);
  }

  if (listen) {
    SocketServerOptions server_options;
    server_options.bind_address = flags.GetString("bind", "127.0.0.1");
    server_options.port = static_cast<std::uint16_t>(
        std::max<std::int64_t>(0, flags.GetInt("listen", 0)));
    server_options.drain_timeout_ms = static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, flags.GetInt("drain-ms", 5000)));
    server_options.max_outbound_bytes = static_cast<std::size_t>(
        std::max<std::int64_t>(4096, flags.GetInt("max-outbound", 1 << 20)));
    server_options.extra_stats = [&loop, &updater] {
      std::string text = RenderShardTable(loop);
      if (updater != nullptr) text += "\n" + updater->RenderStatsTables();
      return text;
    };
    server_options.updater = updater.get();

    SocketServer server(loop, server_options);
    server.Start();
    std::cerr << "listening on " << server_options.bind_address << ":"
              << server.port() << "\n";
    if (flags.Has("port-file")) {
      // CI and scripts start us with --listen=0 and read the real port here.
      std::ofstream port_file(flags.GetString("port-file", ""));
      port_file << server.port() << "\n";
    }
    server.WaitUntilShutdown();  // a client's shutdown frame ends the loop
    server.Shutdown();
    loop.Shutdown();

    const SocketServerStats transport = server.stats();
    std::cerr << server.RenderStatsTables();
    PrintServeDiagnostics(loop, holder.active->name(), transport.queries,
                          transport.protocol_errors);
    return 0;
  }

  const StdinProtoStats driver =
      RunStdinProto(std::cin, std::cout, loop, updater.get());
  loop.Shutdown();
  PrintServeDiagnostics(loop, holder.active->name(), driver.requests,
                        driver.parse_errors);
  if (updater != nullptr) std::cerr << updater->RenderStatsTables();
  return 0;
}

int RunClient(const Flags& flags) {
  TSD_CHECK_MSG(flags.Has("connect"), "client requires --connect=HOST:PORT");
  const std::string target = flags.GetString("connect", "");
  const std::size_t colon = target.rfind(':');
  TSD_CHECK_MSG(colon != std::string::npos && colon + 1 < target.size(),
                "--connect wants HOST:PORT, got '" << target << "'");
  const std::string host =
      colon == 0 ? std::string("127.0.0.1") : target.substr(0, colon);
  std::uint64_t port = 0;
  for (std::size_t i = colon + 1; i < target.size(); ++i) {
    const char c = target[i];
    TSD_CHECK_MSG(c >= '0' && c <= '9',
                  "bad port in --connect: '" << target << "'");
    port = port * 10 + static_cast<std::uint64_t>(c - '0');
    TSD_CHECK_MSG(port <= 65535, "bad port in --connect: '" << target << "'");
  }
  TSD_CHECK_MSG(port > 0, "bad port in --connect: '" << target << "'");

  const auto timeout_ms = static_cast<std::uint32_t>(
      std::max<std::int64_t>(0, flags.GetInt("timeout-ms", 30000)));
  SocketClient client =
      SocketClient::Connect(host, static_cast<std::uint16_t>(port), timeout_ms);

  // --stats / --shutdown are one-shot conveniences (CI's smoke job uses
  // them); otherwise the request script comes from stdin.
  const bool stats = flags.GetBool("stats", false);
  const bool shutdown = flags.GetBool("shutdown", false);
  if (stats || shutdown) {
    std::istringstream script(std::string(stats ? "stats\n" : "") +
                              (shutdown ? "shutdown\n" : ""));
    RunSocketClientScript(script, std::cout, client);
    return 0;
  }
  const SocketClientScriptStats driver =
      RunSocketClientScript(std::cin, std::cout, client);
  std::cerr << "client: requests=" << driver.requests
            << " parse-errors=" << driver.parse_errors
            << " server-errors=" << driver.server_errors << "\n";
  return 0;
}

int RunGen(const Flags& flags) {
  TSD_CHECK_MSG(flags.Has("out"), "gen requires --out=<file>");
  const std::string model = flags.GetString("model", "hk");
  const auto n = static_cast<VertexId>(flags.GetInt("n", 10000));
  const auto m_per = static_cast<std::uint32_t>(flags.GetInt("m-per", 5));
  const double p = flags.GetDouble("p", 0.5);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  Graph g;
  if (model == "hk") {
    g = HolmeKim(n, m_per, p, seed);
  } else if (model == "ba") {
    g = BarabasiAlbert(n, m_per, seed);
  } else if (model == "er") {
    g = ErdosRenyi(n, n * m_per, seed);
  } else if (model == "rmat") {
    std::uint32_t scale = 0;
    while ((VertexId{1} << scale) < n) ++scale;
    g = RMat(scale, m_per, 0.45, 0.2, 0.2, seed);
  } else {
    return Usage();
  }
  SaveEdgeListText(g, flags.GetString("out", ""));
  std::cout << "wrote " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges to " << flags.GetString("out", "") << "\n";
  return 0;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string command = flags.positional()[0];

  try {
    if (command == "query") return RunQuery(flags);
    if (command == "gen") return RunGen(flags);
    if (command == "client") return RunClient(flags);
    if (command == "build") {
      // build interprets --index as the KIND to build (gct|tsd|both), so it
      // always reads the edge list rather than going through LoadGraphSource.
      if (flags.positional().size() < 2) return Usage();
      const Graph g = LoadEdgeListText(flags.positional()[1]);
      return RunBuild(g, flags);
    }
    const bool graph_command = command == "stats" || command == "topr" ||
                               command == "batch" || command == "score" ||
                               command == "serve";
    if (!graph_command) return Usage();
    if (flags.positional().size() < 2 && !flags.Has("index")) return Usage();
    GraphSource source = LoadGraphSource(flags);
    if (command == "stats") return RunStats(source.graph, flags);
    if (command == "topr") return RunTopR(source, flags);
    if (command == "batch") return RunBatch(source, flags);
    if (command == "score") return RunScore(source.graph, flags);
    if (command == "serve") return RunServe(source, flags);
  } catch (const CheckError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
