#!/usr/bin/env sh
# Runs clang-tidy over the library and tools sources using the compile
# database exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS is ON by
# default in this tree). Checks and per-check rationale live in .clang-tidy;
# WarningsAsErrors='*' there makes any finding a non-zero exit.
#
#   tools/run_tidy.sh [build_dir]       # default build dir: ./build
#
# Degrades gracefully: a machine without clang-tidy (the dev container
# ships GCC only) gets an explicit skip and exit 0, so local `ctest` runs
# and scripts that call this unconditionally keep working; CI's
# static-analysis job is the enforcing run. Set TSD_TIDY_REQUIRED=1 to
# turn the skip into a failure (CI does).
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build"}"
tidy="${CLANG_TIDY:-clang-tidy}"

if ! command -v "${tidy}" >/dev/null 2>&1; then
  if [ "${TSD_TIDY_REQUIRED:-0}" = "1" ]; then
    echo "run_tidy: ${tidy} not found and TSD_TIDY_REQUIRED=1" >&2
    exit 1
  fi
  echo "run_tidy: ${tidy} not found; skipping (CI enforces this gate)" >&2
  exit 0
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "run_tidy: ${build_dir}/compile_commands.json not found." >&2
  echo "run_tidy: configure first: cmake -B '${build_dir}' -S '${repo_root}'" >&2
  exit 1
fi

# Library + tool translation units; tests are exercised at runtime by the
# suite itself and generated gtest macros trip naming checks.
files=$(find "${repo_root}/src" "${repo_root}/tools" -name '*.cc' | sort)

echo "run_tidy: $(echo "${files}" | wc -l) files, database ${build_dir}"
# shellcheck disable=SC2086  # word-splitting the file list is intended
"${tidy}" -p "${build_dir}" --quiet ${files}
echo "run_tidy: clean"
