// Tests for the chunked parallel-for helper.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"

namespace tsd {
namespace {

TEST(ParallelForChunksTest, CoversRangeExactlyOnce) {
  for (std::uint32_t threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> touched(1000);
    ParallelForChunks(1000, 32, threads,
                      [&](std::uint32_t, std::uint64_t begin,
                          std::uint64_t end) {
                        for (std::uint64_t i = begin; i < end; ++i) {
                          touched[i].fetch_add(1);
                        }
                      });
    for (const auto& count : touched) {
      EXPECT_EQ(count.load(), 1);
    }
  }
}

TEST(ParallelForChunksTest, ChunksAreContiguousAndOrdered) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges(8);
  ParallelForChunks(100, 8, 1,
                    [&](std::uint32_t c, std::uint64_t begin,
                        std::uint64_t end) { ranges[c] = {begin, end}; });
  for (std::size_t c = 0; c + 1 < ranges.size(); ++c) {
    if (ranges[c + 1].second == 0) break;  // empty tail chunk
    EXPECT_EQ(ranges[c].second, ranges[c + 1].first);
  }
  EXPECT_EQ(ranges[0].first, 0u);
}

TEST(ParallelForChunksTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelForChunks(0, 4, 4,
                    [&](std::uint32_t, std::uint64_t, std::uint64_t) {
                      called = true;
                    });
  EXPECT_FALSE(called);
}

TEST(ParallelForChunksTest, MoreChunksThanElements) {
  std::atomic<std::uint64_t> total{0};
  ParallelForChunks(3, 16, 4,
                    [&](std::uint32_t, std::uint64_t begin,
                        std::uint64_t end) { total += end - begin; });
  EXPECT_EQ(total.load(), 3u);
}

TEST(ParallelForChunksTest, WorkerExceptionPropagates) {
  EXPECT_THROW(
      ParallelForChunks(100, 8, 4,
                        [&](std::uint32_t c, std::uint64_t, std::uint64_t) {
                          if (c == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ParallelForChunksTest, SequentialAndParallelSumsAgree) {
  auto run = [](std::uint32_t threads) {
    std::atomic<std::uint64_t> sum{0};
    ParallelForChunks(10000, 64, threads,
                      [&](std::uint32_t, std::uint64_t begin,
                          std::uint64_t end) {
                        std::uint64_t local = 0;
                        for (std::uint64_t i = begin; i < end; ++i) local += i;
                        sum += local;
                      });
    return sum.load();
  };
  EXPECT_EQ(run(1), run(6));
  EXPECT_EQ(run(1), 10000ull * 9999 / 2);
}

}  // namespace
}  // namespace tsd
