// Tests for the zero-copy snapshot subsystem (common/snapshot.h) and the
// objects that persist through it (graph CSR, TsdIndex, GctIndex).
//
// Four layers of coverage:
//
//  1. Primitives: SnapshotTag/SnapshotTagName, Checksum64, ByteCursor, and
//     FlatArray's owned-vs-borrowed backing-store semantics.
//  2. Container round trips: writer → reader section fidelity, alignment,
//     and the save→load→save byte-identity guarantee the format doc makes.
//  3. Corruption battery: every class of on-disk damage (truncation, bad
//     magic, wrong version, bounds/overlap/duplicate table entries, flipped
//     checksums, tampered payloads, single-byte fuzz) must produce a clean
//     diagnostic load failure — never a crash, an over-read, or a silently
//     wrong index.
//  4. Loaded-vs-built differential: an index bound to a mapped snapshot
//     answers TopR and SearchBatch bit-identically to the index it was
//     saved from, at every thread count.
#include "common/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/serialize.h"
#include "core/gct_index.h"
#include "core/tsd_index.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace tsd {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<std::byte> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  TSD_CHECK_MSG(in.good(), "cannot read " << path);
  std::vector<char> chars((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  const auto* data = reinterpret_cast<const std::byte*>(chars.data());
  return std::vector<std::byte>(data, data + chars.size());
}

void WriteFileBytes(const std::string& path,
                    std::span<const std::byte> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  TSD_CHECK_MSG(out.good(), "cannot write " << path);
}

// Header field offsets (format doc in common/snapshot.h).
constexpr std::size_t kVersionOffset = 8;
constexpr std::size_t kEndianOffset = 12;
constexpr std::size_t kTableOffsetOffset = 24;
constexpr std::size_t kSectionCountOffset = 32;
constexpr std::size_t kTableChecksumOffset = 40;
constexpr std::size_t kTableEntrySize = 32;

std::uint64_t TableOffset(const std::vector<std::byte>& bytes) {
  return DecodeU64Le(bytes.data() + kTableOffsetOffset);
}

std::uint32_t SectionCount(const std::vector<std::byte>& bytes) {
  return DecodeU32Le(bytes.data() + kSectionCountOffset);
}

std::span<std::byte> TableEntry(std::vector<std::byte>& bytes,
                                std::size_t index) {
  return std::span<std::byte>(bytes).subspan(
      TableOffset(bytes) + index * kTableEntrySize, kTableEntrySize);
}

/// Recomputes the header's table checksum after the test patched table
/// entries, so Open gets past the checksum gate and exercises the targeted
/// validation rule instead.
void ResealTable(std::vector<std::byte>& bytes) {
  const auto table = std::span<const std::byte>(bytes).subspan(
      TableOffset(bytes),
      std::size_t{SectionCount(bytes)} * kTableEntrySize);
  EncodeU64Le(Checksum64(table), bytes.data() + kTableChecksumOffset);
}

/// Recomputes section `index`'s payload checksum after the test patched its
/// payload bytes, then reseals the table. The container then validates
/// clean and the damage must be caught by object-level structural checks.
void ResealSection(std::vector<std::byte>& bytes, std::size_t index) {
  const auto entry = TableEntry(bytes, index);
  const std::uint64_t offset = DecodeU64Le(entry.data() + 8);
  const std::uint64_t length = DecodeU64Le(entry.data() + 16);
  const auto payload =
      std::span<const std::byte>(bytes).subspan(offset, length);
  EncodeU64Le(Checksum64(payload), entry.data() + 24);
  ResealTable(bytes);
}

/// Finds the table index of the section with `tag`.
std::size_t SectionIndexOf(std::vector<std::byte>& bytes,
                           std::uint64_t tag) {
  for (std::size_t i = 0; i < SectionCount(bytes); ++i) {
    if (DecodeU64Le(TableEntry(bytes, i).data()) == tag) return i;
  }
  TSD_CHECK_MSG(false, "no section " << SnapshotTagName(tag));
  return 0;
}

bool OpenBytes(const std::vector<std::byte>& bytes, SnapshotReader* reader,
               std::string* error) {
  const std::string path = TempPath("tsd_snapshot_test_patched.snap");
  WriteFileBytes(path, bytes);
  const bool ok = SnapshotReader::Open(path, reader, error);
  std::remove(path.c_str());
  return ok;
}

/// A small combined snapshot (graph + TSD + GCT) all the container-level
/// corruption tests mutate. Built once.
const std::vector<std::byte>& CombinedSnapshotBytes() {
  static const std::vector<std::byte> bytes = [] {
    const Graph g = PaperFigure1Graph();
    const TsdIndex tsd = TsdIndex::Build(g);
    const GctIndex gct = GctIndex::Build(g);
    const std::string path = TempPath("tsd_snapshot_test_combined.snap");
    SnapshotWriter writer(path);
    g.AppendToSnapshot(writer);
    tsd.AppendToSnapshot(writer);
    gct.AppendToSnapshot(writer);
    writer.Finish();
    std::vector<std::byte> result = ReadFileBytes(path);
    std::remove(path.c_str());
    return result;
  }();
  return bytes;
}

// ------------------------------------------------------------- primitives

TEST(SnapshotTagTest, RoundTripsAsciiNames) {
  EXPECT_EQ(SnapshotTagName(SnapshotTag("graf.off")), "graf.off");
  EXPECT_EQ(SnapshotTagName(SnapshotTag("x")), "x");
  EXPECT_NE(SnapshotTag("graf.off"), SnapshotTag("graf.adj"));
}

TEST(SnapshotTagTest, DiagnosticsForNonNames) {
  EXPECT_EQ(SnapshotTagName(0), "(empty)");
  EXPECT_EQ(SnapshotTagName(0x01), "?");  // non-printable byte
}

TEST(Checksum64Test, SensitiveToContentOrderAndLength) {
  const std::vector<std::byte> a{std::byte{1}, std::byte{2}, std::byte{3}};
  const std::vector<std::byte> b{std::byte{2}, std::byte{1}, std::byte{3}};
  EXPECT_EQ(Checksum64(a), Checksum64(a));
  EXPECT_NE(Checksum64(a), Checksum64(b));
  // Zero-padded inputs of different lengths must not collide (sections are
  // zero-padded to alignment on disk).
  const std::vector<std::byte> one_zero(1);
  const std::vector<std::byte> two_zeros(2);
  EXPECT_NE(Checksum64({}), Checksum64(one_zero));
  EXPECT_NE(Checksum64(one_zero), Checksum64(two_zeros));
}

TEST(Checksum64Test, EveryBitFlipChangesTheSumAcrossWordBoundaries) {
  // 67 bytes exercises the 4-word blocks, the word tail, and the byte tail.
  std::vector<std::byte> buffer(67);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<std::byte>(i * 37 + 5);
  }
  const std::uint64_t clean = Checksum64(buffer);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] ^= std::byte{0x40};
    EXPECT_NE(Checksum64(buffer), clean) << "flip at byte " << i;
    buffer[i] ^= std::byte{0x40};
  }
  EXPECT_EQ(Checksum64(buffer), clean);
}

TEST(ByteCursorTest, DecodesLittleEndianScalars) {
  std::byte buffer[12];
  EncodeU32Le(0xA1B2C3D4u, buffer);
  EncodeU64Le(0x0102030405060708ULL, buffer + 4);
  ByteCursor cursor{std::span<const std::byte>(buffer)};
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  ASSERT_TRUE(cursor.ReadU32Le(&u32));
  ASSERT_TRUE(cursor.ReadU64Le(&u64));
  EXPECT_EQ(u32, 0xA1B2C3D4u);
  EXPECT_EQ(u64, 0x0102030405060708ULL);
  EXPECT_EQ(cursor.remaining(), 0u);
}

TEST(ByteCursorTest, RefusesReadsPastTheEndWithoutMoving) {
  std::byte buffer[6] = {};
  ByteCursor cursor{std::span<const std::byte>(buffer)};
  std::uint64_t u64 = 99;
  EXPECT_FALSE(cursor.ReadU64Le(&u64));
  EXPECT_EQ(u64, 99u);            // output untouched
  EXPECT_EQ(cursor.position(), 0u);  // cursor untouched
  std::uint32_t u32 = 0;
  ASSERT_TRUE(cursor.ReadU32Le(&u32));
  EXPECT_FALSE(cursor.Skip(3));
  ASSERT_TRUE(cursor.Skip(2));
  EXPECT_EQ(cursor.remaining(), 0u);
}

TEST(ByteCursorTest, ReadBytesIsZeroCopy) {
  std::byte buffer[8] = {std::byte{7}};
  ByteCursor cursor{std::span<const std::byte>(buffer)};
  std::span<const std::byte> view;
  ASSERT_TRUE(cursor.ReadBytes(5, &view));
  EXPECT_EQ(view.data(), buffer);  // a view into the source, not a copy
  EXPECT_EQ(view.size(), 5u);
  EXPECT_FALSE(cursor.ReadBytes(4, &view));
}

TEST(FlatArrayTest, OwnedVectorBacking) {
  FlatArray<std::uint32_t> array;
  EXPECT_TRUE(array.empty());
  EXPECT_TRUE(array.owns());
  array = std::vector<std::uint32_t>{10, 20, 30};
  EXPECT_TRUE(array.owns());
  EXPECT_EQ(array.size(), 3u);
  EXPECT_EQ(array[1], 20u);
  EXPECT_EQ(array.back(), 30u);
  EXPECT_EQ(array.end() - array.begin(), 3);
}

TEST(FlatArrayTest, BorrowedViewBacking) {
  const std::vector<std::uint32_t> storage{1, 2, 3, 4};
  FlatArray<std::uint32_t> array;
  array = std::vector<std::uint32_t>{9};  // owned first
  array.BindView(storage);                // then rebound to a borrow
  EXPECT_FALSE(array.owns());
  EXPECT_EQ(array.data(), storage.data());
  EXPECT_EQ(array.size(), 4u);
}

TEST(FlatArrayTest, CopySemanticsPreserveBackingKind) {
  const std::vector<std::uint32_t> storage{5, 6, 7};
  FlatArray<std::uint32_t> borrowed;
  borrowed.BindView(storage);
  FlatArray<std::uint32_t> borrowed_copy(borrowed);
  EXPECT_FALSE(borrowed_copy.owns());
  EXPECT_EQ(borrowed_copy.data(), storage.data());

  FlatArray<std::uint32_t> owned;
  owned = std::vector<std::uint32_t>{8, 9};
  FlatArray<std::uint32_t> owned_copy(owned);
  EXPECT_TRUE(owned_copy.owns());
  EXPECT_NE(owned_copy.data(), owned.data());  // deep copy
  EXPECT_EQ(owned_copy[0], 8u);
}

TEST(FlatArrayTest, MoveRebindsOwnedStorageAndClearsTheSource) {
  FlatArray<std::uint64_t> owned;
  owned = std::vector<std::uint64_t>{1, 2, 3};
  FlatArray<std::uint64_t> moved(std::move(owned));
  EXPECT_TRUE(moved.owns());
  ASSERT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved[2], 3u);
  EXPECT_EQ(moved.data(), moved.span().data());

  const std::vector<std::uint64_t> storage{4, 5};
  FlatArray<std::uint64_t> borrowed;
  borrowed.BindView(storage);
  FlatArray<std::uint64_t> borrowed_moved;
  borrowed_moved = std::move(borrowed);
  EXPECT_FALSE(borrowed_moved.owns());
  EXPECT_EQ(borrowed_moved.data(), storage.data());
}

// ------------------------------------------------- container round trips

TEST(SnapshotContainerTest, WriterReaderSectionFidelity) {
  const std::string path = TempPath("tsd_snapshot_test_sections.snap");
  const std::vector<std::uint32_t> ints{1, 2, 3, 0xFFFFFFFFu};
  const std::vector<std::uint64_t> meta{7, 8};
  const std::vector<std::byte> raw{std::byte{0xAB}, std::byte{0xCD},
                                   std::byte{0xEF}};  // odd length
  {
    SnapshotWriter writer(path);
    writer.AddArray<std::uint32_t>(SnapshotTag("test.int"), ints);
    writer.AddScalars(SnapshotTag("test.met"), meta);
    writer.AddBytes(SnapshotTag("test.raw"), raw);
    writer.AddArray<std::uint64_t>(SnapshotTag("test.emp"), {});
    writer.Finish();
  }

  SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(SnapshotReader::Open(path, &reader, &error)) << error;
  EXPECT_EQ(reader.num_sections(), 4u);
  EXPECT_EQ(reader.file_size(), ReadFileBytes(path).size());
  EXPECT_TRUE(reader.Has(SnapshotTag("test.int")));
  EXPECT_FALSE(reader.Has(SnapshotTag("missing")));

  std::span<const std::uint32_t> int_view;
  ASSERT_TRUE(reader.Read(SnapshotTag("test.int"), &int_view, &error));
  EXPECT_TRUE(std::ranges::equal(int_view, ints));
  // Zero-copy: the view points into the mapping, 64-byte aligned.
  const auto* base = reader.mapping()->bytes().data();
  EXPECT_GE(reinterpret_cast<const std::byte*>(int_view.data()), base);
  EXPECT_EQ((reinterpret_cast<const std::byte*>(int_view.data()) - base) %
                static_cast<std::ptrdiff_t>(kSnapshotAlignment),
            0);

  std::uint64_t scalars[2] = {};
  ASSERT_TRUE(reader.ReadScalars(SnapshotTag("test.met"), scalars, &error));
  EXPECT_EQ(scalars[0], 7u);
  EXPECT_EQ(scalars[1], 8u);

  std::span<const std::byte> raw_view;
  ASSERT_TRUE(reader.ReadBytes(SnapshotTag("test.raw"), &raw_view, &error));
  EXPECT_TRUE(std::ranges::equal(raw_view, raw));

  std::span<const std::uint64_t> empty_view;
  ASSERT_TRUE(reader.Read(SnapshotTag("test.emp"), &empty_view, &error));
  EXPECT_TRUE(empty_view.empty());
  std::remove(path.c_str());
}

TEST(SnapshotContainerTest, TypedReadRejectsMisfits) {
  const std::string path = TempPath("tsd_snapshot_test_misfit.snap");
  {
    SnapshotWriter writer(path);
    writer.AddBytes(SnapshotTag("odd"), std::vector<std::byte>(5));
    writer.Finish();
  }
  SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(SnapshotReader::Open(path, &reader, &error)) << error;

  std::span<const std::uint64_t> u64_view;
  EXPECT_FALSE(reader.Read(SnapshotTag("odd"), &u64_view, &error));
  EXPECT_NE(error.find("not a multiple"), std::string::npos) << error;

  EXPECT_FALSE(reader.Read(SnapshotTag("gone"), &u64_view, &error));
  EXPECT_NE(error.find("no section"), std::string::npos) << error;

  std::uint64_t too_many[9] = {};
  EXPECT_FALSE(reader.ReadScalars(SnapshotTag("odd"), too_many, &error));
  std::remove(path.c_str());
}

TEST(SnapshotContainerTest, WriterRejectsApiMisuse) {
  const std::string path = TempPath("tsd_snapshot_test_misuse.snap");
  SnapshotWriter writer(path);
  const std::vector<std::uint64_t> values{1};
  writer.AddScalars(SnapshotTag("dup"), values);
  EXPECT_THROW(writer.AddScalars(SnapshotTag("dup"), values), CheckError);
  writer.Finish();
  EXPECT_THROW(writer.Finish(), CheckError);
  EXPECT_THROW(writer.AddScalars(SnapshotTag("late"), values), CheckError);
  std::remove(path.c_str());
}

TEST(SnapshotContainerTest, EmptySnapshotRoundTrips) {
  const std::string path = TempPath("tsd_snapshot_test_empty.snap");
  {
    SnapshotWriter writer(path);
    writer.Finish();
  }
  SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(SnapshotReader::Open(path, &reader, &error)) << error;
  EXPECT_EQ(reader.num_sections(), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotContainerTest, SaveLoadSaveIsByteIdentical) {
  // Within one format version, a snapshot's bytes are a pure function of
  // the object contents — the doc-comment guarantee that makes snapshots
  // diffable and cacheable by content hash.
  const Graph g = HolmeKim(300, 4, 0.5, 21);
  const TsdIndex tsd = TsdIndex::Build(g);
  const GctIndex gct = GctIndex::Build(g);
  const std::string first_path = TempPath("tsd_snapshot_test_first.snap");
  const std::string second_path = TempPath("tsd_snapshot_test_second.snap");
  {
    SnapshotWriter writer(first_path);
    g.AppendToSnapshot(writer);
    tsd.AppendToSnapshot(writer);
    gct.AppendToSnapshot(writer);
    writer.Finish();
  }

  SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(SnapshotReader::Open(first_path, &reader, &error)) << error;
  Graph loaded_graph;
  TsdIndex loaded_tsd;
  GctIndex loaded_gct;
  ASSERT_TRUE(Graph::LoadFromSnapshot(reader, &loaded_graph, &error))
      << error;
  ASSERT_TRUE(TsdIndex::LoadFromSnapshot(reader, &loaded_tsd, &error))
      << error;
  ASSERT_TRUE(GctIndex::LoadFromSnapshot(reader, &loaded_gct, &error))
      << error;
  EXPECT_TRUE(loaded_graph.is_mapped());
  EXPECT_TRUE(loaded_tsd.is_mapped());
  EXPECT_TRUE(loaded_gct.is_mapped());
  EXPECT_FALSE(tsd.is_mapped());
  {
    SnapshotWriter writer(second_path);
    loaded_graph.AppendToSnapshot(writer);
    loaded_tsd.AppendToSnapshot(writer);
    loaded_gct.AppendToSnapshot(writer);
    writer.Finish();
  }
  EXPECT_EQ(ReadFileBytes(first_path), ReadFileBytes(second_path));
  std::remove(first_path.c_str());
  std::remove(second_path.c_str());
}

TEST(SnapshotContainerTest, LoadedGraphOutlivesItsReader) {
  const Graph original = PaperFigure1Graph();
  const std::string path = TempPath("tsd_snapshot_test_lifetime.snap");
  {
    SnapshotWriter writer(path);
    original.AppendToSnapshot(writer);
    writer.Finish();
  }
  Graph loaded;
  {
    SnapshotReader reader;
    std::string error;
    ASSERT_TRUE(SnapshotReader::Open(path, &reader, &error)) << error;
    ASSERT_TRUE(Graph::LoadFromSnapshot(reader, &loaded, &error)) << error;
  }
  // The reader is gone; the graph's shared mapping keeps the spans alive.
  EXPECT_TRUE(loaded.is_mapped());
  EXPECT_EQ(loaded.num_vertices(), original.num_vertices());
  EXPECT_TRUE(std::ranges::equal(loaded.edges(), original.edges()));
  EXPECT_TRUE(
      std::ranges::equal(loaded.neighbors(0), original.neighbors(0)));
  std::remove(path.c_str());
}

// ------------------------------------------------------ corruption battery

void ExpectOpenFails(std::vector<std::byte> bytes,
                     const std::string& expected_fragment,
                     const std::string& what) {
  SnapshotReader reader;
  std::string error;
  EXPECT_FALSE(OpenBytes(bytes, &reader, &error)) << what;
  EXPECT_NE(error.find(expected_fragment), std::string::npos)
      << what << ": diagnostic was '" << error << "'";
}

TEST(SnapshotCorruptionTest, MissingFile) {
  SnapshotReader reader;
  std::string error;
  EXPECT_FALSE(SnapshotReader::Open(
      TempPath("tsd_snapshot_test_does_not_exist.snap"), &reader, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SnapshotCorruptionTest, TruncationAndTrailingGarbage) {
  const std::vector<std::byte>& clean = CombinedSnapshotBytes();
  ExpectOpenFails(std::vector<std::byte>(clean.begin(), clean.begin() + 10),
                  "truncated", "10-byte stub");
  ExpectOpenFails(
      std::vector<std::byte>(clean.begin(), clean.begin() + clean.size() / 2),
      "size mismatch", "half the file");
  std::vector<std::byte> padded = clean;
  padded.resize(padded.size() + 64);
  ExpectOpenFails(std::move(padded), "size mismatch", "trailing garbage");
}

TEST(SnapshotCorruptionTest, BadMagic) {
  std::vector<std::byte> bytes = CombinedSnapshotBytes();
  bytes[0] ^= std::byte{0xFF};
  ExpectOpenFails(std::move(bytes), "bad magic", "flipped magic byte");
}

TEST(SnapshotCorruptionTest, UnsupportedFormatVersion) {
  std::vector<std::byte> bytes = CombinedSnapshotBytes();
  EncodeU32Le(99, bytes.data() + kVersionOffset);
  ExpectOpenFails(std::move(bytes), "unsupported snapshot format version 99",
                  "future version");
}

TEST(SnapshotCorruptionTest, ForeignEndianness) {
  std::vector<std::byte> bytes = CombinedSnapshotBytes();
  // Byte-swap the marker: what a big-endian writer would have produced.
  std::swap(bytes[kEndianOffset], bytes[kEndianOffset + 3]);
  std::swap(bytes[kEndianOffset + 1], bytes[kEndianOffset + 2]);
  ExpectOpenFails(std::move(bytes), "endianness", "byte-swapped marker");
}

TEST(SnapshotCorruptionTest, ImplausibleSectionCount) {
  std::vector<std::byte> bytes = CombinedSnapshotBytes();
  EncodeU32Le(1'000'000, bytes.data() + kSectionCountOffset);
  ExpectOpenFails(std::move(bytes), "section count", "huge section count");
}

TEST(SnapshotCorruptionTest, TableChecksumMismatch) {
  std::vector<std::byte> bytes = CombinedSnapshotBytes();
  bytes[TableOffset(bytes)] ^= std::byte{0x01};  // flip a tag byte
  ExpectOpenFails(std::move(bytes), "table checksum", "flipped table byte");
}

TEST(SnapshotCorruptionTest, PayloadChecksumMismatch) {
  std::vector<std::byte> bytes = CombinedSnapshotBytes();
  const auto entry = TableEntry(bytes, 0);
  const std::uint64_t offset = DecodeU64Le(entry.data() + 8);
  bytes[offset] ^= std::byte{0x01};
  ExpectOpenFails(bytes, "checksum mismatch", "flipped payload byte");

  // The same damage passes the container when checksum verification is off
  // (the knob exists for benchmarking the pure page-table path)...
  const std::string path = TempPath("tsd_snapshot_test_noverify.snap");
  WriteFileBytes(path, bytes);
  SnapshotReader reader;
  std::string error;
  SnapshotReader::Options no_verify;
  no_verify.verify_checksums = false;
  EXPECT_TRUE(SnapshotReader::Open(path, &reader, &error, no_verify))
      << error;
  // ...but the object-level structural validation still stands guard (the
  // first section is the graph meta; a flipped schema-version/vertex-count
  // byte cannot produce a valid graph).
  Graph loaded;
  EXPECT_FALSE(Graph::LoadFromSnapshot(reader, &loaded, &error));
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, OversizedSectionLength) {
  std::vector<std::byte> bytes = CombinedSnapshotBytes();
  EncodeU64Le(std::uint64_t{1} << 60, TableEntry(bytes, 0).data() + 16);
  ResealTable(bytes);
  ExpectOpenFails(std::move(bytes), "out of bounds", "2^60-byte section");
}

TEST(SnapshotCorruptionTest, MisalignedSectionOffset) {
  std::vector<std::byte> bytes = CombinedSnapshotBytes();
  const auto entry = TableEntry(bytes, 0);
  EncodeU64Le(DecodeU64Le(entry.data() + 8) + 8, entry.data() + 8);
  ResealTable(bytes);
  ExpectOpenFails(std::move(bytes), "out of bounds", "misaligned offset");
}

TEST(SnapshotCorruptionTest, SectionInsideHeader) {
  std::vector<std::byte> bytes = CombinedSnapshotBytes();
  EncodeU64Le(0, TableEntry(bytes, 0).data() + 8);
  ResealTable(bytes);
  ExpectOpenFails(std::move(bytes), "out of bounds", "offset 0");
}

TEST(SnapshotCorruptionTest, OverlappingSections) {
  std::vector<std::byte> bytes = CombinedSnapshotBytes();
  // Point section 1 at section 0's payload.
  const auto first = TableEntry(bytes, 0);
  const auto second = TableEntry(bytes, 1);
  EncodeU64Le(DecodeU64Le(first.data() + 8), second.data() + 8);
  ResealTable(bytes);
  SnapshotReader reader;
  std::string error;
  EXPECT_FALSE(OpenBytes(bytes, &reader, &error));
  EXPECT_NE(error.find("overlap"), std::string::npos) << error;
}

TEST(SnapshotCorruptionTest, DuplicateSectionTag) {
  std::vector<std::byte> bytes = CombinedSnapshotBytes();
  const auto first = TableEntry(bytes, 0);
  const auto second = TableEntry(bytes, 1);
  std::copy(first.begin(), first.begin() + 8, second.begin());
  ResealTable(bytes);
  SnapshotReader reader;
  std::string error;
  EXPECT_FALSE(OpenBytes(bytes, &reader, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(SnapshotCorruptionTest, TamperedPayloadThatPassesChecksums) {
  // Rewrite the graph adjacency array's first entry to an out-of-range
  // vertex and RESEAL every checksum: the container validates clean, and
  // the graph's structural validation must be what rejects the file.
  std::vector<std::byte> bytes = CombinedSnapshotBytes();
  const std::size_t adj_index =
      SectionIndexOf(bytes, SnapshotTag("graf.adj"));
  const std::uint64_t adj_offset =
      DecodeU64Le(TableEntry(bytes, adj_index).data() + 8);
  EncodeU32Le(0xFFFFFFFFu, bytes.data() + adj_offset);
  ResealSection(bytes, adj_index);

  SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(OpenBytes(bytes, &reader, &error)) << error;
  Graph loaded;
  EXPECT_FALSE(Graph::LoadFromSnapshot(reader, &loaded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SnapshotCorruptionTest, TamperedWeightOrderIsRejected) {
  // Break the descending per-slice weight order TsdIndex::Score relies on.
  std::vector<std::byte> bytes = CombinedSnapshotBytes();
  const std::size_t wgt_index =
      SectionIndexOf(bytes, SnapshotTag("tsdx.wgt"));
  const auto entry = TableEntry(bytes, wgt_index);
  const std::uint64_t offset = DecodeU64Le(entry.data() + 8);
  const std::uint64_t length = DecodeU64Le(entry.data() + 16);
  ASSERT_GE(length, 8u);
  // Last weight of the first multi-edge slice made enormous.
  EncodeU32Le(0x00FFFFFFu, bytes.data() + offset + length - 4);
  ResealSection(bytes, wgt_index);

  SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(OpenBytes(bytes, &reader, &error)) << error;
  TsdIndex loaded;
  EXPECT_FALSE(TsdIndex::LoadFromSnapshot(reader, &loaded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SnapshotCorruptionTest, SingleByteFlipFuzzNeverCrashes) {
  // Flip one byte at a stride of positions across the whole file. Every
  // outcome must be clean: either the container/object validation rejects
  // the file, or (flips landing in alignment padding) everything loads and
  // the graph is exactly the original.
  const std::vector<std::byte>& clean = CombinedSnapshotBytes();
  const Graph original = PaperFigure1Graph();
  int rejected = 0;
  int survived = 0;
  for (std::size_t pos = 0; pos < clean.size(); pos += 97) {
    std::vector<std::byte> bytes = clean;
    bytes[pos] ^= std::byte{0x20};
    SnapshotReader reader;
    std::string error;
    if (!OpenBytes(bytes, &reader, &error)) {
      EXPECT_FALSE(error.empty()) << "flip at " << pos;
      ++rejected;
      continue;
    }
    Graph graph;
    TsdIndex tsd;
    GctIndex gct;
    if (Graph::LoadFromSnapshot(reader, &graph, &error) &&
        TsdIndex::LoadFromSnapshot(reader, &tsd, &error) &&
        GctIndex::LoadFromSnapshot(reader, &gct, &error)) {
      EXPECT_TRUE(std::ranges::equal(graph.edges(), original.edges()))
          << "padding flip at " << pos << " changed the graph";
      ++survived;
    } else {
      ++rejected;
    }
  }
  // The battery must actually have exercised the reject path.
  EXPECT_GT(rejected, 0);
}

// --------------------------------------------------- object-level rejects

TEST(SnapshotObjectTest, UnknownSchemaVersionsAreRejected) {
  const std::string path = TempPath("tsd_snapshot_test_schema.snap");
  {
    SnapshotWriter writer(path);
    const std::vector<std::uint64_t> future_meta{99, 0, 0};
    writer.AddScalars(SnapshotTag("graf.met"), future_meta);
    writer.AddScalars(SnapshotTag("tsdx.met"), future_meta);
    writer.AddScalars(SnapshotTag("gctx.met"), future_meta);
    writer.Finish();
  }
  SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(SnapshotReader::Open(path, &reader, &error)) << error;

  Graph graph;
  EXPECT_FALSE(Graph::LoadFromSnapshot(reader, &graph, &error));
  EXPECT_NE(error.find("version 99"), std::string::npos) << error;
  TsdIndex tsd;
  EXPECT_FALSE(TsdIndex::LoadFromSnapshot(reader, &tsd, &error));
  EXPECT_NE(error.find("version 99"), std::string::npos) << error;
  GctIndex gct;
  EXPECT_FALSE(GctIndex::LoadFromSnapshot(reader, &gct, &error));
  EXPECT_NE(error.find("version 99"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(SnapshotObjectTest, MissingGroupsAreRejectedNotCrashed) {
  // A graph-only snapshot has no index groups: binding an index must fail
  // with a diagnostic, and the throwing Load wrapper must throw.
  const std::string path = TempPath("tsd_snapshot_test_graph_only.snap");
  {
    SnapshotWriter writer(path);
    PaperFigure1Graph().AppendToSnapshot(writer);
    writer.Finish();
  }
  SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(SnapshotReader::Open(path, &reader, &error)) << error;
  TsdIndex tsd;
  EXPECT_FALSE(TsdIndex::LoadFromSnapshot(reader, &tsd, &error));
  EXPECT_FALSE(error.empty());
  GctIndex gct;
  EXPECT_FALSE(GctIndex::LoadFromSnapshot(reader, &gct, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_THROW(TsdIndex::Load(path), CheckError);
  EXPECT_THROW(GctIndex::Load(path), CheckError);
  std::remove(path.c_str());
}

// ------------------------------------------- loaded-vs-built differential

void ExpectSameResults(const TopRResult& expected, const TopRResult& actual,
                       const std::string& what) {
  ASSERT_EQ(actual.entries.size(), expected.entries.size()) << what;
  for (std::size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_EQ(actual.entries[i].vertex, expected.entries[i].vertex)
        << what << " rank " << i;
    EXPECT_EQ(actual.entries[i].score, expected.entries[i].score)
        << what << " rank " << i;
    EXPECT_EQ(actual.entries[i].contexts, expected.entries[i].contexts)
        << what << " rank " << i;
  }
}

struct DifferentialCase {
  std::string name;
  Graph graph;
};

std::vector<DifferentialCase>& DifferentialGraphs() {
  static std::vector<DifferentialCase> cases = [] {
    std::vector<DifferentialCase> result;
    result.push_back({"Figure1", PaperFigure1Graph()});
    result.push_back({"HolmeKim", HolmeKim(300, 5, 0.5, 7)});
    result.push_back({"ErdosRenyi", ErdosRenyi(200, 1500, 11)});
    result.push_back({"BarabasiAlbert", BarabasiAlbert(250, 4, 13)});
    result.push_back({"RMat", RMat(8, 8, 0.45, 0.25, 0.15, 17)});
    return result;
  }();
  return cases;
}

class SnapshotDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotDifferentialTest, LoadedIndexAnswersBitIdentically) {
  const DifferentialCase& test_case = DifferentialGraphs()[GetParam()];
  const Graph& g = test_case.graph;
  const std::string path = TempPath("tsd_snapshot_test_differential.snap");
  TsdIndex built_tsd = TsdIndex::Build(g);
  GctIndex built_gct = GctIndex::Build(g);
  {
    SnapshotWriter writer(path);
    g.AppendToSnapshot(writer);
    built_tsd.AppendToSnapshot(writer);
    built_gct.AppendToSnapshot(writer);
    writer.Finish();
  }
  SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(SnapshotReader::Open(path, &reader, &error)) << error;
  TsdIndex loaded_tsd;
  GctIndex loaded_gct;
  ASSERT_TRUE(TsdIndex::LoadFromSnapshot(reader, &loaded_tsd, &error))
      << error;
  ASSERT_TRUE(GctIndex::LoadFromSnapshot(reader, &loaded_gct, &error))
      << error;
  ASSERT_TRUE(loaded_tsd.is_mapped());
  ASSERT_TRUE(loaded_gct.is_mapped());

  const std::vector<BatchQuery> batch{{2, 5}, {3, 8}, {4, 3}, {6, 10}};
  const std::vector<std::pair<DiversitySearcher*, DiversitySearcher*>>
      pairs{{&built_tsd, &loaded_tsd}, {&built_gct, &loaded_gct}};
  for (const auto& [built, loaded] : pairs) {
    built->set_query_options(QueryOptions{});
    const TopRResult top_expected = built->TopR(8, 3);
    const std::vector<TopRResult> batch_expected = built->SearchBatch(batch);
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      QueryOptions options;
      options.num_threads = threads;
      loaded->set_query_options(options);
      const std::string what = test_case.name + " " + loaded->name() +
                               " threads=" + std::to_string(threads);
      ExpectSameResults(top_expected, loaded->TopR(8, 3), what + " topr");
      const std::vector<TopRResult> batch_actual =
          loaded->SearchBatch(batch);
      ASSERT_EQ(batch_actual.size(), batch_expected.size());
      for (std::size_t q = 0; q < batch.size(); ++q) {
        ExpectSameResults(batch_expected[q], batch_actual[q],
                          what + " batch query " + std::to_string(q));
      }
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, SnapshotDifferentialTest,
                         ::testing::Range(0, 5), [](const auto& info) {
                           return DifferentialGraphs()[info.param].name;
                         });

}  // namespace
}  // namespace tsd
