// Tests for the DynamicGraph substrate, the incrementally maintained
// DynamicTsdIndex, and the parallel index builders.
//
// The central dynamic property: after ANY sequence of edge insertions and
// deletions, the maintained index answers every (v, k) query identically to
// a TSD index rebuilt from scratch on the current graph.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/dynamic_tsd_index.h"
#include "core/gct_index.h"
#include "core/online_search.h"
#include "core/tsd_index.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"

namespace tsd {
namespace {

// ------------------------------------------------------------ DynamicGraph

TEST(DynamicGraphTest, InsertRemoveRoundTrip) {
  DynamicGraph g(5);
  EXPECT_TRUE(g.InsertEdge(0, 1));
  EXPECT_FALSE(g.InsertEdge(1, 0));  // duplicate
  EXPECT_FALSE(g.InsertEdge(2, 2));  // self-loop
  EXPECT_TRUE(g.InsertEdge(1, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.RemoveEdge(0, 1));
  EXPECT_FALSE(g.RemoveEdge(0, 1));  // already gone
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(DynamicGraphTest, NeighborsStaySorted) {
  DynamicGraph g(10);
  for (VertexId v : {7u, 3u, 9u, 1u, 5u}) g.InsertEdge(0, v);
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.degree(0), 5u);
  g.RemoveEdge(0, 5);
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_TRUE(std::is_sorted(g.neighbors(0).begin(), g.neighbors(0).end()));
}

TEST(DynamicGraphTest, CommonNeighbors) {
  DynamicGraph g(6);
  g.InsertEdge(0, 2);
  g.InsertEdge(0, 3);
  g.InsertEdge(0, 4);
  g.InsertEdge(1, 3);
  g.InsertEdge(1, 4);
  g.InsertEdge(1, 5);
  EXPECT_EQ(g.CommonNeighbors(0, 1), (std::vector<VertexId>{3, 4}));
  EXPECT_TRUE(g.CommonNeighbors(2, 5).empty());
}

TEST(DynamicGraphTest, ConversionRoundTrip) {
  Graph original = HolmeKim(200, 4, 0.5, 3);
  DynamicGraph dynamic(original);
  EXPECT_EQ(dynamic.num_edges(), original.num_edges());
  Graph back = dynamic.ToGraph();
  EXPECT_TRUE(std::ranges::equal(back.edges(), original.edges()));
}

TEST(DynamicGraphTest, AddVertexGrows) {
  DynamicGraph g(2);
  const VertexId v = g.AddVertex();
  EXPECT_EQ(v, 2u);
  EXPECT_TRUE(g.InsertEdge(0, v));
  EXPECT_EQ(g.degree(v), 1u);
}

// --------------------------------------------------------- DynamicTsdIndex

void ExpectMatchesFreshBuild(const DynamicTsdIndex& dynamic) {
  const Graph snapshot = dynamic.graph().ToGraph();
  TsdIndex fresh = TsdIndex::Build(snapshot);
  for (VertexId v = 0; v < snapshot.num_vertices(); ++v) {
    for (std::uint32_t k = 2; k <= 6; ++k) {
      ASSERT_EQ(dynamic.Score(v, k), fresh.Score(v, k))
          << "v=" << v << " k=" << k;
      ASSERT_EQ(dynamic.ScoreUpperBound(v, k), fresh.ScoreUpperBound(v, k))
          << "v=" << v << " k=" << k;
    }
  }
}

TEST(DynamicTsdIndexTest, InitialBuildMatchesStatic) {
  Graph g = HolmeKim(150, 5, 0.6, 7);
  DynamicTsdIndex dynamic(g);
  ExpectMatchesFreshBuild(dynamic);
  EXPECT_EQ(dynamic.rebuild_count(), 0u);
}

TEST(DynamicTsdIndexTest, SingleInsertMatchesRebuild) {
  Graph g = PaperFigure1Graph();
  DynamicTsdIndex dynamic(g);
  // Connect the two s-vertices (new triangle-free edge).
  EXPECT_TRUE(dynamic.InsertEdge(15, 16));
  ExpectMatchesFreshBuild(dynamic);
  // Re-inserting is a no-op.
  EXPECT_FALSE(dynamic.InsertEdge(15, 16));
}

TEST(DynamicTsdIndexTest, InsertOnlyTouchesAffectedVertices) {
  Graph g = PaperFigure1Graph();
  DynamicTsdIndex dynamic(g);
  // Edge (x1, y2): common neighbors = {v}. Affected = {x1, y2, v} = 3.
  EXPECT_TRUE(dynamic.InsertEdge(1, 6));
  EXPECT_EQ(dynamic.rebuild_count(), 3u);
}

TEST(DynamicTsdIndexTest, DeleteSplitsContext) {
  Graph g = PaperFigure1Graph();
  DynamicTsdIndex dynamic(g);
  EXPECT_EQ(dynamic.Score(0, 4), 3u);
  // Deleting a clique edge destroys the x-context's 4-truss.
  EXPECT_TRUE(dynamic.RemoveEdge(1, 2));  // (x1, x2)
  ExpectMatchesFreshBuild(dynamic);
  EXPECT_EQ(dynamic.Score(0, 4), 2u);
  // Restoring the edge restores the score.
  EXPECT_TRUE(dynamic.InsertEdge(1, 2));
  EXPECT_EQ(dynamic.Score(0, 4), 3u);
  ExpectMatchesFreshBuild(dynamic);
}

TEST(DynamicTsdIndexTest, RandomizedUpdateStream) {
  Graph g = HolmeKim(80, 4, 0.6, 11);
  DynamicTsdIndex dynamic(g);
  Rng rng(13);
  for (int step = 0; step < 60; ++step) {
    const auto u = static_cast<VertexId>(rng.Uniform(80));
    const auto v = static_cast<VertexId>(rng.Uniform(80));
    if (u == v) continue;
    if (dynamic.graph().HasEdge(u, v)) {
      dynamic.RemoveEdge(u, v);
    } else {
      dynamic.InsertEdge(u, v);
    }
    if (step % 10 == 9) ExpectMatchesFreshBuild(dynamic);
  }
  ExpectMatchesFreshBuild(dynamic);
}

TEST(DynamicTsdIndexTest, TopRMatchesOnlineAfterUpdates) {
  Graph g = HolmeKim(120, 5, 0.6, 17);
  DynamicTsdIndex dynamic(g);
  Rng rng(19);
  for (int step = 0; step < 30; ++step) {
    const auto u = static_cast<VertexId>(rng.Uniform(120));
    const auto v = static_cast<VertexId>(rng.Uniform(120));
    if (u != v && !dynamic.graph().HasEdge(u, v)) dynamic.InsertEdge(u, v);
  }
  const Graph snapshot = dynamic.graph().ToGraph();
  OnlineSearcher online(snapshot);
  for (std::uint32_t k : {3u, 4u}) {
    const TopRResult expected = online.TopR(5, k);
    const TopRResult actual = dynamic.TopR(5, k);
    ASSERT_EQ(actual.entries.size(), expected.entries.size());
    for (std::size_t i = 0; i < expected.entries.size(); ++i) {
      EXPECT_EQ(actual.entries[i].vertex, expected.entries[i].vertex);
      EXPECT_EQ(actual.entries[i].score, expected.entries[i].score);
    }
  }
}

TEST(DynamicTsdIndexTest, FreezeProducesEquivalentStaticIndex) {
  Graph g = HolmeKim(100, 4, 0.5, 23);
  DynamicTsdIndex dynamic(g);
  dynamic.InsertEdge(0, 50);
  dynamic.InsertEdge(1, 60);
  TsdIndex frozen = dynamic.Freeze();
  for (VertexId v = 0; v < 100; ++v) {
    for (std::uint32_t k = 2; k <= 5; ++k) {
      EXPECT_EQ(frozen.Score(v, k), dynamic.Score(v, k));
    }
  }
}

TEST(DynamicTsdIndexTest, AddVertexThenConnect) {
  Graph g = PaperFigure1Graph();
  DynamicTsdIndex dynamic(g);
  const VertexId nv = dynamic.AddVertex();
  EXPECT_EQ(dynamic.Score(nv, 2), 0u);
  // Attach the new vertex to the whole x-clique: its ego-network becomes a
  // 4-clique + v... attach to x1..x4.
  for (VertexId x = 1; x <= 4; ++x) dynamic.InsertEdge(nv, x);
  ExpectMatchesFreshBuild(dynamic);
  EXPECT_EQ(dynamic.Score(nv, 4), 1u);
}

// ------------------------------------------------------------ Parallel

TEST(ParallelBuildTest, TsdParallelIdenticalToSequential) {
  Graph g = HolmeKim(400, 6, 0.6, 29);
  TsdIndex sequential = TsdIndex::Build(g);
  TsdIndex::Options parallel_options;
  parallel_options.num_threads = 4;
  TsdIndex parallel = TsdIndex::Build(g, parallel_options);
  ASSERT_EQ(parallel.num_vertices(), sequential.num_vertices());
  EXPECT_EQ(parallel.SizeBytes(), sequential.SizeBytes());
  EXPECT_EQ(parallel.max_weight(), sequential.max_weight());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(parallel.NumForestEdges(v), sequential.NumForestEdges(v));
    for (std::uint32_t k = 2; k <= 6; ++k) {
      ASSERT_EQ(parallel.Score(v, k), sequential.Score(v, k))
          << "v=" << v << " k=" << k;
    }
  }
}

TEST(ParallelBuildTest, GctParallelIdenticalToSequential) {
  Graph g = HolmeKim(400, 6, 0.6, 31);
  GctIndex sequential = GctIndex::Build(g);
  GctIndex::Options parallel_options;
  parallel_options.num_threads = 4;
  GctIndex parallel = GctIndex::Build(g, parallel_options);
  parallel.CheckInvariants();
  ASSERT_EQ(parallel.num_vertices(), sequential.num_vertices());
  EXPECT_EQ(parallel.SizeBytes(), sequential.SizeBytes());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(parallel.NumSupernodes(v), sequential.NumSupernodes(v));
    ASSERT_EQ(parallel.NumSuperedges(v), sequential.NumSuperedges(v));
    for (std::uint32_t k = 2; k <= 6; ++k) {
      ASSERT_EQ(parallel.Score(v, k), sequential.Score(v, k));
    }
    EXPECT_EQ(parallel.ScoreWithContexts(v, 3).contexts,
              sequential.ScoreWithContexts(v, 3).contexts);
  }
}

TEST(ParallelBuildTest, SingleChunkGraphSmallerThanThreads) {
  // More threads than vertices must still work.
  Graph g = PaperFigure1Graph();
  TsdIndex::Options options;
  options.num_threads = 32;
  TsdIndex parallel = TsdIndex::Build(g, options);
  TsdIndex sequential = TsdIndex::Build(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(parallel.Score(v, 4), sequential.Score(v, 4));
  }
}

}  // namespace
}  // namespace tsd
