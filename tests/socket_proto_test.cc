// Socket wire-protocol suite: strict codec round trips, then a fuzz
// battery against a live epoll server — torn frames, zero/oversized length
// prefixes, garbage bytes, and mid-frame disconnects must never crash,
// hang, or wedge the server (runs under the ASan/UBSan and TSan CI matrix;
// hangs fail loudly through client recv timeouts). A malformed frame earns
// a clean kErrorFrame and a connection close, after every reply owed for
// the well-formed frames before it; other connections keep being served.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/gct_index.h"
#include "core/query_session.h"
#include "graph/generators.h"
#include "server/sharded_serve.h"
#include "server/socket_proto.h"
#include "server/socket_serve.h"

namespace tsd {
namespace {

/// Generous recv timeout: under TSan everything is slow, but a protocol
/// hang must still fail the test instead of wedging CI.
constexpr std::uint32_t kRecvTimeoutMs = 60000;

std::string Payload(const std::string& frame) {
  TSD_CHECK(frame.size() >= 4);
  return frame.substr(4);
}

/// A live server over a small graph, plus the serial reference replies.
struct ServerHarness {
  ServerHarness()
      : graph(HolmeKim(300, 4, 0.3, /*seed=*/7)),
        gct(GctIndex::Build(graph)),
        loop(gct, {}),
        server(loop, {}) {
    server.Start();
  }
  ~ServerHarness() {
    server.Shutdown();
    loop.Shutdown();
  }

  SocketClient Connect() {
    return SocketClient::Connect("127.0.0.1", server.port(), kRecvTimeoutMs);
  }

  std::vector<TranscriptEntry> Reference(std::uint32_t k, std::uint32_t r) {
    QuerySession session;
    const TopRResult result = gct.TopR(r, k, session);
    std::vector<TranscriptEntry> entries;
    for (const TopREntry& entry : result.entries) {
      entries.push_back(TranscriptEntry{entry.vertex, entry.score});
    }
    return entries;
  }

  /// Proves the server is still healthy: a fresh connection's query gets
  /// the exact serial reply.
  void ExpectStillServing() {
    SocketClient client = Connect();
    client.SendQuery(/*tenant=*/42, /*k=*/3, /*r=*/5);
    ServerFrame frame;
    ASSERT_TRUE(client.ReadServerFrame(&frame));
    EXPECT_EQ(frame.type, kReplyFrame);
    EXPECT_EQ(frame.id, 1u);
    EXPECT_EQ(frame.status, ServeStatus::kOk);
    const std::vector<TranscriptEntry> expected = Reference(3, 5);
    ASSERT_EQ(frame.entries.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(frame.entries[i].vertex, expected[i].vertex);
      EXPECT_EQ(frame.entries[i].score, expected[i].score);
    }
  }

  Graph graph;
  GctIndex gct;
  ShardedServeLoop loop;
  SocketServer server;
};

// ------------------------------------------------------------ pure codec

TEST(SocketProtoCodec, ClientFramesRoundTrip) {
  ClientFrame frame;
  const std::string query = Payload(EncodeQueryFrame(0xdeadbeefcafeULL, 4, 9));
  ASSERT_TRUE(DecodeClientFrame(query.data(), query.size(), &frame));
  EXPECT_EQ(frame.type, kQueryFrame);
  EXPECT_EQ(frame.tenant, 0xdeadbeefcafeULL);
  EXPECT_EQ(frame.k, 4u);
  EXPECT_EQ(frame.r, 9u);

  const std::string stats = Payload(EncodeStatsFrame());
  ASSERT_TRUE(DecodeClientFrame(stats.data(), stats.size(), &frame));
  EXPECT_EQ(frame.type, kStatsFrame);

  const std::string shutdown = Payload(EncodeShutdownFrame());
  ASSERT_TRUE(DecodeClientFrame(shutdown.data(), shutdown.size(), &frame));
  EXPECT_EQ(frame.type, kShutdownFrame);
}

TEST(SocketProtoCodec, ClientDecodeIsStrict) {
  ClientFrame frame;
  std::string query = Payload(EncodeQueryFrame(1, 2, 3));
  EXPECT_FALSE(DecodeClientFrame(query.data(), query.size() - 1, &frame));
  query.push_back('\0');  // trailing byte
  EXPECT_FALSE(DecodeClientFrame(query.data(), query.size(), &frame));
  EXPECT_FALSE(DecodeClientFrame(query.data(), 0, &frame));
  const std::string unknown(1, '\x7f');
  EXPECT_FALSE(DecodeClientFrame(unknown.data(), unknown.size(), &frame));
  const std::string stats_long = Payload(EncodeStatsFrame()) + "x";
  EXPECT_FALSE(DecodeClientFrame(stats_long.data(), stats_long.size(), &frame));
}

TEST(SocketProtoCodec, ServerFramesRoundTrip) {
  const std::vector<TranscriptEntry> entries = {{11, 3}, {29, 2}, {5, 2}};
  ServerFrame frame;
  const std::string reply =
      Payload(EncodeReplyFrame(7, ServeStatus::kOk, entries));
  ASSERT_TRUE(DecodeServerFrame(reply.data(), reply.size(), &frame));
  EXPECT_EQ(frame.type, kReplyFrame);
  EXPECT_EQ(frame.id, 7u);
  EXPECT_EQ(frame.status, ServeStatus::kOk);
  ASSERT_EQ(frame.entries.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(frame.entries[i].vertex, entries[i].vertex);
    EXPECT_EQ(frame.entries[i].score, entries[i].score);
  }

  // Every rejection status survives the round trip.
  for (const ServeStatus status :
       {ServeStatus::kRejectedRLimit, ServeStatus::kRejectedQueueDepth,
        ServeStatus::kRejectedBadQuery, ServeStatus::kRejectedShutdown,
        ServeStatus::kInternalError}) {
    const std::string rejected = Payload(EncodeReplyFrame(9, status, {}));
    ASSERT_TRUE(DecodeServerFrame(rejected.data(), rejected.size(), &frame));
    EXPECT_EQ(frame.status, status);
    EXPECT_TRUE(frame.entries.empty());
  }

  const std::string stats = Payload(EncodeStatsReplyFrame(3, "table\nbody\n"));
  ASSERT_TRUE(DecodeServerFrame(stats.data(), stats.size(), &frame));
  EXPECT_EQ(frame.type, kStatsReplyFrame);
  EXPECT_EQ(frame.id, 3u);
  EXPECT_EQ(frame.text, "table\nbody\n");

  const std::string error = Payload(EncodeErrorFrame(0, "bad frame"));
  ASSERT_TRUE(DecodeServerFrame(error.data(), error.size(), &frame));
  EXPECT_EQ(frame.type, kErrorFrame);
  EXPECT_EQ(frame.id, 0u);
  EXPECT_EQ(frame.text, "bad frame");
}

TEST(SocketProtoCodec, ServerDecodeIsStrict) {
  ServerFrame frame;
  std::string reply = Payload(EncodeReplyFrame(1, ServeStatus::kOk, {{2, 1}}));
  EXPECT_TRUE(DecodeServerFrame(reply.data(), reply.size(), &frame));
  EXPECT_FALSE(DecodeServerFrame(reply.data(), reply.size() - 1, &frame));
  reply.push_back('\0');
  EXPECT_FALSE(DecodeServerFrame(reply.data(), reply.size(), &frame));

  // Status byte beyond the enum range is rejected, not cast blindly.
  std::string bad_status = Payload(EncodeReplyFrame(1, ServeStatus::kOk, {}));
  bad_status[9] = '\x2a';
  EXPECT_FALSE(DecodeServerFrame(bad_status.data(), bad_status.size(), &frame));

  const std::string unknown(9, '\x6e');
  EXPECT_FALSE(DecodeServerFrame(unknown.data(), unknown.size(), &frame));
}

// ------------------------------------------------- live-server fuzzing

TEST(SocketProtoFuzz, TornFramesReassembleByteByByte) {
  ServerHarness harness;
  SocketClient client = harness.Connect();
  // Two pipelined queries delivered one byte at a time: the server's frame
  // parser must buffer partial prefixes and payloads across reads.
  const std::string stream = EncodeQueryFrame(1, 3, 5) + EncodeQueryFrame(1, 2, 4);
  for (const char byte : stream) {
    client.SendBytes(std::string(1, byte));
  }
  ServerFrame frame;
  ASSERT_TRUE(client.ReadServerFrame(&frame));
  EXPECT_EQ(frame.id, 1u);
  EXPECT_EQ(frame.status, ServeStatus::kOk);
  ASSERT_TRUE(client.ReadServerFrame(&frame));
  EXPECT_EQ(frame.id, 2u);
  EXPECT_EQ(frame.status, ServeStatus::kOk);
}

TEST(SocketProtoFuzz, RandomSplitPointsReassemble) {
  ServerHarness harness;
  Rng rng(1234);
  for (int iter = 0; iter < 10; ++iter) {
    SocketClient client = harness.Connect();
    std::string stream;
    const std::uint32_t queries = 1 + static_cast<std::uint32_t>(rng.Uniform(5));
    for (std::uint32_t q = 0; q < queries; ++q) {
      stream += EncodeQueryFrame(q, 2 + q % 4, 1 + q % 7);
    }
    std::size_t sent = 0;
    while (sent < stream.size()) {
      const std::size_t n =
          1 + rng.Uniform(std::min<std::uint64_t>(stream.size() - sent, 9));
      client.SendBytes(stream.substr(sent, n));
      sent += n;
    }
    for (std::uint32_t q = 0; q < queries; ++q) {
      ServerFrame frame;
      ASSERT_TRUE(client.ReadServerFrame(&frame)) << "iter " << iter;
      EXPECT_EQ(frame.id, q + 1);
    }
  }
}

TEST(SocketProtoFuzz, ZeroLengthPrefixIsCleanErrorAndClose) {
  ServerHarness harness;
  SocketClient client = harness.Connect();
  std::string zero;
  AppendU32(zero, 0);
  client.SendBytes(zero);
  ServerFrame frame;
  ASSERT_TRUE(client.ReadServerFrame(&frame));
  EXPECT_EQ(frame.type, kErrorFrame);
  EXPECT_EQ(frame.id, 0u);  // not attributable to a request
  std::string payload;
  EXPECT_FALSE(client.ReadFrame(&payload));  // then the server closes
  harness.ExpectStillServing();
}

TEST(SocketProtoFuzz, OversizedLengthPrefixIsRejectedNotAllocated) {
  ServerHarness harness;
  for (const std::uint32_t length :
       {static_cast<std::uint32_t>(kDefaultMaxFramePayload) + 1, 0xffffffffu}) {
    SocketClient client = harness.Connect();
    std::string prefix;
    AppendU32(prefix, length);
    client.SendBytes(prefix);
    ServerFrame frame;
    ASSERT_TRUE(client.ReadServerFrame(&frame));
    EXPECT_EQ(frame.type, kErrorFrame);
    std::string payload;
    EXPECT_FALSE(client.ReadFrame(&payload));
  }
  harness.ExpectStillServing();
}

TEST(SocketProtoFuzz, UndecodablePayloadAfterValidQueriesKeepsOrder) {
  ServerHarness harness;
  SocketClient client = harness.Connect();
  // Two good queries, then a well-framed but undecodable payload: the
  // replies owed must be emitted, in id order, before the error frame.
  std::string stream = EncodeQueryFrame(5, 3, 4) + EncodeQueryFrame(5, 2, 2) +
                       EncodeFrame(std::string(3, '\x7f'));
  client.SendBytes(stream);
  ServerFrame frame;
  ASSERT_TRUE(client.ReadServerFrame(&frame));
  EXPECT_EQ(frame.type, kReplyFrame);
  EXPECT_EQ(frame.id, 1u);
  ASSERT_TRUE(client.ReadServerFrame(&frame));
  EXPECT_EQ(frame.type, kReplyFrame);
  EXPECT_EQ(frame.id, 2u);
  ASSERT_TRUE(client.ReadServerFrame(&frame));
  EXPECT_EQ(frame.type, kErrorFrame);
  std::string payload;
  EXPECT_FALSE(client.ReadFrame(&payload));
  harness.ExpectStillServing();
}

TEST(SocketProtoFuzz, MidFrameDisconnectLeaksNothing) {
  ServerHarness harness;
  for (int iter = 0; iter < 8; ++iter) {
    SocketClient client = harness.Connect();
    const std::string frame = EncodeQueryFrame(9, 3, 5);
    client.SendBytes(frame.substr(0, 4 + static_cast<std::size_t>(iter)));
    client.Close();  // mid-frame disconnect: torn bytes must be dropped
  }
  harness.ExpectStillServing();
  // ASan/LSan close the loop on the "leak" half of the claim at exit.
}

TEST(SocketProtoFuzz, RandomGarbageNeverWedgesTheServer) {
  ServerHarness harness;
  Rng rng(0xf22u);
  for (int iter = 0; iter < 30; ++iter) {
    SocketClient client = harness.Connect();
    const std::size_t length = 1 + rng.Uniform(300);
    std::string garbage;
    garbage.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    client.SendBytes(garbage);
    client.CloseSend();
    // Drain whatever the server makes of it — error frames, accidental
    // well-formed replies, or an immediate close. The recv timeout turns a
    // wedged server into a loud CheckError instead of a hung test.
    std::string payload;
    try {
      while (client.ReadFrame(&payload)) {
      }
    } catch (const CheckError&) {
      // A torn tail at close is legitimate ("closed mid-frame"); a recv
      // timeout would also land here and be caught by ExpectStillServing
      // failing below on a wedged server.
    }
    if (iter % 10 == 9) harness.ExpectStillServing();
  }
  harness.ExpectStillServing();
  // 30 garbage connections produce at least a few undecodable frames.
  EXPECT_GT(harness.server.stats().protocol_errors, 0u);
}

TEST(SocketProtoFuzz, BadConnectionsDoNotDisturbAGoodOne) {
  ServerHarness harness;
  SocketClient good = harness.Connect();
  Rng rng(777);
  std::uint64_t expected_id = 0;
  for (int iter = 0; iter < 10; ++iter) {
    // Poison a throwaway connection...
    SocketClient bad = harness.Connect();
    std::string garbage;
    for (int i = 0; i < 40; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    bad.SendBytes(garbage);
    bad.Close();
    // ...and the long-lived good connection keeps its sequence intact.
    good.SendQuery(1, 3, 5);
    ServerFrame frame;
    ASSERT_TRUE(good.ReadServerFrame(&frame));
    EXPECT_EQ(frame.id, ++expected_id);
    EXPECT_EQ(frame.status, ServeStatus::kOk);
  }
}

}  // namespace
}  // namespace tsd
