// Tests for the per-ego scoring kernels (truss / component / k-core models),
// the TopRCollector ordering and pruning semantics, and the Lemma 2 upper
// bounds.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/bound_search.h"
#include "core/scoring.h"
#include "core/top_r_collector.h"
#include "graph/ego_network.h"
#include "graph/generators.h"
#include "truss/ego_truss.h"
#include "graph/triangle.h"

namespace tsd {
namespace {

EgoNetwork Figure1EgoOfV() {
  Graph g = PaperFigure1Graph();
  EgoNetworkExtractor extractor(g);
  return extractor.Extract(0);
}

TEST(ScoreFromEgoTrussnessTest, Figure1AcrossK) {
  EgoNetwork ego = Figure1EgoOfV();
  const auto trussness = ComputeEgoTrussness(ego);
  EXPECT_EQ(ScoreFromEgoTrussness(ego, trussness, 2, false).score, 2u);
  EXPECT_EQ(ScoreFromEgoTrussness(ego, trussness, 3, false).score, 2u);
  EXPECT_EQ(ScoreFromEgoTrussness(ego, trussness, 4, false).score, 3u);
  EXPECT_EQ(ScoreFromEgoTrussness(ego, trussness, 5, false).score, 0u);
}

TEST(ScoreFromEgoTrussnessTest, ContextsOnlyWhenRequested) {
  EgoNetwork ego = Figure1EgoOfV();
  const auto trussness = ComputeEgoTrussness(ego);
  EXPECT_TRUE(ScoreFromEgoTrussness(ego, trussness, 4, false).contexts.empty());
  const auto result = ScoreFromEgoTrussness(ego, trussness, 4, true);
  ASSERT_EQ(result.contexts.size(), 3u);
  // Contexts sorted by smallest member; each sorted internally.
  EXPECT_EQ(result.contexts[0], (SocialContext{1, 2, 3, 4}));
  EXPECT_EQ(result.contexts[1], (SocialContext{5, 6, 7, 8}));
  EXPECT_EQ(result.contexts[2], (SocialContext{9, 10, 11, 12, 13, 14}));
}

TEST(ScoreComponentsTest, Figure1SizesThreshold) {
  EgoNetwork ego = Figure1EgoOfV();
  // Components of v's ego: {x,y merged} (8 vertices) and octahedron (6).
  EXPECT_EQ(ScoreComponents(ego, 2, false).score, 2u);
  EXPECT_EQ(ScoreComponents(ego, 7, false).score, 1u);
  EXPECT_EQ(ScoreComponents(ego, 9, false).score, 0u);
  const auto result = ScoreComponents(ego, 2, true);
  ASSERT_EQ(result.contexts.size(), 2u);
  EXPECT_EQ(result.contexts[0].size(), 8u);
  EXPECT_EQ(result.contexts[1].size(), 6u);
}

TEST(ScoreKCoresTest, Figure1) {
  EgoNetwork ego = Figure1EgoOfV();
  // 3-cores of the ego-network: x-clique+y-clique component has a 3-core
  // (the cliques), octahedron is a 4-core.
  const auto result3 = ScoreKCores(ego, 3, true);
  EXPECT_EQ(result3.score, 2u);
  const auto result4 = ScoreKCores(ego, 4, true);
  // Only the octahedron is a 4-core.
  ASSERT_EQ(result4.score, 1u);
  EXPECT_EQ(result4.contexts[0], (SocialContext{9, 10, 11, 12, 13, 14}));
  EXPECT_EQ(ScoreKCores(ego, 5, false).score, 0u);
}

TEST(ScoreKCoresTest, CoreModelMergesWhatTrussSeparates) {
  // The paper's core-model critique: H1 (two 4-cliques + 2 bridges through
  // y1) is one connected 3-core, but two 4-trusses.
  EgoNetwork ego = Figure1EgoOfV();
  const auto trussness = ComputeEgoTrussness(ego);
  const auto truss4 = ScoreFromEgoTrussness(ego, trussness, 4, true);
  const auto core3 = ScoreKCores(ego, 3, true);
  // truss at k=4 separates x-clique from y-clique; core-3 keeps them merged.
  bool core_has_merged_xy = false;
  for (const auto& context : core3.contexts) {
    if (context.size() == 8) core_has_merged_xy = true;
  }
  EXPECT_TRUE(core_has_merged_xy);
  bool truss_has_separate_x = false;
  for (const auto& context : truss4.contexts) {
    if (context == SocialContext{1, 2, 3, 4}) truss_has_separate_x = true;
  }
  EXPECT_TRUE(truss_has_separate_x);
}

// ---------------------------------------------------------------- Collector

TEST(TopRCollectorTest, KeepsHighestScores) {
  TopRCollector collector(2);
  collector.Offer(10, 5);
  collector.Offer(11, 1);
  collector.Offer(12, 7);
  const auto ranked = collector.Ranked();
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], (std::pair<VertexId, std::uint32_t>{12, 7}));
  EXPECT_EQ(ranked[1], (std::pair<VertexId, std::uint32_t>{10, 5}));
}

TEST(TopRCollectorTest, TieBrokenBySmallerId) {
  TopRCollector collector(2);
  collector.Offer(30, 4);
  collector.Offer(20, 4);
  EXPECT_TRUE(collector.Offer(10, 4));   // displaces 30
  EXPECT_FALSE(collector.Offer(40, 4));  // larger id loses the tie
  const auto ranked = collector.Ranked();
  EXPECT_EQ(ranked[0].first, 10u);
  EXPECT_EQ(ranked[1].first, 20u);
}

TEST(TopRCollectorTest, PruneSemantics) {
  TopRCollector collector(2);
  EXPECT_FALSE(collector.CanPrune(0, 0));  // not full yet
  collector.Offer(5, 3);
  collector.Offer(9, 3);
  // bound below worst score prunes.
  EXPECT_TRUE(collector.CanPrune(2, 100));
  // bound equal to worst score: only a smaller id could still displace.
  EXPECT_FALSE(collector.CanPrune(3, 7));   // 7 < worst id 9: must evaluate
  EXPECT_TRUE(collector.CanPrune(3, 10));   // 10 > 9: prune
  // bound above worst score never prunes.
  EXPECT_FALSE(collector.CanPrune(4, 1000));
}

TEST(TopRCollectorTest, WorstTracksDisplacement) {
  TopRCollector collector(2);
  collector.Offer(1, 1);
  collector.Offer(2, 2);
  EXPECT_EQ(collector.WorstScore(), 1u);
  EXPECT_EQ(collector.WorstId(), 1u);
  collector.Offer(3, 5);
  EXPECT_EQ(collector.WorstScore(), 2u);
  EXPECT_EQ(collector.WorstId(), 2u);
}

// ---------------------------------------------------------------- Bounds

TEST(UpperBoundTest, Lemma2HoldsEverywhere) {
  for (std::uint64_t seed : {3ull, 4ull}) {
    Graph g = HolmeKim(200, 5, 0.6, seed);
    const auto ego_edges = TrianglesPerVertex(g);
    EgoNetworkExtractor extractor(g);
    EgoTrussDecomposer decomposer;
    for (std::uint32_t k : {2u, 3u, 4u, 5u}) {
      const auto bounds = BoundSearcher::UpperBounds(g, ego_edges, k);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EgoNetwork ego = extractor.Extract(v);
        const auto trussness = decomposer.Compute(ego);
        const auto score =
            ScoreFromEgoTrussness(ego, trussness, k, false).score;
        EXPECT_GE(bounds[v], score) << "v=" << v << " k=" << k;
      }
    }
  }
}

TEST(UpperBoundTest, Figure1Example3Values) {
  Graph g = PaperFigure1Graph();
  const auto ego_edges = TrianglesPerVertex(g);
  const auto bounds = BoundSearcher::UpperBounds(g, ego_edges, 4);
  // score̅(v) = min(⌊14/4⌋, ⌊2*26/12⌋) = min(3, 4) = 3 (Example 3).
  EXPECT_EQ(bounds[0], 3u);
  // score̅(x1) = min(⌊5/4⌋, ⌊2*7/12⌋) = 1.
  EXPECT_EQ(bounds[1], 1u);
}

}  // namespace
}  // namespace tsd
