// Tests for the Comp-Div / Core-Div baseline searchers and random selection:
// agreement with brute-force model evaluation, determinism, early
// termination correctness, and search statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/baselines.h"
#include "core/scoring.h"
#include "graph/ego_network.h"
#include "graph/generators.h"

namespace tsd {
namespace {

// Brute-force top-r for an arbitrary per-vertex scoring function.
template <typename ScoreFn>
std::vector<std::pair<VertexId, std::uint32_t>> BruteTopR(
    const Graph& g, std::uint32_t r, ScoreFn&& score_fn) {
  std::vector<std::pair<VertexId, std::uint32_t>> all;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    all.emplace_back(v, score_fn(v));
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  all.resize(std::min<std::size_t>(r, all.size()));
  return all;
}

TEST(CompDivSearcherTest, MatchesBruteForce) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    Graph g = HolmeKim(150, 4, 0.5, seed);
    EgoNetworkExtractor extractor(g);
    CompDivSearcher searcher(g);
    for (std::uint32_t k : {2u, 3u, 5u}) {
      const auto expected = BruteTopR(g, 10, [&](VertexId v) {
        EgoNetwork ego = extractor.Extract(v);
        return ScoreComponents(ego, k, false).score;
      });
      const TopRResult result = searcher.TopR(10, k);
      ASSERT_EQ(result.entries.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(result.entries[i].vertex, expected[i].first)
            << "seed=" << seed << " k=" << k << " rank=" << i;
        EXPECT_EQ(result.entries[i].score, expected[i].second);
      }
    }
  }
}

TEST(CoreDivSearcherTest, MatchesBruteForce) {
  for (std::uint64_t seed : {3ull, 4ull}) {
    Graph g = HolmeKim(150, 5, 0.6, seed);
    EgoNetworkExtractor extractor(g);
    CoreDivSearcher searcher(g);
    for (std::uint32_t k : {2u, 3u, 4u}) {
      const auto expected = BruteTopR(g, 8, [&](VertexId v) {
        EgoNetwork ego = extractor.Extract(v);
        return ScoreKCores(ego, k, false).score;
      });
      const TopRResult result = searcher.TopR(8, k);
      ASSERT_EQ(result.entries.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(result.entries[i].vertex, expected[i].first)
            << "seed=" << seed << " k=" << k << " rank=" << i;
        EXPECT_EQ(result.entries[i].score, expected[i].second);
      }
    }
  }
}

TEST(BaselineSearchersTest, EarlyTerminationPrunesButStaysExact) {
  Graph g = HolmeKim(500, 5, 0.6, 7);
  CompDivSearcher comp(g);
  const TopRResult result = comp.TopR(5, 3);
  // Pruning must have kicked in (bound-ordered candidates).
  EXPECT_LT(result.stats.vertices_scored, g.num_vertices());
  EXPECT_EQ(result.entries.size(), 5u);
}

TEST(BaselineSearchersTest, ContextsMatchModelDefinition) {
  Graph g = PaperFigure1Graph();
  CompDivSearcher comp(g);
  const TopRResult result = comp.TopR(1, 6);
  // Top-1 under the component model with k=6: v's ego has the 8-vertex
  // component {x1..x4, y1..y4} and the 6-vertex octahedron.
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].vertex, 0u);
  EXPECT_EQ(result.entries[0].score, 2u);
  ASSERT_EQ(result.entries[0].contexts.size(), 2u);
  EXPECT_EQ(result.entries[0].contexts[0].size(), 8u);
  EXPECT_EQ(result.entries[0].contexts[1].size(), 6u);
}

TEST(RandomSelectTest, DistinctDeterministicWithinRange) {
  Graph g = HolmeKim(200, 4, 0.5, 9);
  const auto a = RandomSelect(g, 50, 11);
  const auto b = RandomSelect(g, 50, 11);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 50u);
  std::set<VertexId> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 50u);
  for (VertexId v : a) EXPECT_LT(v, g.num_vertices());
  const auto c = RandomSelect(g, 50, 12);
  EXPECT_NE(a, c);
}

TEST(RandomSelectTest, RejectsOversizedRequest) {
  Graph g = HolmeKim(50, 3, 0.5, 10);
  EXPECT_THROW(RandomSelect(g, 51, 1), CheckError);
}

}  // namespace
}  // namespace tsd
