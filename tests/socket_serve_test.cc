// End-to-end suite for the epoll socket transport:
//
//  * Differential transcripts — the SAME text script through the stdin
//    driver and through a live socket connection must produce byte-identical
//    transcripts across --shards=1/2/4 x pipeline threads 1/8, rejections
//    and parse errors included. The shared ParseProtoLine /
//    AppendReplyTranscript make this true by construction; this test (and
//    the CI smoke job) verify it end to end.
//  * Slow-reader backpressure — a client that never reads gets its
//    connection's reads paused at the outbound bound, the bound holds (high
//    water <= max_outbound_bytes + one frame), a concurrent fast tenant is
//    unaffected, and the slow reader still receives every reply in order.
//  * Shutdown — remote (kShutdownFrame acks then drains) and local
//    (SocketServer::Shutdown delivers every owed reply before EOF), plus
//    racing connects against a shutting-down server (runs under TSan).
//  * The stats endpoint renders the transport/latency/tenant tables and
//    composes extra_stats.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/gct_index.h"
#include "graph/generators.h"
#include "server/sharded_serve.h"
#include "server/socket_proto.h"
#include "server/socket_serve.h"
#include "server/stdin_proto.h"

namespace tsd {
namespace {

constexpr std::uint32_t kRecvTimeoutMs = 60000;

/// The differential script: ok queries across tenants, an r-limit
/// rejection, a bad-query rejection, parse errors, comments, and explicit
/// flushes. Every transport must turn this into the same transcript bytes.
constexpr const char* kScript =
    "# differential workload\n"
    "q 1 3 5\n"
    "q 2 2 4\n"
    "q 1 4 20\n"     // r > max_r=8 -> rejected:r-limit
    "bogus line\n"   // -> "! parse-error line 5"
    "flush\n"
    "q 3 5 8\n"
    "q 2 2 1\n"
    "q 7 1 3\n"      // k < 2 -> rejected:bad-query
    "\n"
    "q 4 3 6\n";

ShardedServeOptions LoopOptions(std::uint32_t shards, std::uint32_t threads) {
  ShardedServeOptions options;
  options.num_shards = shards;
  options.shard.max_r = 8;
  options.shard.query_options.num_threads = threads;
  return options;
}

TEST(SocketServeTest, TranscriptsMatchStdinAcrossShardsAndThreads) {
  const Graph g = HolmeKim(300, 4, 0.4, 41);
  const GctIndex gct = GctIndex::Build(g);

  // Baseline: stdin transport, 1 shard, 1 thread.
  std::string baseline;
  {
    ShardedServeLoop loop(gct, LoopOptions(1, 1));
    std::istringstream in(kScript);
    std::ostringstream out;
    const StdinProtoStats stats = RunStdinProto(in, out, loop);
    EXPECT_EQ(stats.requests, 7u);
    EXPECT_EQ(stats.parse_errors, 1u);
    baseline = out.str();
    loop.Shutdown();
  }
  ASSERT_NE(baseline.find("rejected:r-limit"), std::string::npos);
  ASSERT_NE(baseline.find("rejected:bad-query"), std::string::npos);
  ASSERT_NE(baseline.find("! parse-error line 5"), std::string::npos);

  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    for (const std::uint32_t threads : {1u, 8u}) {
      const std::string label =
          "shards=" + std::to_string(shards) + " threads=" + std::to_string(threads);
      {
        ShardedServeLoop loop(gct, LoopOptions(shards, threads));
        std::istringstream in(kScript);
        std::ostringstream out;
        RunStdinProto(in, out, loop);
        EXPECT_EQ(out.str(), baseline) << "stdin " << label;
        loop.Shutdown();
      }
      {
        ShardedServeLoop loop(gct, LoopOptions(shards, threads));
        SocketServer server(loop, {});
        server.Start();
        SocketClient client =
            SocketClient::Connect("127.0.0.1", server.port(), kRecvTimeoutMs);
        std::istringstream in(kScript);
        std::ostringstream out;
        const SocketClientScriptStats stats =
            RunSocketClientScript(in, out, client);
        EXPECT_EQ(stats.requests, 7u);
        EXPECT_EQ(stats.parse_errors, 1u);
        EXPECT_EQ(stats.server_errors, 0u);
        EXPECT_EQ(out.str(), baseline) << "socket " << label;
        client.Close();
        server.Shutdown();
        loop.Shutdown();
      }
    }
  }
}

TEST(SocketServeTest, SlowReaderIsBoundedAndDoesNotStallFastTenant) {
  const Graph g = HolmeKim(300, 4, 0.4, 42);
  const GctIndex gct = GctIndex::Build(g);
  ShardedServeLoop loop(gct, {});
  SocketServerOptions options;
  // Smaller than a single k=3/r=8 reply frame (~150 bytes), so the first
  // harvested reply crosses the bound and pauses the connection's reads
  // deterministically — no dependence on how many futures happen to
  // resolve within one harvest pass.
  options.max_outbound_bytes = 128;
  SocketServer server(loop, options);
  server.Start();

  // The slow reader: a tiny receive window and no reads while the server
  // answers 300 queries, repeatedly filling the outbound bound.
  constexpr int kSlowQueries = 300;
  SocketClient slow = SocketClient::Connect("127.0.0.1", server.port(),
                                            kRecvTimeoutMs,
                                            /*recv_buffer_bytes=*/2048);
  for (int i = 0; i < kSlowQueries; ++i) {
    slow.SendQuery(/*tenant=*/1, /*k=*/3, /*r=*/8);
  }

  // The server must hit the backpressure bound while the slow reader
  // stalls; poll because delivery into kernel buffers takes a moment.
  for (int spin = 0; spin < 2000 && server.stats().backpressure_pauses == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(server.stats().backpressure_pauses, 0u)
      << "slow reader never tripped the outbound bound";

  // Meanwhile a fast tenant must be completely unaffected: only the slow
  // connection's reads are paused, never a shard consumer.
  SocketClient fast =
      SocketClient::Connect("127.0.0.1", server.port(), kRecvTimeoutMs);
  for (std::uint64_t i = 0; i < 20; ++i) {
    fast.SendQuery(/*tenant=*/2, /*k=*/3, /*r=*/5);
    ServerFrame frame;
    ASSERT_TRUE(fast.ReadServerFrame(&frame));
    EXPECT_EQ(frame.id, i + 1);
    EXPECT_EQ(frame.status, ServeStatus::kOk);
  }
  fast.Close();

  // The slow reader finally drains: every reply arrives, in order.
  for (std::uint64_t i = 0; i < kSlowQueries; ++i) {
    ServerFrame frame;
    ASSERT_TRUE(slow.ReadServerFrame(&frame));
    EXPECT_EQ(frame.id, i + 1);
    EXPECT_EQ(frame.status, ServeStatus::kOk);
  }
  slow.Close();

  // The bound held: the outbound queue never exceeded the limit by more
  // than the one frame that crossed it.
  // The bound held: never exceeded by more than the one frame whose append
  // crossed it.
  const SocketServerStats stats = server.stats();
  EXPECT_LE(stats.outbound_high_water, options.max_outbound_bytes + 512)
      << "outbound queue exceeded the backpressure bound";
  EXPECT_GT(stats.outbound_high_water, options.max_outbound_bytes)
      << "the test never actually filled the outbound queue";

  server.Shutdown();
  loop.Shutdown();
}

TEST(SocketServeTest, RemoteShutdownAcksThenDrains) {
  const Graph g = HolmeKim(200, 4, 0.4, 43);
  const GctIndex gct = GctIndex::Build(g);
  ShardedServeLoop loop(gct, {});
  SocketServer server(loop, {});
  server.Start();

  SocketClient client =
      SocketClient::Connect("127.0.0.1", server.port(), kRecvTimeoutMs);
  client.SendQuery(1, 3, 5);
  client.SendQuery(2, 2, 4);
  client.SendShutdown();

  ServerFrame frame;
  ASSERT_TRUE(client.ReadServerFrame(&frame));
  EXPECT_EQ(frame.id, 1u);
  EXPECT_EQ(frame.status, ServeStatus::kOk);
  ASSERT_TRUE(client.ReadServerFrame(&frame));
  EXPECT_EQ(frame.id, 2u);
  ASSERT_TRUE(client.ReadServerFrame(&frame));  // the shutdown ack
  EXPECT_EQ(frame.type, kReplyFrame);
  EXPECT_EQ(frame.id, 3u);
  EXPECT_EQ(frame.status, ServeStatus::kOk);
  std::string payload;
  EXPECT_FALSE(client.ReadFrame(&payload));  // server drained and closed
  client.Close();  // let the server's lingering close finish promptly

  server.WaitUntilShutdown();  // returns without an explicit Shutdown()
  server.Shutdown();
  loop.Shutdown();
}

TEST(SocketServeTest, RemoteShutdownCanBeDisabled) {
  const Graph g = HolmeKim(150, 4, 0.4, 44);
  const GctIndex gct = GctIndex::Build(g);
  ShardedServeLoop loop(gct, {});
  SocketServerOptions options;
  options.enable_remote_shutdown = false;
  SocketServer server(loop, options);
  server.Start();

  SocketClient client =
      SocketClient::Connect("127.0.0.1", server.port(), kRecvTimeoutMs);
  client.SendShutdown();
  ServerFrame frame;
  ASSERT_TRUE(client.ReadServerFrame(&frame));
  EXPECT_EQ(frame.type, kErrorFrame);
  // The server is still alive and serving this same connection.
  client.SendQuery(1, 3, 5);
  ASSERT_TRUE(client.ReadServerFrame(&frame));
  EXPECT_EQ(frame.id, 2u);
  EXPECT_EQ(frame.status, ServeStatus::kOk);
  client.Close();

  server.Shutdown();
  loop.Shutdown();
}

TEST(SocketServeTest, LocalShutdownDeliversEveryOwedReply) {
  const Graph g = HolmeKim(300, 4, 0.4, 45);
  const GctIndex gct = GctIndex::Build(g);
  ShardedServeLoop loop(gct, {});
  SocketServer server(loop, {});
  server.Start();

  constexpr std::uint64_t kQueries = 50;
  SocketClient client =
      SocketClient::Connect("127.0.0.1", server.port(), kRecvTimeoutMs);
  for (std::uint64_t i = 0; i < kQueries; ++i) {
    client.SendQuery(i % 5, 3, 5);
  }

  // A reply is "owed" once the server has read and submitted the query;
  // drain stops reading, so wait until all 50 are owed before invoking it.
  for (int spin = 0; spin < 2000 && server.stats().queries < kQueries;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.stats().queries, kQueries);

  // Read concurrently with the drain: every reply owed must arrive, in
  // order, and only then EOF.
  std::uint64_t replies = 0;
  bool clean_eof = false;
  std::thread reader([&] {
    ServerFrame frame;
    while (replies < kQueries) {
      if (!client.ReadServerFrame(&frame)) return;
      if (frame.id != replies + 1 || frame.status != ServeStatus::kOk) return;
      ++replies;
    }
    std::string payload;
    clean_eof = !client.ReadFrame(&payload);
    client.Close();  // let the server's lingering close finish promptly
  });
  server.Shutdown();  // graceful drain: flush all 50, then close
  reader.join();
  EXPECT_EQ(replies, kQueries);
  EXPECT_TRUE(clean_eof);
  loop.Shutdown();
}

TEST(SocketServeTest, RacingConnectsSurviveShutdown) {
  const Graph g = HolmeKim(200, 4, 0.4, 46);
  const GctIndex gct = GctIndex::Build(g);
  ShardedServeLoop loop(gct, {});
  SocketServer server(loop, {});
  server.Start();
  const std::uint16_t port = server.port();

  // Clients hammer connect/query/read while the server shuts down under
  // them. Connection refusals, mid-frame EOFs, and clean EOFs are all
  // legitimate; crashes, hangs, and TSan races are not.
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([port, t] {
      for (int iter = 0; iter < 50; ++iter) {
        try {
          SocketClient client =
              SocketClient::Connect("127.0.0.1", port, kRecvTimeoutMs);
          client.SendQuery(static_cast<std::uint64_t>(t), 3, 5);
          ServerFrame frame;
          if (!client.ReadServerFrame(&frame)) return;
        } catch (const CheckError&) {
          return;  // the server went away under us — expected
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.Shutdown();
  for (std::thread& c : clients) c.join();
  loop.Shutdown();
}

TEST(SocketServeTest, StatsEndpointRendersTablesAndExtraStats) {
  const Graph g = HolmeKim(200, 4, 0.4, 47);
  const GctIndex gct = GctIndex::Build(g);
  ShardedServeLoop loop(gct, {});
  SocketServerOptions options;
  options.extra_stats = [] { return std::string("EXTRA-STATS-SENTINEL\n"); };
  SocketServer server(loop, options);
  server.Start();

  SocketClient client =
      SocketClient::Connect("127.0.0.1", server.port(), kRecvTimeoutMs);
  for (std::uint64_t tenant = 0; tenant < 3; ++tenant) {
    client.SendQuery(tenant, 3, 5);
  }
  client.SendStats();

  ServerFrame frame;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(client.ReadServerFrame(&frame));
    EXPECT_EQ(frame.id, id);
    EXPECT_EQ(frame.status, ServeStatus::kOk);
  }
  ASSERT_TRUE(client.ReadServerFrame(&frame));
  EXPECT_EQ(frame.type, kStatsReplyFrame);
  EXPECT_EQ(frame.id, 4u);
  EXPECT_NE(frame.text.find("socket transport"), std::string::npos);
  EXPECT_NE(frame.text.find("query latency"), std::string::npos);
  EXPECT_NE(frame.text.find("per-tenant"), std::string::npos);
  EXPECT_NE(frame.text.find("EXTRA-STATS-SENTINEL"), std::string::npos);
  client.Close();

  const SocketServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.stats_requests, 1u);
  EXPECT_EQ(stats.latency_ns.count(), 3u);
  ASSERT_EQ(stats.tenant_queries.size(), 3u);
  for (std::uint64_t tenant = 0; tenant < 3; ++tenant) {
    EXPECT_EQ(stats.tenant_queries[tenant].first, tenant);
    EXPECT_EQ(stats.tenant_queries[tenant].second, 1u);
  }

  server.Shutdown();
  loop.Shutdown();
}

}  // namespace
}  // namespace tsd
