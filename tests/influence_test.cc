// Tests for the independent-cascade simulator, RIS influence maximization,
// and the contagion experiment harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "influence/contagion_experiments.h"
#include "influence/independent_cascade.h"
#include "influence/influence_max.h"

namespace tsd {
namespace {

Graph PathGraph(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph::FromEdges(std::move(edges), n);
}

TEST(IndependentCascadeTest, ZeroProbabilityActivatesOnlySeeds) {
  Graph g = HolmeKim(100, 4, 0.5, 1);
  IndependentCascade ic(g, 0.0);
  Rng rng(1);
  const std::vector<VertexId> seeds = {3, 7};
  const CascadeResult result = ic.Run(seeds, rng);
  EXPECT_EQ(result.num_activated, 2u);
  EXPECT_EQ(result.round[3], 0);
  EXPECT_EQ(result.round[7], 0);
  EXPECT_EQ(result.round[0], -1);
}

TEST(IndependentCascadeTest, ProbabilityOneActivatesComponentAtBfsDistance) {
  Graph g = PathGraph(6);
  IndependentCascade ic(g, 1.0);
  Rng rng(2);
  const std::vector<VertexId> seeds = {0};
  const CascadeResult result = ic.Run(seeds, rng);
  EXPECT_EQ(result.num_activated, 6u);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(result.round[v], static_cast<std::int32_t>(v));
  }
}

TEST(IndependentCascadeTest, ProbabilityOneStopsAtComponentBoundary) {
  Graph g = Graph::FromEdges({{0, 1}, {1, 2}, {3, 4}}, 5);
  IndependentCascade ic(g, 1.0);
  Rng rng(3);
  const std::vector<VertexId> seeds = {0};
  const CascadeResult result = ic.Run(seeds, rng);
  EXPECT_EQ(result.num_activated, 3u);
  EXPECT_EQ(result.round[3], -1);
  EXPECT_EQ(result.round[4], -1);
}

TEST(IndependentCascadeTest, DuplicateSeedsCountedOnce) {
  Graph g = PathGraph(4);
  IndependentCascade ic(g, 0.0);
  Rng rng(4);
  const std::vector<VertexId> seeds = {1, 1, 1};
  EXPECT_EQ(ic.Run(seeds, rng).num_activated, 1u);
}

TEST(IndependentCascadeTest, SingleEdgeActivationProbabilityMatchesP) {
  // P(activate neighbor) = p on a single edge.
  Graph g = Graph::FromEdges({{0, 1}});
  IndependentCascade ic(g, 0.3);
  const std::vector<VertexId> seeds = {0};
  const auto prob = ic.EstimateActivationProbability(seeds, 20000, 5);
  EXPECT_NEAR(prob[1], 0.3, 0.02);
  EXPECT_DOUBLE_EQ(prob[0], 1.0);
}

TEST(IndependentCascadeTest, TwoHopProbabilityIsPSquared) {
  Graph g = PathGraph(3);
  IndependentCascade ic(g, 0.4);
  const std::vector<VertexId> seeds = {0};
  const auto prob = ic.EstimateActivationProbability(seeds, 40000, 6);
  EXPECT_NEAR(prob[2], 0.16, 0.02);
}

TEST(IndependentCascadeTest, EstimateSpreadIsDeterministicPerSeed) {
  Graph g = HolmeKim(200, 4, 0.5, 7);
  IndependentCascade ic(g, 0.05);
  const std::vector<VertexId> seeds = {0, 5, 9};
  EXPECT_DOUBLE_EQ(ic.EstimateSpread(seeds, 200, 11),
                   ic.EstimateSpread(seeds, 200, 11));
}

// ---------------------------------------------------------------- RIS

TEST(InfluenceMaxTest, StarCenterIsFirstSeed) {
  // High-probability star: the center covers nearly every RR set.
  GraphBuilder b;
  for (VertexId leaf = 1; leaf <= 20; ++leaf) b.AddEdge(0, leaf);
  Graph g = b.Build();
  RisOptions options;
  options.probability = 0.9;
  options.num_samples = 4000;
  const auto seeds = SelectSeedsRis(g, 1, options);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0u);
}

TEST(InfluenceMaxTest, ReturnsExactlyKDistinctSeeds) {
  Graph g = HolmeKim(300, 4, 0.5, 9);
  RisOptions options;
  options.num_samples = 2000;
  options.probability = 0.02;
  auto seeds = SelectSeedsRis(g, 50, options);
  EXPECT_EQ(seeds.size(), 50u);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(InfluenceMaxTest, RisBeatsRandomSeedsOnSpread) {
  Graph g = HolmeKim(1000, 5, 0.5, 10);
  IndependentCascade ic(g, 0.05);
  RisOptions options;
  options.num_samples = 5000;
  options.probability = 0.05;
  const auto ris = SelectSeedsRis(g, 10, options);
  // Arbitrary low-degree-biased picks: last 10 vertex ids.
  std::vector<VertexId> naive;
  for (VertexId v = g.num_vertices() - 10; v < g.num_vertices(); ++v) {
    naive.push_back(v);
  }
  EXPECT_GT(ic.EstimateSpread(ris, 300, 1), ic.EstimateSpread(naive, 300, 1));
}

TEST(InfluenceMaxTest, DegreeHeuristicPicksHighestDegrees) {
  GraphBuilder b;
  for (VertexId leaf = 1; leaf <= 10; ++leaf) b.AddEdge(0, leaf);
  b.AddEdge(1, 2).AddEdge(1, 3).AddEdge(1, 4);
  Graph g = b.Build();
  const auto seeds = SelectSeedsByDegree(g, 2);
  EXPECT_EQ(seeds, (std::vector<VertexId>{0, 1}));
}

// ----------------------------------------------------- Experiment harness

TEST(ContagionExperimentsTest, GroupsPartitionPositiveScoresAscending) {
  Graph g = HolmeKim(200, 4, 0.5, 12);
  std::vector<std::uint32_t> scores(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) scores[v] = v % 5;
  IndependentCascade ic(g, 0.02);
  const std::vector<VertexId> seeds = {0, 1, 2};
  const auto groups =
      ActivationRateByScoreGroup(ic, scores, 4, seeds, 50, 13);
  ASSERT_EQ(groups.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& group : groups) {
    EXPECT_LE(group.score_low, group.score_high);
    EXPECT_GE(group.score_low, 1u);
    total += group.num_vertices;
  }
  std::uint64_t positive = 0;
  for (auto s : scores) positive += s > 0;
  EXPECT_EQ(total, positive);
  for (std::size_t i = 1; i < groups.size(); ++i) {
    EXPECT_GE(groups[i].score_low, groups[i - 1].score_low);
  }
}

TEST(ContagionExperimentsTest, ExpectedActivatedBoundedByTargets) {
  Graph g = HolmeKim(300, 4, 0.5, 14);
  IndependentCascade ic(g, 0.05);
  const auto seeds = SelectSeedsByDegree(g, 10);
  std::vector<VertexId> targets;
  for (VertexId v = 100; v < 150; ++v) targets.push_back(v);
  const double expected = ExpectedActivatedTargets(ic, seeds, targets, 100, 15);
  EXPECT_GE(expected, 0.0);
  EXPECT_LE(expected, 50.0);
}

TEST(ContagionExperimentsTest, SeedTargetsActivateImmediately) {
  Graph g = PathGraph(10);
  IndependentCascade ic(g, 0.0);
  const std::vector<VertexId> seeds = {2, 4};
  const std::vector<VertexId> targets = {2, 4, 6};
  EXPECT_DOUBLE_EQ(ExpectedActivatedTargets(ic, seeds, targets, 10, 16), 2.0);
}

TEST(ContagionExperimentsTest, LatencyCurveIsNondecreasingAtFullSupport) {
  // With p = 1 every target activates in every run, so all ranks average
  // over the same runs and the curve must be monotone. (At small p the tail
  // ranks are observed only in unusually fast cascades, so global
  // monotonicity is not a property of the estimator.)
  Graph g = HolmeKim(400, 5, 0.5, 17);
  IndependentCascade ic(g, 1.0);
  const auto seeds = SelectSeedsByDegree(g, 5);
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < 60; ++v) targets.push_back(v * 6);
  const auto curve = ActivationLatencyCurve(ic, seeds, targets, 50, 18);
  ASSERT_EQ(curve.size(), targets.size());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1], curve[i] + 1e-9);
  }
}

TEST(ContagionExperimentsTest, LatencyCurveDeterministicPathGraph) {
  Graph g = PathGraph(5);
  IndependentCascade ic(g, 1.0);
  const std::vector<VertexId> seeds = {0};
  const std::vector<VertexId> targets = {1, 2, 3, 4};
  const auto curve = ActivationLatencyCurve(ic, seeds, targets, 10, 19);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0], 1.0);
  EXPECT_DOUBLE_EQ(curve[3], 4.0);
}

TEST(ContagionExperimentsTest, CenterActivationProbabilityInUnitInterval) {
  Graph g = PaperFigure1Graph();
  const double p = CenterActivationProbability(g, 0, 5, 0.05, 2000, 20);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  // With 5 active neighbors at p=0.05, the center activates with
  // probability >= 1-(1-p)^5 (its direct-seed exposure alone).
  EXPECT_GE(p, 1 - std::pow(1 - 0.05, 5) - 0.03);
}

TEST(ContagionExperimentsTest, CenterActivationIsCertainAtP1) {
  Graph g = PaperFigure1Graph();
  EXPECT_DOUBLE_EQ(CenterActivationProbability(g, 0, 3, 1.0, 50, 21), 1.0);
}

}  // namespace
}  // namespace tsd
