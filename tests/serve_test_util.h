// Shared reply-comparison helpers for the serving-layer suites
// (serve_test.cc, sharded_serve_test.cc): "bit-identical to serial TopR"
// means vertex, score, AND contexts match rank for rank.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "core/types.h"

namespace tsd {
namespace test {

inline void ExpectSameEntries(const TopRResult& expected,
                              const TopRResult& actual,
                              const std::string& label) {
  ASSERT_EQ(expected.entries.size(), actual.entries.size()) << label;
  for (std::size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_EQ(expected.entries[i].vertex, actual.entries[i].vertex)
        << label << " rank=" << i;
    EXPECT_EQ(expected.entries[i].score, actual.entries[i].score)
        << label << " rank=" << i;
    EXPECT_EQ(expected.entries[i].contexts, actual.entries[i].contexts)
        << label << " rank=" << i;
  }
}

/// Bool-returning flavor for worker threads, where gtest assertions cannot
/// fail the test directly.
inline bool SameEntries(const TopRResult& a, const TopRResult& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    if (a.entries[i].vertex != b.entries[i].vertex ||
        a.entries[i].score != b.entries[i].score ||
        a.entries[i].contexts != b.entries[i].contexts) {
      return false;
    }
  }
  return true;
}

}  // namespace test
}  // namespace tsd
