// Unit tests for src/common: bitmap, disjoint set, bucket queue, rng,
// strings, table printer, flags, serialization, check macros, and the
// serving substrate (MPSC queue + future/promise).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bitmap.h"
#include "common/bucket_queue.h"
#include "common/check.h"
#include "common/disjoint_set.h"
#include "common/flags.h"
#include "common/future.h"
#include "common/mpsc_queue.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/strings.h"
#include "common/table.h"

namespace tsd {
namespace {

// ---------------------------------------------------------------- Check

TEST(CheckTest, PassingCheckDoesNothing) { TSD_CHECK(1 + 1 == 2); }

TEST(CheckTest, FailingCheckThrowsCheckError) {
  EXPECT_THROW(TSD_CHECK(false), CheckError);
}

TEST(CheckTest, FailingCheckMessageIncludesCondition) {
  try {
    TSD_CHECK_MSG(2 > 3, "math is broken: " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("2 > 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("math is broken: 42"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------- Bitmap

TEST(BitmapTest, SetTestClear) {
  Bitmap b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.CountOnes(), 3u);
}

TEST(BitmapTest, ResizeClearsBits) {
  Bitmap b(10);
  b.Set(3);
  b.Resize(20);
  EXPECT_FALSE(b.Test(3));
  EXPECT_EQ(b.CountOnes(), 0u);
}

TEST(BitmapTest, AndPopcountMatchesManualIntersection) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t size = 1 + rng() % 300;
    Bitmap a(size);
    Bitmap b(size);
    std::vector<char> va(size, 0);
    std::vector<char> vb(size, 0);
    for (std::size_t i = 0; i < size; ++i) {
      if (rng() % 2) {
        a.Set(i);
        va[i] = 1;
      }
      if (rng() % 3 == 0) {
        b.Set(i);
        vb[i] = 1;
      }
    }
    std::size_t expected = 0;
    for (std::size_t i = 0; i < size; ++i) expected += va[i] && vb[i];
    EXPECT_EQ(a.AndPopcount(b), expected);
    EXPECT_EQ(b.AndPopcount(a), expected);
  }
}

TEST(BitmapTest, ForEachCommonBitVisitsExactIntersectionAscending) {
  Bitmap a(200);
  Bitmap b(200);
  for (std::size_t i : {3u, 64u, 65u, 127u, 128u, 199u}) a.Set(i);
  for (std::size_t i : {3u, 65u, 128u, 150u}) b.Set(i);
  std::vector<std::size_t> visited;
  a.ForEachCommonBit(b, [&](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, (std::vector<std::size_t>{3, 65, 128}));
}

TEST(BitmapTest, ForEachSetBitAscending) {
  Bitmap a(100);
  for (std::size_t i : {0u, 63u, 64u, 99u}) a.Set(i);
  std::vector<std::size_t> visited;
  a.ForEachSetBit([&](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, (std::vector<std::size_t>{0, 63, 64, 99}));
}

// ---------------------------------------------------------------- DSU

TEST(DisjointSetTest, SingletonsAreDistinct) {
  DisjointSet dsu(4);
  EXPECT_EQ(dsu.NumSets(), 4u);
  EXPECT_FALSE(dsu.Connected(0, 1));
  EXPECT_EQ(dsu.SetSize(2), 1u);
}

TEST(DisjointSetTest, UnionMergesAndCounts) {
  DisjointSet dsu(6);
  EXPECT_TRUE(dsu.Union(0, 1));
  EXPECT_TRUE(dsu.Union(1, 2));
  EXPECT_FALSE(dsu.Union(0, 2));  // already merged
  EXPECT_TRUE(dsu.Connected(0, 2));
  EXPECT_EQ(dsu.SetSize(1), 3u);
  EXPECT_EQ(dsu.NumSets(), 4u);  // {0,1,2} {3} {4} {5}
}

TEST(DisjointSetTest, ResetRestoresSingletons) {
  DisjointSet dsu(3);
  dsu.Union(0, 2);
  dsu.Reset(5);
  EXPECT_EQ(dsu.NumSets(), 5u);
  EXPECT_FALSE(dsu.Connected(0, 2));
}

TEST(DisjointSetTest, RandomizedAgainstNaiveLabels) {
  std::mt19937 rng(11);
  const std::uint32_t n = 64;
  DisjointSet dsu(n);
  std::vector<std::uint32_t> label(n);
  std::iota(label.begin(), label.end(), 0U);
  for (int op = 0; op < 500; ++op) {
    const std::uint32_t a = rng() % n;
    const std::uint32_t b = rng() % n;
    const bool naive_distinct = label[a] != label[b];
    EXPECT_EQ(dsu.Union(a, b), naive_distinct);
    if (naive_distinct) {
      const std::uint32_t from = label[b];
      const std::uint32_t to = label[a];
      for (auto& l : label) {
        if (l == from) l = to;
      }
    }
    const std::uint32_t c = rng() % n;
    const std::uint32_t d = rng() % n;
    EXPECT_EQ(dsu.Connected(c, d), label[c] == label[d]);
  }
}

// ---------------------------------------------------------------- BucketQueue

TEST(BucketQueueTest, PopsInNondecreasingKeyOrder) {
  std::vector<std::uint32_t> keys = {5, 1, 3, 3, 0, 7};
  BucketQueue q(keys);
  std::vector<std::uint32_t> popped_keys;
  while (!q.Empty()) {
    const auto id = q.PopMin();
    popped_keys.push_back(q.Key(id));
  }
  EXPECT_TRUE(std::is_sorted(popped_keys.begin(), popped_keys.end()));
  EXPECT_EQ(popped_keys.size(), keys.size());
}

TEST(BucketQueueTest, DecreaseKeyMovesElementEarlier) {
  std::vector<std::uint32_t> keys = {4, 4, 4, 0};
  BucketQueue q(keys);
  EXPECT_EQ(q.PopMin(), 3u);
  q.DecreaseKeyClamped(1, 0);  // key 4 -> 3
  const auto next = q.PopMin();
  EXPECT_EQ(next, 1u);
  EXPECT_EQ(q.Key(1), 3u);
}

TEST(BucketQueueTest, ClampPreventsDecreaseBelowFloor) {
  std::vector<std::uint32_t> keys = {2, 5};
  BucketQueue q(keys);
  q.DecreaseKeyClamped(0, 2);  // key == floor: no-op
  EXPECT_EQ(q.Key(0), 2u);
  q.DecreaseKeyClamped(1, 2);
  EXPECT_EQ(q.Key(1), 4u);
}

// Regression test for the 32-bit capacity guard: Init's id loop and the
// pos_/order_/head_ arrays are all std::uint32_t, so element counts beyond
// 2^32 - 1 used to hang (the uint32 loop variable can never reach n) and
// truncate. The guard must fire instead. Allocating 2^32 keys is not
// unit-test material, so the guard is exercised through the same
// CheckCapacity entry point Init calls.
TEST(BucketQueueTest, CapacityGuardRejectsCountsBeyond32Bits) {
  EXPECT_EQ(BucketQueue::kMaxElements,
            std::numeric_limits<std::uint32_t>::max());
  EXPECT_NO_THROW(BucketQueue::CheckCapacity(0));
  EXPECT_NO_THROW(BucketQueue::CheckCapacity(BucketQueue::kMaxElements));
  EXPECT_THROW(BucketQueue::CheckCapacity(BucketQueue::kMaxElements + 1),
               CheckError);
  EXPECT_THROW(BucketQueue::CheckCapacity(std::size_t{1} << 33), CheckError);
}

// Simulates a peeling workload and checks against a naive priority model.
TEST(BucketQueueTest, RandomizedPeelingAgainstNaiveModel) {
  std::mt19937 rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint32_t n = 50;
    std::vector<std::uint32_t> keys(n);
    for (auto& k : keys) k = rng() % 12;
    BucketQueue q(keys);
    std::vector<std::uint32_t> naive = keys;
    std::vector<char> removed(n, 0);
    std::uint32_t level = 0;
    while (!q.Empty()) {
      // Naive min among live elements (ties: any); compare key values only.
      std::uint32_t naive_min = UINT32_MAX;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!removed[i]) naive_min = std::min(naive_min, naive[i]);
      }
      const auto id = q.PopMin();
      level = std::max(level, q.Key(id));
      EXPECT_EQ(q.Key(id), std::max(naive_min, level));
      removed[id] = 1;
      // Random decrements on a few live elements.
      for (int d = 0; d < 3; ++d) {
        const std::uint32_t target = rng() % n;
        if (removed[target]) continue;
        q.DecreaseKeyClamped(target, level);
        if (naive[target] > level) --naive[target];
      }
    }
  }
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) differences += a() != b();
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const auto x = rng.UniformInRange(5, 9);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 9u);
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyRoughlyMatchesP) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512B");
  EXPECT_EQ(HumanBytes(1536), "1.5KB");
  EXPECT_EQ(HumanBytes(34ull << 20), "34.0MB");
  EXPECT_EQ(HumanBytes(3ull << 30), "3.00GB");
}

TEST(StringsTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(0.0000005), "0.5us");
  EXPECT_EQ(HumanSeconds(0.0070), "7.0ms");
  EXPECT_EQ(HumanSeconds(4.9), "4.90s");
  EXPECT_EQ(HumanSeconds(600), "10.0min");
  EXPECT_EQ(HumanSeconds(9000), "2.50h");
}

TEST(StringsTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1624481), "1,624,481");
}

TEST(StringsTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a\tbb  ccc "),
            (std::vector<std::string>{"a", "bb", "ccc"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

// ---------------------------------------------------------------- Table

TEST(TableTest, AlignsColumns) {
  TablePrinter t({"Name", "Value"});
  t.Row("x", std::uint64_t{12345});
  t.Row("longer-name", 1.5);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| Name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
}

TEST(TableTest, RejectsWrongArity) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), CheckError);
}

// ---------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--k=4", "--name=gowalla", "--verbose",
                        "pos1"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("k", 0), 4);
  EXPECT_EQ(flags.GetString("name", ""), "gowalla");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"pos1"}));
  EXPECT_EQ(flags.GetInt("missing", 17), 17);
}

TEST(FlagsTest, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--k=abc"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_THROW(flags.GetInt("k", 0), CheckError);
}

// ---------------------------------------------------------------- Serialize

TEST(SerializeTest, RoundTripsPodsAndVectors) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsd_serialize_test.bin")
          .string();
  {
    BinaryWriter w(path);
    w.WriteHeader(0xABCD1234, 3);
    w.WritePod<std::uint64_t>(77);
    w.WriteVector(std::vector<std::uint32_t>{1, 2, 3});
    w.WriteVector(std::vector<std::uint32_t>{});
    w.Finish();
  }
  {
    BinaryReader r(path);
    r.ExpectHeader(0xABCD1234, 3);
    EXPECT_EQ(r.ReadPod<std::uint64_t>(), 77u);
    EXPECT_EQ(r.ReadVector<std::uint32_t>(),
              (std::vector<std::uint32_t>{1, 2, 3}));
    EXPECT_TRUE(r.ReadVector<std::uint32_t>().empty());
  }
  std::filesystem::remove(path);
}

TEST(SerializeTest, RejectsBadMagicAndTruncation) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsd_serialize_bad.bin")
          .string();
  {
    BinaryWriter w(path);
    w.WriteHeader(0x11111111, 1);
    w.Finish();
  }
  {
    BinaryReader r(path);
    EXPECT_THROW(r.ExpectHeader(0x22222222, 1), CheckError);
  }
  {
    BinaryReader r(path);
    r.ExpectHeader(0x11111111, 1);
    EXPECT_THROW(r.ReadPod<std::uint64_t>(), CheckError);  // truncated
  }
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------- MpscQueue

TEST(MpscQueueTest, FifoSingleProducer) {
  MpscQueue<int> queue;
  // The test body plays both roles; it is the only thread, so it may claim
  // the consumer capability for the thread-safety analysis.
  queue.AssertConsumer();
  EXPECT_TRUE(queue.Empty());
  for (int i = 0; i < 100; ++i) queue.Push(i);
  EXPECT_FALSE(queue.Empty());
  int value = -1;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.TryPop(&value));
    EXPECT_EQ(value, i);
  }
  EXPECT_FALSE(queue.TryPop(&value));
  EXPECT_TRUE(queue.Empty());
}

TEST(MpscQueueTest, MoveOnlyPayload) {
  MpscQueue<std::unique_ptr<int>> queue;
  queue.AssertConsumer();  // single-threaded test body
  queue.Push(std::make_unique<int>(42));
  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(MpscQueueTest, MultiProducerPreservesPerProducerOrder) {
  // 4 producers × 500 values; the consumer must see every value exactly
  // once and each producer's values in its push order. Runs under the TSan
  // CI job, so publication races fail loudly.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  MpscQueue<std::pair<int, int>> queue;  // (producer, sequence)
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) queue.Push({p, i});
    });
  }
  // The gtest main thread is the single consumer; producers only Push.
  queue.AssertConsumer();
  std::vector<int> next_expected(kProducers, 0);
  int popped = 0;
  std::pair<int, int> item;
  while (popped < kProducers * kPerProducer) {
    if (queue.TryPop(&item)) {
      EXPECT_EQ(item.second, next_expected[item.first])
          << "producer " << item.first;
      ++next_expected[item.first];
      ++popped;
    } else {
      queue.ConsumerWait([&] {
        queue.AssertConsumer();  // same thread; lambdas are analyzed alone
        return !queue.Empty();
      });
    }
  }
  for (std::thread& t : producers) t.join();
  EXPECT_FALSE(queue.TryPop(&item));
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer);
  }
}

// ---------------------------------------------------------------- Future

TEST(FutureTest, GetReturnsSetValue) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  EXPECT_FALSE(future.Ready());
  promise.Set(7);
  EXPECT_TRUE(future.Ready());
  EXPECT_EQ(future.Get(), 7);
}

TEST(FutureTest, GetBlocksUntilSetFromAnotherThread) {
  Promise<std::string> promise;
  Future<std::string> future = promise.GetFuture();
  std::thread producer([&promise] { promise.Set("done"); });
  EXPECT_EQ(future.Get(), "done");  // blocks until the producer sets
  producer.join();
}

TEST(FutureTest, MovesValueOut) {
  Promise<std::unique_ptr<int>> promise;
  Future<std::unique_ptr<int>> future = promise.GetFuture();
  promise.Set(std::make_unique<int>(9));
  std::unique_ptr<int> value = future.Get();
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 9);
}

TEST(FutureTest, AbandonedPromiseFailsGetLoudly) {
  Future<int> future;
  {
    Promise<int> promise;
    future = promise.GetFuture();
  }  // destroyed unfulfilled
  EXPECT_THROW(future.Get(), CheckError);
}

TEST(MpscQueueTest, NotifyParkTortureExercisesDekkerFastPath) {
  // Torture for the consumer_parked_ Dekker handshake: the consumer cycles
  // park/unpark thousands of times (it waits on every empty observation)
  // while producers interleave pushes with yields, and a dedicated notifier
  // thread hammers NotifyOne() the whole time — so both NotifyOne paths run
  // hot concurrently: the not-parked fast path (seq_cst fence + relaxed
  // load, no mutex) and the parked mutex handoff. Run under the TSan CI
  // job; a lost wakeup hangs the test, a publication race trips TSan.
  // Every value must arrive exactly once, per-producer FIFO.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2500;
  MpscQueue<std::pair<int, int>> queue;  // (producer, sequence)
  std::atomic<int> producers_done{0};
  std::atomic<bool> stop_notifier{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &producers_done, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.Push({p, i});
        // Give the consumer a window to drain and park again, so pushes
        // land on parked AND unparked consumers across the run.
        if ((i & 63) == 0) std::this_thread::yield();
      }
      producers_done.fetch_add(1);
    });
  }
  std::thread notifier([&queue, &stop_notifier] {
    while (!stop_notifier.load()) {
      queue.NotifyOne();  // mostly hits the not-parked fast path
      std::this_thread::yield();
    }
  });

  // The gtest main thread is the single consumer; producers and the
  // notifier never touch the consumer side.
  queue.AssertConsumer();
  std::vector<int> next_expected(kProducers, 0);
  int popped = 0;
  std::pair<int, int> item;
  while (popped < kProducers * kPerProducer) {
    if (queue.TryPop(&item)) {
      ASSERT_EQ(item.second, next_expected[item.first])
          << "producer " << item.first;
      ++next_expected[item.first];
      ++popped;
    } else {
      queue.ConsumerWait([&] {
        queue.AssertConsumer();  // same thread; lambdas are analyzed alone
        return !queue.Empty() || producers_done.load() == kProducers;
      });
    }
  }
  stop_notifier.store(true);
  for (std::thread& t : producers) t.join();
  notifier.join();
  EXPECT_FALSE(queue.TryPop(&item));
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer);
  }
}

TEST(FutureTest, AbandonRacesBlockedGet) {
  // A promise abandoned (destroyed unfulfilled) WHILE the consumer is
  // inside Get() must turn the wait into a hard CheckError, never a hang or
  // a use-after-free of the state's cv — the getter holds the state alive
  // through a shared_ptr it consumed before blocking. Alternate fulfil and
  // abandon across iterations so both outcomes race a concurrent Get.
  for (int iter = 0; iter < 300; ++iter) {
    std::optional<Promise<int>> promise;
    promise.emplace();
    Future<int> future = promise->GetFuture();
    std::atomic<int> outcome{0};
    std::thread getter([&future, &outcome] {
      try {
        outcome.store(future.Get());
      } catch (const CheckError&) {
        outcome.store(-1);
      }
    });
    if ((iter & 1) == 0) {
      promise.reset();  // abandon: races the getter entering wait()
    } else {
      promise->Set(iter);
    }
    getter.join();
    EXPECT_EQ(outcome.load(), (iter & 1) == 0 ? -1 : iter);
  }
}

TEST(FutureTest, MoveAssignAbandonRacesBlockedGet) {
  // Same race through the move-assignment abandon path (the PR 4 review
  // fix): assigning a fresh promise over an engaged one must wake and fail
  // a Get() that is concurrently blocked on the old state.
  for (int iter = 0; iter < 200; ++iter) {
    Promise<int> promise;
    Future<int> future = promise.GetFuture();
    std::atomic<bool> failed{false};
    std::thread getter([&future, &failed] {
      try {
        future.Get();
      } catch (const CheckError&) {
        failed.store(true);
      }
    });
    promise = Promise<int>();  // abandons the old state mid-Get
    getter.join();
    EXPECT_TRUE(failed.load());
  }
}

TEST(FutureTest, OnReadyFiresOnceOnSetAndDoesNotConsumeValue) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  std::atomic<int> fired{0};
  future.OnReady([&fired] { fired.fetch_add(1); });
  EXPECT_EQ(fired.load(), 0);  // not before fulfillment
  promise.Set(21);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(future.Ready());  // the hook observed, it did not consume
  EXPECT_EQ(future.Get(), 21);
}

TEST(FutureTest, OnReadyAfterResolutionFiresInline) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  promise.Set(5);
  bool fired = false;
  future.OnReady([&fired] { fired = true; });
  EXPECT_TRUE(fired);  // ran inline, before OnReady returned
  EXPECT_EQ(future.Get(), 5);
}

TEST(FutureTest, OnReadyFiresOnAbandonment) {
  // The epoll server parks futures behind an eventfd hook; a consumer that
  // dies without answering must still wake the loop, which then surfaces
  // the abandonment through Get().
  std::optional<Promise<int>> promise;
  promise.emplace();
  Future<int> future = promise->GetFuture();
  bool fired = false;
  future.OnReady([&fired] { fired = true; });
  promise.reset();
  EXPECT_TRUE(fired);
  EXPECT_THROW(future.Get(), CheckError);
}

TEST(FutureTest, OnReadyReregistrationReplacesUnfiredHook) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  future.OnReady([&first] { first.fetch_add(1); });
  future.OnReady([&second] { second.fetch_add(1); });  // replaces, not adds
  promise.Set(1);
  EXPECT_EQ(first.load(), 0);
  EXPECT_EQ(second.load(), 1);
}

TEST(FutureTest, OnReadyRacesSetFromAnotherThread) {
  // Whichever side wins the race, the hook must fire exactly once — either
  // inline (Set got there first) or on the setting thread.
  for (int iter = 0; iter < 300; ++iter) {
    Promise<int> promise;
    Future<int> future = promise.GetFuture();
    std::atomic<int> fired{0};
    std::thread setter([&promise, iter] { promise.Set(iter); });
    future.OnReady([&fired] { fired.fetch_add(1); });
    setter.join();
    EXPECT_EQ(fired.load(), 1) << "iter " << iter;
    EXPECT_EQ(future.Get(), iter);
  }
}

TEST(FutureTest, MoveAssignmentAbandonsOldState) {
  // Move-assigning over an engaged, unfulfilled promise must abandon the
  // old state (hard Get() failure), not silently drop it and hang a waiter.
  Promise<int> promise;
  Future<int> old_future = promise.GetFuture();
  Promise<int> replacement;
  Future<int> new_future = replacement.GetFuture();
  promise = std::move(replacement);
  EXPECT_THROW(old_future.Get(), CheckError);
  promise.Set(11);  // the adopted state still works normally
  EXPECT_EQ(new_future.Get(), 11);
}

}  // namespace
}  // namespace tsd
