// Unit tests for the CSR graph, builder, and edge-list I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>

#include "common/check.h"
#include "graph/edge_list_io.h"
#include "graph/graph.h"

namespace tsd {
namespace {

TEST(GraphBuilderTest, EmptyGraph) {
  Graph g = GraphBuilder().Build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilderTest, IsolatedVerticesViaEnsureVertices) {
  GraphBuilder b;
  b.EnsureVertices(5);
  Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(GraphBuilderTest, DeduplicatesAndDropsSelfLoops) {
  GraphBuilder b;
  b.AddEdge(0, 1).AddEdge(1, 0).AddEdge(0, 1).AddEdge(2, 2).AddEdge(1, 2);
  Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(2, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, NeighborsSortedAndDegreesCorrect) {
  // Star plus an extra edge.
  Graph g = Graph::FromEdges({{3, 0}, {1, 0}, {0, 2}, {2, 3}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.degree(0), 3u);
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(std::vector<VertexId>(nbrs.begin(), nbrs.end()),
            (std::vector<VertexId>{1, 2, 3}));
}

TEST(GraphTest, EdgeIdsConsistentAcrossDirections) {
  Graph g = Graph::FromEdges({{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto eids = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Edge& e = g.edge(eids[i]);
      EXPECT_TRUE((e.u == v && e.v == nbrs[i]) ||
                  (e.v == v && e.u == nbrs[i]));
      EXPECT_LT(e.u, e.v);
    }
  }
}

TEST(GraphTest, FindEdgeMatchesHasEdge) {
  std::mt19937 rng(5);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (int i = 0; i < 200; ++i) {
    edges.emplace_back(rng() % 40, rng() % 40);
  }
  Graph g = Graph::FromEdges(edges, 40);
  for (VertexId u = 0; u < 40; ++u) {
    for (VertexId v = 0; v < 40; ++v) {
      const EdgeId e = g.FindEdge(u, v);
      EXPECT_EQ(e != kInvalidEdge, g.HasEdge(u, v));
      if (e != kInvalidEdge) {
        EXPECT_EQ(g.edge(e).u, std::min(u, v));
        EXPECT_EQ(g.edge(e).v, std::max(u, v));
      }
    }
  }
}

TEST(GraphTest, EdgesSortedByEndpoints) {
  Graph g = Graph::FromEdges({{5, 2}, {1, 0}, {3, 1}, {2, 0}});
  const auto& edges = g.edges();
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
}

TEST(GraphTest, MaxDegree) {
  Graph g = Graph::FromEdges({{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(GraphTest, OffsetsSpanConsistent) {
  Graph g = Graph::FromEdges({{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const auto offsets = g.offsets();
  ASSERT_EQ(offsets.size(), g.num_vertices() + 1u);
  EXPECT_EQ(offsets.back(), 2ull * g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(offsets[v + 1] - offsets[v], g.degree(v));
  }
}

// ---------------------------------------------------------------- I/O

class EdgeListIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }
};

TEST_F(EdgeListIoTest, TextRoundTrip) {
  Graph g = Graph::FromEdges({{0, 1}, {1, 2}, {0, 2}, {3, 4}}, 6);
  const std::string path = TempPath("tsd_graph_io.txt");
  SaveEdgeListText(g, path);
  Graph loaded = LoadEdgeListText(path);
  // Text format does not carry isolated trailing vertices (vertex 5).
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) EXPECT_TRUE(loaded.HasEdge(e.u, e.v));
  std::filesystem::remove(path);
}

TEST_F(EdgeListIoTest, ParsesSnapStyleCommentsAndWhitespace) {
  const std::string path = TempPath("tsd_graph_snap.txt");
  {
    std::ofstream out(path);
    out << "# Directed graph (each unordered pair of nodes is saved once)\n"
        << "% another comment style\n"
        << "\n"
        << "0\t1\n"
        << "  2   3  \n"
        << "1 2\n";
  }
  Graph g = LoadEdgeListText(path);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_TRUE(g.HasEdge(1, 2));
  std::filesystem::remove(path);
}

TEST_F(EdgeListIoTest, RejectsGarbageLines) {
  const std::string path = TempPath("tsd_graph_bad.txt");
  {
    std::ofstream out(path);
    out << "0 notanumber\n";
  }
  EXPECT_THROW(LoadEdgeListText(path), CheckError);
  std::filesystem::remove(path);
}

// Regression: "1 2x7" used to load silently as the edge (1, 2) — any
// non-numeric tail after the second id was ignored. Such lines must fail
// with a line-numbered parse error now.
TEST_F(EdgeListIoTest, RejectsTrailingGarbageAfterIds) {
  const std::string path = TempPath("tsd_graph_trailing.txt");
  for (const char* line : {"1 2x7", "1 2 junk", "1 2 3 4", "1 2 1.5suffix"}) {
    {
      std::ofstream out(path);
      out << "0 1\n" << line << "\n";
    }
    try {
      LoadEdgeListText(path);
      FAIL() << "accepted malformed line: '" << line << "'";
    } catch (const CheckError& e) {
      // The error names the file and the 1-based offending line.
      EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos)
          << e.what();
    }
  }
  std::filesystem::remove(path);
}

// An optional numeric third column (edge weight) stays loadable — weighted
// SNAP exports are common — but the weight itself is ignored.
TEST_F(EdgeListIoTest, AcceptsOptionalWeightColumn) {
  const std::string path = TempPath("tsd_graph_weighted.txt");
  {
    std::ofstream out(path);
    out << "# weighted graph\n"
        << "0 1 0.25\n"
        << "1 2 17\n"
        << "2 3 -3.5e2\n"
        << "3 4\t1.0\r\n";
  }
  const Graph g = LoadEdgeListText(path);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_TRUE(g.HasEdge(3, 4));
  std::filesystem::remove(path);
}

TEST_F(EdgeListIoTest, MissingFileThrows) {
  EXPECT_THROW(LoadEdgeListText("/nonexistent/really/not/here.txt"),
               CheckError);
}

TEST_F(EdgeListIoTest, BinaryRoundTripPreservesIsolatedVertices) {
  Graph g = Graph::FromEdges({{0, 1}, {1, 2}, {4, 5}}, 9);
  const std::string path = TempPath("tsd_graph_io.bin");
  SaveGraphBinary(g, path);
  Graph loaded = LoadGraphBinary(path);
  EXPECT_EQ(loaded.num_vertices(), 9u);
  EXPECT_EQ(loaded.num_edges(), 3u);
  for (const Edge& e : g.edges()) EXPECT_TRUE(loaded.HasEdge(e.u, e.v));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tsd
