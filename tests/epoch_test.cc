// Tests for the epoch-based reclamation substrate (common/epoch.h): grace
// period accounting, pin/advance interaction, slot pooling, and a
// multithreaded pointer-swap stress that the sanitizer CI matrix (ASan,
// TSan) turns into a use-after-free / data-race detector.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/epoch.h"

namespace tsd {
namespace {

struct Tracked {
  explicit Tracked(std::atomic<int>& counter) : alive(&counter) {
    alive->fetch_add(1);
  }
  ~Tracked() { alive->fetch_sub(1); }
  std::atomic<int>* alive;
};

TEST(EpochManagerTest, RetireFreesOnlyAfterGracePeriod) {
  EpochManager epochs;
  // Single-threaded test body: this thread is trivially the serialized
  // writer.
  epochs.AssertWriter();
  std::atomic<int> alive{0};
  epochs.Retire(new Tracked(alive));
  EXPECT_EQ(alive.load(), 1);
  EXPECT_EQ(epochs.limbo_size(), 1u);

  // Retired at epoch 0 -> freed when bucket 0 expires, i.e. at the 2 -> 3
  // advance (two full grace periods later).
  EXPECT_TRUE(epochs.TryAdvance());
  EXPECT_EQ(alive.load(), 1);
  EXPECT_TRUE(epochs.TryAdvance());
  EXPECT_EQ(alive.load(), 1);
  EXPECT_TRUE(epochs.TryAdvance());
  EXPECT_EQ(alive.load(), 0);
  EXPECT_EQ(epochs.limbo_size(), 0u);

  const EpochStats stats = epochs.stats();
  EXPECT_EQ(stats.epoch, 3u);
  EXPECT_EQ(stats.advances, 3u);
  EXPECT_EQ(stats.retired, 1u);
  EXPECT_EQ(stats.freed, 1u);
}

TEST(EpochManagerTest, DestructorFreesLimbo) {
  std::atomic<int> alive{0};
  {
    EpochManager epochs;
    epochs.AssertWriter();  // single-threaded test body
    epochs.Retire(new Tracked(alive));
    epochs.Retire(new Tracked(alive));
    EXPECT_EQ(alive.load(), 2);
  }
  EXPECT_EQ(alive.load(), 0);
}

TEST(EpochManagerTest, PinnedReaderBlocksAdvance) {
  EpochManager epochs;
  epochs.AssertWriter();  // single-threaded test body
  EpochManager::ReaderSlot* slot = epochs.AcquireSlot();
  epochs.Pin(slot);
  EXPECT_FALSE(epochs.TryAdvance());
  EXPECT_EQ(epochs.epoch(), 0u);
  EXPECT_GE(epochs.stats().stalled_advances, 1u);
  epochs.Unpin(slot);
  EXPECT_TRUE(epochs.TryAdvance());
  EXPECT_EQ(epochs.epoch(), 1u);

  // A reader pinned to a *stale* epoch blocks too: re-pin is required to
  // observe the new epoch.
  epochs.Pin(slot);
  EXPECT_FALSE(epochs.TryAdvance());
  epochs.Unpin(slot);
  epochs.ReleaseSlot(slot);
  EXPECT_TRUE(epochs.TryAdvance());
}

TEST(EpochManagerTest, SlotsArePooled) {
  EpochManager epochs;
  EpochManager::ReaderSlot* a = epochs.AcquireSlot();
  epochs.ReleaseSlot(a);
  EpochManager::ReaderSlot* b = epochs.AcquireSlot();
  EXPECT_EQ(a, b);  // reused, not reallocated
  EpochManager::ReaderSlot* c = epochs.AcquireSlot();
  EXPECT_NE(b, c);  // b still in use: a second slot is created
  epochs.ReleaseSlot(b);
  epochs.ReleaseSlot(c);
  EXPECT_EQ(epochs.stats().reader_slots, 2u);
}

TEST(EpochManagerTest, GuardPinsForScope) {
  EpochManager epochs;
  epochs.AssertWriter();  // single-threaded test body
  {
    EpochGuard guard(epochs);
    EXPECT_FALSE(epochs.TryAdvance());
  }
  EXPECT_TRUE(epochs.TryAdvance());
}

// The canonical EBR usage: a writer atomically swaps a published node and
// retires the old one while readers chase the pointer under a guard. ASan
// fails this on any premature free; TSan on any unsynchronized access. The
// generation counter inside the node lets readers assert they never observe
// a torn or reclaimed payload even in a plain build.
TEST(EpochStressTest, ConcurrentReadersNeverSeeReclaimedMemory) {
  struct Node {
    explicit Node(std::uint64_t g) : generation(g), check(~g) {}
    std::uint64_t generation;
    std::uint64_t check;  // ~generation; corrupted reads fail the invariant
  };

  EpochManager epochs;
  std::atomic<Node*> head{new Node(0)};
  std::atomic<bool> stop{false};
  constexpr int kReaders = 4;
  constexpr std::uint64_t kUpdates = 20000;

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last_seen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        EpochGuard guard(epochs);
        const Node* node = head.load(std::memory_order_acquire);
        const std::uint64_t g = node->generation;
        ASSERT_EQ(node->check, ~g);       // payload intact (no reclaim)
        ASSERT_GE(g, last_seen);          // generations move forward
        ASSERT_LE(g, kUpdates);
        last_seen = g;
      }
    });
  }

  {
    // Writer side: this thread is the only one calling Retire/TryAdvance
    // for the whole test, which is exactly the serialized-writer contract.
    epochs.AssertWriter();
    for (std::uint64_t g = 1; g <= kUpdates; ++g) {
      Node* fresh = new Node(g);
      Node* old = head.exchange(fresh, std::memory_order_acq_rel);
      epochs.Retire(old);
      epochs.TryAdvance();  // opportunistic; failure just defers the free
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  const EpochStats stats = epochs.stats();
  EXPECT_EQ(stats.retired, kUpdates);
  EXPECT_LE(stats.freed, stats.retired);
  delete head.load();
  // Whatever is still in limbo is freed by the manager's destructor; the
  // Tracked-based tests above pin down that behaviour exactly.
}

}  // namespace
}  // namespace tsd
