// Tests for triangle listing, truss decomposition, core decomposition, and
// k-truss / k-core component extraction — validated on known graphs (cliques,
// cycles, the paper's Figure 1 / Figure 2 example) and against the naive
// reference implementations on random graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "graph/graph.h"
#include "reference_impls.h"
#include "truss/core_decomposition.h"
#include "truss/k_truss.h"
#include "graph/triangle.h"
#include "truss/truss_decomposition.h"

namespace tsd {
namespace {

Graph Clique(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph::FromEdges(std::move(edges), n);
}

Graph Cycle(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < n; ++u) edges.emplace_back(u, (u + 1) % n);
  return Graph::FromEdges(std::move(edges), n);
}

// ---------------------------------------------------------------- Triangles

TEST(TriangleTest, CliqueCount) {
  // C(n,3) triangles in K_n.
  EXPECT_EQ(CountTriangles(Clique(4)), 4u);
  EXPECT_EQ(CountTriangles(Clique(5)), 10u);
  EXPECT_EQ(CountTriangles(Clique(10)), 120u);
}

TEST(TriangleTest, TriangleFreeGraphs) {
  EXPECT_EQ(CountTriangles(Cycle(5)), 0u);
  EXPECT_EQ(CountTriangles(Cycle(8)), 0u);
  // Star graphs have no triangles.
  Graph star = Graph::FromEdges({{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(CountTriangles(star), 0u);
}

TEST(TriangleTest, SupportMatchesNaiveOnRandomGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Graph g = ErdosRenyi(30, 120, seed);
    EXPECT_EQ(ComputeSupport(g), testing::NaiveSupport(g)) << "seed " << seed;
    EXPECT_EQ(CountTriangles(g), testing::NaiveTriangleCount(g));
  }
}

TEST(TriangleTest, ForEachTriangleReportsConsistentEdgeIds) {
  Graph g = ErdosRenyi(25, 90, 7);
  std::uint64_t count = 0;
  ForEachTriangle(g, [&](VertexId u, VertexId v, VertexId w, EdgeId e_uv,
                         EdgeId e_uw, EdgeId e_vw) {
    EXPECT_EQ(g.FindEdge(u, v), e_uv);
    EXPECT_EQ(g.FindEdge(u, w), e_uw);
    EXPECT_EQ(g.FindEdge(v, w), e_vw);
    ++count;
  });
  EXPECT_EQ(count, CountTriangles(g));
}

TEST(TriangleTest, TrianglesPerVertexSumsToThreeT) {
  Graph g = HolmeKim(300, 4, 0.5, 11);
  const auto per_vertex = TrianglesPerVertex(g);
  std::uint64_t sum = 0;
  for (auto c : per_vertex) sum += c;
  EXPECT_EQ(sum, 3 * CountTriangles(g));
}

// -------------------------------------------------------- Truss decomposition

TEST(TrussDecompositionTest, CliqueTrussnessIsN) {
  for (VertexId n : {3u, 4u, 5u, 7u}) {
    TrussDecomposition td(Clique(n));
    for (EdgeId e = 0; e < Clique(n).num_edges(); ++e) {
      EXPECT_EQ(td.trussness(e), n) << "K_" << n;
    }
    EXPECT_EQ(td.max_trussness(), n);
  }
}

TEST(TrussDecompositionTest, TriangleFreeGraphTrussnessIsTwo) {
  Graph g = Cycle(10);
  TrussDecomposition td(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(td.trussness(e), 2u);
}

// Figure 2 of the paper: supports and trussness inside H1 (two 4-cliques
// {x1..x4}, {y1..y4} bridged by (x2,y1), (x4,y1)).
TEST(TrussDecompositionTest, PaperFigure2SupportsAndTrussness) {
  GraphBuilder b;
  // x1..x4 = 0..3, y1..y4 = 4..7.
  for (VertexId u = 0; u < 4; ++u)
    for (VertexId v = u + 1; v < 4; ++v) b.AddEdge(u, v);
  for (VertexId u = 4; u < 8; ++u)
    for (VertexId v = u + 1; v < 8; ++v) b.AddEdge(u, v);
  b.AddEdge(1, 4);  // (x2, y1)
  b.AddEdge(3, 4);  // (x4, y1)
  Graph h1 = b.Build();

  const auto support = ComputeSupport(h1);
  // (x2,x4) gains a third triangle through y1.
  EXPECT_EQ(support[h1.FindEdge(1, 3)], 3u);
  EXPECT_EQ(support[h1.FindEdge(1, 4)], 1u);
  EXPECT_EQ(support[h1.FindEdge(3, 4)], 1u);
  EXPECT_EQ(support[h1.FindEdge(0, 1)], 2u);
  EXPECT_EQ(support[h1.FindEdge(4, 5)], 2u);

  TrussDecomposition td(h1);
  // Bridges have trussness 3, clique edges 4 (Figure 2(b)).
  EXPECT_EQ(td.trussness(h1.FindEdge(1, 4)), 3u);
  EXPECT_EQ(td.trussness(h1.FindEdge(3, 4)), 3u);
  EXPECT_EQ(td.trussness(h1.FindEdge(0, 1)), 4u);
  EXPECT_EQ(td.trussness(h1.FindEdge(1, 3)), 4u);
  EXPECT_EQ(td.trussness(h1.FindEdge(4, 7)), 4u);
  EXPECT_EQ(td.max_trussness(), 4u);
}

TEST(TrussDecompositionTest, MatchesNaiveOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = ErdosRenyi(24, 100, seed);
    TrussDecomposition td(g);
    EXPECT_EQ(td.edge_trussness(), testing::NaiveTrussness(g))
        << "seed " << seed;
  }
}

TEST(TrussDecompositionTest, MatchesNaiveOnClusteredGraphs) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = HolmeKim(60, 5, 0.7, seed);
    TrussDecomposition td(g);
    EXPECT_EQ(td.edge_trussness(), testing::NaiveTrussness(g))
        << "seed " << seed;
  }
}

TEST(TrussDecompositionTest, KTrussSubgraphHasMinSupportInvariant) {
  // Property: inside the k-truss subgraph, every edge has support >= k-2.
  Graph g = HolmeKim(200, 5, 0.6, 3);
  TrussDecomposition td(g);
  for (std::uint32_t k = 3; k <= td.max_trussness(); ++k) {
    Graph truss = KTrussSubgraph(g, td.edge_trussness(), k);
    const auto support = ComputeSupport(truss);
    for (EdgeId e = 0; e < truss.num_edges(); ++e) {
      EXPECT_GE(support[e] + 2, k);
    }
  }
}

TEST(TrussDecompositionTest, VertexTrussnessIsMaxIncident) {
  Graph g = ErdosRenyi(40, 150, 9);
  TrussDecomposition td(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::uint32_t expected = 0;
    for (EdgeId e : g.incident_edges(v)) {
      expected = std::max(expected, td.trussness(e));
    }
    EXPECT_EQ(td.vertex_trussness(v), expected);
  }
}

TEST(TrussDecompositionTest, HistogramSumsToEdgeCount) {
  Graph g = HolmeKim(500, 6, 0.5, 4);
  TrussDecomposition td(g);
  const auto histogram = td.TrussnessHistogram();
  std::uint64_t total = 0;
  for (auto c : histogram) total += c;
  EXPECT_EQ(total, g.num_edges());
  EXPECT_EQ(histogram[0], 0u);
  EXPECT_EQ(histogram[1], 0u);
}

// -------------------------------------------------------- Core decomposition

TEST(CoreDecompositionTest, CliqueCoreIsNMinusOne) {
  CoreDecomposition cd(Clique(6));
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(cd.core(v), 5u);
}

TEST(CoreDecompositionTest, MatchesNaiveOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Graph g = ErdosRenyi(40, 140, seed);
    CoreDecomposition cd(g);
    EXPECT_EQ(cd.core_numbers(), testing::NaiveCoreNumbers(g))
        << "seed " << seed;
  }
}

TEST(CoreDecompositionTest, IsolatedVertexHasCoreZero) {
  Graph g = Graph::FromEdges({{0, 1}, {1, 2}, {0, 2}}, 5);
  CoreDecomposition cd(g);
  EXPECT_EQ(cd.core(4), 0u);
  EXPECT_EQ(cd.core(0), 2u);
}

// ------------------------------------------------- Components / k-trusses

TEST(KTrussTest, MaximalConnectedKTrussesOnTwoCliques) {
  // Two disjoint K4s joined by a single edge.
  GraphBuilder b;
  for (VertexId u = 0; u < 4; ++u)
    for (VertexId v = u + 1; v < 4; ++v) b.AddEdge(u, v);
  for (VertexId u = 4; u < 8; ++u)
    for (VertexId v = u + 1; v < 8; ++v) b.AddEdge(u, v);
  b.AddEdge(3, 4);
  Graph g = b.Build();
  TrussDecomposition td(g);

  const auto trusses4 = MaximalConnectedKTrusses(g, td.edge_trussness(), 4);
  ASSERT_EQ(trusses4.size(), 2u);
  EXPECT_EQ(trusses4[0], (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(trusses4[1], (std::vector<VertexId>{4, 5, 6, 7}));

  // At k=2 the bridge joins everything.
  const auto trusses2 = MaximalConnectedKTrusses(g, td.edge_trussness(), 2);
  ASSERT_EQ(trusses2.size(), 1u);
  EXPECT_EQ(trusses2[0].size(), 8u);
}

TEST(KTrussTest, KTrussEdgesCountsMatchHistogram) {
  Graph g = HolmeKim(300, 5, 0.6, 8);
  TrussDecomposition td(g);
  const auto histogram = td.TrussnessHistogram();
  for (std::uint32_t k = 2; k <= td.max_trussness(); ++k) {
    std::uint64_t expected = 0;
    for (std::uint32_t t = k; t < histogram.size(); ++t) {
      expected += histogram[t];
    }
    EXPECT_EQ(KTrussEdges(g, td.edge_trussness(), k).size(), expected);
  }
}

TEST(KTrussTest, MaximalConnectedKCores) {
  // K5 and K3 joined by a path; 4-core = the K5 only.
  GraphBuilder b;
  for (VertexId u = 0; u < 5; ++u)
    for (VertexId v = u + 1; v < 5; ++v) b.AddEdge(u, v);
  b.AddEdge(4, 5).AddEdge(5, 6).AddEdge(6, 7).AddEdge(7, 8).AddEdge(6, 8);
  Graph g = b.Build();
  CoreDecomposition cd(g);
  const auto cores4 = MaximalConnectedKCores(g, cd.core_numbers(), 4);
  ASSERT_EQ(cores4.size(), 1u);
  EXPECT_EQ(cores4[0], (std::vector<VertexId>{0, 1, 2, 3, 4}));
  // Every vertex (including the path vertex 5) has degree >= 2, so the
  // whole graph is one connected 2-core.
  const auto cores2 = MaximalConnectedKCores(g, cd.core_numbers(), 2);
  ASSERT_EQ(cores2.size(), 1u);
  EXPECT_EQ(cores2[0].size(), 9u);
  // At k=3 only the K5 survives (the triangle {6,7,8} is a 2-core).
  const auto cores3 = MaximalConnectedKCores(g, cd.core_numbers(), 3);
  ASSERT_EQ(cores3.size(), 1u);
  EXPECT_EQ(cores3[0], (std::vector<VertexId>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(MaximalConnectedKCores(g, cd.core_numbers(), 5).empty());
}

TEST(KTrussTest, ComponentsOfMinSize) {
  // Components of size 4, 3, 2, 1.
  Graph g = Graph::FromEdges(
      {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {7, 8}}, 10);
  EXPECT_EQ(ComponentsOfMinSize(g, 2).size(), 3u);
  EXPECT_EQ(ComponentsOfMinSize(g, 3).size(), 2u);
  EXPECT_EQ(ComponentsOfMinSize(g, 4).size(), 1u);
  EXPECT_EQ(ComponentsOfMinSize(g, 5).size(), 0u);
}

}  // namespace
}  // namespace tsd
