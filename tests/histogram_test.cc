// LatencyHistogram unit suite, anchored on its determinism contract:
//  * ValueAtQuantile(q) equals, exactly, the bucket lower bound of the
//    order statistic a sorted vector of the recorded values would pick —
//    verified against that oracle over several value distributions.
//  * Merge is element-wise addition, so it is commutative and associative
//    and the final state is a pure function of the recorded multiset —
//    verified by comparing full histogram state across merge shapes and
//    across real recording thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"

namespace tsd {
namespace {

/// What ValueAtQuantile(q) promises: the value of element ceil(q*n)
/// (1-based, clamped into [1, n]) of the sorted recorded values, rounded
/// down to its bucket lower bound.
std::uint64_t OracleQuantile(const std::vector<std::uint64_t>& sorted,
                             double q) {
  const auto n = static_cast<std::uint64_t>(sorted.size());
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  const std::uint64_t value = sorted[rank - 1];
  return LatencyHistogram::BucketLowerBound(
      LatencyHistogram::BucketIndex(value));
}

/// Full observable state, for exact equality across merge/thread shapes.
struct Snapshot {
  std::uint64_t count, sum, min, max;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  bool operator==(const Snapshot&) const = default;
};

Snapshot Snap(const LatencyHistogram& h) {
  Snapshot s{h.count(), h.sum(), h.min(), h.max(), {}};
  h.ForEachBucket(
      [&](std::uint64_t lower, std::uint64_t n) { s.buckets.push_back({lower, n}); });
  return s;
}

/// A mixed-magnitude value set: exact small buckets, mid-range, and values
/// spanning many octaves, plus heavy duplication.
std::vector<std::uint64_t> MixedValues(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<std::uint64_t> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.Uniform(4)) {
      case 0:
        values.push_back(rng.Uniform(32));  // exact unit buckets
        break;
      case 1:
        values.push_back(rng.Uniform(100000));
        break;
      case 2:
        values.push_back(rng() >> rng.Uniform(64));  // any magnitude
        break;
      default:
        values.push_back(42);  // duplicates pile into one bucket
        break;
    }
  }
  return values;
}

TEST(HistogramTest, BucketIndexIsMonotoneAndConsistentWithLowerBound) {
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 4096; ++v) probes.push_back(v);
  for (int e = 5; e < 64; ++e) {
    const std::uint64_t p = std::uint64_t{1} << e;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
  }
  probes.push_back(UINT64_MAX);
  std::sort(probes.begin(), probes.end());

  std::size_t last_index = 0;
  for (const std::uint64_t v : probes) {
    const std::size_t index = LatencyHistogram::BucketIndex(v);
    EXPECT_GE(index, last_index) << "index not monotone at " << v;
    last_index = index;
    const std::uint64_t lower = LatencyHistogram::BucketLowerBound(index);
    EXPECT_LE(lower, v);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lower), index)
        << "lower bound of bucket " << index << " maps elsewhere";
    if (v < UINT64_MAX) {
      // The next bucket starts above v: buckets are contiguous.
      EXPECT_GT(LatencyHistogram::BucketLowerBound(index + 1), v);
    }
    // Log-linear resolution: bucket width is at most lower/32 (exact below
    // 2 * kSubBuckets), so the relative quantile error is bounded by ~3%.
    if (index >= 2 * LatencyHistogram::kSubBuckets) {
      EXPECT_LE(LatencyHistogram::BucketLowerBound(index + 1) - lower,
                lower / LatencyHistogram::kSubBuckets);
    }
  }
}

TEST(HistogramTest, QuantileMatchesSortedVectorOracle) {
  const std::vector<double> quantiles = {0.0,  0.001, 0.01, 0.1,  0.25,
                                         0.5,  0.75,  0.9,  0.99, 0.999,
                                         0.9999, 1.0};
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                                std::size_t{100}, std::size_t{5000}}) {
      std::vector<std::uint64_t> values = MixedValues(seed * 1000 + n, n);
      LatencyHistogram h;
      for (const std::uint64_t v : values) h.Record(v);
      std::sort(values.begin(), values.end());
      for (const double q : quantiles) {
        EXPECT_EQ(h.ValueAtQuantile(q), OracleQuantile(values, q))
            << "seed=" << seed << " n=" << n << " q=" << q;
      }
      EXPECT_EQ(h.min(), values.front());
      EXPECT_EQ(h.max(), values.back());
      EXPECT_EQ(h.count(), values.size());
    }
  }
}

TEST(HistogramTest, EmptyAndSingletonEdgeCases) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.999), 0u);

  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 0u);

  LatencyHistogram top;
  top.Record(UINT64_MAX);
  EXPECT_EQ(top.max(), UINT64_MAX);
  EXPECT_EQ(top.ValueAtQuantile(1.0),
            LatencyHistogram::BucketLowerBound(
                LatencyHistogram::BucketIndex(UINT64_MAX)));

  LatencyHistogram many;
  many.RecordMany(77, 1000);
  EXPECT_EQ(many.count(), 1000u);
  EXPECT_EQ(many.sum(), 77u * 1000u);
  // 77 sits above the exact range (2 * kSubBuckets), so every quantile of
  // the constant distribution is 77's bucket lower bound.
  const std::uint64_t bucket77 = LatencyHistogram::BucketLowerBound(
      LatencyHistogram::BucketIndex(77));
  EXPECT_EQ(many.ValueAtQuantile(0.001), bucket77);
  EXPECT_EQ(many.ValueAtQuantile(1.0), bucket77);
  // min/max are tracked exactly even when the bucket is coarser.
  EXPECT_EQ(many.min(), 77u);
  EXPECT_EQ(many.max(), 77u);
}

TEST(HistogramTest, MergeIsCommutativeAndAssociative) {
  const std::vector<std::uint64_t> va = MixedValues(10, 700);
  const std::vector<std::uint64_t> vb = MixedValues(11, 40);
  const std::vector<std::uint64_t> vc = MixedValues(12, 2500);
  LatencyHistogram a, b, c;
  for (const std::uint64_t v : va) a.Record(v);
  for (const std::uint64_t v : vb) b.Record(v);
  for (const std::uint64_t v : vc) c.Record(v);

  LatencyHistogram ab_c = a;   // (a + b) + c
  ab_c.Merge(b);
  ab_c.Merge(c);
  LatencyHistogram bc = b;     // a + (b + c)
  bc.Merge(c);
  LatencyHistogram a_bc = a;
  a_bc.Merge(bc);
  LatencyHistogram cba = c;    // reversed order
  cba.Merge(b);
  cba.Merge(a);

  EXPECT_EQ(Snap(ab_c), Snap(a_bc));
  EXPECT_EQ(Snap(ab_c), Snap(cba));

  // And the merged state equals recording the union directly.
  LatencyHistogram direct;
  for (const auto* vals : {&va, &vb, &vc}) {
    for (const std::uint64_t v : *vals) direct.Record(v);
  }
  EXPECT_EQ(Snap(direct), Snap(ab_c));

  // Merging an empty histogram is the identity.
  LatencyHistogram with_empty = ab_c;
  with_empty.Merge(LatencyHistogram());
  EXPECT_EQ(Snap(with_empty), Snap(ab_c));
}

TEST(HistogramTest, DeterministicAtAnyThreadCount) {
  const std::vector<std::uint64_t> values = MixedValues(99, 6000);
  LatencyHistogram serial;
  for (const std::uint64_t v : values) serial.Record(v);
  const Snapshot expected = Snap(serial);

  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<LatencyHistogram> shards(threads);
    std::vector<std::thread> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        // Round-robin partition: each thread records a disjoint slice.
        for (std::size_t i = t; i < values.size(); i += threads) {
          shards[t].Record(values[i]);
        }
      });
    }
    for (std::thread& w : workers) w.join();
    LatencyHistogram merged;
    for (const LatencyHistogram& shard : shards) merged.Merge(shard);
    EXPECT_EQ(Snap(merged), expected) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace tsd
