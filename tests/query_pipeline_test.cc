// Determinism suite for the shared QueryPipeline: every searcher method
// must return bit-identical TopR results (vertices, scores, contexts) for
// 1, 2, and 8 worker threads, and the parallel results must agree with the
// literal naive definition of the truss model.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/baselines.h"
#include "core/bound_search.h"
#include "core/gct_index.h"
#include "core/hybrid_search.h"
#include "core/online_search.h"
#include "core/query_pipeline.h"
#include "core/tsd_index.h"
#include "graph/generators.h"
#include "reference_impls.h"

namespace tsd {
namespace {

struct GraphCase {
  std::string name;
  Graph graph;
};

std::vector<GraphCase> TestGraphs() {
  std::vector<GraphCase> cases;
  cases.push_back({"figure1", PaperFigure1Graph()});
  cases.push_back({"er", ErdosRenyi(80, 500, 3)});
  cases.push_back({"hk", HolmeKim(250, 5, 0.6, 4)});
  cases.push_back({"ba", BarabasiAlbert(200, 4, 5)});
  cases.push_back({"rmat", RMat(8, 6, 0.45, 0.2, 0.2, 6)});
  return cases;
}

/// All seven searchers over one graph, owned together so the index builds
/// happen once per case.
struct SearcherSet {
  explicit SearcherSet(const Graph& g)
      : online(g),
        bound(g),
        tsd(TsdIndex::Build(g)),
        gct(GctIndex::Build(g)),
        hybrid(g, gct),
        comp(g),
        core(g) {}

  std::vector<DiversitySearcher*> All() {
    return {&online, &bound, &tsd, &gct, &hybrid, &comp, &core};
  }

  OnlineSearcher online;
  BoundSearcher bound;
  TsdIndex tsd;
  GctIndex gct;
  HybridSearcher hybrid;
  CompDivSearcher comp;
  CoreDivSearcher core;
};

void ExpectSameEntries(const TopRResult& expected, const TopRResult& actual,
                       const std::string& label) {
  ASSERT_EQ(expected.entries.size(), actual.entries.size()) << label;
  for (std::size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_EQ(expected.entries[i].vertex, actual.entries[i].vertex)
        << label << " rank=" << i;
    EXPECT_EQ(expected.entries[i].score, actual.entries[i].score)
        << label << " rank=" << i;
    EXPECT_EQ(expected.entries[i].contexts, actual.entries[i].contexts)
        << label << " rank=" << i;
  }
}

class QueryPipelineDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(QueryPipelineDeterminismTest, AllMethodsBitIdenticalAcrossThreads) {
  const GraphCase test_case = TestGraphs()[GetParam()];
  SearcherSet searchers(test_case.graph);

  for (DiversitySearcher* searcher : searchers.All()) {
    for (std::uint32_t k : {2u, 4u}) {
      for (std::uint32_t r : {1u, 5u, 16u}) {
        searcher->set_query_options(QueryOptions{});
        const TopRResult sequential = searcher->TopR(r, k);
        EXPECT_EQ(sequential.stats.threads_used, 1u);
        for (std::uint32_t threads : {2u, 8u}) {
          QueryOptions options;
          options.num_threads = threads;
          searcher->set_query_options(options);
          const TopRResult parallel = searcher->TopR(r, k);
          EXPECT_EQ(parallel.stats.threads_used, threads);
          ExpectSameEntries(sequential, parallel,
                            test_case.name + " method=" + searcher->name() +
                                " k=" + std::to_string(k) +
                                " r=" + std::to_string(r) +
                                " threads=" + std::to_string(threads));
        }
        searcher->set_query_options(QueryOptions{});
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, QueryPipelineDeterminismTest,
                         ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return TestGraphs()[info.param].name;
                         });

// An explicit non-zero chunk count must not change the ranking either.
TEST(QueryPipelineTest, ExplicitChunkCountsKeepRankingsIdentical) {
  const Graph g = HolmeKim(200, 5, 0.5, 11);
  OnlineSearcher online(g);
  const TopRResult reference = online.TopR(10, 3);
  for (std::uint32_t chunks : {1u, 3u, 64u, 1024u}) {
    QueryOptions options;
    options.num_threads = 4;
    options.num_chunks = chunks;
    online.set_query_options(options);
    ExpectSameEntries(reference, online.TopR(10, 3),
                      "chunks=" + std::to_string(chunks));
  }
}

// The parallel online search must still match the literal paper definition
// (reference_impls.h), not just its own sequential run.
TEST(QueryPipelineTest, ParallelResultsMatchNaiveDefinition) {
  const Graph g = ErdosRenyi(60, 350, 9);
  OnlineSearcher online(g);
  QueryOptions options;
  options.num_threads = 8;
  online.set_query_options(options);
  const std::uint32_t k = 3;
  const TopRResult top = online.TopR(5, k);
  ASSERT_EQ(top.entries.size(), 5u);
  for (const TopREntry& entry : top.entries) {
    const auto [naive_score, naive_contexts] =
        testing::NaiveScore(g, entry.vertex, k);
    EXPECT_EQ(entry.score, naive_score) << "v=" << entry.vertex;
    EXPECT_EQ(entry.contexts.size(), naive_contexts.size())
        << "v=" << entry.vertex;
  }
}

// Bound-pruned methods may score more candidates in parallel rounds, but
// never fewer than the answer set requires, and the sequential scan keeps
// its exact per-vertex early termination (Example 3 of the paper).
TEST(QueryPipelineTest, ParallelPruningIsConservative) {
  const Graph g = PaperFigure1Graph();
  BoundSearcher bound(g);
  const TopRResult sequential = bound.TopR(1, 4);
  EXPECT_EQ(sequential.stats.vertices_scored, 1u);

  QueryOptions options;
  options.num_threads = 4;
  bound.set_query_options(options);
  const TopRResult parallel = bound.TopR(1, 4);
  EXPECT_GE(parallel.stats.vertices_scored, 1u);
  ExpectSameEntries(sequential, parallel, "figure1 bound threads=4");
}

// Direct pipeline exercise: ScoreOrdered must honour bound order with both
// sequential and round-based pruning, and the collector must end up with
// the smallest-id zero-score answers either way.
TEST(QueryPipelineTest, ScoreOrderedPrunesByBoundOrder) {
  const Graph g = HolmeKim(120, 4, 0.5, 13);
  for (std::uint32_t threads : {1u, 4u}) {
    QueryOptions options;
    options.num_threads = threads;
    QueryPipeline pipeline(g, EgoTrussMethod::kHash, options);

    // Degenerate bounds: all zero. Once the collector holds r zero-score
    // answers with the smallest ids, everything else is prunable.
    std::vector<VertexId> order(g.num_vertices());
    std::vector<std::uint32_t> bounds(g.num_vertices(), 0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
    TopRCollector collector(3);
    const std::uint64_t scored = pipeline.ScoreOrdered(
        order, bounds, &collector,
        [](QueryWorkspace&, VertexId) { return 0u; });
    EXPECT_LT(scored, g.num_vertices());
    const auto ranked = collector.Ranked();
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0].first, 0u);
    EXPECT_EQ(ranked[1].first, 1u);
    EXPECT_EQ(ranked[2].first, 2u);
  }
}

// TakeRanked must hand out exactly what Ranked() would, best first, and
// leave the collector empty and reusable.
TEST(TopRCollectorTest, TakeRankedMatchesRankedAndEmptiesCollector) {
  TopRCollector collector(4);
  // Scores with ties to exercise the (score desc, id asc) order.
  const std::pair<VertexId, std::uint32_t> offers[] = {
      {7, 3}, {1, 5}, {9, 3}, {4, 5}, {2, 0}, {5, 7}};
  for (const auto& [vertex, score] : offers) collector.Offer(vertex, score);

  const auto snapshot = collector.Ranked();
  const auto taken = collector.TakeRanked();
  EXPECT_EQ(taken, snapshot);
  ASSERT_EQ(taken.size(), 4u);
  EXPECT_EQ(taken[0], (std::pair<VertexId, std::uint32_t>{5, 7}));
  EXPECT_EQ(taken[1], (std::pair<VertexId, std::uint32_t>{1, 5}));
  EXPECT_EQ(taken[2], (std::pair<VertexId, std::uint32_t>{4, 5}));
  EXPECT_EQ(taken[3], (std::pair<VertexId, std::uint32_t>{7, 3}));

  EXPECT_TRUE(collector.empty());
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_TRUE(collector.Ranked().empty());
  EXPECT_FALSE(collector.Full());

  // The emptied collector is reusable.
  collector.Offer(3, 2);
  ASSERT_EQ(collector.Ranked().size(), 1u);
  EXPECT_EQ(collector.Ranked()[0],
            (std::pair<VertexId, std::uint32_t>{3, 2}));
}

}  // namespace
}  // namespace tsd
