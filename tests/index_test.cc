// Tests specific to the TSD-index and GCT-index data structures:
// serialization round trips, structural invariants, bounds, build stats,
// and kernel-choice independence.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "core/bound_search.h"
#include "core/gct_index.h"
#include "core/online_search.h"
#include "core/tsd_index.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/triangle.h"

namespace tsd {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TsdIndexTest, SaveLoadRoundTripPreservesAllScores) {
  Graph g = HolmeKim(300, 5, 0.6, 21);
  TsdIndex built = TsdIndex::Build(g);
  const std::string path = TempPath("tsd_index_roundtrip.bin");
  built.Save(path);
  TsdIndex loaded = TsdIndex::Load(path);
  ASSERT_EQ(loaded.num_vertices(), built.num_vertices());
  EXPECT_EQ(loaded.SizeBytes(), built.SizeBytes());
  EXPECT_EQ(loaded.max_weight(), built.max_weight());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (std::uint32_t k = 2; k <= 6; ++k) {
      EXPECT_EQ(loaded.Score(v, k), built.Score(v, k));
      EXPECT_EQ(loaded.ScoreUpperBound(v, k), built.ScoreUpperBound(v, k));
    }
  }
  std::filesystem::remove(path);
}

TEST(TsdIndexTest, LoadRejectsCorruptFile) {
  const std::string path = TempPath("tsd_index_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage that is definitely not an index";
  }
  EXPECT_THROW(TsdIndex::Load(path), CheckError);
  std::filesystem::remove(path);
}

TEST(TsdIndexTest, UpperBoundDominatesScore) {
  Graph g = MakeDataset("wiki-vote", "tiny");
  TsdIndex index = TsdIndex::Build(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (std::uint32_t k = 2; k <= 7; ++k) {
      EXPECT_GE(index.ScoreUpperBound(v, k), index.Score(v, k))
          << "v=" << v << " k=" << k;
    }
  }
}

TEST(TsdIndexTest, TsdBoundTighterThanLemma2OnAverage) {
  // The paper's Exp-1 observation: s̃core prunes harder than score̅.
  Graph g = MakeDataset("wiki-vote", "tiny");
  TsdIndex index = TsdIndex::Build(g);
  const auto ego_edges = TrianglesPerVertex(g);
  const auto lemma2 = BoundSearcher::UpperBounds(g, ego_edges, 4);
  std::uint64_t tsd_total = 0;
  std::uint64_t lemma2_total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tsd_total += index.ScoreUpperBound(v, 4);
    lemma2_total += lemma2[v];
  }
  EXPECT_LE(tsd_total, lemma2_total);
}

TEST(TsdIndexTest, ForestEdgesBoundedByMembers) {
  Graph g = HolmeKim(200, 5, 0.5, 23);
  TsdIndex index = TsdIndex::Build(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // A spanning forest of the ego-network has fewer than |N(v)| edges.
    EXPECT_LT(index.NumForestEdges(v), std::max(1u, g.degree(v) + 1));
  }
}

TEST(TsdIndexTest, IndexSizeIsLinearInGraph) {
  // O(m) index size claim (Theorem 3): forest edges <= sum of degrees.
  Graph g = MakeDataset("email-enron", "tiny");
  TsdIndex index = TsdIndex::Build(g);
  EXPECT_LE(index.SizeBytes(),
            (2ull * g.num_edges()) * 12 + (g.num_vertices() + 1) * 8 + 64);
}

TEST(TsdIndexTest, BuildStatsPopulated) {
  Graph g = HolmeKim(400, 5, 0.5, 29);
  TsdIndex index = TsdIndex::Build(g);
  const IndexBuildStats stats = index.build_stats();
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GT(stats.extraction_seconds, 0.0);
  EXPECT_GT(stats.decomposition_seconds, 0.0);
  EXPECT_GT(stats.assembly_seconds, 0.0);
}

TEST(TsdIndexTest, BitmapBuildOptionProducesIdenticalIndex) {
  Graph g = HolmeKim(250, 6, 0.6, 31);
  TsdIndex::Options bitmap_options;
  bitmap_options.method = EgoTrussMethod::kBitmap;
  TsdIndex hash_built = TsdIndex::Build(g);
  TsdIndex bitmap_built = TsdIndex::Build(g, bitmap_options);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (std::uint32_t k = 2; k <= 6; ++k) {
      EXPECT_EQ(hash_built.Score(v, k), bitmap_built.Score(v, k));
    }
  }
}

// ---------------------------------------------------------------- GCT

TEST(GctIndexTest, SaveLoadRoundTripPreservesScoresAndContexts) {
  Graph g = HolmeKim(300, 5, 0.6, 37);
  GctIndex built = GctIndex::Build(g);
  const std::string path = TempPath("gct_index_roundtrip.bin");
  built.Save(path);
  GctIndex loaded = GctIndex::Load(path);
  ASSERT_EQ(loaded.num_vertices(), built.num_vertices());
  EXPECT_EQ(loaded.SizeBytes(), built.SizeBytes());
  for (VertexId v = 0; v < g.num_vertices(); v += 3) {
    for (std::uint32_t k = 2; k <= 6; ++k) {
      EXPECT_EQ(loaded.Score(v, k), built.Score(v, k));
      EXPECT_EQ(loaded.ScoreWithContexts(v, k).contexts,
                built.ScoreWithContexts(v, k).contexts);
    }
  }
  std::filesystem::remove(path);
}

TEST(GctIndexTest, LoadRejectsTruncatedFile) {
  Graph g = HolmeKim(100, 4, 0.5, 38);
  GctIndex built = GctIndex::Build(g);
  const std::string path = TempPath("gct_index_trunc.bin");
  built.Save(path);
  // Truncate the file to half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(GctIndex::Load(path), CheckError);
  std::filesystem::remove(path);
}

TEST(GctIndexTest, InvariantsHoldOnVariedGraphs) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = HolmeKim(200, 6, 0.7, seed);
    GctIndex index = GctIndex::Build(g);
    index.CheckInvariants();
  }
  GctIndex figure1 = GctIndex::Build(PaperFigure1Graph());
  figure1.CheckInvariants();
}

TEST(GctIndexTest, Figure1SupernodeStructure) {
  // For v's ego-network the GCT index should hold three 4-truss supernodes
  // (x-clique, y-clique, octahedron) and one weight-3 superedge joining the
  // x and y supernodes — exactly Figure 7 of the paper.
  Graph g = PaperFigure1Graph();
  GctIndex index = GctIndex::Build(g);
  EXPECT_EQ(index.NumSupernodes(0), 3u);
  EXPECT_EQ(index.NumSuperedges(0), 1u);
  EXPECT_EQ(index.Score(0, 4), 3u);
  EXPECT_EQ(index.Score(0, 3), 2u);
}

TEST(GctIndexTest, GctMuchSmallerThanTsdOnUniformContexts) {
  // Table 3's headline claim. The compression wins appear where social
  // contexts have uniform trussness (paper: socfb-konect 663MB -> 106MB,
  // NotreDame 45MB -> 20MB): a whole context collapses to one supernode
  // with a member list, while the TSD forest spells out M-1 weighted edges.
  CollaborationOptions options;
  options.num_authors = 4000;
  options.num_groups = 420;
  options.intra_group_probability = 1.0;  // pure cliques
  options.bridge_edges_per_author = 0.05;
  options.num_hubs = 10;
  const Graph g = Collaboration(options, 3).graph;
  TsdIndex tsd = TsdIndex::Build(g);
  GctIndex gct = GctIndex::Build(g);
  EXPECT_LT(gct.SizeBytes(), tsd.SizeBytes());
}

TEST(GctIndexTest, GctComparableToTsdOnDenseGraphs) {
  // On triangle-dense graphs with heterogeneous trussness the two indexes
  // are close (paper: wiki-vote 4.2MB -> 4.0MB; epinions 13.3 -> 13.1).
  Graph g = MakeDataset("wiki-vote", "tiny");
  TsdIndex tsd = TsdIndex::Build(g);
  GctIndex gct = GctIndex::Build(g);
  EXPECT_LT(gct.SizeBytes(), 2 * tsd.SizeBytes());
}

TEST(GctIndexTest, HashKernelAndPerVertexExtractionProduceSameScores) {
  Graph g = HolmeKim(200, 5, 0.6, 41);
  GctIndex::Options hash_opts;
  hash_opts.method = EgoTrussMethod::kHash;
  GctIndex::Options no_listing;
  no_listing.use_global_listing = false;
  GctIndex reference = GctIndex::Build(g);
  GctIndex hash_built = GctIndex::Build(g, hash_opts);
  GctIndex extract_built = GctIndex::Build(g, no_listing);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (std::uint32_t k = 2; k <= 6; ++k) {
      EXPECT_EQ(reference.Score(v, k), hash_built.Score(v, k));
      EXPECT_EQ(reference.Score(v, k), extract_built.Score(v, k));
    }
  }
}

TEST(GctIndexTest, MaxTrussnessMatchesEgoDecompositions) {
  Graph g = HolmeKim(150, 5, 0.6, 43);
  GctIndex index = GctIndex::Build(g);
  OnlineSearcher online(g);
  // max_trussness is the largest k with any nonzero score.
  const std::uint32_t max_k = index.max_trussness();
  bool any_at_max = false;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (index.Score(v, max_k) > 0) any_at_max = true;
    EXPECT_EQ(index.Score(v, max_k + 1), 0u);
  }
  EXPECT_TRUE(any_at_max);
}

}  // namespace
}  // namespace tsd
