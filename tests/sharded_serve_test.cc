// Differential stress harness for the sharded multi-consumer serving loop.
//
// The contract under test: a ShardedServeLoop over S shards answers every
// accepted request bit-identically to a serial TopR on the same searcher,
// no matter how many client threads race submission, how tenants mix their
// (k, r) streams, which admission caps fire, or whether Shutdown() races
// the submitters. Randomized workloads (seeded, reproducible) sweep
// clients x shards x tenants with reject-inducing depth caps and racing
// shutdowns; every reply is checked against the serial reference, every
// counter is re-derived from the per-shard stats, and the structural
// properties (deterministic tenant->shard assignment, per-tenant
// submission-order fulfillment) are asserted directly. Runs under the TSan
// and ASan+UBSan CI matrix, so ordering bugs surface as data races or
// counter drift, not just wrong scores.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "core/gct_index.h"
#include "core/query_session.h"
#include "graph/generators.h"
#include "serve_test_util.h"
#include "server/serve_loop.h"
#include "server/sharded_serve.h"
#include "server/tenant_table.h"

namespace tsd {
namespace {

using test::ExpectSameEntries;
using test::SameEntries;

constexpr std::uint32_t kKs[] = {2, 3, 4, 5, 6};
constexpr std::uint32_t kRs[] = {1, 3, 5, 10};

/// Serial ground truth for every (k, r) the randomized workload can draw.
std::map<std::pair<std::uint32_t, std::uint32_t>, TopRResult> BuildReference(
    const DiversitySearcher& searcher) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, TopRResult> reference;
  QuerySession session;
  for (std::uint32_t k : kKs) {
    for (std::uint32_t r : kRs) {
      reference[{k, r}] = searcher.TopR(r, k, session);
    }
  }
  return reference;
}

/// What one client expects for one of its submissions.
struct Expectation {
  ServeRequest request;
  /// kOk when the request is valid (timing may still turn it into a
  /// queue-depth or shutdown rejection; ValidateReplies allows those when
  /// the config can produce them), otherwise the deterministic rejection.
  ServeStatus deterministic = ServeStatus::kOk;
};

struct StressConfig {
  std::uint32_t shards = 1;
  std::uint32_t clients = 1;
  std::uint32_t requests_per_client = 40;
  std::uint32_t max_queue_depth = 1 << 20;  // effectively uncapped
  bool race_shutdown = false;
  bool inject_invalid = true;
  std::uint64_t seed = 1;
};

std::string ConfigLabel(const StressConfig& config) {
  return "shards=" + std::to_string(config.shards) +
         " clients=" + std::to_string(config.clients) +
         " depth=" + std::to_string(config.max_queue_depth) +
         " race=" + std::to_string(config.race_shutdown) +
         " seed=" + std::to_string(config.seed);
}

/// One randomized serving run. Every client owns a disjoint tenant pool (so
/// per-tenant streams are single-submitter and their order is defined),
/// draws a mixed (k, r) stream — salted with deterministic rejections when
/// `inject_invalid` — submits it all, then validates every reply against
/// the serial reference. Returns per-status counts for the caller's
/// cross-checks against loop statistics.
void RunStress(
    const DiversitySearcher& searcher,
    const std::map<std::pair<std::uint32_t, std::uint32_t>, TopRResult>&
        reference,
    const StressConfig& config) {
  const std::string label = ConfigLabel(config);
  ShardedServeOptions options;
  options.num_shards = config.shards;
  options.shard.max_queue_depth = config.max_queue_depth;
  ShardedServeLoop loop(searcher, options);
  loop.Start();

  std::atomic<std::uint64_t> ok_count{0};
  std::atomic<std::uint64_t> depth_rejects{0};
  std::atomic<std::uint64_t> shutdown_rejects{0};
  std::atomic<std::uint64_t> deterministic_rejects{0};
  std::vector<std::string> failures(config.clients);

  std::vector<std::thread> clients;
  for (std::uint32_t c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(Hash64(config.seed, c));
      std::vector<Expectation> expectations;
      std::vector<Future<ServeReply>> futures;
      for (std::uint32_t i = 0; i < config.requests_per_client; ++i) {
        Expectation expect;
        // Disjoint per-client tenant pools: tenant streams have exactly one
        // submitting thread, so admission and ordering are per-tenant
        // deterministic properties, not cross-thread races.
        expect.request.tenant = std::uint64_t{c} * 16 + rng.Uniform(3);
        expect.request.k = kKs[rng.Uniform(std::size(kKs))];
        expect.request.r = kRs[rng.Uniform(std::size(kRs))];
        if (config.inject_invalid && rng.Uniform(8) == 0) {
          switch (rng.Uniform(3)) {
            case 0:
              expect.request.k = 1;
              expect.deterministic = ServeStatus::kRejectedBadQuery;
              break;
            case 1:
              expect.request.r = 0;
              expect.deterministic = ServeStatus::kRejectedBadQuery;
              break;
            default:
              expect.request.r = 2000;  // default max_r is 1024
              expect.deterministic = ServeStatus::kRejectedRLimit;
              break;
          }
        }
        expectations.push_back(expect);
        futures.push_back(loop.Submit(expect.request));
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const Expectation& expect = expectations[i];
        ServeReply reply = futures[i].Get();
        if (expect.deterministic != ServeStatus::kOk) {
          // Bad-query and r-limit fire before the shutdown and depth
          // checks: deterministic regardless of racing Shutdown().
          if (reply.status != expect.deterministic) {
            failures[c] = "expected deterministic rejection, got " +
                          std::string(ServeStatusName(reply.status));
            return;
          }
          deterministic_rejects.fetch_add(1);
          continue;
        }
        switch (reply.status) {
          case ServeStatus::kOk: {
            ok_count.fetch_add(1);
            const TopRResult& expected = reference.at(
                {expect.request.k, expect.request.r});
            if (!SameEntries(expected, reply.result)) {
              failures[c] = "reply diverged from serial TopR at q=" +
                            std::to_string(i);
              return;
            }
            break;
          }
          case ServeStatus::kRejectedQueueDepth:
            depth_rejects.fetch_add(1);
            break;
          case ServeStatus::kRejectedShutdown:
            shutdown_rejects.fetch_add(1);
            break;
          default:
            failures[c] = "unexpected status " +
                          std::string(ServeStatusName(reply.status));
            return;
        }
      }
    });
  }
  if (config.race_shutdown) loop.Shutdown();  // races the submitters
  for (std::thread& t : clients) t.join();
  loop.Shutdown();

  for (std::uint32_t c = 0; c < config.clients; ++c) {
    ASSERT_EQ(failures[c], "") << label << " client=" << c;
  }
  // Timing-dependent rejections exist only in the configs that can produce
  // them.
  if (!config.race_shutdown) EXPECT_EQ(shutdown_rejects.load(), 0u) << label;
  if (config.max_queue_depth >= config.clients * config.requests_per_client) {
    EXPECT_EQ(depth_rejects.load(), 0u) << label;
  }

  // Re-derive every total from the per-shard counters: the shard split must
  // partition the workload exactly.
  const std::uint64_t submitted =
      std::uint64_t{config.clients} * config.requests_per_client;
  const ServeStats total = loop.stats();
  EXPECT_EQ(total.accepted, ok_count.load()) << label;
  EXPECT_EQ(total.served, total.accepted) << label;
  EXPECT_EQ(total.failed, 0u) << label;
  EXPECT_EQ(total.rejected_queue_depth, depth_rejects.load()) << label;
  EXPECT_EQ(total.rejected_shutdown, shutdown_rejects.load()) << label;
  EXPECT_EQ(total.rejected_bad_query + total.rejected_r_limit,
            deterministic_rejects.load())
      << label;
  EXPECT_EQ(total.accepted + total.rejected_bad_query +
                total.rejected_r_limit + total.rejected_queue_depth +
                total.rejected_shutdown,
            submitted)
      << label;

  ServeStats summed;
  std::uint64_t histogram_weight = 0;
  for (std::uint32_t s = 0; s < loop.num_shards(); ++s) {
    const ServeStats shard = loop.shard_stats(s);
    summed += shard;
    for (std::size_t b = 1; b < shard.batch_size_count.size(); ++b) {
      histogram_weight += b * shard.batch_size_count[b];
      EXPECT_LE(b, options.shard.max_batch) << label << " shard=" << s;
    }
  }
  EXPECT_EQ(summed.accepted, total.accepted) << label;
  EXPECT_EQ(summed.served, total.served) << label;
  EXPECT_EQ(summed.batches, total.batches) << label;
  EXPECT_EQ(summed.rejected_queue_depth, total.rejected_queue_depth) << label;
  EXPECT_EQ(histogram_weight, total.served) << label;
}

class ShardedServeStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph(HolmeKim(150, 4, 0.5, 41));
    searcher_ = new GctIndex(GctIndex::Build(*graph_));
    reference_ = new std::map<std::pair<std::uint32_t, std::uint32_t>,
                              TopRResult>(BuildReference(*searcher_));
  }
  static void TearDownTestSuite() {
    delete reference_;
    delete searcher_;
    delete graph_;
    reference_ = nullptr;
    searcher_ = nullptr;
    graph_ = nullptr;
  }

  static Graph* graph_;
  static GctIndex* searcher_;
  static std::map<std::pair<std::uint32_t, std::uint32_t>, TopRResult>*
      reference_;
};

Graph* ShardedServeStressTest::graph_ = nullptr;
GctIndex* ShardedServeStressTest::searcher_ = nullptr;
std::map<std::pair<std::uint32_t, std::uint32_t>, TopRResult>*
    ShardedServeStressTest::reference_ = nullptr;

TEST_F(ShardedServeStressTest, RandomizedClientsAcrossShardCounts) {
  // The differential sweep: 1..16 client threads x 1/2/4 shards, mixed
  // tenants and (k, r), salted with deterministic rejections. Every reply
  // must be bit-identical to the serial reference.
  std::uint64_t seed = 100;
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    for (std::uint32_t clients : {1u, 4u, 16u}) {
      StressConfig config;
      config.shards = shards;
      config.clients = clients;
      config.seed = ++seed;
      RunStress(*searcher_, *reference_, config);
    }
  }
}

TEST_F(ShardedServeStressTest, DepthCapRejectsUnderShardedContention) {
  // A depth cap of 1 makes every same-tenant burst reject most of itself;
  // the counters must still balance exactly across shards.
  for (std::uint32_t shards : {1u, 4u}) {
    StressConfig config;
    config.shards = shards;
    config.clients = 8;
    config.requests_per_client = 60;
    config.max_queue_depth = 1;
    config.inject_invalid = false;
    config.seed = 7000 + shards;
    RunStress(*searcher_, *reference_, config);
  }
}

TEST_F(ShardedServeStressTest, ShutdownRacingSubmittersResolvesEverything) {
  // Shutdown() races 8 submitting threads: every future must still resolve
  // (ok or rejected:shutdown), across every shard — the PR 4 rejection-path
  // deadlock must not regress in any shard's consumer.
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    StressConfig config;
    config.shards = shards;
    config.clients = 8;
    config.requests_per_client = 50;
    config.race_shutdown = true;
    config.seed = 9000 + shards;
    RunStress(*searcher_, *reference_, config);
  }
}

TEST_F(ShardedServeStressTest, DepthCapAndShutdownRaceCombined) {
  StressConfig config;
  config.shards = 4;
  config.clients = 8;
  config.requests_per_client = 50;
  config.max_queue_depth = 2;
  config.race_shutdown = true;
  config.inject_invalid = false;
  config.seed = 77;
  RunStress(*searcher_, *reference_, config);
}

TEST_F(ShardedServeStressTest, ShardAssignmentIsDeterministic) {
  // Assignment is a pure function of (tenant, num_shards): identical across
  // loop instances, equal to the documented Hash64 formula, and covering
  // every shard.
  ShardedServeOptions options;
  options.num_shards = 4;
  ShardedServeLoop a(*searcher_, options);
  ShardedServeLoop b(*searcher_, options);
  std::vector<std::uint32_t> hits(4, 0);
  for (std::uint64_t tenant = 0; tenant < 1000; ++tenant) {
    const std::uint32_t shard = a.ShardOf(tenant);
    EXPECT_EQ(shard, b.ShardOf(tenant)) << "tenant " << tenant;
    EXPECT_EQ(shard, (Hash64(tenant) >> 32) % 4) << "tenant " << tenant;
    ++hits[shard];
  }
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_GT(hits[s], 0u) << "shard " << s << " never assigned";
  }
}

TEST_F(ShardedServeStressTest, TenantIsPinnedToExactlyOneShard) {
  // A single-tenant workload must land on ShardOf(tenant) and nowhere else.
  const std::uint64_t tenant = 42;
  ShardedServeOptions options;
  options.num_shards = 4;
  ShardedServeLoop loop(*searcher_, options);
  loop.Start();
  std::vector<Future<ServeReply>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(loop.Submit(ServeRequest{tenant, 3, 5}));
  }
  for (Future<ServeReply>& f : futures) {
    EXPECT_EQ(f.Get().status, ServeStatus::kOk);
  }
  loop.Shutdown();
  for (std::uint32_t s = 0; s < loop.num_shards(); ++s) {
    EXPECT_EQ(loop.shard_stats(s).accepted,
              s == loop.ShardOf(tenant) ? 12u : 0u)
        << "shard " << s;
  }
}

TEST_F(ShardedServeStressTest, PerTenantSubmissionOrderIsPreserved) {
  // Each tenant submits from one thread; its requests flow through one
  // shard's MPSC queue (per-producer FIFO) to one consumer that fulfills
  // them in pop order. Observable contract: the moment a tenant's LAST
  // future resolves, every earlier future of that tenant has already
  // resolved. A consumer that reordered within a tenant would leave an
  // earlier future unfulfilled here.
  ShardedServeOptions options;
  options.num_shards = 4;
  options.shard.max_batch = 3;  // many small batches: more reorder chances
  ShardedServeLoop loop(*searcher_, options);
  loop.Start();

  constexpr std::uint32_t kTenants = 8;
  constexpr std::uint32_t kPerTenant = 30;
  std::vector<std::string> failures(kTenants);
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(Hash64(55, t));
      std::vector<Future<ServeReply>> futures;
      std::vector<std::pair<std::uint32_t, std::uint32_t>> keys;
      for (std::uint32_t i = 0; i < kPerTenant; ++i) {
        ServeRequest request;
        request.tenant = t;
        request.k = kKs[rng.Uniform(std::size(kKs))];
        request.r = kRs[rng.Uniform(std::size(kRs))];
        keys.emplace_back(request.k, request.r);
        futures.push_back(loop.Submit(request));
      }
      ServeReply last = futures.back().Get();
      if (last.status != ServeStatus::kOk) {
        failures[t] = "last reply not ok";
        return;
      }
      for (std::uint32_t i = 0; i + 1 < kPerTenant; ++i) {
        if (!futures[i].Ready()) {
          failures[t] =
              "request " + std::to_string(i) + " fulfilled after the last";
          return;
        }
        ServeReply reply = futures[i].Get();
        if (reply.status != ServeStatus::kOk ||
            !SameEntries(reference_->at(keys[i]), reply.result)) {
          failures[t] = "request " + std::to_string(i) + " diverged";
          return;
        }
      }
      if (!SameEntries(reference_->at(keys.back()), last.result)) {
        failures[t] = "last request diverged";
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  loop.Shutdown();
  for (std::uint32_t t = 0; t < kTenants; ++t) {
    EXPECT_EQ(failures[t], "") << "tenant " << t;
  }
}

TEST_F(ShardedServeStressTest, OneShardMatchesServeLoopTranscript) {
  // ShardedServeLoop with one shard and the classic ServeLoop must agree
  // reply for reply — the refactor onto internal::ConsumerLoop changed no
  // behaviour.
  ShardedServeOptions options;
  ShardedServeLoop sharded(*searcher_, options);
  ServeLoop single(*searcher_);
  sharded.Start();
  single.Start();
  for (std::uint32_t k : kKs) {
    for (std::uint32_t r : kRs) {
      ServeReply a = sharded.Submit(ServeRequest{k, k, r}).Get();
      ServeReply b = single.Submit(ServeRequest{k, k, r}).Get();
      ASSERT_EQ(a.status, ServeStatus::kOk);
      ASSERT_EQ(b.status, ServeStatus::kOk);
      ExpectSameEntries(a.result, b.result,
                        "k=" + std::to_string(k) + " r=" + std::to_string(r));
    }
  }
  sharded.Shutdown();
  single.Shutdown();
  EXPECT_EQ(sharded.stats().served, single.stats().served);
}

// ------------------------------------------------------- TenantDepthTable

TEST(TenantDepthTableTest, IncrementDecrementEraseRoundTrip) {
  TenantDepthTable table;
  const std::uint64_t t = 7, h = Hash64(7);
  EXPECT_EQ(table.Depth(t, h), 0u);
  EXPECT_TRUE(table.TryIncrement(t, h, 2));
  EXPECT_TRUE(table.TryIncrement(t, h, 2));
  EXPECT_FALSE(table.TryIncrement(t, h, 2));  // at cap
  EXPECT_EQ(table.Depth(t, h), 2u);
  EXPECT_EQ(table.size(), 1u);
  table.Decrement(t, h);
  EXPECT_EQ(table.Depth(t, h), 1u);
  table.Decrement(t, h);
  EXPECT_EQ(table.Depth(t, h), 0u);  // erased at zero
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.TryIncrement(t, h, 1));  // re-insertable after erase
}

TEST(TenantDepthTableTest, ZeroCapRejectsWithoutInserting) {
  TenantDepthTable table;
  EXPECT_FALSE(table.TryIncrement(5, Hash64(5), 0));
  EXPECT_EQ(table.size(), 0u);
}

TEST(TenantDepthTableTest, GrowsAndDrainsManyTenantsAgainstReference) {
  // Randomized differential against a std::map reference: interleaved
  // increments/decrements over a sweeping tenant id space force growth,
  // collisions, and backward-shift deletions.
  TenantDepthTable table;
  std::map<std::uint64_t, std::uint32_t> reference;
  Rng rng(99);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t tenant = rng.Uniform(300);
    const std::uint64_t hash = Hash64(tenant);
    if (rng.Uniform(2) == 0) {
      const bool admitted = table.TryIncrement(tenant, hash, 4);
      const bool expected = reference[tenant] < 4;
      ASSERT_EQ(admitted, expected) << "step " << step;
      if (expected) ++reference[tenant];
      if (reference[tenant] == 0) reference.erase(tenant);
    } else if (reference.count(tenant) > 0) {
      table.Decrement(tenant, hash);
      if (--reference[tenant] == 0) reference.erase(tenant);
    }
    ASSERT_EQ(table.size(), reference.size()) << "step " << step;
    ASSERT_EQ(table.Depth(tenant, hash),
              reference.count(tenant) ? reference[tenant] : 0)
        << "step " << step;
  }
  // Drain everything: the table must return to empty with no tombstones
  // (every residual tenant still findable mid-drain).
  for (const auto& [tenant, depth] : reference) {
    for (std::uint32_t i = 0; i < depth; ++i) {
      ASSERT_EQ(table.Depth(tenant, Hash64(tenant)), depth - i);
      table.Decrement(tenant, Hash64(tenant));
    }
  }
  EXPECT_EQ(table.size(), 0u);
}

TEST(TenantDepthTableTest, CollidingHomeSlotsSurviveBackwardShift) {
  // Force every tenant into the same home bucket by giving the table equal
  // hashes: linear probing chains them; erasing the head must shift the
  // chain back so every survivor stays findable.
  TenantDepthTable table;
  const std::uint64_t hash = 0;  // same home slot for all
  for (std::uint64_t tenant = 0; tenant < 8; ++tenant) {
    EXPECT_TRUE(table.TryIncrement(tenant, hash, 1));
  }
  table.Decrement(3, hash);
  table.Decrement(0, hash);
  for (std::uint64_t tenant = 0; tenant < 8; ++tenant) {
    EXPECT_EQ(table.Depth(tenant, hash), (tenant == 0 || tenant == 3) ? 0u : 1u)
        << "tenant " << tenant;
  }
  EXPECT_EQ(table.size(), 6u);
}

}  // namespace
}  // namespace tsd
