# Static-analysis gate self-tests, run as a tier-1 ctest via `cmake -P`.
#
# Two families:
#
#  1. Layering-linter fixtures (all compilers): lint_layering must pass the
#     clean tree and the `good`/`allowlisted` fixtures, and must FAIL each
#     `bad_*` fixture for the right rule. This is the proof that "adding a
#     downward include fails the build" — the linter is a default ctest, so
#     a DAG regression turns the tier-1 suite red.
#
#  2. Negative compile tests (Clang only): tests/static_analysis/
#     guarded_no_lock.cc must FAIL to compile under
#     `-Wthread-safety -Werror` and its control guarded_with_lock.cc must
#     PASS — the proof that removing a lock acquisition fails the build.
#     `try_compile` is unavailable in script mode, so the compiler is
#     invoked directly with -fsyntax-only. Under GCC (which ignores the
#     annotations) this family is skipped with a notice; CI's
#     static-analysis job provides the Clang run.
#
# Required -D variables:
#   LINT_LAYERING  path to the built lint_layering binary
#   REPO_ROOT      repository root (contains src/, tools/, tests/)
#   CXX_COMPILER   the configured CMAKE_CXX_COMPILER
#   CXX_ID         the configured CMAKE_CXX_COMPILER_ID
foreach(var LINT_LAYERING REPO_ROOT CXX_COMPILER CXX_ID)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "static_analysis_test: -D${var}=... is required")
  endif()
endforeach()

set(FIXTURES "${REPO_ROOT}/tests/lint_fixtures")
set(failures 0)

# expect_lint(<name> <expected_exit> <args...>)
function(expect_lint name expected)
  execute_process(
    COMMAND "${LINT_LAYERING}" --quiet ${ARGN}
    RESULT_VARIABLE exit_code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT exit_code EQUAL expected)
    message(SEND_ERROR
      "lint case '${name}': expected exit ${expected}, got ${exit_code}\n"
      "${out}${err}")
    math(EXPR failures "${failures}+1")
    set(failures "${failures}" PARENT_SCOPE)
  else()
    message(STATUS "lint case '${name}': OK (exit ${exit_code})")
  endif()
endfunction()

# The real tree must be clean under the checked-in allowlist.
expect_lint(real-tree 0
  --root "${REPO_ROOT}"
  --allowlist "${REPO_ROOT}/tools/layering_allowlist.txt")

# Fixture battery: one tree per rule.
expect_lint(fixture-good 0 --root "${FIXTURES}/good")
expect_lint(fixture-bad-downward 1 --root "${FIXTURES}/bad_downward")
expect_lint(fixture-bad-missing 1 --root "${FIXTURES}/bad_missing")
expect_lint(fixture-bad-order 1 --root "${FIXTURES}/bad_order")
# The same downward include as bad_downward, excused by its allowlist —
# proves exceptions are per-(file, include) pairs, not a global off switch.
expect_lint(fixture-allowlisted 0
  --root "${FIXTURES}/allowlisted"
  --allowlist "${FIXTURES}/allowlisted/allow.txt")
# ...and that the same tree FAILS without the allowlist.
expect_lint(fixture-allowlisted-strict 1 --root "${FIXTURES}/allowlisted")

# ---------------------------------------------------------------------------
# Negative compile tests: Clang's -Wthread-safety is the analyzer; GCC
# accepts-and-ignores the attributes, so only Clang can demonstrate the
# missing-lock failure.
if(CXX_ID MATCHES "Clang")
  set(TS_FLAGS -std=c++20 -fsyntax-only -Wthread-safety -Werror
      -I "${REPO_ROOT}/src")

  execute_process(
    COMMAND "${CXX_COMPILER}" ${TS_FLAGS}
            "${REPO_ROOT}/tests/static_analysis/guarded_with_lock.cc"
    RESULT_VARIABLE control_exit
    OUTPUT_VARIABLE control_out
    ERROR_VARIABLE control_err)
  if(NOT control_exit EQUAL 0)
    message(SEND_ERROR
      "control guarded_with_lock.cc failed to compile — harness broken, "
      "negative result would be meaningless:\n${control_out}${control_err}")
    math(EXPR failures "${failures}+1")
  else()
    message(STATUS "compile case 'guarded-with-lock (control)': OK")
  endif()

  execute_process(
    COMMAND "${CXX_COMPILER}" ${TS_FLAGS}
            "${REPO_ROOT}/tests/static_analysis/guarded_no_lock.cc"
    RESULT_VARIABLE negative_exit
    OUTPUT_VARIABLE negative_out
    ERROR_VARIABLE negative_err)
  if(negative_exit EQUAL 0)
    message(SEND_ERROR
      "guarded_no_lock.cc COMPILED under -Wthread-safety -Werror — the "
      "annotation substrate is no longer enforcing guarded access")
    math(EXPR failures "${failures}+1")
  elseif(NOT negative_err MATCHES "thread-safety|guarded")
    message(SEND_ERROR
      "guarded_no_lock.cc failed for the wrong reason (not a thread-safety "
      "diagnostic):\n${negative_err}")
    math(EXPR failures "${failures}+1")
  else()
    message(STATUS
      "compile case 'guarded-no-lock (negative)': OK (rejected as expected)")
  endif()
else()
  message(STATUS
    "compile cases skipped: ${CXX_ID} does not implement -Wthread-safety "
    "(CI's static-analysis job runs them under Clang)")
endif()

if(failures GREATER 0)
  message(FATAL_ERROR "static_analysis_test: ${failures} case(s) failed")
endif()
message(STATUS "static_analysis_test: all cases passed")
