// Live-update battery for the epoch-versioned dynamic index and its
// serving-layer plumbing. Four layers of the tentpole contract:
//
//  * Protocol units — "+u v" / "-u v" parse into ProtoUpdate through the
//    shared ParseProtoLine; malformed update lines (and update lines handed
//    to a parser with no update sink) classify as errors, never crash.
//  * Raw concurrency — reader threads run Score / ScoreWithContexts / TopR
//    against a DynamicTsdIndex with NO external locking while an updater
//    thread streams randomized edge churn through LiveUpdateApplier. After
//    the updater quiesces, every score and TopR reply must be bit-identical
//    to a from-scratch TsdIndex::Build of the final graph. This is the
//    sanitizer target: under TSan a reclamation or publication bug is a
//    reported race, not a lucky pass.
//  * Transport determinism — one text script with interleaved update lines
//    produces byte-identical transcripts across ShardedServeLoop shard
//    counts {1, 2, 4} x pipeline threads {1, 8}, and the socket transport
//    reproduces the stdin bytes exactly (options.updater wired, same
//    script). Each run gets a FRESH index: updates mutate state, so
//    byte-stability across configurations is only meaningful from equal
//    starting points.
//  * The dynamic<->snapshot seam — randomized updates, then Freeze() ->
//    Save -> Load (and the zero-copy mmap LoadFromSnapshot path); the
//    frozen, reloaded, and mmapped indexes answer TopR and SearchBatch
//    bit-identically to the live index at 1/2/8 query threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "common/snapshot.h"
#include "core/dynamic_tsd_index.h"
#include "core/query_scratch.h"
#include "core/query_session.h"
#include "core/tsd_index.h"
#include "graph/generators.h"
#include "serve_test_util.h"
#include "server/live_index.h"
#include "server/sharded_serve.h"
#include "server/socket_proto.h"
#include "server/socket_serve.h"
#include "server/stdin_proto.h"

namespace tsd {
namespace {

using test::ExpectSameEntries;

constexpr std::uint32_t kKs[] = {2, 3, 4, 5, 6};
constexpr std::uint32_t kRs[] = {1, 3, 5, 10};

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- protocol units -------------------------------------------------------

TEST(UpdateLineParseTest, InsertAndRemoveForms) {
  ServeRequest request;
  ProtoUpdate update;
  EXPECT_EQ(ParseProtoLine("+1 2", &request, &update), ProtoLineKind::kUpdate);
  EXPECT_TRUE(update.insert);
  EXPECT_EQ(update.u, 1u);
  EXPECT_EQ(update.v, 2u);

  EXPECT_EQ(ParseProtoLine("-40 7", &request, &update),
            ProtoLineKind::kUpdate);
  EXPECT_FALSE(update.insert);
  EXPECT_EQ(update.u, 40u);
  EXPECT_EQ(update.v, 7u);

  // 64-bit ids parse; range checking is the applier's job.
  EXPECT_EQ(ParseProtoLine("+18446744073709551615 0", &request, &update),
            ProtoLineKind::kUpdate);
  EXPECT_EQ(update.u, ~std::uint64_t{0});
}

TEST(UpdateLineParseTest, MalformedUpdateLinesAreErrors) {
  ServeRequest request;
  ProtoUpdate update;
  for (const char* line : {"+1", "+1 2 3", "+x 2", "+ 1 2", "-1 y", "+",
                           "-", "+1 -2", "+1 2x"}) {
    EXPECT_EQ(ParseProtoLine(line, &request, &update), ProtoLineKind::kError)
        << "line: " << line;
  }
}

TEST(UpdateLineParseTest, UpdateLinesWithoutSinkAreErrors) {
  // A caller that passes no ProtoUpdate sink (legacy transports) must see
  // update lines rejected as parse errors, not silently dropped.
  ServeRequest request;
  EXPECT_EQ(ParseProtoLine("+1 2", &request), ProtoLineKind::kError);
  EXPECT_EQ(ParseProtoLine("-1 2", &request), ProtoLineKind::kError);
  // Queries still parse without a sink.
  EXPECT_EQ(ParseProtoLine("q 1 3 5", &request), ProtoLineKind::kQuery);
}

// --- applier counters -----------------------------------------------------

TEST(LiveUpdateApplierTest, CountersSplitAppliedAndNoops) {
  const Graph g = HolmeKim(50, 3, 0.4, 5);
  DynamicTsdIndex index(g);
  LiveUpdateApplier applier(index);

  // Find one existing and one absent edge deterministically.
  const VertexId u = 0;
  const VertexId present = g.neighbors(0).front();
  VertexId absent = 1;
  while (index.graph().HasEdge(u, absent) || absent == u) ++absent;

  EXPECT_FALSE(applier.ApplyUpdate(true, u, present));   // dup insert
  EXPECT_TRUE(applier.ApplyUpdate(false, u, present));   // remove
  EXPECT_TRUE(applier.ApplyUpdate(true, u, present));    // re-insert
  EXPECT_TRUE(applier.ApplyUpdate(true, u, absent));     // new edge
  EXPECT_FALSE(applier.ApplyUpdate(false, 0, 0));        // self loop
  EXPECT_FALSE(applier.ApplyUpdate(true, g.num_vertices(), 0));  // range
  // Ids wider than VertexId are noops before narrowing, never a wrap.
  EXPECT_FALSE(applier.ApplyUpdate(true, std::uint64_t{1} << 40, 0));
  EXPECT_FALSE(applier.ApplyUpdate(false, 0, ~std::uint64_t{0}));

  const LiveUpdateStats stats = applier.stats();
  EXPECT_EQ(stats.applied, 3u);
  EXPECT_EQ(stats.noops, 5u);
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.removes, 1u);

  const std::string tables = applier.RenderStatsTables();
  EXPECT_NE(tables.find("live updates"), std::string::npos);
  EXPECT_NE(tables.find("update latency"), std::string::npos);
  EXPECT_NE(tables.find("epoch reclamation"), std::string::npos);
}

// --- raw concurrency: the sanitizer target --------------------------------

/// Readers hammer the lock-free query paths while one updater streams
/// randomized churn through the applier. Readers check only invariants that
/// hold mid-flight (each call sees a consistent slice, so contexts count ==
/// score); the bit-exact differential runs after quiescence.
TEST(LiveUpdateStressTest, ConcurrentReadersMatchRebuildAfterQuiescence) {
  const Graph g = HolmeKim(120, 4, 0.5, 7);
  const VertexId n = g.num_vertices();
  DynamicTsdIndex index(g);
  LiveUpdateApplier applier(index);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reader_calls{0};
  std::vector<std::string> failures(3);
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(Hash64(0xfeedULL, static_cast<std::uint64_t>(t)));
      IndexQueryScratch scratch;
      QueryOptions options;
      options.num_threads = (t == 2) ? 2 : 1;  // one reader runs a
                                               // multi-threaded pipeline
      QuerySession session(options);
      while (!stop.load(std::memory_order_relaxed)) {
        const VertexId v = static_cast<VertexId>(rng.Uniform(n));
        const std::uint32_t k = kKs[rng.Uniform(std::size(kKs))];
        const std::uint32_t score = index.Score(v, k, scratch);
        const ScoreResult full = index.ScoreWithContexts(v, k, scratch);
        // Per-call consistency: one pinned slice, one component per
        // context. (score and full.score may differ from each other — an
        // update can land between the two calls.)
        if (full.contexts.size() != full.score) {
          failures[t] = "contexts/score mismatch at v=" + std::to_string(v);
          return;
        }
        if (rng.Uniform(8) == 0) {
          const TopRResult top = index.TopR(5, k, session);
          if (top.entries.size() > 5) {
            failures[t] = "TopR overfilled";
            return;
          }
        }
        (void)score;
        reader_calls.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The updater: randomized churn, biased toward inserts so the graph
  // stays interesting; every update advances the epoch and retires slices
  // under the readers' feet.
  Rng rng(0xabcdef);
  for (int i = 0; i < 1500; ++i) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(n));
    const VertexId v = static_cast<VertexId>(rng.Uniform(n));
    applier.ApplyUpdate(/*insert=*/rng.Uniform(3) != 0, u, v);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
  EXPECT_GT(reader_calls.load(), 0u);

  // Reclamation really happened: slices were retired, and — once the
  // readers have unpinned and a few more updates advance the epoch past
  // the grace period — freed. (While readers are pinned, advances stall by
  // design; freeing is deferred, never skipped.)
  EXPECT_GT(index.epoch_stats().retired, 0u);
  for (int i = 0; i < 10; ++i) {
    applier.ApplyUpdate(/*insert=*/i % 2 == 0, 0, 1);
  }
  const EpochStats epochs = index.epoch_stats();
  EXPECT_GT(epochs.freed, 0u);

  // Quiesced differential: bit-identical to a from-scratch build.
  const Graph final_graph = index.graph().ToGraph();
  const TsdIndex fresh = TsdIndex::Build(final_graph);
  IndexQueryScratch scratch;
  IndexQueryScratch fresh_scratch;
  for (VertexId v = 0; v < n; ++v) {
    for (std::uint32_t k : {2u, 3u, 4u}) {
      ASSERT_EQ(index.Score(v, k, scratch), fresh.Score(v, k, fresh_scratch))
          << "v=" << v << " k=" << k;
    }
  }
  QuerySession session;
  for (std::uint32_t k : kKs) {
    for (std::uint32_t r : kRs) {
      ExpectSameEntries(fresh.TopR(r, k, session),
                        index.TopR(r, k, session),
                        "post-quiesce k=" + std::to_string(k) +
                            " r=" + std::to_string(r));
    }
  }
}

// --- transport determinism ------------------------------------------------

/// Queries interleaved with updates, including deliberate noops (duplicate
/// insert, absent remove, out-of-range id) and a malformed update line.
/// The same tenant queries before and after each update, so the transcript
/// proves the ordering barrier: pre-update queries answered on the old
/// graph, post-update queries on the new one.
constexpr const char* kUpdateScript =
    "# live-update differential workload\n"
    "q 1 3 5\n"
    "q 2 2 4\n"
    "+0 1\n"          // likely a duplicate -> noop (HolmeKim edge)
    "q 1 3 5\n"
    "flush\n"
    "-0 1\n"          // now absent or present deterministically
    "q 2 2 4\n"
    "q 3 4 3\n"
    "+5 90\n"
    "+5 90\n"         // duplicate of the line above -> noop
    "q 1 3 5\n"
    "-5 90\n"
    "+999999 3\n"     // out of range -> noop
    "+x 3\n"          // malformed -> parse error
    "flush\n"
    "q 2 2 4\n"
    "q 4 5 10\n";

ShardedServeOptions LoopOptions(std::uint32_t shards, std::uint32_t threads) {
  ShardedServeOptions options;
  options.num_shards = shards;
  options.shard.query_options.num_threads = threads;
  return options;
}

struct ScriptRun {
  std::string transcript;
  StdinProtoStats stats;
};

/// One stdin-protocol run of kUpdateScript over a FRESH dynamic index.
ScriptRun RunUpdateScriptOverStdin(const Graph& g, std::uint32_t shards,
                                   std::uint32_t threads,
                                   Graph* final_graph = nullptr) {
  DynamicTsdIndex index(g);
  LiveUpdateApplier applier(index);
  ShardedServeLoop loop(index, LoopOptions(shards, threads));
  std::istringstream in(kUpdateScript);
  std::ostringstream out;
  ScriptRun run;
  run.stats = RunStdinProto(in, out, loop, &applier);
  loop.Shutdown();
  run.transcript = out.str();
  if (final_graph != nullptr) *final_graph = index.graph().ToGraph();
  return run;
}

TEST(LiveUpdateTransportTest, StdinTranscriptByteStableAcrossShardsThreads) {
  const Graph g = HolmeKim(200, 5, 0.6, 11);
  Graph final_graph;
  const ScriptRun baseline = RunUpdateScriptOverStdin(g, 1, 1, &final_graph);
  EXPECT_EQ(baseline.stats.updates, 6u);
  EXPECT_EQ(baseline.stats.parse_errors, 1u);
  // The HolmeKim seed graph contains {0, 1}: the insert is a noop, the
  // remove applies. {5, 90}: insert applies, duplicate is a noop, remove
  // applies. Out-of-range is a noop.
  EXPECT_NE(baseline.transcript.find("applied"), std::string::npos);
  EXPECT_NE(baseline.transcript.find("noop"), std::string::npos);
  EXPECT_EQ(baseline.transcript.find("update-unsupported"),
            std::string::npos);
  EXPECT_NE(baseline.transcript.find("! parse-error"), std::string::npos);

  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    for (const std::uint32_t threads : {1u, 8u}) {
      const ScriptRun run = RunUpdateScriptOverStdin(g, shards, threads);
      EXPECT_EQ(run.transcript, baseline.transcript)
          << "shards=" << shards << " threads=" << threads;
    }
  }

  // Correctness, not just stability: the served index after the script
  // matches a from-scratch build of the post-update graph.
  DynamicTsdIndex replay(g);
  LiveUpdateApplier applier(replay);
  applier.ApplyUpdate(true, 0, 1);
  applier.ApplyUpdate(false, 0, 1);
  applier.ApplyUpdate(true, 5, 90);
  applier.ApplyUpdate(true, 5, 90);
  applier.ApplyUpdate(false, 5, 90);
  applier.ApplyUpdate(true, 999999, 3);
  const TsdIndex fresh = TsdIndex::Build(final_graph);
  QuerySession session;
  for (std::uint32_t k : kKs) {
    ExpectSameEntries(fresh.TopR(5, k, session), replay.TopR(5, k, session),
                      "replay k=" + std::to_string(k));
  }
}

TEST(LiveUpdateTransportTest, SocketTranscriptMatchesStdinWithUpdates) {
  const Graph g = HolmeKim(200, 5, 0.6, 11);
  const ScriptRun baseline = RunUpdateScriptOverStdin(g, 1, 1);

  for (const std::uint32_t shards : {1u, 2u}) {
    DynamicTsdIndex index(g);
    LiveUpdateApplier applier(index);
    ShardedServeLoop loop(index, LoopOptions(shards, 1));
    SocketServerOptions options;
    options.updater = &applier;
    SocketServer server(loop, options);
    server.Start();
    SocketClient client = SocketClient::Connect("127.0.0.1", server.port(),
                                                /*recv_timeout_ms=*/60000);
    std::istringstream in(kUpdateScript);
    std::ostringstream out;
    const SocketClientScriptStats stats =
        RunSocketClientScript(in, out, client);
    EXPECT_EQ(stats.updates, 6u);
    EXPECT_EQ(stats.parse_errors, 1u);
    EXPECT_EQ(stats.server_errors, 0u);
    EXPECT_EQ(out.str(), baseline.transcript) << "shards=" << shards;
    client.Close();
    const SocketServerStats server_stats = server.stats();
    server.Shutdown();
    loop.Shutdown();
    EXPECT_EQ(server_stats.updates, 6u);
  }
}

TEST(LiveUpdateTransportTest, UpdatesWithoutDynamicIndexAreUnsupported) {
  const Graph g = HolmeKim(60, 3, 0.4, 2);
  const TsdIndex tsd = TsdIndex::Build(g);
  ShardedServeLoop loop(tsd, {});
  std::istringstream in("q 1 3 5\n+0 1\nq 1 3 5\n");
  std::ostringstream out;
  const StdinProtoStats stats = RunStdinProto(in, out, loop, nullptr);
  loop.Shutdown();
  EXPECT_EQ(stats.updates, 1u);
  EXPECT_NE(out.str().find("= 2 update-unsupported"), std::string::npos);
  // Queries around the unsupported update still answer identically.
  const std::string transcript = out.str();
  const auto first = transcript.find("= 1 ok");
  const auto second = transcript.find("= 3 ok");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
}

// --- the dynamic<->snapshot seam ------------------------------------------

TEST(LiveUpdateSnapshotTest, FrozenSavedAndMmappedMatchLiveIndex) {
  const Graph g = HolmeKim(150, 4, 0.5, 3);
  const VertexId n = g.num_vertices();
  DynamicTsdIndex dynamic(g);

  Rng rng(0x5eed);
  for (int i = 0; i < 300; ++i) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(n));
    const VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (rng.Uniform(3) != 0) {
      dynamic.InsertEdge(u, v);
    } else {
      dynamic.RemoveEdge(u, v);
    }
  }

  const TsdIndex frozen = dynamic.Freeze();
  const std::string path = TempPath("tsd_live_update_seam.snap");
  frozen.Save(path);
  const TsdIndex loaded = TsdIndex::Load(path);

  // Zero-copy mmap path: the index borrows the reader's mapping, so the
  // reader outlives it.
  SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(SnapshotReader::Open(path, &reader, &error)) << error;
  TsdIndex mapped;
  ASSERT_TRUE(TsdIndex::LoadFromSnapshot(reader, &mapped, &error)) << error;

  std::vector<BatchQuery> batch;
  for (std::uint32_t k : kKs) {
    for (std::uint32_t r : kRs) batch.push_back({k, r});
  }

  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    QueryOptions options;
    options.num_threads = threads;
    QuerySession session(options);
    const std::string label = "threads=" + std::to_string(threads);

    for (std::uint32_t k : kKs) {
      for (std::uint32_t r : kRs) {
        const TopRResult live = dynamic.TopR(r, k, session);
        ExpectSameEntries(live, frozen.TopR(r, k, session),
                          "frozen " + label + " k=" + std::to_string(k));
        ExpectSameEntries(live, loaded.TopR(r, k, session),
                          "loaded " + label + " k=" + std::to_string(k));
        ExpectSameEntries(live, mapped.TopR(r, k, session),
                          "mapped " + label + " k=" + std::to_string(k));
      }
    }

    const std::vector<TopRResult> live_batch =
        dynamic.SearchBatch(batch, session);
    const std::vector<TopRResult> loaded_batch =
        loaded.SearchBatch(batch, session);
    const std::vector<TopRResult> mapped_batch =
        mapped.SearchBatch(batch, session);
    ASSERT_EQ(live_batch.size(), batch.size());
    ASSERT_EQ(loaded_batch.size(), batch.size());
    ASSERT_EQ(mapped_batch.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ExpectSameEntries(live_batch[i], loaded_batch[i],
                        "batch loaded " + label + " i=" + std::to_string(i));
      ExpectSameEntries(live_batch[i], mapped_batch[i],
                        "batch mapped " + label + " i=" + std::to_string(i));
    }
  }

  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tsd
