// Control for guarded_no_lock.cc: the identical guarded access, but under
// MutexLock. MUST compile cleanly under `clang -Wthread-safety -Werror`;
// if it does not, the negative test's failure means the harness (flags,
// include paths) is broken rather than the analysis catching the bug.
#include "common/mutex.h"

namespace {

class Counter {
 public:
  void Increment() {
    tsd::MutexLock lock(mutex_);
    ++value_;
  }

 private:
  tsd::Mutex mutex_;
  int value_ TSD_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
