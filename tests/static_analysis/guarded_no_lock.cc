// Negative compile test: reading a TSD_GUARDED_BY field without holding
// its mutex MUST fail under `clang -Wthread-safety -Werror`. If this file
// ever compiles under the thread-safety build, the annotation substrate
// has stopped enforcing anything — tests/static_analysis_test.cmake treats
// successful compilation as a test failure. The matching control
// (guarded_with_lock.cc) proves the failure is the missing lock, not the
// harness.
#include "common/mutex.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // BUG (deliberate): value_ requires mutex_, none held.
  }

 private:
  tsd::Mutex mutex_;
  int value_ TSD_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
