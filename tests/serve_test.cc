// Concurrent-serving suite for the shared-immutable searcher contract and
// the ServeLoop coalescing layer.
//
//  * N client threads query ONE shared searcher instance, each through its
//    own QuerySession — results must be bit-identical to serial execution.
//    Runs under the existing TSan CI job, so any hidden searcher mutation
//    shows up as a data race, not just a wrong score.
//  * ServeLoop: replies (through MPSC submission, coalesced batches, and
//    futures) equal serial TopR; admission control rejects deterministically;
//    requests queued before Start() coalesce into one batch.
//  * The stdin line protocol produces byte-identical transcripts at 1 and 4
//    server pipeline threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/baselines.h"
#include "core/bound_search.h"
#include "core/dynamic_tsd_index.h"
#include "core/gct_index.h"
#include "core/hybrid_search.h"
#include "core/online_search.h"
#include "core/query_session.h"
#include "core/tsd_index.h"
#include "graph/generators.h"
#include "serve_test_util.h"
#include "server/serve_loop.h"
#include "server/sharded_serve.h"
#include "server/stdin_proto.h"

namespace tsd {
namespace {

using test::ExpectSameEntries;

std::vector<BatchQuery> TestQueries() {
  return {{2, 5}, {3, 10}, {4, 3}, {5, 1}, {3, 7}, {2, 1}, {6, 4}, {4, 10}};
}

/// Serial ground truth: one session, one thread, per-query TopR.
std::vector<TopRResult> SerialReference(const DiversitySearcher& searcher,
                                        const std::vector<BatchQuery>& qs) {
  QuerySession session;
  std::vector<TopRResult> out;
  for (const BatchQuery& q : qs) {
    out.push_back(searcher.TopR(q.r, q.k, session));
  }
  return out;
}

/// The tentpole property: a shared const searcher answers concurrent
/// queries from `num_clients` threads (own session each) bit-identically to
/// serial execution.
void CheckConcurrentEqualsSerial(const DiversitySearcher& searcher,
                                 std::uint32_t num_clients) {
  const std::vector<BatchQuery> queries = TestQueries();
  const std::vector<TopRResult> reference = SerialReference(searcher, queries);

  std::vector<std::vector<TopRResult>> per_client(num_clients);
  std::vector<std::thread> clients;
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      // Odd clients run their session's pipeline with 2 workers to mix
      // intra-query parallelism into the contention pattern.
      QuerySession session(QueryOptions{c % 2 == 0 ? 1U : 2U, 0});
      for (const BatchQuery& q : queries) {
        per_client[c].push_back(searcher.TopR(q.r, q.k, session));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (std::uint32_t c = 0; c < num_clients; ++c) {
    ASSERT_EQ(per_client[c].size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      ExpectSameEntries(reference[q], per_client[c][q],
                        searcher.name() + " client=" + std::to_string(c) +
                            " q=" + std::to_string(q));
    }
  }
}

TEST(SharedSearcherTest, GctIndexConcurrentQueriesMatchSerial) {
  const Graph g = HolmeKim(300, 5, 0.6, 21);
  const GctIndex gct = GctIndex::Build(g);
  CheckConcurrentEqualsSerial(gct, 4);
}

TEST(SharedSearcherTest, TsdIndexConcurrentQueriesMatchSerial) {
  const Graph g = HolmeKim(300, 5, 0.6, 22);
  const TsdIndex tsd = TsdIndex::Build(g);
  CheckConcurrentEqualsSerial(tsd, 4);
}

TEST(SharedSearcherTest, OnlineSearcherConcurrentQueriesMatchSerial) {
  const Graph g = HolmeKim(150, 4, 0.5, 23);
  const OnlineSearcher online(g);
  CheckConcurrentEqualsSerial(online, 4);
}

TEST(SharedSearcherTest, BoundSearcherConcurrentQueriesMatchSerial) {
  const Graph g = HolmeKim(150, 4, 0.5, 24);
  const BoundSearcher bound(g);
  CheckConcurrentEqualsSerial(bound, 4);
}

TEST(SharedSearcherTest, HybridAndBaselinesConcurrentQueriesMatchSerial) {
  const Graph g = HolmeKim(150, 4, 0.5, 25);
  const GctIndex gct = GctIndex::Build(g);
  const HybridSearcher hybrid(g, gct);
  CheckConcurrentEqualsSerial(hybrid, 4);
  const CompDivSearcher comp(g);
  CheckConcurrentEqualsSerial(comp, 4);
  const CoreDivSearcher core(g);
  CheckConcurrentEqualsSerial(core, 4);
}

TEST(SharedSearcherTest, DynamicIndexConcurrentQueriesBetweenUpdates) {
  const Graph g = HolmeKim(150, 4, 0.5, 26);
  DynamicTsdIndex dynamic(g);
  dynamic.InsertEdge(0, 140);  // mutate first, then serve concurrently
  CheckConcurrentEqualsSerial(dynamic, 4);
}

TEST(SharedSearcherTest, ConcurrentBatchesMatchSerial) {
  const Graph g = HolmeKim(200, 5, 0.6, 27);
  const GctIndex gct = GctIndex::Build(g);
  const std::vector<BatchQuery> queries = TestQueries();
  const std::vector<TopRResult> reference = SerialReference(gct, queries);

  std::vector<std::vector<TopRResult>> per_client(4);
  std::vector<std::thread> clients;
  for (std::uint32_t c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      QuerySession session;
      per_client[c] = gct.SearchBatch(queries, session);
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::uint32_t c = 0; c < 4; ++c) {
    ASSERT_EQ(per_client[c].size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      ExpectSameEntries(reference[q], per_client[c][q],
                        "batch client=" + std::to_string(c) +
                            " q=" + std::to_string(q));
    }
  }
}

// The default-session convenience overloads must agree with the session
// path (source compatibility is not enough; results must match too).
TEST(SharedSearcherTest, DefaultSessionMatchesExplicitSession) {
  const Graph g = HolmeKim(150, 4, 0.5, 28);
  GctIndex gct = GctIndex::Build(g);
  QuerySession session;
  for (const BatchQuery& q : TestQueries()) {
    ExpectSameEntries(gct.TopR(q.r, q.k, session), gct.TopR(q.r, q.k),
                      "default-session k=" + std::to_string(q.k));
  }
}

TEST(ServeLoopTest, RepliesMatchSerialTopR) {
  const Graph g = HolmeKim(200, 5, 0.6, 31);
  const GctIndex gct = GctIndex::Build(g);
  const std::vector<BatchQuery> queries = TestQueries();
  const std::vector<TopRResult> reference = SerialReference(gct, queries);

  ServeLoop loop(gct);
  loop.Start();
  std::vector<Future<ServeReply>> futures;
  for (const BatchQuery& q : queries) {
    futures.push_back(loop.Submit(ServeRequest{7, q.k, q.r}));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ServeReply reply = futures[i].Get();
    ASSERT_EQ(reply.status, ServeStatus::kOk);
    ExpectSameEntries(reference[i], reply.result,
                      "serve q=" + std::to_string(i));
  }
  loop.Shutdown();
  const ServeStats stats = loop.stats();
  EXPECT_EQ(stats.accepted, queries.size());
  EXPECT_EQ(stats.served, queries.size());
}

TEST(ServeLoopTest, ConcurrentClientsGetSerialAnswers) {
  const Graph g = HolmeKim(200, 5, 0.6, 32);
  const GctIndex gct = GctIndex::Build(g);
  const std::vector<BatchQuery> queries = TestQueries();
  const std::vector<TopRResult> reference = SerialReference(gct, queries);

  ServeOptions options;
  options.max_batch = 5;  // force several coalesced batches under load
  ServeLoop loop(gct, options);
  loop.Start();

  constexpr std::uint32_t kClients = 4;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (std::uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 3; ++round) {
        std::vector<Future<ServeReply>> futures;
        for (const BatchQuery& q : queries) {
          futures.push_back(loop.Submit(ServeRequest{c, q.k, q.r}));
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
          ServeReply reply = futures[i].Get();
          if (reply.status != ServeStatus::kOk ||
              reply.result.entries.size() != reference[i].entries.size()) {
            failures[c] = "bad reply q=" + std::to_string(i);
            return;
          }
          for (std::size_t e = 0; e < reference[i].entries.size(); ++e) {
            if (reply.result.entries[e].vertex !=
                    reference[i].entries[e].vertex ||
                reply.result.entries[e].score !=
                    reference[i].entries[e].score ||
                reply.result.entries[e].contexts !=
                    reference[i].entries[e].contexts) {
              failures[c] = "mismatch q=" + std::to_string(i) +
                            " rank=" + std::to_string(e);
              return;
            }
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::uint32_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }

  loop.Shutdown();
  const ServeStats stats = loop.stats();
  EXPECT_EQ(stats.accepted, kClients * 3 * queries.size());
  EXPECT_EQ(stats.served, stats.accepted);
  std::uint64_t histogram_total = 0;
  for (std::size_t s = 1; s < stats.batch_size_count.size(); ++s) {
    histogram_total += s * stats.batch_size_count[s];
    EXPECT_LE(s, 5u) << "batch exceeded max_batch";
  }
  EXPECT_EQ(histogram_total, stats.served);
}

// Regression for the shutdown deadlock: a rejecting Submit transiently
// increments queued_ and must re-notify the server after decrementing, or a
// server parked on the exit predicate (!accepting_ && queued_ == 0) never
// re-checks it and Shutdown()'s join() hangs. Hammer both rejection flavors
// (queue-depth while serving, shutdown-rejection while draining) from
// several threads racing Shutdown(); the test completing is the assertion.
TEST(ServeLoopTest, RejectionsRacingShutdownDoNotDeadlock) {
  const Graph g = HolmeKim(120, 4, 0.5, 33);
  const GctIndex gct = GctIndex::Build(g);
  ServeOptions options;
  options.max_queue_depth = 1;  // every concurrent same-tenant burst rejects
  ServeLoop loop(gct, options);
  loop.Start();

  constexpr std::uint32_t kClients = 4;
  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> resolved{0};
  for (std::uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        // Shared tenant 0 so the depth-1 cap rejects most of the burst.
        Future<ServeReply> f = loop.Submit(ServeRequest{0, 3, 2});
        ServeReply reply = f.Get();
        ASSERT_TRUE(reply.status == ServeStatus::kOk ||
                    reply.status == ServeStatus::kRejectedQueueDepth ||
                    reply.status == ServeStatus::kRejectedShutdown);
        resolved.fetch_add(1);
      }
    });
  }
  // Race the shutdown against the in-flight bursts (no sleep: the interesting
  // interleaving is Submit passing the accepting_ check around the flip).
  loop.Shutdown();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(resolved.load(), kClients * 200u);

  const ServeStats stats = loop.stats();
  EXPECT_EQ(stats.accepted, stats.served);
  EXPECT_EQ(stats.accepted + stats.rejected_queue_depth +
                stats.rejected_shutdown,
            kClients * 200u);
}

// Requests submitted before Start() coalesce into one deterministic batch.
TEST(ServeLoopTest, PreStartSubmissionsCoalesceIntoOneBatch) {
  const Graph g = HolmeKim(150, 4, 0.5, 33);
  const GctIndex gct = GctIndex::Build(g);
  ServeLoop loop(gct);
  std::vector<Future<ServeReply>> futures;
  for (const BatchQuery& q : TestQueries()) {
    futures.push_back(loop.Submit(ServeRequest{1, q.k, q.r}));
  }
  loop.Start();
  for (Future<ServeReply>& f : futures) {
    EXPECT_EQ(f.Get().status, ServeStatus::kOk);
  }
  loop.Shutdown();
  const ServeStats stats = loop.stats();
  EXPECT_EQ(stats.batches, 1u);
  ASSERT_EQ(stats.batch_size_count.size(), TestQueries().size() + 1);
  EXPECT_EQ(stats.batch_size_count[TestQueries().size()], 1u);
}

TEST(ServeLoopTest, AdmissionControlRejectsDeterministically) {
  const Graph g = HolmeKim(100, 4, 0.5, 34);
  const GctIndex gct = GctIndex::Build(g);
  ServeOptions options;
  options.max_r = 10;
  options.max_queue_depth = 2;
  ServeLoop loop(gct, options);  // not started: depth cannot drain

  EXPECT_EQ(loop.Submit(ServeRequest{1, 3, 11}).Get().status,
            ServeStatus::kRejectedRLimit);
  EXPECT_EQ(loop.Submit(ServeRequest{1, 1, 5}).Get().status,
            ServeStatus::kRejectedBadQuery);
  EXPECT_EQ(loop.Submit(ServeRequest{1, 3, 0}).Get().status,
            ServeStatus::kRejectedBadQuery);

  // Tenant 1 fills its depth; tenant 2 is unaffected.
  Future<ServeReply> a = loop.Submit(ServeRequest{1, 3, 5});
  Future<ServeReply> b = loop.Submit(ServeRequest{1, 4, 5});
  EXPECT_EQ(loop.Submit(ServeRequest{1, 5, 5}).Get().status,
            ServeStatus::kRejectedQueueDepth);
  Future<ServeReply> c = loop.Submit(ServeRequest{2, 3, 5});

  loop.Shutdown();  // starts, drains the accepted four, joins
  EXPECT_EQ(a.Get().status, ServeStatus::kOk);
  EXPECT_EQ(b.Get().status, ServeStatus::kOk);
  EXPECT_EQ(c.Get().status, ServeStatus::kOk);
  EXPECT_EQ(loop.Submit(ServeRequest{1, 3, 5}).Get().status,
            ServeStatus::kRejectedShutdown);

  const ServeStats stats = loop.stats();
  EXPECT_EQ(stats.rejected_r_limit, 1u);
  EXPECT_EQ(stats.rejected_bad_query, 2u);
  EXPECT_EQ(stats.rejected_queue_depth, 1u);
  EXPECT_EQ(stats.rejected_shutdown, 1u);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.served, 3u);
}

// A throwing searcher must not take the server down: its batch's futures
// resolve to kInternalError and the loop keeps serving.
TEST(ServeLoopTest, ThrowingSearcherFailsRequestsNotTheServer) {
  class ThrowingSearcher : public DiversitySearcher {
   public:
    TopRResult TopR(std::uint32_t, std::uint32_t,
                    QuerySession&) const override {
      throw CheckError("synthetic query failure");
    }
    std::string name() const override { return "throwing"; }
  };

  ThrowingSearcher searcher;
  ServeLoop loop(searcher);
  Future<ServeReply> a = loop.Submit(ServeRequest{1, 3, 5});
  Future<ServeReply> b = loop.Submit(ServeRequest{2, 4, 5});
  loop.Start();
  EXPECT_EQ(a.Get().status, ServeStatus::kInternalError);
  EXPECT_EQ(b.Get().status, ServeStatus::kInternalError);
  // The server survived; later requests still get (error) replies.
  EXPECT_EQ(loop.Submit(ServeRequest{3, 2, 1}).Get().status,
            ServeStatus::kInternalError);
  loop.Shutdown();
  const ServeStats stats = loop.stats();
  EXPECT_EQ(stats.failed, 3u);
  EXPECT_EQ(stats.served, 0u);
}

// A sharded loop must answer exactly like a 1-shard loop — and like serial
// TopR — for every searcher: sharding only changes who dispatches, never
// what is computed. Also cross-checks that the summed totals equal the
// per-shard statistics for every counter.
TEST(ShardedServeLoopTest, OneShardVsFourShardsAcrossAllSearchers) {
  const Graph g = HolmeKim(150, 4, 0.5, 36);
  const GctIndex gct = GctIndex::Build(g);
  const TsdIndex tsd = TsdIndex::Build(g);
  const OnlineSearcher online(g);
  const BoundSearcher bound(g);
  const HybridSearcher hybrid(g, gct);
  const CompDivSearcher comp(g);
  const CoreDivSearcher core(g);
  DynamicTsdIndex dynamic(g);
  dynamic.InsertEdge(0, 140);  // mutate first, then serve shared-immutable

  const std::vector<const DiversitySearcher*> searchers = {
      &online, &bound, &tsd, &gct, &dynamic, &hybrid, &comp, &core};
  const std::vector<BatchQuery> queries = TestQueries();
  for (const DiversitySearcher* searcher : searchers) {
    const std::vector<TopRResult> reference =
        SerialReference(*searcher, queries);
    for (std::uint32_t shards : {1u, 4u}) {
      ShardedServeOptions options;
      options.num_shards = shards;
      ShardedServeLoop loop(*searcher, options);
      loop.Start();
      std::vector<Future<ServeReply>> futures;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        // One tenant per query so a 4-shard loop exercises several shards.
        futures.push_back(
            loop.Submit(ServeRequest{i, queries[i].k, queries[i].r}));
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        ServeReply reply = futures[i].Get();
        ASSERT_EQ(reply.status, ServeStatus::kOk);
        ExpectSameEntries(reference[i], reply.result,
                          searcher->name() + " shards=" +
                              std::to_string(shards) +
                              " q=" + std::to_string(i));
      }
      loop.Shutdown();

      // Shard statistics must sum to the totals, counter for counter.
      const ServeStats total = loop.stats();
      ServeStats summed;
      for (std::uint32_t s = 0; s < loop.num_shards(); ++s) {
        summed += loop.shard_stats(s);
      }
      EXPECT_EQ(total.accepted, queries.size()) << searcher->name();
      EXPECT_EQ(summed.accepted, total.accepted) << searcher->name();
      EXPECT_EQ(summed.served, total.served) << searcher->name();
      EXPECT_EQ(summed.failed, total.failed) << searcher->name();
      EXPECT_EQ(summed.batches, total.batches) << searcher->name();
      EXPECT_EQ(summed.rejected_bad_query + summed.rejected_r_limit +
                    summed.rejected_queue_depth + summed.rejected_shutdown,
                0u)
          << searcher->name();
      ASSERT_EQ(summed.batch_size_count.size(),
                total.batch_size_count.size());
      for (std::size_t b = 0; b < total.batch_size_count.size(); ++b) {
        EXPECT_EQ(summed.batch_size_count[b], total.batch_size_count[b])
            << searcher->name() << " bucket " << b;
      }
    }
  }
}

// The stdin protocol transcript must be byte-identical whether one consumer
// or four shards serve it (replies are a pure function of each request; the
// proto layer's reorder buffer restores submission order).
TEST(StdinProtoTest, TranscriptByteStableAcrossShardCounts) {
  const Graph g = HolmeKim(200, 5, 0.6, 37);
  const GctIndex gct = GctIndex::Build(g);
  const std::string script =
      "q 11 3 5\n"
      "q 12 4 10\n"
      "q 13 2 3\n"
      "q 14 5 2\n"
      "flush\n"
      "q 15 3 2000\n"  // r-limit rejection
      "q 16 6 1\n"
      "q 11 4 4\n"
      "q 12 2 7\n";

  auto run = [&](std::uint32_t shards) {
    ShardedServeOptions options;
    options.num_shards = shards;
    ShardedServeLoop loop(gct, options);
    std::istringstream in(script);
    std::ostringstream out;
    const StdinProtoStats stats = RunStdinProto(in, out, loop);
    loop.Shutdown();
    EXPECT_EQ(stats.requests, 8u);
    return out.str();
  };

  const std::string s1 = run(1);
  EXPECT_EQ(s1, run(2));
  EXPECT_EQ(s1, run(4));
  EXPECT_NE(s1.find("= 1 ok"), std::string::npos);
  EXPECT_NE(s1.find("= 5 rejected:r-limit"), std::string::npos);
}

// The stdin protocol transcript must be byte-identical across server
// pipeline thread counts (the CI smoke asserts the same end to end).
TEST(StdinProtoTest, TranscriptByteStableAcrossServerThreads) {
  const Graph g = HolmeKim(200, 5, 0.6, 35);
  const GctIndex gct = GctIndex::Build(g);
  const std::string script =
      "# multi-tenant script\n"
      "q 1 3 5\n"
      "q 2 4 10\n"
      "q 1 2 3\n"
      "flush\n"
      "q 3 5 2\n"
      "q 2 3 2000\n"  // r-limit rejection (max_r default 1024)
      "bogus line\n"
      "q 4 6 1\n";

  auto run = [&](std::uint32_t threads) {
    ServeOptions options;
    options.query_options.num_threads = threads;
    ServeLoop loop(gct, options);
    std::istringstream in(script);
    std::ostringstream out;
    const StdinProtoStats stats = RunStdinProto(in, out, loop);
    loop.Shutdown();
    EXPECT_EQ(stats.requests, 6u);
    EXPECT_EQ(stats.parse_errors, 1u);
    return out.str();
  };

  const std::string t1 = run(1);
  const std::string t4 = run(4);
  EXPECT_EQ(t1, t4);
  EXPECT_NE(t1.find("= 1 ok"), std::string::npos);
  EXPECT_NE(t1.find("= 5 rejected:r-limit"), std::string::npos);
  EXPECT_NE(t1.find("! parse-error line 8"), std::string::npos);
}

}  // namespace
}  // namespace tsd
