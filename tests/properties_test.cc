// Model-level property tests: invariants that must hold for the
// truss-based structural diversity model on ANY graph, checked over a
// parameterized sweep of generators, sizes, and thresholds.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/gct_index.h"
#include "core/tsd_index.h"
#include "graph/generators.h"
#include "truss/ego_truss.h"
#include "truss/k_truss.h"
#include "graph/triangle.h"
#include "truss/truss_decomposition.h"

namespace tsd {
namespace {

struct PropertyCase {
  std::string name;
  Graph graph;
};

const std::vector<PropertyCase>& Cases() {
  static const std::vector<PropertyCase>* cases = [] {
    auto* v = new std::vector<PropertyCase>();
    v->push_back({"figure1", PaperFigure1Graph()});
    v->push_back({"hk_dense", HolmeKim(250, 8, 0.8, 51)});
    v->push_back({"hk_sparse", HolmeKim(300, 3, 0.2, 52)});
    v->push_back({"er", ErdosRenyi(120, 700, 53)});
    v->push_back({"rmat", RMat(8, 8, 0.5, 0.2, 0.2, 54)});
    return v;
  }();
  return *cases;
}

class ModelPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  const Graph& graph() const { return Cases()[GetParam()].graph; }
};

// Every social context at threshold k has at least k members (the smallest
// k-truss is the k-clique).
TEST_P(ModelPropertyTest, ContextsHaveAtLeastKMembers) {
  GctIndex index = GctIndex::Build(graph());
  for (VertexId v = 0; v < graph().num_vertices(); v += 3) {
    for (std::uint32_t k = 2; k <= 6; ++k) {
      for (const SocialContext& context :
           index.ScoreWithContexts(v, k).contexts) {
        EXPECT_GE(context.size(), k) << "v=" << v << " k=" << k;
      }
    }
  }
}

// Contexts at a level partition a subset of the ego-network members:
// no vertex appears in two contexts, and none equals the center.
TEST_P(ModelPropertyTest, ContextsAreDisjointAndExcludeCenter) {
  GctIndex index = GctIndex::Build(graph());
  for (VertexId v = 0; v < graph().num_vertices(); v += 3) {
    for (std::uint32_t k = 2; k <= 5; ++k) {
      std::set<VertexId> seen;
      for (const SocialContext& context :
           index.ScoreWithContexts(v, k).contexts) {
        for (VertexId member : context) {
          EXPECT_NE(member, v);
          EXPECT_TRUE(seen.insert(member).second)
              << "member " << member << " in two contexts, v=" << v;
        }
      }
    }
  }
}

// Refinement: every (k+1)-context is fully contained in exactly one
// k-context (k-trusses are nested, and connectivity only coarsens as k
// drops).
TEST_P(ModelPropertyTest, ContextsRefineAsKGrows) {
  GctIndex index = GctIndex::Build(graph());
  for (VertexId v = 0; v < graph().num_vertices(); v += 5) {
    for (std::uint32_t k = 2; k <= 5; ++k) {
      const auto coarse = index.ScoreWithContexts(v, k).contexts;
      const auto fine = index.ScoreWithContexts(v, k + 1).contexts;
      for (const SocialContext& fine_context : fine) {
        int containing = 0;
        for (const SocialContext& coarse_context : coarse) {
          if (std::includes(coarse_context.begin(), coarse_context.end(),
                            fine_context.begin(), fine_context.end())) {
            ++containing;
          }
        }
        EXPECT_EQ(containing, 1)
            << "v=" << v << " k=" << k << ": a (k+1)-context not nested";
      }
    }
  }
}

// Context members' union is exactly the non-isolated k-truss vertex set of
// the ego-network (cross-check GCT contexts against a direct ego
// decomposition).
TEST_P(ModelPropertyTest, ContextUnionMatchesDirectDecomposition) {
  GctIndex index = GctIndex::Build(graph());
  EgoNetworkExtractor extractor(graph());
  EgoTrussDecomposer decomposer;
  for (VertexId v = 0; v < graph().num_vertices(); v += 7) {
    EgoNetwork ego = extractor.Extract(v);
    const auto trussness = decomposer.Compute(ego);
    for (std::uint32_t k : {3u, 4u}) {
      std::set<VertexId> expected;
      for (EdgeId e = 0; e < ego.num_edges(); ++e) {
        if (trussness[e] >= k) {
          expected.insert(ego.ToGlobal(ego.edges[e].u));
          expected.insert(ego.ToGlobal(ego.edges[e].v));
        }
      }
      std::set<VertexId> actual;
      for (const SocialContext& context :
           index.ScoreWithContexts(v, k).contexts) {
        actual.insert(context.begin(), context.end());
      }
      EXPECT_EQ(actual, expected) << "v=" << v << " k=" << k;
    }
  }
}

// The TSD s̃core bound dominates the true score for every vertex and k.
TEST_P(ModelPropertyTest, TsdBoundDominatesScore) {
  TsdIndex index = TsdIndex::Build(graph());
  for (VertexId v = 0; v < graph().num_vertices(); ++v) {
    for (std::uint32_t k = 2; k <= 8; ++k) {
      EXPECT_GE(index.ScoreUpperBound(v, k), index.Score(v, k))
          << "v=" << v << " k=" << k;
    }
  }
}

// Global k-trusses are nested: the (k+1)-truss edge set is a subset of the
// k-truss edge set.
TEST_P(ModelPropertyTest, GlobalTrussesNested) {
  TrussDecomposition td(graph());
  for (std::uint32_t k = 2; k < td.max_trussness(); ++k) {
    const auto outer = KTrussEdges(graph(), td.edge_trussness(), k);
    const auto inner = KTrussEdges(graph(), td.edge_trussness(), k + 1);
    EXPECT_TRUE(std::includes(outer.begin(), outer.end(), inner.begin(),
                              inner.end()));
  }
}

// Property 1: an edge inside any ego k-truss has global trussness >= k+1.
TEST_P(ModelPropertyTest, Property1SparsificationSafety) {
  TrussDecomposition global_truss(graph());
  EgoNetworkExtractor extractor(graph());
  EgoTrussDecomposer decomposer;
  for (VertexId v = 0; v < graph().num_vertices(); v += 5) {
    EgoNetwork ego = extractor.Extract(v);
    const auto trussness = decomposer.Compute(ego);
    for (EdgeId e = 0; e < ego.num_edges(); ++e) {
      const EdgeId global_edge = graph().FindEdge(
          ego.ToGlobal(ego.edges[e].u), ego.ToGlobal(ego.edges[e].v));
      ASSERT_NE(global_edge, kInvalidEdge);
      // τ_G(e) >= τ_ego(e) + 1 whenever the edge is in an ego k-truss with
      // k = τ_ego(e) >= 2 (adding the center upgrades the truss by one).
      if (trussness[e] >= 3) {
        EXPECT_GE(global_truss.trussness(global_edge), trussness[e] + 1)
            << "v=" << v << " edge=" << e;
      }
    }
  }
}

// Ego-network trussness never exceeds global trussness... in fact the
// maximum ego trussness over all ego-networks is τ*_G - 1 or lower
// (Table 1's τ*_ego column is always τ*_G - 1 in the paper).
TEST_P(ModelPropertyTest, MaxEgoTrussnessBelowGlobal) {
  TrussDecomposition global_truss(graph());
  GctIndex index = GctIndex::Build(graph());
  EXPECT_LT(index.max_trussness(), global_truss.max_trussness());
}

INSTANTIATE_TEST_SUITE_P(Graphs, ModelPropertyTest,
                         ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return Cases()[info.param].name;
                         });

}  // namespace
}  // namespace tsd
