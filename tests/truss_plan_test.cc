// Differential suite for the TrussPlan subsystem (truss/truss_plan.h).
// Trussness is the unique fixed point of support peeling, so every plan —
// Bsp, BspJacobi, CoreThenTruss, and whatever Auto resolves to — must be
// bit-identical to the sequential Wang–Cheng peel on every graph at every
// thread count; exact equality is the specification, not a tolerance.
// Also covers: CoreThenTruss prune soundness against an independently
// recomputed core bound, auto-tuner determinism, the Jacobi schedule on
// large frontiers, the bitmap support kernel, the plan knob threading
// through QueryOptions into the searchers, and the ordered batch scan
// (small total r) against the per-query reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/bound_search.h"
#include "core/tsd_index.h"
#include "core/types.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "truss/core_decomposition.h"
#include "truss/parallel_truss.h"
#include "truss/peeling.h"
#include "graph/triangle.h"
#include "truss/truss_decomposition.h"
#include "truss/truss_plan.h"

namespace tsd {
namespace {

struct GraphCase {
  std::string name;
  Graph graph;
};

// Same five graphs as the parallel-truss differential suite.
std::vector<GraphCase> TestGraphs() {
  std::vector<GraphCase> cases;
  cases.push_back({"figure1", PaperFigure1Graph()});
  cases.push_back({"er", ErdosRenyi(80, 500, 3)});
  cases.push_back({"hk", HolmeKim(250, 5, 0.6, 4)});
  cases.push_back({"ba", BarabasiAlbert(200, 4, 5)});
  cases.push_back({"rmat", RMat(8, 6, 0.45, 0.2, 0.2, 6)});
  return cases;
}

struct PlanCase {
  std::string name;  // gtest-safe spelling, used in CI's --gtest_filter
  TrussPlanAlgorithm algorithm;
};

std::vector<PlanCase> PlanCases() {
  return {{"bsp", TrussPlanAlgorithm::kBsp},
          {"jacobi", TrussPlanAlgorithm::kBspJacobi},
          {"core_truss", TrussPlanAlgorithm::kCoreThenTruss},
          {"auto", TrussPlanAlgorithm::kAuto}};
}

std::vector<ParallelConfig> ThreadConfigs() {
  // 0 chunks = auto; the 5-chunk case exercises uneven chunk boundaries.
  return {ParallelConfig{1, 0}, ParallelConfig{2, 0}, ParallelConfig{2, 5},
          ParallelConfig{8, 0}};
}

std::vector<std::uint32_t> SequentialTrussness(const Graph& g) {
  CsrView<std::uint64_t> view;
  view.num_vertices = g.num_vertices();
  view.edges = g.edges();
  view.offsets = g.offsets();
  view.adj = g.adjacency();
  view.adj_edge_ids = g.adjacency_edge_ids();
  return PeelSupportToTrussness(view, ComputeSupport(g));
}

Graph Clique(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph::FromEdges(std::move(edges), n);
}

void ExpectSameEntries(const TopRResult& actual, const TopRResult& expected,
                       const std::string& label) {
  ASSERT_EQ(actual.entries.size(), expected.entries.size()) << label;
  for (std::size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_EQ(actual.entries[i].vertex, expected.entries[i].vertex) << label;
    EXPECT_EQ(actual.entries[i].score, expected.entries[i].score) << label;
    EXPECT_EQ(actual.entries[i].contexts, expected.entries[i].contexts)
        << label;
  }
}

// ------------------------------------------------ plan × graph differential

class TrussPlanDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TrussPlanDifferentialTest, BitIdenticalToSequentialPeel) {
  const GraphCase test_case = TestGraphs()[std::get<0>(GetParam())];
  const PlanCase plan_case = PlanCases()[std::get<1>(GetParam())];
  const Graph& g = test_case.graph;
  const std::vector<std::uint32_t> expected = SequentialTrussness(g);
  const TrussPlan plan = TrussPlan::FromAlgorithm(plan_case.algorithm);
  for (const ParallelConfig& config : ThreadConfigs()) {
    const std::string label = test_case.name + " plan=" + plan_case.name +
                              " threads=" +
                              std::to_string(config.num_threads) + " chunks=" +
                              std::to_string(config.num_chunks);
    TrussPlanStats stats;
    EXPECT_EQ(TrussnessWithPlan(g, plan, config, &stats), expected) << label;
    EXPECT_EQ(stats.requested, plan_case.algorithm) << label;
    EXPECT_NE(stats.algorithm, TrussPlanAlgorithm::kAuto) << label;
    // The default floor of 2 never prunes: every edge endpoint has core ≥ 1.
    EXPECT_EQ(stats.edges_pruned, 0u) << label;
    EXPECT_EQ(stats.graph_stats.num_edges, g.num_edges()) << label;
  }
}

TEST_P(TrussPlanDifferentialTest, TrussDecompositionRoutesPlan) {
  const GraphCase test_case = TestGraphs()[std::get<0>(GetParam())];
  const PlanCase plan_case = PlanCases()[std::get<1>(GetParam())];
  const Graph& g = test_case.graph;
  const TrussDecomposition sequential(g);
  const TrussPlan plan = TrussPlan::FromAlgorithm(plan_case.algorithm);
  for (const ParallelConfig& config : ThreadConfigs()) {
    const std::string label = test_case.name + " plan=" + plan_case.name +
                              " threads=" + std::to_string(config.num_threads);
    const TrussDecomposition planned(g, config, plan);
    EXPECT_EQ(planned.edge_trussness(), sequential.edge_trussness()) << label;
    EXPECT_EQ(planned.max_trussness(), sequential.max_trussness()) << label;
    EXPECT_EQ(planned.TrussnessHistogram(), sequential.TrussnessHistogram())
        << label;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(planned.vertex_trussness(v), sequential.vertex_trussness(v))
          << label << " v=" << v;
    }
    EXPECT_EQ(planned.plan_stats().requested, plan_case.algorithm) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphsAllPlans, TrussPlanDifferentialTest,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return TestGraphs()[std::get<0>(info.param)].name + "_" +
             PlanCases()[std::get<1>(info.param)].name;
    });

// The config-carried algorithm tag must reach the 2-arg TrussDecomposition
// constructor (the path every existing caller takes).
TEST(TrussPlanRoutingTest, ConfigCarriesAlgorithmTag) {
  const Graph g = HolmeKim(250, 5, 0.6, 4);
  const std::vector<std::uint32_t> expected = SequentialTrussness(g);
  for (const PlanCase& plan_case : PlanCases()) {
    ParallelConfig config{2, 0};
    config.truss_plan = plan_case.algorithm;
    const TrussDecomposition decomposition(g, config);
    EXPECT_EQ(decomposition.edge_trussness(), expected) << plan_case.name;
    EXPECT_EQ(decomposition.plan_stats().requested, plan_case.algorithm)
        << plan_case.name;
  }
}

// ------------------------------------------------ CoreThenTruss soundness

// Recomputes the Burkhardt bound independently and checks the pruning
// report against it: exactly the below-floor edges are pruned, every pruned
// edge's true trussness really is below the floor, reported values are
// exact at or above the floor and never overshoot below it.
TEST(CoreThenTrussPruneSoundnessTest, PrunedEdgesAreProvablyIrrelevant) {
  std::uint64_t total_pruned = 0;
  for (const GraphCase& test_case : TestGraphs()) {
    const Graph& g = test_case.graph;
    const std::vector<std::uint32_t> full = SequentialTrussness(g);
    const CoreDecomposition cores(g);
    for (const std::uint32_t floor_k : {3u, 4u, 5u, 6u}) {
      const std::string label =
          test_case.name + " floor=" + std::to_string(floor_k);
      TrussPlanStats stats;
      const std::vector<std::uint32_t> reported = TrussnessWithPlan(
          g, TrussPlan::CoreThenTruss(floor_k), ParallelConfig{1, 0}, &stats);
      ASSERT_EQ(reported.size(), full.size()) << label;
      std::uint64_t pruned = 0;
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const Edge& edge = g.edge(e);
        const std::uint32_t bound =
            std::min(cores.core(edge.u), cores.core(edge.v)) + 1;
        if (bound < floor_k) {
          ++pruned;
          // The bound proves trussness < floor; the peel must agree.
          ASSERT_LT(full[e], floor_k) << label << " e=" << e;
        }
        if (full[e] >= floor_k) {
          ASSERT_EQ(reported[e], full[e]) << label << " e=" << e;
        }
        ASSERT_LE(reported[e], full[e]) << label << " e=" << e;
      }
      EXPECT_EQ(stats.edges_pruned, pruned) << label;
      total_pruned += pruned;
    }
  }
  // The suite must actually exercise pruning, not just the zero-pruned
  // fast path.
  EXPECT_GT(total_pruned, 0u);
}

// ------------------------------------------------ auto-tuner determinism

TEST(TrussPlanAutoTest, ResolutionAndResultAreDeterministic) {
  for (const GraphCase& test_case : TestGraphs()) {
    const Graph& g = test_case.graph;
    const GraphStatistics stats = ComputeGraphStatistics(g);
    for (const ParallelConfig& config : ThreadConfigs()) {
      const TrussPlanAlgorithm first =
          ChooseTrussPlanAlgorithm(stats, 2, config);
      EXPECT_EQ(ChooseTrussPlanAlgorithm(stats, 2, config), first);
      EXPECT_NE(first, TrussPlanAlgorithm::kAuto);
      TrussPlanStats run1;
      TrussPlanStats run2;
      const std::vector<std::uint32_t> t1 =
          TrussnessWithPlan(g, TrussPlan::Auto(), config, &run1);
      const std::vector<std::uint32_t> t2 =
          TrussnessWithPlan(g, TrussPlan::Auto(), config, &run2);
      EXPECT_EQ(run1.algorithm, first) << test_case.name;
      EXPECT_EQ(run2.algorithm, first) << test_case.name;
      EXPECT_EQ(t1, t2) << test_case.name;
    }
  }
}

TEST(TrussPlanParseTest, RoundTripsCliSpellings) {
  for (const std::string name : {"auto", "bsp", "jacobi", "core-truss"}) {
    const auto parsed = ParseTrussPlanAlgorithm(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(TrussPlanAlgorithmName(*parsed), name);
  }
  EXPECT_FALSE(ParseTrussPlanAlgorithm("coretruss").has_value());
  EXPECT_FALSE(ParseTrussPlanAlgorithm("").has_value());
}

// ------------------------------------------------ Jacobi large frontiers

// The small differential graphs mostly peel narrow frontiers (inline
// scatter and inline recompute). A clique peels as one frontier holding
// every edge and the dense ER graph peels thousands of edges per level, so
// these force the threaded recompute path of the Jacobi schedule.
TEST(BspJacobiLargeFrontierTest, ThreadedRecomputeBitIdentical) {
  const Graph clique = Clique(120);  // m = 7140 >= 8 threads * 512
  const Graph dense_er = ErdosRenyi(3000, 60000, 7);
  for (const Graph* g : {&clique, &dense_er}) {
    const std::vector<std::uint32_t> expected = SequentialTrussness(*g);
    for (const std::uint32_t threads : {2u, 8u}) {
      const ParallelConfig config{threads, 0};
      EXPECT_EQ(
          TrussnessFromSupportJacobi(*g, ComputeSupport(*g, config), config),
          expected)
          << "threads=" << threads;
    }
  }
}

// ------------------------------------------------ bitmap support kernel

TEST(BitmapSupportKernelTest, MatchesMergeIntersection) {
  const Graph clique = Clique(120);
  const Graph dense_er = ErdosRenyi(300, 8000, 9);
  for (const Graph* g : {&clique, &dense_er}) {
    ASSERT_TRUE(internal::BitmapSupportEligible(
        g->num_vertices(), g->num_edges(), internal::kBitmapBudgetBytes,
        internal::kGlobalBitmapDensityShift));
    const std::vector<std::uint32_t> expected = ComputeSupport(*g);
    for (const ParallelConfig& config : ThreadConfigs()) {
      EXPECT_EQ(internal::SupportViaBitmaps(*g, config), expected)
          << "threads=" << config.num_threads;
    }
    // Dense graphs route through the bitmap kernel inside the plan runner;
    // the trussness must not move.
    TrussPlanStats stats;
    EXPECT_EQ(
        TrussnessWithPlan(*g, TrussPlan::Bsp(), ParallelConfig{2, 0}, &stats),
        SequentialTrussness(*g));
    EXPECT_TRUE(stats.bitmap_kernel);
  }
}

TEST(BitmapSupportKernelTest, EligibilityRule) {
  const std::size_t budget = internal::kBitmapBudgetBytes;
  // Degenerate inputs never qualify.
  EXPECT_FALSE(internal::BitmapSupportEligible(2, 1, budget, 6));
  EXPECT_FALSE(internal::BitmapSupportEligible(100, 0, budget, 6));
  // Density floor is m ≥ n² >> shift (here 10000 >> 6 = 156).
  EXPECT_TRUE(internal::BitmapSupportEligible(100, 156, budget, 6));
  EXPECT_FALSE(internal::BitmapSupportEligible(100, 155, budget, 6));
  // The ego shift admits much sparser graphs (10000 >> 10 = 9).
  EXPECT_TRUE(internal::BitmapSupportEligible(100, 9, budget, 10));
  // n bitmaps of n bits must fit the budget.
  EXPECT_FALSE(
      internal::BitmapSupportEligible(100, 5000, /*budget_bytes=*/100, 6));
}

// ------------------------------------------------ searcher integration

// The plan knob threads QueryOptions → ParallelConfig → the bound
// searcher's preprocess decomposition; the ranked answers must not move
// under any named plan, and CoreThenTruss must report its pruning in
// SearchStats (the searcher consumes only the (k+1)-truss, so it passes
// min_trussness = k + 1).
TEST(TrussPlanSearcherTest, BoundSearcherIdenticalUnderEveryPlan) {
  // Power-law graph with a low-core tail: at floor k+1 = 5 the core
  // prefilter actually prunes edges (HolmeKim's uniform m-per-vertex keeps
  // every core at 5, so it never prunes below floor 7).
  const Graph g = RMat(8, 6, 0.45, 0.2, 0.2, 6);
  BoundSearcher reference(g);
  const TopRResult expected = reference.TopR(10, 4);
  const std::vector<BatchQuery> batch = {{3, 5}, {4, 10}, {5, 3}};
  const std::vector<TopRResult> expected_batch = reference.SearchBatch(batch);
  bool any_pruned = false;
  for (const PlanCase& plan_case : PlanCases()) {
    BoundSearcher searcher(g);
    QueryOptions options;
    options.num_threads = 2;
    options.truss_plan = plan_case.algorithm;
    searcher.set_query_options(options);
    const TopRResult result = searcher.TopR(10, 4);
    ExpectSameEntries(result, expected, "topr plan=" + plan_case.name);
    if (plan_case.algorithm == TrussPlanAlgorithm::kCoreThenTruss) {
      any_pruned = result.stats.edges_pruned > 0;
    }
    const std::vector<TopRResult> batch_result = searcher.SearchBatch(batch);
    ASSERT_EQ(batch_result.size(), expected_batch.size());
    for (std::size_t q = 0; q < batch.size(); ++q) {
      ExpectSameEntries(batch_result[q], expected_batch[q],
                        "batch plan=" + plan_case.name + " q=" +
                            std::to_string(q));
    }
  }
  // At floor k+1 = 5 the power-law graph must actually lose edges to the
  // core prefilter (the answers above prove losing them is harmless).
  EXPECT_TRUE(any_pruned);
}

// Batches whose total r is small run the shared bound-ordered scan (one
// bound order at the smallest k upper-bounds every query — both bound
// formulas are non-increasing in k); large batches keep the full scan.
// Both paths must be bit-identical to per-query TopR.
TEST(TrussPlanSearcherTest, OrderedBatchScanBitIdenticalToPerQuery) {
  const Graph g = HolmeKim(250, 5, 0.6, 4);
  // total_r = 3, so 3 * 64 = 192 <= 250 vertices → ordered path.
  const std::vector<BatchQuery> small_batch = {{3, 1}, {4, 1}, {5, 1}};
  // total_r = 18 → 1152 > 250 → full-scan path.
  const std::vector<BatchQuery> large_batch = {{3, 5}, {4, 10}, {5, 3}};
  BoundSearcher bound(g);
  TsdIndex tsd = TsdIndex::Build(g);
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    for (const std::vector<BatchQuery>* batch : {&small_batch, &large_batch}) {
      BoundSearcher batch_bound(g);
      batch_bound.set_query_options(QueryOptions{threads, 0});
      const std::vector<TopRResult> bound_results =
          batch_bound.SearchBatch(*batch);
      ASSERT_EQ(bound_results.size(), batch->size());
      TsdIndex batch_tsd = TsdIndex::Build(g);
      batch_tsd.set_query_options(QueryOptions{threads, 0});
      const std::vector<TopRResult> tsd_results =
          batch_tsd.SearchBatch(*batch);
      ASSERT_EQ(tsd_results.size(), batch->size());
      for (std::size_t q = 0; q < batch->size(); ++q) {
        const BatchQuery& query = (*batch)[q];
        const std::string label = "threads=" + std::to_string(threads) +
                                  " k=" + std::to_string(query.k) + " r=" +
                                  std::to_string(query.r);
        ExpectSameEntries(bound_results[q], bound.TopR(query.r, query.k),
                          "bound " + label);
        ExpectSameEntries(tsd_results[q], tsd.TopR(query.r, query.k),
                          "tsd " + label);
      }
    }
  }
}

// The ScoreOrdered ramp knobs trade round-barrier overhead against
// overshoot; the ranking is bit-identical for every setting.
TEST(TrussPlanSearcherTest, RampOptionsDoNotChangeResults) {
  const Graph g = HolmeKim(250, 5, 0.6, 4);
  BoundSearcher reference(g);
  const TopRResult expected = reference.TopR(10, 4);
  for (const std::uint32_t base : {1u, 2u, 16u}) {
    for (const std::uint32_t growth : {2u, 4u}) {
      BoundSearcher searcher(g);
      QueryOptions options;
      options.num_threads = 4;
      options.ramp_base_per_thread = base;
      options.ramp_growth = growth;
      searcher.set_query_options(options);
      ExpectSameEntries(searcher.TopR(10, 4), expected,
                        "base=" + std::to_string(base) + " growth=" +
                            std::to_string(growth));
    }
  }
}

}  // namespace
}  // namespace tsd
