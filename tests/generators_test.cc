// Tests for the synthetic graph generators and the named dataset registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/disjoint_set.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/triangle.h"

namespace tsd {
namespace {

bool SameEdges(const Graph& a, const Graph& b) {
  return std::ranges::equal(a.edges(), b.edges());
}

bool IsConnected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  DisjointSet dsu(g.num_vertices());
  for (const Edge& e : g.edges()) dsu.Union(e.u, e.v);
  return dsu.SetSize(0) == g.num_vertices();
}

TEST(ErdosRenyiTest, ExactEdgeCountAndNoDuplicates) {
  Graph g = ErdosRenyi(50, 200, 3);
  EXPECT_EQ(g.num_vertices(), 50u);
  EXPECT_EQ(g.num_edges(), 200u);  // builder dedup would shrink duplicates
  for (const Edge& e : g.edges()) EXPECT_NE(e.u, e.v);
}

TEST(ErdosRenyiTest, DeterministicPerSeed) {
  Graph a = ErdosRenyi(40, 100, 9);
  Graph b = ErdosRenyi(40, 100, 9);
  EXPECT_TRUE(SameEdges(a, b));
  Graph c = ErdosRenyi(40, 100, 10);
  EXPECT_FALSE(SameEdges(a, c));
}

TEST(ErdosRenyiTest, RejectsImpossibleEdgeCount) {
  EXPECT_THROW(ErdosRenyi(5, 11, 1), CheckError);
}

TEST(BarabasiAlbertTest, SizeAndConnectivity) {
  Graph g = BarabasiAlbert(500, 3, 7);
  EXPECT_EQ(g.num_vertices(), 500u);
  // Seed clique C(4,2)=6 edges + 496*3 attachments (some may collide but
  // chosen-set logic guarantees distinct targets per vertex).
  EXPECT_EQ(g.num_edges(), 6u + 496u * 3u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(BarabasiAlbertTest, ProducesSkewedDegrees) {
  Graph g = BarabasiAlbert(3000, 3, 11);
  const double avg = 2.0 * g.num_edges() / g.num_vertices();
  EXPECT_GT(g.max_degree(), 8 * avg);  // heavy tail
}

TEST(HolmeKimTest, TriadStepRaisesClustering) {
  // Same n/m; higher triad probability must produce many more triangles.
  Graph low = HolmeKim(2000, 4, 0.0, 5);
  Graph high = HolmeKim(2000, 4, 0.9, 5);
  EXPECT_GT(CountTriangles(high), 2 * CountTriangles(low));
}

TEST(HolmeKimTest, ConnectedAndDeterministic) {
  Graph g = HolmeKim(800, 4, 0.5, 6);
  EXPECT_TRUE(IsConnected(g));
  Graph g2 = HolmeKim(800, 4, 0.5, 6);
  EXPECT_TRUE(SameEdges(g, g2));
}

TEST(RMatTest, RespectsScaleBound) {
  Graph g = RMat(10, 8, 0.45, 0.2, 0.2, 3);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_LE(g.num_edges(), 8u * 1024u);
  EXPECT_GT(g.num_edges(), 1024u);  // dedup removes some, not most
}

TEST(RMatTest, RejectsBadProbabilities) {
  EXPECT_THROW(RMat(8, 4, 0.6, 0.3, 0.3, 1), CheckError);
}

TEST(CollaborationTest, PlantsRequestedStructure) {
  CollaborationOptions options;
  options.num_authors = 2000;
  options.num_groups = 150;
  options.num_hubs = 5;
  options.groups_per_hub = 6;
  const CollaborationGraph collab = Collaboration(options, 13);
  EXPECT_EQ(collab.graph.num_vertices(), 2000u);
  EXPECT_EQ(collab.hubs.size(), 5u);
  EXPECT_EQ(collab.groups.size(), 150u);
  for (const auto& group : collab.groups) {
    EXPECT_GE(group.size(), options.min_group_size);
    EXPECT_LE(group.size(), options.max_group_size);
    for (VertexId member : group) {
      EXPECT_GE(member, options.num_hubs);  // hubs have dedicated ids
    }
  }
  // Hubs co-author with every member of each joined group: their degree is
  // at least groups_per_hub * min_group_size (minus overlaps).
  for (VertexId hub : collab.hubs) {
    EXPECT_GE(collab.graph.degree(hub), 3 * options.min_group_size);
  }
}

TEST(CollaborationTest, InterGroupTiesConnectHubEgoComponents) {
  // With inter-group ties the hub's ego-network should form FEWER connected
  // components than the number of groups it joined (the Exp-10 setup where
  // the component model under-decomposes).
  CollaborationOptions options;
  options.num_authors = 3000;
  options.num_groups = 200;
  options.num_hubs = 2;
  options.groups_per_hub = 6;
  options.min_group_size = 6;
  options.max_group_size = 10;
  options.inter_group_ties_per_hub = 10;
  options.bridge_edges_per_author = 0;
  const CollaborationGraph collab = Collaboration(options, 17);

  const VertexId hub = collab.hubs[0];
  // Count components of the hub's ego-network.
  const auto nbrs = collab.graph.neighbors(hub);
  std::set<VertexId> members(nbrs.begin(), nbrs.end());
  DisjointSet dsu(collab.graph.num_vertices());
  for (const Edge& e : collab.graph.edges()) {
    if (members.count(e.u) && members.count(e.v)) dsu.Union(e.u, e.v);
  }
  std::set<std::uint32_t> roots;
  for (VertexId m : members) roots.insert(dsu.Find(m));
  EXPECT_LT(roots.size(), options.groups_per_hub);
}

// ---------------------------------------------------------------- Figure 1

TEST(PaperFigure1Test, ExactShape) {
  Graph g = PaperFigure1Graph();
  EXPECT_EQ(g.num_vertices(), 17u);
  // 14 (v-spokes) + 6 + 6 + 2 + 12 + 4 (s-edges) = 44.
  EXPECT_EQ(g.num_edges(), 44u);
  EXPECT_EQ(g.degree(0), 14u);  // v
  // s1, s2 are not neighbors of v.
  EXPECT_FALSE(g.HasEdge(0, 15));
  EXPECT_FALSE(g.HasEdge(0, 16));
  // Octahedron: antipodal pairs are non-adjacent.
  EXPECT_FALSE(g.HasEdge(9, 12));
  EXPECT_FALSE(g.HasEdge(10, 13));
  EXPECT_FALSE(g.HasEdge(11, 14));
  EXPECT_TRUE(g.HasEdge(9, 10));
  // Bridges between the x and y cliques.
  EXPECT_TRUE(g.HasEdge(2, 5));
  EXPECT_TRUE(g.HasEdge(4, 5));
  EXPECT_STREQ(PaperFigure1VertexName(0), "v");
  EXPECT_STREQ(PaperFigure1VertexName(16), "s2");
}

// ---------------------------------------------------------------- Datasets

TEST(DatasetsTest, RegistryHasAllEightNetworks) {
  EXPECT_EQ(DatasetNames().size(), 8u);
  EXPECT_EQ(DatasetNames().front(), "wiki-vote");
  EXPECT_EQ(DatasetNames().back(), "orkut");
  EXPECT_EQ(PlotDatasetNames(),
            (std::vector<std::string>{"gowalla", "livejournal", "orkut"}));
}

TEST(DatasetsTest, SpecScalesMonotonically) {
  for (const auto& name : DatasetNames()) {
    const DatasetSpec tiny = GetDatasetSpec(name, "tiny");
    const DatasetSpec small = GetDatasetSpec(name, "small");
    const DatasetSpec large = GetDatasetSpec(name, "large");
    EXPECT_LE(tiny.num_vertices, small.num_vertices) << name;
    EXPECT_LE(small.num_vertices, large.num_vertices) << name;
  }
}

TEST(DatasetsTest, UnknownNamesAndScalesThrow) {
  EXPECT_THROW(GetDatasetSpec("not-a-dataset", "small"), CheckError);
  EXPECT_THROW(GetDatasetSpec("wiki-vote", "huge"), CheckError);
}

TEST(DatasetsTest, GenerationIsDeterministic) {
  Graph a = MakeDataset("wiki-vote", "tiny");
  Graph b = MakeDataset("wiki-vote", "tiny");
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(SameEdges(a, b));
}

TEST(DatasetsTest, TinyDatasetsHaveTriangles) {
  // The truss experiments are vacuous without triangle density.
  for (const auto& name : DatasetNames()) {
    const Graph g = MakeDataset(name, "tiny");
    EXPECT_GT(CountTriangles(g), g.num_vertices() / 4) << name;
  }
}

}  // namespace
}  // namespace tsd
