// Tests for ego-network extraction (per-vertex and one-shot global) and the
// two ego truss decomposition kernels (hash vs bitmap).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/ego_network.h"
#include "graph/generators.h"
#include "reference_impls.h"
#include "truss/ego_truss.h"
#include "graph/triangle.h"

namespace tsd {
namespace {

TEST(EgoNetworkTest, CenterIsExcluded) {
  Graph g = PaperFigure1Graph();
  EgoNetworkExtractor extractor(g);
  EgoNetwork ego = extractor.Extract(0);  // v
  EXPECT_EQ(ego.center, 0u);
  EXPECT_EQ(std::count(ego.members.begin(), ego.members.end(), 0u), 0);
  EXPECT_EQ(ego.num_members(), 14u);  // x1..x4, y1..y4, r1..r6
}

TEST(EgoNetworkTest, PaperFigure1EgoOfVHas26Edges) {
  // 6 (x-clique) + 6 (y-clique) + 2 bridges + 12 (octahedron) = 26.
  Graph g = PaperFigure1Graph();
  EgoNetworkExtractor extractor(g);
  EgoNetwork ego = extractor.Extract(0);
  EXPECT_EQ(ego.num_edges(), 26u);
}

TEST(EgoNetworkTest, MatchesNaiveInducedSubgraph) {
  Graph g = HolmeKim(120, 5, 0.6, 17);
  EgoNetworkExtractor extractor(g);
  for (VertexId v = 0; v < g.num_vertices(); v += 7) {
    EgoNetwork ego = extractor.Extract(v);
    const Graph naive = testing::NaiveEgoGraph(g, v);
    ASSERT_EQ(ego.num_edges(), naive.num_edges()) << "vertex " << v;
    for (const Edge& e : ego.edges) {
      EXPECT_TRUE(naive.HasEdge(ego.ToGlobal(e.u), ego.ToGlobal(e.v)));
    }
  }
}

TEST(EgoNetworkTest, ToLocalInvertsToGlobal) {
  Graph g = HolmeKim(80, 4, 0.5, 3);
  EgoNetworkExtractor extractor(g);
  EgoNetwork ego = extractor.Extract(10);
  for (std::uint32_t i = 0; i < ego.num_members(); ++i) {
    EXPECT_EQ(ego.ToLocal(ego.ToGlobal(i)), i);
  }
  EXPECT_EQ(ego.ToLocal(ego.center), kInvalidVertex);
}

TEST(EgoNetworkTest, CsrDegreesMatchEdgeList) {
  Graph g = HolmeKim(100, 5, 0.5, 9);
  EgoNetworkExtractor extractor(g);
  EgoNetwork ego = extractor.Extract(5);
  ego.BuildCsr();
  std::vector<std::uint32_t> degree(ego.num_members(), 0);
  for (const Edge& e : ego.edges) {
    ++degree[e.u];
    ++degree[e.v];
  }
  for (std::uint32_t i = 0; i < ego.num_members(); ++i) {
    EXPECT_EQ(ego.LocalDegree(i), degree[i]);
    const auto nbrs = ego.LocalNeighbors(i);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

TEST(EgoNetworkTest, GlobalOneShotMatchesPerVertexExtraction) {
  for (std::uint64_t seed : {4ull, 21ull}) {
    Graph g = HolmeKim(150, 5, 0.6, seed);
    GlobalEgoNetworks global(g);
    EgoNetworkExtractor extractor(g);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EgoNetwork a = global.Materialize(v);
      EgoNetwork b = extractor.Extract(v);
      EXPECT_EQ(a.members, b.members) << "vertex " << v;
      EXPECT_EQ(a.edges, b.edges) << "vertex " << v;
    }
  }
}

TEST(EgoNetworkTest, GlobalTriangleCountConsistent) {
  Graph g = HolmeKim(200, 4, 0.5, 8);
  GlobalEgoNetworks global(g);
  EXPECT_EQ(global.num_triangles(), CountTriangles(g));
}

// The parallel distribution fill (per-chunk counting matrix) must reproduce
// the sequential pass bit for bit: every center's ego-edge slice in the
// same listing order, at any thread count.
TEST(EgoNetworkTest, GlobalListingParallelFillBitIdentical) {
  for (std::uint64_t seed : {4ull, 13ull}) {
    Graph g = HolmeKim(300, 5, 0.6, seed);
    GlobalEgoNetworks sequential(g, ParallelConfig{1, 0});
    for (std::uint32_t threads : {2u, 8u}) {
      GlobalEgoNetworks parallel(g, ParallelConfig{threads, 0});
      ASSERT_EQ(parallel.num_triangles(), sequential.num_triangles());
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        const auto expected = sequential.EgoEdges(v);
        const auto actual = parallel.EgoEdges(v);
        ASSERT_EQ(actual.size(), expected.size())
            << "seed=" << seed << " threads=" << threads << " v=" << v;
        for (std::size_t i = 0; i < expected.size(); ++i) {
          EXPECT_TRUE(actual[i].u == expected[i].u &&
                      actual[i].v == expected[i].v)
              << "seed=" << seed << " threads=" << threads << " v=" << v
              << " slot=" << i;
        }
      }
    }
  }
}

// Odd chunk counts exercise uneven chunk boundaries in the counting matrix.
TEST(EgoNetworkTest, GlobalListingParallelFillOddChunks) {
  Graph g = HolmeKim(200, 5, 0.5, 17);
  GlobalEgoNetworks sequential(g, ParallelConfig{1, 0});
  GlobalEgoNetworks parallel(g, ParallelConfig{3, 7});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto expected = sequential.EgoEdges(v);
    const auto actual = parallel.EgoEdges(v);
    ASSERT_EQ(actual.size(), expected.size()) << "v=" << v;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(actual[i].u == expected[i].u && actual[i].v == expected[i].v)
          << "v=" << v << " slot=" << i;
    }
  }
}

// ----------------------------------------------------- Ego truss kernels

TEST(EgoTrussTest, HashMatchesNaiveOnFigure1) {
  Graph g = PaperFigure1Graph();
  EgoNetworkExtractor extractor(g);
  EgoNetwork ego = extractor.Extract(0);
  const auto trussness = ComputeEgoTrussness(ego, EgoTrussMethod::kHash);

  // Convert to a global-id graph and compare against the naive trussness.
  const Graph naive_ego = testing::NaiveEgoGraph(g, 0);
  const auto naive = testing::NaiveTrussness(naive_ego);
  for (EdgeId e = 0; e < ego.num_edges(); ++e) {
    const EdgeId ne = naive_ego.FindEdge(ego.ToGlobal(ego.edges[e].u),
                                         ego.ToGlobal(ego.edges[e].v));
    ASSERT_NE(ne, kInvalidEdge);
    EXPECT_EQ(trussness[e], naive[ne]);
  }
}

TEST(EgoTrussTest, BitmapMatchesHashAcrossGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Graph g = HolmeKim(120, 6, 0.6, seed);
    EgoNetworkExtractor extractor(g);
    EgoTrussDecomposer hash(EgoTrussMethod::kHash);
    EgoTrussDecomposer bitmap(EgoTrussMethod::kBitmap);
    for (VertexId v = 0; v < g.num_vertices(); v += 3) {
      EgoNetwork ego1 = extractor.Extract(v);
      EgoNetwork ego2 = ego1;
      EXPECT_EQ(hash.Compute(ego1), bitmap.Compute(ego2))
          << "seed " << seed << " vertex " << v;
    }
  }
}

TEST(EgoTrussTest, BitmapFallsBackWhenOverBudget) {
  Graph g = HolmeKim(100, 5, 0.5, 2);
  EgoNetworkExtractor extractor(g);
  // A 1-byte budget forces the hash fallback even in kBitmap mode.
  EgoTrussDecomposer tiny_budget(EgoTrussMethod::kBitmap, 1);
  EgoTrussDecomposer hash(EgoTrussMethod::kHash);
  EgoNetwork ego1 = extractor.Extract(0);
  EgoNetwork ego2 = ego1;
  EXPECT_EQ(tiny_budget.Compute(ego1), hash.Compute(ego2));
}

TEST(EgoTrussTest, EmptyEgoNetwork) {
  // A leaf vertex's ego-network has one member and no edges.
  Graph g = Graph::FromEdges({{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EgoNetworkExtractor extractor(g);
  EgoNetwork ego = extractor.Extract(3);
  EXPECT_EQ(ego.num_members(), 1u);
  EXPECT_EQ(ego.num_edges(), 0u);
  EXPECT_TRUE(ComputeEgoTrussness(ego).empty());
}

// The paper's non-symmetry observation (Observation 1): trussness of the
// octahedron edge (r1,r2) inside GN(v) is 4, but trussness of (v,r2) inside
// GN(r1) is only 3.
TEST(EgoTrussTest, PaperNonSymmetryObservation) {
  Graph g = PaperFigure1Graph();
  EgoNetworkExtractor extractor(g);

  EgoNetwork ego_v = extractor.Extract(0);
  const auto truss_v = ComputeEgoTrussness(ego_v);
  const std::uint32_t r1 = ego_v.ToLocal(9);
  const std::uint32_t r2 = ego_v.ToLocal(10);
  EdgeId e_r1r2 = kInvalidEdge;
  for (EdgeId e = 0; e < ego_v.num_edges(); ++e) {
    if ((ego_v.edges[e] == Edge{std::min(r1, r2), std::max(r1, r2)})) {
      e_r1r2 = e;
    }
  }
  ASSERT_NE(e_r1r2, kInvalidEdge);
  EXPECT_EQ(truss_v[e_r1r2], 4u);

  EgoNetwork ego_r1 = extractor.Extract(9);
  const auto truss_r1 = ComputeEgoTrussness(ego_r1);
  const std::uint32_t lv = ego_r1.ToLocal(0);
  const std::uint32_t lr2 = ego_r1.ToLocal(10);
  EdgeId e_vr2 = kInvalidEdge;
  for (EdgeId e = 0; e < ego_r1.num_edges(); ++e) {
    if ((ego_r1.edges[e] == Edge{std::min(lv, lr2), std::max(lv, lr2)})) {
      e_vr2 = e;
    }
  }
  ASSERT_NE(e_vr2, kInvalidEdge);
  EXPECT_EQ(truss_r1[e_vr2], 3u);
}

}  // namespace
}  // namespace tsd
